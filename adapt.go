package rafda

import (
	"fmt"
	"time"

	"rafda/internal/adapt"
	"rafda/internal/policy"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// AdaptConfig tunes a node's adaptive placement engine (zero fields take
// the engine defaults; see docs/ADAPTIVE.md for the loop and its thrash
// guards).
type AdaptConfig struct {
	// Window is the telemetry sampling and rule-evaluation period.
	Window time.Duration
	// Threshold is the dominant-endpoint call share, in (0,1], a rule
	// needs before proposing an action.
	Threshold float64
	// MinCalls is the minimum per-window activity below which no
	// proposal is made.
	MinCalls int
	// Confirm is how many consecutive windows a proposal must recur
	// before it executes (hysteresis).
	Confirm int
	// Budget caps executed migrations per object (and placement flips
	// per class) within the trailing BudgetWindows windows.
	Budget int
	// BudgetWindows is the budget horizon, in windows.
	BudgetWindows int
	// CostBased swaps the count-based object rule for the cost-based
	// one: migrate only when the traffic saved (remote calls × peer RTT
	// EWMA) outweighs shipping the object's state.
	CostBased bool
	// NsPerByte prices shipped state for the cost comparison (0 takes
	// the engine default, ~100 MB/s).
	NsPerByte float64
	// MaxWriteShare is the write fraction above which an object is not
	// considered read-mostly and the replication rule abstains, in
	// (0,1] (0 takes the engine default, one write in ten calls).
	MaxWriteShare float64
	// ReplicaFanout caps how many caller endpoints a replication
	// proposal targets — the rule's top-k (0 takes the engine default).
	ReplicaFanout int
	// OnDecision, when set, observes every decision as it is made.
	OnDecision func(AdaptDecision)
}

// AdaptDecision is one engine outcome, for logs and dashboards.
type AdaptDecision struct {
	At       time.Time
	Window   int
	Rule     string
	Action   string // "migrate", "place-class" or "replicate"
	GUID     string
	Class    string
	Endpoint string // destination; "" means local placement
	Reason   string
	Executed bool
	// Delegated reports the decision became a placement intent for the
	// cluster to reconcile and execute (docs/CLUSTER.md) instead of
	// running here.
	Delegated bool
	Err       string
}

// Adapter is a running adaptive placement engine attached to a node.
type Adapter struct {
	eng *adapt.Engine
}

// EnableTelemetry switches on the node's call-affinity metrics plane
// without starting an adapter (idempotent).  StartAdapter implies it.
func (n *Node) EnableTelemetry() { n.n.EnableTelemetry() }

// StartAdapter enables telemetry and starts the adaptive placement
// engine: from here on the node watches its own call affinity and
// redraws distribution boundaries — migrating hot objects toward their
// dominant callers and re-pointing class placements — through the same
// Migrate/PlaceClass mechanisms, with no manual calls.  Stop the
// returned Adapter to freeze placement again; Close stops it too.
func (n *Node) StartAdapter(cfg AdaptConfig) *Adapter {
	a := n.NewAdapter(cfg)
	a.eng.Start()
	return a
}

// NewAdapter builds the node's adapter without starting its periodic
// loop; drive it with Tick for deterministic harnesses, or call
// (*Adapter).eng via StartAdapter for the timed loop.
func (n *Node) NewAdapter(cfg AdaptConfig) *Adapter {
	rec := n.n.EnableTelemetry()
	in := n.n
	act := adapt.Actions{
		MigrateObject: func(obj *vm.Object, endpoint string) error {
			return in.Migrate(vm.RefV(obj), endpoint)
		},
		PlaceClass: func(class, endpoint string, ifVersion uint64) error {
			pl := policy.LocalPlacement
			if endpoint != "" {
				var err error
				pl, err = policy.RemoteAt(endpoint)
				if err != nil {
					return err
				}
			}
			if !in.Policy().SetClassIf(class, pl, ifVersion) {
				return fmt.Errorf("policy re-configured concurrently; decision dropped")
			}
			// An executed flip is a new policy epoch: share it through
			// the cluster directory so every member converges (no-op
			// outside a cluster).
			in.AnnounceClassPlacement(class, endpoint)
			return nil
		},
		PolicyVersion: func() uint64 { return in.Policy().Version() },
		ClassPlacement: func(class string) string {
			pl, _ := in.Policy().For(class)
			if pl.Kind == policy.Remote {
				return pl.Endpoint
			}
			return ""
		},
		IsLocalObject: in.IsMigratable,
		ReplicateObject: func(obj *vm.Object, endpoints []string) error {
			return in.Replicate(vm.RefV(obj), endpoints...)
		},
		IsReplicated:  in.IsReplicated,
		SelfEndpoints: in.Endpoints,
		StateBytes:    in.StateBytes,
		PeerRTTs: func() map[string]float64 {
			if rec := in.Telemetry(); rec != nil {
				return rec.PeerRTTs()
			}
			return nil
		},
		// Cluster delegation: a confirmed migration becomes a placement
		// intent the cluster reconciles (tie-break by priority, then
		// node id) and the object's home executes.  Checked per call, so
		// an adapter built before JoinCluster delegates from the moment
		// the node joins; with no cluster attached the engine acts alone.
		SubmitIntent: func(p adapt.Proposal) (bool, string) {
			co := in.Cluster()
			if co == nil {
				return false, ""
			}
			return co.Submit(wire.Intent{
				GUID:     p.GUID,
				Class:    p.Class,
				From:     co.Self(),
				To:       p.Endpoint,
				Proposer: co.ID(),
				Priority: p.Priority,
				Reason:   p.Rule + ": " + p.Reason,
			})
		},
	}
	ecfg := adapt.Config{
		Window:        cfg.Window,
		Threshold:     cfg.Threshold,
		MinCalls:      uint64(max(cfg.MinCalls, 0)),
		Confirm:       cfg.Confirm,
		Budget:        cfg.Budget,
		BudgetWindows: cfg.BudgetWindows,
		CostBased:     cfg.CostBased,
		NsPerByte:     cfg.NsPerByte,
		MaxWriteShare: cfg.MaxWriteShare,
		ReplicaFanout: cfg.ReplicaFanout,
	}
	// Every decision lands in the node's flight recorder as an adapt
	// span (a no-op under NoTrace), interleaving placement decisions
	// with the call traffic that triggered them; a user callback chains
	// after the recording.
	ecfg.OnDecision = func(d adapt.Decision) {
		in.RecordAdaptDecision(d.Rule, d.Kind.String(), d.GUID, d.Class, d.Endpoint,
			d.Reason, d.Executed, d.Delegated, d.Err)
		if cfg.OnDecision != nil {
			cfg.OnDecision(fromEngineDecision(d))
		}
	}
	a := &Adapter{eng: adapt.New(rec, act, ecfg)}
	n.attachAdapter(a)
	return a
}

// Start launches the adapter's periodic loop (no-op if running).
// Start after Stop resumes it; window state, budgets and the decision
// log carry over.
func (a *Adapter) Start() { a.eng.Start() }

// Stop halts the decision loop, waiting out an in-flight evaluation;
// telemetry keeps recording and Start resumes the loop.
func (a *Adapter) Stop() { a.eng.Stop() }

// Tick runs one evaluation immediately — the deterministic alternative
// to the timed loop, used by tests and the E9 harness.
func (a *Adapter) Tick() { a.eng.Tick() }

// Decisions returns the adapter's decision log.
func (a *Adapter) Decisions() []AdaptDecision {
	ds := a.eng.Decisions()
	out := make([]AdaptDecision, len(ds))
	for i, d := range ds {
		out[i] = fromEngineDecision(d)
	}
	return out
}

// fromEngineDecision converts the internal decision record to the
// public one.
func fromEngineDecision(d adapt.Decision) AdaptDecision {
	return AdaptDecision{
		At:        d.At,
		Window:    d.Window,
		Rule:      d.Rule,
		Action:    d.Kind.String(),
		GUID:      d.GUID,
		Class:     d.Class,
		Endpoint:  d.Endpoint,
		Reason:    d.Reason,
		Executed:  d.Executed,
		Delegated: d.Delegated,
		Err:       d.Err,
	}
}
