module rafda

go 1.24
