// Package rafda is a Go reproduction of "A Reflective Approach to
// Providing Flexibility in Application Distribution" (Rebón Portillo,
// Walker, Kirby, Dearle — Middleware 2003): an adaptive, reflective
// framework that transforms non-distributed programs into semantically
// equivalent programs whose distribution boundaries are flexible.
//
// The pipeline is:
//
//	source (mini-Java)  --Compile-->  verified bytecode program
//	program             --Analyze-->  substitutability analysis (§2.4)
//	program             --Transform-> componentised program (§2.1–2.3):
//	                                  per class A: A_O_Int, A_O_Local,
//	                                  A_O_Proxy_<proto>, A_C_Int, A_C_Local,
//	                                  A_C_Proxy_<proto>, A_O_Factory, A_C_Factory
//	transformed program --NewNode-->  address spaces that place classes by
//	                                  policy, proxy remote instances over
//	                                  rrp/soap/json/inproc transports,
//	                                  migrate live objects, and re-draw
//	                                  distribution boundaries at run time
//
// Nodes can also redraw those boundaries themselves: StartAdapter
// switches on a per-node telemetry plane and a rule-driven placement
// engine that migrates hot objects toward their dominant callers and
// re-points class placements automatically, with hysteresis and a
// migration budget so placement never thrashes (docs/ADAPTIVE.md,
// experiment E9).
//
// JoinCluster lifts placement from node-local to cluster-wide: members
// gossip membership (with liveness), a shared placement directory
// (stale references resolve migrated objects in one hop, class
// placements converge as policy epochs), and placement intents — the
// adapters' decisions reconcile deterministically across the cluster
// instead of executing unilaterally, including multi-hop migrations
// proposed by a node that neither hosts nor calls the object
// (docs/CLUSTER.md, experiment E10).
//
// A minimal end-to-end use:
//
//	prog, _ := rafda.CompileString(src)
//	tr, _ := prog.Transform()
//	server, _ := tr.NewNode(rafda.NodeConfig{Name: "server"})
//	endpoint, _ := server.Serve("rrp", "127.0.0.1:0")
//	client, _ := tr.NewNode(rafda.NodeConfig{Name: "client"})
//	client.PlaceClass("C", endpoint) // instances of C now live remotely
//	client.RunMain("Main")
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every figure and claim in the paper.
package rafda
