package rafda

import (
	"time"

	"rafda/internal/cluster"
	"rafda/internal/wire"
)

// ClusterConfig tunes a node's membership in the cluster coordination
// plane (docs/CLUSTER.md).  Zero fields take the plane's defaults.
type ClusterConfig struct {
	// Seeds are existing members' endpoints to join through (empty for
	// the first node).
	Seeds []string
	// Heartbeat is the gossip period of the timed loop.
	Heartbeat time.Duration
	// Fanout is how many peers each round gossips to.
	Fanout int
	// SuspectAfter / DeadAfter are the liveness ladder, in heartbeats
	// without an observed advance.
	SuspectAfter int
	DeadAfter    int
	// SettleWindows is how many heartbeats a winning placement intent
	// must stay the winner before the object's home executes it.
	SettleWindows int
	// CooldownWindows refuses new intents for an object after it
	// migrated — the cluster-wide ping-pong guard.
	CooldownWindows int
	// Propose enables the multi-hop rule on this member: evaluate
	// gossiped affinity rollups and propose migrations anywhere in the
	// cluster (B→C proposed by A).
	Propose bool
	// Threshold is the dominant-caller share a multi-hop proposal needs;
	// MinCalls the minimum rollup activity.
	Threshold float64
	MinCalls  int
	// NoFollowPlacements stops this member from applying gossiped class
	// placement epochs to its local policy table.
	NoFollowPlacements bool
	// OnEvent observes every membership/directory/intent event.
	OnEvent func(ClusterEvent)
	// Seed fixes gossip-target shuffling for deterministic harnesses.
	Seed int64
}

// ClusterEvent is one observable coordination occurrence.
type ClusterEvent struct {
	Tick uint64
	// Kind: peer-join, peer-suspect, peer-dead, peer-leave, intent,
	// propose, migrate, migrate-fail, dir, class-apply, gossip-fail.
	Kind   string
	Peer   string
	GUID   string
	Class  string
	From   string
	To     string
	Detail string
}

// ClusterPeer is one row of the membership table.
type ClusterPeer struct {
	ID        string
	Endpoint  string
	Heartbeat uint64
	Health    string // alive | suspect | dead
}

// Cluster is a node's handle on the coordination plane.
type Cluster struct {
	co *cluster.Coordinator
}

// JoinCluster joins this node to the cluster reachable through
// cfg.Seeds (or founds a new one when none are given).  The node must
// be serving at least one transport — its endpoint is how peers gossip
// to it.  Joining enables telemetry, OpGossip dispatch and
// directory-first proxy resolution; placement decisions made by this
// node's adapter are from now on delegated to the cluster as intents
// (propose/reconcile/act) instead of executed unilaterally.
//
// The returned handle is not yet gossiping: call Start for the timed
// loop, or Tick from a deterministic harness.  Close stops it.
func (n *Node) JoinCluster(cfg ClusterConfig) (*Cluster, error) {
	ccfg := cluster.Config{
		Heartbeat:             cfg.Heartbeat,
		Fanout:                cfg.Fanout,
		SuspectAfter:          cfg.SuspectAfter,
		DeadAfter:             cfg.DeadAfter,
		SettleTicks:           cfg.SettleWindows,
		CooldownTicks:         cfg.CooldownWindows,
		Propose:               cfg.Propose,
		Threshold:             cfg.Threshold,
		MinCalls:              uint64(max(cfg.MinCalls, 0)),
		FollowClassPlacements: !cfg.NoFollowPlacements,
		Seed:                  cfg.Seed,
	}
	if cfg.OnEvent != nil {
		ccfg.OnEvent = func(e cluster.Event) { cfg.OnEvent(fromClusterEvent(e)) }
	}
	co, err := n.n.StartCluster(ccfg, cfg.Seeds)
	if err != nil {
		return nil, err
	}
	c := &Cluster{co: co}
	n.attachCluster(c)
	return c, nil
}

// Start launches the timed gossip loop (no-op while running).
func (c *Cluster) Start() { c.co.Start() }

// Stop halts the timed loop, waiting out an in-flight round; the node
// stays a member (gossip from peers is still served) and Start resumes.
func (c *Cluster) Stop() { c.co.Stop() }

// Tick runs one coordination round immediately — the deterministic
// alternative to the timed loop, used by tests and the E10 harness.
func (c *Cluster) Tick() { c.co.Tick() }

// Leave announces a graceful departure and stops the loop.
func (c *Cluster) Leave() { c.co.Leave() }

// Peers returns the membership table, sorted by id.
func (c *Cluster) Peers() []ClusterPeer {
	ps := c.co.Peers()
	out := make([]ClusterPeer, len(ps))
	for i, p := range ps {
		out[i] = ClusterPeer{ID: p.ID, Endpoint: p.Endpoint, Heartbeat: p.Heartbeat, Health: p.Health}
	}
	return out
}

// Events returns the retained coordination event log.
func (c *Cluster) Events() []ClusterEvent {
	es := c.co.Events()
	out := make([]ClusterEvent, len(es))
	for i, e := range es {
		out[i] = fromClusterEvent(e)
	}
	return out
}

// ProposeMigration submits a placement intent to the cluster: move the
// object exported under guid to the node serving endpoint.  The intent
// reconciles against every other member's intents (highest priority
// wins, ties break on proposer id) and, if it stays the winner through
// the settle window, the object's home executes it.  The returned
// reason explains a refusal ("" when accepted).  This is the
// operator-facing form of what the adaptive engines do automatically.
func (c *Cluster) ProposeMigration(guid, endpoint string, priority int64, reason string) (accepted bool, why string) {
	return c.co.Submit(wire.Intent{GUID: guid, To: endpoint, Priority: priority, Reason: reason})
}

// ResolveObject returns the placement directory's (chain-collapsed)
// view of where the object behind guid lives: its current GUID and home
// endpoint.
func (c *Cluster) ResolveObject(guid string) (currentGUID, endpoint string, ok bool) {
	ref, ok := c.co.Resolve(guid)
	if !ok {
		return "", "", false
	}
	return ref.GUID, ref.Endpoint, true
}

func fromClusterEvent(e cluster.Event) ClusterEvent {
	return ClusterEvent{
		Tick: e.Tick, Kind: e.Kind, Peer: e.Peer, GUID: e.GUID,
		Class: e.Class, From: e.From, To: e.To, Detail: e.Detail,
	}
}
