package guid

import (
	"strings"
	"sync"
	"testing"
)

func TestNextUniqueAndPrefixed(t *testing.T) {
	g := NewGenerator("nodeA")
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if !strings.HasPrefix(id, "nodeA#") {
			t.Fatalf("bad prefix: %s", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestConcurrentNext(t *testing.T) {
	g := NewGenerator("n")
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, 200)
			for i := 0; i < 200; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate %s", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestClassGUID(t *testing.T) {
	id := ClassGUID("pkg.C")
	if id != "class:pkg.C" {
		t.Fatalf("%q", id)
	}
	cls, ok := IsClassGUID(id)
	if !ok || cls != "pkg.C" {
		t.Fatalf("%q %v", cls, ok)
	}
	if _, ok := IsClassGUID("nodeA#7"); ok {
		t.Fatal("object guid misread as class guid")
	}
	if _, ok := IsClassGUID("class:"); ok {
		t.Fatal("empty class accepted")
	}
}
