// Package guid generates globally unique identifiers for exported
// objects.  Identifiers embed the issuing node's name and a counter, so
// they are unique across a deployment, deterministic within a run (which
// keeps experiments reproducible), and human-readable in traces.
package guid

import (
	"fmt"
	"sync/atomic"
)

// Generator issues GUIDs for one node.
type Generator struct {
	node string
	seq  atomic.Uint64
}

// NewGenerator returns a generator stamping ids with the node name.
func NewGenerator(node string) *Generator {
	return &Generator{node: node}
}

// Next returns a fresh GUID such as "nodeA#42".
func (g *Generator) Next() string {
	return fmt.Sprintf("%s#%d", g.node, g.seq.Add(1))
}

// ClassGUID returns the well-known GUID under which a class's static
// singleton is addressed, e.g. "class:Config".  Statics are unique per
// hosting node, so no counter is needed.
func ClassGUID(class string) string {
	return "class:" + class
}

// IsClassGUID reports whether id addresses a class singleton and returns
// the class name.
func IsClassGUID(id string) (string, bool) {
	const p = "class:"
	if len(id) > len(p) && id[:len(p)] == p {
		return id[len(p):], true
	}
	return "", false
}
