package node

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rafda/internal/intercept"
	"rafda/internal/telemetry"
	"rafda/internal/transport"
	"rafda/internal/wire"
)

// shedNode builds a node wired to an in-proc RRP server sharing one
// OverloadStats instance, the same topology the facade assembles: the
// transport maintains the inflight gauge and slot-wait measurement the
// shedding interceptors key off.  Returns the node, the shared
// counters, a connected client, and the exported guids of two Cells —
// one for the flood to hold, one for the victim to probe.
func shedNode(t *testing.T, maxInflight int, shed intercept.ShedConfig) (*Node, *telemetry.OverloadStats, transport.Client, string, string) {
	t.Helper()
	res := transformSource(t, dedupSource)
	ov := &telemetry.OverloadStats{}
	n, err := New(Config{Name: "srv", Result: res, Overload: ov, Shed: shed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	tr := transport.NewRRP(transport.Options{MaxInflight: maxInflight, Overload: ov})
	srv, err := tr.Listen("", n.dispatch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	guids := make([]string, 2)
	for i := range guids {
		ref, err := n.InvokeStatic("Mk", "make")
		if err != nil {
			t.Fatal(err)
		}
		guids[i] = n.exports.Ensure(ref.O)
	}
	return n, ov, c, guids[0], guids[1]
}

// waitInflight polls the shared gauge until it reaches want.
func waitInflight(t *testing.T, ov *telemetry.OverloadStats, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ov.Inflight.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("inflight gauge stuck at %d, want %d", ov.Inflight.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFIFOUnfairnessPin pins the failure mode the shedding tier exists
// to fix: without it, dispatch-slot admission is pure FIFO and
// priority-blind.  A flood of class-0 calls holds every slot, and a
// class-1 victim with a live deadline expires in the admission queue —
// its priority bought it nothing.  If this test ever starts passing the
// victim through on a shed-free node, the admission path has grown an
// implicit policy and the interceptor ordering docs need revisiting.
func TestFIFOUnfairnessPin(t *testing.T) {
	_, ov, c, flood, victim := shedNode(t, 2, intercept.ShedConfig{})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			resp, err := c.Call(&wire.Request{ID: id, Op: wire.OpInvoke, GUID: flood,
				Method: "slow", Args: []wire.Value{{Kind: wire.KInt, Int: 200_000}},
				Caller: "flood"})
			if err != nil || resp.Err != "" {
				t.Errorf("flood call: %+v %v", resp, err)
			}
		}(uint64(i + 1))
	}
	waitInflight(t, ov, 2) // both slots held for ~200ms

	resp, err := c.Call(&wire.Request{ID: 10, Op: wire.OpInvoke, GUID: victim,
		Method: "peek", Priority: 1, Caller: "vip", DeadlineUs: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "deadline expired") {
		t.Fatalf("FIFO admission served the victim past full slots: %+v", resp)
	}
	if ov.AdmissionRejects.Load() == 0 {
		t.Fatal("victim expiry not counted as an admission reject")
	}
	wg.Wait()
}

// TestPriorityPreemptionAtSaturation is the counterpart pin: with
// strict-priority shedding on, the same saturation refuses class-0
// work at the door while a class-1 call sails through — the victim of
// the FIFO test is served, and the refusals are itemised per class.
func TestPriorityPreemptionAtSaturation(t *testing.T) {
	n, ov, c, flood, victim := shedNode(t, 8, intercept.ShedConfig{PriorityAt: 2})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			// Class-1 floods so they get in under the doubled threshold
			// and hold the gauge at 2 for the whole window.
			resp, err := c.Call(&wire.Request{ID: id, Op: wire.OpInvoke, GUID: flood,
				Method: "slow", Args: []wire.Value{{Kind: wire.KInt, Int: 300_000}},
				Priority: 1, Caller: "flood"})
			if err != nil || resp.Err != "" {
				t.Errorf("flood call: %+v %v", resp, err)
			}
		}(uint64(i + 1))
	}
	waitInflight(t, ov, 2)

	// Class 0 at the threshold: refused immediately, no queueing.
	shed, err := c.Call(&wire.Request{ID: 10, Op: wire.OpInvoke, GUID: victim,
		Method: "peek", Caller: "bulk"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(shed.Err, "load-shed:") {
		t.Fatalf("class 0 not shed at saturation: %+v", shed)
	}
	// Class 1 under its doubled threshold: served while the flood runs.
	served, err := c.Call(&wire.Request{ID: 11, Op: wire.OpInvoke, GUID: victim,
		Method: "peek", Priority: 1, Caller: "vip"})
	if err != nil {
		t.Fatal(err)
	}
	if served.Err != "" {
		t.Fatalf("class 1 refused below its threshold: %+v", served)
	}
	wg.Wait()

	if got := ov.ShedPriority.Load(); got != 1 {
		t.Fatalf("shed_priority = %d, want 1", got)
	}
	s := n.ShedSnapshot()
	if s.ByPriority["0"] != 1 {
		t.Fatalf("per-class shed table = %v, want class 0 -> 1", s.ByPriority)
	}
}

// TestFairShareUnderFlooding pins the per-tenant policy end to end: a
// flooding tenant saturates the engaged threshold and its next call is
// refused by name, while a meek tenant arriving at the same instant is
// served within its share.
func TestFairShareUnderFlooding(t *testing.T) {
	n, ov, c, flood, victim := shedNode(t, 8, intercept.ShedConfig{FairShareAt: 2})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			resp, err := c.Call(&wire.Request{ID: id, Op: wire.OpInvoke, GUID: flood,
				Method: "slow", Args: []wire.Value{{Kind: wire.KInt, Int: 300_000}},
				Caller: "flood"})
			if err != nil || resp.Err != "" {
				t.Errorf("flood call: %+v %v", resp, err)
			}
		}(uint64(i + 1))
	}
	waitInflight(t, ov, 2)

	shed, err := c.Call(&wire.Request{ID: 10, Op: wire.OpInvoke, GUID: victim,
		Method: "peek", Caller: "flood"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(shed.Err, "load-shed:") || !strings.Contains(shed.Err, `"flood"`) {
		t.Fatalf("flooding tenant's overshare call not refused by name: %+v", shed)
	}
	served, err := c.Call(&wire.Request{ID: 11, Op: wire.OpInvoke, GUID: victim,
		Method: "peek", Caller: "meek"})
	if err != nil {
		t.Fatal(err)
	}
	if served.Err != "" {
		t.Fatalf("meek tenant refused within share: %+v", served)
	}
	wg.Wait()

	if got := ov.ShedFairShare.Load(); got != 1 {
		t.Fatalf("shed_fairshare = %d, want 1", got)
	}
	if s := n.ShedSnapshot(); s.ByTenant["flood"] != 1 || s.ByTenant["meek"] != 0 {
		t.Fatalf("per-tenant shed table = %v", s.ByTenant)
	}
}

// TestCoDelRejectsSustainedQueueing drives sustained slot contention
// through the real transport clock: with one dispatch slot and a CoDel
// target far below the service time, waits stay above target and the
// controller must enter a drop cycle within the test window.  (The
// deterministic control-law shape is pinned with a fake clock in
// internal/intercept; this is the wiring test — transport-measured
// SlotWaitUs reaching the controller.)
func TestCoDelRejectsSustainedQueueing(t *testing.T) {
	_, ov, c, flood, _ := shedNode(t, 1, intercept.ShedConfig{
		CoDelTarget: time.Millisecond, CoDelInterval: 5 * time.Millisecond})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var once sync.Once
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := c.Call(&wire.Request{ID: uint64(g*10_000 + i + 1),
					Op: wire.OpInvoke, GUID: flood, Method: "slow",
					Args: []wire.Value{{Kind: wire.KInt, Int: 10_000}}, Caller: "flood"})
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if strings.HasPrefix(resp.Err, "load-shed: queue delay") {
					once.Do(func() { close(stop) })
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("no CoDel drop within 10s of sustained queueing")
	}
	select {
	case <-stop:
	default:
		t.Fatal("workers exited without observing a CoDel shed")
	}
	if ov.ShedCoDel.Load() == 0 {
		t.Fatal("shed_codel counter never moved")
	}
}

// TestShedNeverCachedByDedup pins the load-bearing ordering contract:
// shedding runs before dedup Begin, so a tokened call refused under
// load retries cleanly once load drops — the shed response must never
// become the token's permanent replay answer.
func TestShedNeverCachedByDedup(t *testing.T) {
	res := transformSource(t, dedupSource)
	ov := &telemetry.OverloadStats{}
	n, err := New(Config{Name: "srv", Result: res, Overload: ov,
		Shed: intercept.ShedConfig{PriorityAt: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	g := n.exports.Ensure(ref.O)

	// Saturated: the tokened first attempt is refused.
	ov.Inflight.Store(1)
	tok := dedupToken("c!1", 1)
	if resp := n.dispatch(bumpReq(1, g, "bump", tok)); !strings.HasPrefix(resp.Err, "load-shed:") {
		t.Fatalf("first attempt not shed: %+v", resp)
	}
	// Load drops: the retry of the same token must execute, not replay
	// the refusal.
	ov.Inflight.Store(0)
	retry := n.dispatch(bumpReq(2, g, "bump", tok))
	if retry.Err != "" || retry.Result.Int != 1 {
		t.Fatalf("retry after shed did not execute: %+v", retry)
	}
	// And from here the normal exactly-once contract holds: a duplicate
	// of the executed retry replays without bumping again.
	dup := n.dispatch(bumpReq(3, g, "bump", tok))
	if dup.Err != "" || dup.Result.Int != 1 {
		t.Fatalf("duplicate after execution: %+v", dup)
	}
}

// TestUserInterceptorPlacement pins where Node.Use splices user tiers
// into the chain: below shedding (they see only admitted traffic),
// above dedup (their short-circuits are never recorded as replay
// answers), and below the plane (they never see ping/introspect).
func TestUserInterceptorPlacement(t *testing.T) {
	res := transformSource(t, dedupSource)
	ov := &telemetry.OverloadStats{}
	n, err := New(Config{Name: "srv", Result: res, Overload: ov,
		Shed: intercept.ShedConfig{PriorityAt: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	g := n.exports.Ensure(ref.O)

	var seen []string
	n.Use(func(cc *intercept.CallCtx, next intercept.Handler) (*wire.Response, error) {
		seen = append(seen, cc.Req.Method)
		if cc.Req.Method == "forbidden" {
			return wire.Errorf(cc.Req, "policy: forbidden method"), nil
		}
		return next(cc)
	})

	// Plane op: answered above the user tier.
	if resp := n.dispatch(&wire.Request{ID: 1, Op: wire.OpPing}); resp.Err != "" {
		t.Fatalf("ping: %+v", resp)
	}
	// Shed call: refused above the user tier.
	ov.Inflight.Store(1)
	if resp := n.dispatch(&wire.Request{ID: 2, Op: wire.OpInvoke, GUID: g, Method: "peek"}); !strings.HasPrefix(resp.Err, "load-shed:") {
		t.Fatalf("expected shed: %+v", resp)
	}
	ov.Inflight.Store(0)
	// Admitted call: the user tier sees it and may short-circuit.
	if resp := n.dispatch(&wire.Request{ID: 3, Op: wire.OpInvoke, GUID: g, Method: "forbidden"}); resp.Err != "policy: forbidden method" {
		t.Fatalf("user short-circuit: %+v", resp)
	}
	if resp := n.dispatch(&wire.Request{ID: 4, Op: wire.OpInvoke, GUID: g, Method: "peek"}); resp.Err != "" || resp.Result.Int != 0 {
		t.Fatalf("admitted call: %+v", resp)
	}
	if got := strings.Join(seen, ","); got != "forbidden,peek" {
		t.Fatalf("user tier saw %q, want only admitted traffic \"forbidden,peek\"", got)
	}

	// A user short-circuit of a *tokened* call: dedup sits below the
	// user tier, so the refusal is not recorded — a retry once the
	// policy allows it executes normally.
	n.Use(func(cc *intercept.CallCtx, next intercept.Handler) (*wire.Response, error) {
		return next(cc)
	}) // Use while serving: chain swap must not disturb built-in state
	if resp := n.dispatch(bumpReq(5, g, "forbidden", dedupToken("c!2", 1))); resp.Err != "policy: forbidden method" {
		t.Fatalf("tokened short-circuit: %+v", resp)
	}
	if resp := n.dispatch(bumpReq(6, g, "bump", dedupToken("c!2", 2))); resp.Err != "" || resp.Result.Int != 1 {
		t.Fatalf("tokened call after short-circuit: %+v", resp)
	}
}
