package node

import (
	"strings"
	"time"

	"rafda/internal/guid"
	"rafda/internal/ir"
	"rafda/internal/policy"
	"rafda/internal/telemetry"
	"rafda/internal/trace"
	"rafda/internal/transform"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// registerFactoryNatives binds make and discover for every transformed
// class.  These are the paper's only implementation-aware methods: they
// consult the policy table and build either local implementations or
// proxies.
func (n *Node) registerFactoryNatives() {
	for _, class := range n.result.Transformed {
		class := class
		n.machine.RegisterNative(transform.OFactory(class), transform.MakeMethod, 0,
			func(env *vm.Env, _ vm.Value, _ []vm.Value) (vm.Value, *vm.Thrown, error) {
				pl, _ := n.pol.For(class)
				if pl.Kind != policy.Remote {
					if rec := n.telem.Load(); rec != nil {
						rec.RecordCreateLocal(class)
					}
					return env.Construct(transform.OLocal(class), nil)
				}
				if rec := n.telem.Load(); rec != nil {
					rec.RecordCreateRemote(class, pl.Endpoint)
				}
				return n.remoteCreate(env, class, pl)
			})
		n.machine.RegisterNative(transform.CFactory(class), transform.DiscoverMethod, 0,
			func(env *vm.Env, _ vm.Value, _ []vm.Value) (vm.Value, *vm.Thrown, error) {
				return n.discover(env, class)
			})
	}
}

// remoteCreate implements make() under a remote placement: ask the
// placement's node to instantiate the class and wrap the returned
// reference in a proxy.  The subsequent factory init call runs locally
// and initialises the remote object through the proxy's properties.
func (n *Node) remoteCreate(env *vm.Env, class string, pl policy.Placement) (vm.Value, *vm.Thrown, error) {
	req := &wire.Request{ID: n.nextReqID(), Op: wire.OpCreate, Class: class, Caller: n.callerEndpoint(pl.Proto)}
	resp, callErr := n.callRemote(env, pl.Endpoint, req)
	if callErr != nil {
		return vm.Value{}, remoteError(env, "create %s at %s: %v", class, pl.Endpoint, callErr), nil
	}
	if resp.Err != "" {
		return vm.Value{}, remoteError(env, "create %s: %s", class, resp.Err), nil
	}
	if resp.ExClass != "" {
		return vm.Value{}, n.rethrow(env, resp), nil
	}
	val, err := n.unmarshalValue(env, resp.Result)
	if err != nil {
		return vm.Value{}, remoteError(env, "create %s: %v", class, err), nil
	}
	return val, nil, nil
}

// discover implements the class factory's discover(): local singleton or
// statics proxy per policy, cached until the policy version changes (so
// run-time re-policy takes effect — §4 dynamic reconfiguration).  The
// cache lives in the singleton table under its own lock; concurrent
// discoveries of the same class at the same policy version converge on
// one cached value (for the local kind, localSingleton already
// guarantees a single instance).
func (n *Node) discover(env *vm.Env, class string) (vm.Value, *vm.Thrown, error) {
	pl, ver := n.pol.For(class)
	key := "discover:" + class
	n.singMu.Lock()
	if e, ok := n.singletons[key]; ok && e.valSet && e.version == ver {
		val := e.val
		n.singMu.Unlock()
		return val, nil, nil
	}
	n.singMu.Unlock()
	if pl.Kind != policy.Remote {
		me, thrown, err := n.localSingleton(env, class)
		if thrown != nil || err != nil {
			return vm.Value{}, thrown, err
		}
		n.singMu.Lock()
		n.singletons[key] = &singletonEntry{val: me, valSet: true, version: ver, local: true}
		n.singMu.Unlock()
		return me, nil, nil
	}
	proxyClass := transform.CProxy(class, pl.Proto)
	if !n.machine.Program().Has(proxyClass) {
		return vm.Value{}, remoteError(env, "no %s proxy generated for statics of %s", pl.Proto, class), nil
	}
	obj, err := env.New(proxyClass)
	if err != nil {
		return vm.Value{}, nil, err
	}
	setProxyFields(obj, guid.ClassGUID(class), pl.Endpoint, pl.Proto, class)
	me := vm.RefV(obj)
	n.singMu.Lock()
	n.singletons[key] = &singletonEntry{val: me, valSet: true, version: ver}
	n.singMu.Unlock()
	return me, nil, nil
}

// registerProxyNatives binds the class-level native handler of every
// generated proxy class: each method call marshals its arguments, sends
// an invocation over the proxy's transport, and unmarshals the reply.
func (n *Node) registerProxyNatives() {
	for _, c := range n.result.Program.Classes() {
		classSide := strings.HasPrefix(c.Meta, "generated:c-proxy:")
		if !classSide && !strings.HasPrefix(c.Meta, "generated:o-proxy:") {
			continue
		}
		n.machine.RegisterClassNative(c.Name, func(env *vm.Env, method string, recv vm.Value, args []vm.Value) (vm.Value, *vm.Thrown, error) {
			return n.proxyInvoke(env, classSide, method, recv, args)
		})
	}
}

// proxyTripleFields is the proxy reference triple proxyInvoke reads on
// every call, in ReadFields order.
var proxyTripleFields = [3]string{
	transform.ProxyFieldEndpoint,
	transform.ProxyFieldTarget,
	transform.ProxyFieldGUID,
}

// proxyInvoke performs one remote method invocation on behalf of a proxy
// object.
func (n *Node) proxyInvoke(env *vm.Env, classSide bool, method string, recv vm.Value, args []vm.Value) (vm.Value, *vm.Thrown, error) {
	if recv.O == nil {
		return vm.Value{}, remoteError(env, "proxy invocation on null"), nil
	}
	// Consume forwarded-token baggage first, whichever path the call
	// takes below: this execution is a forwarding hop for an inbound
	// tokened call (the dispatcher deposited the token when the gate
	// opened onto a proxy), and the re-send must reuse that token so the
	// new home recognises a duplicate of work the old home already
	// completed.  Taking it unconditionally keeps it from leaking into a
	// later nested call of the same execution.
	fwd, _ := env.TakeForward().(*wire.CallToken)
	// One consistent snapshot of the proxy's reference triple: a
	// concurrent retarget (migration) can never hand us the GUID of one
	// home and the endpoint of another.  ReadFields is the
	// allocation-free form of View — this runs on every proxy call.
	var triple [3]vm.Value
	recv.O.ReadFields(proxyTripleFields[:], triple[:])
	endpoint := triple[0].S
	target := triple[1].S
	id := triple[2].S

	// Directory-first resolution: when this node is in a cluster and the
	// placement directory knows a fresher home for the object, retarget
	// the proxy *before* dialling.  The directory is chain-collapsed, so
	// a reference N migrations stale jumps straight to the final home —
	// without this, each call would walk the whole Response.Redirect
	// forwarding chain one hop at a time (and pay every intermediate
	// node once more).  Costs one atomic load when not clustered.
	if !classSide {
		if ref, ok := n.resolveViaDirectory(id, endpoint); ok {
			if p, _, err := splitProto(ref.Endpoint); err == nil {
				setProxyFields(recv.O, ref.GUID, ref.Endpoint, p, orString(ref.Target, target))
				id, endpoint = ref.GUID, ref.Endpoint
			}
		}
	}

	// Read routing (docs/REPLICATION.md): a provably read-only call on a
	// replicated object is served by the nearest lease-valid replica —
	// this node's own copy when it holds one, else a live remote replica
	// — instead of the primary.  The retarget is per-call: the proxy's
	// stored reference keeps naming the primary, because writes must
	// keep serialising there.  Effect classification keys on the proxy
	// class itself (the alias hook gave proxy natives their local twins'
	// effects), so this is two map reads plus one atomic load; routing
	// is skipped when the proxy points at this very node (the
	// self-collapse below serves primary-fresh state directly).
	routedRead := false
	if !classSide && n.effects.ReadOnly(recv.O.ClassName(), ir.MethodKey(method, len(args))) {
		if co := n.coord.Load(); co != nil {
			if route, ok := co.ReadTarget(id); ok {
				switch {
				case route.Local:
					if obj, exp := n.exports.Get(route.GUID); exp {
						if rec := n.telem.Load(); rec != nil {
							st := rec.ForObject(obj, route.GUID, target)
							st.RecordLocal()
							st.RecordEffect(false)
						}
						return env.CallGated(obj, method, args)
					}
				case route.Endpoint != "" && route.Endpoint != endpoint && !n.servesEndpoint(endpoint):
					id, endpoint = route.GUID, route.Endpoint
					routedRead = true
				}
			}
		}
	}
	proto, _, _ := splitProto(endpoint)

	// A proxy can end up pointing at this very node (e.g. after an
	// object is migrated back home): collapse to a direct call.  The
	// collapsed call still acquires the target's invocation gate
	// (re-entrantly if this execution already holds it), so it keeps the
	// same monitor semantics it would have had arriving over the wire.
	// Telemetry counts it as a local call — this is the steady-state
	// path after an adaptive migration lands the object next to its
	// caller, so it stays clock-free.
	if n.servesEndpoint(endpoint) {
		if classSide {
			me, thrown, err := n.localSingleton(env, target)
			if thrown != nil || err != nil {
				return vm.Value{}, thrown, err
			}
			if rec := n.telem.Load(); rec != nil {
				rec.ForObject(me.O, guid.ClassGUID(target), target).RecordLocal()
			}
			return env.CallGated(me.O, method, args)
		}
		if obj, ok := n.exports.Get(id); ok {
			writer := n.isWriter(obj.ClassName(), method, len(args))
			if rec := n.telem.Load(); rec != nil {
				st := rec.ForObject(obj, id, target)
				st.RecordLocal()
				st.RecordEffect(writer)
			}
			res, thrown, callErr := env.CallGated(obj, method, args)
			// A collapsed write on a replicated primary fans out before
			// returning, like any dispatched write.  RunUnlocked releases
			// this execution's locks while the barrier re-acquires the
			// object's gate for its snapshot.
			if callErr == nil && writer && n.replActive.Load() {
				if _, replicated := n.replPrim.Load(id); replicated {
					env.RunUnlocked(func() { n.replicaWriteBarrier(obj, id, envCtx(env)) })
				}
			}
			return res, thrown, callErr
		}
		return vm.Value{}, remoteError(env, "%s.%s: stale self-reference %s", target, method, id), nil
	}

	req := &wire.Request{ID: n.nextReqID(), Method: method, Caller: n.callerEndpoint(proto)}
	if fwd != nil {
		// Same logical call, next physical delivery: copy the inbound
		// token with the attempt ordinal bumped (the copy keeps the
		// original request's token immutable for its own replay path).
		t := *fwd
		t.Attempt++
		req.Token = &t
	}
	if classSide {
		req.Op = wire.OpInvokeClass
		req.Class = target
	} else {
		req.Op = wire.OpInvoke
		req.GUID = id
	}
	req.Args = make([]wire.Value, len(args))
	for i, a := range args {
		mv, err := n.marshalValue(a, proto)
		if err != nil {
			return vm.Value{}, remoteError(env, "marshal argument %d of %s.%s: %v", i+1, target, method, err), nil
		}
		req.Args[i] = mv
	}

	n.stats.remoteCallsOut.Add(1)
	rec := n.telem.Load()
	// Client span: parented to the server span that started this
	// execution (env baggage) so the remote leg joins the inbound
	// call's trace — or rooting a fresh trace for host-driven calls.
	// The context rides the request, so the callee's server span (and
	// any failover spans the pool emits en route) parent to this one.
	sp := n.startSpan(envCtx(env), trace.KindClient, method, endpoint)
	if sp != nil {
		if routedRead {
			sp.Note = "routed-read"
		}
		req.Trace = wireCtx(sp)
	}
	// Deadline propagation: an execution started by a deadlined dispatch
	// carries its remaining budget as env baggage (already charged for
	// this node's queue and gate waits); stamp it on the outbound leg so
	// the next hop's admission and gate checks spend from the same
	// budget (docs/OBSERVABILITY.md).
	req.DeadlineUs = env.DeadlineUs()
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	resp, callErr := n.callRemote(env, endpoint, req)
	if sp != nil {
		// Dur from the span's own Start stamp — no second clock read on
		// the traced path when telemetry is off.
		sp.Dur = time.Now().UnixNano() - sp.Start
		if callErr != nil {
			sp.Err = callErr.Error()
		} else if resp.Err != "" {
			sp.Err = resp.Err
		}
		n.tracer.Emit(sp)
	}
	if callErr != nil {
		return vm.Value{}, remoteError(env, "%s.%s at %s: %v", target, method, endpoint, callErr), nil
	}
	if rec != nil {
		rec.RecordOutbound(target, endpoint,
			telemetry.RequestSize(req)+telemetry.ResponseSize(resp), time.Since(start))
	}
	// The callee served through a forwarding proxy and told us where the
	// object now lives: retarget our proxy so the next call goes to the
	// new home directly (and, when the new home is this node, collapses
	// to a local call).  SetFields writes the reference quadruple
	// atomically; racing retargets both carry valid homes, last wins.
	if r := resp.Redirect; r != nil && !classSide && !routedRead && r.GUID != "" && r.Endpoint != "" {
		setProxyFields(recv.O, r.GUID, r.Endpoint, r.Proto, orString(r.Target, target))
	}
	if resp.Err != "" {
		return vm.Value{}, remoteError(env, "%s.%s: %s", target, method, resp.Err), nil
	}
	if resp.ExClass != "" {
		return vm.Value{}, n.rethrow(env, resp), nil
	}
	val, err := n.unmarshalValue(env, resp.Result)
	if err != nil {
		return vm.Value{}, remoteError(env, "unmarshal result of %s.%s: %v", target, method, err), nil
	}
	return val, nil, nil
}

// callRemote sends a request while the VM lock is released, so incoming
// work (including callbacks from the callee) can execute meanwhile.
// The call rides the pool shard its affinity key selects — the target
// GUID, so one object's calls share one socket.
//
// Exactly-once regime (docs/CONCURRENCY.md §10): unless the request
// already carries a token (a forwarded call reusing its inbound token)
// or untokened legacy interop is configured, the call is stamped with a
// fresh (caller, seq, attempt) token and rides the pool's persistent
// failover retry — the callee's dedup window makes a duplicate delivery
// replay the recorded response instead of executing twice, so even
// OpCreate retries safely (a replayed create returns the original GUID
// rather than stranding an orphan instance).  The historical OpCreate
// exemption survives only for untokened requests: without a token a
// duplicate create really would run the constructor twice, so legacy
// creates keep the shard-0 no-retry path and a mid-flight connection
// death surfaces as the pre-pool sys.RemoteException.
func (n *Node) callRemote(env *vm.Env, endpoint string, req *wire.Request) (*wire.Response, error) {
	if req.Token == nil && !n.untokened {
		defer n.issuer.Finish(n.issuer.Stamp(req))
	}
	var resp *wire.Response
	var err error
	env.RunUnlocked(func() {
		if req.Op == wire.OpCreate && req.Token == nil {
			resp, err = n.cache.Call(endpoint, req)
		} else {
			resp, err = n.callEndpoint(endpoint, affinityKey(req), req)
		}
	})
	return resp, err
}

// rethrow re-materialises a remote program exception locally.  The
// exception class always exists locally (both nodes run the same
// transformed program); if it somehow does not, degrade to
// sys.RemoteException.
func (n *Node) rethrow(env *vm.Env, resp *wire.Response) *vm.Thrown {
	obj, err := env.New(resp.ExClass)
	if err != nil {
		return remoteError(env, "remote exception %s: %s", resp.ExClass, resp.ExMsg)
	}
	obj.Set("message", vm.StringV(resp.ExMsg))
	return &vm.Thrown{Obj: obj}
}
