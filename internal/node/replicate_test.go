package node

import (
	"fmt"
	"testing"
	"time"

	"rafda/internal/cluster"
	"rafda/internal/policy"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// replSource is the shared program for the replication tests: a
// read-hot Item reachable from every node through Mk's static field,
// with a classified-read get and classified-write set/bump.
const replSource = `
class Item {
    int v;
    Item(int v) { this.v = v; }
    int get() { return v; }
    int set(int x) { this.v = x; return x; }
    int bump() { v = v + 1; return v; }
}
class Mk {
    static Item obj = new Item(41);
    static Item get() { return obj; }
}
class Main { static void main() {} }`

// replCluster builds the canonical three-node replication deployment:
// the object lives at home, readerA and readerB hold proxies to it, and
// all three are cluster members driven by deterministic Ticks.  tweak
// edits each member's cluster config before it joins.
func replCluster(t *testing.T, tweak func(*cluster.Config)) (home, readerA, readerB *Node, coords []*cluster.Coordinator, eps [3]string, obj *vm.Object, refA, refB vm.Value) {
	t.Helper()
	res := transformSource(t, replSource)
	mk := func(name, seed string) (*Node, *cluster.Coordinator, string) {
		n, err := New(Config{Name: name, Result: res})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		ep, err := n.Serve("inproc", "")
		if err != nil {
			t.Fatal(err)
		}
		cfg := cluster.Config{Fanout: 8, Seed: int64(len(name)) + 7}
		if tweak != nil {
			tweak(&cfg)
		}
		var seeds []string
		if seed != "" {
			seeds = []string{seed}
		}
		co, err := n.StartCluster(cfg, seeds)
		if err != nil {
			t.Fatal(err)
		}
		return n, co, ep
	}
	home, co1, ep1 := mk("home", "")
	readerA, co2, ep2 := mk("readerA", co1.Self())
	readerB, co3, ep3 := mk("readerB", co1.Self())
	coords = []*cluster.Coordinator{co1, co2, co3}
	eps = [3]string{ep1, ep2, ep3}

	ref, err := home.InvokeStatic("Mk", "get")
	if err != nil {
		t.Fatal(err)
	}
	obj = ref.O
	for _, r := range []*Node{readerA, readerB} {
		pl, err := policy.RemoteAt(ep1)
		if err != nil {
			t.Fatal(err)
		}
		r.Policy().SetClass("Mk", pl)
	}
	ra, err := readerA.InvokeStatic("Mk", "get")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := readerB.InvokeStatic("Mk", "get")
	if err != nil {
		t.Fatal(err)
	}
	return home, readerA, readerB, coords, eps, obj, ra, rb
}

func tickAll(coords []*cluster.Coordinator, rounds int) {
	for i := 0; i < rounds; i++ {
		for _, co := range coords {
			co.Tick()
		}
	}
}

// TestReplicatedReadsServeLocally: after Replicate and a few gossip
// rounds, both readers' classified reads route to their local copies —
// zero traffic at the primary — and still observe the object's state.
func TestReplicatedReadsServeLocally(t *testing.T) {
	home, readerA, readerB, coords, eps, obj, refA, refB := replCluster(t, nil)

	if home.IsReplicated(obj) {
		t.Fatal("not yet replicated")
	}
	if err := home.Replicate(vm.RefV(obj), eps[1], eps[2]); err != nil {
		t.Fatal(err)
	}
	if !home.IsReplicated(obj) {
		t.Fatal("primary should report replication")
	}
	tickAll(coords, 4)

	guid, _ := home.exports.GUIDOf(obj)
	for i, co := range coords[1:] {
		route, ok := co.ReadTarget(guid)
		if !ok || !route.Local {
			t.Fatalf("reader %d: read route %+v ok=%v, want local replica", i, route, ok)
		}
	}

	// No ticks from here: the primary's inbound counter isolates the
	// reads themselves.
	before := home.Snapshot().RemoteCallsIn
	for i, rd := range []struct {
		n   *Node
		ref vm.Value
	}{{readerA, refA}, {readerB, refB}} {
		got, err := rd.n.CallOn(rd.ref, "get")
		if err != nil || got.I != 41 {
			t.Fatalf("reader %d local read: %v %v", i, got, err)
		}
	}
	if after := home.Snapshot().RemoteCallsIn; after != before {
		t.Fatalf("replicated reads still reached the primary: %d -> %d", before, after)
	}
}

// TestWriteInvalidatesReplicasBeforeAck is the tentpole's core
// guarantee, deterministically: a write through a reader's proxy
// serialises at the primary and updates/invalidates every copy before
// it acknowledges, so the very next read at EVERY replica — with no
// gossip ticks in between — observes the written value.  No replica
// serves a read older than the last acknowledged write.
func TestWriteInvalidatesReplicasBeforeAck(t *testing.T) {
	home, readerA, readerB, coords, eps, obj, refA, refB := replCluster(t, nil)
	if err := home.Replicate(vm.RefV(obj), eps[1], eps[2]); err != nil {
		t.Fatal(err)
	}
	tickAll(coords, 4)
	guid, _ := home.exports.GUIDOf(obj)

	// The write goes through readerA's proxy (which still names the
	// primary); the ack races nothing — by the time CallOn returns,
	// both copies must already carry the new value and epoch.
	if got, err := readerA.CallOn(refA, "set", vm.IntV(7)); err != nil || got.I != 7 {
		t.Fatalf("write through proxy: %v %v", got, err)
	}
	for i, rd := range []struct {
		n   *Node
		ref vm.Value
	}{{readerA, refA}, {readerB, refB}} {
		got, err := rd.n.CallOn(rd.ref, "get")
		if err != nil || got.I != 7 {
			t.Fatalf("reader %d read %v %v immediately after acked write, want 7 (stale replica)", i, got, err)
		}
	}
	// The epoch advanced past the install epoch and the directory knows.
	if set, ok := coords[0].ReplicaSet(guid); !ok || set.Epoch < 2 {
		t.Fatalf("primary epoch after write: %+v ok=%v, want epoch >= 2", set, ok)
	}

	// Monotonicity under concurrency (-race exercises the barrier/read
	// interleavings): one writer streams increasing values through the
	// primary while both readers spin on their local copies; no reader
	// may ever observe a value going backwards, and once the last write
	// acks, every replica reads it.
	const writes = 40
	done := make(chan error, 2)
	stop := make(chan struct{})
	reader := func(n *Node, ref vm.Value) {
		last := int64(0)
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			got, err := n.CallOn(ref, "get")
			if err != nil {
				done <- err
				return
			}
			if got.I < last {
				done <- fmt.Errorf("read regressed: %d after %d", got.I, last)
				return
			}
			last = got.I
		}
	}
	go reader(readerA, refA)
	go reader(readerB, refB)
	for i := 1; i <= writes; i++ {
		if _, err := home.CallOn(vm.RefV(obj), "set", vm.IntV(int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("reader observed regression or error: %v", err)
		}
	}
	for i, rd := range []struct {
		n   *Node
		ref vm.Value
	}{{readerA, refA}, {readerB, refB}} {
		got, err := rd.n.CallOn(rd.ref, "get")
		if err != nil || got.I != 100+writes {
			t.Fatalf("reader %d final read %v %v, want %d", i, got, err, 100+writes)
		}
	}
}

// TestWriteRetryThroughReplicaIsExactlyOnce: a tokened write landing at
// a replica forwards to the primary under the caller's own token
// (attempt bumped), so a duplicate delivery of the same logical write —
// whether it re-arrives at the replica or goes straight to the primary
// as a post-redirect retry — replays instead of re-executing.  The PR6
// dedup plane and the replication plane compose.
func TestWriteRetryThroughReplicaIsExactlyOnce(t *testing.T) {
	home, readerA, _, coords, eps, obj, _, _ := replCluster(t, nil)
	if err := home.Replicate(vm.RefV(obj), eps[1], eps[2]); err != nil {
		t.Fatal(err)
	}
	tickAll(coords, 4)
	guid, _ := home.exports.GUIDOf(obj)

	// The replica's local GUID for its copy (what a read-routed caller
	// would hold).
	set, ok := coords[0].ReplicaSet(guid)
	if !ok {
		t.Fatal("no replica set at primary")
	}
	var replicaGUID string
	for _, r := range set.Replicas {
		if r.Endpoint == eps[1] {
			replicaGUID = r.GUID
		}
	}
	if replicaGUID == "" {
		t.Fatalf("readerA not in replica set %+v", set)
	}

	tok := &wire.CallToken{Caller: "ext!1", Seq: 1}
	req := func(id uint64) *wire.Request {
		c := *tok
		return &wire.Request{ID: id, Op: wire.OpInvoke, GUID: replicaGUID, Method: "bump", Token: &c}
	}
	first := readerA.dispatch(req(1))
	if first.Err != "" || first.Result.Int != 42 {
		t.Fatalf("write via replica: %+v", first)
	}
	// Duplicate delivery at the replica: replayed from its window.
	dup := readerA.dispatch(req(2))
	if dup.Err != "" || dup.Result.Int != 42 {
		t.Fatalf("duplicate at replica re-executed: %+v", dup)
	}
	// Post-redirect retry straight at the primary, same token with the
	// attempt the forward used: the primary's window recognises it.
	retry := &wire.Request{ID: 3, Op: wire.OpInvoke, GUID: guid, Method: "bump",
		Token: &wire.CallToken{Caller: "ext!1", Seq: 1, Attempt: 1}}
	if resp := home.dispatch(retry); resp.Err != "" || resp.Result.Int != 42 {
		t.Fatalf("post-redirect retry at primary re-executed: %+v", resp)
	}
	if got, err := home.CallOn(vm.RefV(obj), "get"); err != nil || got.I != 42 {
		t.Fatalf("counter after retries: %v %v, want one bump to 42", got, err)
	}
}

// TestPrimaryFailoverPromotesReplica: when the primary dies, the
// smallest live replica endpoint promotes itself (serving the object
// under its cluster-wide identity), the other replica re-leases from
// the new primary, and no read anywhere observes state older than the
// last write the dead primary acknowledged.
func TestPrimaryFailoverPromotesReplica(t *testing.T) {
	home, readerA, readerB, coords, eps, obj, refA, refB := replCluster(t, func(c *cluster.Config) {
		c.SuspectAfter, c.DeadAfter, c.LeaseTicks = 2, 3, 3
	})
	if err := home.Replicate(vm.RefV(obj), eps[1], eps[2]); err != nil {
		t.Fatal(err)
	}
	tickAll(coords, 4)
	guid, _ := home.exports.GUIDOf(obj)

	// Last acknowledged write before the failure.
	if _, err := home.CallOn(vm.RefV(obj), "set", vm.IntV(7)); err != nil {
		t.Fatal(err)
	}

	// The primary dies.  Surviving members keep ticking until the
	// suspicion ladder declares it dead and one of them promotes.
	if err := home.Close(); err != nil {
		t.Fatal(err)
	}
	survivors := coords[1:]
	winner, loser := readerA, readerB
	winnerEp := eps[1]
	if eps[2] < eps[1] {
		winner, loser = readerB, readerA
		winnerEp = eps[2]
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		tickAll(survivors, 1)
		if set, ok := winner.Cluster().ReplicaSet(guid); ok && set.Primary == winnerEp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("promotion never happened")
		}
	}
	// The winner serves the object under its cluster-wide identity.
	po, ok := winner.exports.Get(guid)
	if !ok {
		t.Fatalf("promoted node does not export %s", guid)
	}
	if got, err := winner.CallOn(vm.RefV(po), "get"); err != nil || got.I != 7 {
		t.Fatalf("promoted read: %v %v, want the last acked write 7", got, err)
	}
	// A few more rounds: the loser learns the new primary (directory
	// move + lease renewal) and reads resume — still the acked value.
	tickAll(survivors, 4)
	loserRef, winnerRef := refB, refA
	if loser == readerA {
		loserRef, winnerRef = refA, refB
	}
	if got, err := loser.CallOn(loserRef, "get"); err != nil || got.I != 7 {
		t.Fatalf("surviving replica read after failover: %v %v, want 7", got, err)
	}
	// Writes work again through the new primary, and replicas follow.
	if got, err := loser.CallOn(loserRef, "set", vm.IntV(9)); err != nil || got.I != 9 {
		t.Fatalf("write after failover: %v %v", got, err)
	}
	if got, err := winner.CallOn(winnerRef, "get"); err != nil || got.I != 9 {
		t.Fatalf("read at new primary after failover write: %v %v, want 9", got, err)
	}
	if got, err := loser.CallOn(loserRef, "get"); err != nil || got.I != 9 {
		t.Fatalf("read at surviving replica after failover write: %v %v, want 9", got, err)
	}
}

// TestMigrationDissolvesReplication: a replicated primary that migrates
// drops its replica set first (tombstone + copy drops), so the moved
// object is single-homed at its new node and replica copies do not
// linger serving stale state.
func TestMigrationDissolvesReplication(t *testing.T) {
	home, readerA, _, coords, eps, obj, refA, _ := replCluster(t, nil)
	if err := home.Replicate(vm.RefV(obj), eps[1], eps[2]); err != nil {
		t.Fatal(err)
	}
	tickAll(coords, 4)
	guid, _ := home.exports.GUIDOf(obj)

	if err := home.Migrate(vm.RefV(obj), eps[2]); err != nil {
		t.Fatal(err)
	}
	if home.IsReplicated(obj) {
		t.Fatal("replication should dissolve on migration")
	}
	if _, ok := coords[0].ReadTarget(guid); ok {
		t.Fatal("read route survived the migration tombstone")
	}
	// readerA's next write lands at the new single home (directory or
	// redirect chain) and reads observe it without any replica plane.
	if got, err := readerA.CallOn(refA, "set", vm.IntV(5)); err != nil || got.I != 5 {
		t.Fatalf("write after dissolution: %v %v", got, err)
	}
	if got, err := readerA.CallOn(refA, "get"); err != nil || got.I != 5 {
		t.Fatalf("read after dissolution: %v %v", got, err)
	}
}

// TestFailoverEpochJumpNoStaleReadAtDivergedReplica pins the promotion
// epoch jump: the dead primary can have died inside ONE unacked fan-out,
// so a surviving replica may already hold epoch E while the promoted
// node and the set record E-1.  Promotion must seed the write epoch
// strictly above E — otherwise the new primary's first acknowledged
// write commits at E, the diverged replica equal-epoch-acks it WITHOUT
// applying, and then serves the dead primary's state to reads after the
// write was acknowledged, breaking the stale-read invariant across
// failover.
func TestFailoverEpochJumpNoStaleReadAtDivergedReplica(t *testing.T) {
	home, readerA, readerB, coords, eps, obj, refA, refB := replCluster(t, func(c *cluster.Config) {
		c.SuspectAfter, c.DeadAfter, c.LeaseTicks = 2, 3, 3
	})
	if err := home.Replicate(vm.RefV(obj), eps[1], eps[2]); err != nil {
		t.Fatal(err)
	}
	tickAll(coords, 4)
	guid, _ := home.exports.GUIDOf(obj)

	// Last acknowledged write before the crash.
	if _, err := home.CallOn(vm.RefV(obj), "set", vm.IntV(7)); err != nil {
		t.Fatal(err)
	}
	set, ok := coords[0].ReplicaSet(guid)
	if !ok {
		t.Fatal("no replica set at primary")
	}

	// The election winner is the smallest live endpoint; the OTHER
	// survivor is the one we diverge.
	winner, loser := readerA, readerB
	winnerEp, loserEp := eps[1], eps[2]
	winnerRef, loserRef := refA, refB
	if eps[2] < eps[1] {
		winner, loser = readerB, readerA
		winnerEp, loserEp = eps[2], eps[1]
		winnerRef, loserRef = refB, refA
	}
	_ = winnerRef
	var loserGUID string
	for _, r := range set.Replicas {
		if r.Endpoint == loserEp {
			loserGUID = r.GUID
		}
	}
	if loserGUID == "" {
		t.Fatalf("loser not in replica set %+v", set)
	}

	// The dead primary's unacked in-flight fan-out: one epoch past the
	// last acknowledged one, applied at the loser only, never acked.
	div := loser.dispatch(&wire.Request{
		ID: 99, Op: wire.OpReplicaUpdate, GUID: loserGUID, Epoch: set.Epoch + 1,
		Fields: []wire.NamedValue{{Name: "v", Value: wire.Value{Kind: wire.KInt, Int: 777}}},
	})
	if div.Err != "" || div.Epoch != set.Epoch+1 {
		t.Fatalf("diverging update: %+v", div)
	}

	if err := home.Close(); err != nil {
		t.Fatal(err)
	}
	survivors := coords[1:]
	deadline := time.Now().Add(5 * time.Second)
	for {
		tickAll(survivors, 1)
		if s, ok := winner.Cluster().ReplicaSet(guid); ok && s.Primary == winnerEp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("promotion never happened")
		}
	}
	tickAll(survivors, 4)

	// First acknowledged write through the new primary.  It must commit
	// at an epoch strictly above the dead primary's in-flight one so the
	// diverged loser APPLIES it; the barrier's ack then really covers
	// the loser's state.
	if got, err := loser.CallOn(loserRef, "set", vm.IntV(9)); err != nil || got.I != 9 {
		t.Fatalf("write after failover: %v %v", got, err)
	}
	if got, err := loser.CallOn(loserRef, "get"); err != nil || got.I != 9 {
		t.Fatalf("diverged replica read after acked write: %v %v, want 9 (served the dead primary's unacked state)", got, err)
	}
}

// TestReplicaReadQueuedPastLeaseExpiryForwards pins the gate-time lease
// re-check: a read that passes the pre-gate lease check and then waits
// on the copy's invocation gate until after the lease lapses must NOT
// execute against the (possibly stale) local copy — by then the
// primary's eviction wait may have elapsed and a newer write been
// acknowledged.  It forwards to the primary instead, surfacing the
// primary's unavailability rather than stale state.
func TestReplicaReadQueuedPastLeaseExpiryForwards(t *testing.T) {
	home, readerA, _, coords, eps, obj, _, _ := replCluster(t, func(c *cluster.Config) {
		// Failover must not fire mid-test: only the lease lapses.
		c.SuspectAfter, c.DeadAfter, c.LeaseTicks = 50, 100, 3
	})
	if err := home.Replicate(vm.RefV(obj), eps[1], eps[2]); err != nil {
		t.Fatal(err)
	}
	tickAll(coords, 4)
	guid, _ := home.exports.GUIDOf(obj)
	set, ok := coords[0].ReplicaSet(guid)
	if !ok {
		t.Fatal("no replica set at primary")
	}
	var repGUID string
	for _, r := range set.Replicas {
		if r.Endpoint == eps[1] {
			repGUID = r.GUID
		}
	}
	if repGUID == "" {
		t.Fatalf("readerA not in replica set %+v", set)
	}
	rep, ok := readerA.exports.Get(repGUID)
	if !ok {
		t.Fatal("replica has no exported copy")
	}

	// Hold the copy's invocation gate while a read queues behind it.
	hold := make(chan struct{})
	held := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(hold)
		}
	}
	defer release()
	go readerA.machine.ExecOn(rep, func(env *vm.Env) {
		close(held)
		<-hold
	})
	<-held
	respCh := make(chan *wire.Response, 1)
	go func() {
		respCh <- readerA.dispatch(&wire.Request{ID: 7, Op: wire.OpInvoke, GUID: repGUID, Method: "get"})
	}()
	// Let the read pass the pre-gate lease check and park on the gate,
	// then lapse the lease: the primary goes silent and the replica's
	// own ticks carry its clock past the lease deadline.
	time.Sleep(50 * time.Millisecond)
	if err := home.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		coords[1].Tick()
	}
	if readerA.Cluster().LeaseValid(guid) {
		t.Fatal("lease still valid after silent ticks; test set-up broken")
	}
	release()
	resp := <-respCh
	if resp.Redirect == nil {
		t.Fatalf("queued read served from the local copy after lease expiry: %+v, want a forward to the primary", resp)
	}
}
