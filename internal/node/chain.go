package node

import (
	"slices"

	"rafda/internal/dedup"
	"rafda/internal/intercept"
	"rafda/internal/trace"
	"rafda/internal/wire"
)

// The node's dispatch pipeline, assembled from internal/intercept: every
// server-side concern that used to be hard-wired inline in dispatch()
// is an ordered interceptor around the effect switch.  The fixed order
// (docs/CONCURRENCY.md §16, docs/INTERCEPT.md):
//
//	count → plane → priority-shed → fair-share → CoDel → user… → dedup → trace → effect switch
//
// Two placements are load-bearing.  The shedding tier runs after the
// plane interceptor — ping, gossip and introspection must stay
// answerable while the node is refusing work, or overload would blind
// the very observability used to diagnose it — and strictly before
// dedup Begin: a shed recorded as a logical call's replay response
// would be replayed to every retry, turning one refusal into a
// permanent failure.  User interceptors sit between shedding and
// dedup, so they see only admitted traffic and their responses are
// never captured by the replay cache either.

// buildChain composes the node's dispatch chain around the effect
// switch with the given user interceptors spliced in.
func (n *Node) buildChain(user []intercept.Interceptor) *intercept.Chain {
	ics := make([]intercept.Interceptor, 0, 5+len(user))
	ics = append(ics, n.countInterceptor, n.planeInterceptor)
	ics = append(ics, n.shedIcs...)
	ics = append(ics, user...)
	ics = append(ics, n.dedupInterceptor, n.traceInterceptor)
	return intercept.New(n.rootDispatch, ics...)
}

// Use appends interceptors to the user tier and atomically swaps in a
// rebuilt chain.  Safe to call while the node is serving: in-flight
// calls finish on the chain they started on.  The built-in tiers
// (including the shedding policies' live state) are reused, not
// rebuilt.
func (n *Node) Use(ics ...intercept.Interceptor) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.userIcs = append(n.userIcs, ics...)
	n.chain.Store(n.buildChain(slices.Clone(n.userIcs)))
}

// ShedConfigured reports whether any proactive shedding policy is on.
func (n *Node) ShedConfigured() bool { return n.shedCfg.Enabled() }

// ShedSnapshot reads the per-priority/per-tenant shed tables (zero
// value when no policy is configured).
func (n *Node) ShedSnapshot() intercept.ShedSample { return n.shedStats.Snapshot() }

// countInterceptor is the outermost tier: the inbound-call counter.
func (n *Node) countInterceptor(cc *intercept.CallCtx, next intercept.Handler) (*wire.Response, error) {
	n.stats.remoteCallsIn.Add(1)
	return next(cc)
}

// planeInterceptor short-circuits the effect-free plane ops.  They
// never carry tokens, skip the dedup window, and — by running above the
// shedding tier — stay answerable under overload.
func (n *Node) planeInterceptor(cc *intercept.CallCtx, next intercept.Handler) (*wire.Response, error) {
	req := cc.Req
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KString, Str: n.name}}, nil
	case wire.OpGossip:
		return n.dispatchGossip(req), nil
	case wire.OpIntrospect:
		return n.dispatchIntrospect(req), nil
	}
	return next(cc)
}

// dedupInterceptor guards the side-effectful tiers below it with the
// dedup window (docs/CONCURRENCY.md §10).  First delivery of a tokened
// call executes and records its response; a duplicate of an in-flight
// call parks inside Begin until the first attempt completes; a
// duplicate of a completed call replays the recorded response; a
// duplicate of a retired call is rejected — never re-executed.
// Untokened requests (legacy peers) keep the historical at-least-once
// path.  Each suppressed duplicate leaves a dedup event span on the
// call's trace, so a call tree shows which delivery executed and which
// were absorbed.
func (n *Node) dedupInterceptor(cc *intercept.CallCtx, next intercept.Handler) (*wire.Response, error) {
	req := cc.Req
	if req.Token == nil {
		return next(cc)
	}
	e, verdict, parked := n.dedupTab.BeginObserved(req.Token, dedupTarget(req))
	switch verdict {
	case dedup.Stale:
		n.emitDedup(req, "stale")
		return wire.Errorf(req, "node %s: duplicate of retired call %s/%d rejected",
			n.name, req.Token.Caller, req.Token.Seq), nil
	case dedup.Replay:
		if parked {
			n.emitDedup(req, "park")
		} else {
			n.emitDedup(req, "replay")
		}
		return e.Response(req.ID), nil
	}
	resp, err := next(cc)
	if resp == nil {
		// An inner tier erred without building a response; render it
		// here so the window completes with what the caller will see.
		if err != nil {
			resp = wire.Errorf(req, "%v", err)
			err = nil
		} else {
			resp = wire.Errorf(req, "interceptor chain produced no response")
		}
	}
	n.dedupTab.Complete(req.Token.Caller, e, resp)
	return resp, err
}

// traceInterceptor owns the trace plane's dispatch-level emissions:
// server spans for the effectful ops that do not run through an object
// gate (creation, migration adoption, replica maintenance), and the
// keyed-percentile observation for gated invocations (whose server
// span the gate path itself emits — the queue/run split is only
// measurable there, which is also why this tier sits inside dedup:
// absorbed duplicates emit dedup event spans, never server spans).
func (n *Node) traceInterceptor(cc *intercept.CallCtx, next intercept.Handler) (*wire.Response, error) {
	req := cc.Req
	switch req.Op {
	case wire.OpInvoke, wire.OpInvokeClass:
		resp, err := next(cc)
		// The SLO plane's keyed view: served-call latency by method and
		// by caller identity.  Expired calls never ran, so they would
		// only pollute the service-time distributions.
		if cc.Served && !cc.Expired {
			name := req.Method
			if name == "" {
				name = req.Op.String()
			}
			n.tracer.ObserveCall(name, req.Caller, cc.SvcNs)
		}
		return resp, err
	case wire.OpCreate, wire.OpMigrateIn, wire.OpReplicaInstall, wire.OpReplicaUpdate, wire.OpReplicaDrop:
		// Migrate-out is deliberately absent: the migration path emits
		// its own richer drain/ship/morph spans.
		if n.tracer == nil {
			return next(cc)
		}
		sp := n.startSpan(traceCtxOf(req), trace.KindServer, req.Op.String(), req.GUID)
		resp, err := next(cc)
		msg := ""
		switch {
		case resp != nil:
			msg = resp.Err
		case err != nil:
			msg = err.Error()
		}
		n.finishSpan(sp, msg)
		return resp, err
	default:
		return next(cc)
	}
}

// rootDispatch is the chain's root: the side-effectful op switch.
func (n *Node) rootDispatch(cc *intercept.CallCtx) (*wire.Response, error) {
	req := cc.Req
	switch req.Op {
	case wire.OpCreate:
		return n.dispatchCreate(req), nil

	case wire.OpInvoke:
		return n.dispatchInvoke(cc), nil

	case wire.OpInvokeClass:
		return n.dispatchInvokeClass(cc), nil

	case wire.OpMigrateIn:
		return n.dispatchMigrateIn(req), nil

	case wire.OpMigrateOut:
		return n.dispatchMigrateOut(req), nil

	case wire.OpReplicaInstall:
		return n.dispatchReplicaInstall(req), nil

	case wire.OpReplicaUpdate:
		return n.dispatchReplicaUpdate(req), nil

	case wire.OpReplicaDrop:
		return n.dispatchReplicaDrop(req), nil

	default:
		return wire.Errorf(req, "node %s: unsupported op %v", n.name, req.Op), nil
	}
}
