// Package node implements a RAFDA address space: a VM loaded with a
// transformed program, an exported-object table, policy-driven factory
// natives, proxy natives performing remote invocations, and servers for
// any subset of the transport protocols.  Together with the transformer
// it realises the paper's flexible distribution: the same program runs
// with any assignment of classes to nodes, decided by policy, and the
// assignment can change at run time via re-policy plus object migration.
//
// # Thread safety
//
// A Node is safe for concurrent use from any number of transport
// goroutines and host goroutines.  Inbound requests are dispatched in
// parallel and synchronise per target object: an invocation holds its
// target's invocation gate (vm.ExecOn) for its duration, so calls to
// different objects execute concurrently while calls to the same object
// — and migrations of it — serialise.  Migration holds the gate across
// its whole snapshot→ship→morph sequence, draining in-flight
// invocations first.  The export table, policy table and singleton
// table carry their own locks; activity counters are atomics.  The full
// lock hierarchy (connection → node → object) is documented in
// docs/CONCURRENCY.md.
package node

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"rafda/internal/cluster"
	"rafda/internal/dedup"
	"rafda/internal/intercept"
	"rafda/internal/ir"
	"rafda/internal/policy"
	"rafda/internal/registry"
	"rafda/internal/telemetry"
	"rafda/internal/trace"
	"rafda/internal/transform"
	"rafda/internal/transport"
	"rafda/internal/verifier"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// Config configures a node.
type Config struct {
	// Name identifies the node in GUIDs and diagnostics.
	Name string
	// Result is the transformed program the node hosts.
	Result *transform.Result
	// Transports supplies the protocol implementations; nil means all
	// four defaults without network simulation.
	Transports *transport.Registry
	// Output receives the program's console output.
	Output io.Writer
	// VMOpts are extra VM options (step limits, clock).
	VMOpts []vm.Option
	// VolunteerCallback lets a node serving no transport start serving
	// lazily when it first dials out, so peers can attribute (and
	// migrate toward) its call affinity.
	VolunteerCallback bool
	// PoolSize is the per-endpoint connection pool width (shards per
	// peer); <= 0 takes transport.DefaultPoolShards() (GOMAXPROCS,
	// capped).  Outgoing invocations spread across the shards by
	// object-GUID affinity; gossip stays pinned to shard 0.
	PoolSize int
	// DedupWindow bounds the per-caller replay cache (completed dedup
	// entries retained per calling node); <= 0 takes
	// dedup.DefaultWindow.  See docs/CONCURRENCY.md §10.
	DedupWindow int
	// UntokenedWire disables call-token stamping on outgoing requests —
	// the capability flag for interop with legacy peers whose binary
	// decoder rejects the token extension.  Untokened calls keep the
	// historical at-least-once/no-retry semantics; inbound tokened
	// requests are still deduplicated regardless.
	UntokenedWire bool
	// TraceSpans sizes the flight recorder's span ring (rounded up to a
	// power of two); <= 0 takes trace.DefaultSpans.  Memory is fixed at
	// construction and the recorder overwrites oldest — see
	// docs/OBSERVABILITY.md.
	TraceSpans int
	// NoTrace disables the flight recorder entirely.  Tracing is
	// always-on by default (the E14 experiment bounds its overhead at
	// <5% of the echo tier); this flag exists for that measurement and
	// for memory-constrained embeddings.
	NoTrace bool
	// Overload, when non-nil, is the overload-counter instance the node
	// records into (deadline expiries at the dispatch gate; admission
	// events if the same instance is wired into the transports'
	// Options.Overload, as the facade does).  Nil allocates a private
	// one — the counters are always on; they are a few atomics.
	Overload *telemetry.OverloadStats
	// Shed configures the proactive shedding interceptors (zero = all
	// off).  The policies read the shared inflight gauge
	// (Overload.Inflight), which the RRP transport maintains around
	// each dispatch slot — so they engage only behind transports that
	// wire the same OverloadStats into their Options, as the facade
	// does.  See internal/intercept and docs/CONCURRENCY.md §16.
	Shed intercept.ShedConfig
	// Interceptors are user dispatch interceptors, spliced between the
	// shedding tier and the dedup window in the given order; Node.Use
	// appends more at run time.  See docs/INTERCEPT.md.
	Interceptors []intercept.Interceptor
}

// Node is one address space.
type Node struct {
	name    string
	result  *transform.Result
	machine *vm.VM
	reg     *transport.Registry
	exports *registry.Table
	pol     *policy.Table

	// mu guards servers and endpoints (not VM state).
	mu        sync.Mutex
	servers   []transport.Server
	endpoints map[string]string // proto -> this node's endpoint
	closed    bool

	// cache holds one sharded connection pool per dialled endpoint
	// (Config.PoolSize shards, defaulting from GOMAXPROCS).  It is
	// shared with the cluster coordination plane (StartCluster), so
	// gossip rides the same multiplexed connections as invocations —
	// pinned to shard 0, so membership RTT pings stay comparable while
	// invocations spread across the pool by object-GUID affinity.
	cache *transport.ClientCache

	// epSnap is a lock-free copy of endpoints, republished by Serve:
	// the proxy fast paths (self-collapse detection, caller stamping)
	// read it on every call and must not touch the node mutex.
	epSnap atomic.Pointer[map[string]string]

	// singMu guards the singleton table.  Creation of a local singleton
	// executes program code (SingletonGet + the class clinit), so the
	// table tracks in-progress creations by owner execution: the owner
	// proceeds re-entrantly (initialisation cycles terminate, as in the
	// JVM), other executions wait for the creation to finish, and a
	// failed creation is withdrawn so a later toucher retries.
	singMu     sync.Mutex
	singletons map[string]*singletonEntry

	// Lock-free state: transports dispatch requests concurrently, so
	// request ids and activity counters stay off the node mutex.
	reqSeq uint64
	stats  statCounters

	// telem is the optional metrics plane (nil = disabled, the zero-cost
	// default).  Loaded with one atomic read on the dispatch and
	// proxy-call hot paths; see docs/ADAPTIVE.md.
	telem atomic.Pointer[telemetry.Recorder]

	// coord is the optional cluster coordination plane (nil = not in a
	// cluster).  Loaded with one atomic read on the proxy hot path
	// (directory-first resolution) and in dispatch; see docs/CLUSTER.md.
	coord atomic.Pointer[cluster.Coordinator]

	// volunteer enables callback-endpoint volunteering: a node serving
	// no transport starts serving lazily at first dial, so its calls
	// carry a real Caller endpoint and its affinity is actionable
	// (ObjStats.anonCalls otherwise records traffic no engine can ever
	// migrate toward).  volunteerState makes the attempt one-shot and
	// keeps the proxy hot path off the node mutex: 0 = untried,
	// 1 = in progress, 2 = settled (one atomic load thereafter).
	volunteer      bool
	volunteerState atomic.Int32

	// Exactly-once plane (docs/CONCURRENCY.md §10): issuer stamps every
	// outgoing logical call with a (caller, seq, attempt) token unless
	// untokened legacy interop is configured; dedupTab recognises
	// duplicate deliveries of inbound tokened calls and replays their
	// recorded responses instead of re-executing.
	issuer    *dedup.Issuer
	dedupTab  *dedup.Table
	untokened bool

	// Replication plane (docs/REPLICATION.md).  effects is the
	// verifier's whole-program method-effect classification, computed
	// once at construction and read lock-free: it splits invocations
	// into provable reads (routable to any lease-valid replica) and
	// writes (serialised through the lease-holding primary).  replPrim
	// maps exported GUIDs of objects this node primaries to their
	// *primaryReplica bookkeeping; replCopies maps replica GUIDs this
	// node serves to their *replicaCopy.  replActive short-circuits
	// IsReplicated on nodes that never replicate (one atomic load).
	effects    *verifier.Effects
	replPrim   sync.Map
	replCopies sync.Map
	replActive atomic.Bool

	// tracer is the always-on flight recorder (nil only under
	// Config.NoTrace).  Set once at construction, read lock-free at
	// every emission site; emission itself is lock-free and never
	// blocks (internal/trace, docs/OBSERVABILITY.md).
	tracer *trace.Recorder

	// overload counts the SLO plane's refusals and pressure points
	// (admission rejects, deadline expiries, inflight high-water,
	// outbox stalls).  Never nil; shared with the transports when the
	// embedder wires the same instance into their Options.
	overload *telemetry.OverloadStats

	// Dispatch chain (chain.go): the precomposed interceptor pipeline
	// every inbound request runs through, swapped atomically by Use.
	// shedIcs holds the constructed shedding interceptors so a rebuild
	// preserves their live state (per-tenant inflight, CoDel cycle);
	// userIcs (under mu) is the user tier's accumulated order.
	chain     atomic.Pointer[intercept.Chain]
	shedIcs   []intercept.Interceptor
	userIcs   []intercept.Interceptor
	shedCfg   intercept.ShedConfig
	shedStats *intercept.ShedStats
}

// nodeSeq decorrelates caller-incarnation ids of same-named nodes in
// one process (tests build many); ids stay deterministic within a run.
var nodeSeq atomic.Uint64

type singletonEntry struct {
	val     vm.Value
	valSet  bool
	version uint64
	local   bool
	owner   *vm.Env       // execution performing the creation; nil once done
	ready   chan struct{} // closed when creation finished (or failed)
}

// Stats counts node activity (read with Snapshot).
type Stats struct {
	RemoteCallsOut uint64
	RemoteCallsIn  uint64
	Creates        uint64
	MigrationsOut  uint64
	MigrationsIn   uint64
}

// statCounters is the live, concurrently-updated form of Stats: every
// incoming request runs on its own transport goroutine, so the counters
// are atomics rather than mutex-guarded fields.
type statCounters struct {
	remoteCallsOut atomic.Uint64
	remoteCallsIn  atomic.Uint64
	creates        atomic.Uint64
	migrationsOut  atomic.Uint64
	migrationsIn   atomic.Uint64
}

// New builds a node over a transformed program and registers the factory
// and proxy natives.
func New(cfg Config) (*Node, error) {
	if cfg.Result == nil {
		return nil, fmt.Errorf("node %q: nil transform result", cfg.Name)
	}
	if cfg.Name == "" {
		cfg.Name = "node"
	}
	opts := cfg.VMOpts
	if cfg.Output != nil {
		opts = append(opts, vm.WithOutput(cfg.Output))
	}
	machine, err := vm.New(cfg.Result.Program.Clone(), opts...)
	if err != nil {
		return nil, fmt.Errorf("node %q: %w", cfg.Name, err)
	}
	overload := cfg.Overload
	if overload == nil {
		overload = &telemetry.OverloadStats{}
	}
	reg := cfg.Transports
	if reg == nil {
		// A defaulted registry shares the node's overload counters, so
		// transport-admission rejects land in the same snapshot.
		reg = transport.Default(transport.Options{Overload: overload})
	}
	n := &Node{
		name:       cfg.Name,
		result:     cfg.Result,
		machine:    machine,
		reg:        reg,
		exports:    registry.New(cfg.Name),
		pol:        policy.NewTable(),
		endpoints:  make(map[string]string),
		cache:      transport.NewClientCachePool(reg, cfg.PoolSize),
		singletons: make(map[string]*singletonEntry),
		volunteer:  cfg.VolunteerCallback,
		issuer:     dedup.NewIssuer(fmt.Sprintf("%s!%d", cfg.Name, nodeSeq.Add(1))),
		dedupTab:   dedup.NewTable(cfg.DedupWindow),
		untokened:  cfg.UntokenedWire,
		overload:   overload,
	}
	// Method-effect classification for the replication plane.  The alias
	// hook gives each generated proxy native the effects of its local
	// twin — the method it forwards to — so transformed programs keep
	// their provably-read-only methods (verifier.AnalyzeEffectsAliased).
	n.effects = verifier.AnalyzeEffectsAliased(machine.Program(), func(class string) (string, bool) {
		base, _, classSide, ok := transform.IsProxyClass(class)
		if !ok {
			return "", false
		}
		if classSide {
			return transform.CLocal(base), true
		}
		return transform.OLocal(base), true
	})
	if !cfg.NoTrace {
		n.tracer = trace.New(cfg.Name, cfg.TraceSpans)
		// Transport failover attempts become spans on the trace of the
		// request that failed over, so a call tree shows every redial
		// between a client span and its eventual server span.
		n.cache.SetFailoverObserver(n.emitFailover)
	}
	n.registerFactoryNatives()
	n.registerProxyNatives()
	// Assemble the dispatch chain last: the built-in interceptors close
	// over fully-initialised node state.  Shedding interceptors are
	// constructed once here and reused across Use rebuilds, so their
	// live state (per-tenant inflight, CoDel drop cycle) survives.
	n.shedCfg = cfg.Shed
	if cfg.Shed.Enabled() {
		n.shedStats = &intercept.ShedStats{}
		if cfg.Shed.PriorityAt > 0 {
			n.shedIcs = append(n.shedIcs, intercept.Priority(cfg.Shed.PriorityAt, overload, n.shedStats))
		}
		if cfg.Shed.FairShareAt > 0 {
			n.shedIcs = append(n.shedIcs, intercept.FairShare(cfg.Shed.FairShareAt, overload, n.shedStats))
		}
		if cfg.Shed.CoDelTarget > 0 {
			n.shedIcs = append(n.shedIcs, intercept.CoDel(cfg.Shed.CoDelTarget, cfg.Shed.CoDelInterval, overload, nil))
		}
	}
	n.userIcs = append(n.userIcs, cfg.Interceptors...)
	n.chain.Store(n.buildChain(cfg.Interceptors))
	return n, nil
}

// Tracer returns the node's flight recorder, or nil when tracing is
// disabled (Config.NoTrace).
func (n *Node) Tracer() *trace.Recorder { return n.tracer }

// Overload returns the node's overload counters (never nil).
func (n *Node) Overload() *telemetry.OverloadStats { return n.overload }

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// VM returns the node's interpreter.
func (n *Node) VM() *vm.VM { return n.machine }

// Policy returns the node's mutable policy table.
func (n *Node) Policy() *policy.Table { return n.pol }

// EnableTelemetry switches on the node's metrics plane (idempotent) and
// returns the recorder.  Dispatch and proxy-call sites start recording
// per-object caller affinity, byte volumes and latency; until then the
// only per-call cost is one nil atomic load.
func (n *Node) EnableTelemetry() *telemetry.Recorder {
	if r := n.telem.Load(); r != nil {
		return r
	}
	n.telem.CompareAndSwap(nil, telemetry.NewRecorder())
	r := n.telem.Load()
	r.AttachDedup(n.dedupTab.Stats())
	return r
}

// DedupSnapshot returns the exactly-once plane's counters (replay hits,
// parked duplicates, window occupancy high-water, ...).  Unlike the rest
// of the metrics plane these are always live — the dedup table counts
// regardless of EnableTelemetry — so chaos experiments can assert on
// them without paying for full telemetry.
func (n *Node) DedupSnapshot() telemetry.DedupSample {
	return n.dedupTab.Stats().Snapshot()
}

// Telemetry returns the node's recorder, or nil when telemetry is
// disabled.
func (n *Node) Telemetry() *telemetry.Recorder { return n.telem.Load() }

// Endpoints returns every endpoint this node is serving.
func (n *Node) Endpoints() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		out = append(out, ep)
	}
	return out
}

// IsMigratable reports whether obj is currently a live local transformed
// instance — the only thing Migrate can move.  The answer can go stale
// under a concurrent migration; Migrate re-checks under the gate, so a
// stale true degrades to a forwarding no-op, never a double ship.
func (n *Node) IsMigratable(obj *vm.Object) bool {
	if obj == nil {
		return false
	}
	_, kind := transform.BaseOfGenerated(obj.ClassName())
	return kind == transform.SuffixOLocal
}

// Exports returns the number of exported objects.
func (n *Node) Exports() int { return n.exports.Len() }

// Snapshot returns a copy of the activity counters.
func (n *Node) Snapshot() Stats {
	return Stats{
		RemoteCallsOut: n.stats.remoteCallsOut.Load(),
		RemoteCallsIn:  n.stats.remoteCallsIn.Load(),
		Creates:        n.stats.creates.Load(),
		MigrationsOut:  n.stats.migrationsOut.Load(),
		MigrationsIn:   n.stats.migrationsIn.Load(),
	}
}

// Serve starts listening on the given protocol ("" addr picks a free
// port, or an auto name for inproc) and returns the endpoint.
func (n *Node) Serve(proto, addr string) (string, error) {
	t, err := n.reg.Get(proto)
	if err != nil {
		return "", err
	}
	srv, err := t.Listen(addr, n.dispatch)
	if err != nil {
		return "", fmt.Errorf("node %s serve %s: %w", n.name, proto, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// A Serve racing Close (e.g. a volunteered callback on an in-flight
	// proxy call) must not leak a live listener on a closed node.
	if n.closed {
		_ = srv.Close()
		return "", fmt.Errorf("node %s serve %s: node closed", n.name, proto)
	}
	n.servers = append(n.servers, srv)
	n.endpoints[proto] = srv.Endpoint()
	snap := make(map[string]string, len(n.endpoints))
	for k, v := range n.endpoints {
		snap[k] = v
	}
	n.epSnap.Store(&snap)
	return srv.Endpoint(), nil
}

// Endpoint returns this node's endpoint for proto ("" when not serving).
func (n *Node) Endpoint(proto string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.endpoints[proto]
}

// anyEndpoint returns a serving endpoint, preferring proto (lock-free:
// reads the published endpoint snapshot).
func (n *Node) anyEndpoint(proto string) string {
	eps := n.epSnap.Load()
	if eps == nil {
		return ""
	}
	if ep, ok := (*eps)[proto]; ok {
		return ep
	}
	for _, ep := range *eps {
		return ep
	}
	return ""
}

// callerEndpoint returns the endpoint peers should attribute this
// node's calls to (and can call back on), preferring proto.  A node
// serving no transport normally returns "" — its calls are anonymous
// and its affinity can never attract a migration — so, when volunteering
// is enabled, the first outbound call lazily starts a server for the
// dialled protocol on an ephemeral address.  The attempt is one-shot
// (whichever protocol dials first wins; a node that cannot listen
// stays a pure anonymous client), and its outcome is a single atomic
// load afterwards — like the endpoint snapshot, this path must not
// touch the node mutex (it runs on every proxy invocation).
func (n *Node) callerEndpoint(proto string) string {
	if ep := n.anyEndpoint(proto); ep != "" {
		return ep
	}
	if !n.volunteer || proto == "" || n.volunteerState.Load() != 0 ||
		!n.volunteerState.CompareAndSwap(0, 1) {
		return ""
	}
	_, _ = n.Serve(proto, "") // refused (no leak) if the node is closed
	n.volunteerState.Store(2)
	return n.anyEndpoint(proto)
}

// Close shuts the servers and cached clients.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	servers := n.servers
	n.servers = nil
	n.mu.Unlock()

	var firstErr error
	for _, s := range servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := n.cache.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// callEndpoint performs one request against endpoint through the shared
// connection pool, routed by affinity key ("" round-robins, with shard
// failover).  Dispatch, proxy calls and migration all go through here;
// gossip uses cache.Call (shard 0) instead, so its RTT samples always
// measure one stable socket.
func (n *Node) callEndpoint(endpoint, key string, req *wire.Request) (*wire.Response, error) {
	return n.cache.CallKey(endpoint, key, req)
}

// affinityKey picks the pool affinity key for a request: the target
// object's GUID when there is one (per-object calls stay on one shard,
// preserving wire order per object), the class for statics-singleton
// invocations, and "" (round-robin) otherwise.
func affinityKey(req *wire.Request) string {
	if req.GUID != "" {
		return req.GUID
	}
	if req.Op == wire.OpInvokeClass {
		return req.Class
	}
	return ""
}

// PoolShards returns the per-endpoint connection pool width.
func (n *Node) PoolShards() int { return n.cache.Shards() }

// nextReqID issues a request id (lock-free; callable from any goroutine).
func (n *Node) nextReqID() uint64 {
	return atomic.AddUint64(&n.reqSeq, 1)
}

// RunMain executes the transformed program's entry point.
func (n *Node) RunMain(mainClass string) error {
	class, method := n.result.MainEntry(mainClass)
	if _, err := n.machine.Invoke(class, method, vm.Value{}, nil); err != nil {
		return fmt.Errorf("node %s: run %s.%s: %w", n.name, class, method, err)
	}
	return nil
}

// InvokeStatic calls an original static method through the transformed
// program's class factory forwarder (or directly when the class was not
// transformed).  It is the host-language entry point used by examples,
// tests and benchmarks.
func (n *Node) InvokeStatic(class, method string, args ...vm.Value) (vm.Value, error) {
	target := class
	if n.machine.Program().Has(transform.CFactory(class)) {
		target = transform.CFactory(class)
	}
	return n.machine.Invoke(target, method, vm.Value{}, args)
}

// ReadStatic reads an original static field through the factory
// forwarder.
func (n *Node) ReadStatic(class, field string) (vm.Value, error) {
	target := transform.CFactory(class)
	if !n.machine.Program().Has(target) {
		return n.machine.GetStatic(class, field)
	}
	return n.machine.Invoke(target, transform.Getter(field), vm.Value{}, nil)
}

// WriteStatic writes an original static field through the factory
// forwarder.
func (n *Node) WriteStatic(class, field string, val vm.Value) error {
	target := transform.CFactory(class)
	if !n.machine.Program().Has(target) {
		return n.machine.SetStatic(class, field, val)
	}
	_, err := n.machine.Invoke(target, transform.Setter(field), vm.Value{}, []vm.Value{val})
	return err
}

// CallOn invokes a method on an object reference previously obtained
// from this node (e.g. via InvokeStatic).  The call holds the target's
// invocation gate, so host-driven calls obey the same per-object
// monitor discipline as inbound remote invocations: CallOn on different
// objects runs in parallel, CallOn on one object serialises, and a
// migration of the object cannot interleave with the call.
func (n *Node) CallOn(recv vm.Value, method string, args ...vm.Value) (vm.Value, error) {
	if recv.K == 0 || recv.O == nil {
		return vm.Value{}, fmt.Errorf("node %s: CallOn with nil receiver", n.name)
	}
	// Host-driven calls count as local affinity evidence.  The common
	// case is one atomic slot load; when telemetry is on and the object
	// has no stats record yet (host touched it before any peer did), the
	// record is created here — otherwise every pre-remote host call is
	// invisible and the placement engine weighs the object's local usage
	// as zero against the first burst of remote traffic.
	writer := n.isWriter(recv.O.ClassName(), method, len(args))
	if s, ok := recv.O.Telemetry().(*telemetry.ObjStats); ok && s != nil {
		s.RecordLocal()
		s.RecordEffect(writer)
	} else if rec := n.telem.Load(); rec != nil {
		guid := n.exports.Ensure(recv.O)
		st := rec.ForObject(recv.O, guid, baseClassOf(recv.O.ClassName()))
		st.RecordLocal()
		st.RecordEffect(writer)
	}
	var res vm.Value
	var thrown *vm.Thrown
	var err error
	// A MigrationInterrupt means the target was migrated away while this
	// call was parked in a nested remote call: the object is a proxy
	// now, so the retried call transparently forwards to its new home.
	for attempt := 0; ; attempt++ {
		interrupted := n.machine.ExecOnCatching(recv.O, func(env *vm.Env) {
			res, thrown, err = env.Call(recv.O.ClassName(), method, recv, args)
		})
		if !interrupted {
			break
		}
		if attempt >= vm.MaxMigrationRetries {
			return vm.Value{}, fmt.Errorf("node %s: CallOn %s abandoned: target migrated %d times mid-call",
				n.name, method, attempt+1)
		}
	}
	if err != nil {
		return vm.Value{}, err
	}
	// A host-driven write on a replicated primary must reach every
	// replica before CallOn returns — the host's ack is an ack like any
	// caller's (docs/REPLICATION.md).  One atomic load when the node
	// replicates nothing.
	if writer && n.replActive.Load() {
		if guid, ok := n.exports.GUIDOf(recv.O); ok {
			// Host-driven: no inbound span to continue, so the barrier
			// roots its own trace.
			n.replicaWriteBarrier(recv.O, guid, trace.Ctx{})
		}
	}
	if thrown != nil {
		cls, msg := vm.ThrownMessage(thrown)
		return vm.Value{}, &vm.UncaughtError{Class: cls, Message: msg}
	}
	return res, nil
}

// baseClassOf maps a generated implementation class name back to the
// original class ("C_O_Local" -> "C"); non-generated names map to
// themselves.
func baseClassOf(name string) string {
	if base, kind := transform.BaseOfGenerated(name); kind != "" {
		return base
	}
	return name
}

// isProxyClass reports whether c is a generated proxy class.
func isProxyClass(c *ir.Class) bool {
	return c != nil && (strings.HasPrefix(c.Meta, "generated:o-proxy:") ||
		strings.HasPrefix(c.Meta, "generated:c-proxy:"))
}

// isProxyObject reports whether obj is currently a generated proxy
// instance (the answer can change under a concurrent migration; callers
// that need a stable answer hold the object's gate).
func isProxyObject(obj *vm.Object) bool {
	return isProxyClass(obj.Class())
}
