package node

import (
	"sync"
	"sync/atomic"
	"testing"

	"rafda/internal/vm"
)

// TestMigrateUnderInvocationLoad races live object migration against a
// storm of concurrent invocations on the same object — the ROADMAP's
// open stress scenario.  Every bump() increments the object's counter by
// exactly one; the object is meanwhile shuttled between two nodes many
// times.  The per-object gate must make each migration atomic
// (snapshot→ship→morph with in-flight invocations drained), so at the
// end the counter equals the number of successful bumps — any lost
// update means an invocation landed on a copy that was snapshotted
// before and discarded after.  Run under -race in CI.
func TestMigrateUnderInvocationLoad(t *testing.T) {
	src := `
class Till {
    int total;
    Till(int t) { this.total = t; }
    int bump() { total = total + 1; return total; }
    int read() { return total; }
}
class Holder {
    static Till till = new Till(0);
    static int poke() { return till.bump(); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	nodeA, nodeB, epB := twoNodes(t, res, "rrp")
	epA := nodeA.Endpoint("rrp")

	ref, err := nodeA.ReadStatic("Holder", "till")
	if err != nil {
		t.Fatalf("read static: %v", err)
	}
	if ref.O == nil {
		t.Fatal("nil till reference")
	}

	const (
		workers    = 6
		callsEach  = 40
		migrations = 12
	)
	var bumps atomic.Int64
	var wg sync.WaitGroup

	// Invocation storm: every call goes through the same handle, which
	// is a live local object at first and flips between live object and
	// forwarding proxy as migrations land.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				if _, err := nodeA.CallOn(ref, "bump"); err != nil {
					t.Errorf("bump: %v", err)
					return
				}
				bumps.Add(1)
			}
		}()
	}

	// Migration shuttle, concurrent with the storm: A -> B -> A -> ...
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < migrations; i++ {
			target := epB
			if i%2 == 1 {
				target = epA
			}
			if err := nodeA.Migrate(ref, target); err != nil {
				t.Errorf("migration %d to %s: %v", i, target, err)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// The handle still reaches the object wherever it ended up; the
	// counter must account for every successful bump exactly once.
	got, err := nodeA.CallOn(ref, "read")
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if want := bumps.Load(); got.I != want {
		t.Fatalf("lost updates under migration: counter=%d, successful bumps=%d", got.I, want)
	}
	inB := nodeB.Snapshot().MigrationsIn
	inA := nodeA.Snapshot().MigrationsIn
	if inB == 0 {
		t.Error("object never reached node B — the race was not exercised")
	}
	t.Logf("bumps=%d migrationsIn A=%d B=%d", bumps.Load(), inA, inB)
}

// TestParallelInvocationsDistinctObjects checks the dispatch scheduler's
// core property directly at the node API: gated invocations of distinct
// objects run concurrently (here: all workers make progress without any
// global serialisation fault) and per-object totals stay exact — each
// object's bumps serialise on its own gate only.
func TestParallelInvocationsDistinctObjects(t *testing.T) {
	src := `
class Cell {
    int n;
    Cell(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Mk {
    static Cell make() { return new Cell(0); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	n, err := New(Config{Name: "solo", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })

	const objects = 4
	const callsEach = 200
	refs := make([]vm.Value, objects)
	for i := range refs {
		v, err := n.InvokeStatic("Mk", "make")
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = v
	}
	var wg sync.WaitGroup
	for i := range refs {
		wg.Add(1)
		go func(ref vm.Value) {
			defer wg.Done()
			for c := 0; c < callsEach; c++ {
				if _, err := n.CallOn(ref, "bump"); err != nil {
					t.Errorf("bump: %v", err)
					return
				}
			}
		}(refs[i])
	}
	wg.Wait()
	for i, ref := range refs {
		got, err := n.CallOn(ref, "bump")
		if err != nil {
			t.Fatal(err)
		}
		if got.I != callsEach+1 {
			t.Errorf("object %d: count %d want %d", i, got.I, callsEach+1)
		}
	}
}

// TestSharedObjectInvocationsSerialise drives many goroutines at ONE
// object: the per-object gate is a monitor, so the read-modify-write
// bump() must never lose an update even though the calls arrive in
// parallel.
func TestSharedObjectInvocationsSerialise(t *testing.T) {
	src := `
class Cell {
    int n;
    Cell(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
    int read() { return n; }
}
class Mk {
    static Cell make() { return new Cell(0); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	n, err := New(Config{Name: "solo", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })

	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const callsEach = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < callsEach; c++ {
				if _, err := n.CallOn(ref, "bump"); err != nil {
					t.Errorf("bump: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := n.CallOn(ref, "read")
	if err != nil {
		t.Fatal(err)
	}
	if got.I != workers*callsEach {
		t.Fatalf("lost updates on shared object: %d want %d", got.I, workers*callsEach)
	}
}
