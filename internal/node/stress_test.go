package node

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rafda/internal/policy"
	"rafda/internal/vm"
)

// TestMigrateUnderInvocationLoad races live object migration against a
// storm of concurrent invocations on the same object — the ROADMAP's
// open stress scenario.  Every bump() increments the object's counter by
// exactly one; the object is meanwhile shuttled between two nodes many
// times.  The per-object gate must make each migration atomic
// (snapshot→ship→morph with in-flight invocations drained), so at the
// end the counter equals the number of successful bumps — any lost
// update means an invocation landed on a copy that was snapshotted
// before and discarded after.  Run under -race in CI.
func TestMigrateUnderInvocationLoad(t *testing.T) {
	src := `
class Till {
    int total;
    Till(int t) { this.total = t; }
    int bump() { total = total + 1; return total; }
    int read() { return total; }
}
class Holder {
    static Till till = new Till(0);
    static int poke() { return till.bump(); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	nodeA, nodeB, epB := twoNodes(t, res, "rrp")
	epA := nodeA.Endpoint("rrp")

	ref, err := nodeA.ReadStatic("Holder", "till")
	if err != nil {
		t.Fatalf("read static: %v", err)
	}
	if ref.O == nil {
		t.Fatal("nil till reference")
	}

	const (
		workers    = 6
		callsEach  = 40
		migrations = 12
	)
	var bumps atomic.Int64
	var wg sync.WaitGroup

	// Invocation storm: every call goes through the same handle, which
	// is a live local object at first and flips between live object and
	// forwarding proxy as migrations land.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				if _, err := nodeA.CallOn(ref, "bump"); err != nil {
					t.Errorf("bump: %v", err)
					return
				}
				bumps.Add(1)
			}
		}()
	}

	// Migration shuttle, concurrent with the storm: A -> B -> A -> ...
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < migrations; i++ {
			target := epB
			if i%2 == 1 {
				target = epA
			}
			if err := nodeA.Migrate(ref, target); err != nil {
				t.Errorf("migration %d to %s: %v", i, target, err)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// The handle still reaches the object wherever it ended up; the
	// counter must account for every successful bump exactly once.
	got, err := nodeA.CallOn(ref, "read")
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if want := bumps.Load(); got.I != want {
		t.Fatalf("lost updates under migration: counter=%d, successful bumps=%d", got.I, want)
	}
	inB := nodeB.Snapshot().MigrationsIn
	inA := nodeA.Snapshot().MigrationsIn
	if inB == 0 {
		t.Error("object never reached node B — the race was not exercised")
	}
	t.Logf("bumps=%d migrationsIn A=%d B=%d", bumps.Load(), inA, inB)
}

// TestMigrateWhileInvocationParked is the ROADMAP's parked-invocation
// regression: an invocation that releases its target's gate while
// blocked in a nested remote call (Env.RunUnlocked) used to resume
// old-class bytecode after a migration morphed its target mid-method —
// the method tail then ran field-by-field through the proxy, ungated at
// the new home (no monitor semantics, one round trip per access).  The
// epoch check on gate re-acquisition instead unwinds the invocation and
// retries it whole through the morphed proxy, so the complete method
// re-executes under the object's gate at its new home.
//
// The discriminator: the retry re-runs the method from the top
// (documented at-least-once semantics for the pre-park prefix), so the
// helper's counter must read 2 — the old continuation path leaves it
// at 1.
func TestMigrateWhileInvocationParked(t *testing.T) {
	src := `
class Helper {
    int count;
    Helper() { this.count = 0; }
    int slow(int us) { count = count + 1; sys.Clock.sleepMicros(us); return count; }
}
class Holder {
    int val;
    Helper h;
    Holder(int v, Helper h) { this.val = v; this.h = h; }
    int work(int us) {
        h.slow(us);
        return val;
    }
    int hits() { return h.count; }
}
class Setup {
    static Holder make() { return new Holder(7, new Helper()); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	nodeA, nodeB, epB := twoNodes(t, res, "rrp")

	// Helper lives on B, so Holder.work parks on the wire mid-method;
	// Holder itself starts on A.
	pl, err := policy.RemoteAt(epB)
	if err != nil {
		t.Fatal(err)
	}
	nodeA.Policy().SetClass("Helper", pl)
	ref, err := nodeA.InvokeStatic("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	var got vm.Value
	go func() {
		v, err := nodeA.CallOn(ref, "work", vm.IntV(250_000)) // parks ~250ms on B
		got = v
		done <- err
	}()

	// Let the invocation enter its nested remote call and park, then
	// migrate the Holder out from under it.  (The hits==2 assertion
	// below also proves the migration landed mid-call: a call that
	// finished first would leave the counter at 1.)
	time.Sleep(40 * time.Millisecond)
	if err := nodeA.Migrate(ref, epB); err != nil {
		t.Fatalf("migrate while parked: %v", err)
	}

	if err := <-done; err != nil {
		t.Fatalf("parked invocation faulted after migration: %v", err)
	}
	if got.I != 7 {
		t.Fatalf("work() = %d, want 7 (retry must land on the migrated state)", got.I)
	}
	if in := nodeB.Snapshot().MigrationsIn; in != 1 {
		t.Fatalf("migrations into B = %d, want 1", in)
	}
	// The interrupted attempt completed its nested call once, and the
	// retry ran the whole method again at the new home: exactly two
	// slow() executions.  The old continuation path (resume old-class
	// bytecode through the proxy) leaves the counter at 1.
	hits, err := nodeA.CallOn(ref, "hits")
	if err != nil {
		t.Fatalf("hits: %v", err)
	}
	if hits.I != 2 {
		t.Fatalf("helper saw %d slow() calls, want 2 (whole-method retry at the new home)", hits.I)
	}
	// The handle (now a proxy) keeps working against the new home.
	v, err := nodeA.CallOn(ref, "work", vm.IntV(1))
	if err != nil || v.I != 7 {
		t.Fatalf("post-migration call: %v %v", v, err)
	}
}

// TestCreationsRacingPlacementFlip races factory creations against
// policy re-placement flips of the same class: every creation must land
// wholly under the old or the new placement — a fully-local instance or
// a fully-wired proxy, each immediately usable — and never a
// half-proxied hybrid (ISSUE: concurrent re-policy).
func TestCreationsRacingPlacementFlip(t *testing.T) {
	src := `
class Cell {
    int n;
    Cell(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Mk {
    static Cell make() { return new Cell(41); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	nodeA, _, epB := twoNodes(t, res, "rrp")
	remote, err := policy.RemoteAt(epB)
	if err != nil {
		t.Fatal(err)
	}

	const flips = 40
	const makers = 4
	const each = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < flips; i++ {
			if i%2 == 0 {
				nodeA.Policy().SetClass("Cell", remote)
			} else {
				nodeA.Policy().SetClass("Cell", policy.LocalPlacement)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	errs := make(chan error, makers)
	for w := 0; w < makers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ref, err := nodeA.InvokeStatic("Mk", "make")
				if err != nil {
					errs <- err
					return
				}
				cls := ref.O.ClassName()
				local := cls == "Cell_O_Local"
				proxy := !local && isProxyObject(ref.O)
				if !local && !proxy {
					errs <- &vm.FaultError{Msg: "creation landed on neither placement: " + cls}
					return
				}
				// Whichever side it landed on, the instance must be
				// fully initialised and callable.
				v, err := nodeA.CallOn(ref, "bump")
				if err != nil {
					errs <- err
					return
				}
				if v.I != 42 {
					errs <- &vm.FaultError{Msg: "half-initialised instance"}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestHostCallsCountAsLocalAffinity pins the telemetry wiring for
// host-driven calls: with telemetry on, Node.CallOn counts as local
// affinity evidence from the very first host call, creating the stats
// record itself if no peer has seen the object yet — without this, a
// remote peer's trickle could out-vote the hosting node's own heavy
// pre-remote usage and migrate the object away from it.
func TestHostCallsCountAsLocalAffinity(t *testing.T) {
	src := `
class Cell {
    int n;
    Cell(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Mk {
    static Cell make() { return new Cell(0); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	n, err := New(Config{Name: "solo", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	rec := n.EnableTelemetry()
	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	// The very first host call creates the stats record: pre-remote
	// host usage is evidence too, and must already be on the books when
	// the first peer shows up.
	if _, err := n.CallOn(ref, "bump"); err != nil {
		t.Fatal(err)
	}
	got := rec.SnapshotObjects()
	if len(got) != 1 || got[0].Local != 1 || got[0].Class != "Cell" {
		t.Fatalf("first host call not tracked: %+v", got)
	}
	// A peer observed it (simulated inbound): both kinds accumulate on
	// the same record.
	rec.ForObject(ref.O, got[0].GUID, "Cell").RecordInbound("rrp://peer:1", 1, 1, 0)
	for i := 0; i < 3; i++ {
		if _, err := n.CallOn(ref, "bump"); err != nil {
			t.Fatal(err)
		}
	}
	samples := rec.SnapshotObjects()
	if len(samples) != 1 || samples[0].Local != 4 || samples[0].Remote != 1 {
		t.Fatalf("host calls not counted as local affinity: %+v", samples)
	}
}

// TestParallelInvocationsDistinctObjects checks the dispatch scheduler's
// core property directly at the node API: gated invocations of distinct
// objects run concurrently (here: all workers make progress without any
// global serialisation fault) and per-object totals stay exact — each
// object's bumps serialise on its own gate only.
func TestParallelInvocationsDistinctObjects(t *testing.T) {
	src := `
class Cell {
    int n;
    Cell(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Mk {
    static Cell make() { return new Cell(0); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	n, err := New(Config{Name: "solo", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })

	const objects = 4
	const callsEach = 200
	refs := make([]vm.Value, objects)
	for i := range refs {
		v, err := n.InvokeStatic("Mk", "make")
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = v
	}
	var wg sync.WaitGroup
	for i := range refs {
		wg.Add(1)
		go func(ref vm.Value) {
			defer wg.Done()
			for c := 0; c < callsEach; c++ {
				if _, err := n.CallOn(ref, "bump"); err != nil {
					t.Errorf("bump: %v", err)
					return
				}
			}
		}(refs[i])
	}
	wg.Wait()
	for i, ref := range refs {
		got, err := n.CallOn(ref, "bump")
		if err != nil {
			t.Fatal(err)
		}
		if got.I != callsEach+1 {
			t.Errorf("object %d: count %d want %d", i, got.I, callsEach+1)
		}
	}
}

// TestSharedObjectInvocationsSerialise drives many goroutines at ONE
// object: the per-object gate is a monitor, so the read-modify-write
// bump() must never lose an update even though the calls arrive in
// parallel.
func TestSharedObjectInvocationsSerialise(t *testing.T) {
	src := `
class Cell {
    int n;
    Cell(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
    int read() { return n; }
}
class Mk {
    static Cell make() { return new Cell(0); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	n, err := New(Config{Name: "solo", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })

	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const callsEach = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < callsEach; c++ {
				if _, err := n.CallOn(ref, "bump"); err != nil {
					t.Errorf("bump: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := n.CallOn(ref, "read")
	if err != nil {
		t.Fatal(err)
	}
	if got.I != workers*callsEach {
		t.Fatalf("lost updates on shared object: %d want %d", got.I, workers*callsEach)
	}
}
