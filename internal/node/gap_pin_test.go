package node

// Executable gap pins: each test here proves a *documented limitation*
// still behaves the way docs/CONCURRENCY.md says it does.  They are not
// aspirational — a pin going red means either the gap was closed (flip
// the assertion and update the docs in the same change) or the
// behaviour drifted somewhere new, which is exactly what the pin is for.

import (
	"testing"
	"time"

	"rafda/internal/vm"
)

// aliasSource builds the aliasing shape from CONCURRENCY.md §5/§6: Mk
// hands out both the Box itself and a Holder that retains a private
// alias to the same Box.
const aliasSource = `
class Box {
    int n;
    Box(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Holder {
    Box b;
    Holder(Box b) { this.b = b; }
    int poke() { return b.bump(); }
}
class Mk {
    static Box box = new Box(0);
    static Box getBox() { return box; }
    static Holder mk() { return new Holder(box); }
}
class Main { static void main() {} }`

// TestLocalAliasBypassesGatePin pins the §5/§6 gap: invocation gates
// are acquired only at dispatch entry boundaries, so an intra-VM call
// that reaches an object through a retained alias runs WITHOUT taking
// that object's gate.  While Box's gate is held, a direct entry-point
// call on Box parks — but Holder.poke, which bumps the same Box through
// its alias, completes.  If this test starts failing with poke blocking,
// the gap has been closed: update §5/§6 and invert the assertion.
func TestLocalAliasBypassesGatePin(t *testing.T) {
	res := transformSource(t, aliasSource)
	n, err := New(Config{Name: "alias", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	box, err := n.InvokeStatic("Mk", "getBox")
	if err != nil {
		t.Fatal(err)
	}
	holder, err := n.InvokeStatic("Mk", "mk")
	if err != nil {
		t.Fatal(err)
	}

	// Occupy Box's invocation gate until released.
	held := make(chan struct{})
	release := make(chan struct{})
	go n.VM().ExecOn(box.O, func(env *vm.Env) {
		close(held)
		<-release
	})
	<-held

	// A gated entry on Box parks behind the held gate...
	direct := make(chan int64, 1)
	go func() {
		got, err := n.CallOn(box, "bump")
		if err != nil {
			direct <- -1
			return
		}
		direct <- got.I
	}()
	select {
	case v := <-direct:
		t.Fatalf("direct gated call completed (%d) while the gate was held", v)
	case <-time.After(100 * time.Millisecond):
	}

	// ...while the alias path sails straight through the held gate and
	// mutates the Box.  This is the documented gap, observable.
	aliased := make(chan int64, 1)
	go func() {
		got, err := n.CallOn(holder, "poke")
		if err != nil {
			aliased <- -1
			return
		}
		aliased <- got.I
	}()
	select {
	case v := <-aliased:
		if v != 1 {
			t.Fatalf("alias bump returned %d, want 1", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alias call blocked on the held gate — the §5/§6 bypass is gone; " +
			"if the gate gap was closed on purpose, update docs/CONCURRENCY.md and this pin")
	}

	// Release: the parked direct entry resumes and sees the alias's
	// write (field-level atomicity holds even where gating does not).
	close(release)
	select {
	case v := <-direct:
		if v != 2 {
			t.Fatalf("direct bump after release returned %d, want 2", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("direct call never resumed after the gate was released")
	}
}

// TestRebootedIncarnationForfeitsDedupPin pins the exactly-once plane's
// documented residual (docs/CONCURRENCY.md §10a): dedup windows are
// keyed by caller *incarnation* (`name!bootseq`), so a caller that
// reboots forfeits its dedup history — a retry it re-issues after the
// reboot carries a fresh incarnation id and re-executes.  The fallback
// is at-least-once, but bounded: exactly one duplicate per reboot,
// because every further retry of the re-issued call replays from the
// new incarnation's own window.
func TestRebootedIncarnationForfeitsDedupPin(t *testing.T) {
	res := transformSource(t, dedupSource)
	n, err := New(Config{Name: "server", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	guid := n.exports.Ensure(ref.O)

	// Boot 1 delivers the call; the response is "lost" on the way back.
	if resp := n.dispatch(bumpReq(1, guid, "bump", dedupToken("caller!1", 1))); resp.Err != "" || resp.Result.Int != 1 {
		t.Fatalf("boot-1 call: %+v", resp)
	}
	// A same-incarnation retry would have replayed.  But the caller
	// reboots instead: its issuer floor, pending set and sequence space
	// are gone, and the re-issued call arrives under a new incarnation.
	// The server cannot correlate it — it executes again.  This is the
	// one duplicate the contract admits.
	if resp := n.dispatch(bumpReq(2, guid, "bump", dedupToken("caller!2", 1))); resp.Err != "" || resp.Result.Int != 2 {
		t.Fatalf("post-reboot re-issue did not execute: %+v", resp)
	}
	// From here the new incarnation's window takes over: transport
	// retries of the re-issued call replay, they do not bump again.
	for attempt := uint32(1); attempt <= 3; attempt++ {
		tok := dedupToken("caller!2", 1)
		tok.Attempt = attempt
		if resp := n.dispatch(bumpReq(2+uint64(attempt), guid, "bump", tok)); resp.Err != "" || resp.Result.Int != 2 {
			t.Fatalf("retry %d after reboot re-executed: %+v", attempt, resp)
		}
	}
	if resp := n.dispatch(bumpReq(9, guid, "peek", nil)); resp.Result.Int != 2 {
		t.Fatalf("counter %d after reboot storm, want exactly 2 (one bounded duplicate)", resp.Result.Int)
	}
}
