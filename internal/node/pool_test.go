package node

import (
	"fmt"
	"sync"
	"testing"

	"rafda/internal/policy"
	"rafda/internal/transform"
	"rafda/internal/vm"
)

// TestPooledTransportInvocationsAndMigration drives the full node stack
// over a widened connection pool: the dev container defaults to pool
// size 1 (GOMAXPROCS), so this test pins PoolSize 4 to exercise the
// sharded path — concurrent proxy invocations spread across shards by
// GUID affinity, a migration mid-load (which ships round-robin and
// morphs under the gate), and redirect-retargeted calls — under the
// race detector in CI.
func TestPooledTransportInvocationsAndMigration(t *testing.T) {
	src := `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
    int get() { return n; }
}
class Mk {
    static Counter make() { return new Counter(0); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)

	server, err := New(Config{Name: "server", Result: res, PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	endpoint, err := server.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}
	client, err := New(Config{Name: "client", Result: res, PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	clientEp, err := client.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := client.PoolShards(); got != 4 {
		t.Fatalf("PoolShards() = %d, want 4", got)
	}

	// Place Counter remotely and create one hot object per worker, so
	// the GUID affinity hash spreads the workers across pool shards.
	pl, err := policy.RemoteAt(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	client.Policy().SetClass("Counter", pl)
	const workers = 8
	const callsPer = 40
	refs := make([]vm.Value, workers)
	for i := range refs {
		v, err := client.InvokeStatic("Mk", "make")
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = v
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				if _, err := client.CallOn(refs[g], "bump"); err != nil {
					errs <- fmt.Errorf("worker %d call %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	// Migrate one of the hot objects to the client mid-load: the ship
	// goes round-robin over the pool while its object's own calls hold
	// the gate, and post-morph calls retarget through the redirect.
	if err := server.Migrate(serverExportOf(t, server, refs[0]), clientEp); err != nil {
		errs <- fmt.Errorf("migrate: %w", err)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Monitor semantics survived the pooling: no update was lost.
	for g := 0; g < workers; g++ {
		got, err := client.CallOn(refs[g], "get")
		if err != nil {
			t.Fatal(err)
		}
		if got.I != callsPer {
			t.Fatalf("worker %d counter = %d, want %d (lost updates across pool shards)", g, got.I, callsPer)
		}
	}
}

// serverExportOf resolves the server-side live object behind a client
// proxy reference, so the test can migrate it from its home.
func serverExportOf(t *testing.T, server *Node, ref vm.Value) vm.Value {
	t.Helper()
	if ref.O == nil {
		t.Fatal("nil ref")
	}
	_, fields := ref.O.View()
	guid := fields[transform.ProxyFieldGUID].S
	if guid == "" {
		t.Fatalf("ref is not a proxy: %s", ref.O.ClassName())
	}
	obj, ok := server.exports.Get(guid)
	if !ok {
		t.Fatalf("server does not export %s", guid)
	}
	return vm.RefV(obj)
}
