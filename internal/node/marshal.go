package node

import (
	"fmt"

	"rafda/internal/guid"
	"rafda/internal/ir"
	"rafda/internal/transform"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// Marshalling rules:
//
//   - primitives and strings travel by value;
//   - arrays travel by value (element-wise), like RMI arrays;
//   - proxy instances re-marshal as the remote reference they already
//     hold, so references retarget rather than chain;
//   - other objects are exported into the node's table and travel as a
//     remote reference back to this node.
//
// Unmarshalling inverts this, short-circuiting references that point at
// this node back to the live local object.
//
// Marshalling needs no global lock: object snapshots are taken per
// object (Object.View), and the export table synchronises itself.  A
// caller that must marshal and morph atomically (migration) holds the
// object's gate around both.

func (n *Node) marshalValue(v vm.Value, viaProto string) (wire.Value, error) {
	switch v.K {
	case 0, ir.KindVoid:
		return wire.Value{Kind: wire.KVoid}, nil
	case ir.KindBool:
		return wire.Value{Kind: wire.KBool, Bool: v.Bool()}, nil
	case ir.KindInt:
		return wire.Value{Kind: wire.KInt, Int: v.I}, nil
	case ir.KindFloat:
		return wire.Value{Kind: wire.KFloat, Float: v.F}, nil
	case ir.KindString:
		return wire.Value{Kind: wire.KString, Str: v.S}, nil
	case ir.KindRef:
		if v.O == nil {
			return wire.Value{Kind: wire.KNull}, nil
		}
		return n.marshalObject(v.O, viaProto)
	case ir.KindArray:
		if v.A == nil {
			return wire.Value{Kind: wire.KNull}, nil
		}
		out := wire.Value{Kind: wire.KArray, Elem: v.A.Elem.Descriptor()}
		out.Arr = make([]wire.Value, len(v.A.Vals))
		for i, el := range v.A.Vals {
			mv, err := n.marshalValue(el, viaProto)
			if err != nil {
				return wire.Value{}, err
			}
			out.Arr[i] = mv
		}
		return out, nil
	default:
		return wire.Value{}, fmt.Errorf("cannot marshal value kind %v", v.K)
	}
}

func (n *Node) marshalObject(obj *vm.Object, viaProto string) (wire.Value, error) {
	cls, fields := obj.View()
	if isProxyClass(cls) {
		// Re-export the reference the proxy holds: the receiver will
		// talk to the object's home directly.  View keeps the
		// GUID/endpoint pair consistent against a concurrent retarget.
		base, proto, classSide, _ := transform.IsProxyClass(cls.Name)
		return wire.Value{Kind: wire.KRef, Ref: &wire.RemoteRef{
			GUID:      fields[transform.ProxyFieldGUID].S,
			Endpoint:  fields[transform.ProxyFieldEndpoint].S,
			Proto:     proto,
			Target:    orString(fields[transform.ProxyFieldTarget].S, base),
			ClassSide: classSide,
		}}, nil
	}
	base := baseClassOf(cls.Name)
	if !n.result.Substitutable(base) {
		// Throwables travel via the response exception channel; any
		// other non-substitutable object cannot cross the boundary.
		return wire.Value{}, fmt.Errorf("object of class %s is not substitutable and cannot cross address spaces", cls.Name)
	}
	ep := n.anyEndpoint(viaProto)
	if ep == "" {
		return wire.Value{}, fmt.Errorf("node %s exports object of %s but serves no transport", n.name, base)
	}
	id := n.exports.Ensure(obj)
	proto, _, _ := splitProto(ep)
	return wire.Value{Kind: wire.KRef, Ref: &wire.RemoteRef{
		GUID:     id,
		Endpoint: ep,
		Proto:    proto,
		Target:   base,
	}}, nil
}

func (n *Node) unmarshalValue(env *vm.Env, v wire.Value) (vm.Value, error) {
	switch v.Kind {
	case wire.KVoid:
		return vm.Value{}, nil
	case wire.KNull:
		return vm.NullV(), nil
	case wire.KBool:
		return vm.BoolV(v.Bool), nil
	case wire.KInt:
		return vm.IntV(v.Int), nil
	case wire.KFloat:
		return vm.FloatV(v.Float), nil
	case wire.KString:
		return vm.StringV(v.Str), nil
	case wire.KRef:
		return n.unmarshalRef(env, v.Ref)
	case wire.KArray:
		elem, err := ir.ParseDescriptor(v.Elem)
		if err != nil {
			return vm.Value{}, fmt.Errorf("bad array element descriptor %q: %w", v.Elem, err)
		}
		arr := vm.NewArray(elem, len(v.Arr))
		for i, wv := range v.Arr {
			ev, err := n.unmarshalValue(env, wv)
			if err != nil {
				return vm.Value{}, err
			}
			arr.Vals[i] = ev
		}
		return vm.ArrayV(arr), nil
	default:
		return vm.Value{}, fmt.Errorf("cannot unmarshal value kind %v", v.Kind)
	}
}

func (n *Node) unmarshalRef(env *vm.Env, ref *wire.RemoteRef) (vm.Value, error) {
	if ref == nil {
		return vm.NullV(), nil
	}
	// Reference back to this node: unwrap to the live object.
	if n.servesEndpoint(ref.Endpoint) {
		if obj, ok := n.exports.Get(ref.GUID); ok {
			return vm.RefV(obj), nil
		}
		if class, ok := guid.IsClassGUID(ref.GUID); ok {
			me, thrown, err := n.localSingleton(env, class)
			if err != nil {
				return vm.Value{}, err
			}
			if thrown != nil {
				cls, msg := vm.ThrownMessage(thrown)
				return vm.Value{}, fmt.Errorf("initialising statics of %s: %s: %s", class, cls, msg)
			}
			return me, nil
		}
		return vm.Value{}, fmt.Errorf("reference %s points at this node but is not exported", ref.GUID)
	}
	// Foreign reference: materialise a proxy.
	proxyClass := transform.OProxy(ref.Target, ref.Proto)
	if ref.ClassSide {
		proxyClass = transform.CProxy(ref.Target, ref.Proto)
	}
	if !n.machine.Program().Has(proxyClass) {
		return vm.Value{}, fmt.Errorf("no proxy class %s for incoming reference", proxyClass)
	}
	obj, err := env.New(proxyClass)
	if err != nil {
		return vm.Value{}, err
	}
	setProxyFields(obj, ref.GUID, ref.Endpoint, ref.Proto, ref.Target)
	return vm.RefV(obj), nil
}

// setProxyFields writes the proxy reference quadruple in one atomic
// update, so a concurrent reader never sees a torn GUID/endpoint pair.
func setProxyFields(obj *vm.Object, id, endpoint, proto, target string) {
	obj.SetFields(map[string]vm.Value{
		transform.ProxyFieldGUID:     vm.StringV(id),
		transform.ProxyFieldEndpoint: vm.StringV(endpoint),
		transform.ProxyFieldProto:    vm.StringV(proto),
		transform.ProxyFieldTarget:   vm.StringV(target),
	})
}

// servesEndpoint reports whether endpoint is one of this node's own
// (lock-free: reads the published endpoint snapshot — this runs on
// every proxy invocation to detect self-collapse).
func (n *Node) servesEndpoint(endpoint string) bool {
	eps := n.epSnap.Load()
	if eps == nil {
		return false
	}
	for _, ep := range *eps {
		if ep == endpoint {
			return true
		}
	}
	return false
}

func splitProto(endpoint string) (proto, addr string, err error) {
	for i := 0; i+2 < len(endpoint); i++ {
		if endpoint[i] == ':' && endpoint[i+1] == '/' && endpoint[i+2] == '/' {
			return endpoint[:i], endpoint[i+3:], nil
		}
	}
	return "", "", fmt.Errorf("bad endpoint %q", endpoint)
}

func orString(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
