package node

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rafda/internal/cluster"
	"rafda/internal/policy"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// StartCluster joins this node to the cluster coordination plane: it
// builds a coordinator over the node's runtime (sharing the client
// cache, so gossip rides the connections invocations already hold),
// attaches it — enabling OpGossip dispatch and directory-first proxy
// resolution — and performs the join exchange with the seeds.  The
// caller drives the coordinator (Start for the timed loop, Tick for
// deterministic harnesses) and Stops it before Close.
//
// cfg.ID defaults to the node name and cfg.Self to the node's serving
// endpoint (preferring rrp); Runtime is always the node's own.
func (n *Node) StartCluster(cfg cluster.Config, seeds []string) (*cluster.Coordinator, error) {
	if cfg.ID == "" {
		cfg.ID = n.name
	}
	if cfg.Self == "" {
		cfg.Self = n.anyEndpoint("rrp")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("node %s: cluster needs a serving endpoint (Serve first)", n.name)
	}
	cfg.Runtime = &clusterRuntime{n: n}
	// Replication failover hooks, chained ahead of any caller-supplied
	// observers: promotion re-homes the replica copy as the new primary
	// and demotion stands a deposed primary down (internal/node
	// replicate.go) before tests or dashboards hear about it.
	userPromote, userDemote := cfg.OnPromote, cfg.OnDemote
	cfg.OnPromote = func(guid, class, selfGUID string) {
		n.promoteReplica(guid, class, selfGUID)
		if userPromote != nil {
			userPromote(guid, class, selfGUID)
		}
	}
	cfg.OnDemote = func(guid string) {
		n.demoteReplica(guid)
		if userDemote != nil {
			userDemote(guid)
		}
	}
	co, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	if !n.coord.CompareAndSwap(nil, co) {
		return nil, fmt.Errorf("node %s: already in a cluster", n.name)
	}
	n.EnableTelemetry() // rollups and RTT need the metrics plane
	if err := co.Join(seeds); err != nil {
		n.coord.Store(nil)
		return nil, err
	}
	return co, nil
}

// Cluster returns the attached coordinator, or nil.
func (n *Node) Cluster() *cluster.Coordinator { return n.coord.Load() }

// clusterRuntime adapts the node to the coordinator's Runtime interface.
type clusterRuntime struct {
	n *Node

	// affinity window state: AffinitySamples reports deltas between
	// consecutive calls, so rollups describe recent traffic, not
	// history (mirrors the adapt engine's windowing).
	affMu   sync.Mutex
	affPrev map[string]affCum
}

type affCum struct {
	total   uint64
	callers map[string]uint64
}

// Call implements cluster.Runtime over the node's shared client cache.
// Gossip is pinned to each pool's shard-0 connection (cache.Call), so
// the RTT the coordinator observes — and feeds into suspicion timing —
// always measures the same socket instead of smearing across shards.
func (r *clusterRuntime) Call(endpoint string, req *wire.Request) (*wire.Response, error) {
	req.ID = r.n.nextReqID()
	return r.n.cache.Call(endpoint, req)
}

// MigrateGUID implements cluster.Runtime: execute a cluster-won intent
// through the node's ordinary migration path (object gate held across
// snapshot→ship→morph; RecordMove fires from Migrate on success).
func (r *clusterRuntime) MigrateGUID(guid, endpoint string) (wire.RemoteRef, error) {
	obj, ok := r.n.exports.Get(guid)
	if !ok {
		return wire.RemoteRef{}, fmt.Errorf("node %s: unknown object %s", r.n.name, guid)
	}
	if !r.n.IsMigratable(obj) {
		return wire.RemoteRef{}, fmt.Errorf("node %s: %s is no longer a live local instance", r.n.name, guid)
	}
	if err := r.n.Migrate(vm.RefV(obj), endpoint); err != nil {
		return wire.RemoteRef{}, err
	}
	ref, forwarding := proxyRefOf(obj)
	if !forwarding {
		return wire.RemoteRef{}, fmt.Errorf("node %s: %s did not morph after migration", r.n.name, guid)
	}
	return ref, nil
}

// OwnsGUID implements cluster.Runtime.
func (r *clusterRuntime) OwnsGUID(guid string) bool {
	obj, ok := r.n.exports.Get(guid)
	return ok && r.n.IsMigratable(obj)
}

// AffinitySamples implements cluster.Runtime: window-delta rollups of
// the hottest locally hosted migratable objects, the evidence gossip
// disseminates for multi-hop placement.
func (r *clusterRuntime) AffinitySamples(max int) []wire.ObjAffinity {
	rec := r.n.telem.Load()
	if rec == nil || max <= 0 {
		return nil
	}
	r.affMu.Lock()
	defer r.affMu.Unlock()
	if r.affPrev == nil {
		r.affPrev = make(map[string]affCum)
	}
	seen := make(map[string]bool)
	var out []wire.ObjAffinity
	for _, s := range rec.SnapshotObjects() {
		seen[s.GUID] = true
		prev := r.affPrev[s.GUID]
		total := s.Calls()
		cur := affCum{total: total, callers: s.Callers}
		r.affPrev[s.GUID] = cur
		delta := total - prev.total
		if delta == 0 || !r.n.IsMigratable(s.Obj) {
			continue
		}
		a := wire.ObjAffinity{
			GUID:       s.GUID,
			Class:      s.Class,
			Calls:      delta,
			StateBytes: r.n.StateBytes(s.Obj),
		}
		for ep, c := range s.Callers {
			if d := c - prev.callers[ep]; d > 0 {
				a.Callers = append(a.Callers, wire.EndpointCount{Endpoint: ep, Calls: d})
			}
		}
		sort.Slice(a.Callers, func(i, j int) bool { return a.Callers[i].Endpoint < a.Callers[j].Endpoint })
		out = append(out, a)
	}
	for g := range r.affPrev {
		if !seen[g] {
			delete(r.affPrev, g)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		return out[i].GUID < out[j].GUID
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// ObservePeerRTT implements cluster.Runtime.
func (r *clusterRuntime) ObservePeerRTT(endpoint string, d time.Duration) {
	if rec := r.n.telem.Load(); rec != nil {
		rec.RecordPeerRTT(endpoint, d)
	}
}

// ApplyClassPlacement implements cluster.Runtime: follow a gossiped
// class placement epoch in the local policy table.
func (r *clusterRuntime) ApplyClassPlacement(class, endpoint string) error {
	if endpoint == "" || r.n.servesEndpoint(endpoint) {
		r.n.pol.SetClass(class, policy.LocalPlacement)
		return nil
	}
	pl, err := policy.RemoteAt(endpoint)
	if err != nil {
		return err
	}
	r.n.pol.SetClass(class, pl)
	return nil
}

// dispatchGossip serves one inbound gossip exchange.
func (n *Node) dispatchGossip(req *wire.Request) *wire.Response {
	co := n.coord.Load()
	if co == nil {
		return wire.Errorf(req, "node %s: not in a cluster", n.name)
	}
	return &wire.Response{ID: req.ID, Cluster: co.HandleGossip(req.Cluster)}
}

// StateBytes estimates the wire size of obj's field state — what a
// migration would ship.  It prices vm values the way the telemetry
// plane prices wire values (relative magnitudes, not exact frames).
func (n *Node) StateBytes(obj *vm.Object) int64 {
	_, fields := obj.View()
	var sz int64
	for name, v := range fields {
		sz += int64(len(name)) + vmValueSize(v)
	}
	return sz
}

func vmValueSize(v vm.Value) int64 {
	switch {
	case v.S != "":
		return 1 + int64(len(v.S))
	case v.A != nil:
		var sz int64 = 9
		for _, el := range v.A.Vals {
			sz += vmValueSize(el)
		}
		return sz
	case v.O != nil:
		// Referenced objects travel as remote references, not copies.
		return 48
	default:
		return 9
	}
}

// recordMove publishes a completed outbound migration of the export
// under oldGUID into the cluster directory (no-op outside a cluster).
func (n *Node) recordMove(obj *vm.Object, base string, ref wire.RemoteRef) {
	co := n.coord.Load()
	if co == nil {
		return
	}
	if guid, ok := n.exports.GUIDOf(obj); ok {
		co.RecordMove(guid, base, ref)
	}
}

// resolveViaDirectory consults the cluster's placement directory for a
// fresher home of the object behind guid, returning the chain-collapsed
// reference.  One atomic load when no cluster is attached.
func (n *Node) resolveViaDirectory(guid, endpoint string) (wire.RemoteRef, bool) {
	co := n.coord.Load()
	if co == nil {
		return wire.RemoteRef{}, false
	}
	ref, ok := co.Resolve(guid)
	if !ok || ref.GUID == "" || ref.Endpoint == "" {
		return wire.RemoteRef{}, false
	}
	if ref.GUID == guid && ref.Endpoint == endpoint {
		return wire.RemoteRef{}, false // directory agrees with the proxy
	}
	return ref, true
}

// AnnounceClassPlacement publishes a class placement into the cluster
// directory (no-op outside a cluster).
func (n *Node) AnnounceClassPlacement(class, endpoint string) {
	if co := n.coord.Load(); co != nil {
		co.RecordClassPlacement(class, endpoint)
	}
}

var _ cluster.Runtime = (*clusterRuntime)(nil)
