package node

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"rafda/internal/intercept"
	"rafda/internal/telemetry"
	"rafda/internal/trace"
	"rafda/internal/wire"
)

// Unified introspection plane (docs/OBSERVABILITY.md): one effect-free
// wire op — OpIntrospect — exposes everything a node knows about
// itself: activity counters, the exactly-once plane's dedup counters,
// telemetry samples (when enabled), the cluster's view (when attached),
// and the flight recorder's per-kind latency digests and span ring.
// Effect-free means exactly that: serving an introspection request
// mutates nothing, takes no object gate, and rides the same dispatch
// path as OpPing, so it is safe to poll a wedged node.

// Introspection is the unified metrics snapshot served for the
// "metrics" section.  Optional planes marshal as absent rather than
// zeroed, so a reader can tell "telemetry disabled" from "no traffic".
type Introspection struct {
	Node       string   `json:"node"`
	Endpoints  []string `json:"endpoints,omitempty"`
	Exports    int      `json:"exports"`
	PoolShards int      `json:"pool_shards"`

	Activity Stats                 `json:"activity"`
	Dedup    telemetry.DedupSample `json:"dedup"`

	// Overload is the SLO plane's refusal/pressure counters: admission
	// rejects, deadline expiries, the in-flight dispatch high-water and
	// outbox backpressure stalls.  Always present — the counters are
	// always on.
	Overload telemetry.OverloadSample `json:"overload"`

	// Shed breaks the proactive-shedding refusals down by priority
	// class and by tenant; nil unless a Shed policy is configured
	// (aggregate per-policy totals ride in Overload either way).
	Shed *intercept.ShedSample `json:"shed,omitempty"`

	// Telemetry samples; nil slices when EnableTelemetry was never
	// called on this node.
	Objects []ObjIntro              `json:"objects,omitempty"`
	Classes []telemetry.ClassSample `json:"classes,omitempty"`
	Peers   []telemetry.PeerSample  `json:"peers,omitempty"`

	Cluster *ClusterIntro `json:"cluster,omitempty"`

	// Trace is the flight recorder's digest — per-kind HDR-style
	// latency quantiles and ring occupancy — nil under Config.NoTrace.
	Trace *trace.Stats `json:"trace,omitempty"`
}

// ObjIntro is telemetry.ObjSample without its live object pointer,
// shaped for the wire.
type ObjIntro struct {
	GUID          string            `json:"guid"`
	Class         string            `json:"class"`
	Local         uint64            `json:"local"`
	Remote        uint64            `json:"remote"`
	Anon          uint64            `json:"anon,omitempty"`
	Callers       map[string]uint64 `json:"callers,omitempty"`
	BytesIn       uint64            `json:"bytes_in"`
	BytesOut      uint64            `json:"bytes_out"`
	Reads         uint64            `json:"reads"`
	Writes        uint64            `json:"writes"`
	EWMALatencyNs float64           `json:"ewma_latency_ns"`
}

// ClusterIntro is the coordinator's current view: membership,
// placement directory, replica sets and in-flight placement intents.
type ClusterIntro struct {
	Self        string            `json:"self"`
	Peers       []PeerIntro       `json:"peers,omitempty"`
	Directory   []wire.DirEntry   `json:"directory,omitempty"`
	ReplicaSets []wire.ReplicaSet `json:"replica_sets,omitempty"`
	Intents     []wire.Intent     `json:"intents,omitempty"`
}

// PeerIntro is one membership-table row.
type PeerIntro struct {
	ID        string `json:"id"`
	Endpoint  string `json:"endpoint"`
	Heartbeat uint64 `json:"heartbeat"`
	Health    string `json:"health"`
}

// introspection assembles the unified snapshot.
func (n *Node) introspection() *Introspection {
	in := &Introspection{
		Node:       n.name,
		Endpoints:  n.Endpoints(),
		Exports:    n.exports.Len(),
		PoolShards: n.cache.Shards(),
		Activity:   n.Snapshot(),
		Dedup:      n.DedupSnapshot(),
		Overload:   n.overload.Snapshot(),
	}
	sort.Strings(in.Endpoints)
	if n.ShedConfigured() {
		s := n.ShedSnapshot()
		in.Shed = &s
	}
	if rec := n.telem.Load(); rec != nil {
		for _, s := range rec.SnapshotObjects() {
			in.Objects = append(in.Objects, ObjIntro{
				GUID: s.GUID, Class: s.Class,
				Local: s.Local, Remote: s.Remote, Anon: s.Anon,
				Callers: s.Callers, BytesIn: s.BytesIn, BytesOut: s.BytesOut,
				Reads: s.Reads, Writes: s.Writes, EWMALatencyNs: s.EWMALatencyNs,
			})
		}
		sort.Slice(in.Objects, func(i, j int) bool { return in.Objects[i].GUID < in.Objects[j].GUID })
		in.Classes = rec.SnapshotClasses()
		sort.Slice(in.Classes, func(i, j int) bool { return in.Classes[i].Class < in.Classes[j].Class })
		in.Peers = rec.SnapshotPeers()
		sort.Slice(in.Peers, func(i, j int) bool { return in.Peers[i].Endpoint < in.Peers[j].Endpoint })
	}
	if co := n.coord.Load(); co != nil {
		ci := &ClusterIntro{Self: co.Self()}
		for _, p := range co.Peers() {
			ci.Peers = append(ci.Peers, PeerIntro{
				ID: p.ID, Endpoint: p.Endpoint, Heartbeat: p.Heartbeat, Health: p.Health,
			})
		}
		ci.Directory = co.Directory()
		ci.ReplicaSets = co.ReplicaSets()
		ci.Intents = co.Intents()
		in.Cluster = ci
	}
	if tr := n.tracer; tr != nil {
		st := tr.Stats()
		in.Trace = &st
	}
	return in
}

// Introspect renders one introspection section as JSON.  Sections:
//
//	"metrics" (or ""): the unified Introspection snapshot
//	"spans":           the flight recorder's ring, oldest first
//	"trace":           spans of the one trace whose hex id is arg
//
// It is the single implementation behind wire.OpIntrospect, the
// facade's IntrospectJSON, rafda-node's /debug/rafda endpoint and its
// SIGQUIT dump — every view of a node shows the same truth.
func (n *Node) Introspect(section, arg string) (string, error) {
	var v any
	switch section {
	case "", "metrics":
		v = n.introspection()
	case "spans":
		if n.tracer == nil {
			return "", fmt.Errorf("node %s: tracing disabled", n.name)
		}
		v = n.tracer.Spans()
	case "trace":
		if n.tracer == nil {
			return "", fmt.Errorf("node %s: tracing disabled", n.name)
		}
		id, err := strconv.ParseUint(arg, 16, 64)
		if err != nil || id == 0 {
			return "", fmt.Errorf("node %s: introspect trace wants a hex trace id, got %q", n.name, arg)
		}
		spans := []trace.Span{}
		for _, sp := range n.tracer.Spans() {
			if sp.Trace == id {
				spans = append(spans, sp)
			}
		}
		v = spans
	default:
		return "", fmt.Errorf("node %s: unknown introspection section %q", n.name, section)
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("node %s: introspect %s: %w", n.name, section, err)
	}
	return string(b), nil
}

// dispatchIntrospect serves wire.OpIntrospect: Method selects the
// section, GUID carries the hex trace id for "trace".  The snapshot
// travels as a JSON string — introspection is a debugging surface, and
// an opaque string keeps the wire layer ignorant of its shape.
func (n *Node) dispatchIntrospect(req *wire.Request) *wire.Response {
	out, err := n.Introspect(req.Method, req.GUID)
	if err != nil {
		return wire.Errorf(req, "%v", err)
	}
	return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KString, Str: out}}
}
