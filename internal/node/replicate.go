package node

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rafda/internal/intercept"
	"rafda/internal/ir"
	"rafda/internal/trace"
	"rafda/internal/transform"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// Read replication (docs/REPLICATION.md): a read-mostly object keeps one
// lease-holding primary — the node that owns the live instance — and any
// number of read replicas, full local copies of its state installed at
// its hottest caller nodes.  The verifier's method-effect analysis
// (internal/verifier.Effects) splits invocations into provable reads,
// which any lease-valid replica may serve, and writes, which serialise
// through the primary: each acknowledged write bumps the object's epoch
// and has either reached every replica (OpReplicaUpdate) or evicted the
// unreachable ones and waited out their leases — so no replica ever
// serves a read older than the last acknowledged write.
//
// Lock order: primaryReplica.fanMu, then the object's invocation gate,
// then primaryReplica.mu (a leaf — held only for field access, never
// across the gate, the network, or a lease wait).  replicaWriteBarrier
// follows the full chain; dropReplication and demoteReplica take only
// mu, so dissolving or demoting a set never blocks behind an in-flight
// fan-out or its eviction wait (CONCURRENCY.md §13).

// primaryReplica is this node's bookkeeping for an object it primaries.
type primaryReplica struct {
	// guid is the replica set's key: this node's exported GUID for the
	// object (the identity callers resolve).
	guid  string
	class string

	// fanMu serialises write barriers: it is held across the epoch bump,
	// the fan-out, and any eviction lease wait, so one write's
	// acknowledgement gate cannot be overtaken by the next write's.
	// Deliberate back-pressure: concurrent writes to the same replicated
	// object queue here for up to one lease window when a replica is
	// partitioned.
	fanMu sync.Mutex
	// mu guards epoch, members and dropped with short critical sections
	// only.  The epoch bump additionally happens under the object's
	// gate, so epoch order matches state order.
	mu      sync.Mutex
	epoch   uint64
	members []wire.ReplicaInfo
	// dropped marks a dissolved or demoted set: barriers become no-ops.
	dropped bool
}

// replicaCopy is this node's bookkeeping for a replica it serves.
type replicaCopy struct {
	class           string
	primaryGUID     string
	primaryEndpoint string
	primaryProto    string
	// epoch is the write epoch of the local copy's state.  Written only
	// under the replica object's invocation gate; read lock-free when a
	// served read stamps its response (also under the gate, so the stamp
	// matches the state the read observed).
	epoch atomic.Uint64
}

// isWriter classifies one invocation using the verifier's effect
// analysis: true unless the method is provably free of writes to
// pre-existing state.  Unknown methods — including anything the effects
// pass never saw — are writers, so misclassification costs read scaling,
// never correctness.
func (n *Node) isWriter(class, method string, nargs int) bool {
	return !n.effects.ReadOnly(class, ir.MethodKey(method, nargs))
}

// IsReplicated reports whether obj participates in a replica set on this
// node, as primary or as replica.  The adaptive engine uses it to stop
// re-proposing replication of an already-replicated object.
func (n *Node) IsReplicated(obj *vm.Object) bool {
	if !n.replActive.Load() {
		return false
	}
	guid, ok := n.exports.GUIDOf(obj)
	if !ok {
		return false
	}
	if _, ok := n.replPrim.Load(guid); ok {
		return true
	}
	_, ok = n.replCopies.Load(guid)
	return ok
}

// Replicate installs read replicas of a live local object at the given
// endpoints and registers the replica set with the cluster's replica
// plane.  This node stays the object's lease-holding primary: writes
// keep serialising here, each one fanning out to every replica before it
// is acknowledged, while provably read-only calls route to the nearest
// lease-valid replica (proxy side) or are served locally by one
// (dispatch side).  Requires an attached cluster (StartCluster): the
// replica plane's gossip is what disseminates routes and renews leases.
//
// The snapshot→install→register sequence holds the object's invocation
// gate, like migration: no write can land between the shipped state and
// the moment the write barrier starts covering the set.
func (n *Node) Replicate(ref vm.Value, endpoints ...string) error {
	if ref.O == nil {
		return fmt.Errorf("node %s: replicate of nil reference", n.name)
	}
	co := n.coord.Load()
	if co == nil {
		return fmt.Errorf("node %s: replication needs a cluster (StartCluster first)", n.name)
	}
	if len(endpoints) == 0 {
		return fmt.Errorf("node %s: replicate with no target endpoints", n.name)
	}
	obj := ref.O
	var retErr error
	n.machine.ExecOn(obj, func(env *vm.Env) {
		cls, fields := obj.View()
		base, kind := transform.BaseOfGenerated(cls.Name)
		if kind != transform.SuffixOLocal {
			retErr = fmt.Errorf("node %s: cannot replicate %s (only local transformed instances replicate)", n.name, cls.Name)
			return
		}
		id := n.exports.Ensure(obj)
		if _, ok := n.replPrim.Load(id); ok {
			retErr = fmt.Errorf("node %s: %s is already replicated", n.name, id)
			return
		}
		if _, ok := n.replCopies.Load(id); ok {
			retErr = fmt.Errorf("node %s: %s is itself a replica", n.name, id)
			return
		}
		// One snapshot serves every target: values marshal with the
		// neutral "" proto (exactly as the write barrier does), so a
		// mixed-proto endpoint list never receives values marshalled for
		// a different transport.
		fvs := make([]wire.NamedValue, 0, len(fields))
		for name, val := range fields {
			mv, err := n.marshalValue(val, "")
			if err != nil {
				retErr = fmt.Errorf("node %s: marshal field %s: %w", n.name, name, err)
				return
			}
			fvs = append(fvs, wire.NamedValue{Name: name, Value: mv})
		}

		const firstEpoch = 1
		var members []wire.ReplicaInfo
		var failures []string
		for _, ep := range endpoints {
			if ep == "" || n.servesEndpoint(ep) {
				continue // replicating to the primary itself is a no-op
			}
			proto, _, err := splitProto(ep)
			if err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", ep, err))
				continue
			}
			req := &wire.Request{
				ID: n.nextReqID(), Op: wire.OpReplicaInstall, GUID: id, Class: base,
				Endpoint: co.Self(), Epoch: firstEpoch, Fields: fvs,
				Caller: n.callerEndpoint(proto),
			}
			resp, err := n.sendReplicaOp(ep, req)
			switch {
			case err != nil:
				failures = append(failures, fmt.Sprintf("%s: %v", ep, err))
			case resp.Err != "":
				failures = append(failures, fmt.Sprintf("%s: %s", ep, resp.Err))
			case resp.Result.Kind != wire.KRef || resp.Result.Ref == nil:
				failures = append(failures, fmt.Sprintf("%s: install returned no reference", ep))
			default:
				members = append(members, wire.ReplicaInfo{Endpoint: ep, GUID: resp.Result.Ref.GUID})
			}
		}
		if len(members) == 0 {
			retErr = fmt.Errorf("node %s: no replica of %s installed: %s",
				n.name, id, strings.Join(failures, "; "))
			return
		}
		pr := &primaryReplica{guid: id, class: base, epoch: firstEpoch, members: members}
		n.replPrim.Store(id, pr)
		n.replActive.Store(true)
		co.RecordReplicaSet(wire.ReplicaSet{
			GUID: id, Class: base, Primary: co.Self(), Epoch: firstEpoch, Replicas: members,
		})
	})
	return retErr
}

// sendReplicaOp performs one replica-maintenance request, tokened unless
// the node is configured for untokened legacy interop, so a transport
// retry of an install or update is recognised by the receiver's dedup
// window instead of executing twice.
func (n *Node) sendReplicaOp(endpoint string, req *wire.Request) (*wire.Response, error) {
	if n.untokened {
		return n.cache.Call(endpoint, req)
	}
	defer n.issuer.Finish(n.issuer.Stamp(req))
	return n.callEndpoint(endpoint, req.GUID, req)
}

// replicaWriteBarrier propagates a completed write on a replicated
// primary to every replica before the write is acknowledged, and returns
// the epoch the write committed at (0 when the object is not a
// replicated primary here).  The snapshot and the epoch bump share the
// object's invocation gate, so epoch order equals state order; the
// fan-out itself runs outside the gate (replicas order updates by
// epoch).  A replica that cannot be reached — or that acks an epoch
// other than the one pushed, which means its copy diverged — is evicted
// from the set and its lease waited out — after that wait it has
// provably stopped serving reads — so the acknowledgement's guarantee
// survives partitions: every replica still in the set holds the new
// state, and everyone else is lease-dead.
//
// Locking: fanMu is held end to end (barriers for the same object
// serialise, including the eviction wait — the back-pressure is the
// point: the next write cannot be acknowledged past a replica that
// might still serve the previous state).  pr.mu is taken only for the
// epoch bump and the membership edit, so dropReplication and
// demoteReplica never block behind a fan-out or a lease wait.
func (n *Node) replicaWriteBarrier(obj *vm.Object, id string, ctx trace.Ctx) uint64 {
	v, ok := n.replPrim.Load(id)
	if !ok {
		return 0
	}
	pr := v.(*primaryReplica)
	co := n.coord.Load()
	if co == nil {
		return 0
	}
	// The barrier span opens before fanMu so its duration covers the
	// serialisation wait behind earlier barriers — that queueing is the
	// back-pressure this barrier exists to apply, and hiding it would
	// make a flight-recorder read of a slow write misleading.
	sp := n.startSpan(ctx, trace.KindBarrier, "write-barrier", id)
	pr.fanMu.Lock()
	defer pr.fanMu.Unlock()
	var epoch uint64
	var fvs []wire.NamedValue
	skip := false
	n.machine.ExecOn(obj, func(env *vm.Env) {
		cls, fields := obj.View()
		if isProxyClass(cls) {
			skip = true // migrated away between the write and the barrier
			return
		}
		pr.mu.Lock()
		if pr.dropped {
			pr.mu.Unlock()
			skip = true
			return
		}
		pr.epoch++
		epoch = pr.epoch
		pr.mu.Unlock()
		fvs = make([]wire.NamedValue, 0, len(fields))
		for name, val := range fields {
			mv, err := n.marshalValue(val, "")
			if err != nil {
				skip = true // unshippable state: skip this round
				return
			}
			fvs = append(fvs, wire.NamedValue{Name: name, Value: mv})
		}
	})
	if skip {
		if sp != nil {
			sp.Note = "skipped"
		}
		n.finishSpan(sp, "")
		return 0
	}
	pr.mu.Lock()
	members := append([]wire.ReplicaInfo(nil), pr.members...)
	pr.mu.Unlock()
	evicted := make(map[string]bool)
	var wait time.Duration
	for _, m := range members {
		req := &wire.Request{
			ID: n.nextReqID(), Op: wire.OpReplicaUpdate,
			GUID: m.GUID, Fields: fvs, Epoch: epoch,
		}
		if sp != nil {
			req.Trace = wireCtx(sp) // fan-out legs join the write's trace
		}
		resp, err := n.sendReplicaOp(m.Endpoint, req)
		if err == nil && resp.Err == "" && resp.Epoch == epoch {
			continue
		}
		evicted[m.Endpoint] = true
		if w := co.EvictReplica(pr.guid, m.Endpoint); w > wait {
			wait = w
		}
	}
	if len(evicted) > 0 {
		pr.mu.Lock()
		kept := pr.members[:0]
		for _, m := range pr.members {
			if !evicted[m.Endpoint] {
				kept = append(kept, m)
			}
		}
		pr.members = kept
		pr.mu.Unlock()
	}
	if wait > 0 {
		// The evicted replicas renew leases only on direct contact with
		// us; once their lease window passes they refuse local reads, so
		// the write may be acknowledged without them.  fanMu (not pr.mu)
		// covers the sleep: a concurrent dissolution or demotion edits
		// the set freely while we wait.
		time.Sleep(wait)
	}
	if sp != nil {
		sp.Note = fmt.Sprintf("epoch %d fan-out %d evicted %d", epoch, len(members), len(evicted))
	}
	n.finishSpan(sp, "")
	co.UpdateReplicaEpoch(pr.guid, epoch)
	return epoch
}

// dropReplication dissolves a replica set this node primaries: drop
// requests to every member, a tombstone into the replica plane.  Called
// before migrating a replicated object away (Migrate takes the gate
// after this returns — see the lock-order note above) and as the first
// half of demotion.
func (n *Node) dropReplication(id string) {
	v, ok := n.replPrim.LoadAndDelete(id)
	if !ok {
		return
	}
	pr := v.(*primaryReplica)
	// Remove promotion-time aliases pointing at the same set.
	n.replPrim.Range(func(k, val any) bool {
		if val == v {
			n.replPrim.Delete(k)
		}
		return true
	})
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.dropped = true
	members := pr.members
	pr.members = nil
	if co := n.coord.Load(); co != nil {
		co.DropReplicaSet(pr.guid)
	}
	for _, m := range members {
		req := &wire.Request{ID: n.nextReqID(), Op: wire.OpReplicaDrop, GUID: m.GUID}
		_, _ = n.sendReplicaOp(m.Endpoint, req) // best-effort; the tombstone converges anyway
	}
}

// serveAtReplica handles an OpInvoke addressed to a replica copy.  A
// provable read under a valid lease executes locally, stamped (inside
// the gate, so the stamp matches the observed state) with the copy's
// epoch.  Everything else — writes, unclassifiable methods, reads after
// the lease expired (the primary-partition fallback) — forwards to the
// primary as the same logical call (token reused, attempt bumped) and
// carries a Redirect so the caller retargets.
func (n *Node) serveAtReplica(cc *intercept.CallCtx, obj *vm.Object, rc *replicaCopy) *wire.Response {
	req := cc.Req
	co := n.coord.Load()
	if n.isWriter(obj.ClassName(), req.Method, len(req.Args)) ||
		co == nil || !co.LeaseValid(rc.primaryGUID) {
		return n.forwardToPrimary(req, rc)
	}
	// The replica-read span marks which plane served the call; the
	// server span servedInvoke emits alongside it carries the queue/run
	// split.  Both parent to the caller's span, so the trace shows the
	// read was absorbed here instead of reaching the primary.
	sp := n.startSpan(traceCtxOf(req), trace.KindReplicaRead, req.Method, req.GUID)
	resp := &wire.Response{ID: req.ID}
	expired := false
	n.servedInvoke(cc, resp, obj, req.GUID, func(env *vm.Env) {
		// The pre-gate lease check above only admits the read to the
		// queue; it may have waited on the gate past the lease's expiry —
		// and past the primary's eviction wait, whose guarantee would be
		// defeated by executing now.  Re-check under the gate, next to
		// the epoch stamp, which lives here for the same reason.
		if !co.LeaseValid(rc.primaryGUID) {
			expired = true
			return
		}
		n.invokeOn(env, resp, vm.RefV(obj), req)
		resp.Epoch = rc.epoch.Load()
	})
	if expired {
		if sp != nil {
			sp.Note = "lease-expired"
		}
		n.finishSpan(sp, "")
		return n.forwardToPrimary(req, rc)
	}
	if sp != nil {
		sp.Note = fmt.Sprintf("epoch %d", resp.Epoch)
	}
	n.finishSpan(sp, resp.Err)
	return resp
}

// forwardToPrimary relays one replica-refused invocation to the set's
// primary and tells the caller to go there directly next time.
func (n *Node) forwardToPrimary(req *wire.Request, rc *replicaCopy) *wire.Response {
	fwd := &wire.Request{
		ID: n.nextReqID(), Op: wire.OpInvoke, GUID: rc.primaryGUID,
		Method: req.Method, Args: req.Args, Caller: req.Caller,
	}
	if req.Token != nil {
		t := *req.Token
		t.Attempt++
		fwd.Token = &t
	}
	// The forward leg continues the caller's trace through this hop: the
	// forward span parents to the caller's client span, and the primary's
	// server span parents to the forward span.
	sp := n.startSpan(traceCtxOf(req), trace.KindReplicaRead, "forward-primary", rc.primaryGUID)
	if sp != nil {
		fwd.Trace = wireCtx(sp)
	} else {
		fwd.Trace = req.Trace
	}
	redirect := &wire.RemoteRef{
		GUID: rc.primaryGUID, Endpoint: rc.primaryEndpoint,
		Proto: rc.primaryProto, Target: rc.class,
	}
	resp, err := n.callEndpoint(rc.primaryEndpoint, rc.primaryGUID, fwd)
	if err != nil {
		n.finishSpan(sp, err.Error())
		out := wire.Errorf(req, "node %s: replica %s cannot reach primary %s: %v",
			n.name, req.GUID, rc.primaryEndpoint, err)
		out.Redirect = redirect
		return out
	}
	n.finishSpan(sp, resp.Err)
	out := *resp
	out.ID = req.ID
	out.Redirect = redirect
	return &out
}

// dispatchReplicaInstall builds a full local copy of the shipped state,
// exports it under a fresh GUID and starts serving it as a replica of
// the primary named in the request.  Like migration adoption, the
// rebuild runs ungated: the copy is unshared until its reference leaves.
func (n *Node) dispatchReplicaInstall(req *wire.Request) *wire.Response {
	if !n.result.Substitutable(req.Class) {
		return wire.Errorf(req, "node %s: cannot replicate non-substitutable class %s", n.name, req.Class)
	}
	if req.GUID == "" || req.Endpoint == "" {
		return wire.Errorf(req, "node %s: replica install without primary identity", n.name)
	}
	proto, _, err := splitProto(req.Endpoint)
	if err != nil {
		return wire.Errorf(req, "node %s: replica install: %v", n.name, err)
	}
	resp := &wire.Response{ID: req.ID}
	n.machine.Exec(func(env *vm.Env) {
		obj, err := env.New(transform.OLocal(req.Class))
		if err != nil {
			resp.Err = err.Error()
			return
		}
		for _, f := range req.Fields {
			fv, err := n.unmarshalValue(env, f.Value)
			if err != nil {
				resp.Err = err.Error()
				return
			}
			obj.Set(f.Name, fv)
		}
		mv, err := n.marshalValue(vm.RefV(obj), "")
		if err != nil {
			resp.Err = err.Error()
			return
		}
		resp.Result = mv
		if g, ok := n.exports.GUIDOf(obj); ok {
			rc := &replicaCopy{
				class: req.Class, primaryGUID: req.GUID,
				primaryEndpoint: req.Endpoint, primaryProto: proto,
			}
			rc.epoch.Store(req.Epoch)
			n.replCopies.Store(g, rc)
			n.replActive.Store(true)
		}
	})
	return resp
}

// dispatchReplicaUpdate applies one committed write to a replica copy,
// under the copy's invocation gate so reads never observe half-applied
// state.  Updates order by epoch: a stale or duplicate delivery is
// acknowledged without applying (the fan-out may race; newest wins).
func (n *Node) dispatchReplicaUpdate(req *wire.Request) *wire.Response {
	v, ok := n.replCopies.Load(req.GUID)
	if !ok {
		return wire.Errorf(req, "node %s: %s is not a replica here", n.name, req.GUID)
	}
	rc := v.(*replicaCopy)
	obj, ok := n.exports.Get(req.GUID)
	if !ok {
		return wire.Errorf(req, "node %s: replica %s has no exported copy", n.name, req.GUID)
	}
	resp := &wire.Response{ID: req.ID}
	n.machine.ExecOn(obj, func(env *vm.Env) {
		if req.Epoch <= rc.epoch.Load() {
			resp.Epoch = rc.epoch.Load()
			return
		}
		for _, f := range req.Fields {
			fv, err := n.unmarshalValue(env, f.Value)
			if err != nil {
				resp.Err = err.Error()
				return
			}
			obj.Set(f.Name, fv)
		}
		rc.epoch.Store(req.Epoch)
		resp.Epoch = req.Epoch
	})
	return resp
}

// dispatchReplicaDrop tears a replica copy down: it stops serving reads
// immediately and its export is withdrawn (late reads surface an unknown
// object error and retarget through the tombstoned set).
func (n *Node) dispatchReplicaDrop(req *wire.Request) *wire.Response {
	if _, ok := n.replCopies.LoadAndDelete(req.GUID); ok {
		n.exports.Remove(req.GUID)
	}
	return &wire.Response{ID: req.ID}
}

// promoteReplica is the coordinator's OnPromote callback: the primary of
// a set this node replicates is dead and this node won the deterministic
// election (smallest live replica endpoint).  The local copy stops being
// a replica, re-exports under the old primary identity — callers' stale
// proxies and the set key both name it — and starts fielding writes,
// with the remaining members as its replica set.  A directory move
// re-routes proxies from the dead endpoint in one hop.
func (n *Node) promoteReplica(id, class, selfGUID string) {
	v, ok := n.replCopies.LoadAndDelete(selfGUID)
	if !ok {
		return
	}
	rc := v.(*replicaCopy)
	obj, ok := n.exports.Get(selfGUID)
	if !ok {
		return
	}
	co := n.coord.Load()
	if co == nil {
		return
	}
	n.exports.Put(id, obj)
	set, ok := co.ReplicaSet(id)
	if !ok {
		return
	}
	// Seed the write epoch strictly above anything the dead primary can
	// have pushed.  Barriers serialise (fanMu) and every *acknowledged*
	// epoch reached every surviving member, so member epochs can exceed
	// max(local epoch, set epoch) by at most one: the single unacked
	// fan-out the primary may have died inside.  Jumping one past the
	// max means this primary's first write commits at an epoch no
	// replica has seen — a member that applied the dead primary's
	// unacked update can never equal-epoch-collide with it, silently
	// acking a new write it did not apply and then serving the dead
	// primary's state after the write is acknowledged.
	epoch := rc.epoch.Load()
	if set.Epoch > epoch {
		epoch = set.Epoch
	}
	epoch++
	pr := &primaryReplica{guid: id, class: class, epoch: epoch, members: set.Replicas}
	n.replPrim.Store(id, pr)
	if selfGUID != id {
		// Writes may arrive addressed to either identity.
		n.replPrim.Store(selfGUID, pr)
	}
	n.replActive.Store(true)
	if proto, _, err := splitProto(co.Self()); err == nil {
		co.RecordMove(id, class, wire.RemoteRef{
			GUID: id, Endpoint: co.Self(), Proto: proto, Target: class,
		})
	}
}

// demoteReplica is the coordinator's OnDemote callback: a Version merge
// showed this node was failed over while partitioned — another replica
// is the primary now.  Stand down: stop running barriers, and morph the
// local copy into a proxy at the new primary so local references follow
// it.  Writes this node acknowledged alone during the partition are
// lost — the protocol's split-brain residual (docs/REPLICATION.md
// failure matrix); leases bound the window in which the *other* side
// could serve stale reads, not the deposed primary's solo writes.
func (n *Node) demoteReplica(id string) {
	v, ok := n.replPrim.Load(id)
	if !ok {
		return
	}
	pr := v.(*primaryReplica)
	n.replPrim.Delete(id)
	n.replPrim.Range(func(k, val any) bool {
		if val == v {
			n.replPrim.Delete(k)
		}
		return true
	})
	pr.mu.Lock()
	pr.dropped = true
	pr.members = nil
	pr.mu.Unlock()
	co := n.coord.Load()
	obj, okObj := n.exports.Get(id)
	if co == nil || !okObj {
		return
	}
	set, okSet := co.ReplicaSet(id)
	if !okSet || set.Primary == "" || n.servesEndpoint(set.Primary) {
		return
	}
	proto, _, err := splitProto(set.Primary)
	if err != nil || !n.machine.Program().Has(transform.OProxy(pr.class, proto)) {
		return
	}
	n.machine.ExecOn(obj, func(env *vm.Env) {
		if isProxyObject(obj) {
			return // already morphed (e.g. a racing migration)
		}
		_ = n.machine.Morph(obj, transform.OProxy(pr.class, proto), map[string]vm.Value{
			transform.ProxyFieldGUID:     vm.StringV(id),
			transform.ProxyFieldEndpoint: vm.StringV(set.Primary),
			transform.ProxyFieldProto:    vm.StringV(proto),
			transform.ProxyFieldTarget:   vm.StringV(pr.class),
		})
	})
}
