package node

import (
	"fmt"

	"rafda/internal/transform"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// Migrate moves a live object to the node at targetEndpoint and morphs
// the local instance, in place, into a proxy to its new home.  Every
// existing local reference to the object immediately observes the proxy
// — the Figure 1 substitution of C by Cp — and, because the object stays
// exported here, remote references forward transparently.
//
// ref may be a local transformed instance or a proxy: migrating through
// a proxy forwards the request to the object's home node (OpMigrateOut),
// and the proxy then retargets to the object's new home.
//
// Atomicity: the whole snapshot→ship→morph sequence runs while holding
// the object's invocation gate.  Acquiring the gate drains in-flight
// gated invocations and blocks new ones, so no gate-holding method call
// can mutate state between the snapshot and the morph — the lost-update
// window the migration stress test demonstrates against weaker designs.
// Blocked invocations resume once the morph completes and transparently
// forward through the proxy to the object's new home.  Two concurrent
// Migrate calls on one object serialise on the same gate; the loser
// observes the proxy and turns into a retargeting forward instead of
// shipping a second copy.
//
// An invocation parked inside Env.RunUnlocked — blocked on its own
// nested remote call — has released the gate, so a migration can land
// mid-method.  The object's morph epoch catches this on gate
// re-acquisition: the parked invocation unwinds with a
// vm.MigrationInterrupt and is retried whole through the morphed proxy,
// executing under the object's gate at its new home (the seed silently
// resumed old-class bytecode instead; docs/CONCURRENCY.md §8 — note
// the retried method re-runs its pre-park prefix, at-least-once).
func (n *Node) Migrate(ref vm.Value, targetEndpoint string) error {
	if ref.O == nil {
		return fmt.Errorf("node %s: migrate of nil reference", n.name)
	}
	obj := ref.O
	proto, _, err := splitProto(targetEndpoint)
	if err != nil {
		return err
	}
	// Fast path: already a proxy — forward the migration to the home
	// node.  (A stale answer is harmless: the gated re-check below
	// catches a migration that completes after this look.)
	if isProxyObject(obj) {
		return n.migrateViaHome(obj, targetEndpoint)
	}

	var viaProxy bool
	var migErr error
	n.machine.ExecOn(obj, func(env *vm.Env) {
		cls, fields := obj.View()
		if isProxyClass(cls) {
			// Lost the race to another migration while waiting for the
			// gate; retarget through the home instead (outside the gate,
			// since migrateViaHome re-acquires it).
			viaProxy = true
			return
		}
		base, kind := transform.BaseOfGenerated(cls.Name)
		if kind != transform.SuffixOLocal {
			migErr = fmt.Errorf("node %s: cannot migrate %s (only local transformed instances move)", n.name, cls.Name)
			return
		}

		// Snapshot.  Referenced objects are exported and travel as
		// references back to this node.
		req := &wire.Request{ID: n.nextReqID(), Op: wire.OpMigrateIn, Class: base}
		for name, val := range fields {
			mv, err := n.marshalValue(val, proto)
			if err != nil {
				migErr = fmt.Errorf("node %s: marshal field %s: %w", n.name, name, err)
				return
			}
			req.Fields = append(req.Fields, wire.NamedValue{Name: name, Value: mv})
		}

		// Ship, still holding the gate: invocations arriving now block
		// until the morph lands and then forward to the new home.  The
		// shipment goes over the pool's shard-0 connection WITHOUT the
		// failover retry (cache.Call, not CallKey): OpMigrateIn is not
		// idempotent — a retry after the target already adopted the
		// object would install a second orphan copy in its export table
		// — so a mid-flight connection death keeps the pre-pool
		// at-most-once regime: the ship fails, the morph never happens,
		// and the object stays live here (CONCURRENCY.md §10).
		resp, err := n.cache.Call(targetEndpoint, req)
		if err != nil {
			migErr = fmt.Errorf("node %s: migrate call: %w", n.name, err)
			return
		}
		if resp.Err != "" {
			migErr = fmt.Errorf("node %s: migrate rejected: %s", n.name, resp.Err)
			return
		}
		if resp.Result.Kind != wire.KRef || resp.Result.Ref == nil {
			migErr = fmt.Errorf("node %s: migrate returned no reference", n.name)
			return
		}
		newRef := resp.Result.Ref

		// Morph the local object into a proxy to its new home.  All
		// existing references (including this node's export-table entry,
		// which now forwards) follow automatically.
		proxyClass := transform.OProxy(base, newRef.Proto)
		pf := map[string]vm.Value{
			transform.ProxyFieldGUID:     vm.StringV(newRef.GUID),
			transform.ProxyFieldEndpoint: vm.StringV(newRef.Endpoint),
			transform.ProxyFieldProto:    vm.StringV(newRef.Proto),
			transform.ProxyFieldTarget:   vm.StringV(base),
		}
		if err := n.machine.Morph(obj, proxyClass, pf); err != nil {
			migErr = fmt.Errorf("node %s: morph after migrate: %w", n.name, err)
			return
		}
		n.stats.migrationsOut.Add(1)
		// Publish the move into the cluster's placement directory (if
		// this node is in one): peers learn the object's new home via
		// gossip and resolve it directly instead of walking our
		// forwarding proxy.
		n.recordMove(obj, base, *newRef)
	})
	if viaProxy {
		return n.migrateViaHome(obj, targetEndpoint)
	}
	return migErr
}

// migrateViaHome forwards a migration request through a proxy to the
// object's current home and retargets the proxy to the new location.
// It holds the proxy's gate so concurrent retargets of the same proxy
// serialise and readers never race a half-written reference.
func (n *Node) migrateViaHome(proxy *vm.Object, targetEndpoint string) error {
	var retErr error
	n.machine.ExecOn(proxy, func(env *vm.Env) {
		_, fields := proxy.View()
		home := fields[transform.ProxyFieldEndpoint].S
		id := fields[transform.ProxyFieldGUID].S
		if home == targetEndpoint {
			return // already there
		}
		// Unlike the ship above, OpMigrateOut may ride the pool's
		// failover retry: a duplicate delivery finds the home's export
		// already forwarding and just returns the new reference.
		resp, err := n.callEndpoint(home, id, &wire.Request{
			ID: n.nextReqID(), Op: wire.OpMigrateOut, GUID: id, Endpoint: targetEndpoint,
		})
		if err != nil {
			retErr = fmt.Errorf("node %s: migrate-out: %w", n.name, err)
			return
		}
		if resp.Err != "" {
			retErr = fmt.Errorf("node %s: migrate-out rejected: %s", n.name, resp.Err)
			return
		}
		newRef := resp.Result.Ref
		if resp.Result.Kind != wire.KRef || newRef == nil {
			retErr = fmt.Errorf("node %s: migrate-out returned no reference", n.name)
			return
		}
		setProxyFields(proxy, newRef.GUID, newRef.Endpoint, newRef.Proto, newRef.Target)
	})
	return retErr
}
