package node

import (
	"fmt"

	"rafda/internal/transform"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// Migrate moves a live object to the node at targetEndpoint and morphs
// the local instance, in place, into a proxy to its new home.  Every
// existing local reference to the object immediately observes the proxy
// — the Figure 1 substitution of C by Cp — and, because the object stays
// exported here, remote references forward transparently.
//
// ref may be a local transformed instance or a proxy: migrating through
// a proxy forwards the request to the object's home node (OpMigrateOut),
// and the proxy then retargets to the object's new home.
func (n *Node) Migrate(ref vm.Value, targetEndpoint string) error {
	if ref.O == nil {
		return fmt.Errorf("node %s: migrate of nil reference", n.name)
	}
	obj := ref.O
	proto, _, err := splitProto(targetEndpoint)
	if err != nil {
		return err
	}
	// obj.Class may be morphed by a concurrent migration of the same
	// object; check proxy-ness under the VM lock.
	var viaProxy bool
	n.machine.WithLock(func(*vm.Env) { viaProxy = isProxyObject(obj) })
	if viaProxy {
		return n.migrateViaHome(obj, targetEndpoint)
	}

	// One migration per object at a time: without this, two concurrent
	// migrations could both snapshot the pre-proxy state and ship two
	// live copies, with only one ever reachable afterwards.
	n.migMu.Lock()
	if _, busy := n.migrating[obj]; busy {
		n.migMu.Unlock()
		return fmt.Errorf("node %s: migration of this object already in progress", n.name)
	}
	n.migrating[obj] = struct{}{}
	n.migMu.Unlock()
	defer func() {
		n.migMu.Lock()
		delete(n.migrating, obj)
		n.migMu.Unlock()
	}()

	// Re-check under the guard: a migration that completed between the
	// first check and acquiring the slot has morphed obj into a proxy.
	n.machine.WithLock(func(*vm.Env) { viaProxy = isProxyObject(obj) })
	if viaProxy {
		return n.migrateViaHome(obj, targetEndpoint)
	}

	// Snapshot the object's state under the VM lock.  Referenced objects
	// are exported and travel as references back to this node.
	var base string
	req := &wire.Request{ID: n.nextReqID(), Op: wire.OpMigrateIn}
	var snapErr error
	n.machine.WithLock(func(env *vm.Env) {
		baseName, kind := transform.BaseOfGenerated(obj.Class.Name)
		if kind != transform.SuffixOLocal {
			snapErr = fmt.Errorf("node %s: cannot migrate %s (only local transformed instances move)", n.name, obj.Class.Name)
			return
		}
		base = baseName
		req.Class = base
		for name, val := range obj.Fields {
			mv, err := n.marshalValue(val, proto)
			if err != nil {
				snapErr = fmt.Errorf("node %s: marshal field %s: %w", n.name, name, err)
				return
			}
			req.Fields = append(req.Fields, wire.NamedValue{Name: name, Value: mv})
		}
	})
	if snapErr != nil {
		return snapErr
	}

	// Ship the state.
	client, err := n.client(targetEndpoint)
	if err != nil {
		return fmt.Errorf("node %s: migrate dial: %w", n.name, err)
	}
	resp, err := client.Call(req)
	if err != nil {
		return fmt.Errorf("node %s: migrate call: %w", n.name, err)
	}
	if resp.Err != "" {
		return fmt.Errorf("node %s: migrate rejected: %s", n.name, resp.Err)
	}
	if resp.Result.Kind != wire.KRef || resp.Result.Ref == nil {
		return fmt.Errorf("node %s: migrate returned no reference", n.name)
	}
	newRef := resp.Result.Ref

	// Morph the local object into a proxy to its new home.  All existing
	// references (including this node's export-table entry, which now
	// forwards) follow automatically.
	proxyClass := transform.OProxy(base, newRef.Proto)
	fields := map[string]vm.Value{
		transform.ProxyFieldGUID:     vm.StringV(newRef.GUID),
		transform.ProxyFieldEndpoint: vm.StringV(newRef.Endpoint),
		transform.ProxyFieldProto:    vm.StringV(newRef.Proto),
		transform.ProxyFieldTarget:   vm.StringV(base),
	}
	if err := n.machine.Morph(obj, proxyClass, fields); err != nil {
		return fmt.Errorf("node %s: morph after migrate: %w", n.name, err)
	}
	n.stats.migrationsOut.Add(1)
	return nil
}

// migrateViaHome forwards a migration request through a proxy to the
// object's current home and retargets the proxy to the new location.
func (n *Node) migrateViaHome(proxy *vm.Object, targetEndpoint string) error {
	var home, id string
	n.machine.WithLock(func(*vm.Env) {
		home = proxy.Get(transform.ProxyFieldEndpoint).S
		id = proxy.Get(transform.ProxyFieldGUID).S
	})
	if home == targetEndpoint {
		return nil // already there
	}
	client, err := n.client(home)
	if err != nil {
		return fmt.Errorf("node %s: migrate-out dial home: %w", n.name, err)
	}
	resp, err := client.Call(&wire.Request{
		ID: n.nextReqID(), Op: wire.OpMigrateOut, GUID: id, Endpoint: targetEndpoint,
	})
	if err != nil {
		return fmt.Errorf("node %s: migrate-out: %w", n.name, err)
	}
	if resp.Err != "" {
		return fmt.Errorf("node %s: migrate-out rejected: %s", n.name, resp.Err)
	}
	newRef := resp.Result.Ref
	if resp.Result.Kind != wire.KRef || newRef == nil {
		return fmt.Errorf("node %s: migrate-out returned no reference", n.name)
	}
	n.machine.WithLock(func(*vm.Env) {
		setProxyFields(proxy, newRef.GUID, newRef.Endpoint, newRef.Proto, newRef.Target)
	})
	return nil
}
