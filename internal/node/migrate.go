package node

import (
	"fmt"
	"time"

	"rafda/internal/trace"
	"rafda/internal/transform"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// parkDrainPatience bounds how long Migrate waits for invocations
// parked mid-method (Env.RunUnlocked) to resume and finish before
// snapshotting.  A drained park executes exactly once; an interrupted
// one is retried whole at the new home, re-running its pre-park prefix
// (docs/CONCURRENCY.md §8) — so migration trades a short delay for
// keeping that prefix re-execution a bounded exception rather than the
// rule.  Kept well under typical method latencies' tail but far above a
// nested call's round trip.
const parkDrainPatience = 100 * time.Millisecond

// Migrate moves a live object to the node at targetEndpoint and morphs
// the local instance, in place, into a proxy to its new home.  Every
// existing local reference to the object immediately observes the proxy
// — the Figure 1 substitution of C by Cp — and, because the object stays
// exported here, remote references forward transparently.
//
// ref may be a local transformed instance or a proxy: migrating through
// a proxy forwards the request to the object's home node (OpMigrateOut),
// and the proxy then retargets to the object's new home.
//
// Atomicity: the whole snapshot→ship→morph sequence runs while holding
// the object's invocation gate.  Acquiring the gate drains in-flight
// gated invocations and blocks new ones, so no gate-holding method call
// can mutate state between the snapshot and the morph — the lost-update
// window the migration stress test demonstrates against weaker designs.
// Blocked invocations resume once the morph completes and transparently
// forward through the proxy to the object's new home.  Two concurrent
// Migrate calls on one object serialise on the same gate; the loser
// observes the proxy and turns into a retargeting forward instead of
// shipping a second copy.
//
// An invocation parked inside Env.RunUnlocked — blocked on its own
// nested remote call — has released the gate, so a migration can land
// mid-method.  Migrate first waits up to parkDrainPatience for parked
// invocations to resume and finish (they then execute exactly once,
// entirely at the old home).  Past that patience the object's morph
// epoch catches the park on gate re-acquisition: the invocation
// unwinds with a vm.MigrationInterrupt and is retried whole through
// the morphed proxy, executing under the object's gate at its new home
// (the seed silently resumed old-class bytecode instead;
// docs/CONCURRENCY.md §8 — the retried method re-runs its pre-park
// prefix, the contract's one bounded at-least-once exception).
func (n *Node) Migrate(ref vm.Value, targetEndpoint string) error {
	return n.migrate(ref, targetEndpoint, trace.Ctx{})
}

// migrate is Migrate with a span context: a host-driven migration roots
// its own trace (zero ctx), while a remote-requested migrate-out
// continues the requester's (dispatchMigrateOut), so the drain, the
// shipment's OpMigrateIn leg and the adoption at the new home all hang
// off whatever caused the move.
func (n *Node) migrate(ref vm.Value, targetEndpoint string, ctx trace.Ctx) error {
	if ref.O == nil {
		return fmt.Errorf("node %s: migrate of nil reference", n.name)
	}
	obj := ref.O
	proto, _, err := splitProto(targetEndpoint)
	if err != nil {
		return err
	}
	// Fast path: already a proxy — forward the migration to the home
	// node.  (A stale answer is harmless: the gated re-check below
	// catches a migration that completes after this look.)
	if isProxyObject(obj) {
		return n.migrateViaHome(obj, targetEndpoint, ctx)
	}
	// A replicated primary dissolves its replica set before moving: the
	// tombstone re-routes readers to the (new) home and the copies are
	// dropped.  This runs before the gate is acquired — dropReplication
	// takes the set lock, and the lock order is set lock, then gate
	// (CONCURRENCY.md §13).
	if n.replActive.Load() {
		if guid, ok := n.exports.GUIDOf(obj); ok {
			n.dropReplication(guid)
		}
	}

	var viaProxy bool
	var migErr error
	// The migration span covers drain→ship→morph end to end; the drain
	// wait (gate acquisition plus park patience) is split out in the
	// Note so a flight-recorder read distinguishes a slow shipment from
	// a migration stalled behind parked invocations.
	sp := n.startSpan(ctx, trace.KindMigration, "migrate", targetEndpoint)
	drainStart := time.Now()
	var drained time.Duration
	// Park-drain loop: an invocation parked in Env.RunUnlocked has
	// released the gate, so ExecOn can land mid-method.  Rather than
	// interrupting it immediately (forcing a whole-method retry at the
	// new home, §8), release the gate and let it finish — bounded by
	// parkDrainPatience, after which the migration proceeds and the
	// parked call takes the MigrationInterrupt path.
	deadline := time.Now().Add(parkDrainPatience)
	for {
		var parkedWait bool
		n.machine.ExecOn(obj, func(env *vm.Env) {
			cls, fields := obj.View()
			if isProxyClass(cls) {
				// Lost the race to another migration while waiting for the
				// gate; retarget through the home instead (outside the gate,
				// since migrateViaHome re-acquires it).
				viaProxy = true
				return
			}
			base, kind := transform.BaseOfGenerated(cls.Name)
			if kind != transform.SuffixOLocal {
				migErr = fmt.Errorf("node %s: cannot migrate %s (only local transformed instances move)", n.name, cls.Name)
				return
			}
			if obj.Parked() > 0 && time.Now().Before(deadline) {
				// Waiting here would deadlock — the parked invocation
				// needs this gate to resume — so bail out and retry.
				parkedWait = true
				return
			}

			drained = time.Since(drainStart)
			migErr = n.shipAndMorph(obj, base, fields, proto, targetEndpoint, sp)
		})
		if parkedWait {
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	if viaProxy {
		if sp != nil {
			sp.Note = "lost-race"
		}
		n.finishSpan(sp, "")
		return n.migrateViaHome(obj, targetEndpoint, ctx)
	}
	if sp != nil {
		sp.Note = fmt.Sprintf("drain %v %s", drained.Round(time.Microsecond), sp.Note)
	}
	errMsg := ""
	if migErr != nil {
		errMsg = migErr.Error()
	}
	n.finishSpan(sp, errMsg)
	return migErr
}

// shipAndMorph performs the snapshot→ship→morph sequence for Migrate.
// The caller holds obj's invocation gate throughout.  sp, when non-nil,
// is the caller's migration span: the shipment rides it as a child leg
// (the adoption's server span at the new home parents to it) and the
// ship/morph timing lands in its Note.
func (n *Node) shipAndMorph(obj *vm.Object, base string, fields map[string]vm.Value, proto, targetEndpoint string, sp *trace.Span) error {
	// Snapshot.  Referenced objects are exported and travel as
	// references back to this node.
	req := &wire.Request{ID: n.nextReqID(), Op: wire.OpMigrateIn, Class: base}
	if sp != nil {
		req.Trace = wireCtx(sp)
	}
	for name, val := range fields {
		mv, err := n.marshalValue(val, proto)
		if err != nil {
			return fmt.Errorf("node %s: marshal field %s: %w", n.name, name, err)
		}
		req.Fields = append(req.Fields, wire.NamedValue{Name: name, Value: mv})
	}

	// The object's slice of the dedup window travels inside the
	// snapshot: a caller's post-migration retry of a call this node
	// already completed is then recognised at the new home and replayed
	// there instead of executing twice (docs/CONCURRENCY.md §10).  An
	// object never exported has never served a tokened call, so there is
	// nothing to ship.
	var shipped []wire.DedupEntry
	oldGUID, exported := n.exports.GUIDOf(obj)
	if exported && !n.untokened {
		shipped = n.dedupTab.ExtractFor(oldGUID)
		req.Dedup = shipped
	}

	// Ship, still holding the gate: invocations arriving now block
	// until the morph lands and then forward to the new home.  The
	// shipment is a tokened call riding the pool's failover retry: a
	// duplicate delivery after the target already adopted the object
	// hits the target's dedup window and replays the recorded response
	// — same GUID, no second orphan copy — which is what lets migration
	// survive a mid-flight connection death instead of keeping the old
	// shard-0 no-retry exemption.  Untokened legacy interop keeps that
	// exemption: the ship fails, the morph never happens, and the
	// object stays live here (CONCURRENCY.md §10).
	var resp *wire.Response
	var err error
	shipStart := time.Now()
	if n.untokened {
		resp, err = n.cache.Call(targetEndpoint, req)
	} else {
		defer n.issuer.Finish(n.issuer.Stamp(req))
		resp, err = n.callEndpoint(targetEndpoint, oldGUID, req)
	}
	ship := time.Since(shipStart)
	if err != nil || resp.Err != "" {
		// The ship failed outright: the object stays live here, so its
		// extracted replay history must be restored or late duplicates
		// of already-completed calls would re-execute.
		if len(shipped) > 0 {
			n.dedupTab.Adopt(oldGUID, shipped)
		}
		if err != nil {
			return fmt.Errorf("node %s: migrate call: %w", n.name, err)
		}
		return fmt.Errorf("node %s: migrate rejected: %s", n.name, resp.Err)
	}
	if resp.Result.Kind != wire.KRef || resp.Result.Ref == nil {
		return fmt.Errorf("node %s: migrate returned no reference", n.name)
	}
	newRef := resp.Result.Ref

	// Morph the local object into a proxy to its new home.  All
	// existing references (including this node's export-table entry,
	// which now forwards) follow automatically.
	proxyClass := transform.OProxy(base, newRef.Proto)
	pf := map[string]vm.Value{
		transform.ProxyFieldGUID:     vm.StringV(newRef.GUID),
		transform.ProxyFieldEndpoint: vm.StringV(newRef.Endpoint),
		transform.ProxyFieldProto:    vm.StringV(newRef.Proto),
		transform.ProxyFieldTarget:   vm.StringV(base),
	}
	if err := n.machine.Morph(obj, proxyClass, pf); err != nil {
		return fmt.Errorf("node %s: morph after migrate: %w", n.name, err)
	}
	if sp != nil {
		morph := time.Since(shipStart) - ship
		sp.Note = fmt.Sprintf("ship %v morph %v",
			ship.Round(time.Microsecond), morph.Round(time.Microsecond))
	}
	n.stats.migrationsOut.Add(1)
	// Publish the move into the cluster's placement directory (if
	// this node is in one): peers learn the object's new home via
	// gossip and resolve it directly instead of walking our
	// forwarding proxy.
	n.recordMove(obj, base, *newRef)
	return nil
}

// migrateViaHome forwards a migration request through a proxy to the
// object's current home and retargets the proxy to the new location.
// It holds the proxy's gate so concurrent retargets of the same proxy
// serialise and readers never race a half-written reference.
func (n *Node) migrateViaHome(proxy *vm.Object, targetEndpoint string, ctx trace.Ctx) error {
	var retErr error
	n.machine.ExecOn(proxy, func(env *vm.Env) {
		_, fields := proxy.View()
		home := fields[transform.ProxyFieldEndpoint].S
		id := fields[transform.ProxyFieldGUID].S
		if home == targetEndpoint {
			return // already there
		}
		// OpMigrateOut rides the pool's failover retry with a token: a
		// duplicate delivery is either replayed from the home's dedup
		// window or — for an untokened legacy peer — finds the home's
		// export already forwarding and just returns the new reference.
		req := &wire.Request{
			ID: n.nextReqID(), Op: wire.OpMigrateOut, GUID: id, Endpoint: targetEndpoint,
		}
		// The migrate-out leg continues ctx's trace; the home's own
		// migration span (its n.migrate) parents to this one.
		sp := n.startSpan(ctx, trace.KindMigration, "migrate-out", home)
		if sp != nil {
			req.Trace = wireCtx(sp)
		}
		if !n.untokened {
			defer n.issuer.Finish(n.issuer.Stamp(req))
		}
		resp, err := n.callEndpoint(home, id, req)
		if err != nil {
			n.finishSpan(sp, err.Error())
			retErr = fmt.Errorf("node %s: migrate-out: %w", n.name, err)
			return
		}
		if resp.Err != "" {
			n.finishSpan(sp, resp.Err)
			retErr = fmt.Errorf("node %s: migrate-out rejected: %s", n.name, resp.Err)
			return
		}
		newRef := resp.Result.Ref
		if resp.Result.Kind != wire.KRef || newRef == nil {
			n.finishSpan(sp, "migrate-out returned no reference")
			retErr = fmt.Errorf("node %s: migrate-out returned no reference", n.name)
			return
		}
		n.finishSpan(sp, "")
		setProxyFields(proxy, newRef.GUID, newRef.Endpoint, newRef.Proto, newRef.Target)
	})
	return retErr
}
