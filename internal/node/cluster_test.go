package node

import (
	"testing"

	"rafda/internal/cluster"
	"rafda/internal/policy"
	"rafda/internal/transform"
	"rafda/internal/vm"
)

const chainSource = `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Setup {
    static Counter make() { return new Counter(0); }
}
class Main { static void main() {} }`

// clusterNode builds one node serving inproc and joined to the cluster
// through seed (itself first).
func clusterNode(t *testing.T, res *transform.Result, name, seed string) (*Node, *cluster.Coordinator, string) {
	t.Helper()
	n, err := New(Config{Name: name, Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ep, err := n.Serve("inproc", "")
	if err != nil {
		t.Fatal(err)
	}
	var seeds []string
	if seed != "" {
		seeds = []string{seed}
	}
	co, err := n.StartCluster(cluster.Config{Fanout: 8, Seed: int64(len(name)) + 3}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return n, co, ep
}

// TestRedirectChainCollapses is the regression for forwarding-chain
// growth: after N successive migrations, a caller holding the original
// (N-hops-stale) reference must reach the final home in one hop via the
// placement directory — zero traffic through the intermediate nodes —
// instead of walking the Response.Redirect chain one call (and one full
// chain traversal) at a time.
func TestRedirectChainCollapses(t *testing.T) {
	res := transformSource(t, chainSource)

	n0, co0, _ := clusterNode(t, res, "n0", "")
	seed := co0.Self()
	n1, co1, ep1 := clusterNode(t, res, "n1", seed)
	n2, co2, ep2 := clusterNode(t, res, "n2", seed)
	n3, co3, ep3 := clusterNode(t, res, "n3", seed)
	n4, co4, ep4 := clusterNode(t, res, "n4", seed)
	coords := []*cluster.Coordinator{co0, co1, co2, co3, co4}
	tick := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for _, co := range coords {
				co.Tick()
			}
		}
	}

	// n0 creates the object at n1 and holds the original proxy.
	pl, err := policy.RemoteAt(ep1)
	if err != nil {
		t.Fatal(err)
	}
	n0.Policy().SetClass("Counter", pl)
	ref, err := n0.InvokeStatic("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := n0.CallOn(ref, "bump"); err != nil || got.I != 1 {
		t.Fatalf("first bump: %v %v", got, err)
	}

	// March the object n1→n2→n3→n4, each hop driven at the object's
	// current home (n0's stale proxy never learns).
	guid := ref.O.Get(transform.ProxyFieldGUID).S
	homes := []*Node{n1, n2, n3}
	targets := []string{ep2, ep3, ep4}
	for i, home := range homes {
		obj, ok := home.exports.Get(guid)
		if !ok {
			t.Fatalf("hop %d: %s not exported at %s", i, guid, home.Name())
		}
		if err := home.Migrate(vm.RefV(obj), targets[i]); err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		newRef, forwarding := proxyRefOf(obj)
		if !forwarding {
			t.Fatalf("hop %d: object did not morph", i)
		}
		guid = newRef.GUID
	}

	// Gossip until every member's directory has the collapsed chain.
	tick(4)
	staleGUID := ref.O.Get(transform.ProxyFieldGUID).S
	for _, co := range coords {
		r, ok := co.Resolve(staleGUID)
		if !ok || r.Endpoint != ep4 || r.GUID != guid {
			t.Fatalf("%s resolves %s to %+v (ok=%v), want %s@%s",
				co.ID(), staleGUID, r, ok, guid, ep4)
		}
	}

	// The assertion: one call from the stale reference, no traffic
	// through n1/n2/n3.  (No coordinator ticks in this window, so the
	// inbound counters isolate the invocation itself.)
	in1, in2, in3 := n1.Snapshot().RemoteCallsIn, n2.Snapshot().RemoteCallsIn, n3.Snapshot().RemoteCallsIn
	got, err := n0.CallOn(ref, "bump")
	if err != nil || got.I != 2 {
		t.Fatalf("bump after chain: %v %v (state lost across migrations?)", got, err)
	}
	if d := n1.Snapshot().RemoteCallsIn - in1; d != 0 {
		t.Fatalf("call flowed through n1 (%d requests)", d)
	}
	if d := n2.Snapshot().RemoteCallsIn - in2; d != 0 {
		t.Fatalf("call flowed through n2 (%d requests)", d)
	}
	if d := n3.Snapshot().RemoteCallsIn - in3; d != 0 {
		t.Fatalf("call flowed through n3 (%d requests)", d)
	}
	// And the proxy is permanently retargeted at the final home.
	if ep := ref.O.Get(transform.ProxyFieldEndpoint).S; ep != ep4 {
		t.Fatalf("proxy points at %s, want %s", ep, ep4)
	}
	_ = n4
}

// TestVolunteeredCallbackMakesAffinityActionable: a pure-client node
// (serving nothing) must volunteer a callback endpoint at dial time, so
// the server attributes its calls to a real endpoint instead of the
// anonymous bucket — and a migration toward it has somewhere to go.
func TestVolunteeredCallbackMakesAffinityActionable(t *testing.T) {
	res := transformSource(t, chainSource)
	server, err := New(Config{Name: "server", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	ep, err := server.Serve("inproc", "")
	if err != nil {
		t.Fatal(err)
	}
	rec := server.EnableTelemetry()

	client, err := New(Config{Name: "client", Result: res, VolunteerCallback: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	pl, err := policy.RemoteAt(ep)
	if err != nil {
		t.Fatal(err)
	}
	client.Policy().SetClass("Counter", pl)

	ref, err := client.InvokeStatic("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := client.CallOn(ref, "bump"); err != nil {
			t.Fatal(err)
		}
	}
	cb := client.Endpoint("inproc")
	if cb == "" {
		t.Fatal("client did not volunteer a callback endpoint")
	}
	var found bool
	for _, s := range rec.SnapshotObjects() {
		if s.Anon != 0 {
			t.Fatalf("calls still anonymous: %+v", s)
		}
		if s.Callers[cb] >= 5 { // 5 bumps (+ the factory's init call)
			found = true
		}
	}
	if !found {
		t.Fatalf("server did not attribute affinity to the volunteered endpoint %s", cb)
	}

	// A migration toward the volunteered endpoint must now succeed —
	// the whole point of making pure-client affinity actionable.
	obj, ok := server.exports.Get(ref.O.Get(transform.ProxyFieldGUID).S)
	if !ok {
		t.Fatal("object not exported at server")
	}
	if err := server.Migrate(vm.RefV(obj), cb); err != nil {
		t.Fatalf("migration to volunteered endpoint: %v", err)
	}
	if got, err := client.CallOn(ref, "bump"); err != nil || got.I != 6 {
		t.Fatalf("post-migration bump: %v %v", got, err)
	}
}

// TestNoVolunteerStaysAnonymous pins the default: without the opt-in, a
// pure client's calls stay anonymous (seed behaviour preserved).
func TestNoVolunteerStaysAnonymous(t *testing.T) {
	res := transformSource(t, chainSource)
	server, err := New(Config{Name: "server", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	ep, err := server.Serve("inproc", "")
	if err != nil {
		t.Fatal(err)
	}
	rec := server.EnableTelemetry()
	client, err := New(Config{Name: "client", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	pl, err := policy.RemoteAt(ep)
	if err != nil {
		t.Fatal(err)
	}
	client.Policy().SetClass("Counter", pl)
	ref, err := client.InvokeStatic("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.CallOn(ref, "bump"); err != nil {
		t.Fatal(err)
	}
	if client.Endpoint("inproc") != "" {
		t.Fatal("client served without opting in")
	}
	for _, s := range rec.SnapshotObjects() {
		if s.Anon == 0 {
			t.Fatalf("expected anonymous attribution: %+v", s)
		}
	}
}
