package node

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rafda/internal/minijava"
	"rafda/internal/policy"
	"rafda/internal/transform"
	"rafda/internal/vm"
)

// figure1Source models the paper's Figure 1: objects of classes A and B
// share an instance of class C; the shared instance is to become remote.
// All printing happens in Main so output location is deterministic.
const figure1Source = `
class C {
    int state;
    C(int s) { this.state = s; }
    int bump() { state = state + 1; return state; }
    int peek() { return state; }
}
class A {
    C c;
    A(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class B {
    C c;
    B(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class Main {
    static string run() {
        C shared = new C(100);
        A a = new A(shared);
        B b = new B(shared);
        string out = "";
        out = out + a.use() + ",";
        out = out + b.use() + ",";
        out = out + a.use() + ",";
        out = out + shared.peek();
        return out;
    }
    static void main() {
        sys.System.println(Main.run());
    }
}`

func transformSource(t *testing.T, src string) *transform.Result {
	t.Helper()
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := transform.Transform(prog, transform.Options{
		Protocols: []string{"inproc", "rrp", "soap", "json"},
	})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return res
}

// twoNodes builds a client and server pair over the given protocol and
// returns them plus the server endpoint.
func twoNodes(t *testing.T, res *transform.Result, proto string) (client, server *Node, endpoint string) {
	t.Helper()
	server, err := New(Config{Name: "server", Result: res})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	t.Cleanup(func() { server.Close() })
	endpoint, err = server.Serve(proto, "")
	if err != nil {
		t.Fatalf("serve %s: %v", proto, err)
	}
	client, err = New(Config{Name: "client", Result: res})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	// The client must also serve so its objects can be referenced from
	// the server (shared references, callbacks).
	if _, err := client.Serve(proto, ""); err != nil {
		t.Fatalf("client serve: %v", err)
	}
	return client, server, endpoint
}

func TestFigure1AllProtocols(t *testing.T) {
	res := transformSource(t, figure1Source)
	// Local baseline.
	var localOut bytes.Buffer
	localNode, err := New(Config{Name: "solo", Result: res, Output: &localOut})
	if err != nil {
		t.Fatal(err)
	}
	defer localNode.Close()
	if err := localNode.RunMain("Main"); err != nil {
		t.Fatalf("local run: %v", err)
	}
	want := "101,102,103,103\n"
	if localOut.String() != want {
		t.Fatalf("local baseline %q want %q", localOut.String(), want)
	}

	for _, proto := range []string{"inproc", "rrp", "soap", "json"} {
		t.Run(proto, func(t *testing.T) {
			res := transformSource(t, figure1Source)
			client, server, endpoint := twoNodes(t, res, proto)
			pl, err := policy.RemoteAt(endpoint)
			if err != nil {
				t.Fatal(err)
			}
			// Redistribute: instances of C live on the server.
			client.Policy().SetClass("C", pl)

			out, err := client.InvokeStatic("Main", "run")
			if err != nil {
				t.Fatalf("distributed run: %v", err)
			}
			if got := out.S + "\n"; got != want {
				t.Fatalf("distributed output %q want %q", got, want)
			}
			// The shared C instance really lived on the server.
			sst := server.Snapshot()
			if sst.Creates == 0 {
				t.Error("server created no objects; C was not remote")
			}
			if sst.RemoteCallsIn == 0 {
				t.Error("server served no calls")
			}
			cst := client.Snapshot()
			if cst.RemoteCallsOut == 0 {
				t.Error("client made no remote calls")
			}
		})
	}
}

func TestRemoteStatics(t *testing.T) {
	src := `
class Config {
    static int base = 500;
    static int scale(int x) { return base + x; }
}
class Main {
    static int probe(int x) { return Config.scale(x); }
    static void setBase(int b) { Config.base = b; }
    static int readBase() { return Config.base; }
}`
	res := transformSource(t, src)
	client, server, endpoint := twoNodes(t, res, "rrp")
	pl, _ := policy.RemoteAt(endpoint)
	client.Policy().SetClass("Config", pl)

	got, err := client.InvokeStatic("Main", "probe", vm.IntV(7))
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if got.I != 507 {
		t.Fatalf("probe=%d want 507", got.I)
	}
	// Static state lives on the server: mutate from the client, observe
	// from the server directly.
	if _, err := client.InvokeStatic("Main", "setBase", vm.IntV(1000)); err != nil {
		t.Fatalf("setBase: %v", err)
	}
	serverSide, err := server.InvokeStatic("Main", "readBase")
	if err != nil {
		t.Fatalf("server readBase: %v", err)
	}
	if serverSide.I != 1000 {
		t.Fatalf("server sees base=%d want 1000 (statics not shared)", serverSide.I)
	}
	clientSide, err := client.InvokeStatic("Main", "readBase")
	if err != nil {
		t.Fatalf("client readBase: %v", err)
	}
	if clientSide.I != 1000 {
		t.Fatalf("client sees base=%d want 1000", clientSide.I)
	}
}

func TestRemoteExceptionPropagation(t *testing.T) {
	src := `
class Risky {
    int divide(int a, int b) { return a / b; }
    void explode(string msg) { throw new sys.RuntimeException(msg); }
}
class Main {
    static string go() {
        Risky r = new Risky();
        string out = "";
        out = out + r.divide(10, 2);
        try {
            int x = r.divide(1, 0);
            out = out + ",nope" + x;
        } catch (sys.ArithmeticException e) {
            out = out + ",div:" + e.getMessage();
        }
        try {
            r.explode("boom");
        } catch (sys.RuntimeException e) {
            out = out + ",rt:" + e.getMessage();
        }
        return out;
    }
}`
	res := transformSource(t, src)
	client, _, endpoint := twoNodes(t, res, "json")
	pl, _ := policy.RemoteAt(endpoint)
	client.Policy().SetClass("Risky", pl)

	got, err := client.InvokeStatic("Main", "go")
	if err != nil {
		t.Fatalf("go: %v", err)
	}
	want := "5,div:division by zero,rt:boom"
	if got.S != want {
		t.Fatalf("got %q want %q", got.S, want)
	}
}

func TestNetworkFailureSurfacesAsRemoteException(t *testing.T) {
	src := `
class Box {
    int v;
    Box(int v) { this.v = v; }
    int get() { return v; }
}
class Main {
    static string go() {
        Box b = new Box(42);
        string out = "" + b.get();
        return out;
    }
}`
	res := transformSource(t, src)
	client, server, endpoint := twoNodes(t, res, "rrp")
	pl, _ := policy.RemoteAt(endpoint)
	client.Policy().SetClass("Box", pl)

	if got, err := client.InvokeStatic("Main", "go"); err != nil || got.S != "42" {
		t.Fatalf("warm-up: %v %v", got, err)
	}
	// Kill the server; further use must throw sys.RemoteException, which
	// is uncaught here.
	server.Close()
	_, err := client.InvokeStatic("Main", "go")
	if err == nil {
		t.Fatal("expected failure after server shutdown")
	}
	var unc *vm.UncaughtError
	if !asError(err, &unc) || unc.Class != "sys.RemoteException" {
		t.Fatalf("want uncaught sys.RemoteException, got %v", err)
	}
}

func asError[T error](err error, target *T) bool {
	for ; err != nil; err = unwrap(err) {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// TestSharedReferenceAcrossNodes passes an object created on the client
// to a remote object; the remote code mutates it through a proxy back to
// the client — reference semantics survive distribution.
func TestSharedReferenceAcrossNodes(t *testing.T) {
	src := `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    void add(int d) { n = n + d; }
    int get() { return n; }
}
class Worker {
    void work(Counter c) {
        c.add(5);
        c.add(6);
    }
}
class Main {
    static int go() {
        Counter local = new Counter(100);
        Worker w = new Worker();
        w.work(local);
        return local.get();
    }
}`
	res := transformSource(t, src)
	client, _, endpoint := twoNodes(t, res, "rrp")
	pl, _ := policy.RemoteAt(endpoint)
	// Worker is remote; Counter stays on the client.
	client.Policy().SetClass("Worker", pl)

	got, err := client.InvokeStatic("Main", "go")
	if err != nil {
		t.Fatalf("go: %v", err)
	}
	if got.I != 111 {
		t.Fatalf("counter=%d want 111 (callback mutation lost)", got.I)
	}
	cst := client.Snapshot()
	if cst.RemoteCallsIn == 0 {
		t.Error("client never served the callback")
	}
}

func TestMigration(t *testing.T) {
	src := `
class Store {
    int total;
    Store(int t) { this.total = t; }
    int add(int d) { total = total + d; return total; }
}
class Holder {
    static Store s = new Store(1000);
    static int poke(int d) { return s.add(d); }
}
class Main { static void main() { } }`
	res := transformSource(t, src)
	client, server, endpoint := twoNodes(t, res, "rrp")

	// Warm up: the Store lives locally on the client.
	if got, err := client.InvokeStatic("Holder", "poke", vm.IntV(1)); err != nil || got.I != 1001 {
		t.Fatalf("local poke: %v %v", got, err)
	}
	// Grab the live reference and migrate it to the server.
	ref, err := client.ReadStatic("Holder", "s")
	if err != nil {
		t.Fatalf("read static: %v", err)
	}
	if ref.O == nil {
		t.Fatal("nil store reference")
	}
	if err := client.Migrate(ref, endpoint); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// The same static field now reaches the migrated object remotely;
	// state carried over (1001) and continues to mutate on the server.
	got, err := client.InvokeStatic("Holder", "poke", vm.IntV(10))
	if err != nil {
		t.Fatalf("post-migration poke: %v", err)
	}
	if got.I != 1011 {
		t.Fatalf("post-migration total=%d want 1011", got.I)
	}
	sst := server.Snapshot()
	if sst.MigrationsIn != 1 {
		t.Errorf("server migrations=%d want 1", sst.MigrationsIn)
	}
	if sst.RemoteCallsIn == 0 {
		t.Error("server served no post-migration calls")
	}
	// The client-side object really morphed into a proxy.
	if !strings.Contains(ref.O.ClassName(), "_O_Proxy_") {
		t.Errorf("object did not morph: now %s", ref.O.ClassName())
	}
}

func TestDynamicRedistributionByPolicy(t *testing.T) {
	src := `
class Item {
    int v;
    Item(int v) { this.v = v; }
    int get() { return v; }
}
class Main {
    static int mk(int v) {
        Item it = new Item(v);
        return it.get();
    }
}`
	res := transformSource(t, src)
	client, server, endpoint := twoNodes(t, res, "inproc")

	// Phase 1: local.
	if got, err := client.InvokeStatic("Main", "mk", vm.IntV(1)); err != nil || got.I != 1 {
		t.Fatalf("phase1: %v %v", got, err)
	}
	before := server.Snapshot().Creates
	if before != 0 {
		t.Fatalf("server already created %d objects", before)
	}
	// Phase 2: flip policy at run time; creations move to the server.
	pl, _ := policy.RemoteAt(endpoint)
	client.Policy().SetClass("Item", pl)
	if got, err := client.InvokeStatic("Main", "mk", vm.IntV(2)); err != nil || got.I != 2 {
		t.Fatalf("phase2: %v %v", got, err)
	}
	if server.Snapshot().Creates != 1 {
		t.Fatalf("server creates=%d want 1", server.Snapshot().Creates)
	}
	// Phase 3: revert.
	client.Policy().SetClass("Item", policy.LocalPlacement)
	if got, err := client.InvokeStatic("Main", "mk", vm.IntV(3)); err != nil || got.I != 3 {
		t.Fatalf("phase3: %v %v", got, err)
	}
	if server.Snapshot().Creates != 1 {
		t.Fatalf("server creates=%d want still 1", server.Snapshot().Creates)
	}
}

func TestThreeNodeChain(t *testing.T) {
	src := `
class Tail {
    int weight;
    Tail(int w) { this.weight = w; }
    int get() { return weight; }
}
class Mid {
    Tail t;
    Mid(Tail t) { this.t = t; }
    int doubleIt() { return t.get() * 2; }
}
class Main {
    static int go(int w) {
        Tail tl = new Tail(w);
        Mid m = new Mid(tl);
        return m.doubleIt();
    }
}`
	res := transformSource(t, src)
	n1, err := New(Config{Name: "n1", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := New(Config{Name: "n2", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n3, err := New(Config{Name: "n3", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	defer n3.Close()
	ep1, _ := n1.Serve("rrp", "")
	ep2, _ := n2.Serve("rrp", "")
	ep3, _ := n3.Serve("rrp", "")
	_ = ep1

	// Main runs on n1; Mid lives on n2; Tail lives on n3.
	pl2, _ := policy.RemoteAt(ep2)
	pl3, _ := policy.RemoteAt(ep3)
	n1.Policy().SetClass("Mid", pl2)
	n1.Policy().SetClass("Tail", pl3)

	got, err := n1.InvokeStatic("Main", "go", vm.IntV(21))
	if err != nil {
		t.Fatalf("go: %v", err)
	}
	if got.I != 42 {
		t.Fatalf("got %d want 42", got.I)
	}
	// n2 must have called n3 directly: the Tail reference it received
	// pointed at n3, not at n1.
	if n2.Snapshot().RemoteCallsOut == 0 {
		t.Error("mid node made no outgoing calls; reference did not retarget")
	}
	if n3.Snapshot().RemoteCallsIn == 0 {
		t.Error("tail node served no calls")
	}
}

func TestArraysCrossTheWireByValue(t *testing.T) {
	src := `
class Summer {
    int sum(int[] xs) {
        int s = 0;
        for (int i = 0; i < xs.length; i = i + 1) { s = s + xs[i]; }
        return s;
    }
}
class Main {
    static int go() {
        int[] xs = new int[4];
        xs[0] = 1; xs[1] = 2; xs[2] = 3; xs[3] = 4;
        Summer s = new Summer();
        int r = s.sum(xs);
        xs[0] = 100; // server must not see this (value semantics)
        return r + s.sum(xs);
    }
}`
	res := transformSource(t, src)
	client, _, endpoint := twoNodes(t, res, "soap")
	pl, _ := policy.RemoteAt(endpoint)
	client.Policy().SetClass("Summer", pl)

	got, err := client.InvokeStatic("Main", "go")
	if err != nil {
		t.Fatalf("go: %v", err)
	}
	if got.I != 10+109 {
		t.Fatalf("got %d want %d", got.I, 10+109)
	}
}

func TestProxyOfProxyCollapses(t *testing.T) {
	// Passing a proxy back to its home node must unwrap to the original
	// object, not wrap a proxy around a proxy.
	src := `
class Cell {
    int v;
    Cell(int v) { this.v = v; }
    int get() { return v; }
}
class Echo {
    Cell bounce(Cell c) { return c; }
}
class Main {
    static bool go() {
        Cell c = new Cell(7);
        Echo e = new Echo();
        Cell back = e.bounce(c);
        return back == c;
    }
}`
	res := transformSource(t, src)
	client, _, endpoint := twoNodes(t, res, "rrp")
	pl, _ := policy.RemoteAt(endpoint)
	client.Policy().SetClass("Echo", pl)

	got, err := client.InvokeStatic("Main", "go")
	if err != nil {
		t.Fatalf("go: %v", err)
	}
	if !got.Bool() {
		t.Fatal("reference identity lost on round trip: proxy of proxy was created")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{RemoteCallsOut: 1, RemoteCallsIn: 2, Creates: 3}
	if fmt.Sprintf("%+v", s) == "" {
		t.Fatal("unprintable stats")
	}
}

// TestConcurrentRemoteInvocations drives one client node from many
// goroutines against a remote service over the multiplexed RRP
// transport: all calls share the node's one cached client connection, so
// this exercises concurrent dispatch on the server, concurrent response
// correlation on the client, and the VM-lock release around network
// waits.  Run under -race in CI.
func TestConcurrentRemoteInvocations(t *testing.T) {
	src := `
class Echo {
    int add(int a, int b) { return a + b; }
}
class Gate {
    static Echo svc = new Echo();
    static int call(int a, int b) { return svc.add(a, b); }
}
class Main { static void main() {} }`
	res := transformSource(t, src)
	client, server, endpoint := twoNodes(t, res, "rrp")
	pl, err := policy.RemoteAt(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	client.Policy().SetClass("Echo", pl)

	// Prime the singleton (and the remote Echo instance) once, before
	// the contention starts, so every goroutine then shares one proxy.
	if got, err := client.InvokeStatic("Gate", "call", vm.IntV(1), vm.IntV(2)); err != nil || got.I != 3 {
		t.Fatalf("prime: %v %v", got, err)
	}

	const goroutines = 8
	const callsEach = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				a, b := int64(g*1000+i), int64(i)
				got, err := client.InvokeStatic("Gate", "call", vm.IntV(a), vm.IntV(b))
				if err != nil {
					t.Errorf("g%d call %d: %v", g, i, err)
					return
				}
				if got.I != a+b {
					t.Errorf("g%d call %d: got %d want %d (cross-correlated result)", g, i, got.I, a+b)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if in := server.Snapshot().RemoteCallsIn; in < goroutines*callsEach {
		t.Errorf("server saw %d calls, want at least %d", in, goroutines*callsEach)
	}
}
