package node

import (
	"fmt"
	"time"

	"rafda/internal/guid"
	"rafda/internal/intercept"
	"rafda/internal/stdlib"
	"rafda/internal/telemetry"
	"rafda/internal/trace"
	"rafda/internal/transform"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// dispatch serves one incoming request.  Transports invoke it
// concurrently — the multiplexed RRP server runs one goroutine per
// in-flight request, and the HTTP transports one per connection — and
// requests proceed in parallel all the way through execution: an
// invocation synchronises only on its *target object's* gate
// (vm.ExecOn), so calls to different objects interleave freely while
// calls to the same object serialise with each other and with
// migrations of it.  Creation and migration adoption build objects not
// yet shared and run ungated (vm.Exec).  Counters are atomic, and the
// export/policy/singleton tables have their own synchronisation.
// Nested outgoing proxy calls release the execution's locks while
// blocked (Env.RunUnlocked), so re-entrant call chains between nodes —
// including callbacks targeting the original object — do not deadlock
// on invocation gates.  The exception is singleton *creation*
// (localSingleton): an execution that waits for another execution's
// in-progress creation can deadlock if that creation transitively
// depends on the waiter — the JVM has the same property for
// cross-thread class-initialisation cycles (docs/CONCURRENCY.md §7).
//
// Structurally, dispatch runs the request through the node's
// interceptor chain (chain.go): counting, plane short-circuits, the
// proactive shedding tier, user interceptors, the dedup window and
// trace emission are all ordered interceptors around the effect switch
// (rootDispatch).  The chain pointer is swapped atomically by Use, so
// this is one atomic load plus the precomposed call path.
func (n *Node) dispatch(req *wire.Request) *wire.Response {
	return n.chain.Load().Dispatch(req)
}

// dedupTarget names what a tokened call executes against, recorded on
// its dedup entry so migration can ship the target object's slice of
// the window along with the object (dedup.Table.ExtractFor).
func dedupTarget(req *wire.Request) string {
	if req.GUID != "" {
		return req.GUID
	}
	if req.Op == wire.OpInvokeClass {
		return guid.ClassGUID(req.Class)
	}
	return ""
}

func (n *Node) dispatchCreate(req *wire.Request) *wire.Response {
	if !n.result.Substitutable(req.Class) {
		return wire.Errorf(req, "node %s: class %s is not substitutable", n.name, req.Class)
	}
	n.stats.creates.Add(1)
	if rec := n.telem.Load(); rec != nil {
		rec.RecordCreateServed(req.Class, req.Caller)
	}
	resp := &wire.Response{ID: req.ID}
	// The new instance is not shared until its reference is marshalled
	// out, so construction needs no gate.
	n.machine.Exec(func(env *vm.Env) {
		val, thrown, err := env.Construct(transform.OLocal(req.Class), nil)
		if err != nil {
			resp.Err = err.Error()
			return
		}
		if thrown != nil {
			resp.ExClass, resp.ExMsg = vm.ThrownMessage(thrown)
			return
		}
		mv, err := n.marshalValue(val, "")
		if err != nil {
			resp.Err = err.Error()
			return
		}
		resp.Result = mv
	})
	return resp
}

func (n *Node) dispatchInvoke(cc *intercept.CallCtx) *wire.Response {
	req := cc.Req
	resp := &wire.Response{ID: req.ID}
	var target *vm.Object
	classGUID := false
	if class, ok := guid.IsClassGUID(req.GUID); ok {
		me, ok := n.singletonTarget(resp, class)
		if !ok {
			return resp
		}
		target = me.O
		classGUID = true
	} else {
		obj, ok := n.exports.Get(req.GUID)
		if !ok {
			resp.Err = fmt.Sprintf("node %s: unknown object %s", n.name, req.GUID)
			return resp
		}
		target = obj
		// A replica copy serves provable reads itself (epoch-stamped)
		// and relays everything else to its primary.
		if rc, isReplica := n.replCopies.Load(req.GUID); isReplica {
			return n.serveAtReplica(cc, obj, rc.(*replicaCopy))
		}
	}
	// The gate is the whole scheduling story: requests for different
	// objects run here in parallel; requests for this object queue.  If
	// the object was migrated away while this request waited, the gate
	// opens onto a proxy and the call transparently forwards.
	ctx := n.servedInvoke(cc, resp, target, req.GUID, func(env *vm.Env) {
		n.invokeOn(env, resp, vm.RefV(target), req)
	})
	// Write barrier for replicated primaries: a completed write fans out
	// to every replica (evicting and lease-waiting the unreachable)
	// before this response — the acknowledgement — leaves, and the
	// response carries the epoch the write committed at.  One lock-free
	// map miss for everything unreplicated.  The barrier continues the
	// server span's trace, so fan-out update spans at the replicas hang
	// off the write that caused them.
	if !classGUID && resp.Err == "" {
		if _, replicated := n.replPrim.Load(req.GUID); replicated &&
			n.isWriter(target.ClassName(), req.Method, len(req.Args)) {
			if epoch := n.replicaWriteBarrier(target, req.GUID, ctx); epoch > 0 {
				resp.Epoch = epoch
			}
		}
	}
	// When the export is (now) a forwarding proxy, tell the caller where
	// the object went, so its proxy retargets and subsequent calls skip
	// the forwarding hop.  Without this, an adaptively migrated object
	// would be reached through its old home forever and the placement
	// loop could not converge (docs/ADAPTIVE.md).  The class check is
	// the allocation-free common case; only actual proxies pay for the
	// field snapshot.
	if !classGUID && resp.Err == "" && isProxyObject(target) {
		if ref, forwarding := proxyRefOf(target); forwarding {
			resp.Redirect = &ref
		}
	}
	return resp
}

func (n *Node) dispatchInvokeClass(cc *intercept.CallCtx) *wire.Response {
	req := cc.Req
	resp := &wire.Response{ID: req.ID}
	me, ok := n.singletonTarget(resp, req.Class)
	if !ok {
		return resp
	}
	n.servedInvoke(cc, resp, me.O, guid.ClassGUID(req.Class), func(env *vm.Env) {
		n.invokeOn(env, resp, me, req)
	})
	return resp
}

// servedInvoke runs one inbound invocation under target's gate
// (retrying when the target is migrated away mid-call: the parked
// invocation unwinds with a MigrationInterrupt via ExecOnCatching and
// the retry forwards through the morphed proxy) and records the served
// call in the telemetry and trace planes.  The latency clock runs
// inside the gate — service time, not queueing — and the recording
// happens after the gate is released; with both planes disabled the
// whole cost is two nil checks.
//
// The trace plane emits the server span here: queue time (entry to
// inside-the-gate, including migration-retry unwinds) split from run
// time, and the span's context deposited as env baggage so every
// nested proxy call the execution makes — forwarding hops included —
// parents to it.  The returned context is that server span's (zero
// when untraced), for legs that continue the call after the gate
// releases, like the replica write barrier.  The gate measurements are
// deposited on cc for the trace interceptor (which owns the keyed
// percentile observation) and any user interceptor above it.
func (n *Node) servedInvoke(cc *intercept.CallCtx, resp *wire.Response, target *vm.Object, targetGUID string, call func(env *vm.Env)) trace.Ctx {
	req := cc.Req
	rec := n.telem.Load()
	var st *telemetry.ObjStats
	if rec != nil {
		st = rec.ForObject(target, targetGUID, baseClassOf(target.ClassName()))
	}
	name := req.Method
	if name == "" {
		name = req.Op.String()
	}
	sp := n.startSpan(traceCtxOf(req), trace.KindServer, name, targetGUID)
	// Deadlined calls measure their gate wait even with both planes
	// disabled: the budget is charged for queueing, and a call whose
	// budget the queue consumed is rejected before its body runs
	// (docs/CONCURRENCY.md §15).  The transport's admission check
	// already charged network-side queueing; this is the dispatch-side
	// leg of the same decrement chain.
	deadlined := req.DeadlineUs > 0
	start := int64(0)
	if sp != nil {
		start = sp.Start
	} else if deadlined {
		start = time.Now().UnixNano()
	}
	expired := false
	var svc, queue time.Duration
	for attempt := 0; ; attempt++ {
		*resp = wire.Response{ID: req.ID}
		interrupted := n.machine.ExecOnCatching(target, func(env *vm.Env) {
			// Forwarding hop: when the gate opened onto a proxy (the
			// object migrated away), the nested proxy call re-sends the
			// *same logical call* to the new home, so it must reuse the
			// inbound token rather than stamp a fresh one — the new
			// home's adopted window then recognises a duplicate of work
			// the old home already completed.  The class check is stable
			// here: migration morphs only under this gate.
			if req.Token != nil && isProxyObject(target) {
				env.SetForward(req.Token)
			}
			if sp != nil {
				env.SetTraceCtx(sp.Trace, sp.ID)
			}
			if st != nil || sp != nil || deadlined {
				t0 := time.Now()
				if sp != nil || deadlined {
					// Queue is everything between the span's Start and this
					// execution actually entering the gate, minus service
					// time already spent in interrupted attempts — derived
					// from t0, so the split costs no extra clock read.
					queue = time.Duration(t0.UnixNano() - start - int64(svc))
				}
				if deadlined {
					remaining := int64(req.DeadlineUs) - int64(queue/time.Microsecond)
					if remaining <= 0 {
						expired = true
						return // before the deferred svc accrual: no body ran
					}
					// Nested proxy calls stamp what's left of the budget
					// onto their outbound requests.
					env.SetDeadlineUs(uint64(remaining))
				}
				defer func() { svc += time.Since(t0) }()
			}
			call(env)
		})
		if expired {
			n.overload.NoteDeadlineExpiry()
			resp.Err = fmt.Sprintf("node %s: %s deadline expired in gate queue (budget %dµs, waited %v)",
				n.name, name, req.DeadlineUs, queue.Round(time.Microsecond))
			break
		}
		if !interrupted {
			break
		}
		if attempt >= vm.MaxMigrationRetries {
			resp.Err = fmt.Sprintf("node %s: %s abandoned: target migrated %d times mid-call",
				n.name, req.Method, attempt+1)
			break
		}
	}
	var ctx trace.Ctx
	if sp != nil {
		ctx = sp.Ctx()
		sp.Queue = int64(queue)
		sp.Dur = int64(svc)
		sp.Err = resp.Err
		n.tracer.Emit(sp)
	}
	if st != nil {
		st.RecordInbound(req.Caller, telemetry.RequestSize(req), telemetry.ResponseSize(resp), svc)
		// Effect classification feeds the replication rule: provable
		// reads versus (conservatively) everything else.
		st.RecordEffect(n.isWriter(target.ClassName(), req.Method, len(req.Args)))
	}
	// Deposit the gate measurements for the chain's trace interceptor,
	// which performs the keyed percentile observation after this
	// returns (ObserveCall used to live here; moving it keeps every
	// dispatch-plane emission in one tier).
	cc.Served = true
	cc.Expired = expired
	cc.QueueNs = int64(queue)
	cc.SvcNs = int64(svc)
	return ctx
}

// singletonTarget resolves (creating on first use) the local statics
// singleton for class, before any gate is taken — singleton creation
// executes program code and must not nest inside another object's gate.
// On failure it fills resp and returns false.
func (n *Node) singletonTarget(resp *wire.Response, class string) (vm.Value, bool) {
	var me vm.Value
	var thrown *vm.Thrown
	var err error
	n.machine.Exec(func(env *vm.Env) {
		me, thrown, err = n.localSingleton(env, class)
	})
	if err != nil {
		resp.Err = err.Error()
		return vm.Value{}, false
	}
	if thrown != nil {
		resp.ExClass, resp.ExMsg = vm.ThrownMessage(thrown)
		return vm.Value{}, false
	}
	if me.O == nil {
		resp.Err = fmt.Sprintf("node %s: nil singleton for %s", n.name, class)
		return vm.Value{}, false
	}
	return me, true
}

// invokeOn performs the call on a resolved receiver and fills resp.  The
// caller holds the receiver's invocation gate.
func (n *Node) invokeOn(env *vm.Env, resp *wire.Response, recv vm.Value, req *wire.Request) {
	args := make([]vm.Value, len(req.Args))
	for i, wv := range req.Args {
		av, err := n.unmarshalValue(env, wv)
		if err != nil {
			resp.Err = err.Error()
			return
		}
		args[i] = av
	}
	if recv.O == nil {
		resp.Err = "nil receiver"
		return
	}
	res, thrown, err := env.Call(recv.O.ClassName(), req.Method, recv, args)
	if err != nil {
		resp.Err = err.Error()
		return
	}
	if thrown != nil {
		resp.ExClass, resp.ExMsg = vm.ThrownMessage(thrown)
		return
	}
	mv, err := n.marshalValue(res, "")
	if err != nil {
		resp.Err = err.Error()
		return
	}
	resp.Result = mv
}

func (n *Node) dispatchMigrateIn(req *wire.Request) *wire.Response {
	if !n.result.Substitutable(req.Class) {
		return wire.Errorf(req, "node %s: cannot adopt non-substitutable class %s", n.name, req.Class)
	}
	n.stats.migrationsIn.Add(1)
	resp := &wire.Response{ID: req.ID}
	// Like creation: the adopted object is unshared until its reference
	// is returned, so the rebuild runs ungated.
	n.machine.Exec(func(env *vm.Env) {
		obj, err := env.New(transform.OLocal(req.Class))
		if err != nil {
			resp.Err = err.Error()
			return
		}
		for _, f := range req.Fields {
			fv, err := n.unmarshalValue(env, f.Value)
			if err != nil {
				resp.Err = err.Error()
				return
			}
			obj.Set(f.Name, fv)
		}
		mv, err := n.marshalValue(vm.RefV(obj), "")
		if err != nil {
			resp.Err = err.Error()
			return
		}
		resp.Result = mv
		// Adopt the object's shipped dedup history under its GUID here
		// (marshalValue just exported it): a caller's retry of a call the
		// old home already completed replays its recorded response
		// instead of executing twice.
		if len(req.Dedup) > 0 {
			if g, ok := n.exports.GUIDOf(obj); ok {
				n.dedupTab.Adopt(g, req.Dedup)
			}
		}
	})
	return resp
}

// dispatchMigrateOut serves a holder's request to move one of our
// objects elsewhere: migrate it (morphing our copy into a forwarding
// proxy) and return the new reference.
func (n *Node) dispatchMigrateOut(req *wire.Request) *wire.Response {
	obj, ok := n.exports.Get(req.GUID)
	if !ok {
		return wire.Errorf(req, "node %s: unknown object %s", n.name, req.GUID)
	}
	// Already forwarding?  Then the object moved on; report its current
	// location so the caller can retarget (and retry there if needed).
	// View gives a consistent class+fields snapshot against concurrent
	// morphs.
	if ref, forwarding := proxyRefOf(obj); forwarding {
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KRef, Ref: &ref}}
	}
	if err := n.migrate(vm.RefV(obj), req.Endpoint, traceCtxOf(req)); err != nil {
		return wire.Errorf(req, "%v", err)
	}
	// After Migrate the object is a proxy holding the new location.
	ref, _ := proxyRefOf(obj)
	return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KRef, Ref: &ref}}
}

// proxyRefOf snapshots obj and, when it is a forwarding proxy, returns
// the remote reference it holds.
func proxyRefOf(obj *vm.Object) (wire.RemoteRef, bool) {
	cls, fields := obj.View()
	if !isProxyClass(cls) {
		return wire.RemoteRef{}, false
	}
	base, proto, _, _ := transform.IsProxyClass(cls.Name)
	return wire.RemoteRef{
		GUID:     fields[transform.ProxyFieldGUID].S,
		Endpoint: fields[transform.ProxyFieldEndpoint].S,
		Proto:    proto,
		Target:   base,
	}, true
}

// localSingleton returns (creating and initialising on first use) the
// local statics singleton for class, regardless of this node's own
// policy — a remote caller's policy decided the singleton lives here.
//
// Creation runs program code, so the singleton table tracks it by owner
// execution: the owner re-enters freely once the instance exists
// (initialisation cycles terminate before the clinit completes, as in
// the JVM), other executions block until the creation finishes, and a
// failed creation is withdrawn so the next toucher retries.
func (n *Node) localSingleton(env *vm.Env, class string) (vm.Value, *vm.Thrown, error) {
	if !n.machine.Program().Has(transform.CLocal(class)) {
		return vm.Value{}, nil, fmt.Errorf("node %s: no statics implementation for %s", n.name, class)
	}
	key := "local:" + class
	var entry *singletonEntry
	for {
		n.singMu.Lock()
		e, ok := n.singletons[key]
		if !ok {
			entry = &singletonEntry{local: true, owner: env, ready: make(chan struct{})}
			n.singletons[key] = entry
			n.singMu.Unlock()
			break
		}
		if e.valSet {
			val := e.val
			n.singMu.Unlock()
			return val, nil, nil
		}
		if e.owner == env {
			// Re-entered before the instance exists: the singleton's own
			// accessor depends on itself.  The seed recursed to the depth
			// limit here; fail deterministically instead.
			n.singMu.Unlock()
			return vm.Value{}, nil, fmt.Errorf("node %s: recursive initialisation of %s statics", n.name, class)
		}
		ready := e.ready
		n.singMu.Unlock()
		<-ready // another execution is creating it; wait and re-check
	}

	fail := func() {
		n.singMu.Lock()
		delete(n.singletons, key)
		n.singMu.Unlock()
		close(entry.ready)
	}
	me, thrown, err := env.Call(transform.CLocal(class), transform.SingletonGet, vm.Value{}, nil)
	if thrown != nil || err != nil {
		fail()
		return vm.Value{}, thrown, err
	}
	// Publish (and export) before clinit so initialisation cycles
	// terminate, mirroring JVM class-initialisation semantics; only the
	// owner observes the entry until ready closes.
	n.singMu.Lock()
	entry.val = me
	entry.valSet = true
	n.singMu.Unlock()
	n.exports.Put(guid.ClassGUID(class), me.O)
	if _, thrown, err := env.Call(transform.CFactory(class), transform.ClinitMethod, vm.Value{}, []vm.Value{me}); thrown != nil || err != nil {
		fail()
		return vm.Value{}, thrown, err
	}
	n.singMu.Lock()
	entry.owner = nil
	n.singMu.Unlock()
	close(entry.ready)
	return me, nil, nil
}

// remoteError builds the sys.RemoteException thrown when infrastructure
// fails — the paper's §4 network-failure caveat surfacing in-program.
func remoteError(env *vm.Env, format string, a ...any) *vm.Thrown {
	return env.Throw(stdlib.RemoteExceptionClass, fmt.Sprintf(format, a...))
}
