package node

import (
	"fmt"

	"rafda/internal/guid"
	"rafda/internal/stdlib"
	"rafda/internal/transform"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// dispatch serves one incoming request.  Transports invoke it
// concurrently — the multiplexed RRP server runs one goroutine per
// in-flight request, and the HTTP transports one per connection — so
// everything here must be safe under concurrent invocation: VM work
// happens under the VM lock via WithLock, counters are atomic, and the
// export/policy/singleton tables have their own synchronisation.  Nested
// outgoing proxy calls release the VM lock while blocked, so re-entrant
// call chains between nodes cannot deadlock.
func (n *Node) dispatch(req *wire.Request) *wire.Response {
	n.stats.remoteCallsIn.Add(1)
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KString, Str: n.name}}

	case wire.OpCreate:
		return n.dispatchCreate(req)

	case wire.OpInvoke:
		return n.dispatchInvoke(req)

	case wire.OpInvokeClass:
		return n.dispatchInvokeClass(req)

	case wire.OpMigrateIn:
		return n.dispatchMigrateIn(req)

	case wire.OpMigrateOut:
		return n.dispatchMigrateOut(req)

	default:
		return wire.Errorf(req, "node %s: unsupported op %v", n.name, req.Op)
	}
}

func (n *Node) dispatchCreate(req *wire.Request) *wire.Response {
	if !n.result.Substitutable(req.Class) {
		return wire.Errorf(req, "node %s: class %s is not substitutable", n.name, req.Class)
	}
	n.stats.creates.Add(1)
	resp := &wire.Response{ID: req.ID}
	n.machine.WithLock(func(env *vm.Env) {
		val, thrown, err := env.Construct(transform.OLocal(req.Class), nil)
		if err != nil {
			resp.Err = err.Error()
			return
		}
		if thrown != nil {
			resp.ExClass, resp.ExMsg = vm.ThrownMessage(thrown)
			return
		}
		mv, err := n.marshalValue(val, "")
		if err != nil {
			resp.Err = err.Error()
			return
		}
		resp.Result = mv
	})
	return resp
}

func (n *Node) dispatchInvoke(req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	n.machine.WithLock(func(env *vm.Env) {
		var recv vm.Value
		if class, ok := guid.IsClassGUID(req.GUID); ok {
			me, thrown, err := n.localSingleton(env, class)
			if err != nil {
				resp.Err = err.Error()
				return
			}
			if thrown != nil {
				resp.ExClass, resp.ExMsg = vm.ThrownMessage(thrown)
				return
			}
			recv = me
		} else {
			obj, ok := n.exports.Get(req.GUID)
			if !ok {
				resp.Err = fmt.Sprintf("node %s: unknown object %s", n.name, req.GUID)
				return
			}
			recv = vm.RefV(obj)
		}
		n.invokeOn(env, resp, recv, req)
	})
	return resp
}

func (n *Node) dispatchInvokeClass(req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	n.machine.WithLock(func(env *vm.Env) {
		me, thrown, err := n.localSingleton(env, req.Class)
		if err != nil {
			resp.Err = err.Error()
			return
		}
		if thrown != nil {
			resp.ExClass, resp.ExMsg = vm.ThrownMessage(thrown)
			return
		}
		n.invokeOn(env, resp, me, req)
	})
	return resp
}

// invokeOn performs the call on a resolved receiver and fills resp.
func (n *Node) invokeOn(env *vm.Env, resp *wire.Response, recv vm.Value, req *wire.Request) {
	args := make([]vm.Value, len(req.Args))
	for i, wv := range req.Args {
		av, err := n.unmarshalValue(env, wv)
		if err != nil {
			resp.Err = err.Error()
			return
		}
		args[i] = av
	}
	if recv.O == nil {
		resp.Err = "nil receiver"
		return
	}
	res, thrown, err := env.Call(recv.O.Class.Name, req.Method, recv, args)
	if err != nil {
		resp.Err = err.Error()
		return
	}
	if thrown != nil {
		resp.ExClass, resp.ExMsg = vm.ThrownMessage(thrown)
		return
	}
	mv, err := n.marshalValue(res, "")
	if err != nil {
		resp.Err = err.Error()
		return
	}
	resp.Result = mv
}

func (n *Node) dispatchMigrateIn(req *wire.Request) *wire.Response {
	if !n.result.Substitutable(req.Class) {
		return wire.Errorf(req, "node %s: cannot adopt non-substitutable class %s", n.name, req.Class)
	}
	n.stats.migrationsIn.Add(1)
	resp := &wire.Response{ID: req.ID}
	n.machine.WithLock(func(env *vm.Env) {
		obj, err := env.New(transform.OLocal(req.Class))
		if err != nil {
			resp.Err = err.Error()
			return
		}
		for _, f := range req.Fields {
			fv, err := n.unmarshalValue(env, f.Value)
			if err != nil {
				resp.Err = err.Error()
				return
			}
			obj.Set(f.Name, fv)
		}
		mv, err := n.marshalValue(vm.RefV(obj), "")
		if err != nil {
			resp.Err = err.Error()
			return
		}
		resp.Result = mv
	})
	return resp
}

// dispatchMigrateOut serves a holder's request to move one of our
// objects elsewhere: migrate it (morphing our copy into a forwarding
// proxy) and return the new reference.
func (n *Node) dispatchMigrateOut(req *wire.Request) *wire.Response {
	obj, ok := n.exports.Get(req.GUID)
	if !ok {
		return wire.Errorf(req, "node %s: unknown object %s", n.name, req.GUID)
	}
	// Already forwarding?  Then the object moved on; report its current
	// location so the caller can retarget (and retry there if needed).
	// The proxy check reads obj.Class, which a concurrent migration may
	// morph, so it happens under the VM lock along with the field reads.
	var forwarding bool
	var ref wire.RemoteRef
	n.machine.WithLock(func(*vm.Env) {
		if !isProxyObject(obj) {
			return
		}
		forwarding = true
		base, proto, _, _ := transform.IsProxyClass(obj.Class.Name)
		ref = wire.RemoteRef{
			GUID:     obj.Get(transform.ProxyFieldGUID).S,
			Endpoint: obj.Get(transform.ProxyFieldEndpoint).S,
			Proto:    proto,
			Target:   base,
		}
	})
	if forwarding {
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KRef, Ref: &ref}}
	}
	if err := n.Migrate(vm.RefV(obj), req.Endpoint); err != nil {
		return wire.Errorf(req, "%v", err)
	}
	// After Migrate the object is a proxy holding the new location.
	n.machine.WithLock(func(*vm.Env) {
		base, proto, _, _ := transform.IsProxyClass(obj.Class.Name)
		ref = wire.RemoteRef{
			GUID:     obj.Get(transform.ProxyFieldGUID).S,
			Endpoint: obj.Get(transform.ProxyFieldEndpoint).S,
			Proto:    proto,
			Target:   base,
		}
	})
	return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KRef, Ref: &ref}}
}

// localSingleton returns (creating and initialising on first use) the
// local statics singleton for class, regardless of this node's own
// policy — a remote caller's policy decided the singleton lives here.
// Caller must hold the VM lock (env).
func (n *Node) localSingleton(env *vm.Env, class string) (vm.Value, *vm.Thrown, error) {
	if !n.machine.Program().Has(transform.CLocal(class)) {
		return vm.Value{}, nil, fmt.Errorf("node %s: no statics implementation for %s", n.name, class)
	}
	key := "local:" + class
	if e, ok := n.singletons[key]; ok {
		return e.val, nil, nil
	}
	me, thrown, err := env.Call(transform.CLocal(class), transform.SingletonGet, vm.Value{}, nil)
	if thrown != nil || err != nil {
		return vm.Value{}, thrown, err
	}
	// Register (and export) before clinit so initialisation cycles
	// terminate, mirroring JVM class-initialisation semantics.
	n.singletons[key] = singletonEntry{val: me, local: true}
	n.exports.Put(guid.ClassGUID(class), me.O)
	if _, thrown, err := env.Call(transform.CFactory(class), transform.ClinitMethod, vm.Value{}, []vm.Value{me}); thrown != nil || err != nil {
		delete(n.singletons, key)
		return vm.Value{}, thrown, err
	}
	return me, nil, nil
}

// remoteError builds the sys.RemoteException thrown when infrastructure
// fails — the paper's §4 network-failure caveat surfacing in-program.
func remoteError(env *vm.Env, format string, a ...any) *vm.Thrown {
	return env.Throw(stdlib.RemoteExceptionClass, fmt.Sprintf(format, a...))
}
