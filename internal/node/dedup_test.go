package node

import (
	"sync"
	"testing"

	"rafda/internal/policy"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// dedupSource is the shared program for the exactly-once tests: a
// counter whose bump is observably non-idempotent.
const dedupSource = `
class Cell {
    int n;
    Cell(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
    int slow(int us) { n = n + 1; sys.Clock.sleepMicros(us); return n; }
    int peek() { return n; }
}
class Mk {
    static Cell make() { return new Cell(0); }
}
class Main { static void main() {} }`

func dedupToken(caller string, seq uint64) *wire.CallToken {
	return &wire.CallToken{Caller: caller, Seq: seq}
}

// bumpReq builds a tokened OpInvoke of Cell.bump against guid.
func bumpReq(id uint64, guid, method string, tok *wire.CallToken) *wire.Request {
	return &wire.Request{ID: id, Op: wire.OpInvoke, GUID: guid, Method: method, Token: tok}
}

// TestDuplicateInvokeSuppressed drives the dispatcher directly with
// duplicate tokened deliveries: the second delivery must replay the
// recorded response without re-executing, and a delivery below the
// piggybacked ack watermark must be rejected, not executed.
func TestDuplicateInvokeSuppressed(t *testing.T) {
	res := transformSource(t, dedupSource)
	n, err := New(Config{Name: "srv", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	g := n.exports.Ensure(ref.O)

	first := n.dispatch(bumpReq(1, g, "bump", dedupToken("c!1", 1)))
	if first.Err != "" || first.Result.Int != 1 {
		t.Fatalf("first delivery: %+v", first)
	}
	// Duplicate delivery (a transport retry): replayed, not re-executed.
	dup := n.dispatch(bumpReq(2, g, "bump", dedupToken("c!1", 1)))
	if dup.Err != "" || dup.Result.Int != 1 {
		t.Fatalf("duplicate replay: %+v", dup)
	}
	if dup.ID != 2 {
		t.Fatalf("replay kept the original wire id: %+v", dup)
	}
	if v, _ := n.CallOn(ref, "peek"); v.I != 1 {
		t.Fatalf("duplicate re-executed: counter %d", v.I)
	}
	// Next call acks seq 1; a later duplicate of seq 1 is stale.
	tok2 := dedupToken("c!1", 2)
	tok2.Ack = 1
	if resp := n.dispatch(bumpReq(3, g, "bump", tok2)); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	stale := n.dispatch(bumpReq(4, g, "bump", dedupToken("c!1", 1)))
	if stale.Err == "" {
		t.Fatalf("retired duplicate accepted: %+v", stale)
	}
	if v, _ := n.CallOn(ref, "peek"); v.I != 2 {
		t.Fatalf("stale duplicate executed: counter %d", v.I)
	}
	s := n.DedupSnapshot()
	if s.ReplayHits != 1 || s.StaleRejected != 1 {
		t.Fatalf("dedup counters: %+v", s)
	}
}

// TestDuplicateCreateReturnsOriginalGUID pins the orphan fix the
// OpCreate retry exemption used to paper over: a duplicate tokened
// create replays the original response — same GUID — instead of
// constructing a second instance stranded in the export table.
func TestDuplicateCreateReturnsOriginalGUID(t *testing.T) {
	res := transformSource(t, dedupSource)
	n, err := New(Config{Name: "srv", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	if _, err := n.Serve("rrp", ""); err != nil {
		t.Fatal(err)
	}

	mk := func(id uint64) *wire.Response {
		return n.dispatch(&wire.Request{ID: id, Op: wire.OpCreate, Class: "Cell",
			Token: dedupToken("c!1", 1)})
	}
	first := mk(1)
	if first.Err != "" || first.Result.Kind != wire.KRef {
		t.Fatalf("create: %+v", first)
	}
	exportsAfterFirst := n.exports.Len()
	dup := mk(2)
	if dup.Err != "" || dup.Result.Kind != wire.KRef {
		t.Fatalf("duplicate create: %+v", dup)
	}
	if dup.Result.Ref.GUID != first.Result.Ref.GUID {
		t.Fatalf("duplicate create made a second instance: %s vs %s",
			dup.Result.Ref.GUID, first.Result.Ref.GUID)
	}
	if n.exports.Len() != exportsAfterFirst {
		t.Fatalf("duplicate create stranded an orphan export (%d -> %d)",
			exportsAfterFirst, n.exports.Len())
	}
}

// TestConcurrentDuplicateParks delivers the same tokened call from many
// goroutines at once: exactly one executes, the rest park behind it and
// replay its response.  Run under -race.
func TestConcurrentDuplicateParks(t *testing.T) {
	res := transformSource(t, dedupSource)
	n, err := New(Config{Name: "srv", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	g := n.exports.Ensure(ref.O)

	const dups = 8
	results := make(chan *wire.Response, dups)
	var wg sync.WaitGroup
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// slow(20000) holds the first attempt in flight long enough
			// for the rest to arrive while it executes.
			req := &wire.Request{ID: uint64(i), Op: wire.OpInvoke, GUID: g, Method: "slow",
				Args:  []wire.Value{{Kind: wire.KInt, Int: 20000}},
				Token: dedupToken("c!1", 1)}
			results <- n.dispatch(req)
		}(i)
	}
	wg.Wait()
	close(results)
	for resp := range results {
		if resp.Err != "" || resp.Result.Int != 1 {
			t.Fatalf("concurrent duplicate diverged: %+v", resp)
		}
	}
	if v, _ := n.CallOn(ref, "peek"); v.I != 1 {
		t.Fatalf("parked duplicates re-executed: counter %d", v.I)
	}
	if s := n.DedupSnapshot(); s.Parked+s.ReplayHits != dups-1 {
		t.Fatalf("suppression counters: %+v", s)
	}
}

// TestDedupWindowTravelsWithMigration pins the tentpole's migration
// leg: the object's completed dedup entries ship inside the snapshot,
// so a post-migration duplicate of a call the old home already
// completed replays at the new home instead of re-executing.
func TestDedupWindowTravelsWithMigration(t *testing.T) {
	res := transformSource(t, dedupSource)
	a, b, endpoint := twoNodes(t, res, "rrp")

	ref, err := a.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	oldGUID := a.exports.Ensure(ref.O)

	// Serve one tokened call at the old home.
	first := a.dispatch(bumpReq(1, oldGUID, "bump", dedupToken("c!9", 1)))
	if first.Err != "" || first.Result.Int != 1 {
		t.Fatalf("pre-migration call: %+v", first)
	}

	// Migrate a -> b; the window slice must travel.
	if err := a.Migrate(ref, endpoint); err != nil {
		t.Fatal(err)
	}
	newRef, forwarding := proxyRefOf(ref.O)
	if !forwarding {
		t.Fatal("object did not morph into a forwarding proxy")
	}
	if got := b.DedupSnapshot().Adopted; got != 1 {
		t.Fatalf("adopted %d shipped entries, want 1", got)
	}

	// The duplicate arrives at the new home (as a forwarded retry
	// would, reusing its token): replayed, not re-executed.
	dup := b.dispatch(bumpReq(7, newRef.GUID, "bump", dedupToken("c!9", 1)))
	if dup.Err != "" || dup.Result.Int != 1 {
		t.Fatalf("post-migration duplicate: %+v", dup)
	}
	peek := b.dispatch(bumpReq(8, newRef.GUID, "peek", dedupToken("c!9", 2)))
	if peek.Err != "" || peek.Result.Int != 1 {
		t.Fatalf("counter after replay: %+v", peek)
	}
	// And the old home no longer holds the entry: its window shipped.
	if s := a.DedupSnapshot(); s.Entries != 0 {
		t.Fatalf("old home kept %d shipped entries", s.Entries)
	}
}

// TestForwardedRetryReusesToken exercises the full wire path of the
// migration leg: a client proxy keeps calling through the old home
// after the object moved, and the forwarding hop must reuse the inbound
// token — the new home sees one logical call, not a fresh one.
func TestForwardedRetryReusesToken(t *testing.T) {
	res := transformSource(t, dedupSource)
	client, oldHome, _ := twoNodes(t, res, "rrp")
	newHome, err := New(Config{Name: "third", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { newHome.Close() })
	thirdEP, err := newHome.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}

	// Build the object at the old home, hand the client a proxy.
	ref, err := oldHome.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := oldHome.marshalValue(ref, "rrp")
	if err != nil {
		t.Fatal(err)
	}
	var clientRef vm.Value
	client.machine.Exec(func(env *vm.Env) {
		clientRef, err = client.unmarshalValue(env, mv)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.CallOn(clientRef, "bump"); err != nil {
		t.Fatal(err)
	}
	if err := oldHome.Migrate(ref, thirdEP); err != nil {
		t.Fatal(err)
	}
	// The client's proxy still points at the old home: this call rides
	// client -> oldHome (forwarding proxy) -> newHome, and the forwarded
	// leg must carry the client's token, not a fresh one from oldHome.
	v, err := client.CallOn(clientRef, "bump")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 2 {
		t.Fatalf("forwarded bump returned %d want 2", v.I)
	}
	// The new home's window is keyed by the *client's* caller
	// incarnation: reused tokens mean no window for the old home's
	// issuer beyond the migration ops it sent directly.
	snap := newHome.DedupSnapshot()
	if snap.Windows == 0 {
		t.Fatal("new home recorded no caller windows")
	}
	if v, _ := client.CallOn(clientRef, "peek"); v.I != 2 {
		t.Fatalf("exactly-once violated across forwarding: counter %d", v.I)
	}
}

// TestLegacyPeerInteropWithoutTokens pins the capability flag: an
// untokened client (legacy peer) works against a tokened server — its
// calls carry no token, bypass the dedup window entirely, and keep the
// historical semantics — while the tokened default stamps every call.
func TestLegacyPeerInteropWithoutTokens(t *testing.T) {
	res := transformSource(t, dedupSource)
	server, err := New(Config{Name: "server", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	endpoint, err := server.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}

	mkClient := func(name string, untokened bool) *Node {
		t.Helper()
		c, err := New(Config{Name: name, Result: transformSource(t, dedupSource), UntokenedWire: untokened})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		pl, err := policy.RemoteAt(endpoint)
		if err != nil {
			t.Fatal(err)
		}
		c.Policy().SetClass("Cell", pl)
		return c
	}

	legacy := mkClient("legacy", true)
	ref, err := legacy.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		v, err := legacy.CallOn(ref, "bump")
		if err != nil {
			t.Fatal(err)
		}
		if v.I != i {
			t.Fatalf("legacy bump %d returned %d", i, v.I)
		}
	}
	if s := server.DedupSnapshot(); s.Windows != 0 {
		t.Fatalf("legacy client opened %d dedup windows, want 0", s.Windows)
	}

	modern := mkClient("modern", false)
	ref2, err := modern.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := modern.CallOn(ref2, "bump"); err != nil {
		t.Fatal(err)
	}
	if s := server.DedupSnapshot(); s.Windows == 0 {
		t.Fatal("tokened client opened no dedup window")
	}
}

// TestIssuerAckRetiresServerEntries drives a pipelined call sequence
// over the real wire and checks the piggybacked watermark actually
// retires server-side entries (bounded memory in steady state).
func TestIssuerAckRetiresServerEntries(t *testing.T) {
	res := transformSource(t, dedupSource)
	client, server, endpoint := twoNodes(t, res, "rrp")
	pl, err := policy.RemoteAt(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	client.Policy().SetClass("Cell", pl)
	ref, err := client.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	const calls = 50
	for i := 0; i < calls; i++ {
		if _, err := client.CallOn(ref, "bump"); err != nil {
			t.Fatal(err)
		}
	}
	s := server.DedupSnapshot()
	// Sequential calls ack as they go: all but the last few entries
	// must have retired via the watermark, far below the window cap.
	if s.Entries > 3 {
		t.Fatalf("watermark retirement stalled: %d live entries after %d sequential calls (%+v)",
			s.Entries, calls, s)
	}
	if s.Retired == 0 {
		t.Fatalf("no entries retired: %+v", s)
	}
}
