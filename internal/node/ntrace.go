package node

import (
	"fmt"
	"time"

	"rafda/internal/trace"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

// Trace emission glue: where the node runtime meets the flight
// recorder.  Every helper here is nil-safe (a NoTrace node pays one
// nil check per site) and lock-free — emission may run inside object
// gates, under the replication fan-out mutex, or on transport
// goroutines (docs/CONCURRENCY.md §14).

// traceCtxOf lifts a request's wire-level span context into the
// recorder's form; zero when the request rides untraced.
func traceCtxOf(req *wire.Request) trace.Ctx {
	return trace.Ctx{Trace: req.Trace.Trace, Span: req.Trace.Span}
}

// wireCtx renders a span's context for the request that continues it.
func wireCtx(sp *trace.Span) wire.TraceContext {
	return wire.TraceContext{Trace: sp.Trace, Span: sp.ID}
}

// envCtx reads the span context the current execution was started
// under (deposited by servedInvoke); zero for host-driven executions,
// which root a fresh trace at their first remote send.
func envCtx(env *vm.Env) trace.Ctx {
	traceID, spanID := env.TraceCtx()
	return trace.Ctx{Trace: traceID, Span: spanID}
}

// startSpan builds (but does not emit) a span continuing ctx — rooting
// a new trace when ctx is zero — with Start stamped now.  Returns nil
// when tracing is disabled, and every later use is nil-safe.
func (n *Node) startSpan(ctx trace.Ctx, kind trace.Kind, name, target string) *trace.Span {
	tr := n.tracer
	if tr == nil {
		return nil
	}
	if ctx.Trace == 0 {
		ctx.Trace = tr.NewID()
	}
	sp := tr.NewSpan()
	sp.Trace = ctx.Trace
	sp.ID = tr.NewID()
	sp.Parent = ctx.Span
	sp.Kind = kind
	sp.Name = name
	sp.Target = target
	sp.Start = time.Now().UnixNano()
	return sp
}

// finishSpan stamps the span's duration and error and emits it.  The
// span must not be touched afterwards.
func (n *Node) finishSpan(sp *trace.Span, errMsg string) {
	if sp == nil {
		return
	}
	sp.Dur = time.Now().UnixNano() - sp.Start
	sp.Err = errMsg
	n.tracer.Emit(sp)
}

// emitDedup records a duplicate-delivery verdict (replay, park or
// stale) as a zero-duration event span on the duplicate's own trace,
// so a call tree shows which attempt executed and which were absorbed
// by the dedup window.
func (n *Node) emitDedup(req *wire.Request, verdict string) {
	tr := n.tracer
	if tr == nil {
		return
	}
	sp := n.startSpan(traceCtxOf(req), trace.KindDedup, verdict, dedupTarget(req))
	sp.Note = fmt.Sprintf("%s/%d attempt %d", req.Token.Caller, req.Token.Seq, req.Token.Attempt)
	tr.Emit(sp)
}

// emitFailover is the transport pool's FailoverFunc: each failed
// delivery attempt in a shard-failover loop becomes an event span on
// the trace of the request that was being delivered.
func (n *Node) emitFailover(endpoint string, shard, attempt int, tctx wire.TraceContext, err error) {
	tr := n.tracer
	if tr == nil {
		return
	}
	sp := n.startSpan(trace.Ctx{Trace: tctx.Trace, Span: tctx.Span}, trace.KindFailover, "failover",
		fmt.Sprintf("%s#%d", endpoint, shard))
	sp.Note = fmt.Sprintf("attempt %d", attempt)
	sp.Err = err.Error()
	tr.Emit(sp)
}

// RecordAdaptDecision surfaces one adaptive-engine decision as a trace
// event: decisions are root spans of their own traces (nothing causes
// them but the engine's own evaluation tick), carrying the rule and
// outcome, so a flight-recorder dump interleaves placement decisions
// with the call traffic that triggered them.
func (n *Node) RecordAdaptDecision(rule, action, guidStr, class, endpoint, reason string, executed, delegated bool, errMsg string) {
	tr := n.tracer
	if tr == nil {
		return
	}
	sp := n.startSpan(trace.Ctx{}, trace.KindAdapt, action, guidStr)
	outcome := "skipped"
	switch {
	case executed:
		outcome = "executed"
	case delegated:
		outcome = "delegated"
	}
	sp.Note = fmt.Sprintf("rule=%s class=%s to=%s %s: %s", rule, class, endpoint, outcome, reason)
	sp.Err = errMsg
	tr.Emit(sp)
}
