package node

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rafda/internal/trace"
	"rafda/internal/wire"
)

// TestDeadlineGateQueueExpiry pins the dispatch-side leg of the
// deadline chain: a deadlined call whose budget is consumed by waiting
// in the target object's gate queue is rejected before its body runs —
// the state is untouched, the expiry is counted, and the error names
// the gate queue.
func TestDeadlineGateQueueExpiry(t *testing.T) {
	res := transformSource(t, dedupSource)
	n, err := New(Config{Name: "srv", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	g := n.exports.Ensure(ref.O)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Holds the gate ~60ms (and bumps n to 1).
		resp := n.dispatch(&wire.Request{ID: 1, Op: wire.OpInvoke, GUID: g,
			Method: "slow", Args: []wire.Value{{Kind: wire.KInt, Int: 60_000}}})
		if resp.Err != "" {
			t.Errorf("slow call: %v", resp.Err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let slow() take the gate

	doomed := n.dispatch(&wire.Request{ID: 2, Op: wire.OpInvoke, GUID: g,
		Method: "bump", DeadlineUs: 5000})
	wg.Wait()
	if !strings.Contains(doomed.Err, "deadline expired in gate queue") {
		t.Fatalf("want gate-queue expiry, got %+v", doomed)
	}
	if got := n.Overload().DeadlineExpiries.Load(); got != 1 {
		t.Fatalf("deadline_expiries = %d, want 1", got)
	}
	peek := n.dispatch(&wire.Request{ID: 3, Op: wire.OpInvoke, GUID: g, Method: "peek"})
	if peek.Err != "" || peek.Result.Int != 1 {
		t.Fatalf("expired bump mutated state: %+v", peek)
	}
}

// TestIntrospectConcurrentWithRingWrap hammers a node with invocations
// — wrapping a deliberately tiny span ring and mutating the keyed
// per-op/per-tenant histograms — while concurrently taking metrics and
// spans snapshots.  Every snapshot must be well-formed JSON and the
// monotonic counters (spans emitted, calls served) must never run
// backwards: the lock-free planes may be mid-mutation but a snapshot is
// never torn.  Run under -race in CI.
func TestIntrospectConcurrentWithRingWrap(t *testing.T) {
	res := transformSource(t, dedupSource)
	n, err := New(Config{Name: "srv", Result: res, TraceSpans: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ref, err := n.InvokeStatic("Mk", "make")
	if err != nil {
		t.Fatal(err)
	}
	g := n.exports.Ensure(ref.O)

	const writers = 4
	const callsEach = 400 // writers*callsEach >> ring capacity: guaranteed wrap
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				method := "peek"
				if i%8 == 0 {
					method = "bump"
				}
				resp := n.dispatch(&wire.Request{ID: uint64(w*callsEach + i),
					Op: wire.OpInvoke, GUID: g, Method: method,
					Caller: fmt.Sprintf("tenant-%d", w)})
				if resp.Err != "" {
					t.Errorf("call: %v", resp.Err)
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	go func() { wg.Wait(); close(stop) }()
	var prevEmitted, prevServed uint64
	snapshots := 0
	for done := false; !done; {
		select {
		case <-stop:
			done = true // one final snapshot below
		default:
		}
		out, err := n.Introspect("metrics", "")
		if err != nil {
			t.Fatalf("introspect metrics: %v", err)
		}
		var in Introspection
		if err := json.Unmarshal([]byte(out), &in); err != nil {
			t.Fatalf("torn metrics snapshot: %v\n%s", err, out)
		}
		if in.Trace == nil {
			t.Fatal("trace digest missing")
		}
		if in.Trace.Emitted < prevEmitted {
			t.Fatalf("emitted ran backwards: %d -> %d", prevEmitted, in.Trace.Emitted)
		}
		if in.Activity.RemoteCallsIn < prevServed {
			t.Fatalf("calls-in ran backwards: %d -> %d", prevServed, in.Activity.RemoteCallsIn)
		}
		prevEmitted, prevServed = in.Trace.Emitted, in.Activity.RemoteCallsIn
		if in.Trace.Spans > in.Trace.Capacity {
			t.Fatalf("ring occupancy %d over capacity %d", in.Trace.Spans, in.Trace.Capacity)
		}
		spansOut, err := n.Introspect("spans", "")
		if err != nil {
			t.Fatalf("introspect spans: %v", err)
		}
		var spans []trace.Span
		if err := json.Unmarshal([]byte(spansOut), &spans); err != nil {
			t.Fatalf("torn spans snapshot: %v", err)
		}
		snapshots++
	}
	if snapshots < 2 {
		t.Fatalf("only %d snapshots raced the writers", snapshots)
	}

	// Final state: the ring wrapped, and the keyed views saw every op
	// and tenant.
	final := n.introspection()
	if final.Trace.Emitted <= uint64(final.Trace.Capacity) {
		t.Fatalf("ring never wrapped: emitted %d, cap %d", final.Trace.Emitted, final.Trace.Capacity)
	}
	ops := map[string]uint64{}
	for _, row := range final.Trace.Ops {
		ops[row.Key] = row.Count
	}
	if ops["peek"] == 0 || ops["bump"] == 0 {
		t.Fatalf("per-op rows missing: %+v", final.Trace.Ops)
	}
	if len(final.Trace.Tenants) != writers {
		t.Fatalf("tenant rows = %d, want %d: %+v", len(final.Trace.Tenants), writers, final.Trace.Tenants)
	}
	var tenantTotal uint64
	for _, row := range final.Trace.Tenants {
		tenantTotal += row.Count
	}
	if tenantTotal != writers*callsEach {
		t.Fatalf("tenant counts sum to %d, want %d", tenantTotal, writers*callsEach)
	}
}
