// Package adapt is the adaptive placement engine: the closed loop the
// paper's §4 leaves as future work ("the distributed program can adapt
// to its environment by dynamically altering its distribution
// boundaries").  It periodically reads the telemetry plane
// (internal/telemetry), evaluates pluggable placement rules over the
// last window's activity, and executes the surviving decisions through
// the node's existing migration and re-policy mechanisms — so the
// boundaries redraw themselves, with no manual Migrate or PlaceClass
// call.
//
// The engine is deliberately conservative.  A decision executes only
// after it survives three thrash guards:
//
//   - hysteresis: a rule must propose the same action for Confirm
//     consecutive windows before it runs;
//   - a per-target migration budget: at most Budget executed migrations
//     per object (and flips per class) within the last BudgetWindows
//     windows — the loop can move an object, but never ping-pong it;
//   - versioned re-policy: class flips apply through
//     policy.Table.SetClassIf against the version read at window start,
//     so the engine never overwrites a concurrent operator re-policy.
//
// The engine runs above the node's lock hierarchy: it holds no lock
// while reading counters (snapshots are atomic loads) and executes
// decisions through the same public paths a human operator would use,
// which acquire the object gate / policy lock themselves
// (docs/ADAPTIVE.md, docs/CONCURRENCY.md).
package adapt

import (
	"fmt"
	"sync"
	"time"

	"rafda/internal/telemetry"
	"rafda/internal/vm"
)

// DecisionKind enumerates the actions the engine can take.
type DecisionKind uint8

// Decision kinds.
const (
	// KindMigrate moves one live object to the endpoint it has affinity
	// with.
	KindMigrate DecisionKind = iota + 1
	// KindPlaceClass re-points the policy table entry for a class, so
	// future creations and discoveries land at the new placement.
	KindPlaceClass
	// KindReplicate installs read replicas of one read-mostly object at
	// its hottest caller endpoints; this node stays the lease-holding
	// primary and keeps serialising writes (docs/REPLICATION.md).
	KindReplicate
)

func (k DecisionKind) String() string {
	switch k {
	case KindMigrate:
		return "migrate"
	case KindPlaceClass:
		return "place-class"
	case KindReplicate:
		return "replicate"
	default:
		return fmt.Sprintf("DecisionKind(%d)", uint8(k))
	}
}

// Proposal is one action a rule wants taken this window.
type Proposal struct {
	Kind     DecisionKind
	Obj      *vm.Object // migration target handle (KindMigrate)
	GUID     string     // object identity (KindMigrate)
	Class    string
	Endpoint string // destination; "" means local (KindPlaceClass only)
	// Endpoints lists the replica target endpoints of a KindReplicate
	// proposal, sorted.  Endpoint carries their canonical join so the
	// hysteresis streak restarts when the target set changes.
	Endpoints []string
	Reason    string
	// Priority is the proposal's evidence strength (typically the
	// dominant caller's window call count).  When the node is in a
	// cluster, confirmed migrations are delegated as placement intents
	// and Priority is what conflicting intents reconcile by.
	Priority int64
	// Rule is filled in by the engine with the proposing rule's name.
	Rule string
}

// key identifies a proposal for hysteresis and budget accounting.
func (p Proposal) key() string {
	switch p.Kind {
	case KindMigrate:
		return "obj:" + p.GUID
	case KindReplicate:
		return "repl:" + p.GUID
	default:
		return "class:" + p.Class
	}
}

// Decision is one engine outcome: a proposal that survived hysteresis,
// recorded whether or not it executed.
type Decision struct {
	Seq      int
	At       time.Time
	Window   int // evaluation tick the decision was made in
	Rule     string
	Kind     DecisionKind
	GUID     string
	Class    string
	Endpoint string
	Reason   string
	// Executed reports the action ran (and, for migrations, succeeded).
	// A false value with empty Err means a thrash guard suppressed it.
	Executed bool
	// Delegated reports the decision was handed to the cluster
	// coordination plane as a placement intent instead of executed
	// directly: the cluster reconciles conflicting intents and the
	// object's home executes the winner (docs/CLUSTER.md).
	Delegated bool
	Err       string
}

// ObjWindow is one object's activity during the evaluated window
// (deltas, not cumulative counts).
type ObjWindow struct {
	GUID   string
	Class  string
	Obj    *vm.Object
	Local  uint64
	Remote uint64
	Anon   uint64
	// Reads / Writes split the window's invocations by the verifier's
	// method-effect classification (unclassified calls count as writes) —
	// the replication rule's eligibility signal.
	Reads   uint64
	Writes  uint64
	Callers map[string]uint64
	// EWMALatencyNs is the smoothed inbound service latency (cumulative
	// EWMA, not a delta).
	EWMALatencyNs float64
	// StateBytes estimates the object's shipped-state size — the cost
	// side of a cost-based migration decision (0 when the node supplies
	// no estimator).
	StateBytes int64
	// Migratable reports whether the object is currently a live local
	// transformed instance (statics singletons and already-morphed
	// proxies are not).  Rules must not propose migrating
	// non-migratable objects — the engine could only suppress the
	// decision, forever, as log noise.
	Migratable bool
	// Replicated reports whether the object already has a live replica
	// set with this node as primary; the replication rule proposes only
	// for unreplicated objects (growing or shrinking an existing set is
	// the cluster plane's lease machinery's job, not the rule's).
	Replicated bool
}

// Calls returns the window's total inbound invocations.
func (w ObjWindow) Calls() uint64 { return w.Local + w.Remote + w.Anon }

// ClassWindow is one class's activity during the evaluated window.
type ClassWindow struct {
	Class         string
	LocalCreates  uint64
	RemoteCreates map[string]uint64
	ServedCreates map[string]uint64
	ServedAnon    uint64
	OutCalls      map[string]uint64
	// PlacedAt is the class's current policy placement endpoint (""
	// when placed locally), read at window start.
	PlacedAt string
}

// View is everything a rule sees for one evaluation.
type View struct {
	Objects []ObjWindow
	Classes []ClassWindow
	// Self reports the endpoints this node serves (rules must not
	// propose moving anything to ourselves-as-remote).
	Self map[string]bool
	// PeerRTTNs is the smoothed round-trip time to each known peer
	// endpoint, in nanoseconds (cumulative EWMA fed by proxy calls and
	// gossip pings) — the latency input of cost-based rules.
	PeerRTTNs map[string]float64
}

// Rule proposes placement actions from one window of telemetry.  Rules
// are pure: hysteresis, budget and execution belong to the engine.
type Rule interface {
	Name() string
	Evaluate(v *View) []Proposal
}

// Actions are the node capabilities the engine drives.  They execute
// through the same paths an operator uses: MigrateObject acquires the
// object's gate for the snapshot→ship→morph sequence, PlaceClass goes
// through the versioned policy table.
type Actions struct {
	// MigrateObject moves obj to endpoint.
	MigrateObject func(obj *vm.Object, endpoint string) error
	// PlaceClass re-points class ("" endpoint = local) iff the policy
	// table version still equals ifVersion.
	PlaceClass func(class, endpoint string, ifVersion uint64) error
	// PolicyVersion returns the policy table version.
	PolicyVersion func() uint64
	// ClassPlacement returns the endpoint class is currently placed at
	// ("" for local).
	ClassPlacement func(class string) string
	// IsLocalObject reports whether obj is currently a live local
	// transformed instance (not a proxy, not a statics singleton) — the
	// only things migration can move.
	IsLocalObject func(obj *vm.Object) bool
	// SelfEndpoints returns the endpoints this node serves.
	SelfEndpoints func() []string
	// StateBytes estimates obj's shipped-state size (optional; enables
	// cost-based rules).
	StateBytes func(obj *vm.Object) int64
	// PeerRTTs returns the RTT EWMA per peer endpoint in nanoseconds
	// (optional; enables cost-based rules).
	PeerRTTs func() map[string]float64
	// ReplicateObject installs read replicas of obj at the given
	// endpoints, leaving this node as the lease-holding primary.  Unlike
	// migration, replication is not delegated through the intent plane:
	// only the primary can install replicas of its own object, so there
	// is no cross-node conflict to reconcile.
	ReplicateObject func(obj *vm.Object, endpoints []string) error
	// IsReplicated reports whether obj already belongs to a replica set
	// with this node as primary (optional; nil reports every object
	// unreplicated).
	IsReplicated func(obj *vm.Object) bool
	// SubmitIntent, when set, delegates a confirmed migration to the
	// cluster coordination plane instead of executing it here: the
	// cluster reconciles conflicting intents cluster-wide and the
	// object's home executes the winner.  It returns whether the intent
	// was accepted (false when no cluster is attached — the engine then
	// executes directly — or with a reason when the cluster refused it).
	SubmitIntent func(p Proposal) (accepted bool, reason string)
}

// Config tunes the engine.  Zero fields take the defaults.
type Config struct {
	// Window is the sampling and evaluation period.
	Window time.Duration
	// Threshold is the dominant-endpoint share (over a window's calls)
	// a rule needs before proposing, in (0,1].
	Threshold float64
	// MinCalls is the minimum window activity (calls, or creates for
	// class rules) below which no proposal is made.
	MinCalls uint64
	// Confirm is how many consecutive windows a proposal must recur
	// before it executes.
	Confirm int
	// Budget caps executed migrations per object (and flips per class)
	// within the trailing BudgetWindows windows.
	Budget int
	// BudgetWindows is the budget horizon, in windows.
	BudgetWindows int
	// MaxWriteShare is the write fraction (writes over classified calls)
	// above which an object no longer counts as read-mostly and the
	// replication rule abstains (0 = DefaultMaxWriteShare).
	MaxWriteShare float64
	// ReplicaFanout caps how many caller endpoints a replication
	// proposal targets — the rule's top-k (0 = DefaultReplicaFanout).
	ReplicaFanout int
	// CostBased swaps the count-based object affinity rule for the
	// cost-based one: migrate only when the traffic saved (remote calls
	// × peer RTT EWMA) outweighs the shipping cost (estimated state
	// bytes × NsPerByte plus a fixed per-migration overhead).
	CostBased bool
	// NsPerByte converts shipped-state bytes into time for the
	// cost-based comparison (0 = DefaultNsPerByte, i.e. ~100 MB/s).
	NsPerByte float64
	// Rules overrides the rule set (nil = DefaultRules()).
	Rules []Rule
	// OnDecision, when set, observes every decision as it is logged.
	OnDecision func(Decision)
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Defaults.
const (
	DefaultWindow        = 250 * time.Millisecond
	DefaultThreshold     = 0.6
	DefaultMinCalls      = 16
	DefaultConfirm       = 2
	DefaultBudget        = 2
	DefaultBudgetWindows = 64
	// DefaultNsPerByte prices shipped state at ~100 MB/s — deliberately
	// pessimistic, so borderline bulky objects stay put.
	DefaultNsPerByte = 10.0
	// DefaultMaxWriteShare admits at most one classified write per ten
	// classified calls before replication stops paying: every write fans
	// out to all replicas synchronously, so write-heavy objects lose.
	DefaultMaxWriteShare = 0.1
	// DefaultReplicaFanout replicates to at most the top two caller
	// endpoints — enough for the three-node read-scaling experiments
	// without inflating every write's fan-out.
	DefaultReplicaFanout = 2
)

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		c.Threshold = DefaultThreshold
	}
	if c.MinCalls == 0 {
		c.MinCalls = DefaultMinCalls
	}
	if c.Confirm <= 0 {
		c.Confirm = DefaultConfirm
	}
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	if c.BudgetWindows <= 0 {
		c.BudgetWindows = DefaultBudgetWindows
	}
	if c.NsPerByte <= 0 {
		c.NsPerByte = DefaultNsPerByte
	}
	if c.MaxWriteShare <= 0 || c.MaxWriteShare > 1 {
		c.MaxWriteShare = DefaultMaxWriteShare
	}
	if c.ReplicaFanout <= 0 {
		c.ReplicaFanout = DefaultReplicaFanout
	}
	if c.Rules == nil {
		c.Rules = DefaultRules(c)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// objCum / classCum are the cumulative counters at the previous tick,
// kept so each tick evaluates deltas.
type objCum struct {
	local, remote, anon uint64
	reads, writes       uint64
	callers             map[string]uint64
}

type classCum struct {
	localCreates uint64
	servedAnon   uint64
	remote       map[string]uint64
	served       map[string]uint64
	out          map[string]uint64
}

type confirmState struct {
	endpoint string // proposed destination being confirmed
	streak   int
	lastTick int
}

// Engine evaluates rules over telemetry windows and executes surviving
// decisions.  Safe for concurrent use; evaluation is serialised.
type Engine struct {
	cfg Config
	rec *telemetry.Recorder
	act Actions

	mu        sync.Mutex
	tick      int
	seq       int // decisions ever made (Seq is monotonic across log trims)
	log       []Decision
	pending   []Decision // this tick's decisions, for post-unlock callbacks
	prevObj   map[string]objCum
	prevClass map[string]classCum
	confirm   map[string]confirmState
	spent     map[string][]int // proposal key -> ticks of executed actions

	// running/stop/done carry the periodic loop's lifecycle (guarded by
	// mu); Start and Stop form a restartable pair.
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// New builds an engine over a node's recorder and action set.
func New(rec *telemetry.Recorder, act Actions, cfg Config) *Engine {
	return &Engine{
		cfg:       cfg.withDefaults(),
		rec:       rec,
		act:       act,
		prevObj:   make(map[string]objCum),
		prevClass: make(map[string]classCum),
		confirm:   make(map[string]confirmState),
		spent:     make(map[string][]int),
	}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Start launches the periodic decision loop (no-op while one is
// running).  Start after Stop resumes the loop — the engine's window
// state, budgets and log carry over.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.stop, e.done = stop, done
	e.running = true
	e.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(e.cfg.Window)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				e.Tick()
			}
		}
	}()
}

// Stop halts the loop and waits for any in-flight tick (no-op when not
// running).  The engine can be Started again afterwards.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.running {
		e.mu.Unlock()
		return
	}
	stop, done := e.stop, e.done
	e.running = false
	e.mu.Unlock()
	close(stop)
	<-done
}

// Decisions returns a copy of the decision log (the most recent
// maxDecisionLog entries; Seq is monotonic, so trimmed history is
// detectable).
func (e *Engine) Decisions() []Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Decision(nil), e.log...)
}

// Tick runs one evaluation: snapshot → window deltas → rules →
// hysteresis → budget → execute.  Exported so tests and harnesses can
// step the loop deterministically.  OnDecision callbacks fire after the
// engine lock is released, so a callback may freely use the engine's
// own API (Decisions, even Tick).
func (e *Engine) Tick() {
	fired := e.tickLocked()
	if e.cfg.OnDecision != nil {
		for _, d := range fired {
			e.cfg.OnDecision(d)
		}
	}
}

// tickLocked is one evaluation under the engine lock; it returns the
// decisions made this tick for post-unlock callback delivery.
func (e *Engine) tickLocked() []Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tick++
	polVersion := e.act.PolicyVersion()
	view := e.buildView()

	var proposals []Proposal
	for _, r := range e.cfg.Rules {
		for _, p := range r.Evaluate(view) {
			p := p
			p.Rule = r.Name()
			proposals = append(proposals, p)
		}
	}

	// Hysteresis: a proposal (same target, same destination) must recur
	// for Confirm consecutive ticks.  A changed destination or a missed
	// tick restarts the streak.
	live := make(map[string]bool, len(proposals))
	for _, p := range proposals {
		k := p.key()
		live[k] = true
		st := e.confirm[k]
		if st.endpoint == p.Endpoint && st.lastTick == e.tick-1 {
			st.streak++
		} else {
			st = confirmState{endpoint: p.Endpoint, streak: 1}
		}
		st.lastTick = e.tick
		e.confirm[k] = st
		if st.streak < e.cfg.Confirm {
			continue
		}
		e.decide(p, &polVersion)
	}
	for k, st := range e.confirm {
		if !live[k] && st.lastTick < e.tick {
			delete(e.confirm, k)
		}
	}
	fired := e.pending
	e.pending = nil
	return fired
}

// decide applies the budget guard and executes one confirmed proposal,
// logging the outcome.  Whatever the outcome, the target's confirmation
// streak restarts, so a recurring proposal is logged at most once per
// Confirm windows rather than every tick.  polVersion is the engine's
// view of the policy-table version: an executed flip advances it, so a
// second flip confirming in the same tick is not vetoed by the first
// (only a genuinely concurrent operator re-policy is).  Caller holds
// e.mu.
func (e *Engine) decide(p Proposal, polVersion *uint64) {
	defer delete(e.confirm, p.key())
	e.seq++
	d := Decision{
		Seq:      e.seq,
		At:       e.cfg.Now(),
		Window:   e.tick,
		Rule:     p.Rule,
		Kind:     p.Kind,
		GUID:     p.GUID,
		Class:    p.Class,
		Endpoint: p.Endpoint,
		Reason:   p.Reason,
	}

	k := p.key()
	horizon := e.tick - e.cfg.BudgetWindows
	spent := e.spent[k][:0]
	for _, t := range e.spent[k] {
		if t > horizon {
			spent = append(spent, t)
		}
	}
	e.spent[k] = spent
	if len(spent) >= e.cfg.Budget {
		d.Err = fmt.Sprintf("suppressed: budget %d/%d spent in the last %d windows",
			len(spent), e.cfg.Budget, e.cfg.BudgetWindows)
		e.logDecision(d)
		return
	}

	switch p.Kind {
	case KindMigrate:
		if e.act.IsLocalObject != nil && !e.act.IsLocalObject(p.Obj) {
			d.Err = "suppressed: object is no longer a live local instance"
			e.logDecision(d)
			return
		}
		// Cluster mode: don't act, propose.  The decision becomes a
		// placement intent the cluster reconciles against every other
		// member's intents; the winner is executed by the object's home
		// (possibly us) through the coordination plane, which carries its
		// own ping-pong guard — so a delegated decision spends no local
		// budget.  A refusal (cooldown, outweighed, already satisfied) is
		// logged and nothing runs; with no cluster attached SubmitIntent
		// reports false with an empty reason and the engine acts alone as
		// before.
		if e.act.SubmitIntent != nil {
			if ok, why := e.act.SubmitIntent(p); ok {
				d.Delegated = true
				e.logDecision(d)
				return
			} else if why != "" {
				d.Err = "intent refused: " + why
				e.logDecision(d)
				return
			}
		}
		if err := e.act.MigrateObject(p.Obj, p.Endpoint); err != nil {
			d.Err = err.Error()
			e.logDecision(d)
			return
		}
	case KindReplicate:
		// Replication never delegates: only the primary can install
		// replicas of its own object, so the intent plane has nothing to
		// reconcile.  The object must still be a live local instance —
		// a concurrent migration turns the proposal stale.
		if e.act.ReplicateObject == nil {
			d.Err = "suppressed: node has no replication capability"
			e.logDecision(d)
			return
		}
		if e.act.IsLocalObject != nil && !e.act.IsLocalObject(p.Obj) {
			d.Err = "suppressed: object is no longer a live local instance"
			e.logDecision(d)
			return
		}
		if err := e.act.ReplicateObject(p.Obj, p.Endpoints); err != nil {
			d.Err = err.Error()
			e.logDecision(d)
			return
		}
	case KindPlaceClass:
		if err := e.act.PlaceClass(p.Class, p.Endpoint, *polVersion); err != nil {
			d.Err = err.Error()
			e.logDecision(d)
			return
		}
		*polVersion = e.act.PolicyVersion()
	default:
		d.Err = fmt.Sprintf("unknown decision kind %v", p.Kind)
		e.logDecision(d)
		return
	}
	d.Executed = true
	e.spent[k] = append(e.spent[k], e.tick)
	e.logDecision(d)
}

// maxDecisionLog bounds the retained decision log: a daemon node with a
// persistently recurring (budget-suppressed) proposal logs one entry
// per Confirm windows forever, so the log is a sliding window of the
// most recent decisions.  Seq stays monotonic across trims, so a
// consumer can detect that older entries were dropped; OnDecision sees
// every decision regardless.
const maxDecisionLog = 1024

func (e *Engine) logDecision(d Decision) {
	if len(e.log) >= maxDecisionLog {
		n := copy(e.log, e.log[len(e.log)-maxDecisionLog/2:])
		e.log = e.log[:n]
	}
	e.log = append(e.log, d)
	e.pending = append(e.pending, d)
}

// buildView snapshots the recorder and converts cumulative counters into
// window deltas.  Caller holds e.mu.
func (e *Engine) buildView() *View {
	v := &View{Self: map[string]bool{}}
	if e.act.SelfEndpoints != nil {
		for _, ep := range e.act.SelfEndpoints() {
			v.Self[ep] = true
		}
	}
	if e.act.PeerRTTs != nil {
		v.PeerRTTNs = e.act.PeerRTTs()
	}
	seen := make(map[string]bool)
	for _, s := range e.rec.SnapshotObjects() {
		seen[s.GUID] = true
		prev := e.prevObj[s.GUID]
		w := ObjWindow{
			GUID:          s.GUID,
			Class:         s.Class,
			Obj:           s.Obj,
			Local:         s.Local - prev.local,
			Remote:        s.Remote - prev.remote,
			Anon:          s.Anon - prev.anon,
			Reads:         s.Reads - prev.reads,
			Writes:        s.Writes - prev.writes,
			Callers:       deltaMap(s.Callers, prev.callers),
			EWMALatencyNs: s.EWMALatencyNs,
		}
		if e.act.IsLocalObject != nil {
			w.Migratable = e.act.IsLocalObject(s.Obj)
		}
		if w.Migratable && e.act.StateBytes != nil {
			w.StateBytes = e.act.StateBytes(s.Obj)
		}
		if e.act.IsReplicated != nil {
			w.Replicated = e.act.IsReplicated(s.Obj)
		}
		e.prevObj[s.GUID] = objCum{local: s.Local, remote: s.Remote, anon: s.Anon,
			reads: s.Reads, writes: s.Writes, callers: s.Callers}
		if w.Calls() > 0 {
			v.Objects = append(v.Objects, w)
		}
	}
	// The recorder evicts collected objects from its snapshot; drop the
	// mirrored delta baselines too, so the engine's state stays bounded
	// by the live working set.
	for g := range e.prevObj {
		if !seen[g] {
			delete(e.prevObj, g)
		}
	}
	for _, s := range e.rec.SnapshotClasses() {
		prev := e.prevClass[s.Class]
		w := ClassWindow{
			Class:         s.Class,
			LocalCreates:  s.LocalCreates - prev.localCreates,
			RemoteCreates: deltaMap(s.RemoteCreates, prev.remote),
			ServedCreates: deltaMap(s.ServedCreates, prev.served),
			ServedAnon:    s.ServedAnon - prev.servedAnon,
			OutCalls:      deltaMap(s.OutCalls, prev.out),
		}
		if e.act.ClassPlacement != nil {
			w.PlacedAt = e.act.ClassPlacement(s.Class)
		}
		e.prevClass[s.Class] = classCum{
			localCreates: s.LocalCreates,
			servedAnon:   s.ServedAnon,
			remote:       s.RemoteCreates,
			served:       s.ServedCreates,
			out:          s.OutCalls,
		}
		v.Classes = append(v.Classes, w)
	}
	return v
}

func deltaMap(cur, prev map[string]uint64) map[string]uint64 {
	if len(cur) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(cur))
	for k, n := range cur {
		if d := n - prev[k]; d > 0 {
			out[k] = d
		}
	}
	return out
}
