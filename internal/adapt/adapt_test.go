package adapt

import (
	"fmt"
	"testing"
	"time"

	"rafda/internal/ir"
	"rafda/internal/telemetry"
	"rafda/internal/vm"
)

const (
	epA = "rrp://a:1"
	epB = "rrp://b:1"
)

// harness wires an engine over a real recorder with scripted actions.
type harness struct {
	rec       *telemetry.Recorder
	eng       *Engine
	migrated  []string // "guid->endpoint"
	placed    []string // "class->endpoint"
	local     map[*vm.Object]bool
	polV      uint64
	placement map[string]string
	replicas  map[*vm.Object][]string
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{
		rec:       telemetry.NewRecorder(),
		local:     map[*vm.Object]bool{},
		placement: map[string]string{},
		replicas:  map[*vm.Object][]string{},
	}
	act := Actions{
		MigrateObject: func(obj *vm.Object, ep string) error {
			h.migrated = append(h.migrated, fmt.Sprintf("%p->%s", obj, ep))
			h.local[obj] = false
			return nil
		},
		PlaceClass: func(class, ep string, ifVersion uint64) error {
			if ifVersion != h.polV {
				return fmt.Errorf("policy version moved")
			}
			h.placed = append(h.placed, class+"->"+ep)
			h.placement[class] = ep
			h.polV++
			return nil
		},
		PolicyVersion:  func() uint64 { return h.polV },
		ClassPlacement: func(class string) string { return h.placement[class] },
		IsLocalObject:  func(obj *vm.Object) bool { return h.local[obj] },
		SelfEndpoints:  func() []string { return []string{epB} },
		ReplicateObject: func(obj *vm.Object, eps []string) error {
			h.replicas[obj] = append([]string(nil), eps...)
			return nil
		},
		IsReplicated: func(obj *vm.Object) bool { return len(h.replicas[obj]) > 0 },
	}
	h.eng = New(h.rec, act, cfg)
	return h
}

func (h *harness) hotObject(guid string, calls int, from string) *vm.Object {
	obj := vm.NewRawObject(&ir.Class{Name: "C_O_Local"}, map[string]vm.Value{})
	h.local[obj] = true
	s := h.rec.ForObject(obj, guid, "C")
	for i := 0; i < calls; i++ {
		s.RecordInbound(from, 8, 8, time.Microsecond)
	}
	return obj
}

func TestAffinityMigratesAfterConfirm(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 2, Budget: 2})
	s := h.rec.ForObject(h.hotObject("g1", 50, epA), "g1", "C")

	h.eng.Tick() // streak 1: no action yet
	if len(h.migrated) != 0 {
		t.Fatalf("migrated before hysteresis confirmed: %v", h.migrated)
	}
	for i := 0; i < 50; i++ {
		s.RecordInbound(epA, 8, 8, time.Microsecond)
	}
	h.eng.Tick() // streak 2: act
	if len(h.migrated) != 1 {
		t.Fatalf("migrations = %v, want one", h.migrated)
	}
	dl := h.eng.Decisions()
	if len(dl) != 1 || !dl[0].Executed || dl[0].Kind != KindMigrate || dl[0].Endpoint != epA {
		t.Fatalf("bad decision log: %+v", dl)
	}
	if dl[0].Rule != "affinity" {
		t.Fatalf("rule = %q", dl[0].Rule)
	}
}

func TestQuietObjectNeverProposed(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 100, Confirm: 1})
	h.hotObject("g1", 50, epA) // below MinCalls
	h.eng.Tick()
	h.eng.Tick()
	if len(h.eng.Decisions()) != 0 {
		t.Fatalf("decisions on a quiet object: %+v", h.eng.Decisions())
	}
}

func TestMixedAffinityBelowThresholdHolds(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.9, MinCalls: 10, Confirm: 1})
	obj := h.hotObject("g1", 50, epA)
	s := h.rec.ForObject(obj, "g1", "C")
	for i := 0; i < 40; i++ {
		s.RecordLocal() // 50/90 from A < 0.9
	}
	h.eng.Tick()
	if len(h.eng.Decisions()) != 0 {
		t.Fatalf("migrated below threshold: %+v", h.eng.Decisions())
	}
}

func TestChangedDestinationRestartsStreak(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 2})
	obj := h.hotObject("g1", 50, epA)
	s := h.rec.ForObject(obj, "g1", "C")
	h.eng.Tick() // streak 1 toward epA
	const epC = "rrp://c:1"
	for i := 0; i < 200; i++ {
		s.RecordInbound(epC, 8, 8, time.Microsecond)
	}
	h.eng.Tick() // dominant flipped to epC: streak restarts
	if len(h.migrated) != 0 {
		t.Fatalf("migrated on a flapping destination: %v", h.migrated)
	}
	for i := 0; i < 200; i++ {
		s.RecordInbound(epC, 8, 8, time.Microsecond)
	}
	h.eng.Tick() // epC confirmed
	if len(h.migrated) != 1 {
		t.Fatalf("migrations = %v", h.migrated)
	}
}

func TestBudgetSuppressesPingPong(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1, Budget: 1, BudgetWindows: 100})
	obj := h.hotObject("g1", 50, epA)
	s := h.rec.ForObject(obj, "g1", "C")
	h.eng.Tick()
	if len(h.migrated) != 1 {
		t.Fatalf("first migration should execute: %v", h.migrated)
	}
	// Keep the object "local" again (as if it bounced back) and keep
	// the affinity signal coming: budget must hold the line.
	h.local[obj] = true
	for w := 0; w < 5; w++ {
		for i := 0; i < 50; i++ {
			s.RecordInbound(epA, 8, 8, time.Microsecond)
		}
		h.eng.Tick()
	}
	if len(h.migrated) != 1 {
		t.Fatalf("budget failed to suppress repeat migrations: %v", h.migrated)
	}
	var suppressed int
	for _, d := range h.eng.Decisions() {
		if !d.Executed && d.Err != "" {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Fatal("suppression not recorded in the decision log")
	}
}

func TestProxiedObjectNotMigrated(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1})
	obj := h.hotObject("g1", 50, epA)
	h.local[obj] = false // already morphed into a proxy
	h.eng.Tick()
	h.eng.Tick()
	if len(h.migrated) != 0 {
		t.Fatalf("migrated a proxy: %v", h.migrated)
	}
	// Non-migratable objects are filtered before hysteresis: no
	// decision (not even a suppressed one) may recur in the log.
	if dl := h.eng.Decisions(); len(dl) != 0 {
		t.Fatalf("proxy produced decisions: %+v", dl)
	}
}

// TestTwoClassFlipsInOneTick pins the version-threading contract: two
// class placements confirming in the same tick must both execute — the
// first flip's version bump is the engine's own, not a concurrent
// operator re-policy.
func TestTwoClassFlipsInOneTick(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1})
	for i := 0; i < 20; i++ {
		h.rec.RecordCreateServed("C", epA)
		h.rec.RecordCreateServed("D", epA)
	}
	h.eng.Tick()
	if len(h.placed) != 2 {
		t.Fatalf("placements = %v, want both C and D flipped", h.placed)
	}
	for _, d := range h.eng.Decisions() {
		if !d.Executed {
			t.Fatalf("same-tick flip vetoed: %+v", d)
		}
	}
}

func TestRestartAfterStop(t *testing.T) {
	h := newHarness(t, Config{Window: 5 * time.Millisecond, Threshold: 0.6, MinCalls: 10, Confirm: 1})
	h.eng.Start()
	h.eng.Stop()
	s := h.rec.ForObject(h.hotObject("g1", 0, epA), "g1", "C")
	h.eng.Start() // must actually resume the loop
	deadline := time.Now().Add(2 * time.Second)
	for len(h.eng.Decisions()) == 0 && time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			s.RecordInbound(epA, 8, 8, time.Microsecond)
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.eng.Stop()
	if len(h.eng.Decisions()) == 0 {
		t.Fatal("restarted loop never ticked")
	}
}

func TestSelfEndpointNeverATarget(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.5, MinCalls: 10, Confirm: 1})
	h.hotObject("g1", 50, epB) // all calls "from" our own endpoint
	h.eng.Tick()
	if len(h.eng.Decisions()) != 0 {
		t.Fatalf("proposed migrating to self: %+v", h.eng.Decisions())
	}
}

func TestClassPullFlipsRemoteClassLocal(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 2})
	h.placement["C"] = epA
	for i := 0; i < 50; i++ {
		h.rec.RecordOutbound("C", epA, 16, time.Millisecond)
	}
	h.eng.Tick()
	for i := 0; i < 50; i++ {
		h.rec.RecordOutbound("C", epA, 16, time.Millisecond)
	}
	h.eng.Tick()
	if len(h.placed) != 1 || h.placed[0] != "C->" {
		t.Fatalf("placements = %v, want [C->]", h.placed)
	}
	if h.placement["C"] != "" {
		t.Fatal("placement not flipped to local")
	}
}

func TestClassPushFlipsLocalClassToDominantPeer(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1})
	for i := 0; i < 20; i++ {
		h.rec.RecordCreateServed("C", epA)
	}
	h.hotObject("g1", 30, epA)
	h.eng.Tick()
	if len(h.placed) != 1 || h.placed[0] != "C->"+epA {
		t.Fatalf("placements = %v, want [C->%s]", h.placed, epA)
	}
}

func TestPlaceClassRespectsPolicyVersion(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1})
	for i := 0; i < 20; i++ {
		h.rec.RecordCreateServed("C", epA)
	}
	// An "operator" re-policies between the engine's version read and
	// its apply: simulate by bumping the version inside PolicyVersion's
	// next read... simplest: wrap PlaceClass to bump first.
	innerPlace := h.eng.act.PlaceClass
	h.eng.act.PlaceClass = func(class, ep string, ifVersion uint64) error {
		h.polV++ // concurrent operator flip wins
		return innerPlace(class, ep, ifVersion)
	}
	h.eng.Tick()
	dl := h.eng.Decisions()
	if len(dl) != 1 || dl[0].Executed {
		t.Fatalf("stale-version flip must not execute: %+v", dl)
	}
	if len(h.placed) != 0 {
		t.Fatalf("placements = %v", h.placed)
	}
}

// TestOnDecisionMayUseEngineAPI pins the callback contract: OnDecision
// fires outside the engine lock, so a callback that reads the decision
// log (or even re-enters Tick) must not deadlock.
func TestOnDecisionMayUseEngineAPI(t *testing.T) {
	var h *harness
	var observed int
	cfg := Config{Threshold: 0.6, MinCalls: 10, Confirm: 1,
		OnDecision: func(d Decision) {
			observed = len(h.eng.Decisions()) // would deadlock if called under e.mu
		}}
	h = newHarness(t, cfg)
	h.hotObject("g1", 50, epA)
	done := make(chan struct{})
	go func() {
		h.eng.Tick()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Tick deadlocked delivering OnDecision")
	}
	if observed != 1 {
		t.Fatalf("callback saw %d logged decisions, want 1", observed)
	}
}

func TestStartStopLoop(t *testing.T) {
	h := newHarness(t, Config{Window: 5 * time.Millisecond, Threshold: 0.6, MinCalls: 10, Confirm: 1})
	s := h.rec.ForObject(h.hotObject("g1", 0, epA), "g1", "C")
	h.eng.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(h.eng.Decisions()) == 0 && time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			s.RecordInbound(epA, 8, 8, time.Microsecond)
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.eng.Stop()
	h.eng.Stop() // idempotent
	if len(h.eng.Decisions()) == 0 {
		t.Fatal("ticker loop never decided")
	}
}

// TestCostRuleWeighsStateAgainstTraffic: the cost-based object rule
// must move a chatty small object and hold a bulky rarely-called one —
// the trade-off the count-based rule ignores.
func TestCostRuleWeighsStateAgainstTraffic(t *testing.T) {
	r := &CostAffinityRule{Threshold: 0.6, MinCalls: 10, NsPerByte: 10}
	obj := vm.NewRawObject(&ir.Class{Name: "C_O_Local"}, map[string]vm.Value{})
	mkView := func(calls uint64, stateBytes int64, rttNs float64) *View {
		return &View{
			Self:      map[string]bool{epB: true},
			PeerRTTNs: map[string]float64{epA: rttNs},
			Objects: []ObjWindow{{
				GUID: "g", Class: "C", Obj: obj, Migratable: true,
				Remote: calls, Callers: map[string]uint64{epA: calls},
				StateBytes: stateBytes,
			}},
		}
	}

	// Chatty and small over a slow link: 100 calls × 1ms ≫ 1KiB shipped.
	if got := r.Evaluate(mkView(100, 1024, 1e6)); len(got) != 1 {
		t.Fatalf("chatty small object not proposed: %+v", got)
	} else if got[0].Endpoint != epA || got[0].Priority != 100 {
		t.Fatalf("bad proposal: %+v", got[0])
	}
	// Bulky and quiet: 12 calls × 10µs ≪ 100MB shipped.
	if got := r.Evaluate(mkView(12, 100<<20, 1e4)); len(got) != 0 {
		t.Fatalf("bulky object proposed anyway: %+v", got)
	}
	// Unpriced link: abstain rather than migrate blind.
	if got := r.Evaluate(mkView(100, 1024, 0)); len(got) != 0 {
		t.Fatalf("proposed without an RTT sample: %+v", got)
	}
}

// TestCostRuleFedByEngineView checks the engine threads StateBytes and
// peer RTTs from the Actions into the rule's view.
func TestCostRuleFedByEngineView(t *testing.T) {
	h := newHarness(t, Config{
		Threshold: 0.6, MinCalls: 10, Confirm: 1, CostBased: true, NsPerByte: 10,
	})
	h.eng.act.StateBytes = func(*vm.Object) int64 { return 256 }
	h.eng.act.PeerRTTs = func() map[string]float64 { return map[string]float64{epA: 5e5} }
	h.hotObject("g1", 50, epA)
	h.eng.Tick()
	if len(h.migrated) != 1 {
		t.Fatalf("cost-based engine did not migrate: %v (log %+v)", h.migrated, h.eng.Decisions())
	}
}

// TestMigrationDelegatesToCluster: with a SubmitIntent hook the engine
// must propose instead of act, spend no budget, and fall back to direct
// execution when the hook reports no cluster.
func TestMigrationDelegatesToCluster(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1, Budget: 1})
	var intents []Proposal
	clustered := true
	h.eng.act.SubmitIntent = func(p Proposal) (bool, string) {
		if !clustered {
			return false, ""
		}
		intents = append(intents, p)
		return true, ""
	}
	s := h.rec.ForObject(h.hotObject("g1", 50, epA), "g1", "C")
	h.eng.Tick()
	if len(h.migrated) != 0 {
		t.Fatalf("delegated decision also executed: %v", h.migrated)
	}
	if len(intents) != 1 || intents[0].Endpoint != epA || intents[0].Priority != 50 {
		t.Fatalf("intent not submitted: %+v", intents)
	}
	ds := h.eng.Decisions()
	if len(ds) != 1 || !ds[0].Delegated || ds[0].Executed {
		t.Fatalf("decision not marked delegated: %+v", ds)
	}

	// Delegation spends no budget: the same proposal can re-delegate
	// past Budget=1, and direct execution still has its budget intact.
	for i := 0; i < 3; i++ {
		for j := 0; j < 50; j++ {
			s.RecordInbound(epA, 8, 8, time.Microsecond)
		}
		h.eng.Tick()
	}
	if len(intents) < 2 {
		t.Fatalf("re-delegation blocked: %d intents", len(intents))
	}
	clustered = false
	for j := 0; j < 50; j++ {
		s.RecordInbound(epA, 8, 8, time.Microsecond)
	}
	h.eng.Tick()
	if len(h.migrated) != 1 {
		t.Fatalf("fallback to direct execution failed: %v (log %+v)", h.migrated, h.eng.Decisions())
	}
}

// readTraffic records a window of spread-out read-mostly traffic: calls
// from each endpoint plus the verifier-classified effect split.
func readTraffic(s *telemetry.ObjStats, perCaller map[string]int, reads, writes int) {
	for ep, n := range perCaller {
		for i := 0; i < n; i++ {
			s.RecordInbound(ep, 8, 8, time.Microsecond)
		}
	}
	for i := 0; i < reads; i++ {
		s.RecordEffect(false)
	}
	for i := 0; i < writes; i++ {
		s.RecordEffect(true)
	}
}

func TestReplicateReadMostlySpreadObject(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 2})
	const epC = "rrp://c:1"
	obj := h.hotObject("g1", 0, epA)
	s := h.rec.ForObject(obj, "g1", "C")

	// Two remote callers, neither dominant; all calls classified reads.
	readTraffic(s, map[string]int{epA: 30, epC: 25}, 55, 0)
	h.eng.Tick() // streak 1
	if len(h.replicas) != 0 {
		t.Fatalf("replicated before hysteresis confirmed: %v", h.replicas)
	}
	readTraffic(s, map[string]int{epA: 30, epC: 25}, 55, 0)
	h.eng.Tick() // streak 2: act
	got := h.replicas[obj]
	if len(got) != 2 || got[0] != epA || got[1] != epC {
		t.Fatalf("replica targets = %v, want [%s %s]", got, epA, epC)
	}
	dl := h.eng.Decisions()
	if len(dl) != 1 || !dl[0].Executed || dl[0].Kind != KindReplicate || dl[0].Rule != "replicate" {
		t.Fatalf("bad decision log: %+v", dl)
	}

	// Already replicated: the rule must not re-propose.
	readTraffic(s, map[string]int{epA: 30, epC: 25}, 55, 0)
	h.eng.Tick()
	readTraffic(s, map[string]int{epA: 30, epC: 25}, 55, 0)
	h.eng.Tick()
	if len(h.eng.Decisions()) != 1 {
		t.Fatalf("re-proposed for a replicated object: %+v", h.eng.Decisions())
	}
}

func TestWriteHeavyObjectNotReplicated(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1})
	const epC = "rrp://c:1"
	obj := h.hotObject("g1", 0, epA)
	s := h.rec.ForObject(obj, "g1", "C")
	// 20% writes > DefaultMaxWriteShare: replication would tax every
	// write with a synchronous fan-out for little read win.
	readTraffic(s, map[string]int{epA: 30, epC: 25}, 44, 11)
	h.eng.Tick()
	if len(h.eng.Decisions()) != 0 {
		t.Fatalf("write-heavy object replicated: %+v", h.eng.Decisions())
	}
}

func TestDominantCallerPrefersMigration(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1})
	obj := h.hotObject("g1", 0, epA)
	s := h.rec.ForObject(obj, "g1", "C")
	// One remote endpoint makes 100% of the calls: even though the
	// object is read-only, moving it there beats pinning a replica set.
	readTraffic(s, map[string]int{epA: 50}, 50, 0)
	h.eng.Tick()
	if len(h.replicas) != 0 {
		t.Fatalf("replicated a single-caller object: %v", h.replicas)
	}
	if len(h.migrated) != 1 {
		t.Fatalf("affinity migration missing: %+v", h.eng.Decisions())
	}
}

func TestReplicateFanoutPicksHottestCallers(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.9, MinCalls: 10, Confirm: 1, ReplicaFanout: 2})
	const epC = "rrp://c:1"
	const epD = "rrp://d:1"
	obj := h.hotObject("g1", 0, epA)
	s := h.rec.ForObject(obj, "g1", "C")
	// Three remote callers; fan-out 2 must take the two heaviest.
	readTraffic(s, map[string]int{epA: 40, epC: 35, epD: 5}, 80, 0)
	h.eng.Tick()
	got := h.replicas[obj]
	if len(got) != 2 || got[0] != epA || got[1] != epC {
		t.Fatalf("replica targets = %v, want the two hottest [%s %s]", got, epA, epC)
	}
}

func TestUnclassifiedTrafficNotReplicated(t *testing.T) {
	h := newHarness(t, Config{Threshold: 0.6, MinCalls: 10, Confirm: 1})
	const epC = "rrp://c:1"
	obj := h.hotObject("g1", 0, epA)
	s := h.rec.ForObject(obj, "g1", "C")
	// Calls arrive but the effect plane classified none of them as
	// reads (e.g. an untransformed or natively-dispatched class): no
	// proof of read-mostliness, no replication.
	readTraffic(s, map[string]int{epA: 30, epC: 25}, 0, 0)
	h.eng.Tick()
	if len(h.eng.Decisions()) != 0 {
		t.Fatalf("replicated on unclassified traffic: %+v", h.eng.Decisions())
	}
}
