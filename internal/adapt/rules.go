package adapt

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultRules returns the built-in rule set: per-object call-affinity
// migration (count-based, or cost-based under Config.CostBased), the
// two class-placement flips (pull-local and push-remote), and
// read-replication of read-mostly objects.
func DefaultRules(cfg Config) []Rule {
	objRule := Rule(&AffinityRule{Threshold: cfg.Threshold, MinCalls: cfg.MinCalls})
	if cfg.CostBased {
		objRule = &CostAffinityRule{
			Threshold: cfg.Threshold, MinCalls: cfg.MinCalls, NsPerByte: cfg.NsPerByte,
		}
	}
	return []Rule{
		objRule,
		&ClassPullRule{Threshold: cfg.Threshold, MinCalls: cfg.MinCalls},
		&ClassPushRule{Threshold: cfg.Threshold, MinCalls: cfg.MinCalls},
		&ReplicateRule{MinCalls: cfg.MinCalls, MaxWriteShare: cfg.MaxWriteShare,
			Fanout: cfg.ReplicaFanout, MigrateThreshold: cfg.Threshold},
	}
}

// dominant returns the endpoint with the highest count and that count,
// with a deterministic (lexicographic) tie-break.
func dominant(m map[string]uint64) (string, uint64) {
	var eps []string
	for ep := range m {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	var bestEp string
	var best uint64
	for _, ep := range eps {
		if m[ep] > best {
			bestEp, best = ep, m[ep]
		}
	}
	return bestEp, best
}

// AffinityRule implements the paper-style object rule: an object that
// receives more than Threshold of its window's calls from one remote
// endpoint migrates to that endpoint, turning its hot remote
// invocations into local ones.
type AffinityRule struct {
	Threshold float64
	MinCalls  uint64
}

// Name implements Rule.
func (r *AffinityRule) Name() string { return "affinity" }

// Evaluate implements Rule.
func (r *AffinityRule) Evaluate(v *View) []Proposal {
	var out []Proposal
	for _, w := range v.Objects {
		if !w.Migratable {
			continue // proxies and statics singletons cannot move
		}
		total := w.Calls()
		if total < r.MinCalls {
			continue
		}
		ep, n := dominant(w.Callers)
		if ep == "" || v.Self[ep] {
			continue
		}
		share := float64(n) / float64(total)
		if share < r.Threshold {
			continue
		}
		out = append(out, Proposal{
			Kind:     KindMigrate,
			Obj:      w.Obj,
			GUID:     w.GUID,
			Class:    w.Class,
			Endpoint: ep,
			Priority: int64(n),
			Reason: fmt.Sprintf("object received %d/%d calls (%.0f%%) from %s this window",
				n, total, 100*share, ep),
		})
	}
	return out
}

// CostAffinityRule is the cost-based form of the object rule: affinity
// picks the candidate destination exactly as AffinityRule does, but the
// migration only proposes when the traffic it would save outweighs what
// shipping the object costs —
//
//	benefit = dominant caller's window calls × RTT EWMA to that peer
//	cost    = estimated shipped-state bytes × NsPerByte + 2 × RTT
//
// so a chatty small object moves and a bulky rarely-called one stays,
// the trade-off the count-based rule ignores.  Both inputs come from
// the telemetry plane: per-peer RTT rollups (proxy calls + gossip
// pings) and the node's state-size estimator.  With no RTT sample for
// the candidate peer the rule abstains — migrating on unpriced evidence
// is how ping-pong starts.
type CostAffinityRule struct {
	Threshold float64
	MinCalls  uint64
	// NsPerByte converts state bytes to time (0 = DefaultNsPerByte).
	NsPerByte float64
}

// Name implements Rule.
func (r *CostAffinityRule) Name() string { return "cost-affinity" }

// Evaluate implements Rule.
func (r *CostAffinityRule) Evaluate(v *View) []Proposal {
	nsPerByte := r.NsPerByte
	if nsPerByte <= 0 {
		nsPerByte = DefaultNsPerByte
	}
	var out []Proposal
	for _, w := range v.Objects {
		if !w.Migratable {
			continue
		}
		total := w.Calls()
		if total < r.MinCalls {
			continue
		}
		ep, n := dominant(w.Callers)
		if ep == "" || v.Self[ep] {
			continue
		}
		if float64(n)/float64(total) < r.Threshold {
			continue
		}
		rtt := v.PeerRTTNs[ep]
		if rtt <= 0 {
			continue // unpriced link: abstain
		}
		benefit := float64(n) * rtt
		cost := float64(w.StateBytes)*nsPerByte + 2*rtt
		if benefit <= cost {
			continue
		}
		out = append(out, Proposal{
			Kind:     KindMigrate,
			Obj:      w.Obj,
			GUID:     w.GUID,
			Class:    w.Class,
			Endpoint: ep,
			Priority: int64(n),
			Reason: fmt.Sprintf("saving %d calls × %.0fµs RTT (%.0fµs) beats shipping %dB (%.0fµs)",
				n, rtt/1e3, benefit/1e3, w.StateBytes, cost/1e3),
		})
	}
	return out
}

// ReplicateRule is migration's sibling for the workload shape affinity
// cannot improve: a read-mostly object whose calls are spread across
// several remote endpoints.  Moving it chases one caller and abandons
// the rest; replicating it gives each hot caller a local read copy
// while this node stays the lease-holding primary for writes
// (docs/REPLICATION.md).  Eligibility is driven by the telemetry
// plane's effect counters — reads and writes as classified by the
// verifier's method-effect analysis — and the per-endpoint caller
// affinity counters:
//
//   - the object is a live local instance and not already replicated;
//   - window activity ≥ MinCalls, with at least one classified read;
//   - writes / (reads + writes) ≤ MaxWriteShare — every write fans out
//     to all replicas synchronously, so write-heavy objects lose;
//   - no single remote endpoint exceeds MigrateThreshold of the
//     window's calls: that shape is the affinity rule's territory, and
//     a whole-object migration beats pinning a replica set there.
//
// The proposal targets the top-Fanout remote caller endpoints by call
// count (deterministic tie-break), sorted into Endpoints with their
// canonical join in Endpoint so hysteresis restarts when the hot set
// shifts.
type ReplicateRule struct {
	MinCalls      uint64
	MaxWriteShare float64
	// Fanout caps the replica target count (top-k callers).
	Fanout int
	// MigrateThreshold is the dominant-caller share above which the rule
	// abstains in favour of migration.
	MigrateThreshold float64
}

// Name implements Rule.
func (r *ReplicateRule) Name() string { return "replicate" }

// Evaluate implements Rule.
func (r *ReplicateRule) Evaluate(v *View) []Proposal {
	var out []Proposal
	for _, w := range v.Objects {
		if !w.Migratable || w.Replicated {
			continue
		}
		total := w.Calls()
		if total < r.MinCalls {
			continue
		}
		classified := w.Reads + w.Writes
		if classified == 0 || w.Reads == 0 {
			continue // nothing provably read-only to scale
		}
		if float64(w.Writes)/float64(classified) > r.MaxWriteShare {
			continue
		}
		// Remote callers by window calls, heaviest first (lexicographic
		// tie-break keeps the proposal deterministic).
		type epCalls struct {
			ep string
			n  uint64
		}
		var remote []epCalls
		for ep, n := range w.Callers {
			if ep == "" || v.Self[ep] {
				continue
			}
			remote = append(remote, epCalls{ep, n})
		}
		if len(remote) == 0 {
			continue
		}
		sort.Slice(remote, func(i, j int) bool {
			if remote[i].n != remote[j].n {
				return remote[i].n > remote[j].n
			}
			return remote[i].ep < remote[j].ep
		})
		if float64(remote[0].n)/float64(total) >= r.MigrateThreshold {
			continue // one dominant caller: migration's territory
		}
		k := r.Fanout
		if k <= 0 || k > len(remote) {
			k = len(remote)
		}
		eps := make([]string, 0, k)
		var covered uint64
		for _, rc := range remote[:k] {
			eps = append(eps, rc.ep)
			covered += rc.n
		}
		sort.Strings(eps)
		out = append(out, Proposal{
			Kind:      KindReplicate,
			Obj:       w.Obj,
			GUID:      w.GUID,
			Class:     w.Class,
			Endpoint:  strings.Join(eps, ","),
			Endpoints: eps,
			Priority:  int64(covered),
			Reason: fmt.Sprintf("read-mostly object (%d reads / %d writes) spread over %d remote callers; replicating to top %d (%d/%d calls)",
				w.Reads, w.Writes, len(remote), len(eps), covered, total),
		})
	}
	return out
}

// ClassPullRule flips a remotely-placed class back to local when this
// node is the class's dominant user: it creates the instances at the
// remote placement and then pays a remote round trip for nearly every
// call it makes on them.  After the flip, future creations and
// discoveries are local (existing instances are the AffinityRule's
// job — on their home node).
type ClassPullRule struct {
	Threshold float64
	MinCalls  uint64
}

// Name implements Rule.
func (r *ClassPullRule) Name() string { return "class-pull" }

// Evaluate implements Rule.
func (r *ClassPullRule) Evaluate(v *View) []Proposal {
	var out []Proposal
	for _, w := range v.Classes {
		if w.PlacedAt == "" {
			continue // already local
		}
		var total uint64
		for _, n := range w.OutCalls {
			total += n
		}
		if total < r.MinCalls {
			continue
		}
		ep, n := dominant(w.OutCalls)
		if ep != w.PlacedAt {
			continue // the traffic is not going where the policy points
		}
		share := float64(n) / float64(total)
		if share < r.Threshold {
			continue
		}
		out = append(out, Proposal{
			Kind:  KindPlaceClass,
			Class: w.Class,
			// Endpoint "" = local placement.
			Reason: fmt.Sprintf("this node made %d/%d (%.0f%%) of the class's proxy calls to its placement %s",
				n, total, 100*share, ep),
		})
	}
	return out
}

// ClassPushRule flips a locally-placed class toward the remote endpoint
// that dominates its use: when one peer performs more than Threshold of
// the class's creations-plus-invocations served here, future creations
// should happen at that peer directly — the §4 "constructed mostly under
// remote callers" boundary redraw.
type ClassPushRule struct {
	Threshold float64
	MinCalls  uint64
}

// Name implements Rule.
func (r *ClassPushRule) Name() string { return "class-push" }

// Evaluate implements Rule.
func (r *ClassPushRule) Evaluate(v *View) []Proposal {
	// Aggregate inbound invocations per class across this node's
	// objects (the telemetry plane attributes them per object).
	inCalls := map[string]map[string]uint64{}
	inTotal := map[string]uint64{}
	for _, w := range v.Objects {
		m := inCalls[w.Class]
		if m == nil {
			m = map[string]uint64{}
			inCalls[w.Class] = m
		}
		for ep, n := range w.Callers {
			m[ep] += n
		}
		inTotal[w.Class] += w.Calls()
	}

	var out []Proposal
	for _, w := range v.Classes {
		if w.PlacedAt != "" {
			continue // only locally-placed classes push away
		}
		byEp := map[string]uint64{}
		var total uint64
		for ep, n := range w.ServedCreates {
			byEp[ep] += n
			total += n
		}
		total += w.LocalCreates + w.ServedAnon
		for ep, n := range inCalls[w.Class] {
			byEp[ep] += n
		}
		total += inTotal[w.Class]
		if total < r.MinCalls {
			continue
		}
		ep, n := dominant(byEp)
		if ep == "" || v.Self[ep] {
			continue
		}
		share := float64(n) / float64(total)
		if share < r.Threshold {
			continue
		}
		out = append(out, Proposal{
			Kind:     KindPlaceClass,
			Class:    w.Class,
			Endpoint: ep,
			Reason: fmt.Sprintf("%s drove %d/%d (%.0f%%) of the class's creations and calls served here",
				ep, n, total, 100*share),
		})
	}
	return out
}
