package telemetry

import "sync/atomic"

// OverloadStats counts one node's overload-control events: the SLO
// plane's view of where load was refused or queued rather than served.
// All fields are atomics and every method is nil-safe, so the transport
// and dispatch hot paths record unconditionally.  One instance is
// shared between the node and its transports (they see the same
// overload), wired through transport.Options and node.Config.
type OverloadStats struct {
	// AdmissionRejects counts requests refused at admission — the
	// dispatch slot was not taken.  Every admission reject of a
	// deadlined call is also a deadline expiry.
	AdmissionRejects atomic.Uint64
	// DeadlineExpiries counts calls whose remaining latency budget ran
	// out before the method body executed: in the transport admission
	// queue, or in the object gate queue after a slot was granted.
	DeadlineExpiries atomic.Uint64
	// OutboxStalls counts response frames that found the writer outbox
	// full and had to block — the backpressure cliff before the writer.
	OutboxStalls atomic.Uint64
	// Inflight is the live dispatch-slot gauge across connections;
	// InflightHighWater its observed maximum (the queue-depth
	// high-water mark of the serve plane).
	Inflight          atomic.Int64
	InflightHighWater atomic.Int64
	// ShedPriority, ShedFairShare and ShedCoDel count requests refused
	// by the proactive shedding interceptors (internal/intercept): the
	// strict-priority policy, the per-tenant fair-share policy, and the
	// CoDel queue controller respectively.  A shed call took a dispatch
	// slot briefly but never reached dedup or the object gate.
	ShedPriority  atomic.Uint64
	ShedFairShare atomic.Uint64
	ShedCoDel     atomic.Uint64
}

// NoteAdmissionReject counts one refused request; expired marks it as a
// deadline expiry too.
func (s *OverloadStats) NoteAdmissionReject(expired bool) {
	if s == nil {
		return
	}
	s.AdmissionRejects.Add(1)
	if expired {
		s.DeadlineExpiries.Add(1)
	}
}

// NoteDeadlineExpiry counts a call whose budget ran out after admission
// (gate-queue expiry).
func (s *OverloadStats) NoteDeadlineExpiry() {
	if s == nil {
		return
	}
	s.DeadlineExpiries.Add(1)
}

// NoteOutboxStall counts one blocked outbox enqueue.
func (s *OverloadStats) NoteOutboxStall() {
	if s == nil {
		return
	}
	s.OutboxStalls.Add(1)
}

// NoteShedPriority counts one request refused by strict-priority
// admission.
func (s *OverloadStats) NoteShedPriority() {
	if s == nil {
		return
	}
	s.ShedPriority.Add(1)
}

// NoteShedFairShare counts one request refused by per-tenant fair-share
// admission.
func (s *OverloadStats) NoteShedFairShare() {
	if s == nil {
		return
	}
	s.ShedFairShare.Add(1)
}

// NoteShedCoDel counts one request dropped by the CoDel queue
// controller.
func (s *OverloadStats) NoteShedCoDel() {
	if s == nil {
		return
	}
	s.ShedCoDel.Add(1)
}

// NoteInflight bumps the dispatch-slot gauge by delta and folds the
// result into the high-water mark.
func (s *OverloadStats) NoteInflight(delta int64) {
	if s == nil {
		return
	}
	n := s.Inflight.Add(delta)
	for {
		hw := s.InflightHighWater.Load()
		if n <= hw || s.InflightHighWater.CompareAndSwap(hw, n) {
			return
		}
	}
}

// OverloadSample is one node's overload counters at snapshot time.
type OverloadSample struct {
	AdmissionRejects  uint64 `json:"admission_rejects"`
	DeadlineExpiries  uint64 `json:"deadline_expiries"`
	OutboxStalls      uint64 `json:"outbox_stalls"`
	Inflight          int64  `json:"inflight"`
	InflightHighWater int64  `json:"inflight_high_water"`
	ShedPriority      uint64 `json:"shed_priority,omitempty"`
	ShedFairShare     uint64 `json:"shed_fairshare,omitempty"`
	ShedCoDel         uint64 `json:"shed_codel,omitempty"`
}

// Snapshot reads the counters; nil-safe (a nil stats reads as zero).
func (s *OverloadStats) Snapshot() OverloadSample {
	if s == nil {
		return OverloadSample{}
	}
	return OverloadSample{
		AdmissionRejects:  s.AdmissionRejects.Load(),
		DeadlineExpiries:  s.DeadlineExpiries.Load(),
		OutboxStalls:      s.OutboxStalls.Load(),
		Inflight:          s.Inflight.Load(),
		InflightHighWater: s.InflightHighWater.Load(),
		ShedPriority:      s.ShedPriority.Load(),
		ShedFairShare:     s.ShedFairShare.Load(),
		ShedCoDel:         s.ShedCoDel.Load(),
	}
}
