package telemetry

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"rafda/internal/ir"
	"rafda/internal/vm"
	"rafda/internal/wire"
)

func obj() *vm.Object {
	return vm.NewRawObject(&ir.Class{Name: "C_O_Local"}, map[string]vm.Value{})
}

func TestForObjectInstallsOnce(t *testing.T) {
	r := NewRecorder()
	o := obj()
	s1 := r.ForObject(o, "g1", "C")
	s2 := r.ForObject(o, "g1", "C")
	if s1 != s2 {
		t.Fatal("distinct stats records for one object")
	}
	s1.RecordInbound("rrp://a:1", 10, 20, time.Millisecond)
	s1.RecordLocal()
	samples := r.SnapshotObjects()
	if len(samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(samples))
	}
	got := samples[0]
	if got.GUID != "g1" || got.Class != "C" || got.Obj != o {
		t.Fatalf("bad sample identity: %+v", got)
	}
	if got.Local != 1 || got.Remote != 1 || got.Callers["rrp://a:1"] != 1 {
		t.Fatalf("bad counters: %+v", got)
	}
	if got.BytesIn != 10 || got.BytesOut != 20 {
		t.Fatalf("bad bytes: %+v", got)
	}
	if got.EWMALatencyNs != float64(time.Millisecond.Nanoseconds()) {
		t.Fatalf("first observation must seed the EWMA, got %v", got.EWMALatencyNs)
	}
}

func TestAnonymousCallerCountsSeparately(t *testing.T) {
	r := NewRecorder()
	s := r.ForObject(obj(), "g", "C")
	s.RecordInbound("", 1, 1, time.Microsecond)
	got := r.SnapshotObjects()[0]
	if got.Anon != 1 || got.Remote != 0 || len(got.Callers) != 0 {
		t.Fatalf("anonymous caller misattributed: %+v", got)
	}
	if got.Calls() != 1 {
		t.Fatalf("Calls() = %d", got.Calls())
	}
}

func TestClassCounters(t *testing.T) {
	r := NewRecorder()
	r.RecordCreateLocal("C")
	r.RecordCreateRemote("C", "rrp://b:1")
	r.RecordCreateServed("C", "rrp://a:1")
	r.RecordCreateServed("C", "")
	r.RecordOutbound("C", "rrp://b:1", 32, 2*time.Millisecond)
	r.RecordOutbound("C", "rrp://b:1", 32, 2*time.Millisecond)
	samples := r.SnapshotClasses()
	if len(samples) != 1 {
		t.Fatalf("class samples = %d", len(samples))
	}
	cs := samples[0]
	if cs.LocalCreates != 1 || cs.RemoteCreates["rrp://b:1"] != 1 ||
		cs.ServedCreates["rrp://a:1"] != 1 || cs.ServedAnon != 1 {
		t.Fatalf("bad create counters: %+v", cs)
	}
	if cs.OutCalls["rrp://b:1"] != 2 || cs.OutBytes != 64 {
		t.Fatalf("bad out counters: %+v", cs)
	}
	if cs.OutEWMANs <= 0 {
		t.Fatal("EWMA not seeded")
	}
}

// TestConcurrentRecording drives every recording path from many
// goroutines; exact totals prove no update was lost (run under -race in
// CI).
func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	o := obj()
	const workers = 8
	const each = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep := fmt.Sprintf("rrp://peer%d:1", w%3)
			s := r.ForObject(o, "g", "C")
			for i := 0; i < each; i++ {
				s.RecordInbound(ep, 1, 1, time.Microsecond)
				s.RecordLocal()
				r.RecordOutbound("C", ep, 1, time.Microsecond)
				r.RecordCreateServed("C", ep)
			}
		}(w)
	}
	wg.Wait()
	got := r.SnapshotObjects()[0]
	if got.Remote != workers*each || got.Local != workers*each {
		t.Fatalf("lost object updates: %+v", got)
	}
	var sum uint64
	for _, n := range got.Callers {
		sum += n
	}
	if sum != workers*each {
		t.Fatalf("caller counters sum %d, want %d", sum, workers*each)
	}
	cs := r.SnapshotClasses()[0]
	var out uint64
	for _, n := range cs.OutCalls {
		out += n
	}
	if out != workers*each {
		t.Fatalf("out counters sum %d, want %d", out, workers*each)
	}
}

// TestSnapshotEvictsCollectedObjects pins the retention contract: the
// recorder references objects weakly, so once an observed object is
// garbage-collected its index entry disappears from the next snapshot
// — a long-running node's recorder tracks the live working set, not
// every object it ever served.
func TestSnapshotEvictsCollectedObjects(t *testing.T) {
	r := NewRecorder()
	keep := obj()
	r.ForObject(keep, "keep", "C").RecordLocal()
	func() {
		dead := obj()
		r.ForObject(dead, "dead", "C").RecordLocal()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		samples := r.SnapshotObjects()
		if len(samples) == 1 && samples[0].GUID == "keep" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collected object never evicted; snapshot: %+v", samples)
		}
	}
	if r.ForObject(keep, "keep", "C") == nil {
		t.Fatal("live object lost its stats")
	}
}

func TestSizeEstimates(t *testing.T) {
	req := &wire.Request{
		Op: wire.OpInvoke, GUID: "guid", Method: "m",
		Args:   []wire.Value{{Kind: wire.KString, Str: "hello"}, {Kind: wire.KInt, Int: 7}},
		Caller: "rrp://a:1",
	}
	small := RequestSize(&wire.Request{Op: wire.OpPing})
	if RequestSize(req) <= small {
		t.Fatal("payload must grow the estimate")
	}
	resp := &wire.Response{Result: wire.Value{Kind: wire.KString, Str: "hello"}}
	withRedirect := &wire.Response{
		Result:   wire.Value{Kind: wire.KString, Str: "hello"},
		Redirect: &wire.RemoteRef{GUID: "g", Endpoint: "rrp://b:1", Proto: "rrp", Target: "C"},
	}
	if ResponseSize(withRedirect) <= ResponseSize(resp) {
		t.Fatal("redirect must grow the estimate")
	}
	arr := wire.Value{Kind: wire.KArray, Elem: "I",
		Arr: []wire.Value{{Kind: wire.KInt}, {Kind: wire.KInt}}}
	if valueSize(&arr) <= 1 {
		t.Fatal("array elements must be counted")
	}
}

func TestPeerRollups(t *testing.T) {
	r := NewRecorder()
	r.RecordOutbound("C", "rrp://b:1", 100, 2*time.Millisecond)
	r.RecordOutbound("D", "rrp://b:1", 50, 4*time.Millisecond)
	r.RecordPeerRTT("rrp://c:1", time.Millisecond)

	byEp := map[string]PeerSample{}
	for _, s := range r.SnapshotPeers() {
		byEp[s.Endpoint] = s
	}
	b := byEp["rrp://b:1"]
	if b.Calls != 2 || b.Bytes != 150 {
		t.Fatalf("peer b rollup: %+v", b)
	}
	if b.RTTEWMANs < float64(time.Millisecond) || b.RTTEWMANs > float64(4*time.Millisecond) {
		t.Fatalf("peer b RTT EWMA out of range: %v", b.RTTEWMANs)
	}
	// A ping-only peer has an RTT but no invocation counts.
	c := byEp["rrp://c:1"]
	if c.Calls != 0 || c.RTTEWMANs != float64(time.Millisecond) {
		t.Fatalf("ping-only peer rollup: %+v", c)
	}
	rtts := r.PeerRTTs()
	if len(rtts) != 2 || rtts["rrp://c:1"] != float64(time.Millisecond) {
		t.Fatalf("PeerRTTs: %+v", rtts)
	}
}

func TestPeerRTTAggregatesAcrossPoolShards(t *testing.T) {
	// The transport pools several sockets per endpoint; observations
	// tagged with shard-qualified socket names (transport.Pool.ShardID,
	// "ep#N") must fold into ONE per-peer rollup — a per-socket split
	// would hand CostAffinityRule and gossip suspicion timing N thin
	// EWMAs instead of one coherent peer latency.
	if got := PeerKey("rrp://b:1#3"); got != "rrp://b:1" {
		t.Fatalf("PeerKey shard form: %q", got)
	}
	if got := PeerKey("rrp://b:1"); got != "rrp://b:1" {
		t.Fatalf("PeerKey canonical form: %q", got)
	}

	r := NewRecorder()
	r.RecordOutbound("C", "rrp://b:1#0", 100, 2*time.Millisecond)
	r.RecordOutbound("C", "rrp://b:1#1", 100, 2*time.Millisecond)
	r.RecordOutbound("C", "rrp://b:1", 100, 2*time.Millisecond)
	r.RecordPeerRTT("rrp://b:1#7", 2*time.Millisecond)

	peers := r.SnapshotPeers()
	if len(peers) != 1 {
		t.Fatalf("shard-qualified endpoints fragmented the rollup: %+v", peers)
	}
	p := peers[0]
	if p.Endpoint != "rrp://b:1" || p.Calls != 3 || p.Bytes != 300 {
		t.Fatalf("aggregated peer rollup: %+v", p)
	}
	if p.RTTEWMANs != float64(2*time.Millisecond) {
		t.Fatalf("aggregated RTT EWMA: %v", p.RTTEWMANs)
	}
	rtts := r.PeerRTTs()
	if len(rtts) != 1 || rtts["rrp://b:1"] == 0 {
		t.Fatalf("PeerRTTs keyed per socket: %+v", rtts)
	}
}
