// Package telemetry is a node's call-affinity metrics plane: per-object
// and per-class counters recorded at the proxy-call and dispatch sites,
// read periodically by the adaptive placement engine (internal/adapt)
// that redraws the program's distribution boundaries.
//
// # Thread safety and lock hierarchy
//
// Recording happens on the hottest paths in the system — inside inbound
// dispatch and outgoing proxy invocations, sometimes below an object's
// invocation gate — so every update is a handful of atomic operations
// and no recording path ever blocks on a lock (docs/CONCURRENCY.md):
//
//   - Per-object counters live in an ObjStats reached through the
//     object's telemetry slot (vm.Object.Telemetry, one atomic load).
//   - Per-endpoint counters are copy-on-write endpoint→counter lists
//     published through atomic pointers; bumping an existing endpoint is
//     one atomic add, adding a new endpoint is a CAS loop.
//   - The EWMA latency is float64 bits in a uint64 CAS loop.
//   - The recorder's object and class indexes are sync.Maps, touched on
//     the first record for an object/class only.
//
// Snapshots return cumulative counters; window deltas are the reader's
// job (the adapt engine diffs consecutive snapshots).
package telemetry

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"weak"

	"rafda/internal/vm"
	"rafda/internal/wire"
)

// ewmaAlpha is the smoothing factor of the latency EWMA: ~the last 10
// observations dominate.
const ewmaAlpha = 0.2

// epSet is an immutable endpoint→counter list published through an
// atomic pointer.  Nodes talk to a handful of peers, so linear scans
// beat a map and stay allocation-free on the hit path.
type epSet struct {
	entries []epEntry
}

type epEntry struct {
	ep string
	n  *atomic.Uint64
}

// bump increments the counter for ep, installing it on first use.
func bump(p *atomic.Pointer[epSet], ep string) {
	counterIn(p, ep).Add(1)
}

func counterIn(p *atomic.Pointer[epSet], ep string) *atomic.Uint64 {
	for {
		s := p.Load()
		if s != nil {
			for i := range s.entries {
				if s.entries[i].ep == ep {
					return s.entries[i].n
				}
			}
		}
		next := &epSet{}
		if s != nil {
			next.entries = append(next.entries, s.entries...)
		}
		ctr := &atomic.Uint64{}
		next.entries = append(next.entries, epEntry{ep: ep, n: ctr})
		if p.CompareAndSwap(s, next) {
			return ctr
		}
	}
}

func snapshotSet(p *atomic.Pointer[epSet]) map[string]uint64 {
	s := p.Load()
	if s == nil {
		return nil
	}
	out := make(map[string]uint64, len(s.entries))
	for i := range s.entries {
		out[s.entries[i].ep] = s.entries[i].n.Load()
	}
	return out
}

// ewma is a lock-free exponentially weighted moving average.
type ewma struct {
	bits atomic.Uint64 // float64 bits; 0 = no observation yet
}

func (e *ewma) observe(d time.Duration) {
	ns := float64(d.Nanoseconds())
	for {
		old := e.bits.Load()
		var next float64
		if old == 0 {
			next = ns
		} else {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*ns
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (e *ewma) load() float64 {
	b := e.bits.Load()
	if b == 0 {
		return 0
	}
	return math.Float64frombits(b)
}

// ObjStats is one object's activity record.  It is installed in the
// object's telemetry slot, so it survives migration morphs (the slot
// rides the object identity, and a forwarded call on the morphed proxy
// keeps recording here until callers retarget).
type ObjStats struct {
	guid  string
	class string
	// obj is weak: the object itself holds this record strongly through
	// its telemetry slot, and a strong back-reference here would pin
	// every object ever observed for the recorder's lifetime.  Once the
	// object is collected, SnapshotObjects evicts the index entry, so
	// the recorder tracks the live working set, not history.
	obj weak.Pointer[vm.Object]

	localCalls  atomic.Uint64 // host-driven and collapsed same-node calls
	remoteCalls atomic.Uint64 // inbound invocations from identified peers
	anonCalls   atomic.Uint64 // inbound from peers serving no endpoint
	bytesIn     atomic.Uint64
	bytesOut    atomic.Uint64
	reads       atomic.Uint64         // calls the effect analysis proved read-only
	writes      atomic.Uint64         // calls that may mutate (incl. unprovable ones)
	callers     atomic.Pointer[epSet] // inbound calls by caller endpoint
	lat         ewma                  // in-gate service latency of inbound calls
}

// RecordInbound counts one served invocation: caller is the requesting
// node's serving endpoint ("" when unidentified), sizes are the
// estimated wire payloads, lat the service time measured under the
// object's gate (queueing for the gate is excluded, so a contended but
// fast object does not read as a slow one).
func (s *ObjStats) RecordInbound(caller string, reqBytes, respBytes int, lat time.Duration) {
	if caller == "" {
		s.anonCalls.Add(1)
	} else {
		s.remoteCalls.Add(1)
		bump(&s.callers, caller)
	}
	s.bytesIn.Add(uint64(reqBytes))
	s.bytesOut.Add(uint64(respBytes))
	s.lat.observe(lat)
}

// RecordLocal counts one same-address-space invocation (host CallOn or a
// proxy call collapsed onto the live local object).  Deliberately
// minimal — one atomic add, no clock read — because this is the
// post-convergence steady-state path.
func (s *ObjStats) RecordLocal() { s.localCalls.Add(1) }

// RecordEffect counts one invocation by its method-effect class: write
// when the verifier's analysis could not prove the method read-only.
// Recorded at the same sites as RecordInbound/RecordLocal; the
// read/write ratio is the ReplicateRule's eligibility signal
// (docs/REPLICATION.md).
func (s *ObjStats) RecordEffect(write bool) {
	if write {
		s.writes.Add(1)
	} else {
		s.reads.Add(1)
	}
}

// ClassStats is one class's activity record: where instances are
// created, and where this node's outgoing proxy calls for the class go.
type ClassStats struct {
	localCreates  atomic.Uint64         // factory make under local placement
	remoteCreates atomic.Pointer[epSet] // factory make under remote placement, by target
	servedCreates atomic.Pointer[epSet] // OpCreate served for peers, by caller
	servedAnon    atomic.Uint64
	outCalls      atomic.Pointer[epSet] // outgoing proxy calls, by callee endpoint
	outBytes      atomic.Uint64
	outLat        ewma // round-trip latency of outgoing proxy calls
}

// PeerStats is one remote endpoint's rollup: how often this node talks
// to it, how many bytes cross, and the smoothed round-trip time.  The
// RTT EWMA is the latency input of cost-based placement rules (benefit
// of migrating = remote calls × RTT) and of multi-hop evidence in the
// cluster plane; it is fed by outgoing proxy calls and by gossip pings,
// so a peer's RTT is known even before any invocation targets it.
//
// Rollups are per *peer*, never per socket: the transport pools several
// connections per endpoint, and an RTT fragmented across pool shards
// would hand CostAffinityRule and the gossip suspicion ladder N thin,
// noisy estimates instead of one coherent latency.  Today's recording
// sites (proxy calls, gossip pings) already pass canonical endpoints;
// forPeer folds through PeerKey anyway so the invariant holds even if
// a shard-qualified socket name (transport.Pool.ShardID) ever reaches
// a recording path — the guard the pool sharding made worth pinning.
type PeerStats struct {
	calls atomic.Uint64
	bytes atomic.Uint64
	rtt   ewma
}

// PeerKey canonicalises an endpoint for per-peer aggregation: the
// shard-qualified socket names the connection pool uses in diagnostics
// ("rrp://h:p#3", transport.Pool.ShardID) fold back to their peer
// endpoint, so observations from different pool shards land in one
// PeerStats.  Canonical endpoints pass through unchanged.
func PeerKey(endpoint string) string {
	if i := strings.LastIndexByte(endpoint, '#'); i >= 0 {
		return endpoint[:i]
	}
	return endpoint
}

// DedupStats counts the exactly-once machinery's work at one node: how
// often the per-caller dedup windows suppressed duplicate deliveries,
// and how much window memory is live.  Unlike the affinity plane the
// dedup table always records (the counters are the E12 chaos
// experiment's pass/fail evidence and the operator's only view of
// suppression working), so the struct lives here but is owned by the
// dedup table and merely attached to a Recorder when telemetry is on.
// All fields are atomics; recording never blocks.
type DedupStats struct {
	// ReplayHits counts duplicates answered from the replay cache (the
	// first attempt had completed; its recorded response was re-sent).
	ReplayHits atomic.Uint64
	// Parked counts duplicates that arrived while the first attempt was
	// still executing and waited for its completion instead of running.
	Parked atomic.Uint64
	// StaleRejected counts duplicates of calls already retired from the
	// window (acked or evicted): they are refused, never re-executed.
	StaleRejected atomic.Uint64
	// Retired counts entries dropped by ack watermark or cache eviction.
	Retired atomic.Uint64
	// Adopted counts entries seeded from migration snapshots.
	Adopted atomic.Uint64
	// Entries is the live completed-entry gauge across all windows;
	// EntriesHighWater its observed maximum.  Windows is the live
	// per-caller window count.
	Entries          atomic.Int64
	EntriesHighWater atomic.Int64
	Windows          atomic.Int64
}

// NoteEntries bumps the live-entry gauge by delta and folds the result
// into the high-water mark.
func (s *DedupStats) NoteEntries(delta int64) {
	n := s.Entries.Add(delta)
	for {
		hw := s.EntriesHighWater.Load()
		if n <= hw || s.EntriesHighWater.CompareAndSwap(hw, n) {
			return
		}
	}
}

// DedupSample is one node's dedup counters at snapshot time.
type DedupSample struct {
	ReplayHits       uint64 `json:"replay_hits"`
	Parked           uint64 `json:"parked_duplicates"`
	StaleRejected    uint64 `json:"stale_rejected"`
	Retired          uint64 `json:"retired"`
	Adopted          uint64 `json:"adopted"`
	Entries          int64  `json:"entries"`
	EntriesHighWater int64  `json:"entries_high_water"`
	Windows          int64  `json:"windows"`
}

// Suppressed returns the total duplicate deliveries that did not
// re-execute: replayed, parked-then-replayed, or rejected as stale.
func (s DedupSample) Suppressed() uint64 {
	return s.ReplayHits + s.Parked + s.StaleRejected
}

// Snapshot reads the counters.
func (s *DedupStats) Snapshot() DedupSample {
	return DedupSample{
		ReplayHits:       s.ReplayHits.Load(),
		Parked:           s.Parked.Load(),
		StaleRejected:    s.StaleRejected.Load(),
		Retired:          s.Retired.Load(),
		Adopted:          s.Adopted.Load(),
		Entries:          s.Entries.Load(),
		EntriesHighWater: s.EntriesHighWater.Load(),
		Windows:          s.Windows.Load(),
	}
}

// Recorder is one node's metrics plane.  The zero value is not usable;
// construct with NewRecorder.  A nil *Recorder is the disabled plane:
// the node runtime checks for nil before the (cheap) record calls.
type Recorder struct {
	objs    sync.Map // guid -> *ObjStats
	classes sync.Map // class -> *ClassStats
	peers   sync.Map // endpoint -> *PeerStats
	dedup   atomic.Pointer[DedupStats]
}

// AttachDedup publishes the node's dedup counters through the recorder,
// so the metrics plane exposes suppression alongside affinity.
func (r *Recorder) AttachDedup(s *DedupStats) { r.dedup.Store(s) }

// SnapshotDedup returns the attached dedup counters, or nil when the
// node runs without a dedup table.
func (r *Recorder) SnapshotDedup() *DedupSample {
	s := r.dedup.Load()
	if s == nil {
		return nil
	}
	sample := s.Snapshot()
	return &sample
}

// NewRecorder returns an empty metrics plane.
func NewRecorder() *Recorder { return &Recorder{} }

// ForObject returns obj's stats record, installing one (and indexing it
// under guid) on first use.  The fast path is a single atomic load from
// the object's slot.
func (r *Recorder) ForObject(obj *vm.Object, guid, class string) *ObjStats {
	if s, _ := obj.Telemetry().(*ObjStats); s != nil {
		return s
	}
	rec, installed := obj.TelemetryOrInit(func() any {
		return &ObjStats{guid: guid, class: class, obj: weak.Make(obj)}
	})
	s := rec.(*ObjStats)
	if installed {
		r.objs.Store(guid, s)
	}
	return s
}

// forClass returns class's stats record, creating it on first use.
func (r *Recorder) forClass(class string) *ClassStats {
	if s, ok := r.classes.Load(class); ok {
		return s.(*ClassStats)
	}
	s, _ := r.classes.LoadOrStore(class, &ClassStats{})
	return s.(*ClassStats)
}

// RecordCreateLocal counts one local factory construction of class.
func (r *Recorder) RecordCreateLocal(class string) {
	r.forClass(class).localCreates.Add(1)
}

// RecordCreateRemote counts one remote factory construction of class at
// target (this node asked target to instantiate).
func (r *Recorder) RecordCreateRemote(class, target string) {
	bump(&r.forClass(class).remoteCreates, target)
}

// RecordCreateServed counts one construction of class served for the
// peer at caller ("" when unidentified).
func (r *Recorder) RecordCreateServed(class, caller string) {
	cs := r.forClass(class)
	if caller == "" {
		cs.servedAnon.Add(1)
		return
	}
	bump(&cs.servedCreates, caller)
}

// RecordOutbound counts one outgoing proxy invocation on an instance (or
// the statics singleton) of class at endpoint.  The call also rolls into
// the per-peer stats, so every invocation refreshes the peer's RTT EWMA.
func (r *Recorder) RecordOutbound(class, endpoint string, bytes int, lat time.Duration) {
	cs := r.forClass(class)
	bump(&cs.outCalls, endpoint)
	cs.outBytes.Add(uint64(bytes))
	cs.outLat.observe(lat)
	ps := r.forPeer(endpoint)
	ps.calls.Add(1)
	ps.bytes.Add(uint64(bytes))
	ps.rtt.observe(lat)
}

// forPeer returns endpoint's rollup, creating it on first use.  The
// index key is always the PeerKey form, so per-socket names aggregate.
func (r *Recorder) forPeer(endpoint string) *PeerStats {
	endpoint = PeerKey(endpoint)
	if s, ok := r.peers.Load(endpoint); ok {
		return s.(*PeerStats)
	}
	s, _ := r.peers.LoadOrStore(endpoint, &PeerStats{})
	return s.(*PeerStats)
}

// RecordPeerRTT folds one observed round trip to endpoint into its RTT
// EWMA without counting an invocation — the gossip plane's heartbeat
// exchanges feed this, keeping RTT estimates fresh for idle peers.
func (r *Recorder) RecordPeerRTT(endpoint string, lat time.Duration) {
	r.forPeer(endpoint).rtt.observe(lat)
}

// ObjSample is one object's cumulative counters at snapshot time.
type ObjSample struct {
	GUID  string
	Class string
	Obj   *vm.Object
	// Local counts host-driven and same-node collapsed calls, Remote
	// calls from identified peers (itemised in Callers), Anon calls
	// from peers serving no endpoint.
	Local, Remote, Anon uint64
	Callers             map[string]uint64
	BytesIn, BytesOut   uint64
	// Reads counts calls proven read-only by the effect analysis,
	// Writes everything else; they partition the calls that went through
	// an effect-classified site (proxy dispatch and host CallOn).
	Reads, Writes uint64
	EWMALatencyNs float64
}

// Calls returns the total inbound invocation count.
func (s ObjSample) Calls() uint64 { return s.Local + s.Remote + s.Anon }

// SnapshotObjects returns cumulative per-object samples for every
// still-live object that has recorded at least one event.  Entries
// whose object has been collected are evicted as a side effect, so the
// index is bounded by the live working set.
func (r *Recorder) SnapshotObjects() []ObjSample {
	var out []ObjSample
	r.objs.Range(func(k, v any) bool {
		s := v.(*ObjStats)
		obj := s.obj.Value()
		if obj == nil {
			r.objs.Delete(k)
			return true
		}
		out = append(out, ObjSample{
			GUID:          s.guid,
			Class:         s.class,
			Obj:           obj,
			Local:         s.localCalls.Load(),
			Remote:        s.remoteCalls.Load(),
			Anon:          s.anonCalls.Load(),
			Callers:       snapshotSet(&s.callers),
			BytesIn:       s.bytesIn.Load(),
			BytesOut:      s.bytesOut.Load(),
			Reads:         s.reads.Load(),
			Writes:        s.writes.Load(),
			EWMALatencyNs: s.lat.load(),
		})
		return true
	})
	return out
}

// ClassSample is one class's cumulative counters at snapshot time.
type ClassSample struct {
	Class         string
	LocalCreates  uint64
	RemoteCreates map[string]uint64 // by construction target endpoint
	ServedCreates map[string]uint64 // by requesting peer endpoint
	ServedAnon    uint64
	OutCalls      map[string]uint64 // by callee endpoint
	OutBytes      uint64
	OutEWMANs     float64
}

// SnapshotClasses returns cumulative per-class samples.
func (r *Recorder) SnapshotClasses() []ClassSample {
	var out []ClassSample
	r.classes.Range(func(k, v any) bool {
		s := v.(*ClassStats)
		out = append(out, ClassSample{
			Class:         k.(string),
			LocalCreates:  s.localCreates.Load(),
			RemoteCreates: snapshotSet(&s.remoteCreates),
			ServedCreates: snapshotSet(&s.servedCreates),
			ServedAnon:    s.servedAnon.Load(),
			OutCalls:      snapshotSet(&s.outCalls),
			OutBytes:      s.outBytes.Load(),
			OutEWMANs:     s.outLat.load(),
		})
		return true
	})
	return out
}

// PeerSample is one endpoint's cumulative rollup at snapshot time.
type PeerSample struct {
	Endpoint  string
	Calls     uint64
	Bytes     uint64
	RTTEWMANs float64
}

// SnapshotPeers returns cumulative per-peer samples.
func (r *Recorder) SnapshotPeers() []PeerSample {
	var out []PeerSample
	r.peers.Range(func(k, v any) bool {
		s := v.(*PeerStats)
		out = append(out, PeerSample{
			Endpoint:  k.(string),
			Calls:     s.calls.Load(),
			Bytes:     s.bytes.Load(),
			RTTEWMANs: s.rtt.load(),
		})
		return true
	})
	return out
}

// PeerRTTs returns the current RTT EWMA per endpoint, in nanoseconds —
// the form the adapt engine's cost rules consume.
func (r *Recorder) PeerRTTs() map[string]float64 {
	out := map[string]float64{}
	r.peers.Range(func(k, v any) bool {
		if ns := v.(*PeerStats).rtt.load(); ns > 0 {
			out[k.(string)] = ns
		}
		return true
	})
	return out
}

// RequestSize estimates req's wire payload in bytes (codec-independent:
// the adaptive rules need relative magnitudes, not exact frame lengths).
func RequestSize(req *wire.Request) int {
	n := 16 + len(req.GUID) + len(req.Class) + len(req.Method) + len(req.Endpoint) + len(req.Caller)
	for i := range req.Args {
		n += valueSize(&req.Args[i])
	}
	for i := range req.Fields {
		n += len(req.Fields[i].Name) + valueSize(&req.Fields[i].Value)
	}
	if req.Token != nil {
		n += len(req.Token.Caller) + 12
	}
	return n
}

// ResponseSize estimates resp's wire payload in bytes.
func ResponseSize(resp *wire.Response) int {
	n := 8 + len(resp.ExClass) + len(resp.ExMsg) + len(resp.Err) + valueSize(&resp.Result)
	if resp.Redirect != nil {
		n += refSize(resp.Redirect)
	}
	return n
}

func valueSize(v *wire.Value) int {
	switch v.Kind {
	case wire.KString:
		return 1 + len(v.Str)
	case wire.KRef:
		if v.Ref == nil {
			return 1
		}
		return 1 + refSize(v.Ref)
	case wire.KArray:
		n := 1 + len(v.Elem)
		for i := range v.Arr {
			n += valueSize(&v.Arr[i])
		}
		return n
	default:
		return 9 // kind byte + an 8-byte payload upper bound
	}
}

func refSize(r *wire.RemoteRef) int {
	return len(r.GUID) + len(r.Endpoint) + len(r.Proto) + len(r.Target) + 1
}
