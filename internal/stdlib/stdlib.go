// Package stdlib defines the built-in system class library (the sys.*
// hierarchy).  It plays the role of java.lang/java.io in the paper: a set
// of classes with VM-level semantics — throwables, console I/O, native
// methods — that are available to every program and, per §2.4, are never
// transformable.
//
// The class *declarations* live here so that the front end (type
// checking), the transformer (substitutability analysis) and the verifier
// can all see them without importing the VM.  The native *implementations*
// are registered by internal/vm.
package stdlib

import "rafda/internal/ir"

// Names of the system classes, beyond those aliased in package ir.
const (
	ExceptionClass        = "sys.Exception"
	RuntimeExceptionClass = "sys.RuntimeException"
	NullPointerClass      = "sys.NullPointerException"
	ArithmeticClass       = "sys.ArithmeticException"
	ClassCastClass        = "sys.ClassCastException"
	IndexBoundsClass      = "sys.IndexOutOfBoundsException"
	// RemoteException signals network failure on a proxy call — the §4
	// caveat that distribution weakens strict semantic equivalence.
	RemoteExceptionClass = "sys.RemoteException"
	StringsClass         = "sys.Strings"
	RandomClass          = "sys.Random"
	ClockClass           = "sys.Clock"
)

// Program returns a fresh copy of the system library.  Callers may merge it
// into an application program; each call builds new Class values so that
// callers can never alias each other's copies.
func Program() *ir.Program {
	p := ir.NewProgram()
	p.MustAdd(objectClass())
	p.MustAdd(throwable(ir.ThrowableClass, ir.ObjectClass))
	p.MustAdd(throwable(ExceptionClass, ir.ThrowableClass))
	p.MustAdd(throwable(RuntimeExceptionClass, ir.ThrowableClass))
	p.MustAdd(throwable(NullPointerClass, RuntimeExceptionClass))
	p.MustAdd(throwable(ArithmeticClass, RuntimeExceptionClass))
	p.MustAdd(throwable(ClassCastClass, RuntimeExceptionClass))
	p.MustAdd(throwable(IndexBoundsClass, RuntimeExceptionClass))
	p.MustAdd(throwable(RemoteExceptionClass, RuntimeExceptionClass))
	p.MustAdd(systemClass())
	p.MustAdd(stringsClass())
	p.MustAdd(mathClass())
	p.MustAdd(randomClass())
	p.MustAdd(clockClass())
	return p
}

// IsSystemClass reports whether name belongs to the sys.* hierarchy.
func IsSystemClass(name string) bool {
	return len(name) > 4 && name[:4] == "sys."
}

func nativeStatic(name string, ret ir.Type, params ...ir.Type) *ir.Method {
	return &ir.Method{
		Name:   name,
		Params: params,
		Return: ret,
		Static: true,
		Native: true,
		Access: ir.AccessPublic,
	}
}

func nativeInstance(name string, ret ir.Type, params ...ir.Type) *ir.Method {
	return &ir.Method{
		Name:   name,
		Params: params,
		Return: ret,
		Native: true,
		Access: ir.AccessPublic,
	}
}

func objectClass() *ir.Class {
	return &ir.Class{
		Name:    ir.ObjectClass,
		Special: true,
		Methods: []*ir.Method{
			// Default constructor: does nothing.
			{Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic,
				Code: []ir.Instr{{Op: ir.OpReturn}}, MaxLocals: 1},
			nativeInstance("toString", ir.String),
			nativeInstance("hashCode", ir.Int),
			nativeInstance("getClass", ir.String),
		},
	}
}

// throwable builds one class of the throwable hierarchy.  Each carries a
// message and a constructor taking it; getMessage is plain bytecode.
func throwable(name, super string) *ir.Class {
	ctor := &ir.Method{
		Name:      ir.ConstructorName,
		Params:    []ir.Type{ir.String},
		Return:    ir.Void,
		Access:    ir.AccessPublic,
		MaxLocals: 2,
		Code: []ir.Instr{
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpLoad, A: 1},
			{Op: ir.OpPutField, Owner: name, Member: "message"},
			{Op: ir.OpReturn},
		},
	}
	defCtor := &ir.Method{
		Name:      ir.ConstructorName,
		Return:    ir.Void,
		Access:    ir.AccessPublic,
		MaxLocals: 1,
		Code: []ir.Instr{
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpConstString, Str: ""},
			{Op: ir.OpPutField, Owner: name, Member: "message"},
			{Op: ir.OpReturn},
		},
	}
	getMsg := &ir.Method{
		Name:      "getMessage",
		Return:    ir.String,
		Access:    ir.AccessPublic,
		MaxLocals: 1,
		Code: []ir.Instr{
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpGetField, Owner: name, Member: "message"},
			{Op: ir.OpReturnValue},
		},
	}
	return &ir.Class{
		Name:    name,
		Super:   super,
		Special: true,
		Fields: []ir.Field{
			{Name: "message", Type: ir.String, Access: ir.AccessPrivate},
		},
		Methods: []*ir.Method{defCtor, ctor, getMsg},
	}
}

func systemClass() *ir.Class {
	return &ir.Class{
		Name:    ir.SystemClass,
		Super:   ir.ObjectClass,
		Special: true,
		Methods: []*ir.Method{
			nativeStatic("println", ir.Void, ir.String),
			nativeStatic("print", ir.Void, ir.String),
			nativeStatic("printInt", ir.Void, ir.Int),
		},
	}
}

func stringsClass() *ir.Class {
	return &ir.Class{
		Name:    StringsClass,
		Super:   ir.ObjectClass,
		Special: true,
		Methods: []*ir.Method{
			nativeStatic("length", ir.Int, ir.String),
			nativeStatic("charAt", ir.Int, ir.String, ir.Int),
			nativeStatic("substring", ir.String, ir.String, ir.Int, ir.Int),
			nativeStatic("indexOf", ir.Int, ir.String, ir.String),
			nativeStatic("ofInt", ir.String, ir.Int),
			nativeStatic("ofFloat", ir.String, ir.Float),
			nativeStatic("ofBool", ir.String, ir.Bool),
			nativeStatic("parseInt", ir.Int, ir.String),
			nativeStatic("equals", ir.Bool, ir.String, ir.String),
			nativeStatic("repeat", ir.String, ir.String, ir.Int),
		},
	}
}

func mathClass() *ir.Class {
	return &ir.Class{
		Name:    ir.MathClass,
		Super:   ir.ObjectClass,
		Special: true,
		Methods: []*ir.Method{
			nativeStatic("abs", ir.Int, ir.Int),
			nativeStatic("min", ir.Int, ir.Int, ir.Int),
			nativeStatic("max", ir.Int, ir.Int, ir.Int),
			nativeStatic("sqrt", ir.Float, ir.Float),
			nativeStatic("pow", ir.Float, ir.Float, ir.Float),
			nativeStatic("floor", ir.Int, ir.Float),
			nativeStatic("toFloat", ir.Float, ir.Int),
		},
	}
}

// randomClass is a deterministic linear-congruential generator exposed as
// pure functions: next(state) -> new state, value(state, bound) -> [0,bound).
// Determinism keeps the semantic-equivalence experiments exact.
func randomClass() *ir.Class {
	return &ir.Class{
		Name:    RandomClass,
		Super:   ir.ObjectClass,
		Special: true,
		Methods: []*ir.Method{
			nativeStatic("next", ir.Int, ir.Int),
			nativeStatic("value", ir.Int, ir.Int, ir.Int),
		},
	}
}

func clockClass() *ir.Class {
	return &ir.Class{
		Name:    ClockClass,
		Super:   ir.ObjectClass,
		Special: true,
		Methods: []*ir.Method{
			nativeStatic("nanos", ir.Int),
			nativeStatic("millis", ir.Int),
			// sleepMicros blocks the calling execution without releasing
			// its locks — program-level waiting between heap accesses.
			// The E8 experiment uses it to model per-call blocking work.
			nativeStatic("sleepMicros", ir.Void, ir.Int),
		},
	}
}
