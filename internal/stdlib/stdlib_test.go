package stdlib

import (
	"testing"

	"rafda/internal/ir"
)

func TestProgramIsFreshPerCall(t *testing.T) {
	a := Program()
	b := Program()
	ca, cb := a.Class(ir.ObjectClass), b.Class(ir.ObjectClass)
	if ca == cb {
		t.Fatal("Program() returns aliased classes")
	}
	ca.Name = "mutated"
	if b.Class(ir.ObjectClass).Name != ir.ObjectClass {
		t.Fatal("mutation leaked across copies")
	}
}

func TestHierarchyShape(t *testing.T) {
	p := Program()
	for _, tc := range []struct {
		class, ancestor string
	}{
		{ExceptionClass, ir.ThrowableClass},
		{NullPointerClass, RuntimeExceptionClass},
		{RemoteExceptionClass, ir.ThrowableClass},
		{ArithmeticClass, ir.ThrowableClass},
	} {
		if !p.IsSubclassOf(tc.class, tc.ancestor) {
			t.Errorf("%s should extend %s", tc.class, tc.ancestor)
		}
	}
	// Every class is special (never transformable).
	for _, c := range p.Classes() {
		if !c.Special {
			t.Errorf("%s not marked special", c.Name)
		}
	}
}

func TestThrowablesHaveMessageProtocol(t *testing.T) {
	p := Program()
	for _, name := range []string{ir.ThrowableClass, ExceptionClass, NullPointerClass, RemoteExceptionClass} {
		c := p.Class(name)
		if c == nil {
			t.Fatalf("missing %s", name)
		}
		if c.Method("getMessage", 0) == nil {
			t.Errorf("%s lacks getMessage", name)
		}
		if c.Method(ir.ConstructorName, 1) == nil {
			t.Errorf("%s lacks message constructor", name)
		}
	}
}

func TestIsSystemClass(t *testing.T) {
	if !IsSystemClass("sys.Object") || !IsSystemClass("sys.Anything") {
		t.Fatal("sys.* not recognised")
	}
	if IsSystemClass("system.X") || IsSystemClass("sys") || IsSystemClass("X") {
		t.Fatal("false positive")
	}
}
