package minijava

import (
	"fmt"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// generate fills in method bodies on the signature program.  Checking has
// already annotated the AST (types, slots, resolutions), so generation is
// a straightforward walk.
func (c *checker) generate() error {
	for _, f := range c.files {
		for _, cd := range f.Classes {
			if err := c.genClass(cd); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) genClass(cd *ClassDecl) error {
	irc := c.sig.Class(cd.Name)
	for _, md := range cd.Methods {
		if md.Native || md.Abstract || cd.IsInterface {
			continue
		}
		irm := irc.Method(methodIRName(md), len(md.Params))
		g := &codegen{c: c, class: cd, irClass: irc, method: md, irMethod: irm, b: ir.NewCodeBuilder()}
		if err := g.genMethod(); err != nil {
			return err
		}
	}
	// <clinit> from static field initialisers, in declaration order.
	if clinit := irc.StaticInit(); clinit != nil {
		g := &codegen{
			c: c, class: cd, irClass: irc,
			method:   &MethodDecl{Static: true, Return: TypeExpr{Name: "void"}},
			irMethod: clinit,
			b:        ir.NewCodeBuilder(),
		}
		for _, fd := range cd.Fields {
			if !fd.Static || fd.Init == nil {
				continue
			}
			ft, _ := c.resolveType(fd.Type)
			g.genExpr(fd.Init)
			g.convert(fd.Init.T(), ft)
			g.b.PutStatic(cd.Name, fd.Name)
		}
		g.b.Return()
		clinit.Code = g.b.MustBuild()
		clinit.MaxLocals = g.b.MaxLocals()
		clinit.Handlers = g.handlers
	}
	return nil
}

type loopLabels struct {
	brk  string
	cont string
}

type codegen struct {
	c        *checker
	class    *ClassDecl
	irClass  *ir.Class
	method   *MethodDecl
	irMethod *ir.Method
	b        *ir.CodeBuilder
	handlers []ir.TryHandler
	loops    []loopLabels
	labelSeq int
}

func (g *codegen) label(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s%d", prefix, g.labelSeq)
}

func (g *codegen) genMethod() error {
	nparams := len(g.method.Params)
	base := 0
	if !g.irMethod.Static {
		base = 1
	}
	g.b.SetMinLocals(base + nparams)

	body := g.method.Body
	if g.method.IsCtor {
		// Super constructor call: explicit, or implicit no-arg.
		if len(body) > 0 {
			if sc, ok := body[0].(*SuperCallStmt); ok {
				g.b.Load(0)
				superCls := g.c.sig.Class(g.irClass.Super)
				ctor := superCls.Method(ir.ConstructorName, len(sc.Args))
				for i, a := range sc.Args {
					g.genExpr(a)
					g.convert(a.T(), ctor.Params[i])
				}
				g.b.Invoke(ir.OpInvokeSpecial, g.irClass.Super, ir.ConstructorName, len(sc.Args))
				body = body[1:]
			} else {
				g.implicitSuper()
			}
		} else {
			g.implicitSuper()
		}
		// Instance field initialisers run after super, before the body.
		for _, fd := range g.class.Fields {
			if fd.Static || fd.Init == nil {
				continue
			}
			ft, _ := g.c.resolveType(fd.Type)
			g.b.Load(0)
			g.genExpr(fd.Init)
			g.convert(fd.Init.T(), ft)
			g.b.PutField(g.class.Name, fd.Name)
		}
	}

	g.genStmts(body)

	// Implicit trailing return for void methods; non-void methods that
	// fall off the end fault at run time (no static flow analysis).
	if g.irMethod.Return.IsVoid() {
		g.b.Return()
	} else {
		g.b.New(stdlib.RuntimeExceptionClass)
		g.b.Op(ir.OpDup)
		g.b.ConstString("missing return in " + g.class.Name + "." + g.method.Name)
		g.b.Invoke(ir.OpInvokeSpecial, stdlib.RuntimeExceptionClass, ir.ConstructorName, 1)
		g.b.Op(ir.OpThrow)
	}

	code, err := g.b.Build()
	if err != nil {
		return err
	}
	g.irMethod.Code = code
	g.irMethod.MaxLocals = g.b.MaxLocals()
	g.irMethod.Handlers = g.handlers
	return nil
}

func (g *codegen) implicitSuper() {
	super := g.irClass.Super
	if super == "" {
		return
	}
	superCls := g.c.sig.Class(super)
	if superCls == nil || superCls.Method(ir.ConstructorName, 0) == nil {
		return
	}
	g.b.Load(0)
	g.b.Invoke(ir.OpInvokeSpecial, super, ir.ConstructorName, 0)
}

func (g *codegen) genStmts(stmts []Stmt) {
	for _, s := range stmts {
		g.genStmt(s)
	}
}

func (g *codegen) genStmt(s Stmt) {
	switch st := s.(type) {
	case *VarDeclStmt:
		t, _ := g.c.resolveType(st.Type)
		if st.Init != nil {
			g.genExpr(st.Init)
			g.convert(st.Init.T(), t)
		} else {
			g.genZero(t)
		}
		g.b.Store(st.Slot)

	case *AssignStmt:
		g.genAssign(st.LHS, st.RHS)

	case *ExprStmt:
		g.genExpr(st.E)
		if !st.E.T().IsVoid() {
			g.b.Op(ir.OpPop)
		}

	case *IfStmt:
		elseL := g.label("else")
		endL := g.label("endif")
		g.genExpr(st.Cond)
		g.b.JumpIfNot(elseL)
		g.genStmts(st.Then)
		g.b.Jump(endL)
		g.b.Label(elseL)
		if st.Else != nil {
			g.genStmts(st.Else)
		}
		g.b.Label(endL)

	case *WhileStmt:
		condL := g.label("while")
		endL := g.label("endwhile")
		g.b.Label(condL)
		g.genExpr(st.Cond)
		g.b.JumpIfNot(endL)
		g.loops = append(g.loops, loopLabels{brk: endL, cont: condL})
		g.genStmts(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		g.b.Jump(condL)
		g.b.Label(endL)

	case *ForStmt:
		condL := g.label("for")
		postL := g.label("forpost")
		endL := g.label("endfor")
		if st.Init != nil {
			g.genStmt(st.Init)
		}
		g.b.Label(condL)
		if st.Cond != nil {
			g.genExpr(st.Cond)
			g.b.JumpIfNot(endL)
		}
		g.loops = append(g.loops, loopLabels{brk: endL, cont: postL})
		g.genStmts(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		g.b.Label(postL)
		if st.Post != nil {
			g.genStmt(st.Post)
		}
		g.b.Jump(condL)
		g.b.Label(endL)

	case *ReturnStmt:
		if st.E == nil {
			g.b.Return()
			return
		}
		g.genExpr(st.E)
		g.convert(st.E.T(), g.irMethod.Return)
		g.b.ReturnValue()

	case *BreakStmt:
		g.b.Jump(g.loops[len(g.loops)-1].brk)
	case *ContinueStmt:
		g.b.Jump(g.loops[len(g.loops)-1].cont)

	case *ThrowStmt:
		g.genExpr(st.E)
		g.b.Op(ir.OpThrow)

	case *TryStmt:
		g.genTry(st)

	case *BlockStmt:
		g.genStmts(st.Body)

	default:
		panic(fmt.Sprintf("codegen: unknown statement %T", s))
	}
}

func (g *codegen) genTry(st *TryStmt) {
	endL := g.label("endtry")
	start := g.b.PC()
	g.genStmts(st.Body)
	end := g.b.PC()
	g.b.Jump(endL)

	for i := range st.Catches {
		cc := &st.Catches[i]
		target := g.b.PC()
		g.handlers = append(g.handlers, ir.TryHandler{
			Start: start, End: end, Target: target, CatchClass: cc.Class,
		})
		g.b.Store(cc.Slot)
		g.genStmts(cc.Body)
		g.b.Jump(endL)
	}
	g.b.Label(endL)
}

func (g *codegen) genAssign(lhs Expr, rhs Expr) {
	switch t := lhs.(type) {
	case *Ident:
		switch t.Kind {
		case IdentLocal:
			g.genExpr(rhs)
			g.convert(rhs.T(), t.T())
			g.b.Store(t.Slot)
		case IdentField:
			g.b.Load(0)
			g.genExpr(rhs)
			g.convert(rhs.T(), t.T())
			g.b.PutField(t.Owner, t.Name)
		case IdentStatic:
			g.genExpr(rhs)
			g.convert(rhs.T(), t.T())
			g.b.PutStatic(t.Owner, t.Name)
		default:
			panic("codegen: unresolved ident " + t.Name)
		}

	case *FieldAccess:
		if t.Static {
			g.genExpr(rhs)
			g.convert(rhs.T(), t.T())
			g.b.PutStatic(t.Owner, t.Name)
			return
		}
		g.genExpr(t.Recv)
		g.genExpr(rhs)
		g.convert(rhs.T(), t.T())
		g.b.PutField(t.Owner, t.Name)

	case *IndexExpr:
		g.genExpr(t.Arr)
		g.genExpr(t.Index)
		g.genExpr(rhs)
		g.convert(rhs.T(), t.T())
		g.b.Op(ir.OpAStore)

	default:
		panic("codegen: bad assignment target")
	}
}

// convert emits the int->float widening when needed.
func (g *codegen) convert(from, to ir.Type) {
	if from.Kind == ir.KindInt && to.Kind == ir.KindFloat {
		g.b.Cast(ir.Float)
	}
}

func (g *codegen) genZero(t ir.Type) {
	switch t.Kind {
	case ir.KindInt:
		g.b.ConstInt(0)
	case ir.KindFloat:
		g.b.ConstFloat(0)
	case ir.KindBool:
		g.b.ConstBool(false)
	case ir.KindString:
		g.b.ConstString("")
	default:
		g.b.ConstNull(t)
	}
}

func (g *codegen) genExpr(e Expr) {
	switch t := e.(type) {
	case *IntLit:
		g.b.ConstInt(t.V)
	case *FloatLit:
		g.b.ConstFloat(t.V)
	case *StringLit:
		g.b.ConstString(t.V)
	case *BoolLit:
		g.b.ConstBool(t.V)
	case *NullLit:
		g.b.ConstNull(ir.Ref(ir.ObjectClass))
	case *ThisExpr:
		g.b.Load(0)

	case *Ident:
		switch t.Kind {
		case IdentLocal:
			g.b.Load(t.Slot)
		case IdentField:
			g.b.Load(0)
			g.b.GetField(t.Owner, t.Name)
		case IdentStatic:
			g.b.GetStatic(t.Owner, t.Name)
		default:
			panic("codegen: unresolved ident " + t.Name)
		}

	case *FieldAccess:
		if t.Static {
			g.b.GetStatic(t.Owner, t.Name)
			return
		}
		g.genExpr(t.Recv)
		if t.IsArrayLen {
			g.b.Op(ir.OpArrayLen)
			return
		}
		g.b.GetField(t.Owner, t.Name)

	case *CallExpr:
		g.genCall(t)

	case *NewExpr:
		cls := g.c.sig.Class(t.Class)
		ctor := cls.Method(ir.ConstructorName, len(t.Args))
		g.b.New(t.Class)
		g.b.Op(ir.OpDup)
		for i, a := range t.Args {
			g.genExpr(a)
			g.convert(a.T(), ctor.Params[i])
		}
		g.b.Invoke(ir.OpInvokeSpecial, t.Class, ir.ConstructorName, len(t.Args))

	case *NewArrayExpr:
		elem, _ := g.c.resolveType(t.Elem)
		g.genExpr(t.Len)
		te := elem
		g.b.Emit(ir.Instr{Op: ir.OpNewArray, TypeRef: &te})

	case *IndexExpr:
		g.genExpr(t.Arr)
		g.genExpr(t.Index)
		g.b.Op(ir.OpALoad)

	case *UnaryExpr:
		g.genExpr(t.E)
		if t.Op == "-" {
			g.b.Op(ir.OpNeg)
		} else {
			g.b.Op(ir.OpNot)
		}

	case *BinaryExpr:
		g.genBinary(t)

	case *CastExpr:
		g.genExpr(t.E)
		target, _ := g.c.resolveType(t.Target)
		if !t.E.T().Equal(target) {
			g.b.Cast(target)
		}

	case *InstanceOfExpr:
		g.genExpr(t.E)
		te := ir.Ref(t.Class)
		g.b.Emit(ir.Instr{Op: ir.OpInstanceOf, TypeRef: &te})

	default:
		panic(fmt.Sprintf("codegen: unknown expression %T", e))
	}
}

func (g *codegen) genCall(t *CallExpr) {
	m := g.c.sig.Class(t.Owner).Method(t.Method, len(t.Args))
	if t.Static {
		for i, a := range t.Args {
			g.genExpr(a)
			g.convert(a.T(), m.Params[i])
		}
		g.b.Invoke(ir.OpInvokeStatic, t.Owner, t.Method, len(t.Args))
		return
	}
	if t.ImplicitThis {
		g.b.Load(0)
	} else {
		g.genExpr(t.Recv)
	}
	for i, a := range t.Args {
		g.genExpr(a)
		g.convert(a.T(), m.Params[i])
	}
	op := ir.OpInvokeVirtual
	if t.OnInterface {
		op = ir.OpInvokeInterface
	}
	g.b.Invoke(op, t.Owner, t.Method, len(t.Args))
}

func (g *codegen) genBinary(t *BinaryExpr) {
	switch t.Op {
	case "&&":
		falseL := g.label("andF")
		endL := g.label("andE")
		g.genExpr(t.L)
		g.b.JumpIfNot(falseL)
		g.genExpr(t.R)
		g.b.Jump(endL)
		g.b.Label(falseL)
		g.b.ConstBool(false)
		g.b.Label(endL)
		return
	case "||":
		trueL := g.label("orT")
		endL := g.label("orE")
		g.genExpr(t.L)
		g.b.JumpIf(trueL)
		g.genExpr(t.R)
		g.b.Jump(endL)
		g.b.Label(trueL)
		g.b.ConstBool(true)
		g.b.Label(endL)
		return
	}

	if t.IsConcat {
		g.genConcatOperand(t.L)
		g.genConcatOperand(t.R)
		g.b.Op(ir.OpConcat)
		return
	}

	g.genExpr(t.L)
	g.genExpr(t.R)
	switch t.Op {
	case "+":
		g.b.Op(ir.OpAdd)
	case "-":
		g.b.Op(ir.OpSub)
	case "*":
		g.b.Op(ir.OpMul)
	case "/":
		g.b.Op(ir.OpDiv)
	case "%":
		g.b.Op(ir.OpRem)
	case "==":
		g.b.Op(ir.OpCmpEq)
	case "!=":
		g.b.Op(ir.OpCmpNe)
	case "<":
		g.b.Op(ir.OpCmpLt)
	case "<=":
		g.b.Op(ir.OpCmpLe)
	case ">":
		g.b.Op(ir.OpCmpGt)
	case ">=":
		g.b.Op(ir.OpCmpGe)
	default:
		panic("codegen: bad binary op " + t.Op)
	}
}

// genConcatOperand emits an operand of string concatenation, converting
// non-strings via the sys.Strings natives (or toString for objects).
func (g *codegen) genConcatOperand(e Expr) {
	g.genExpr(e)
	switch e.T().Kind {
	case ir.KindString:
	case ir.KindInt:
		g.b.Invoke(ir.OpInvokeStatic, stdlib.StringsClass, "ofInt", 1)
	case ir.KindFloat:
		g.b.Invoke(ir.OpInvokeStatic, stdlib.StringsClass, "ofFloat", 1)
	case ir.KindBool:
		g.b.Invoke(ir.OpInvokeStatic, stdlib.StringsClass, "ofBool", 1)
	case ir.KindRef:
		g.b.Invoke(ir.OpInvokeVirtual, ir.ObjectClass, "toString", 0)
	default:
		panic("codegen: non-concatable operand")
	}
}
