package minijava

import (
	"fmt"

	"rafda/internal/ir"
)

// ParseError reports a syntax error with its position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses one compilation unit.
func Parse(file, src string) (*File, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: file}
	f := &File{Name: file}
	for !p.atEOF() {
		cd, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		f.Classes = append(f.Classes, cd)
	}
	return f, nil
}

type parser struct {
	toks []Token
	pos  int
	file string
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) peekAt(n int) Token {
	i := p.pos + n
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[i]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(pos Pos, format string, a ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, a...)}
}

func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf(p.cur().Pos, "expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return Token{}, p.errf(t.Pos, "expected identifier, found %s", t)
	}
	p.advance()
	return t, nil
}

type modifiers struct {
	access   ir.Access
	static   bool
	final    bool
	native   bool
	abstract bool
}

func (p *parser) modifiers() modifiers {
	m := modifiers{access: ir.AccessPackage}
	for {
		switch {
		case p.acceptKw("public"):
			m.access = ir.AccessPublic
		case p.acceptKw("protected"):
			m.access = ir.AccessProtected
		case p.acceptKw("private"):
			m.access = ir.AccessPrivate
		case p.acceptKw("static"):
			m.static = true
		case p.acceptKw("final"):
			m.final = true
		case p.acceptKw("native"):
			m.native = true
		case p.acceptKw("abstract"):
			m.abstract = true
		default:
			return m
		}
	}
}

func (p *parser) classDecl() (*ClassDecl, error) {
	mods := p.modifiers()
	isIface := false
	switch {
	case p.acceptKw("class"):
	case p.acceptKw("interface"):
		isIface = true
	default:
		return nil, p.errf(p.cur().Pos, "expected 'class' or 'interface', found %s", p.cur())
	}
	nameTok := p.cur()
	name, _, err := p.qualifiedNameLoose()
	if err != nil {
		return nil, err
	}
	cd := &ClassDecl{
		Pos:         nameTok.Pos,
		Name:        name,
		IsInterface: isIface,
		Abstract:    mods.abstract,
		Final:       mods.final,
	}
	if p.acceptKw("extends") {
		s, _, err := p.qualifiedNameLoose()
		if err != nil {
			return nil, err
		}
		cd.Super = s
	}
	if p.acceptKw("implements") {
		for {
			s, _, err := p.qualifiedNameLoose()
			if err != nil {
				return nil, err
			}
			cd.Interfaces = append(cd.Interfaces, s)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errf(p.cur().Pos, "unexpected end of input in class %s", cd.Name)
		}
		if err := p.member(cd); err != nil {
			return nil, err
		}
	}
	p.advance() // }
	return cd, nil
}

// qualifiedNameLoose parses IDENT ("." IDENT)* unconditionally; used in
// declaration headers where dotted names are unambiguous.
func (p *parser) qualifiedNameLoose() (string, Pos, error) {
	t, err := p.expectIdent()
	if err != nil {
		return "", Pos{}, err
	}
	name := t.Text
	for p.isPunct(".") && p.peekAt(1).Kind == TokIdent {
		p.advance()
		nt, _ := p.expectIdent()
		name += "." + nt.Text
	}
	return name, t.Pos, nil
}

func (p *parser) member(cd *ClassDecl) error {
	mods := p.modifiers()

	// Constructor: Name "(" — the declared name equals the class's last
	// segment.
	if p.cur().Kind == TokIdent && p.cur().Text == lastSegment(cd.Name) &&
		p.peekAt(1).Kind == TokPunct && p.peekAt(1).Text == "(" {
		ctorTok := p.advance()
		params, err := p.params()
		if err != nil {
			return err
		}
		body, err := p.block()
		if err != nil {
			return err
		}
		cd.Methods = append(cd.Methods, &MethodDecl{
			Pos:    ctorTok.Pos,
			Name:   ir.ConstructorName,
			Params: params,
			Return: TypeExpr{Name: "void", Pos: ctorTok.Pos},
			Access: mods.access,
			IsCtor: true,
			Body:   body,
		})
		return nil
	}

	typ, err := p.typeExpr()
	if err != nil {
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}

	if p.isPunct("(") {
		params, err := p.params()
		if err != nil {
			return err
		}
		md := &MethodDecl{
			Pos:      nameTok.Pos,
			Name:     nameTok.Text,
			Params:   params,
			Return:   typ,
			Static:   mods.static,
			Native:   mods.native,
			Abstract: mods.abstract || cd.IsInterface,
			Final:    mods.final,
			Access:   mods.access,
		}
		if md.Native || md.Abstract {
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		} else {
			body, err := p.block()
			if err != nil {
				return err
			}
			md.Body = body
		}
		cd.Methods = append(cd.Methods, md)
		return nil
	}

	// Field.
	fd := &FieldDecl{
		Pos:    nameTok.Pos,
		Name:   nameTok.Text,
		Type:   typ,
		Static: mods.static,
		Final:  mods.final,
		Access: mods.access,
	}
	if p.acceptPunct("=") {
		e, err := p.expr()
		if err != nil {
			return err
		}
		fd.Init = e
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	cd.Fields = append(cd.Fields, fd)
	return nil
}

func lastSegment(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

func (p *parser) params() ([]Param, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []Param
	for !p.isPunct(")") {
		typ, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, Param{Pos: nameTok.Pos, Name: nameTok.Text, Type: typ})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) typeExpr() (TypeExpr, error) {
	t := p.cur()
	var name string
	switch {
	case t.Kind == TokKeyword && isTypeKeyword(t.Text):
		name = t.Text
		p.advance()
	case t.Kind == TokIdent:
		n, _, err := p.qualifiedNameLoose()
		if err != nil {
			return TypeExpr{}, err
		}
		name = n
	default:
		return TypeExpr{}, p.errf(t.Pos, "expected type, found %s", t)
	}
	te := TypeExpr{Pos: t.Pos, Name: name}
	for p.isPunct("[") && p.peekAt(1).Kind == TokPunct && p.peekAt(1).Text == "]" {
		p.advance()
		p.advance()
		te.Array++
	}
	return te, nil
}

func isTypeKeyword(s string) bool {
	switch s {
	case "void", "int", "long", "float", "double", "bool", "boolean", "string":
		return true
	}
	return false
}

func (p *parser) block() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errf(p.cur().Pos, "unexpected end of input in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.advance() // }
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{Pos: t.Pos, Body: body}, nil

	case p.isKw("if"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		thenS, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		var elseS []Stmt
		if p.acceptKw("else") {
			elseS, err = p.stmtAsBlock()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Pos: t.Pos, Cond: cond, Then: thenS, Else: elseS}, nil

	case p.isKw("while"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil

	case p.isKw("for"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var initS, postS Stmt
		var cond Expr
		var err error
		if !p.isPunct(";") {
			initS, err = p.simpleStmtNoSemi()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(";") {
			cond, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			postS, err = p.simpleStmtNoSemi()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Pos: t.Pos, Init: initS, Cond: cond, Post: postS, Body: body}, nil

	case p.isKw("return"):
		p.advance()
		var e Expr
		var err error
		if !p.isPunct(";") {
			e, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: t.Pos, E: e}, nil

	case p.isKw("break"):
		p.advance()
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil

	case p.isKw("continue"):
		p.advance()
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil

	case p.isKw("throw"):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ThrowStmt{Pos: t.Pos, E: e}, nil

	case p.isKw("try"):
		p.advance()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		ts := &TryStmt{Pos: t.Pos, Body: body}
		for p.isKw("catch") {
			cp := p.advance().Pos
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			cls, _, err := p.qualifiedNameLoose()
			if err != nil {
				return nil, err
			}
			nameTok, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			cbody, err := p.block()
			if err != nil {
				return nil, err
			}
			ts.Catches = append(ts.Catches, CatchClause{
				Pos: cp, Class: cls, Name: nameTok.Text, Body: cbody,
			})
		}
		if len(ts.Catches) == 0 {
			return nil, p.errf(t.Pos, "try without catch")
		}
		return ts, nil

	case p.isKw("super") && p.peekAt(1).Kind == TokPunct && p.peekAt(1).Text == "(":
		p.advance()
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &SuperCallStmt{Pos: t.Pos, Args: args}, nil

	default:
		s, err := p.simpleStmtNoSemi()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *parser) stmtAsBlock() ([]Stmt, error) {
	if p.isPunct("{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// simpleStmtNoSemi parses a declaration, assignment or expression
// statement without the trailing semicolon (shared by for-clauses).
func (p *parser) simpleStmtNoSemi() (Stmt, error) {
	t := p.cur()
	if p.looksLikeVarDecl() {
		typ, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		vd := &VarDeclStmt{Pos: nameTok.Pos, Name: nameTok.Text, Type: typ}
		if p.acceptPunct("=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			vd.Init = e
		}
		return vd, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("=") {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: t.Pos, LHS: e, RHS: rhs}, nil
	}
	return &ExprStmt{Pos: t.Pos, E: e}, nil
}

// looksLikeVarDecl distinguishes `T x ...` from an expression.
func (p *parser) looksLikeVarDecl() bool {
	t := p.cur()
	if t.Kind == TokKeyword && isTypeKeyword(t.Text) {
		return true
	}
	if t.Kind != TokIdent {
		return false
	}
	// Scan past a dotted name and array brackets, then require IDENT.
	i := 1
	for p.peekAt(i).Kind == TokPunct && p.peekAt(i).Text == "." && p.peekAt(i+1).Kind == TokIdent {
		i += 2
	}
	for p.peekAt(i).Kind == TokPunct && p.peekAt(i).Text == "[" &&
		p.peekAt(i+1).Kind == TokPunct && p.peekAt(i+1).Text == "]" {
		i += 2
	}
	return p.peekAt(i).Kind == TokIdent
}

// ---- Expression parsing ----

func (p *parser) args() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []Expr
	for !p.isPunct(")") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		pos := p.advance().Pos
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.eqExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		pos := p.advance().Pos
		r, err := p.eqExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) eqExpr() (Expr, error) {
	l, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("==") || p.isPunct("!=") {
		op := p.advance()
		r, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("<") || p.isPunct("<=") || p.isPunct(">") || p.isPunct(">="):
			op := p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Pos: op.Pos, Op: op.Text, L: l, R: r}
		case p.isKw("instanceof"):
			pos := p.advance().Pos
			cls, _, err := p.qualifiedNameLoose()
			if err != nil {
				return nil, err
			}
			l = &InstanceOfExpr{Pos: pos, E: l, Class: cls}
		default:
			return l, nil
		}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") || p.isPunct("%") {
		op := p.advance()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if p.isPunct("-") || p.isPunct("!") {
		p.advance()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: t.Text, E: e}, nil
	}
	if ok, te := p.tryCast(); ok {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &CastExpr{Pos: t.Pos, Target: te, E: e}, nil
	}
	return p.postfixExpr()
}

// tryCast speculatively matches "(" type ")" when followed by the start
// of a unary expression; on failure the parser position is unchanged.
func (p *parser) tryCast() (bool, TypeExpr) {
	if !p.isPunct("(") {
		return false, TypeExpr{}
	}
	save := p.pos
	p.advance()
	te, err := p.typeExpr()
	if err != nil || !p.isPunct(")") {
		p.pos = save
		return false, TypeExpr{}
	}
	isPrimitive := isTypeKeyword(te.Name)
	p.advance() // ")"
	nt := p.cur()
	startsUnary := false
	switch nt.Kind {
	case TokIdent, TokInt, TokFloat, TokString:
		startsUnary = true
	case TokKeyword:
		switch nt.Text {
		case "this", "new", "null", "true", "false":
			startsUnary = true
		}
	case TokPunct:
		if nt.Text == "(" || nt.Text == "!" {
			startsUnary = true
		}
		// "-" after a cast is ambiguous with subtraction; only primitive
		// casts accept it: `(int) -x` casts, `(a) - b` subtracts.
		if nt.Text == "-" && isPrimitive {
			startsUnary = true
		}
	}
	if !startsUnary || te.Array > 0 && !startsUnary {
		p.pos = save
		return false, TypeExpr{}
	}
	return true, te
}

func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct(".") && p.peekAt(1).Kind == TokIdent:
			pos := p.advance().Pos
			nameTok, _ := p.expectIdent()
			if p.isPunct("(") {
				callArgs, err := p.args()
				if err != nil {
					return nil, err
				}
				e = &CallExpr{Pos: pos, Recv: e, Method: nameTok.Text, Args: callArgs}
			} else {
				e = &FieldAccess{Pos: pos, Recv: e, Name: nameTok.Text}
			}
		case p.isPunct("["):
			pos := p.advance().Pos
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Pos: pos, Arr: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.advance()
		return &IntLit{Pos: t.Pos, V: t.IntV}, nil
	case t.Kind == TokFloat:
		p.advance()
		return &FloatLit{Pos: t.Pos, V: t.FloV}, nil
	case t.Kind == TokString:
		p.advance()
		return &StringLit{Pos: t.Pos, V: t.Text}, nil
	case p.isKw("true"):
		p.advance()
		return &BoolLit{Pos: t.Pos, V: true}, nil
	case p.isKw("false"):
		p.advance()
		return &BoolLit{Pos: t.Pos, V: false}, nil
	case p.isKw("null"):
		p.advance()
		return &NullLit{Pos: t.Pos}, nil
	case p.isKw("this"):
		p.advance()
		return &ThisExpr{Pos: t.Pos}, nil

	case p.isKw("new"):
		p.advance()
		te, err := p.typeExprNoArray()
		if err != nil {
			return nil, err
		}
		if p.isPunct("[") {
			p.advance()
			length, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &NewArrayExpr{Pos: t.Pos, Elem: te, Len: length}, nil
		}
		if isTypeKeyword(te.Name) {
			return nil, p.errf(t.Pos, "cannot instantiate primitive type %s", te.Name)
		}
		callArgs, err := p.args()
		if err != nil {
			return nil, err
		}
		return &NewExpr{Pos: t.Pos, Class: te.Name, Args: callArgs}, nil

	case p.isPunct("("):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == TokIdent:
		p.advance()
		if p.isPunct("(") {
			callArgs, err := p.args()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Pos: t.Pos, Method: t.Text, Args: callArgs, ImplicitThis: true}, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil

	default:
		return nil, p.errf(t.Pos, "expected expression, found %s", t)
	}
}

// typeExprNoArray parses a type without consuming `[` (so `new T[n]` can
// read the length expression).
func (p *parser) typeExprNoArray() (TypeExpr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && isTypeKeyword(t.Text):
		p.advance()
		return TypeExpr{Pos: t.Pos, Name: t.Text}, nil
	case t.Kind == TokIdent:
		n, _, err := p.qualifiedNameLoose()
		if err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Pos: t.Pos, Name: n}, nil
	default:
		return TypeExpr{}, p.errf(t.Pos, "expected type, found %s", t)
	}
}
