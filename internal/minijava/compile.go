package minijava

import (
	"fmt"
	"sort"

	"rafda/internal/ir"
)

// CompileFiles parses, checks and compiles a set of named sources into a
// complete IR program (including the system library).  Files are processed
// in sorted-name order for determinism.
func CompileFiles(sources map[string]string) (*ir.Program, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)

	var files []*File
	for _, n := range names {
		f, err := Parse(n, sources[n])
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	c := newChecker(files)
	if err := c.collect(); err != nil {
		return nil, err
	}
	if err := c.checkBodies(); err != nil {
		return nil, err
	}
	if err := c.generate(); err != nil {
		return nil, err
	}
	return c.sig, nil
}

// Compile compiles a single source string.
func Compile(src string) (*ir.Program, error) {
	return CompileFiles(map[string]string{"input.mj": src})
}

// MustCompile is Compile that panics on error; for tests and examples
// with static sources.
func MustCompile(src string) *ir.Program {
	p, err := Compile(src)
	if err != nil {
		panic(fmt.Sprintf("minijava: %v", err))
	}
	return p
}
