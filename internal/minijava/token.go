// Package minijava implements the source front end: a miniature Java-like
// language compiled to the IR.  The paper's input is compiled Java; this
// package lets the reproduction express the paper's sample programs
// (e.g. Figure 2's class X) in source form and compile them to verified
// bytecode for transformation and execution.
//
// The language supports classes with single inheritance, interfaces,
// instance and static fields (with initialisers), constructors, methods,
// native method declarations, arrays, strings, exceptions
// (throw/try/catch), and the usual statements and expressions.  Methods
// may be overloaded by arity only, matching the IR's method model.
package minijava

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokPunct
)

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	IntV int64
	FloV float64
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"class": true, "interface": true, "extends": true, "implements": true,
	"public": true, "protected": true, "private": true,
	"static": true, "final": true, "native": true, "abstract": true,
	"void": true, "int": true, "long": true, "float": true, "double": true,
	"bool": true, "boolean": true, "string": true,
	"if": true, "else": true, "while": true, "for": true, "return": true,
	"break": true, "continue": true,
	"new": true, "this": true, "super": true, "null": true,
	"true": true, "false": true,
	"throw": true, "try": true, "catch": true, "finally": true,
	"instanceof": true,
}
