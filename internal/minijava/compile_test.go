package minijava

import (
	"bytes"
	"strings"
	"testing"

	"rafda/internal/vm"
)

// run compiles src, runs Main.main(), and returns captured output.
func run(t *testing.T, src string) string {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out bytes.Buffer
	machine := vm.MustNew(prog, vm.WithOutput(&out))
	if err := machine.RunMain("Main"); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

func expectOut(t *testing.T, src, want string) {
	t.Helper()
	got := run(t, src)
	if got != want {
		t.Fatalf("output mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestHelloWorld(t *testing.T) {
	expectOut(t, `
class Main {
    static void main() {
        sys.System.println("hello, world");
    }
}`, "hello, world\n")
}

func TestArithmeticAndLocals(t *testing.T) {
	expectOut(t, `
class Main {
    static void main() {
        int a = 6;
        int b = 7;
        int c = a * b;
        sys.System.println("c=" + c);
        sys.System.println("div=" + (c / 4) + " rem=" + (c % 4));
        float f = 1.5;
        f = f * 2.0 + a;
        sys.System.println("f=" + f);
        bool p = a < b && c == 42;
        sys.System.println("p=" + p);
    }
}`, "c=42\ndiv=10 rem=2\nf=9\np=true\n")
}

func TestControlFlow(t *testing.T) {
	expectOut(t, `
class Main {
    static void main() {
        int sum = 0;
        for (int i = 0; i < 10; i = i + 1) {
            if (i % 2 == 0) { continue; }
            if (i == 9) { break; }
            sum = sum + i;
        }
        sys.System.println("sum=" + sum);
        int n = 3;
        while (n > 0) {
            sys.System.println("n=" + n);
            n = n - 1;
        }
    }
}`, "sum=16\nn=3\nn=2\nn=1\n")
}

func TestObjectsFieldsMethods(t *testing.T) {
	expectOut(t, `
class Point {
    int x;
    int y;
    Point(int x, int y) { this.x = x; this.y = y; }
    int dist2() { return x * x + y * y; }
    void move(int dx, int dy) { x = x + dx; y = y + dy; }
}
class Main {
    static void main() {
        Point p = new Point(3, 4);
        sys.System.println("d2=" + p.dist2());
        p.move(1, 1);
        sys.System.println("x=" + p.x + " y=" + p.y);
    }
}`, "d2=25\nx=4 y=5\n")
}

func TestStaticsAndInitialisers(t *testing.T) {
	expectOut(t, `
class Counter {
    static int count = 100;
    int bump;
    Counter(int b) { this.bump = b; }
    static int next() { count = count + 1; return count; }
}
class Main {
    static void main() {
        sys.System.println("a=" + Counter.next());
        sys.System.println("b=" + Counter.next());
        Counter.count = 7;
        sys.System.println("c=" + Counter.count);
    }
}`, "a=101\nb=102\nc=7\n")
}

func TestInheritanceAndDispatch(t *testing.T) {
	expectOut(t, `
class Animal {
    string name;
    Animal(string n) { this.name = n; }
    string speak() { return name + " makes a sound"; }
}
class Dog extends Animal {
    Dog(string n) { super(n); }
    string speak() { return name + " barks"; }
}
class Main {
    static void main() {
        Animal a = new Animal("generic");
        Animal d = new Dog("rex");
        sys.System.println(a.speak());
        sys.System.println(d.speak());
        sys.System.println("is dog: " + (d instanceof Dog));
        sys.System.println("is animal: " + (d instanceof Animal));
    }
}`, "generic makes a sound\nrex barks\nis dog: true\nis animal: true\n")
}

func TestInterfaces(t *testing.T) {
	expectOut(t, `
interface Shape {
    float area();
}
class Square implements Shape {
    float side;
    Square(float s) { this.side = s; }
    float area() { return side * side; }
}
class Circle implements Shape {
    float r;
    Circle(float r) { this.r = r; }
    float area() { return 3.0 * r * r; }
}
class Main {
    static void main() {
        Shape[] shapes = new Shape[2];
        shapes[0] = new Square(2.0);
        shapes[1] = new Circle(1.0);
        float total = 0.0;
        for (int i = 0; i < shapes.length; i = i + 1) {
            total = total + shapes[i].area();
        }
        sys.System.println("total=" + total);
    }
}`, "total=7\n")
}

func TestArrays(t *testing.T) {
	expectOut(t, `
class Main {
    static void main() {
        int[] xs = new int[5];
        for (int i = 0; i < xs.length; i = i + 1) { xs[i] = i * i; }
        int sum = 0;
        for (int i = 0; i < xs.length; i = i + 1) { sum = sum + xs[i]; }
        sys.System.println("sum=" + sum);
        string[] ss = new string[2];
        ss[0] = "a"; ss[1] = "b";
        sys.System.println(ss[0] + ss[1]);
    }
}`, "sum=30\nab\n")
}

func TestExceptions(t *testing.T) {
	expectOut(t, `
class BankError extends sys.Exception {
    BankError(string m) { super(m); }
}
class Main {
    static int risky(int x) {
        if (x < 0) { throw new BankError("negative: " + x); }
        return 10 / x;
    }
    static void main() {
        try {
            sys.System.println("r=" + risky(2));
            sys.System.println("r=" + risky(-1));
        } catch (BankError e) {
            sys.System.println("caught: " + e.getMessage());
        }
        try {
            sys.System.println("r=" + risky(0));
        } catch (sys.ArithmeticException e) {
            sys.System.println("arith: " + e.getMessage());
        }
    }
}`, "r=5\ncaught: negative: -1\narith: division by zero\n")
}

func TestNullHandling(t *testing.T) {
	expectOut(t, `
class Box { int v; Box(int v) { this.v = v; } }
class Main {
    static void main() {
        Box b = null;
        sys.System.println("isnull=" + (b == null));
        try {
            sys.System.println("v=" + b.v);
        } catch (sys.NullPointerException e) {
            sys.System.println("npe");
        }
        b = new Box(9);
        sys.System.println("v=" + b.v);
    }
}`, "isnull=true\nnpe\nv=9\n")
}

func TestStringNatives(t *testing.T) {
	expectOut(t, `
class Main {
    static void main() {
        string s = "hello";
        sys.System.println("len=" + sys.Strings.length(s));
        sys.System.println("sub=" + sys.Strings.substring(s, 1, 4));
        sys.System.println("idx=" + sys.Strings.indexOf(s, "ll"));
        sys.System.println("parsed=" + (sys.Strings.parseInt("41") + 1));
    }
}`, "len=5\nsub=ell\nidx=2\nparsed=42\n")
}

func TestRecursion(t *testing.T) {
	expectOut(t, `
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    static void main() {
        sys.System.println("fib(15)=" + fib(15));
    }
}`, "fib(15)=610\n")
}

func TestCasts(t *testing.T) {
	expectOut(t, `
class A { int tag() { return 1; } }
class B extends A { int tag() { return 2; } int extra() { return 99; } }
class Main {
    static void main() {
        A a = new B();
        B b = (B) a;
        sys.System.println("extra=" + b.extra());
        sys.System.println("trunc=" + (int) 3.99);
        float f = (float) 7;
        sys.System.println("f=" + f);
        A plain = new A();
        try {
            B bad = (B) plain;
            sys.System.println("tag=" + bad.tag());
        } catch (sys.ClassCastException e) {
            sys.System.println("cce");
        }
    }
}`, "extra=99\ntrunc=3\nf=7\ncce\n")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown type", `class Main { Foo f; }`, "unknown type"},
		{"undefined name", `class Main { static void main() { x = 1; } }`, "undefined name"},
		{"bad assign", `class Main { static void main() { int x = "s"; } }`, "cannot assign"},
		{"bad arity", `class A { int m(int x) { return x; } }
			class Main { static void main() { A a = new A(); a.m(1, 2); } }`, "no method"},
		{"dup class", `class A {} class A {}`, "duplicate class"},
		{"break outside", `class Main { static void main() { break; } }`, "break outside loop"},
		{"this static", `class Main { int f; static void main() { int x = this.f; } }`, "'this' in static"},
		{"throw nonthrowable", `class A {} class Main { static void main() { throw new A(); } }`, "throw requires"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestPaperFigure2Compiles(t *testing.T) {
	// The paper's Figure 2 sample class X (adapted to mini-java syntax).
	prog, err := Compile(`
class Y {
    static int K = 17;
    Y() {}
    int n(long j) { return (int) j + 1; }
}
class Z {
    int seed;
    Z(int seed) { this.seed = seed; }
    int q(int i) { return seed + i; }
}
class X {
    private Y y;
    X(Y y) { this.y = y; }
    protected int m(long j) { return y.n(j); }
    static final Z z = new Z(Y.K);
    static int p(int i) { return z.q(i); }
}
class Main {
    static void main() {
        X x = new X(new Y());
        sys.System.println("m=" + x.m(41));
        sys.System.println("p=" + X.p(3));
    }
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, name := range []string{"X", "Y", "Z", "Main"} {
		if !prog.Has(name) {
			t.Fatalf("missing class %s", name)
		}
	}
	var out bytes.Buffer
	machine := vm.MustNew(prog, vm.WithOutput(&out))
	if err := machine.RunMain("Main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := "m=42\np=20\n"
	if out.String() != want {
		t.Fatalf("got %q want %q", out.String(), want)
	}
}
