package minijava

import (
	"fmt"

	"rafda/internal/ir"
)

// exprAsClassName interprets an Ident / FieldAccess chain as a (possibly
// dotted) class name, or returns "".
func exprAsClassName(e Expr) string {
	switch t := e.(type) {
	case *Ident:
		return t.Name
	case *FieldAccess:
		if t.Recv == nil {
			return ""
		}
		prefix := exprAsClassName(t.Recv)
		if prefix == "" {
			return ""
		}
		return prefix + "." + t.Name
	default:
		return ""
	}
}

// classNameVisible reports whether name denotes a class not shadowed by a
// local variable in the current scope (only the first segment can shadow).
func (mc *methodCtx) classNameVisible(name string) bool {
	if !mc.c.sig.Has(name) {
		return false
	}
	first := name
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			first = name[:i]
			break
		}
	}
	if _, shadowed := mc.scope.lookup(first); shadowed {
		return false
	}
	return true
}

func (mc *methodCtx) checkExpr(e Expr) (ir.Type, error) {
	t, err := mc.checkExprInner(e)
	if err != nil {
		return ir.Type{}, err
	}
	e.setT(t)
	return t, nil
}

func (mc *methodCtx) checkExprInner(e Expr) (ir.Type, error) {
	switch t := e.(type) {
	case *IntLit:
		return ir.Int, nil
	case *FloatLit:
		return ir.Float, nil
	case *StringLit:
		return ir.String, nil
	case *BoolLit:
		return ir.Bool, nil
	case *NullLit:
		return nullType, nil

	case *ThisExpr:
		if mc.irMethod.Static {
			return ir.Type{}, mc.errf(t.Pos, "'this' in static context")
		}
		return ir.Ref(mc.class.Name), nil

	case *Ident:
		// Local or parameter.
		if l, ok := mc.scope.lookup(t.Name); ok {
			t.Kind = IdentLocal
			t.Slot = l.slot
			return l.typ, nil
		}
		// Implicit this-field or own-class static, searching supers.
		if dc, f, err := mc.c.sig.ResolveField(mc.class.Name, t.Name); err == nil {
			if f.Static {
				t.Kind = IdentStatic
			} else {
				if mc.irMethod.Static {
					return ir.Type{}, mc.errf(t.Pos, "instance field %s in static context", t.Name)
				}
				t.Kind = IdentField
			}
			t.Owner = dc.Name
			return f.Type, nil
		}
		return ir.Type{}, mc.errf(t.Pos, "undefined name %s", t.Name)

	case *FieldAccess:
		// Class-qualified static access: C.f.
		if cn := exprAsClassName(t.Recv); cn != "" && mc.classNameVisible(cn) {
			dc, f, err := mc.c.sig.ResolveField(cn, t.Name)
			if err != nil || !f.Static {
				return ir.Type{}, mc.errf(t.Pos, "no static field %s.%s", cn, t.Name)
			}
			t.Static = true
			t.Class = cn
			t.Owner = dc.Name
			t.Recv = nil
			return f.Type, nil
		}
		rt, err := mc.checkExpr(t.Recv)
		if err != nil {
			return ir.Type{}, err
		}
		if rt.IsArray() && t.Name == "length" {
			t.IsArrayLen = true
			return ir.Int, nil
		}
		if !rt.IsRef() {
			return ir.Type{}, mc.errf(t.Pos, "field access on non-object type %s", rt)
		}
		dc, f, err := mc.c.sig.ResolveField(rt.Name, t.Name)
		if err != nil {
			return ir.Type{}, mc.errf(t.Pos, "no field %s on %s", t.Name, rt.Name)
		}
		if f.Static {
			return ir.Type{}, mc.errf(t.Pos, "static field %s accessed through instance", t.Name)
		}
		t.Owner = dc.Name
		return f.Type, nil

	case *CallExpr:
		return mc.checkCall(t)

	case *NewExpr:
		cls := mc.c.sig.Class(t.Class)
		if cls == nil {
			return ir.Type{}, mc.errf(t.Pos, "unknown class %s", t.Class)
		}
		if cls.IsInterface || cls.Abstract {
			return ir.Type{}, mc.errf(t.Pos, "cannot instantiate %s", t.Class)
		}
		ctor := cls.Method(ir.ConstructorName, len(t.Args))
		if ctor == nil {
			return ir.Type{}, mc.errf(t.Pos, "%s has no constructor with %d argument(s)", t.Class, len(t.Args))
		}
		if err := mc.checkArgs(t.Pos, t.Args, ctor.Params); err != nil {
			return ir.Type{}, err
		}
		return ir.Ref(t.Class), nil

	case *NewArrayExpr:
		elem, err := mc.c.resolveType(t.Elem)
		if err != nil {
			return ir.Type{}, err
		}
		if elem.IsVoid() {
			return ir.Type{}, mc.errf(t.Pos, "array of void")
		}
		lt, err := mc.checkExpr(t.Len)
		if err != nil {
			return ir.Type{}, err
		}
		if lt.Kind != ir.KindInt {
			return ir.Type{}, mc.errf(t.Pos, "array length must be int, got %s", lt)
		}
		return ir.ArrayOf(elem), nil

	case *IndexExpr:
		at, err := mc.checkExpr(t.Arr)
		if err != nil {
			return ir.Type{}, err
		}
		if !at.IsArray() {
			return ir.Type{}, mc.errf(t.Pos, "indexing non-array type %s", at)
		}
		it, err := mc.checkExpr(t.Index)
		if err != nil {
			return ir.Type{}, err
		}
		if it.Kind != ir.KindInt {
			return ir.Type{}, mc.errf(t.Pos, "array index must be int, got %s", it)
		}
		return *at.Elem, nil

	case *UnaryExpr:
		et, err := mc.checkExpr(t.E)
		if err != nil {
			return ir.Type{}, err
		}
		switch t.Op {
		case "-":
			if !et.IsNumeric() {
				return ir.Type{}, mc.errf(t.Pos, "negation of non-numeric %s", et)
			}
			return et, nil
		case "!":
			if et.Kind != ir.KindBool {
				return ir.Type{}, mc.errf(t.Pos, "logical not of non-bool %s", et)
			}
			return ir.Bool, nil
		}
		return ir.Type{}, mc.errf(t.Pos, "bad unary operator %s", t.Op)

	case *BinaryExpr:
		return mc.checkBinary(t)

	case *CastExpr:
		target, err := mc.c.resolveType(t.Target)
		if err != nil {
			return ir.Type{}, err
		}
		et, err := mc.checkExpr(t.E)
		if err != nil {
			return ir.Type{}, err
		}
		switch {
		case target.IsNumeric() && et.IsNumeric():
			return target, nil
		case target.IsRef() && (et.IsRef() || isNullType(et)):
			return target, nil
		case target.IsArray() && (et.IsArray() || isNullType(et)):
			return target, nil
		case target.Equal(et):
			return target, nil
		default:
			return ir.Type{}, mc.errf(t.Pos, "cannot cast %s to %s", et, target)
		}

	case *InstanceOfExpr:
		et, err := mc.checkExpr(t.E)
		if err != nil {
			return ir.Type{}, err
		}
		if !et.IsRef() {
			return ir.Type{}, mc.errf(t.Pos, "instanceof on non-object type %s", et)
		}
		if !mc.c.sig.Has(t.Class) {
			return ir.Type{}, mc.errf(t.Pos, "unknown class %s", t.Class)
		}
		return ir.Bool, nil

	default:
		return ir.Type{}, mc.errf(e.exprPos(), "internal: unknown expression %T", e)
	}
}

func (mc *methodCtx) checkCall(t *CallExpr) (ir.Type, error) {
	// Class-qualified static call: C.m(args).
	if t.Recv != nil {
		if cn := exprAsClassName(t.Recv); cn != "" && mc.classNameVisible(cn) {
			dc, m, err := mc.c.sig.ResolveMethod(cn, t.Method, len(t.Args))
			if err == nil && m.Static {
				t.Static = true
				t.Class = cn
				t.Owner = dc.Name
				t.Recv = nil
				if err := mc.checkArgs(t.Pos, t.Args, m.Params); err != nil {
					return ir.Type{}, err
				}
				return m.Return, nil
			}
			// Fall through: might be an instance call on a variable whose
			// first segment is not shadowed but also not a class... if cn
			// resolves to a class yet has no such static method, report.
			if err == nil && !m.Static {
				return ir.Type{}, mc.errf(t.Pos, "instance method %s.%s called statically", cn, t.Method)
			}
			return ir.Type{}, mc.errf(t.Pos, "no static method %s.%s with %d argument(s)", cn, t.Method, len(t.Args))
		}
	}

	// Implicit receiver: this.m(args) or own-class static.
	if t.Recv == nil && t.Class == "" {
		dc, m, err := mc.c.sig.ResolveMethod(mc.class.Name, t.Method, len(t.Args))
		if err != nil {
			return ir.Type{}, mc.errf(t.Pos, "undefined method %s with %d argument(s)", t.Method, len(t.Args))
		}
		if m.Static {
			t.Static = true
			t.Class = mc.class.Name
			t.Owner = dc.Name
		} else {
			if mc.irMethod.Static {
				return ir.Type{}, mc.errf(t.Pos, "instance method %s called in static context", t.Method)
			}
			t.ImplicitThis = true
			t.Owner = dc.Name
		}
		if err := mc.checkArgs(t.Pos, t.Args, m.Params); err != nil {
			return ir.Type{}, err
		}
		return m.Return, nil
	}

	// Instance call through an expression receiver.
	rt, err := mc.checkExpr(t.Recv)
	if err != nil {
		return ir.Type{}, err
	}
	if !rt.IsRef() {
		return ir.Type{}, mc.errf(t.Pos, "method call on non-object type %s", rt)
	}
	dc, m, err := mc.c.sig.ResolveMethod(rt.Name, t.Method, len(t.Args))
	if err != nil {
		// Interface receivers may still use sys.Object methods.
		if rc := mc.c.sig.Class(rt.Name); rc != nil && rc.IsInterface {
			if odc, om, oerr := mc.c.sig.ResolveMethod(ir.ObjectClass, t.Method, len(t.Args)); oerr == nil {
				dc, m, err = odc, om, nil
			}
		}
	}
	if err != nil {
		return ir.Type{}, mc.errf(t.Pos, "no method %s on %s with %d argument(s)", t.Method, rt.Name, len(t.Args))
	}
	if m.Static {
		return ir.Type{}, mc.errf(t.Pos, "static method %s called through instance", t.Method)
	}
	t.Owner = dc.Name
	if rc := mc.c.sig.Class(rt.Name); rc != nil && rc.IsInterface {
		t.OnInterface = true
	}
	if err := mc.checkArgs(t.Pos, t.Args, m.Params); err != nil {
		return ir.Type{}, err
	}
	return m.Return, nil
}

func (mc *methodCtx) checkArgs(pos Pos, args []Expr, params []ir.Type) error {
	if len(args) != len(params) {
		return mc.errf(pos, "want %d argument(s), got %d", len(params), len(args))
	}
	for i, a := range args {
		at, err := mc.checkExpr(a)
		if err != nil {
			return err
		}
		if !mc.c.assignable(at, params[i]) {
			return mc.errf(a.exprPos(), "argument %d: cannot use %s as %s", i+1, at, params[i])
		}
	}
	return nil
}

func (mc *methodCtx) checkBinary(t *BinaryExpr) (ir.Type, error) {
	lt, err := mc.checkExpr(t.L)
	if err != nil {
		return ir.Type{}, err
	}
	rt, err := mc.checkExpr(t.R)
	if err != nil {
		return ir.Type{}, err
	}
	switch t.Op {
	case "&&", "||":
		if lt.Kind != ir.KindBool || rt.Kind != ir.KindBool {
			return ir.Type{}, mc.errf(t.Pos, "%s requires bool operands, got %s and %s", t.Op, lt, rt)
		}
		return ir.Bool, nil

	case "+":
		if lt.Kind == ir.KindString || rt.Kind == ir.KindString {
			if !concatable(lt) || !concatable(rt) {
				return ir.Type{}, mc.errf(t.Pos, "cannot concatenate %s and %s", lt, rt)
			}
			t.IsConcat = true
			return ir.String, nil
		}
		fallthrough
	case "-", "*", "/", "%":
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return ir.Type{}, mc.errf(t.Pos, "%s requires numeric operands, got %s and %s", t.Op, lt, rt)
		}
		if lt.Kind == ir.KindFloat || rt.Kind == ir.KindFloat {
			return ir.Float, nil
		}
		return ir.Int, nil

	case "==", "!=":
		ok := false
		switch {
		case lt.IsNumeric() && rt.IsNumeric():
			ok = true
		case lt.Kind == ir.KindBool && rt.Kind == ir.KindBool:
			ok = true
		case lt.Kind == ir.KindString && rt.Kind == ir.KindString:
			ok = true
		case (lt.IsRef() || lt.IsArray() || isNullType(lt)) && (rt.IsRef() || rt.IsArray() || isNullType(rt)):
			ok = true
		}
		if !ok {
			return ir.Type{}, mc.errf(t.Pos, "cannot compare %s and %s", lt, rt)
		}
		return ir.Bool, nil

	case "<", "<=", ">", ">=":
		if (lt.IsNumeric() && rt.IsNumeric()) ||
			(lt.Kind == ir.KindString && rt.Kind == ir.KindString) {
			return ir.Bool, nil
		}
		return ir.Type{}, mc.errf(t.Pos, "cannot order %s and %s", lt, rt)
	}
	return ir.Type{}, mc.errf(t.Pos, "bad binary operator %s", t.Op)
}

func concatable(t ir.Type) bool {
	switch t.Kind {
	case ir.KindString, ir.KindInt, ir.KindFloat, ir.KindBool, ir.KindRef:
		return true
	default:
		return false
	}
}

// typeString is a fmt helper used in error messages.
func typeString(t ir.Type) string { return fmt.Sprintf("%s", t) }
