package minijava

import (
	"strings"
	"testing"
)

func lexKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := lexAll("t.mj", src)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexKinds(t, `class X { int a = 42; float f = 3.5; string s = "hi\n"; }`)
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "class" {
		t.Fatalf("first token %v", toks[0])
	}
	found := map[string]bool{}
	for _, tk := range toks {
		switch tk.Kind {
		case TokInt:
			if tk.IntV == 42 {
				found["int"] = true
			}
		case TokFloat:
			if tk.FloV == 3.5 {
				found["float"] = true
			}
		case TokString:
			if tk.Text == "hi\n" {
				found["string"] = true
			}
		}
	}
	for _, k := range []string{"int", "float", "string"} {
		if !found[k] {
			t.Errorf("literal %s not lexed (kinds %v)", k, kinds)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, `
// line comment with class keyword
/* block
   comment */ class /* inline */ X {}
`)
	if toks[0].Text != "class" || toks[1].Text != "X" {
		t.Fatalf("comments not skipped: %v %v", toks[0], toks[1])
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, "class\n  X")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("pos %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("pos %v", toks[1].Pos)
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks := lexKinds(t, "a == b != c <= d >= e && f || g")
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokPunct {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"==", "!=", "<=", ">=", "&&", "||"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("ops %v want %v", ops, want)
	}
}

func TestLexErrors(t *testing.T) {
	cases := map[string]string{
		`"unterminated`:   "unterminated string",
		"\"bad\\q\"":      "bad escape",
		"/* never closed": "unterminated block comment",
		"@":               "unexpected character",
		"\"nl\n\"":        "newline in string",
	}
	for src, frag := range cases {
		_, err := lexAll("t.mj", src)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("%q: want error containing %q, got %v", src, frag, err)
		}
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	cases := []string{
		`class {`,
		`class X extends {}`,
		`class X { int ; }`,
		`class X { void m() { if } }`,
		`class X { void m() { return 1 + ; } }`,
		`class X { void m() { try {} } }`, // try without catch
	}
	for _, src := range cases {
		_, err := Parse("t.mj", src)
		if err == nil {
			t.Errorf("%q parsed successfully", src)
			continue
		}
		if !strings.Contains(err.Error(), "t.mj:") {
			t.Errorf("%q: error lacks position: %v", src, err)
		}
	}
}

func TestParserDisambiguation(t *testing.T) {
	// Declarations vs expressions, casts vs parens, dotted names.
	prog, err := Compile(`
class Box { int v; Box(int v) { this.v = v; } }
class Main {
    static void main() {
        Box b = new Box(3);          // IDENT IDENT -> declaration
        int[] xs = new int[2];       // IDENT [ ] -> array decl
        xs[0] = b.v;                 // expr [ ] -> index
        int z = (xs[0]) + 1;         // paren, not cast
        float f = (float) z;         // primitive cast
        Box c = (Box) b;             // class cast
        sys.System.println("" + z + "," + f + "," + c.v);
    }
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if !prog.Has("Main") {
		t.Fatal("missing Main")
	}
}

func TestDanglingElse(t *testing.T) {
	expectOut(t, `
class Main {
    static void main() {
        int x = 2;
        if (x > 0)
            if (x > 10) sys.System.println("big");
            else sys.System.println("small");
    }
}`, "small\n")
}

func TestNestedTryAndRethrow(t *testing.T) {
	expectOut(t, `
class Main {
    static void main() {
        try {
            try {
                throw new sys.RuntimeException("inner");
            } catch (sys.NullPointerException e) {
                sys.System.println("wrong handler");
            }
        } catch (sys.RuntimeException e) {
            sys.System.println("outer caught " + e.getMessage());
        }
    }
}`, "outer caught inner\n")
}

func TestShortCircuitSideEffects(t *testing.T) {
	expectOut(t, `
class Main {
    static int calls = 0;
    static bool touch(bool v) { calls = calls + 1; return v; }
    static void main() {
        bool a = touch(false) && touch(true);
        sys.System.println("and calls=" + calls + " a=" + a);
        calls = 0;
        bool o = touch(true) || touch(false);
        sys.System.println("or calls=" + calls + " o=" + o);
    }
}`, "and calls=1 a=false\nor calls=1 o=true\n")
}

func TestFloatIntMixing(t *testing.T) {
	expectOut(t, `
class Main {
    static float half(int x) { return x / 2.0; }
    static void main() {
        float f = 3;          // int -> float widening on init
        f = f + 1;            // mixed arithmetic
        sys.System.println("f=" + f);
        sys.System.println("h=" + half(7));
    }
}`, "f=4\nh=3.5\n")
}

func TestStaticsInheritedAccess(t *testing.T) {
	expectOut(t, `
class Base { static int shared = 5; }
class Derived extends Base {
    static int get() { return shared; }
}
class Main {
    static void main() {
        sys.System.println("" + Derived.get());
        Base.shared = 9;
        sys.System.println("" + Derived.get());
    }
}`, "5\n9\n")
}
