package minijava

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// LexError reports a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, file: file, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character punctuation, longest first.
var punct2 = []string{"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--"}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case c >= '0' && c <= '9':
		start := lx.off
		isFloat := false
		for lx.off < len(lx.src) {
			ch := lx.peek()
			if ch >= '0' && ch <= '9' {
				lx.advance()
				continue
			}
			if ch == '.' && !isFloat && lx.peek2() >= '0' && lx.peek2() <= '9' {
				isFloat = true
				lx.advance()
				continue
			}
			break
		}
		text := lx.src[start:lx.off]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, &LexError{Pos: pos, Msg: "bad float literal " + text}
			}
			return Token{Kind: TokFloat, Text: text, FloV: f, Pos: pos}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, &LexError{Pos: pos, Msg: "bad int literal " + text}
		}
		return Token{Kind: TokInt, Text: text, IntV: n, Pos: pos}, nil

	case c == '"':
		lx.advance()
		var b strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: pos, Msg: "unterminated string literal"}
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, &LexError{Pos: pos, Msg: "unterminated escape"}
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case 'r':
					b.WriteByte('\r')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("bad escape \\%c", esc)}
				}
				continue
			}
			if ch == '\n' {
				return Token{}, &LexError{Pos: pos, Msg: "newline in string literal"}
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil

	default:
		two := ""
		if lx.off+1 < len(lx.src) {
			two = lx.src[lx.off : lx.off+2]
		}
		for _, p := range punct2 {
			if two == p {
				lx.advance()
				lx.advance()
				return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
			}
		}
		if strings.IndexByte("+-*/%<>=!(){}[];,.&|", c) >= 0 {
			lx.advance()
			return Token{Kind: TokPunct, Text: string(c), Pos: pos}, nil
		}
		return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

// lexAll tokenises the entire input.
func lexAll(file, src string) ([]Token, error) {
	lx := newLexer(file, src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}
