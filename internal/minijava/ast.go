package minijava

import "rafda/internal/ir"

// File is one parsed compilation unit.
type File struct {
	Name    string
	Classes []*ClassDecl
}

// ClassDecl is a class or interface declaration.
type ClassDecl struct {
	Pos         Pos
	Name        string
	Super       string // empty => sys.Object for classes
	Interfaces  []string
	IsInterface bool
	Abstract    bool
	Final       bool
	Fields      []*FieldDecl
	Methods     []*MethodDecl
}

// FieldDecl is a field with an optional initialiser expression.
type FieldDecl struct {
	Pos    Pos
	Name   string
	Type   TypeExpr
	Static bool
	Final  bool
	Access ir.Access
	Init   Expr // may be nil
}

// Param is a formal parameter.
type Param struct {
	Pos  Pos
	Name string
	Type TypeExpr
}

// MethodDecl is a method, constructor (IsCtor) or native declaration.
type MethodDecl struct {
	Pos      Pos
	Name     string
	Params   []Param
	Return   TypeExpr
	Static   bool
	Native   bool
	Abstract bool
	Final    bool
	Access   ir.Access
	IsCtor   bool
	Body     []Stmt // nil for native/abstract
}

// TypeExpr is an unresolved source type.
type TypeExpr struct {
	Pos   Pos
	Name  string // "int", "float", "bool", "string", "void", or class name
	Array int    // array nesting depth
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtPos() Pos }

// VarDeclStmt declares a local: `T x = e;` or `T x;`.
type VarDeclStmt struct {
	Pos  Pos
	Name string
	Type TypeExpr
	Init Expr // may be nil

	Slot int // local slot (set by checker)
}

// AssignStmt is `lhs = rhs;` where lhs is an assignable expression.
type AssignStmt struct {
	Pos Pos
	LHS Expr
	RHS Expr
}

// ExprStmt evaluates an expression for effect (calls, new).
type ExprStmt struct {
	Pos Pos
	E   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// ForStmt is `for (init; cond; post) body`; any part may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body []Stmt
}

// ReturnStmt returns a value (E may be nil for void).
type ReturnStmt struct {
	Pos Pos
	E   Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ThrowStmt throws a throwable.
type ThrowStmt struct {
	Pos Pos
	E   Expr
}

// CatchClause is one catch arm.
type CatchClause struct {
	Pos   Pos
	Class string
	Name  string
	Body  []Stmt

	Slot int // local slot of the caught exception (set by checker)
}

// TryStmt is try/catch (no finally; the paper's language issues section
// notes exceptions are a Java-specific concern — we support the core).
type TryStmt struct {
	Pos     Pos
	Body    []Stmt
	Catches []CatchClause
}

// BlockStmt is a braced scope.
type BlockStmt struct {
	Pos  Pos
	Body []Stmt
}

// SuperCallStmt is `super(args);` — only legal as a constructor's first
// statement.
type SuperCallStmt struct {
	Pos  Pos
	Args []Expr
}

func (s *VarDeclStmt) stmtPos() Pos   { return s.Pos }
func (s *AssignStmt) stmtPos() Pos    { return s.Pos }
func (s *ExprStmt) stmtPos() Pos      { return s.Pos }
func (s *IfStmt) stmtPos() Pos        { return s.Pos }
func (s *WhileStmt) stmtPos() Pos     { return s.Pos }
func (s *ForStmt) stmtPos() Pos       { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos    { return s.Pos }
func (s *BreakStmt) stmtPos() Pos     { return s.Pos }
func (s *ContinueStmt) stmtPos() Pos  { return s.Pos }
func (s *ThrowStmt) stmtPos() Pos     { return s.Pos }
func (s *TryStmt) stmtPos() Pos       { return s.Pos }
func (s *BlockStmt) stmtPos() Pos     { return s.Pos }
func (s *SuperCallStmt) stmtPos() Pos { return s.Pos }

// ---- Expressions ----

// Expr is implemented by all expression nodes.  After type checking each
// node's T() reports its resolved IR type.
type Expr interface {
	exprPos() Pos
	T() ir.Type
	setT(ir.Type)
}

type exprType struct{ t ir.Type }

func (e *exprType) T() ir.Type     { return e.t }
func (e *exprType) setT(t ir.Type) { e.t = t }

// IntLit is an integer literal.
type IntLit struct {
	exprType
	Pos Pos
	V   int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprType
	Pos Pos
	V   float64
}

// StringLit is a string literal.
type StringLit struct {
	exprType
	Pos Pos
	V   string
}

// BoolLit is true/false.
type BoolLit struct {
	exprType
	Pos Pos
	V   bool
}

// NullLit is null.
type NullLit struct {
	exprType
	Pos Pos
}

// ThisExpr is `this`.
type ThisExpr struct {
	exprType
	Pos Pos
}

// Ident is an unqualified name: local, parameter, implicit this-field, or
// own-class static.  Resolution recorded in Kind.
type Ident struct {
	exprType
	Pos  Pos
	Name string

	// Resolution (set by the checker).
	Kind  IdentKind
	Slot  int    // local slot, for IdentLocal
	Owner string // declaring class, for field/static
}

// IdentKind says how an Ident resolved.
type IdentKind uint8

// Ident resolutions.
const (
	IdentUnresolved IdentKind = iota
	IdentLocal
	IdentField  // implicit this.<name>
	IdentStatic // own-class or named-class static
)

// FieldAccess is `expr.name` (instance field) or `Class.name` (static).
type FieldAccess struct {
	exprType
	Pos   Pos
	Recv  Expr   // nil for static access via class name
	Class string // set for static access
	Name  string

	Owner      string // declaring class (set by checker)
	Static     bool
	IsArrayLen bool // expr.length on arrays
}

// CallExpr is `recv.m(args)`, `Class.m(args)` or `m(args)` (implicit this
// or own-class static).
type CallExpr struct {
	exprType
	Pos    Pos
	Recv   Expr   // nil for static or implicit-this call
	Class  string // set for static call via class name
	Method string
	Args   []Expr

	Owner        string // declaring class (set by checker)
	Static       bool
	OnInterface  bool // dispatch via interface type
	ImplicitThis bool
}

// NewExpr is `new C(args)`.
type NewExpr struct {
	exprType
	Pos   Pos
	Class string
	Args  []Expr
}

// NewArrayExpr is `new T[len]`.
type NewArrayExpr struct {
	exprType
	Pos  Pos
	Elem TypeExpr
	Len  Expr
}

// IndexExpr is `arr[i]`.
type IndexExpr struct {
	exprType
	Pos   Pos
	Arr   Expr
	Index Expr
}

// UnaryExpr is `-e` or `!e`.
type UnaryExpr struct {
	exprType
	Pos Pos
	Op  string
	E   Expr
}

// BinaryExpr is a binary operation, including short-circuit && and ||.
type BinaryExpr struct {
	exprType
	Pos Pos
	Op  string
	L   Expr
	R   Expr

	IsConcat bool // '+' resolved to string concatenation
}

// CastExpr is `(T) e`.
type CastExpr struct {
	exprType
	Pos    Pos
	Target TypeExpr
	E      Expr
}

// InstanceOfExpr is `e instanceof C`.
type InstanceOfExpr struct {
	exprType
	Pos   Pos
	E     Expr
	Class string
}

func (e *IntLit) exprPos() Pos         { return e.Pos }
func (e *FloatLit) exprPos() Pos       { return e.Pos }
func (e *StringLit) exprPos() Pos      { return e.Pos }
func (e *BoolLit) exprPos() Pos        { return e.Pos }
func (e *NullLit) exprPos() Pos        { return e.Pos }
func (e *ThisExpr) exprPos() Pos       { return e.Pos }
func (e *Ident) exprPos() Pos          { return e.Pos }
func (e *FieldAccess) exprPos() Pos    { return e.Pos }
func (e *CallExpr) exprPos() Pos       { return e.Pos }
func (e *NewExpr) exprPos() Pos        { return e.Pos }
func (e *NewArrayExpr) exprPos() Pos   { return e.Pos }
func (e *IndexExpr) exprPos() Pos      { return e.Pos }
func (e *UnaryExpr) exprPos() Pos      { return e.Pos }
func (e *BinaryExpr) exprPos() Pos     { return e.Pos }
func (e *CastExpr) exprPos() Pos       { return e.Pos }
func (e *InstanceOfExpr) exprPos() Pos { return e.Pos }
