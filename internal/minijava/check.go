package minijava

import (
	"fmt"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// CheckError reports a semantic error with its position.
type CheckError struct {
	Pos Pos
	Msg string
}

func (e *CheckError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// nullType is the type of the null literal; assignable to any reference
// or array type.
var nullType = ir.Type{Kind: ir.KindRef, Name: "<null>"}

func isNullType(t ir.Type) bool { return t.Kind == ir.KindRef && t.Name == "<null>" }

// checker performs semantic analysis over a set of files and produces the
// signature-level ir.Program the code generator fills in.
type checker struct {
	files []*File
	decls map[string]*ClassDecl // user classes by name
	sig   *ir.Program           // signatures: stdlib + skeletons of user classes
}

func newChecker(files []*File) *checker {
	return &checker{
		files: files,
		decls: make(map[string]*ClassDecl),
		sig:   stdlib.Program(),
	}
}

// collect builds class signature skeletons (pass 1).
func (c *checker) collect() error {
	for _, f := range c.files {
		for _, cd := range f.Classes {
			if _, dup := c.decls[cd.Name]; dup {
				return &CheckError{Pos: cd.Pos, Msg: "duplicate class " + cd.Name}
			}
			if c.sig.Has(cd.Name) {
				return &CheckError{Pos: cd.Pos, Msg: "class " + cd.Name + " conflicts with a system class"}
			}
			c.decls[cd.Name] = cd
		}
	}
	// Build skeletons after all names are known so types can refer
	// forward.
	for _, f := range c.files {
		for _, cd := range f.Classes {
			skel, err := c.skeleton(cd)
			if err != nil {
				return err
			}
			if err := c.sig.Add(skel); err != nil {
				return &CheckError{Pos: cd.Pos, Msg: err.Error()}
			}
		}
	}
	// Validate super/interface links.
	for _, cd := range c.decls {
		if cd.Super != "" {
			sc := c.sig.Class(cd.Super)
			if sc == nil {
				return &CheckError{Pos: cd.Pos, Msg: "unknown superclass " + cd.Super}
			}
			if sc.IsInterface {
				return &CheckError{Pos: cd.Pos, Msg: "cannot extend interface " + cd.Super + " with 'extends' on a class"}
			}
			if sc.Final {
				return &CheckError{Pos: cd.Pos, Msg: "cannot extend final class " + cd.Super}
			}
		}
		for _, in := range cd.Interfaces {
			ic := c.sig.Class(in)
			if ic == nil {
				return &CheckError{Pos: cd.Pos, Msg: "unknown interface " + in}
			}
			if !ic.IsInterface {
				return &CheckError{Pos: cd.Pos, Msg: in + " is not an interface"}
			}
		}
	}
	return nil
}

func (c *checker) skeleton(cd *ClassDecl) (*ir.Class, error) {
	cls := &ir.Class{
		Name:        cd.Name,
		IsInterface: cd.IsInterface,
		Abstract:    cd.Abstract || cd.IsInterface,
		Final:       cd.Final,
		Interfaces:  append([]string(nil), cd.Interfaces...),
	}
	if !cd.IsInterface {
		cls.Super = cd.Super
		if cls.Super == "" {
			cls.Super = ir.ObjectClass
		}
	} else if cd.Super != "" {
		// `interface I extends J` arrives via Super from the parser.
		cls.Interfaces = append([]string{cd.Super}, cls.Interfaces...)
		cd.Interfaces = cls.Interfaces
		cd.Super = ""
	}
	seenFields := map[string]bool{}
	for _, fd := range cd.Fields {
		if cd.IsInterface {
			return nil, &CheckError{Pos: fd.Pos, Msg: "interfaces cannot declare fields"}
		}
		if seenFields[fd.Name] {
			return nil, &CheckError{Pos: fd.Pos, Msg: "duplicate field " + fd.Name}
		}
		seenFields[fd.Name] = true
		t, err := c.resolveType(fd.Type)
		if err != nil {
			return nil, err
		}
		if t.IsVoid() {
			return nil, &CheckError{Pos: fd.Pos, Msg: "field cannot be void"}
		}
		cls.Fields = append(cls.Fields, ir.Field{
			Name: fd.Name, Type: t, Static: fd.Static, Final: fd.Final, Access: fd.Access,
		})
	}
	seenMethods := map[string]bool{}
	hasCtor := false
	for _, md := range cd.Methods {
		if md.IsCtor {
			hasCtor = true
		}
		m, err := c.methodSkeleton(cd, md)
		if err != nil {
			return nil, err
		}
		if seenMethods[m.Key()] {
			return nil, &CheckError{Pos: md.Pos, Msg: fmt.Sprintf("duplicate method %s with %d parameter(s)", md.Name, len(md.Params))}
		}
		seenMethods[m.Key()] = true
		cls.Methods = append(cls.Methods, m)
	}
	if !cd.IsInterface && !hasCtor {
		// Synthesised default constructor; body generated in codegen.
		cd.Methods = append(cd.Methods, &MethodDecl{
			Pos: cd.Pos, Name: ir.ConstructorName, IsCtor: true,
			Return: TypeExpr{Name: "void", Pos: cd.Pos},
			Access: ir.AccessPublic,
			Body:   []Stmt{},
		})
		cls.Methods = append(cls.Methods, &ir.Method{
			Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic,
		})
	}
	// Synthesised <clinit> when static field initialisers exist.
	needClinit := false
	for _, fd := range cd.Fields {
		if fd.Static && fd.Init != nil {
			needClinit = true
		}
	}
	if needClinit {
		cls.Methods = append(cls.Methods, &ir.Method{
			Name: ir.StaticInitName, Return: ir.Void, Static: true, Access: ir.AccessPrivate,
		})
	}
	return cls, nil
}

func (c *checker) methodSkeleton(cd *ClassDecl, md *MethodDecl) (*ir.Method, error) {
	m := &ir.Method{
		Name:     md.Name,
		Static:   md.Static,
		Native:   md.Native,
		Abstract: md.Abstract,
		Final:    md.Final,
		Access:   md.Access,
	}
	if cd.IsInterface {
		if md.Static || md.Native || md.Body != nil {
			return nil, &CheckError{Pos: md.Pos, Msg: "interface methods must be abstract instance methods"}
		}
		m.Abstract = true
		m.Access = ir.AccessPublic
	}
	rt, err := c.resolveType(md.Return)
	if err != nil {
		return nil, err
	}
	m.Return = rt
	seen := map[string]bool{}
	for _, pm := range md.Params {
		if seen[pm.Name] {
			return nil, &CheckError{Pos: pm.Pos, Msg: "duplicate parameter " + pm.Name}
		}
		seen[pm.Name] = true
		pt, err := c.resolveType(pm.Type)
		if err != nil {
			return nil, err
		}
		if pt.IsVoid() {
			return nil, &CheckError{Pos: pm.Pos, Msg: "parameter cannot be void"}
		}
		m.Params = append(m.Params, pt)
	}
	return m, nil
}

func (c *checker) resolveType(te TypeExpr) (ir.Type, error) {
	var base ir.Type
	switch te.Name {
	case "void":
		base = ir.Void
	case "int", "long":
		base = ir.Int
	case "float", "double":
		base = ir.Float
	case "bool", "boolean":
		base = ir.Bool
	case "string":
		base = ir.String
	default:
		if !c.sig.Has(te.Name) {
			// During skeleton construction, forward and self references
			// are visible in decls but not yet in sig.
			if _, declared := c.decls[te.Name]; !declared {
				return ir.Type{}, &CheckError{Pos: te.Pos, Msg: "unknown type " + te.Name}
			}
		}
		base = ir.Ref(te.Name)
	}
	for i := 0; i < te.Array; i++ {
		if base.IsVoid() {
			return ir.Type{}, &CheckError{Pos: te.Pos, Msg: "array of void"}
		}
		base = ir.ArrayOf(base)
	}
	return base, nil
}

// assignable reports whether a value of type `from` can bind to `to`,
// optionally via the int->float widening conversion.
func (c *checker) assignable(from, to ir.Type) bool {
	if isNullType(from) {
		return to.IsRef() || to.IsArray()
	}
	if from.Equal(to) {
		return true
	}
	if from.Kind == ir.KindInt && to.Kind == ir.KindFloat {
		return true
	}
	if from.IsRef() && to.IsRef() {
		return c.sig.AssignableTo(from.Name, to.Name)
	}
	return false
}

// ---- Method-body checking ----

type local struct {
	slot int
	typ  ir.Type
}

type scope struct {
	vars   map[string]local
	parent *scope
}

func (s *scope) lookup(name string) (local, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if l, ok := cur.vars[name]; ok {
			return l, true
		}
	}
	return local{}, false
}

type methodCtx struct {
	c        *checker
	class    *ClassDecl
	irClass  *ir.Class
	method   *MethodDecl
	irMethod *ir.Method
	scope    *scope
	nextSlot int
	loop     int
}

func (c *checker) checkBodies() error {
	for _, f := range c.files {
		for _, cd := range f.Classes {
			irc := c.sig.Class(cd.Name)
			for _, md := range cd.Methods {
				if md.Native || md.Abstract || (md.Body == nil && !md.IsCtor) {
					continue
				}
				if err := c.checkMethod(cd, irc, md); err != nil {
					return err
				}
			}
			// Field initialisers are checked in the context of a
			// synthetic method: instance inits as instance, static as
			// static.
			for _, fd := range cd.Fields {
				if fd.Init == nil {
					continue
				}
				mc := &methodCtx{
					c: c, class: cd, irClass: irc,
					method:   &MethodDecl{Pos: fd.Pos, Static: fd.Static, Return: TypeExpr{Name: "void"}},
					irMethod: &ir.Method{Static: fd.Static, Return: ir.Void},
					scope:    &scope{vars: map[string]local{}},
				}
				if !fd.Static {
					mc.nextSlot = 1
				}
				t, err := mc.checkExpr(fd.Init)
				if err != nil {
					return err
				}
				ft, _ := c.resolveType(fd.Type)
				if !c.assignable(t, ft) {
					return &CheckError{Pos: fd.Pos,
						Msg: fmt.Sprintf("cannot initialise field %s (%s) with %s", fd.Name, ft, t)}
				}
			}
		}
	}
	return nil
}

func (c *checker) checkMethod(cd *ClassDecl, irc *ir.Class, md *MethodDecl) error {
	irm := irc.Method(methodIRName(md), len(md.Params))
	if irm == nil {
		return &CheckError{Pos: md.Pos, Msg: "internal: missing method skeleton " + md.Name}
	}
	mc := &methodCtx{
		c: c, class: cd, irClass: irc, method: md, irMethod: irm,
		scope: &scope{vars: map[string]local{}},
	}
	if !md.Static {
		mc.nextSlot = 1 // this
	}
	for i, pm := range md.Params {
		mc.scope.vars[pm.Name] = local{slot: mc.nextSlot, typ: irm.Params[i]}
		mc.nextSlot++
	}
	// Constructors: validate any leading super(...) call.
	if md.IsCtor {
		for i, s := range md.Body {
			if sc, ok := s.(*SuperCallStmt); ok {
				if i != 0 {
					return &CheckError{Pos: sc.Pos, Msg: "super(...) must be the first statement"}
				}
				superName := irc.Super
				if superName == "" {
					return &CheckError{Pos: sc.Pos, Msg: "class has no superclass"}
				}
				superCls := c.sig.Class(superName)
				ctor := superCls.Method(ir.ConstructorName, len(sc.Args))
				if ctor == nil {
					return &CheckError{Pos: sc.Pos,
						Msg: fmt.Sprintf("superclass %s has no constructor with %d argument(s)", superName, len(sc.Args))}
				}
				for j, a := range sc.Args {
					at, err := mc.checkExpr(a)
					if err != nil {
						return err
					}
					if !c.assignable(at, ctor.Params[j]) {
						return &CheckError{Pos: a.exprPos(),
							Msg: fmt.Sprintf("super argument %d: cannot use %s as %s", j+1, at, ctor.Params[j])}
					}
				}
			}
		}
	}
	body := md.Body
	if md.IsCtor && len(body) > 0 {
		if _, ok := body[0].(*SuperCallStmt); ok {
			body = body[1:]
		}
	}
	if err := mc.checkStmts(body); err != nil {
		return err
	}
	return nil
}

func methodIRName(md *MethodDecl) string {
	if md.IsCtor {
		return ir.ConstructorName
	}
	return md.Name
}

func (mc *methodCtx) pushScope() { mc.scope = &scope{vars: map[string]local{}, parent: mc.scope} }
func (mc *methodCtx) popScope()  { mc.scope = mc.scope.parent }

func (mc *methodCtx) errf(pos Pos, format string, a ...any) error {
	return &CheckError{Pos: pos, Msg: fmt.Sprintf(format, a...)}
}

func (mc *methodCtx) checkStmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := mc.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (mc *methodCtx) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *VarDeclStmt:
		t, err := mc.c.resolveType(st.Type)
		if err != nil {
			return err
		}
		if t.IsVoid() {
			return mc.errf(st.Pos, "variable cannot be void")
		}
		if _, exists := mc.scope.vars[st.Name]; exists {
			return mc.errf(st.Pos, "variable %s redeclared in this scope", st.Name)
		}
		if st.Init != nil {
			it, err := mc.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if !mc.c.assignable(it, t) {
				return mc.errf(st.Pos, "cannot assign %s to %s %s", it, t, st.Name)
			}
		}
		st.Slot = mc.nextSlot
		mc.scope.vars[st.Name] = local{slot: mc.nextSlot, typ: t}
		mc.nextSlot++
		return nil

	case *AssignStmt:
		lt, err := mc.checkLValue(st.LHS)
		if err != nil {
			return err
		}
		rt, err := mc.checkExpr(st.RHS)
		if err != nil {
			return err
		}
		if !mc.c.assignable(rt, lt) {
			return mc.errf(st.Pos, "cannot assign %s to %s", rt, lt)
		}
		return nil

	case *ExprStmt:
		switch st.E.(type) {
		case *CallExpr, *NewExpr:
			_, err := mc.checkExpr(st.E)
			return err
		default:
			return mc.errf(st.Pos, "expression statement must be a call or allocation")
		}

	case *IfStmt:
		ct, err := mc.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != ir.KindBool {
			return mc.errf(st.Pos, "if condition must be bool, got %s", ct)
		}
		mc.pushScope()
		err = mc.checkStmts(st.Then)
		mc.popScope()
		if err != nil {
			return err
		}
		if st.Else != nil {
			mc.pushScope()
			err = mc.checkStmts(st.Else)
			mc.popScope()
			if err != nil {
				return err
			}
		}
		return nil

	case *WhileStmt:
		ct, err := mc.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != ir.KindBool {
			return mc.errf(st.Pos, "while condition must be bool, got %s", ct)
		}
		mc.pushScope()
		mc.loop++
		err = mc.checkStmts(st.Body)
		mc.loop--
		mc.popScope()
		return err

	case *ForStmt:
		mc.pushScope()
		defer mc.popScope()
		if st.Init != nil {
			if err := mc.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			ct, err := mc.checkExpr(st.Cond)
			if err != nil {
				return err
			}
			if ct.Kind != ir.KindBool {
				return mc.errf(st.Pos, "for condition must be bool, got %s", ct)
			}
		}
		if st.Post != nil {
			if err := mc.checkStmt(st.Post); err != nil {
				return err
			}
		}
		mc.loop++
		err := mc.checkStmts(st.Body)
		mc.loop--
		return err

	case *ReturnStmt:
		want := mc.irMethod.Return
		if st.E == nil {
			if !want.IsVoid() {
				return mc.errf(st.Pos, "missing return value (%s expected)", want)
			}
			return nil
		}
		if want.IsVoid() {
			return mc.errf(st.Pos, "void method cannot return a value")
		}
		got, err := mc.checkExpr(st.E)
		if err != nil {
			return err
		}
		if !mc.c.assignable(got, want) {
			return mc.errf(st.Pos, "cannot return %s as %s", got, want)
		}
		return nil

	case *BreakStmt:
		if mc.loop == 0 {
			return mc.errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if mc.loop == 0 {
			return mc.errf(st.Pos, "continue outside loop")
		}
		return nil

	case *ThrowStmt:
		t, err := mc.checkExpr(st.E)
		if err != nil {
			return err
		}
		if !t.IsRef() || (!isNullType(t) && !mc.c.sig.IsSubclassOf(t.Name, ir.ThrowableClass)) {
			return mc.errf(st.Pos, "throw requires a %s, got %s", ir.ThrowableClass, t)
		}
		return nil

	case *TryStmt:
		mc.pushScope()
		err := mc.checkStmts(st.Body)
		mc.popScope()
		if err != nil {
			return err
		}
		for i := range st.Catches {
			cc := &st.Catches[i]
			cls := mc.c.sig.Class(cc.Class)
			if cls == nil {
				return mc.errf(cc.Pos, "unknown exception class %s", cc.Class)
			}
			if !mc.c.sig.IsSubclassOf(cc.Class, ir.ThrowableClass) {
				return mc.errf(cc.Pos, "%s is not a throwable", cc.Class)
			}
			mc.pushScope()
			cc.Slot = mc.nextSlot
			mc.scope.vars[cc.Name] = local{slot: mc.nextSlot, typ: ir.Ref(cc.Class)}
			mc.nextSlot++
			err := mc.checkStmts(cc.Body)
			mc.popScope()
			if err != nil {
				return err
			}
		}
		return nil

	case *BlockStmt:
		mc.pushScope()
		err := mc.checkStmts(st.Body)
		mc.popScope()
		return err

	case *SuperCallStmt:
		return mc.errf(st.Pos, "super(...) is only allowed as a constructor's first statement")

	default:
		return mc.errf(s.stmtPos(), "internal: unknown statement %T", s)
	}
}

// checkLValue validates an assignment target and returns its type.
func (mc *methodCtx) checkLValue(e Expr) (ir.Type, error) {
	switch t := e.(type) {
	case *Ident, *FieldAccess, *IndexExpr:
		_ = t
		typ, err := mc.checkExpr(e)
		if err != nil {
			return ir.Type{}, err
		}
		if fa, ok := e.(*FieldAccess); ok && fa.IsArrayLen {
			return ir.Type{}, mc.errf(fa.Pos, "cannot assign to array length")
		}
		return typ, nil
	default:
		return ir.Type{}, mc.errf(e.exprPos(), "not an assignable expression")
	}
}
