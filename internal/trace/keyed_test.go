package trace

import (
	"fmt"
	"sync"
	"testing"
)

// TestObserveCallKeyedStats pins the keyed-histogram plane: per-op and
// per-tenant rows appear with exact counts, busiest-first ordering, and
// percentile fields that bracket the observed durations.
func TestObserveCallKeyedStats(t *testing.T) {
	r := New("n", 64)
	for i := 0; i < 90; i++ {
		r.ObserveCall("get", "tenant-a", 1000) // 1µs
	}
	for i := 0; i < 10; i++ {
		r.ObserveCall("put", "tenant-b", 1_000_000) // 1ms
	}
	st := r.Stats()
	if len(st.Ops) != 2 || len(st.Tenants) != 2 {
		t.Fatalf("keyed rows: ops=%v tenants=%v", st.Ops, st.Tenants)
	}
	if st.Ops[0].Key != "get" || st.Ops[0].Count != 90 {
		t.Fatalf("ops not busiest-first: %+v", st.Ops)
	}
	if st.Tenants[1].Key != "tenant-b" || st.Tenants[1].Count != 10 {
		t.Fatalf("tenant row wrong: %+v", st.Tenants)
	}
	// 1ms observations must land near 1000µs at p50 (log-linear error
	// is bounded at ~3%).
	p50 := st.Ops[1].P50us
	if p50 < 900 || p50 > 1100 {
		t.Fatalf("put p50 = %vµs, want ≈1000µs", p50)
	}
	// The slow op dominates the tail of tenant-a? No — axes are
	// independent: tenant-a only ever saw 1µs calls.
	if st.Tenants[0].Key != "tenant-a" || st.Tenants[0].P999us > 100 {
		t.Fatalf("tenant-a tail polluted: %+v", st.Tenants[0])
	}
}

// TestKeyedCardinalityCap floods one axis with unique keys and checks
// memory stays bounded: at most keyedMax rows plus a "~other" overflow
// row that absorbs the excess.
func TestKeyedCardinalityCap(t *testing.T) {
	r := New("n", 64)
	const flood = keyedMax * 3
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < flood/4; i++ {
				r.ObserveCall(fmt.Sprintf("m-%d-%d", g, i), "t", 500)
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	// Concurrent first-observations can overshoot the cap by a few.
	if len(st.Ops) > keyedMax+8 {
		t.Fatalf("cardinality cap failed: %d op rows", len(st.Ops))
	}
	var total uint64
	var other uint64
	for _, row := range st.Ops {
		total += row.Count
		if row.Key == "~other" {
			other = row.Count
		}
	}
	if total != flood {
		t.Fatalf("observations lost: %d of %d", total, flood)
	}
	if other == 0 {
		t.Fatal("overflow keys did not fold into ~other")
	}
	if st.Ops[len(st.Ops)-1].Key != "~other" {
		t.Fatalf("~other not last: %+v", st.Ops[len(st.Ops)-1])
	}
}
