package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRingOverwritesOldest(t *testing.T) {
	r := New("n", 64)
	if r.Cap() != 64 {
		t.Fatalf("cap %d, want 64", r.Cap())
	}
	for i := 0; i < 100; i++ {
		r.Emit(&Span{Trace: 1, ID: uint64(i + 1), Kind: KindServer, Dur: int64(i)})
	}
	if r.Len() != 64 {
		t.Fatalf("len %d, want 64 after wrap", r.Len())
	}
	if r.Emitted() != 100 {
		t.Fatalf("emitted %d, want 100", r.Emitted())
	}
	spans := r.Spans()
	if len(spans) != 64 {
		t.Fatalf("snapshot %d spans, want 64", len(spans))
	}
	// Oldest-first: the first 36 emissions were overwritten.
	if spans[0].ID != 37 || spans[63].ID != 100 {
		t.Fatalf("window [%d, %d], want [37, 100]", spans[0].ID, spans[63].ID)
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{0, DefaultSpans}, {-5, DefaultSpans}, {1, 64}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := New("n", c.ask).Cap(); got != c.want {
			t.Fatalf("capacity %d rounded to %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestNewIDUniqueNonzero(t *testing.T) {
	r := New("n", 64)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := r.NewID()
		if id == 0 {
			t.Fatal("zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %#x", id)
		}
		seen[id] = true
	}
}

// TestConcurrentWrapRace is the satellite invariant: many emitters
// wrapping the ring concurrently with snapshot readers, under -race.
// Emitters must never block and the snapshot must only ever see fully
// published spans.
func TestConcurrentWrapRace(t *testing.T) {
	r := New("n", 128)
	const emitters = 8
	const each = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Emit(&Span{Trace: uint64(g + 1), ID: r.NewID(),
					Kind: Kind(i % int(numKinds)), Dur: int64(i), Queue: int64(i % 3)})
			}
		}(g)
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range r.Spans() {
					if sp.ID == 0 {
						t.Error("snapshot saw an unpublished span")
						return
					}
				}
				r.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Emitted(); got != emitters*each {
		t.Fatalf("emitted %d, want %d", got, emitters*each)
	}
	if r.Len() != 128 {
		t.Fatalf("len %d, want full ring", r.Len())
	}
}

// TestEmitNeverBlocks pins the lock-freedom bound coarsely: a full
// ring with no reader draining it still absorbs emissions immediately.
func TestEmitNeverBlocks(t *testing.T) {
	r := New("n", 64)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100000; i++ {
			r.Emit(&Span{Trace: 1, ID: uint64(i + 1), Kind: KindClient})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("emitter blocked")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h hist
	// Uniform 1..1000 microseconds in ns.
	for i := 1; i <= 1000; i++ {
		h.observe(uint64(i) * 1000)
	}
	st, ok := h.stat("x")
	if !ok || st.Count != 1000 {
		t.Fatalf("stat: %+v ok=%v", st, ok)
	}
	// Log-linear error bound is 1/32; allow 5%.
	near := func(got, want float64) bool {
		return got > want*0.95 && got < want*1.05
	}
	if !near(st.P50us, 500) {
		t.Fatalf("p50 %.1fus, want ~500us", st.P50us)
	}
	if !near(st.P99us, 990) {
		t.Fatalf("p99 %.1fus, want ~990us", st.P99us)
	}
	if st.MaxUs != 1000 {
		t.Fatalf("max %.1fus, want 1000us", st.MaxUs)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h hist
	for i := 0; i < 100; i++ {
		h.observe(uint64(i))
	}
	if got := h.quantile(0.5); got != 50 {
		t.Fatalf("small-value p50 = %d, want exactly 50", got)
	}
	if histValue(histIndex(77)) != 77 {
		t.Fatal("exact bucket not exact")
	}
}

func TestStatsIncludesQueueSplit(t *testing.T) {
	r := New("n", 64)
	r.Emit(&Span{Trace: 1, ID: 1, Kind: KindServer, Dur: 1000, Queue: 500})
	st := r.Stats()
	var kinds []string
	for _, k := range st.Kinds {
		kinds = append(kinds, k.Kind)
	}
	want := map[string]bool{"server": false, "queue": false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("stats missing %q row: %v", k, kinds)
		}
	}
}

func TestSpanKindJSONRoundTrip(t *testing.T) {
	sp := Span{Trace: 1, ID: 2, Parent: 3, Node: "n", Kind: KindReplicaRead,
		Name: "read", Dur: 42}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != sp {
		t.Fatalf("round trip:\n%+v\n%+v", sp, back)
	}
}
