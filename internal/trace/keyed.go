package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// keyedMax caps the distinct keys a keyedHists tracks.  Op names and
// tenant identities are small sets in practice (tens), but both arrive
// off the wire, so without a cap a hostile caller could grow node
// memory one histogram (~8KB) per fabricated key.  Keys past the cap
// fold into the shared overflow histogram, reported as "~other".
const keyedMax = 256

// keyedHists is a set of latency histograms keyed by an arbitrary
// string (method name, tenant identity).  The hot path is a sync.Map
// load plus the histogram's atomic bucket increment — no locks, same
// any-tier safety as Emit.  The key count may overshoot keyedMax by a
// few under concurrent first-observations; the bound is approximate,
// the fold is what matters.
type keyedHists struct {
	m     sync.Map // string -> *hist
	n     atomic.Int64
	other hist
}

func (k *keyedHists) observe(key string, v uint64) {
	if h, ok := k.m.Load(key); ok {
		h.(*hist).observe(v)
		return
	}
	if k.n.Load() >= keyedMax {
		k.other.observe(v)
		return
	}
	nh := new(hist)
	if actual, loaded := k.m.LoadOrStore(key, nh); loaded {
		actual.(*hist).observe(v)
		return
	}
	k.n.Add(1)
	nh.observe(v)
}

// stats renders every key's distribution, busiest first, with the
// overflow histogram (if any) last as "~other".
func (k *keyedHists) stats() []KeyStat {
	var out []KeyStat
	k.m.Range(func(key, h any) bool {
		if row, ok := h.(*hist).keyStat(key.(string)); ok {
			out = append(out, row)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if row, ok := k.other.keyStat("~other"); ok {
		out = append(out, row)
	}
	return out
}

// KeyStat is one key's latency distribution at snapshot time — the
// keyed twin of KindStat, used for the per-op and per-tenant rows.
type KeyStat struct {
	Key    string  `json:"key"`
	Count  uint64  `json:"count"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// keyStat renders the histogram as a keyed snapshot row; ok is false
// when no value was ever observed.
func (h *hist) keyStat(key string) (KeyStat, bool) {
	n := h.count.Load()
	if n == 0 {
		return KeyStat{}, false
	}
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	return KeyStat{
		Key:    key,
		Count:  n,
		P50us:  us(h.quantile(0.50)),
		P99us:  us(h.quantile(0.99)),
		P999us: us(h.quantile(0.999)),
		MaxUs:  us(h.max.Load()),
	}, true
}

// ObserveCall feeds one served call into the per-op and per-tenant
// histograms.  op is the dispatched method, tenant the caller identity
// (the wire Caller endpoint); empty strings skip their axis.  Lock-free
// and nil-safe, so dispatch can call it unconditionally.
func (r *Recorder) ObserveCall(op, tenant string, durNs int64) {
	if r == nil || durNs < 0 {
		return
	}
	v := uint64(durNs)
	if op != "" {
		r.ops.observe(op, v)
	}
	if tenant != "" {
		r.tenants.observe(tenant, v)
	}
}
