// Package trace is the per-node flight recorder: every logical call —
// proxy send, server dispatch, dedup verdict, migration, replica read,
// write barrier, transport failover, adaptive decision — emits spans
// into a bounded lock-free ring buffer with fixed memory that
// overwrites the oldest entry, so tracing can stay on in production at
// negligible cost and a post-mortem always has the recent causal
// history.
//
// A span context (trace id + span id) crosses the wire as a trailing
// request extension and rides the VM environment as baggage between a
// server dispatch and the nested proxy calls it makes, so forwarded
// retries, migration re-sends and replica fan-outs all stay on the
// trace that caused them.  Spans are stored node-locally; a reader
// (rafdac, OpIntrospect) assembles the cross-node call tree by parent
// span id.
//
// Concurrency contract (docs/CONCURRENCY.md §14): Emit takes no locks
// and never blocks — one atomic fetch-add claims a slot, one atomic
// pointer store publishes the span, and histogram buckets are plain
// atomic counters.  Emission is therefore safe from any tier of the
// node's lock hierarchy, including inside object gates and under the
// replication fan-out mutex.
package trace

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"sync/atomic"
	"time"
)

// Kind classifies a span by the subsystem that emitted it.  Histograms
// are kept per kind, so p50/p99/p999 are answerable per op class.
type Kind uint8

const (
	// KindClient is a proxy call site: one remote send (including any
	// in-pool failover attempts) measured caller-side.
	KindClient Kind = iota
	// KindServer is an inbound dispatch executing on the target object,
	// with the gate wait recorded separately from the run time.
	KindServer
	// KindDedup is a duplicate-delivery verdict: replay, park or stale.
	KindDedup
	// KindReplicaRead is a read served at (or forwarded by) a replica.
	KindReplicaRead
	// KindBarrier is a primary's replica-write fan-out barrier.
	KindBarrier
	// KindMigration is a drain→ship→morph (or via-home re-send) leg.
	KindMigration
	// KindFailover is one failed transport delivery attempt inside the
	// pool's shard-failover loop.
	KindFailover
	// KindAdapt is an adaptive-engine decision surfaced as an event.
	KindAdapt

	numKinds
)

// kindNames doubles as the JSON encoding, so recorded spans read as
// "server"/"client" instead of opaque ordinals.
var kindNames = [numKinds]string{
	"client", "server", "dedup", "replica-read", "barrier",
	"migration", "failover", "adapt",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind by name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the names MarshalJSON produces (rafdac decodes
// introspection snapshots back into Span values).
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("unknown span kind %q", s)
}

// Ctx is the causal context a span runs under: the trace it belongs to
// and the parent span id.  The zero Ctx means "no trace yet" — the
// next emission starts a new root.
type Ctx struct {
	Trace uint64
	Span  uint64
}

// Span is one recorded event.  Durations are nanoseconds; Start is
// wall-clock UnixNano so cross-node assembly can order spans roughly
// even without a parent edge.
type Span struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Node   string `json:"node,omitempty"`
	Kind   Kind   `json:"kind"`
	Name   string `json:"name"`
	Target string `json:"target,omitempty"`
	Start  int64  `json:"start"`
	Queue  int64  `json:"queue,omitempty"`
	Dur    int64  `json:"dur"`
	Note   string `json:"note,omitempty"`
	Err    string `json:"err,omitempty"`
}

// Ctx returns the context for children of this span.
func (s *Span) Ctx() Ctx { return Ctx{Trace: s.Trace, Span: s.ID} }

// Recorder is the bounded flight recorder: a power-of-two ring of
// atomically published spans plus per-kind latency histograms.  Memory
// is fixed at construction (cap slots); writers never block and never
// wait for readers — a snapshot may miss a slot being overwritten
// mid-read, which is the accepted cost of lock-freedom.
type Recorder struct {
	node  string
	mask  uint64
	slots []atomic.Pointer[Span]
	pos   atomic.Uint64 // total spans ever emitted; next slot is pos&mask
	ids   atomic.Uint64 // id sequence, whitened through splitmix64
	seed  uint64
	block atomic.Pointer[spanBlock] // NewSpan's current allocation batch
	hists [numKinds]hist
	queue hist // gate-wait split of server spans

	// Keyed distributions for the SLO plane: served-call latency by
	// dispatched method and by caller identity (tenant).  Fed by
	// ObserveCall, cardinality-capped (keyed.go).
	ops     keyedHists
	tenants keyedHists
}

// spanBlockSize is NewSpan's allocation batch: spans are bump-allocated
// out of blocks this large, so the per-span share of the allocator's
// work (size-class lookup, heap bitmap, GC bookkeeping) drops by two
// orders of magnitude on the traced hot path.  A block stays reachable
// until every one of its spans has rolled out of the ring; emission
// order tracks allocation order closely (spans are short-lived between
// NewSpan and Emit), so live blocks stay near ring-capacity/blocksize.
const spanBlockSize = 128

type spanBlock struct {
	next  atomic.Uint32 // bump index of the next unclaimed span
	spans [spanBlockSize]Span
}

// NewSpan hands out a zeroed span for the caller to fill and Emit.
// Lock-free: a bump fetch-add claims a slot in the current block; the
// goroutine that finds the block exhausted CASes in a fresh one, and a
// loser of that race simply retries against the winner's block.  Spans
// are never reused, so the usual single-writer-then-publish discipline
// (fill the span, then Emit) is exactly as safe as with a heap-fresh
// span.
func (r *Recorder) NewSpan() *Span {
	for {
		b := r.block.Load()
		if b != nil {
			if i := b.next.Add(1) - 1; i < spanBlockSize {
				return &b.spans[i]
			}
			r.block.CompareAndSwap(b, nil) // retire the exhausted block
		}
		nb := new(spanBlock)
		nb.next.Store(1)
		if r.block.CompareAndSwap(nil, nb) {
			return &nb.spans[0]
		}
	}
}

// recorderNonce makes two same-named recorders in one process (test
// fixtures) generate disjoint id streams.
var recorderNonce atomic.Uint64

// DefaultSpans is the ring capacity when the node config leaves it
// unset: 4096 spans ≈ a few hundred KB, enough recent history for a
// post-mortem without mattering to a node's footprint.
const DefaultSpans = 4096

// New builds a recorder whose ring holds capacity spans (rounded up to
// a power of two, floor 64; <=0 selects DefaultSpans).
func New(node string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpans
	}
	if capacity < 64 {
		capacity = 64
	}
	size := 1 << bits.Len64(uint64(capacity-1))
	h := fnv.New64a()
	h.Write([]byte(node))
	seed := h.Sum64() ^ uint64(time.Now().UnixNano()) ^ (recorderNonce.Add(1) << 32)
	return &Recorder{
		node:  node,
		mask:  uint64(size - 1),
		slots: make([]atomic.Pointer[Span], size),
		seed:  seed,
	}
}

// splitmix64 whitens a counter into a well-distributed 64-bit id.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewID mints a process-unique nonzero id for a trace or span.
func (r *Recorder) NewID() uint64 {
	for {
		if id := splitmix64(r.seed + r.ids.Add(1)); id != 0 {
			return id
		}
	}
}

// Emit records one completed span.  Lock-free: a fetch-add claims the
// slot, a pointer store publishes it.  The span must not be mutated by
// the caller afterwards.
func (r *Recorder) Emit(s *Span) {
	if r == nil || s == nil {
		return
	}
	if s.Node == "" {
		s.Node = r.node
	}
	if s.Kind < numKinds {
		r.hists[s.Kind].observe(uint64(s.Dur))
	}
	if s.Queue > 0 {
		r.queue.observe(uint64(s.Queue))
	}
	seq := r.pos.Add(1) - 1
	r.slots[seq&r.mask].Store(s)
}

// Len reports how many spans the ring currently holds.
func (r *Recorder) Len() int {
	if n := r.pos.Load(); n < uint64(len(r.slots)) {
		return int(n)
	}
	return len(r.slots)
}

// Cap reports the fixed ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// Emitted reports the total spans ever emitted (including overwritten
// ones) — Emitted−Len is how much history the ring has dropped.
func (r *Recorder) Emitted() uint64 { return r.pos.Load() }

// Spans snapshots the ring oldest-first.  Concurrent emitters may
// overwrite slots mid-walk; the snapshot is best-effort recent history,
// never a consistency point.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	end := r.pos.Load()
	start := uint64(0)
	if end > uint64(len(r.slots)) {
		start = end - uint64(len(r.slots))
	}
	out := make([]Span, 0, end-start)
	for seq := start; seq < end; seq++ {
		if sp := r.slots[seq&r.mask].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	return out
}

// KindStat is one kind's latency distribution at snapshot time.
type KindStat struct {
	Kind   string  `json:"kind"`
	Count  uint64  `json:"count"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Stats summarises the recorder for the unified metrics snapshot.
type Stats struct {
	Spans    int        `json:"spans"`
	Capacity int        `json:"capacity"`
	Emitted  uint64     `json:"emitted"`
	Kinds    []KindStat `json:"kinds,omitempty"`
	// Ops and Tenants are served-call latency by dispatched method and
	// by caller identity, busiest first (ObserveCall's view); present
	// only once calls have been observed.
	Ops     []KeyStat `json:"ops,omitempty"`
	Tenants []KeyStat `json:"tenants,omitempty"`
}

// Stats snapshots the per-kind histograms (plus the server gate-wait
// split, reported as pseudo-kind "queue").
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	st := Stats{Spans: r.Len(), Capacity: r.Cap(), Emitted: r.Emitted()}
	for k := Kind(0); k < numKinds; k++ {
		if row, ok := r.hists[k].stat(k.String()); ok {
			st.Kinds = append(st.Kinds, row)
		}
	}
	if row, ok := r.queue.stat("queue"); ok {
		st.Kinds = append(st.Kinds, row)
	}
	st.Ops = r.ops.stats()
	st.Tenants = r.tenants.stats()
	return st
}
