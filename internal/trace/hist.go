package trace

import (
	"math/bits"
	"sync/atomic"
)

// hist is an HDR-style log-linear latency histogram over nanosecond
// durations: values below 128ns land in exact one-ns buckets, larger
// ones in 16 linear sub-buckets per power of two, bounding relative
// quantile error at 1/32 (~3%) across the full uint64 range.  Buckets
// are plain atomic counters, so observe() is lock-free and emission
// stays safe at any lock tier.
//
// Layout: indexes [0,128) are exact values; above that, each major
// octave m (values in [2^(m-1), 2^m), m >= 8) contributes 16 buckets
// selected by the four bits below the leading bit.
const (
	histExact  = 128 // exact buckets for v < 128
	histMinMaj = 8   // first log-linear octave: values >= 128 = 2^7
	histSub    = 16  // linear sub-buckets per octave
	histMajors = 64 - (histMinMaj - 1)
	histSize   = histExact + histMajors*histSub
)

type hist struct {
	buckets [histSize]atomic.Uint64
	count   atomic.Uint64
	max     atomic.Uint64
}

// histIndex maps a value to its bucket.
func histIndex(v uint64) int {
	if v < histExact {
		return int(v)
	}
	maj := bits.Len64(v) // 2^(maj-1) <= v < 2^maj, maj >= 8
	sub := (v >> (maj - 5)) & (histSub - 1)
	return histExact + (maj-histMinMaj)*histSub + int(sub)
}

// histValue is the representative (midpoint) value of a bucket.
func histValue(idx int) uint64 {
	if idx < histExact {
		return uint64(idx)
	}
	idx -= histExact
	maj := idx/histSub + histMinMaj
	sub := uint64(idx % histSub)
	lo := uint64(1)<<(maj-1) | sub<<(maj-5)
	return lo + uint64(1)<<(maj-5)/2
}

func (h *hist) observe(v uint64) {
	h.buckets[histIndex(v)].Add(1)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// quantile walks the buckets for the q-th (0..1) value.  Counts may
// move under a concurrent snapshot; the result is approximate in the
// same best-effort sense as the span ring.
func (h *hist) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < histSize; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			return histValue(i)
		}
	}
	return h.max.Load()
}

// stat renders the histogram as a snapshot row; ok is false when no
// value was ever observed (the row is omitted).
func (h *hist) stat(kind string) (KindStat, bool) {
	n := h.count.Load()
	if n == 0 {
		return KindStat{}, false
	}
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	return KindStat{
		Kind:   kind,
		Count:  n,
		P50us:  us(h.quantile(0.50)),
		P99us:  us(h.quantile(0.99)),
		P999us: us(h.quantile(0.999)),
		MaxUs:  us(h.max.Load()),
	}, true
}
