package ir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary program encoding ("RAFDA class archive").  The format is a simple
// tagged stream: varints for integers, length-prefixed UTF-8 for strings.
// It plays the role of the class-file format: the CLI stores compiled and
// transformed programs in it, and nodes exchange class definitions with it
// when a proxy class must be made available on a peer.

const archiveMagic = "RAFDA\x01"

// EncodeProgram writes p to w in archive format.
func EncodeProgram(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	e := &encoder{w: bw}
	e.raw([]byte(archiveMagic))
	e.uvarint(uint64(p.Len()))
	for _, c := range p.Classes() {
		e.class(c)
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// DecodeProgram reads an archive produced by EncodeProgram.
func DecodeProgram(r io.Reader) (*Program, error) {
	d := &decoder{r: bufio.NewReader(r)}
	magic := make([]byte, len(archiveMagic))
	if _, err := io.ReadFull(d.r, magic); err != nil {
		return nil, fmt.Errorf("read archive magic: %w", err)
	}
	if string(magic) != archiveMagic {
		return nil, fmt.Errorf("bad archive magic %q", magic)
	}
	n := d.uvarint()
	p := NewProgram()
	for i := uint64(0); i < n && d.err == nil; i++ {
		c := d.class()
		if d.err != nil {
			break
		}
		if err := p.Add(c); err != nil {
			return nil, err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}

type encoder struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) raw(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.raw([]byte(s))
}

func (e *encoder) boolean(b bool) {
	if b {
		e.uvarint(1)
	} else {
		e.uvarint(0)
	}
}

func (e *encoder) typ(t Type) {
	e.str(t.Descriptor())
}

func (e *encoder) class(c *Class) {
	e.str(c.Name)
	e.str(c.Super)
	e.uvarint(uint64(len(c.Interfaces)))
	for _, i := range c.Interfaces {
		e.str(i)
	}
	e.boolean(c.IsInterface)
	e.boolean(c.Abstract)
	e.boolean(c.Final)
	e.boolean(c.Special)
	e.str(c.Meta)
	e.uvarint(uint64(len(c.Fields)))
	for _, f := range c.Fields {
		e.str(f.Name)
		e.typ(f.Type)
		e.boolean(f.Static)
		e.boolean(f.Final)
		e.uvarint(uint64(f.Access))
	}
	e.uvarint(uint64(len(c.Methods)))
	for _, m := range c.Methods {
		e.method(m)
	}
}

func (e *encoder) method(m *Method) {
	e.str(m.Name)
	e.uvarint(uint64(len(m.Params)))
	for _, p := range m.Params {
		e.typ(p)
	}
	e.typ(m.Return)
	e.boolean(m.Static)
	e.boolean(m.Native)
	e.boolean(m.Abstract)
	e.boolean(m.Final)
	e.uvarint(uint64(m.Access))
	e.uvarint(uint64(m.MaxLocals))
	e.uvarint(uint64(len(m.Handlers)))
	for _, h := range m.Handlers {
		e.uvarint(uint64(h.Start))
		e.uvarint(uint64(h.End))
		e.uvarint(uint64(h.Target))
		e.str(h.CatchClass)
	}
	e.uvarint(uint64(len(m.Code)))
	for _, in := range m.Code {
		e.instr(in)
	}
}

func (e *encoder) instr(in Instr) {
	e.uvarint(uint64(in.Op))
	e.varint(in.A)
	e.uvarint(math.Float64bits(in.F))
	e.str(in.Str)
	e.str(in.Owner)
	e.str(in.Member)
	e.uvarint(uint64(in.NArgs))
	if in.TypeRef != nil {
		e.boolean(true)
		e.typ(*in.TypeRef)
	} else {
		e.boolean(false)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil && err != nil {
		d.err = err
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	d.fail(err)
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	d.fail(err)
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<24 {
		d.fail(fmt.Errorf("string length %d too large", n))
		return ""
	}
	b := make([]byte, n)
	_, err := io.ReadFull(d.r, b)
	d.fail(err)
	return string(b)
}

func (d *decoder) boolean() bool { return d.uvarint() != 0 }

func (d *decoder) typ() Type {
	s := d.str()
	if d.err != nil {
		return Type{}
	}
	t, err := ParseDescriptor(s)
	d.fail(err)
	return t
}

func (d *decoder) class() *Class {
	c := &Class{}
	c.Name = d.str()
	c.Super = d.str()
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		c.Interfaces = append(c.Interfaces, d.str())
	}
	c.IsInterface = d.boolean()
	c.Abstract = d.boolean()
	c.Final = d.boolean()
	c.Special = d.boolean()
	c.Meta = d.str()
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		f := Field{}
		f.Name = d.str()
		f.Type = d.typ()
		f.Static = d.boolean()
		f.Final = d.boolean()
		f.Access = Access(d.uvarint())
		c.Fields = append(c.Fields, f)
	}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		c.Methods = append(c.Methods, d.method())
	}
	return c
}

func (d *decoder) method() *Method {
	m := &Method{}
	m.Name = d.str()
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		m.Params = append(m.Params, d.typ())
	}
	m.Return = d.typ()
	m.Static = d.boolean()
	m.Native = d.boolean()
	m.Abstract = d.boolean()
	m.Final = d.boolean()
	m.Access = Access(d.uvarint())
	m.MaxLocals = int(d.uvarint())
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		h := TryHandler{}
		h.Start = int(d.uvarint())
		h.End = int(d.uvarint())
		h.Target = int(d.uvarint())
		h.CatchClass = d.str()
		m.Handlers = append(m.Handlers, h)
	}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		m.Code = append(m.Code, d.instr())
	}
	return m
}

func (d *decoder) instr() Instr {
	in := Instr{}
	in.Op = Op(d.uvarint())
	in.A = d.varint()
	in.F = math.Float64frombits(d.uvarint())
	in.Str = d.str()
	in.Owner = d.str()
	in.Member = d.str()
	in.NArgs = int(d.uvarint())
	if d.boolean() {
		t := d.typ()
		in.TypeRef = &t
	}
	if d.err == nil && !in.Op.Valid() {
		d.fail(fmt.Errorf("invalid opcode %d", in.Op))
	}
	return in
}
