// Package ir defines the class-based intermediate representation on which
// the RAFDA transformations operate.
//
// The paper's transformations are defined over JVM class files manipulated
// with BCEL.  This package provides the equivalent substrate: classes with
// instance and static fields, methods, constructors, interfaces, native
// methods and a stack-based instruction set.  Programs are sets of classes;
// they can be verified (internal/verifier), executed (internal/vm),
// transformed (internal/transform) and serialised to a compact binary form.
package ir

import (
	"fmt"
	"strings"
)

// Kind enumerates the primitive categories of the IR type system.
type Kind uint8

// Type kinds.  Numeric values are part of the binary encoding; do not
// reorder.
const (
	KindInvalid Kind = iota
	KindVoid
	KindBool
	KindInt // 64-bit signed integer (covers the paper's int and long)
	KindFloat
	KindString
	KindRef   // reference to a class or interface instance
	KindArray // array of Elem
)

func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindRef:
		return "ref"
	case KindArray:
		return "array"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Type describes the static type of a value, field, parameter or return.
// The zero value is invalid; use the constructors below.
type Type struct {
	Kind Kind
	Name string // class or interface name, for KindRef
	Elem *Type  // element type, for KindArray
}

// Predefined primitive types.  These are value prototypes: Type is treated
// as immutable, so sharing is safe.
var (
	Void   = Type{Kind: KindVoid}
	Bool   = Type{Kind: KindBool}
	Int    = Type{Kind: KindInt}
	Float  = Type{Kind: KindFloat}
	String = Type{Kind: KindString}
)

// Ref returns a reference type naming a class or interface.
func Ref(name string) Type { return Type{Kind: KindRef, Name: name} }

// ArrayOf returns the array type with the given element type.
func ArrayOf(elem Type) Type {
	e := elem
	return Type{Kind: KindArray, Elem: &e}
}

// IsRef reports whether t is a class/interface reference type.
func (t Type) IsRef() bool { return t.Kind == KindRef }

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t.Kind == KindArray }

// IsVoid reports whether t is the void type.
func (t Type) IsVoid() bool { return t.Kind == KindVoid }

// IsNumeric reports whether t supports arithmetic.
func (t Type) IsNumeric() bool { return t.Kind == KindInt || t.Kind == KindFloat }

// Equal reports structural equality of two types.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind || t.Name != o.Name {
		return false
	}
	if t.Kind == KindArray {
		return t.Elem.Equal(*o.Elem)
	}
	return true
}

// BaseElem returns the innermost non-array element type of t.
func (t Type) BaseElem() Type {
	for t.Kind == KindArray {
		t = *t.Elem
	}
	return t
}

// String renders the type in source-like notation, e.g. "int", "X", "X[]".
func (t Type) String() string {
	switch t.Kind {
	case KindRef:
		return t.Name
	case KindArray:
		return t.Elem.String() + "[]"
	default:
		return t.Kind.String()
	}
}

// Descriptor renders a compact single-token descriptor used in encodings
// and symbolic method references: V Z I F S  Lname;  [elem.
func (t Type) Descriptor() string {
	switch t.Kind {
	case KindVoid:
		return "V"
	case KindBool:
		return "Z"
	case KindInt:
		return "I"
	case KindFloat:
		return "F"
	case KindString:
		return "S"
	case KindRef:
		return "L" + t.Name + ";"
	case KindArray:
		return "[" + t.Elem.Descriptor()
	default:
		return "?"
	}
}

// ParseDescriptor parses a descriptor produced by Descriptor.
func ParseDescriptor(s string) (Type, error) {
	t, rest, err := parseDescriptor(s)
	if err != nil {
		return Type{}, err
	}
	if rest != "" {
		return Type{}, fmt.Errorf("trailing descriptor input %q", rest)
	}
	return t, nil
}

func parseDescriptor(s string) (Type, string, error) {
	if s == "" {
		return Type{}, "", fmt.Errorf("empty type descriptor")
	}
	switch s[0] {
	case 'V':
		return Void, s[1:], nil
	case 'Z':
		return Bool, s[1:], nil
	case 'I':
		return Int, s[1:], nil
	case 'F':
		return Float, s[1:], nil
	case 'S':
		return String, s[1:], nil
	case 'L':
		i := strings.IndexByte(s, ';')
		if i < 0 {
			return Type{}, "", fmt.Errorf("unterminated class descriptor %q", s)
		}
		return Ref(s[1:i]), s[i+1:], nil
	case '[':
		elem, rest, err := parseDescriptor(s[1:])
		if err != nil {
			return Type{}, "", err
		}
		return ArrayOf(elem), rest, nil
	default:
		return Type{}, "", fmt.Errorf("bad type descriptor %q", s)
	}
}

// Access is the visibility of a class member.
type Access uint8

// Member visibility levels.
const (
	AccessPublic Access = iota + 1
	AccessProtected
	AccessPackage
	AccessPrivate
)

func (a Access) String() string {
	switch a {
	case AccessPublic:
		return "public"
	case AccessProtected:
		return "protected"
	case AccessPackage:
		return "package"
	case AccessPrivate:
		return "private"
	default:
		return fmt.Sprintf("Access(%d)", uint8(a))
	}
}
