package ir

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeDescriptorRoundTrip(t *testing.T) {
	cases := []Type{
		Void, Bool, Int, Float, String,
		Ref("X"), Ref("pkg.sub.Class"),
		ArrayOf(Int), ArrayOf(Ref("Y")), ArrayOf(ArrayOf(String)),
	}
	for _, c := range cases {
		d := c.Descriptor()
		back, err := ParseDescriptor(d)
		if err != nil {
			t.Fatalf("parse %q: %v", d, err)
		}
		if !back.Equal(c) {
			t.Fatalf("round trip %v -> %q -> %v", c, d, back)
		}
	}
}

// randomType builds an arbitrary type for property tests.
func randomType(r *rand.Rand, depth int) Type {
	switch k := r.Intn(7); {
	case k == 0:
		return Bool
	case k == 1:
		return Int
	case k == 2:
		return Float
	case k == 3:
		return String
	case k == 4 && depth > 0:
		return ArrayOf(randomType(r, depth-1))
	default:
		names := []string{"A", "B", "pkg.C", "sys.Object", "Very.Long.Name"}
		return Ref(names[r.Intn(len(names))])
	}
}

func TestTypeDescriptorRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		typ := randomType(r, 3)
		back, err := ParseDescriptor(typ.Descriptor())
		return err == nil && back.Equal(typ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseDescriptorErrors(t *testing.T) {
	for _, bad := range []string{"", "Q", "L", "Lfoo", "[", "II", "Lfoo;x"} {
		if _, err := ParseDescriptor(bad); err == nil {
			t.Errorf("descriptor %q should fail", bad)
		}
	}
}

func TestMethodKeysAndSignature(t *testing.T) {
	m := &Method{Name: "m", Params: []Type{Int, Ref("X")}, Return: ArrayOf(Int)}
	if m.Key() != "m/2" {
		t.Fatalf("key %q", m.Key())
	}
	if got := m.Signature(); got != "m(ILX;)[I" {
		t.Fatalf("signature %q", got)
	}
}

func sampleClass() *Class {
	return &Class{
		Name:       "demo.Sample",
		Super:      ObjectClass,
		Interfaces: []string{"demo.Iface"},
		Fields: []Field{
			{Name: "x", Type: Int, Access: AccessPrivate},
			{Name: "names", Type: ArrayOf(String), Access: AccessPublic},
			{Name: "count", Type: Int, Static: true, Access: AccessPackage},
		},
		Methods: []*Method{
			{Name: ConstructorName, Return: Void, Access: AccessPublic,
				MaxLocals: 1, Code: []Instr{{Op: OpReturn}}},
			{Name: "work", Params: []Type{Int}, Return: Int, Access: AccessPublic,
				MaxLocals: 2,
				Handlers:  []TryHandler{{Start: 0, End: 2, Target: 2, CatchClass: ThrowableClass}},
				Code: []Instr{
					{Op: OpLoad, A: 1},
					{Op: OpReturnValue},
					{Op: OpPop},
					{Op: OpConstInt, A: -1},
					{Op: OpReturnValue},
				}},
			{Name: "nat", Return: Void, Native: true, Access: AccessPublic},
		},
	}
}

func TestProgramBasics(t *testing.T) {
	p := NewProgram()
	c := sampleClass()
	if err := p.Add(c); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(c); err == nil {
		t.Fatal("duplicate add must fail")
	}
	if !p.Has("demo.Sample") || p.Len() != 1 {
		t.Fatal("basic lookups broken")
	}
	p.Remove("demo.Sample")
	if p.Has("demo.Sample") || p.Len() != 0 {
		t.Fatal("remove broken")
	}
}

func TestResolveThroughHierarchy(t *testing.T) {
	p := NewProgram()
	p.MustAdd(&Class{Name: ObjectClass, Special: true})
	p.MustAdd(&Class{
		Name: "Base", Super: ObjectClass,
		Fields:  []Field{{Name: "b", Type: Int}},
		Methods: []*Method{{Name: "m", Return: Void, Code: []Instr{{Op: OpReturn}}}},
	})
	p.MustAdd(&Class{Name: "Derived", Super: "Base"})

	dc, dm, err := p.ResolveMethod("Derived", "m", 0)
	if err != nil || dc.Name != "Base" || dm.Name != "m" {
		t.Fatalf("resolve method: %v %v %v", dc, dm, err)
	}
	fc, ff, err := p.ResolveField("Derived", "b")
	if err != nil || fc.Name != "Base" || ff.Name != "b" {
		t.Fatalf("resolve field: %v %v %v", fc, ff, err)
	}
	if !p.IsSubclassOf("Derived", ObjectClass) {
		t.Fatal("subclass chain broken")
	}
	if p.IsSubclassOf("Base", "Derived") {
		t.Fatal("reversed subclass relation")
	}
}

func TestImplementsViaInterfaceExtension(t *testing.T) {
	p := NewProgram()
	p.MustAdd(&Class{Name: ObjectClass, Special: true})
	p.MustAdd(&Class{Name: "I", IsInterface: true, Abstract: true})
	p.MustAdd(&Class{Name: "J", IsInterface: true, Abstract: true, Interfaces: []string{"I"}})
	p.MustAdd(&Class{Name: "C", Super: ObjectClass, Interfaces: []string{"J"}})
	p.MustAdd(&Class{Name: "D", Super: "C"})

	for _, tc := range []struct {
		class, iface string
		want         bool
	}{
		{"C", "J", true}, {"C", "I", true}, {"D", "I", true},
		{"C", "C", false}, {"D", "Missing", false},
	} {
		if got := p.Implements(tc.class, tc.iface); got != tc.want {
			t.Errorf("Implements(%s,%s)=%v want %v", tc.class, tc.iface, got, tc.want)
		}
	}
	if !p.AssignableTo("D", ObjectClass) || !p.AssignableTo("D", "I") {
		t.Fatal("assignability broken")
	}
}

func TestReferencedClasses(t *testing.T) {
	c := sampleClass()
	c.Methods = append(c.Methods, &Method{
		Name: "refs", Return: Void, Access: AccessPublic, MaxLocals: 1,
		Code: []Instr{
			{Op: OpNew, Owner: "other.Made"},
			{Op: OpPop},
			{Op: OpConstNull, TypeRef: &Type{Kind: KindRef, Name: "other.Nulled"}},
			{Op: OpPop},
			{Op: OpReturn},
		},
	})
	got := c.ReferencedClasses()
	want := []string{"demo.Iface", "other.Made", "other.Nulled", ObjectClass, ThrowableClass}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("referenced = %v want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProgram()
	p.MustAdd(sampleClass())
	q := p.Clone()
	qc := q.Class("demo.Sample")
	qc.Fields[0].Name = "mutated"
	qc.Methods[1].Code[0].A = 999
	orig := p.Class("demo.Sample")
	if orig.Fields[0].Name != "x" {
		t.Fatal("clone shares fields")
	}
	if orig.Methods[1].Code[0].A != 1 {
		t.Fatal("clone shares code")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := NewProgram()
	p.MustAdd(&Class{Name: ObjectClass, Special: true})
	p.MustAdd(sampleClass())
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.SortedNames(), q.SortedNames()) {
		t.Fatalf("names differ")
	}
	a, b := p.Class("demo.Sample"), q.Class("demo.Sample")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("class round trip:\n%+v\n%+v", a, b)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeProgram(bytes.NewReader([]byte("not an archive"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeProgram(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestCodeBuilderLabels(t *testing.T) {
	b := NewCodeBuilder()
	b.ConstBool(true)
	b.JumpIfNot("end") // forward reference
	b.ConstInt(1)
	b.Store(0)
	b.Label("loop")
	b.Load(0)
	b.ConstInt(10)
	b.Op(OpCmpLt)
	b.JumpIfNot("end")
	b.Load(0)
	b.ConstInt(1)
	b.Op(OpAdd)
	b.Store(0)
	b.Jump("loop") // backward reference
	b.Label("end")
	b.Return()
	code, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// All jump targets resolved and in range.
	for pc, in := range code {
		if in.IsJump() {
			if in.A < 0 || in.A > int64(len(code)) {
				t.Fatalf("pc %d: unresolved target %d", pc, in.A)
			}
		}
	}
	if b.MaxLocals() != 1 {
		t.Fatalf("max locals %d", b.MaxLocals())
	}
}

func TestCodeBuilderUnresolvedLabel(t *testing.T) {
	b := NewCodeBuilder()
	b.Jump("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("unresolved label accepted")
	}
}

func TestPrintShapes(t *testing.T) {
	c := sampleClass()
	flat := Sprint(c, PrintOptions{})
	if !strings.Contains(flat, "class demo.Sample implements demo.Iface") {
		t.Fatalf("header missing:\n%s", flat)
	}
	if strings.Contains(flat, "0:") {
		t.Fatal("flat print leaked code")
	}
	full := Sprint(c, PrintOptions{Code: true})
	if !strings.Contains(full, "load 1") || !strings.Contains(full, "try [0,2) catch sys.Throwable -> 2") {
		t.Fatalf("full print missing code:\n%s", full)
	}
	iface := &Class{Name: "I", IsInterface: true, Abstract: true}
	if !strings.Contains(Sprint(iface, PrintOptions{}), "interface I") {
		t.Fatal("interface print broken")
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"const.i 42":          {Op: OpConstInt, A: 42},
		"const.s \"hi\"":      {Op: OpConstString, Str: "hi"},
		"getfield X.f":        {Op: OpGetField, Owner: "X", Member: "f"},
		"invokevirtual X.m/2": {Op: OpInvokeVirtual, Owner: "X", Member: "m", NArgs: 2},
		"jump @7":             {Op: OpJump, A: 7},
		"new X":               {Op: OpNew, Owner: "X"},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("%v prints %q want %q", in.Op, got, want)
		}
	}
}

func TestProgramMissingReferences(t *testing.T) {
	p := NewProgram()
	p.MustAdd(&Class{Name: ObjectClass, Special: true})
	p.MustAdd(&Class{
		Name: "Lonely", Super: ObjectClass,
		Fields: []Field{{Name: "f", Type: Ref("Ghost")}},
	})
	missing := p.MissingReferences()
	if len(missing) != 2 { // Ghost and ThrowableClass... no: only Ghost
		if !(len(missing) == 1 && missing[0] == "Ghost") {
			t.Fatalf("missing = %v", missing)
		}
	}
}
