package ir

import "fmt"

// Op enumerates the instruction opcodes of the stack machine.
type Op uint8

// Opcodes.  Numeric values are part of the binary encoding; append only.
const (
	OpInvalid Op = iota

	// Constants and locals.
	OpConstInt    // push I
	OpConstFloat  // push F
	OpConstString // push Str
	OpConstBool   // push I != 0
	OpConstNull   // push null reference (typed by TypeRef)
	OpLoad        // push local slot A
	OpStore       // pop into local slot A

	// Stack manipulation.
	OpDup
	OpPop
	OpSwap

	// Object and field access.  Owner names the declaring class, Member the
	// field; TypeRef carries the field type where needed by the verifier.
	OpNew       // push new instance of Owner (fields zeroed, ctor NOT run)
	OpGetField  // pop ref, push ref.Member
	OpPutField  // pop value, pop ref, ref.Member = value
	OpGetStatic // push Owner.Member
	OpPutStatic // pop value, Owner.Member = value

	// Invocation.  Owner.Member with NArgs arguments (not counting the
	// receiver for instance invokes).  Stack: recv?, a1..aN -> result?.
	OpInvokeVirtual   // dynamic dispatch on receiver class
	OpInvokeInterface // dynamic dispatch via interface
	OpInvokeStatic    // static dispatch on Owner
	OpInvokeSpecial   // exact dispatch on Owner (constructors, super calls)

	// Arrays.
	OpNewArray // pop length, push new array with element type *TypeRef
	OpALoad    // pop index, pop array, push element
	OpAStore   // pop value, pop index, pop array, store
	OpArrayLen // pop array, push length

	// Arithmetic and logic (operate on the top one/two stack values).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg
	OpNot    // boolean not
	OpConcat // string concatenation

	// Comparison: pop b, pop a, push bool.
	OpCmpEq
	OpCmpNe
	OpCmpLt
	OpCmpLe
	OpCmpGt
	OpCmpGe

	// Control flow.  A is the absolute target pc.
	OpJump
	OpJumpIf    // pop cond, jump when true
	OpJumpIfNot // pop cond, jump when false

	// Typing.
	OpCast       // pop ref, checkcast to *TypeRef, push
	OpInstanceOf // pop ref, push bool

	// Method exit and exceptions.
	OpReturn      // return void
	OpReturnValue // pop value, return it
	OpThrow       // pop throwable ref

	opMax // sentinel; keep last
)

var opNames = map[Op]string{
	OpConstInt:        "const.i",
	OpConstFloat:      "const.f",
	OpConstString:     "const.s",
	OpConstBool:       "const.b",
	OpConstNull:       "const.null",
	OpLoad:            "load",
	OpStore:           "store",
	OpDup:             "dup",
	OpPop:             "pop",
	OpSwap:            "swap",
	OpNew:             "new",
	OpGetField:        "getfield",
	OpPutField:        "putfield",
	OpGetStatic:       "getstatic",
	OpPutStatic:       "putstatic",
	OpInvokeVirtual:   "invokevirtual",
	OpInvokeInterface: "invokeinterface",
	OpInvokeStatic:    "invokestatic",
	OpInvokeSpecial:   "invokespecial",
	OpNewArray:        "newarray",
	OpALoad:           "aload",
	OpAStore:          "astore",
	OpArrayLen:        "arraylen",
	OpAdd:             "add",
	OpSub:             "sub",
	OpMul:             "mul",
	OpDiv:             "div",
	OpRem:             "rem",
	OpNeg:             "neg",
	OpNot:             "not",
	OpConcat:          "concat",
	OpCmpEq:           "cmp.eq",
	OpCmpNe:           "cmp.ne",
	OpCmpLt:           "cmp.lt",
	OpCmpLe:           "cmp.le",
	OpCmpGt:           "cmp.gt",
	OpCmpGe:           "cmp.ge",
	OpJump:            "jump",
	OpJumpIf:          "jump.if",
	OpJumpIfNot:       "jump.ifnot",
	OpCast:            "cast",
	OpInstanceOf:      "instanceof",
	OpReturn:          "return",
	OpReturnValue:     "return.v",
	OpThrow:           "throw",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax }

// Instr is a single instruction.  Operand usage depends on Op; unused
// operands are zero.
type Instr struct {
	Op      Op
	A       int64 // local slot, jump target pc, or bool const
	F       float64
	Str     string // string constant
	Owner   string // declaring class for field/method/new ops
	Member  string // field or method name
	NArgs   int    // argument count for invokes
	TypeRef *Type  // type operand for new/newarray/cast/instanceof/const.null
}

// IsInvoke reports whether the instruction is any invocation opcode.
func (in Instr) IsInvoke() bool {
	switch in.Op {
	case OpInvokeVirtual, OpInvokeInterface, OpInvokeStatic, OpInvokeSpecial:
		return true
	}
	return false
}

// IsJump reports whether the instruction transfers control to Instr.A.
func (in Instr) IsJump() bool {
	switch in.Op {
	case OpJump, OpJumpIf, OpJumpIfNot:
		return true
	}
	return false
}

// String renders the instruction in assembly-like notation.
func (in Instr) String() string {
	switch in.Op {
	case OpConstInt:
		return fmt.Sprintf("const.i %d", in.A)
	case OpConstBool:
		return fmt.Sprintf("const.b %v", in.A != 0)
	case OpConstFloat:
		return fmt.Sprintf("const.f %g", in.F)
	case OpConstString:
		return fmt.Sprintf("const.s %q", in.Str)
	case OpConstNull:
		if in.TypeRef != nil {
			return fmt.Sprintf("const.null %s", in.TypeRef)
		}
		return "const.null"
	case OpLoad, OpStore:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case OpNew:
		return fmt.Sprintf("new %s", in.Owner)
	case OpGetField, OpPutField, OpGetStatic, OpPutStatic:
		return fmt.Sprintf("%s %s.%s", in.Op, in.Owner, in.Member)
	case OpInvokeVirtual, OpInvokeInterface, OpInvokeStatic, OpInvokeSpecial:
		return fmt.Sprintf("%s %s.%s/%d", in.Op, in.Owner, in.Member, in.NArgs)
	case OpNewArray, OpCast, OpInstanceOf:
		return fmt.Sprintf("%s %s", in.Op, in.TypeRef)
	case OpJump, OpJumpIf, OpJumpIfNot:
		return fmt.Sprintf("%s @%d", in.Op, in.A)
	default:
		return in.Op.String()
	}
}
