package ir

import "fmt"

// CodeBuilder incrementally assembles a method body.  It supports forward
// labels so generators (codegen, transformer, proxies, factories) never
// compute jump targets by hand.
type CodeBuilder struct {
	code     []Instr
	labels   map[string]int   // label -> pc
	fixups   map[string][]int // label -> pcs of jumps awaiting target
	maxLocal int
}

// NewCodeBuilder returns an empty builder.
func NewCodeBuilder() *CodeBuilder {
	return &CodeBuilder{
		labels: make(map[string]int),
		fixups: make(map[string][]int),
	}
}

// PC returns the index the next emitted instruction will have.
func (b *CodeBuilder) PC() int { return len(b.code) }

// Emit appends an instruction and returns its pc.
func (b *CodeBuilder) Emit(in Instr) int {
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// Op emits a zero-operand instruction.
func (b *CodeBuilder) Op(op Op) int { return b.Emit(Instr{Op: op}) }

// ConstInt pushes an integer constant.
func (b *CodeBuilder) ConstInt(v int64) { b.Emit(Instr{Op: OpConstInt, A: v}) }

// ConstBool pushes a boolean constant.
func (b *CodeBuilder) ConstBool(v bool) {
	var a int64
	if v {
		a = 1
	}
	b.Emit(Instr{Op: OpConstBool, A: a})
}

// ConstFloat pushes a float constant.
func (b *CodeBuilder) ConstFloat(v float64) { b.Emit(Instr{Op: OpConstFloat, F: v}) }

// ConstString pushes a string constant.
func (b *CodeBuilder) ConstString(s string) { b.Emit(Instr{Op: OpConstString, Str: s}) }

// ConstNull pushes a typed null.
func (b *CodeBuilder) ConstNull(t Type) {
	tt := t
	b.Emit(Instr{Op: OpConstNull, TypeRef: &tt})
}

// Load pushes local slot n.
func (b *CodeBuilder) Load(n int) {
	b.noteLocal(n)
	b.Emit(Instr{Op: OpLoad, A: int64(n)})
}

// Store pops into local slot n.
func (b *CodeBuilder) Store(n int) {
	b.noteLocal(n)
	b.Emit(Instr{Op: OpStore, A: int64(n)})
}

func (b *CodeBuilder) noteLocal(n int) {
	if n+1 > b.maxLocal {
		b.maxLocal = n + 1
	}
}

// New emits object allocation for the named class.
func (b *CodeBuilder) New(class string) { b.Emit(Instr{Op: OpNew, Owner: class}) }

// GetField emits an instance field read.
func (b *CodeBuilder) GetField(owner, name string) {
	b.Emit(Instr{Op: OpGetField, Owner: owner, Member: name})
}

// PutField emits an instance field write.
func (b *CodeBuilder) PutField(owner, name string) {
	b.Emit(Instr{Op: OpPutField, Owner: owner, Member: name})
}

// GetStatic emits a static field read.
func (b *CodeBuilder) GetStatic(owner, name string) {
	b.Emit(Instr{Op: OpGetStatic, Owner: owner, Member: name})
}

// PutStatic emits a static field write.
func (b *CodeBuilder) PutStatic(owner, name string) {
	b.Emit(Instr{Op: OpPutStatic, Owner: owner, Member: name})
}

// Invoke emits an invocation of the given kind.
func (b *CodeBuilder) Invoke(op Op, owner, name string, nargs int) {
	b.Emit(Instr{Op: op, Owner: owner, Member: name, NArgs: nargs})
}

// Label defines the named label at the current pc and patches pending
// forward references.
func (b *CodeBuilder) Label(name string) {
	pc := b.PC()
	b.labels[name] = pc
	for _, at := range b.fixups[name] {
		b.code[at].A = int64(pc)
	}
	delete(b.fixups, name)
}

// Jump emits an unconditional jump to the named label.
func (b *CodeBuilder) Jump(label string) { b.jumpOp(OpJump, label) }

// JumpIf emits a jump taken when the popped condition is true.
func (b *CodeBuilder) JumpIf(label string) { b.jumpOp(OpJumpIf, label) }

// JumpIfNot emits a jump taken when the popped condition is false.
func (b *CodeBuilder) JumpIfNot(label string) { b.jumpOp(OpJumpIfNot, label) }

func (b *CodeBuilder) jumpOp(op Op, label string) {
	pc := b.Emit(Instr{Op: op, A: -1})
	if at, ok := b.labels[label]; ok {
		b.code[pc].A = int64(at)
		return
	}
	b.fixups[label] = append(b.fixups[label], pc)
}

// Cast emits a checked cast to t.
func (b *CodeBuilder) Cast(t Type) {
	tt := t
	b.Emit(Instr{Op: OpCast, TypeRef: &tt})
}

// Return emits a void return.
func (b *CodeBuilder) Return() { b.Op(OpReturn) }

// ReturnValue emits a value return.
func (b *CodeBuilder) ReturnValue() { b.Op(OpReturnValue) }

// SetMinLocals raises the builder's recorded local count (e.g. to cover
// parameters that are never re-loaded).
func (b *CodeBuilder) SetMinLocals(n int) {
	if n > b.maxLocal {
		b.maxLocal = n
	}
}

// MaxLocals returns the highest local slot count observed.
func (b *CodeBuilder) MaxLocals() int { return b.maxLocal }

// Build returns the assembled code, failing if any label is unresolved.
func (b *CodeBuilder) Build() ([]Instr, error) {
	if len(b.fixups) > 0 {
		for name := range b.fixups {
			return nil, fmt.Errorf("unresolved label %q", name)
		}
	}
	return b.code, nil
}

// MustBuild is Build that panics on unresolved labels; generators use it
// because label sets are static.
func (b *CodeBuilder) MustBuild() []Instr {
	code, err := b.Build()
	if err != nil {
		panic(err)
	}
	return code
}
