package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Well-known class names of the built-in system hierarchy.  The VM provides
// these classes (see internal/vm's system program); they play the role of
// java.lang.* in the paper: they have special JVM semantics and are
// therefore never transformable (§2.4).
const (
	ObjectClass    = "sys.Object"
	ThrowableClass = "sys.Throwable"
	SystemClass    = "sys.System"
	StringClass    = "sys.StringUtil"
	MathClass      = "sys.Math"
)

// ConstructorName is the reserved method name for constructors.
const ConstructorName = "<init>"

// StaticInitName is the reserved method name for the static initialiser.
const StaticInitName = "<clinit>"

// Field describes an instance or static field of a class.
type Field struct {
	Name   string
	Type   Type
	Static bool
	Final  bool
	Access Access
}

// TryHandler describes one entry of a method's exception handler table:
// if an exception of class CatchClass (or a subclass) is thrown while pc is
// in [Start, End), control transfers to Target with the throwable pushed.
type TryHandler struct {
	Start      int
	End        int
	Target     int
	CatchClass string // empty means catch-all
}

// Method describes a method, constructor (<init>) or static initialiser
// (<clinit>).  A method with Native set has no Code; its behaviour is
// provided by the runtime's native registry under the key "Owner.Name".
type Method struct {
	Name      string
	Params    []Type
	Return    Type
	Static    bool
	Native    bool
	Abstract  bool
	Final     bool
	Access    Access
	Code      []Instr
	Handlers  []TryHandler
	MaxLocals int // locals slots incl. receiver+params; set by codegen
}

// IsConstructor reports whether m is a constructor.
func (m *Method) IsConstructor() bool { return m.Name == ConstructorName }

// IsStaticInit reports whether m is the static initialiser.
func (m *Method) IsStaticInit() bool { return m.Name == StaticInitName }

// Signature renders a symbolic signature such as "m(IF)Lsys.Object;".
func (m *Method) Signature() string {
	var b strings.Builder
	b.WriteString(m.Name)
	b.WriteByte('(')
	for _, p := range m.Params {
		b.WriteString(p.Descriptor())
	}
	b.WriteByte(')')
	b.WriteString(m.Return.Descriptor())
	return b.String()
}

// Key identifies a method within a class by name and arity.  The IR, like
// the paper's presentation, does not support overloading on types, only on
// arity (the mini-Java front end enforces this).
func (m *Method) Key() string { return MethodKey(m.Name, len(m.Params)) }

// MethodKey builds the lookup key used by Class method tables.
func MethodKey(name string, nargs int) string {
	return fmt.Sprintf("%s/%d", name, nargs)
}

// Class describes a class or interface.
type Class struct {
	Name        string
	Super       string   // empty for ObjectClass and for interfaces
	Interfaces  []string // implemented (class) or extended (interface)
	IsInterface bool
	Abstract    bool
	Final       bool
	// Special marks classes with VM-level semantics (the sys.* hierarchy
	// and anything the front end flags): such classes are never
	// transformable, mirroring the paper's JVM-special classes.
	Special bool
	Fields  []Field
	Methods []*Method

	// Meta records provenance, e.g. "generated:proxy:soap"; informational.
	Meta string
}

// Field returns the field declared in c (not supers) with the given name.
func (c *Class) Field(name string) *Field {
	for i := range c.Fields {
		if c.Fields[i].Name == name {
			return &c.Fields[i]
		}
	}
	return nil
}

// Method returns the method declared in c with the given name and arity.
func (c *Class) Method(name string, nargs int) *Method {
	for _, m := range c.Methods {
		if m.Name == name && len(m.Params) == nargs {
			return m
		}
	}
	return nil
}

// MethodByKey returns the declared method with the given MethodKey.
func (c *Class) MethodByKey(key string) *Method {
	for _, m := range c.Methods {
		if m.Key() == key {
			return m
		}
	}
	return nil
}

// Constructors returns the declared constructors in declaration order.
func (c *Class) Constructors() []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if m.IsConstructor() {
			out = append(out, m)
		}
	}
	return out
}

// StaticInit returns the static initialiser, or nil.
func (c *Class) StaticInit() *Method {
	for _, m := range c.Methods {
		if m.IsStaticInit() {
			return m
		}
	}
	return nil
}

// HasNativeMethod reports whether any declared method is native.
func (c *Class) HasNativeMethod() bool {
	for _, m := range c.Methods {
		if m.Native {
			return true
		}
	}
	return false
}

// InstanceFields returns declared non-static fields.
func (c *Class) InstanceFields() []Field {
	var out []Field
	for _, f := range c.Fields {
		if !f.Static {
			out = append(out, f)
		}
	}
	return out
}

// StaticFields returns declared static fields.
func (c *Class) StaticFields() []Field {
	var out []Field
	for _, f := range c.Fields {
		if f.Static {
			out = append(out, f)
		}
	}
	return out
}

// InstanceMethods returns declared non-static, non-constructor methods.
func (c *Class) InstanceMethods() []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if !m.Static && !m.IsConstructor() {
			out = append(out, m)
		}
	}
	return out
}

// StaticMethods returns declared static methods excluding <clinit>.
func (c *Class) StaticMethods() []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if m.Static && !m.IsStaticInit() {
			out = append(out, m)
		}
	}
	return out
}

// ReferencedClasses returns the names of every class or interface that c
// references: in its super/interface clauses, field types, method
// signatures, and instruction operands.  The result is sorted and
// duplicate-free and excludes c itself.
func (c *Class) ReferencedClasses() []string {
	set := map[string]bool{}
	addType := func(t Type) {
		b := t.BaseElem()
		if b.Kind == KindRef {
			set[b.Name] = true
		}
	}
	if c.Super != "" {
		set[c.Super] = true
	}
	for _, i := range c.Interfaces {
		set[i] = true
	}
	for _, f := range c.Fields {
		addType(f.Type)
	}
	for _, m := range c.Methods {
		for _, p := range m.Params {
			addType(p)
		}
		addType(m.Return)
		for _, h := range m.Handlers {
			if h.CatchClass != "" {
				set[h.CatchClass] = true
			}
		}
		for _, in := range m.Code {
			if in.Owner != "" {
				set[in.Owner] = true
			}
			if in.TypeRef != nil {
				addType(*in.TypeRef)
			}
		}
	}
	delete(set, c.Name)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
