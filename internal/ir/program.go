package ir

import (
	"fmt"
	"sort"
)

// Program is a set of classes closed under reference (when complete).
// It corresponds to the class path of the application being transformed.
type Program struct {
	classes map[string]*Class
	order   []string // insertion order, for deterministic iteration
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{classes: make(map[string]*Class)}
}

// Add inserts a class.  Adding a duplicate name returns an error.
func (p *Program) Add(c *Class) error {
	if c == nil || c.Name == "" {
		return fmt.Errorf("add class: nil or unnamed class")
	}
	if _, dup := p.classes[c.Name]; dup {
		return fmt.Errorf("add class: duplicate class %q", c.Name)
	}
	p.classes[c.Name] = c
	p.order = append(p.order, c.Name)
	return nil
}

// MustAdd is Add that panics; for use in generators building fresh names.
func (p *Program) MustAdd(c *Class) {
	if err := p.Add(c); err != nil {
		panic(err)
	}
}

// Replace inserts or overwrites a class.
func (p *Program) Replace(c *Class) {
	if _, ok := p.classes[c.Name]; !ok {
		p.order = append(p.order, c.Name)
	}
	p.classes[c.Name] = c
}

// Remove deletes a class by name; missing names are ignored.
func (p *Program) Remove(name string) {
	if _, ok := p.classes[name]; !ok {
		return
	}
	delete(p.classes, name)
	for i, n := range p.order {
		if n == name {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// Class returns the class with the given name, or nil.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// Has reports whether the program contains the named class.
func (p *Program) Has(name string) bool { _, ok := p.classes[name]; return ok }

// Len returns the number of classes.
func (p *Program) Len() int { return len(p.classes) }

// Names returns all class names in insertion order.
func (p *Program) Names() []string {
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// SortedNames returns all class names sorted lexicographically.
func (p *Program) SortedNames() []string {
	out := p.Names()
	sort.Strings(out)
	return out
}

// Classes returns the classes in insertion order.
func (p *Program) Classes() []*Class {
	out := make([]*Class, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.classes[n])
	}
	return out
}

// Merge adds every class of q into p, erroring on duplicates.
func (p *Program) Merge(q *Program) error {
	for _, c := range q.Classes() {
		if err := p.Add(c); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the program; mutating the copy (as the
// transformer does) leaves the original untouched.
func (p *Program) Clone() *Program {
	q := NewProgram()
	for _, c := range p.Classes() {
		q.MustAdd(CloneClass(c))
	}
	return q
}

// ShallowClone returns a copy of the program's class *set* that shares
// the underlying Class values.  It supports copy-on-write class loading:
// the VM publishes an immutable Program snapshot per load, so readers
// resolve classes without locks while a writer builds the next snapshot.
func (p *Program) ShallowClone() *Program {
	q := &Program{
		classes: make(map[string]*Class, len(p.classes)),
		order:   append([]string(nil), p.order...),
	}
	for n, c := range p.classes {
		q.classes[n] = c
	}
	return q
}

// IsSubclassOf reports whether class sub equals sup or transitively extends
// it via superclass links.  Malformed cyclic hierarchies terminate (false).
func (p *Program) IsSubclassOf(sub, sup string) bool {
	seen := map[string]bool{}
	for name := sub; name != "" && !seen[name]; {
		if name == sup {
			return true
		}
		seen[name] = true
		c := p.classes[name]
		if c == nil {
			return false
		}
		name = c.Super
	}
	return false
}

// Implements reports whether class name (or any superclass) lists iface in
// its interfaces clause, directly or via interface extension.
func (p *Program) Implements(name, iface string) bool {
	seen := map[string]bool{}
	var ifaceReach func(string) bool
	ifaceReach = func(i string) bool {
		if i == iface {
			return true
		}
		if seen[i] {
			return false
		}
		seen[i] = true
		c := p.classes[i]
		if c == nil {
			return false
		}
		for _, super := range c.Interfaces {
			if ifaceReach(super) {
				return true
			}
		}
		return false
	}
	for cur := name; cur != ""; {
		c := p.classes[cur]
		if c == nil {
			return false
		}
		for _, i := range c.Interfaces {
			if ifaceReach(i) {
				return true
			}
		}
		cur = c.Super
	}
	return false
}

// AssignableTo reports whether a value of dynamic class `from` may be bound
// to a reference of static class/interface `to`.
func (p *Program) AssignableTo(from, to string) bool {
	if from == to || to == ObjectClass {
		return true
	}
	if p.IsSubclassOf(from, to) {
		return true
	}
	return p.Implements(from, to)
}

// ResolveMethod looks up the method `name/nargs` starting at class cname
// and walking the superclass chain, then superinterfaces.  It returns the
// declaring class and the method, or an error.
func (p *Program) ResolveMethod(cname, name string, nargs int) (*Class, *Method, error) {
	seenSupers := map[string]bool{}
	for cur := cname; cur != "" && !seenSupers[cur]; {
		seenSupers[cur] = true
		c := p.classes[cur]
		if c == nil {
			return nil, nil, fmt.Errorf("resolve %s.%s/%d: unknown class %q", cname, name, nargs, cur)
		}
		if m := c.Method(name, nargs); m != nil {
			return c, m, nil
		}
		cur = c.Super
	}
	// Interface default resolution: search the interface graph for an
	// abstract declaration (used by the verifier for interface types).
	if c := p.classes[cname]; c != nil {
		var search func(string) (*Class, *Method)
		seen := map[string]bool{}
		search = func(iname string) (*Class, *Method) {
			if seen[iname] {
				return nil, nil
			}
			seen[iname] = true
			ic := p.classes[iname]
			if ic == nil {
				return nil, nil
			}
			if m := ic.Method(name, nargs); m != nil {
				return ic, m
			}
			for _, super := range ic.Interfaces {
				if dc, dm := search(super); dm != nil {
					return dc, dm
				}
			}
			return nil, nil
		}
		seenChain := map[string]bool{}
		for cur := cname; cur != "" && !seenChain[cur]; {
			seenChain[cur] = true
			cc := p.classes[cur]
			if cc == nil {
				break
			}
			for _, i := range cc.Interfaces {
				if dc, dm := search(i); dm != nil {
					return dc, dm, nil
				}
			}
			cur = cc.Super
		}
	}
	return nil, nil, fmt.Errorf("resolve: no method %s.%s/%d", cname, name, nargs)
}

// ResolveField looks up field `name` starting at class cname and walking
// the superclass chain.
func (p *Program) ResolveField(cname, name string) (*Class, *Field, error) {
	seen := map[string]bool{}
	for cur := cname; cur != "" && !seen[cur]; {
		seen[cur] = true
		c := p.classes[cur]
		if c == nil {
			return nil, nil, fmt.Errorf("resolve field %s.%s: unknown class %q", cname, name, cur)
		}
		if f := c.Field(name); f != nil {
			return c, f, nil
		}
		cur = c.Super
	}
	return nil, nil, fmt.Errorf("resolve: no field %s.%s", cname, name)
}

// MissingReferences returns, for each class, referenced class names absent
// from the program (sorted).  An empty result means the program is closed.
func (p *Program) MissingReferences() []string {
	missing := map[string]bool{}
	for _, c := range p.Classes() {
		for _, r := range c.ReferencedClasses() {
			if !p.Has(r) {
				missing[r] = true
			}
		}
	}
	out := make([]string, 0, len(missing))
	for n := range missing {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CloneClass returns a deep copy of a class.
func CloneClass(c *Class) *Class {
	n := *c
	n.Interfaces = append([]string(nil), c.Interfaces...)
	n.Fields = append([]Field(nil), c.Fields...)
	n.Methods = make([]*Method, len(c.Methods))
	for i, m := range c.Methods {
		n.Methods[i] = CloneMethod(m)
	}
	return &n
}

// CloneMethod returns a deep copy of a method.
func CloneMethod(m *Method) *Method {
	n := *m
	n.Params = append([]Type(nil), m.Params...)
	n.Handlers = append([]TryHandler(nil), m.Handlers...)
	n.Code = make([]Instr, len(m.Code))
	for i, in := range m.Code {
		ci := in
		if in.TypeRef != nil {
			t := *in.TypeRef
			ci.TypeRef = &t
		}
		n.Code[i] = ci
	}
	return &n
}
