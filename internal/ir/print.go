package ir

import (
	"fmt"
	"io"
	"strings"
)

// PrintOptions control disassembly output.
type PrintOptions struct {
	// Code includes method bodies; otherwise only signatures are printed
	// (the "javap"-like view used when comparing against the paper's
	// figures).
	Code bool
}

// Fprint writes a textual rendering of the class to w.
func Fprint(w io.Writer, c *Class, opts PrintOptions) {
	kind := "class"
	if c.IsInterface {
		kind = "interface"
	}
	mods := ""
	if c.Abstract && !c.IsInterface {
		mods += "abstract "
	}
	if c.Final {
		mods += "final "
	}
	fmt.Fprintf(w, "%s%s %s", mods, kind, c.Name)
	if c.Super != "" && c.Super != ObjectClass {
		fmt.Fprintf(w, " extends %s", c.Super)
	}
	if len(c.Interfaces) > 0 {
		fmt.Fprintf(w, " implements %s", strings.Join(c.Interfaces, ", "))
	}
	fmt.Fprintln(w, " {")
	for _, f := range c.Fields {
		fmt.Fprintf(w, "    %s%s%s%s %s;\n",
			accessPrefix(f.Access), staticPrefix(f.Static), finalPrefix(f.Final), f.Type, f.Name)
	}
	for _, m := range c.Methods {
		printMethod(w, m, opts)
	}
	fmt.Fprintln(w, "}")
}

// Sprint returns Fprint output as a string.
func Sprint(c *Class, opts PrintOptions) string {
	var b strings.Builder
	Fprint(&b, c, opts)
	return b.String()
}

// SprintProgram renders every class of the program in sorted-name order.
func SprintProgram(p *Program, opts PrintOptions) string {
	var b strings.Builder
	for i, name := range p.SortedNames() {
		if i > 0 {
			b.WriteByte('\n')
		}
		Fprint(&b, p.Class(name), opts)
	}
	return b.String()
}

func printMethod(w io.Writer, m *Method, opts PrintOptions) {
	var params []string
	for i, p := range m.Params {
		params = append(params, fmt.Sprintf("%s a%d", p, i))
	}
	head := fmt.Sprintf("%s%s%s%s%s",
		accessPrefix(m.Access), staticPrefix(m.Static), nativePrefix(m.Native), abstractPrefix(m.Abstract), "")
	switch m.Name {
	case ConstructorName:
		fmt.Fprintf(w, "    %s<init>(%s)", head, strings.Join(params, ", "))
	case StaticInitName:
		fmt.Fprintf(w, "    %s<clinit>()", head)
	default:
		fmt.Fprintf(w, "    %s%s %s(%s)", head, m.Return, m.Name, strings.Join(params, ", "))
	}
	if !opts.Code || m.Native || m.Abstract {
		fmt.Fprintln(w, ";")
		return
	}
	fmt.Fprintln(w, " {")
	for pc, in := range m.Code {
		fmt.Fprintf(w, "        %4d: %s\n", pc, in)
	}
	for _, h := range m.Handlers {
		cc := h.CatchClass
		if cc == "" {
			cc = "<any>"
		}
		fmt.Fprintf(w, "        try [%d,%d) catch %s -> %d\n", h.Start, h.End, cc, h.Target)
	}
	fmt.Fprintln(w, "    }")
}

func accessPrefix(a Access) string {
	switch a {
	case AccessPublic:
		return "public "
	case AccessProtected:
		return "protected "
	case AccessPrivate:
		return "private "
	default:
		return ""
	}
}

func staticPrefix(s bool) string {
	if s {
		return "static "
	}
	return ""
}

func finalPrefix(f bool) string {
	if f {
		return "final "
	}
	return ""
}

func nativePrefix(n bool) string {
	if n {
		return "native "
	}
	return ""
}

func abstractPrefix(a bool) string {
	if a {
		return "abstract "
	}
	return ""
}
