package registry

import (
	"sync"
	"testing"

	"rafda/internal/ir"
	"rafda/internal/vm"
)

func obj() *vm.Object {
	return vm.NewRawObject(&ir.Class{Name: "X"}, map[string]vm.Value{})
}

func TestEnsureIdempotent(t *testing.T) {
	tab := New("n1")
	o := obj()
	id1 := tab.Ensure(o)
	id2 := tab.Ensure(o)
	if id1 != id2 {
		t.Fatalf("ids differ: %s vs %s", id1, id2)
	}
	got, ok := tab.Get(id1)
	if !ok || got != o {
		t.Fatal("lookup failed")
	}
	if back, ok := tab.GUIDOf(o); !ok || back != id1 {
		t.Fatal("reverse lookup failed")
	}
	if tab.Len() != 1 {
		t.Fatalf("len=%d", tab.Len())
	}
}

func TestDistinctObjectsDistinctIDs(t *testing.T) {
	tab := New("n1")
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := tab.Ensure(obj())
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestPutAndRemove(t *testing.T) {
	tab := New("n1")
	o := obj()
	tab.Put("class:X", o)
	if got, ok := tab.Get("class:X"); !ok || got != o {
		t.Fatal("put lookup failed")
	}
	tab.Remove("class:X")
	if _, ok := tab.Get("class:X"); ok {
		t.Fatal("remove failed")
	}
	if _, ok := tab.GUIDOf(o); ok {
		t.Fatal("reverse map leaked")
	}
	tab.Remove("absent") // must not panic
}

func TestConcurrentEnsure(t *testing.T) {
	tab := New("n1")
	shared := obj()
	var wg sync.WaitGroup
	ids := make([]string, 16)
	for g := range ids {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ids[g] = tab.Ensure(shared)
				tab.Ensure(obj())
			}
		}(g)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatal("shared object got multiple ids")
		}
	}
}
