// Package registry maintains a node's exported-object table: the map
// from GUIDs to live VM objects that remote references point at.
package registry

import (
	"sync"

	"rafda/internal/guid"
	"rafda/internal/vm"
)

// Table is one node's export table.  It is safe for concurrent use.
type Table struct {
	mu     sync.Mutex
	gen    *guid.Generator
	byGUID map[string]*vm.Object
	byObj  map[*vm.Object]string
}

// New returns an empty table issuing GUIDs stamped with node.
func New(node string) *Table {
	return &Table{
		gen:    guid.NewGenerator(node),
		byGUID: make(map[string]*vm.Object),
		byObj:  make(map[*vm.Object]string),
	}
}

// Ensure exports obj (idempotently) and returns its GUID.
func (t *Table) Ensure(obj *vm.Object) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byObj[obj]; ok {
		return id
	}
	id := t.gen.Next()
	t.byGUID[id] = obj
	t.byObj[obj] = id
	return id
}

// Put exports obj under a caller-chosen GUID (class singletons).
func (t *Table) Put(id string, obj *vm.Object) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byGUID[id] = obj
	t.byObj[obj] = id
}

// Get resolves a GUID.
func (t *Table) Get(id string) (*vm.Object, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	obj, ok := t.byGUID[id]
	return obj, ok
}

// GUIDOf returns the GUID obj is exported under, if any.
func (t *Table) GUIDOf(obj *vm.Object) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.byObj[obj]
	return id, ok
}

// Remove withdraws an export.
func (t *Table) Remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if obj, ok := t.byGUID[id]; ok {
		delete(t.byObj, obj)
		delete(t.byGUID, id)
	}
}

// Len returns the number of exported objects.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byGUID)
}
