// Package wrapper implements the alternative design the paper's §3
// discusses and rejects: instead of transforming classes against
// extracted interfaces, generate a wrapper per class that encapsulates a
// target instance and intercepts every access by forwarding.  "Although
// much simpler in terms of implementation, this introduces significantly
// greater overhead" — experiment E4 quantifies that claim against the
// RAFDA transformation.
//
// The wrapper for A extends A (so wrapped references remain type
// compatible), holds the real instance in __target, and overrides every
// method — including the property accessors that field accesses are
// rewritten to — with a forwarding body.  Each intercepted call costs an
// extra virtual dispatch plus a field indirection, which is the overhead
// E4 measures.
package wrapper

import (
	"fmt"

	"rafda/internal/ir"
	"rafda/internal/transform"
)

// Suffix of generated wrapper classes.
const Suffix = "_Wrapper"

// TargetField holds the wrapped instance.
const TargetField = "__target"

// WrapMethod is the static helper that wraps a freshly constructed
// instance.
const WrapMethod = "wrap"

// WrapperOf names the wrapper class for a class.
func WrapperOf(class string) string { return class + Suffix }

// Result is a completed wrapper transformation.
type Result struct {
	Program *ir.Program
	// Analysis reuses the RAFDA substitutability analysis: wrappers are
	// generated for exactly the classes RAFDA would transform, so the
	// comparison is like for like.
	Analysis *transform.Analysis
	Wrapped  []string
}

// Transform produces the wrapper-based version of prog: every
// substitutable class gains property accessors and a generated wrapper;
// field accesses are rewritten through the (virtual) accessors; every
// construction site is wrapped.
func Transform(prog *ir.Program, exclude ...string) (*Result, error) {
	analysis := transform.Analyze(prog, exclude...)
	out := ir.NewProgram()
	res := &Result{Analysis: analysis}
	for _, c := range prog.Classes() {
		if !analysis.Transformable(c.Name) {
			out.MustAdd(ir.CloneClass(c))
			continue
		}
		augmented, err := augmentClass(analysis, c)
		if err != nil {
			return nil, fmt.Errorf("wrap %s: %w", c.Name, err)
		}
		out.MustAdd(augmented)
		out.MustAdd(makeWrapper(analysis, prog, c))
		res.Wrapped = append(res.Wrapped, c.Name)
	}
	res.Program = out
	return res, nil
}

// augmentClass adds get_/set_ accessors for every instance field and
// rewrites the class's code so field accesses and constructions go
// through the interception points.
func augmentClass(a *transform.Analysis, c *ir.Class) (*ir.Class, error) {
	n := ir.CloneClass(c)
	for _, f := range c.InstanceFields() {
		n.Methods = append(n.Methods,
			&ir.Method{
				Name: transform.Getter(f.Name), Return: f.Type, Access: ir.AccessPublic,
				MaxLocals: 1,
				Code: []ir.Instr{
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpGetField, Owner: c.Name, Member: f.Name},
					{Op: ir.OpReturnValue},
				},
			},
			&ir.Method{
				Name: transform.Setter(f.Name), Params: []ir.Type{f.Type}, Return: ir.Void,
				Access: ir.AccessPublic, MaxLocals: 2,
				Code: []ir.Instr{
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpLoad, A: 1},
					{Op: ir.OpPutField, Owner: c.Name, Member: f.Name},
					{Op: ir.OpReturn},
				},
			})
	}
	for _, m := range n.Methods {
		if m.Abstract || m.Native || len(m.Code) == 0 {
			continue
		}
		if isAccessor(c, m) {
			continue
		}
		m.Code = rewriteWrapped(a, m.Code)
	}
	return n, nil
}

// isAccessor reports whether m is one of the accessors just generated
// (their direct field access must survive).
func isAccessor(c *ir.Class, m *ir.Method) bool {
	for _, f := range c.InstanceFields() {
		if m.Name == transform.Getter(f.Name) && len(m.Params) == 0 {
			return true
		}
		if m.Name == transform.Setter(f.Name) && len(m.Params) == 1 {
			return true
		}
	}
	return false
}

// rewriteWrapped rewrites a body: field accesses on wrapped classes
// become accessor calls; constructions gain a wrap() call.  Instruction
// counts change, so jumps are remapped like the RAFDA rewriter does.
//
// Construction sites are distinguished from super-constructor calls by
// matching each constructor invocation against pending OpNew owners in
// LIFO order (the stack discipline construction sequences follow).
func rewriteWrapped(a *transform.Analysis, code []ir.Instr) []ir.Instr {
	out := make([]ir.Instr, 0, len(code)+8)
	newPC := make([]int, len(code)+1)
	var pendingNew []string
	for pc, in := range code {
		newPC[pc] = len(out)
		switch {
		case in.Op == ir.OpNew:
			pendingNew = append(pendingNew, in.Owner)
			out = append(out, in)
		case in.Op == ir.OpGetField && a.Transformable(in.Owner):
			out = append(out, ir.Instr{Op: ir.OpInvokeVirtual, Owner: in.Owner, Member: transform.Getter(in.Member)})
		case in.Op == ir.OpPutField && a.Transformable(in.Owner):
			out = append(out, ir.Instr{Op: ir.OpInvokeVirtual, Owner: in.Owner, Member: transform.Setter(in.Member), NArgs: 1})
		case in.Op == ir.OpInvokeSpecial && in.Member == ir.ConstructorName &&
			len(pendingNew) > 0 && pendingNew[len(pendingNew)-1] == in.Owner:
			pendingNew = pendingNew[:len(pendingNew)-1]
			out = append(out, in)
			if a.Transformable(in.Owner) {
				out = append(out, ir.Instr{Op: ir.OpInvokeStatic, Owner: WrapperOf(in.Owner), Member: WrapMethod, NArgs: 1})
			}
		default:
			out = append(out, in)
		}
	}
	newPC[len(code)] = len(out)
	for i := range out {
		if out[i].IsJump() {
			out[i].A = int64(newPC[out[i].A])
		}
	}
	return out
}
