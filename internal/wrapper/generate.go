package wrapper

import (
	"rafda/internal/ir"
	"rafda/internal/transform"
)

// makeWrapper generates A_Wrapper: a subclass of A holding the real
// instance in __target and overriding every visible instance method
// (including the generated accessors) with a forwarding body.
func makeWrapper(a *transform.Analysis, prog *ir.Program, c *ir.Class) *ir.Class {
	name := WrapperOf(c.Name)
	w := &ir.Class{
		Name:  name,
		Super: c.Name,
		Meta:  "generated:wrapper:" + c.Name,
		Fields: []ir.Field{
			{Name: TargetField, Type: ir.Ref(c.Name), Access: ir.AccessPrivate},
		},
	}
	// Constructor: <init>(A target) { this.__target = target; }
	// The superclass constructor is deliberately not run: the wrapper's
	// inherited fields are dead state, all access forwards to target.
	w.Methods = append(w.Methods, &ir.Method{
		Name: ir.ConstructorName, Params: []ir.Type{ir.Ref(c.Name)}, Return: ir.Void,
		Access: ir.AccessPublic, MaxLocals: 2,
		Code: []ir.Instr{
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpLoad, A: 1},
			{Op: ir.OpPutField, Owner: name, Member: TargetField},
			{Op: ir.OpReturn},
		},
	})
	// static A wrap(A target) { return new A_Wrapper(target); }
	w.Methods = append(w.Methods, &ir.Method{
		Name: WrapMethod, Params: []ir.Type{ir.Ref(c.Name)}, Return: ir.Ref(c.Name),
		Static: true, Access: ir.AccessPublic, MaxLocals: 1,
		Code: []ir.Instr{
			{Op: ir.OpNew, Owner: name},
			{Op: ir.OpDup},
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpInvokeSpecial, Owner: name, Member: ir.ConstructorName, NArgs: 1},
			{Op: ir.OpReturnValue},
		},
	})
	// Forwarding overrides for every visible instance method declared in
	// the transformable part of the hierarchy, plus the accessors that
	// augmentClass adds.
	seen := map[string]bool{}
	forward := func(mname string, params []ir.Type, ret ir.Type) {
		key := ir.MethodKey(mname, len(params))
		if seen[key] {
			return
		}
		seen[key] = true
		b := ir.NewCodeBuilder()
		b.Load(0)
		b.GetField(name, TargetField)
		for i := range params {
			b.Load(i + 1)
		}
		b.Invoke(ir.OpInvokeVirtual, c.Name, mname, len(params))
		if ret.IsVoid() {
			b.Return()
		} else {
			b.ReturnValue()
		}
		b.SetMinLocals(len(params) + 1)
		w.Methods = append(w.Methods, &ir.Method{
			Name: mname, Params: append([]ir.Type(nil), params...), Return: ret,
			Access: ir.AccessPublic, Code: b.MustBuild(), MaxLocals: b.MaxLocals(),
		})
	}
	for cur := c; cur != nil && a.Transformable(cur.Name); {
		for _, f := range cur.InstanceFields() {
			forward(transform.Getter(f.Name), nil, f.Type)
			forward(transform.Setter(f.Name), []ir.Type{f.Type}, ir.Void)
		}
		for _, m := range cur.InstanceMethods() {
			if m.Native {
				continue
			}
			forward(m.Name, m.Params, m.Return)
		}
		if cur.Super == "" {
			break
		}
		cur = prog.Class(cur.Super)
	}
	return w
}
