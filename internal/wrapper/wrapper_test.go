package wrapper

import (
	"bytes"
	"testing"

	"rafda/internal/minijava"
	"rafda/internal/verifier"
	"rafda/internal/vm"
)

// runBoth compiles src, runs it untouched and wrapper-transformed, and
// requires identical output.
func runBoth(t *testing.T, src string) string {
	t.Helper()
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var origOut bytes.Buffer
	orig := vm.MustNew(prog.Clone(), vm.WithOutput(&origOut))
	if err := orig.RunMain("Main"); err != nil {
		t.Fatalf("original run: %v", err)
	}

	res, err := Transform(prog)
	if err != nil {
		t.Fatalf("wrapper transform: %v", err)
	}
	if errs := verifier.Verify(res.Program); len(errs) > 0 {
		for _, e := range errs {
			t.Errorf("verify: %v", e)
		}
		t.FailNow()
	}
	var wrapOut bytes.Buffer
	wrapped := vm.MustNew(res.Program, vm.WithOutput(&wrapOut))
	if err := wrapped.RunMain("Main"); err != nil {
		t.Fatalf("wrapped run: %v", err)
	}
	if origOut.String() != wrapOut.String() {
		t.Fatalf("behaviour diverged:\noriginal: %q\nwrapped:  %q", origOut.String(), wrapOut.String())
	}
	return wrapOut.String()
}

func TestWrapperEquivalenceBasic(t *testing.T) {
	out := runBoth(t, `
class Point {
    int x;
    int y;
    Point(int x, int y) { this.x = x; this.y = y; }
    int dist2() { return x * x + y * y; }
}
class Main {
    static void main() {
        Point p = new Point(3, 4);
        sys.System.println("d2=" + p.dist2());
        p.x = 6;
        sys.System.println("d2=" + p.dist2());
    }
}`)
	if out != "d2=25\nd2=52\n" {
		t.Fatalf("unexpected output %q", out)
	}
}

func TestWrapperEquivalenceSharedState(t *testing.T) {
	runBoth(t, `
class C {
    int state;
    C(int s) { this.state = s; }
    int bump() { state = state + 1; return state; }
}
class A {
    C c;
    A(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class Main {
    static void main() {
        C shared = new C(10);
        A a1 = new A(shared);
        A a2 = new A(shared);
        sys.System.println("" + a1.use() + "," + a2.use() + "," + shared.bump());
    }
}`)
}

func TestWrapperEquivalenceInheritance(t *testing.T) {
	runBoth(t, `
class Base {
    int v;
    Base(int v) { this.v = v; }
    int get() { return v; }
    int twice() { return get() * 2; }
}
class Derived extends Base {
    Derived(int v) { super(v); }
    int get() { return v + 100; }
}
class Main {
    static void main() {
        Base b = new Derived(5);
        sys.System.println("t=" + b.twice());
        Base p = new Base(3);
        sys.System.println("t=" + p.twice());
    }
}`)
}

func TestEveryInstanceIsWrapped(t *testing.T) {
	prog, err := minijava.Compile(`
class Thing {
    int id;
    Thing(int id) { this.id = id; }
    int get() { return id; }
}
class Main {
    static string go() {
        Thing t = new Thing(1);
        return t.getClass();
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.MustNew(res.Program)
	got, err := machine.Invoke("Main", "go", vm.Value{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.S != "Thing_Wrapper" {
		t.Fatalf("dynamic class %q; instance escaped wrapping", got.S)
	}
}

func TestWrapperCountsPerInstance(t *testing.T) {
	// One wrapper object per instantiated object: N constructions yield
	// N wrappers (the per-object overhead §3 points at).
	prog, err := minijava.Compile(`
class Leaf {
    int v;
    Leaf(int v) { this.v = v; }
    int get() { return v; }
}
class Main {
    static int go(int n) {
        int total = 0;
        for (int i = 0; i < n; i = i + 1) {
            Leaf l = new Leaf(i);
            total = total + l.get();
        }
        return total;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.MustNew(res.Program)
	got, err := machine.Invoke("Main", "go", vm.Value{}, []vm.Value{vm.IntV(10)})
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 45 {
		t.Fatalf("sum=%d want 45", got.I)
	}
}
