// Package corpus generates a synthetic SDK class library with the
// structural properties that drive the paper's §2.4 transformability
// statistic ("about 40% of the 8,200 classes and interfaces in JDK 1.4.1
// cannot be transformed").  The JDK itself is unavailable (and not IR),
// so experiment E2 runs the real substitutability analysis over a
// deterministic synthetic library whose native-method density, throwable
// hierarchy, interface usage and reference graph are shaped like a
// platform SDK: a native-heavy core layer (java.lang/java.io analogue),
// mid layers referencing the core, and leaf application-facing layers.
// The non-transformable fraction is *computed* by the analysis closure,
// not hard-coded.
package corpus

import (
	"fmt"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// Params shape the synthetic SDK.
type Params struct {
	// Classes is the total number of classes and interfaces to generate
	// (the paper's JDK 1.4.1 figure is 8,200).
	Classes int
	// Layers is the number of dependency layers; layer 0 is the native
	// core, higher layers are progressively more applicative.
	Layers int
	// CoreNativeFrac is the fraction of layer-0 classes with native
	// methods (per mille, 0..1000).
	CoreNativeFrac int
	// OuterNativeFrac is the per-mille native fraction in the outermost
	// layer; intermediate layers interpolate.
	OuterNativeFrac int
	// InterfaceFrac is the per-mille fraction of interfaces.
	InterfaceFrac int
	// ImplementsFrac is the per-mille fraction of classes implementing
	// some generated interface.
	ImplementsFrac int
	// ThrowableFrac is the per-mille fraction of throwable classes.
	ThrowableFrac int
	// RefsPerClass is the expected number of referenced classes.
	RefsPerClass int
	// SubclassFrac is the per-mille fraction of classes that extend a
	// previously generated same-or-lower-layer class.
	SubclassFrac int
	// Seed drives the deterministic generator.
	Seed uint64
}

// JDKLike returns parameters calibrated so that the substitutability
// analysis over the generated library reproduces the paper's §2.4
// statistic (≈40% of 8,200 classes non-transformable).  The *inputs* are
// structural — native density falling from core to edge, interface and
// throwable fractions, an inward-pointing reference graph — and the
// fraction emerges from the closure rules; only the densities were
// calibrated, by running the analysis, to land near the published
// figure.
func JDKLike() Params {
	return Params{
		Classes:         8200,
		Layers:          5,
		CoreNativeFrac:  150,
		OuterNativeFrac: 5,
		InterfaceFrac:   50,
		ImplementsFrac:  25,
		ThrowableFrac:   50,
		RefsPerClass:    1,
		SubclassFrac:    150,
		Seed:            1,
	}
}

// Generate builds the synthetic SDK as a complete, verifiable program
// (system library included).
func Generate(p Params) *ir.Program {
	if p.Classes <= 0 {
		p.Classes = 100
	}
	if p.Layers <= 0 {
		p.Layers = 1
	}
	g := &gen{p: p, rng: p.Seed*2 + 1, prog: stdlib.Program()}
	g.run()
	return g.prog
}

type classInfo struct {
	name        string
	layer       int
	isInterface bool
	throwable   bool
}

type gen struct {
	p    Params
	rng  uint64
	prog *ir.Program
	made []classInfo
}

// next is a splitmix64 step.
func (g *gen) next() uint64 {
	g.rng += 0x9e3779b97f4a7c15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns true with probability perMille/1000.
func (g *gen) chance(perMille int) bool {
	return int(g.next()%1000) < perMille
}

// pick returns a pseudo-random int in [0, n).
func (g *gen) pick(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.next() % uint64(n))
}

func (g *gen) run() {
	perLayer := g.p.Classes / g.p.Layers
	idx := 0
	for layer := 0; layer < g.p.Layers; layer++ {
		count := perLayer
		if layer == g.p.Layers-1 {
			count = g.p.Classes - perLayer*(g.p.Layers-1)
		}
		for i := 0; i < count; i++ {
			g.emit(idx, layer)
			idx++
		}
	}
}

// nativeFracAt interpolates the native density for a layer.
func (g *gen) nativeFracAt(layer int) int {
	if g.p.Layers == 1 {
		return g.p.CoreNativeFrac
	}
	span := g.p.CoreNativeFrac - g.p.OuterNativeFrac
	return g.p.CoreNativeFrac - span*layer/(g.p.Layers-1)
}

func (g *gen) emit(idx, layer int) {
	name := fmt.Sprintf("sdk.l%d.C%04d", layer, idx)
	info := classInfo{name: name, layer: layer}

	// Interfaces.
	if g.chance(g.p.InterfaceFrac) {
		info.isInterface = true
		c := &ir.Class{
			Name:        name,
			IsInterface: true,
			Abstract:    true,
			Methods: []*ir.Method{{
				Name: "op", Params: []ir.Type{ir.Int}, Return: ir.Int,
				Abstract: true, Access: ir.AccessPublic,
			}},
		}
		g.prog.MustAdd(c)
		g.made = append(g.made, info)
		return
	}

	c := &ir.Class{Name: name, Super: ir.ObjectClass}

	// Throwables extend the system exception hierarchy.
	if g.chance(g.p.ThrowableFrac) {
		info.throwable = true
		c.Super = stdlib.ExceptionClass
		c.Fields = append(c.Fields, ir.Field{Name: "detail", Type: ir.Int, Access: ir.AccessPrivate})
		c.Methods = append(c.Methods, defaultCtor(name, c.Super))
		g.prog.MustAdd(c)
		g.made = append(g.made, info)
		return
	}

	// Subclassing within the generated library (non-interface,
	// non-throwable candidates from same or lower layers only).
	if g.chance(g.p.SubclassFrac) {
		if super := g.pickClass(layer, false); super != "" {
			c.Super = super
		}
	}

	// Implements a generated interface.
	if g.chance(g.p.ImplementsFrac) {
		if iface := g.pickInterface(layer); iface != "" {
			c.Interfaces = append(c.Interfaces, iface)
			c.Methods = append(c.Methods, &ir.Method{
				Name: "op", Params: []ir.Type{ir.Int}, Return: ir.Int,
				Access: ir.AccessPublic, MaxLocals: 2,
				Code: []ir.Instr{
					{Op: ir.OpLoad, A: 1},
					{Op: ir.OpReturnValue},
				},
			})
		}
	}

	// References to other generated classes (fields).  References point
	// inward (same or lower layer), as platform SDK dependencies do —
	// the core never depends on application-facing layers.
	refs := g.pick(g.p.RefsPerClass*2 + 1)
	for r := 0; r < refs; r++ {
		if target := g.pickClass(layer, false); target != "" && target != name {
			c.Fields = append(c.Fields, ir.Field{
				Name:   fmt.Sprintf("ref%d", r),
				Type:   ir.Ref(target),
				Access: ir.AccessPrivate,
			})
		}
	}

	// Plain state and behaviour.
	c.Fields = append(c.Fields, ir.Field{Name: "state", Type: ir.Int, Access: ir.AccessPrivate})
	c.Methods = append(c.Methods, defaultCtor(name, c.Super))
	c.Methods = append(c.Methods, &ir.Method{
		Name: "work", Params: []ir.Type{ir.Int}, Return: ir.Int,
		Access: ir.AccessPublic, MaxLocals: 2,
		Code: []ir.Instr{
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpGetField, Owner: name, Member: "state"},
			{Op: ir.OpLoad, A: 1},
			{Op: ir.OpAdd},
			{Op: ir.OpReturnValue},
		},
	})

	// Native methods, dense in the core and sparse at the edge.
	if g.chance(g.nativeFracAt(layer)) {
		c.Methods = append(c.Methods, &ir.Method{
			Name: "sysop", Params: []ir.Type{ir.Int}, Return: ir.Int,
			Native: true, Access: ir.AccessPublic,
		})
	}

	g.prog.MustAdd(c)
	g.made = append(g.made, info)
}

// pickClass selects a previously generated plain class from a layer <
// maxLayer (exclusive); any layer when maxLayer <= 0 means none.
func (g *gen) pickClass(maxLayer int, allowAnyLayer bool) string {
	// Collect lazily: scan a bounded number of random probes.
	for probe := 0; probe < 8; probe++ {
		if len(g.made) == 0 {
			return ""
		}
		ci := g.made[g.pick(len(g.made))]
		if ci.isInterface || ci.throwable {
			continue
		}
		if !allowAnyLayer && ci.layer > maxLayer {
			continue
		}
		return ci.name
	}
	return ""
}

func (g *gen) pickInterface(maxLayer int) string {
	for probe := 0; probe < 8; probe++ {
		if len(g.made) == 0 {
			return ""
		}
		ci := g.made[g.pick(len(g.made))]
		if ci.isInterface {
			return ci.name
		}
	}
	return ""
}

func defaultCtor(name, super string) *ir.Method {
	code := []ir.Instr{
		{Op: ir.OpLoad, A: 0},
		{Op: ir.OpInvokeSpecial, Owner: super, Member: ir.ConstructorName},
		{Op: ir.OpReturn},
	}
	if super == stdlib.ExceptionClass {
		code = []ir.Instr{
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpConstString, Str: ""},
			{Op: ir.OpInvokeSpecial, Owner: super, Member: ir.ConstructorName, NArgs: 1},
			{Op: ir.OpReturn},
		}
	}
	return &ir.Method{
		Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic,
		MaxLocals: 1, Code: code,
	}
}
