package corpus

import (
	"testing"

	"rafda/internal/transform"
	"rafda/internal/verifier"
)

func TestDeterminism(t *testing.T) {
	p := Params{Classes: 500, Layers: 3, CoreNativeFrac: 150, OuterNativeFrac: 5,
		InterfaceFrac: 50, ImplementsFrac: 25, ThrowableFrac: 50, RefsPerClass: 1,
		SubclassFrac: 150, Seed: 7}
	a := Generate(p)
	b := Generate(p)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	na, nb := a.SortedNames(), b.SortedNames()
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("name %d differs: %s vs %s", i, na[i], nb[i])
		}
	}
	// Same analysis outcome.
	sa := transform.Analyze(a).Stats()
	sb := transform.Analyze(b).Stats()
	if sa.NonTransformable != sb.NonTransformable || sa.Transformable != sb.Transformable {
		t.Fatalf("analysis differs: %+v vs %+v", sa, sb)
	}
}

func TestSeedChangesCorpus(t *testing.T) {
	p1 := Params{Classes: 500, Layers: 3, CoreNativeFrac: 150, OuterNativeFrac: 5,
		InterfaceFrac: 50, ImplementsFrac: 25, ThrowableFrac: 50, RefsPerClass: 1,
		SubclassFrac: 150, Seed: 1}
	p2 := p1
	p2.Seed = 2
	s1 := transform.Analyze(Generate(p1)).Stats()
	s2 := transform.Analyze(Generate(p2)).Stats()
	if s1.NonTransformable == s2.NonTransformable && s1.Transformable == s2.Transformable {
		t.Log("seeds produced identical stats; acceptable but unlikely")
	}
}

func TestGeneratedCorpusVerifies(t *testing.T) {
	p := JDKLike()
	p.Classes = 800 // keep the test fast; structure is scale-free
	prog := Generate(p)
	if errs := verifier.Verify(prog); len(errs) > 0 {
		for i, e := range errs {
			if i > 10 {
				t.Fatalf("... and %d more", len(errs)-10)
			}
			t.Errorf("verify: %v", e)
		}
	}
}

func TestJDKLikeReproducesPaperStatistic(t *testing.T) {
	// The paper: "About 40% of the 8,200 classes and interfaces in JDK
	// 1.4.1 cannot be transformed."
	prog := Generate(JDKLike())
	s := transform.Analyze(prog).Stats()
	if s.Total < 8200 {
		t.Fatalf("corpus too small: %d", s.Total)
	}
	pct := s.Percent()
	if pct < 33 || pct > 47 {
		t.Fatalf("non-transformable fraction %.1f%% outside the paper's ~40%% band", pct)
	}
}

func TestNativeSensitivity(t *testing.T) {
	// §2.4: "This percentage would increase if the user code contains
	// native methods which refer to a JDK class."
	base := JDKLike()
	base.Classes = 2000
	more := base
	more.CoreNativeFrac = 400
	more.OuterNativeFrac = 100
	pctBase := transform.Analyze(Generate(base)).Stats().Percent()
	pctMore := transform.Analyze(Generate(more)).Stats().Percent()
	if pctMore <= pctBase {
		t.Fatalf("more natives should reduce transformability: %.1f%% -> %.1f%%", pctBase, pctMore)
	}
}

func TestTransformableSubsetActuallyTransforms(t *testing.T) {
	p := JDKLike()
	p.Classes = 300
	prog := Generate(p)
	res, err := transform.Transform(prog, transform.Options{Protocols: []string{"rrp"}})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if errs := verifier.Verify(res.Program); len(errs) > 0 {
		for i, e := range errs {
			if i > 10 {
				break
			}
			t.Errorf("verify transformed corpus: %v", e)
		}
	}
	if len(res.Transformed) == 0 {
		t.Fatal("nothing transformed")
	}
}
