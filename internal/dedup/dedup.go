// Package dedup implements the exactly-once invocation contract's two
// halves: the caller-side Issuer that stamps every logical call with a
// (caller, sequence, attempt) token, and the callee-side Table of
// bounded per-caller windows that recognises duplicate deliveries of a
// tokened call and suppresses their re-execution.
//
// The protocol (docs/CONCURRENCY.md §10 spells out the full contract):
//
//   - Every logical call gets one token for its lifetime.  Physical
//     retries — transport shard failover, a duplicated frame, a
//     re-send at a migrated object's new home — reuse the token with
//     the attempt ordinal bumped.
//   - The callee keeps one window per caller, with entries keyed by
//     (sequence, target).  The first delivery of a (sequence, target)
//     executes and its response is recorded; a duplicate of an
//     in-flight call parks until the first attempt completes and then
//     replays its response; a duplicate of a completed call replays
//     immediately; a duplicate of a retired call is rejected (never
//     re-executed — at-most-once is preserved even past the cache).
//     The same sequence arriving for a different target is not a
//     duplicate: it is the same logical call revisiting this node
//     further down a proxy-forwarding chain (tokens propagate across
//     forwards), and it executes under its own entry rather than
//     deadlocking parked behind its own in-flight ancestor.
//   - Entries retire by the caller's acked watermark (Token.Ack,
//     piggybacked on every subsequent request: the caller has the
//     response for every sequence <= Ack, so replay can never be
//     needed).  A bounded replay cache caps memory regardless of ack
//     progress: past the cap the oldest completed entries are evicted
//     and the per-caller retired watermark advances over them.
//
// # Thread safety
//
// Issuer and Table are safe for concurrent use.  A window's lock is
// held only for map bookkeeping — never across an execution or a park —
// so dedup adds two short critical sections per tokened call.
package dedup

import (
	"fmt"
	"sync"

	"rafda/internal/telemetry"
	"rafda/internal/wire"
)

// DefaultWindow is the default per-caller replay-cache bound (completed
// entries retained for replay); in-flight entries are bounded by the
// transport's per-connection in-flight cap, not by this.
const DefaultWindow = 1024

// Issuer allocates call tokens for one node incarnation and tracks
// which sequences have had their responses delivered, maintaining the
// ack watermark every outgoing token piggybacks.
type Issuer struct {
	caller string

	mu      sync.Mutex
	next    uint64
	floor   uint64              // every seq <= floor is finished
	pending map[uint64]struct{} // finished seqs above a gap, awaiting floor advance
}

// NewIssuer returns an issuer stamping tokens for the given caller
// incarnation id.  The id must be unique per node *instance* (a restart
// must not reuse its predecessor's id, or stale windows at peers could
// confuse the two histories); the node runtime derives it from its GUID
// generator.
func NewIssuer(caller string) *Issuer {
	return &Issuer{caller: caller, pending: make(map[uint64]struct{})}
}

// Caller returns the issuer's incarnation id.
func (i *Issuer) Caller() string { return i.caller }

// Stamp allocates the next sequence and stamps req with a fresh token
// carrying the current ack watermark.  It returns the sequence for the
// matching Finish call.
func (i *Issuer) Stamp(req *wire.Request) uint64 {
	i.mu.Lock()
	i.next++
	seq := i.next
	tok := &wire.CallToken{Caller: i.caller, Seq: seq, Ack: i.floor}
	i.mu.Unlock()
	req.Token = tok
	return seq
}

// Retry bumps req's token attempt ordinal in place (same logical call,
// next physical delivery) and refreshes the piggybacked watermark.
func (i *Issuer) Retry(req *wire.Request) {
	if req.Token == nil {
		return
	}
	req.Token.Attempt++
	i.mu.Lock()
	req.Token.Ack = i.floor
	i.mu.Unlock()
}

// Finish marks seq's logical call settled at the caller: its response
// was delivered (or the call was abandoned after a terminal transport
// error — the caller will never re-send the token, so the callee's
// entry is dead weight either way).  The watermark advances over every
// contiguous finished sequence.
func (i *Issuer) Finish(seq uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if seq <= i.floor {
		return
	}
	i.pending[seq] = struct{}{}
	for {
		if _, ok := i.pending[i.floor+1]; !ok {
			return
		}
		delete(i.pending, i.floor+1)
		i.floor++
	}
}

// Ack returns the current watermark (for tests and diagnostics).
func (i *Issuer) Ack() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.floor
}

// Table is one node's dedup state: a window per caller incarnation.
type Table struct {
	cap   int
	stats *telemetry.DedupStats

	mu      sync.Mutex
	windows map[string]*Window
}

// NewTable builds a table whose windows retain up to cap completed
// entries each (cap <= 0 takes DefaultWindow).
func NewTable(cap int) *Table {
	if cap <= 0 {
		cap = DefaultWindow
	}
	return &Table{cap: cap, stats: &telemetry.DedupStats{}, windows: make(map[string]*Window)}
}

// Stats returns the table's live counters (always recording; attach to
// a telemetry.Recorder to expose them through the metrics plane).
func (t *Table) Stats() *telemetry.DedupStats { return t.stats }

// Cap returns the per-caller completed-entry bound.
func (t *Table) Cap() int { return t.cap }

// window returns caller's window, creating it on first use.
func (t *Table) window(caller string) *Window {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.windows[caller]
	if !ok {
		w = &Window{table: t, entries: make(map[entryKey]*Entry)}
		t.windows[caller] = w
		t.stats.Windows.Add(1)
	}
	return w
}

// entryKey identifies one delivery stream within a window.  Entries
// are keyed by (sequence, target), not sequence alone: a forwarded
// call keeps the originating caller's token across proxy hops, so the
// same sequence can legitimately execute at this node more than once —
// against a *different* target each time — when a forwarding chain
// revisits it (g1 here → g2 elsewhere → g3 back here after two
// migrations).  Keying by sequence alone made that revisit park behind
// its own in-flight ancestor: a distributed self-deadlock.  With the
// target in the key, only a true re-delivery of the same hop (same
// target — a transport failover retry) parks or replays.
type entryKey struct {
	seq    uint64
	target string
}

// Window is one caller's dedup state at this node.
type Window struct {
	table *Table

	mu      sync.Mutex
	entries map[entryKey]*Entry
	// retired is the watermark below which entries have been dropped
	// (acked by the caller or evicted by the cache bound): every seq <=
	// retired is settled and a late duplicate of it must be rejected,
	// not executed.
	retired uint64
	// completed counts entries in entries with a recorded response (the
	// replay cache); the cap applies to these, not to in-flight entries.
	completed int
	// minSeq-ish eviction scan cursor: completed entries are evicted in
	// ascending seq order; lowSeq lower-bounds the scan so eviction stays
	// amortised O(1) per insert.
	lowSeq uint64
}

// Entry tracks one logical call at the callee.
type Entry struct {
	seq    uint64
	target string // GUID or class key the call executed against (migration filter)

	done chan struct{}  // closed once resp is set
	resp *wire.Response // recorded response; nil while in flight
}

// Verdict says what a delivery should do.
type Verdict int

const (
	// Execute: first delivery of the sequence — run the call, then
	// Complete the entry.
	Execute Verdict = iota
	// Replay: duplicate of a settled call — answer with Entry.Response
	// without executing.  (A duplicate of an in-flight call parks inside
	// Begin until the first attempt completes, then returns Replay.)
	Replay
	// Stale: duplicate of a retired call — reject without executing.
	Stale
)

// Begin admits one tokened delivery.  target names what the call will
// execute against (object GUID or class singleton key); it travels with
// the entry so migration can ship the object's slice of the window.
//
// A duplicate of an in-flight sequence blocks here until the first
// attempt completes — the park that turns concurrent duplicate
// deliveries into one execution — so Begin must not be called while
// holding locks the executing attempt needs.
//
// Entries are matched by (sequence, target): the same token arriving
// for a different target is a forwarding-chain hop of the same logical
// call revisiting this node, not a duplicate delivery, and gets its own
// entry so it executes instead of parking behind its in-flight ancestor
// (docs/CONCURRENCY.md §10).
func (t *Table) Begin(tok *wire.CallToken, target string) (*Entry, Verdict) {
	e, verdict, _ := t.BeginObserved(tok, target)
	return e, verdict
}

// BeginObserved is Begin plus the park observation: parked reports
// whether this delivery was a duplicate of an in-flight call and
// blocked until the first attempt completed (such deliveries return
// Replay like any settled duplicate).  The node's trace plane records
// the distinction — a parked duplicate spent wall-clock waiting, a
// replayed one answered immediately.
func (t *Table) BeginObserved(tok *wire.CallToken, target string) (_ *Entry, _ Verdict, parked bool) {
	w := t.window(tok.Caller)
	w.mu.Lock()
	w.retire(tok.Ack)
	// The entry lookup runs BEFORE the watermark check: cap eviction
	// (evictOverCap) can advance the watermark over a sequence whose
	// sibling entries — same sequence, different target, legal on a
	// forwarding chain — are still windowed, in flight or cached.  A
	// retry of one of those must park or replay its own entry; only a
	// sequence with no surviving entry is judged by the watermark.
	if e, ok := w.entries[entryKey{tok.Seq, target}]; ok {
		inFlight := e.resp == nil
		w.mu.Unlock()
		if inFlight {
			t.stats.Parked.Add(1)
			<-e.done // first attempt completes and records its response
		} else {
			t.stats.ReplayHits.Add(1)
		}
		return e, Replay, inFlight
	}
	if tok.Seq <= w.retired {
		w.mu.Unlock()
		t.stats.StaleRejected.Add(1)
		return nil, Stale, false
	}
	e := &Entry{seq: tok.Seq, target: target, done: make(chan struct{})}
	w.entries[entryKey{tok.Seq, target}] = e
	w.mu.Unlock()
	return e, Execute, false
}

// Complete records the executed call's response on e and releases any
// parked duplicates.  The response is retained for replay until the
// entry retires; callers must not mutate it afterwards.
func (t *Table) Complete(caller string, e *Entry, resp *wire.Response) {
	w := t.window(caller)
	w.mu.Lock()
	e.resp = resp
	// The entry may already have been shipped out by a migration racing
	// this completion; only count it if it is still ours.
	if w.entries[entryKey{e.seq, e.target}] == e {
		w.completed++
		t.stats.NoteEntries(1)
		w.evictOverCap()
	}
	w.mu.Unlock()
	close(e.done)
}

// Abandon withdraws an entry whose execution never produced a response
// (the dispatcher panicked past it); parked duplicates fail over to
// executing... they cannot — so the entry records a terminal error
// response instead.  Kept minimal: the node runtime always completes.
func (t *Table) Abandon(caller string, e *Entry) {
	t.Complete(caller, e, &wire.Response{Err: fmt.Sprintf("call %d abandoned mid-execution", e.seq)})
}

// Response returns the recorded response re-addressed to wire id.  The
// duplicate's transport correlation id differs from the original's, so
// the replayed copy carries the duplicate's.
func (e *Entry) Response(id uint64) *wire.Response {
	resp := *e.resp
	resp.ID = id
	return &resp
}

// retire drops every completed entry with seq <= ack.  In-flight
// entries above the watermark are untouched (they cannot be acked: the
// caller acks only delivered responses).  Caller holds w.mu.
func (w *Window) retire(ack uint64) {
	if ack <= w.retired {
		return
	}
	for k, e := range w.entries {
		if k.seq <= ack && e.resp != nil {
			delete(w.entries, k)
			w.completed--
			w.table.stats.NoteEntries(-1)
			w.table.stats.Retired.Add(1)
		}
	}
	w.retired = ack
}

// evictOverCap enforces the replay-cache bound: completed entries past
// the cap are dropped in ascending sequence order and the retired
// watermark advances over every sequence at or below the last evicted
// one, so a late duplicate of an evicted call is rejected as Stale
// rather than re-executed.  Sibling entries at the evicted sequence
// (other targets on a forwarding chain) may survive at or below the
// watermark — in flight or cached — which is why Begin matches the
// entries map before consulting the watermark: their retries keep
// parking or replaying.  Caller holds w.mu.
func (w *Window) evictOverCap() {
	for w.completed > w.table.cap {
		// Find the smallest completed seq at or above the scan cursor.
		var victim entryKey
		var found bool
		for k, e := range w.entries {
			if e.resp == nil || k.seq < w.lowSeq {
				continue
			}
			if !found || k.seq < victim.seq {
				victim, found = k, true
			}
		}
		if !found {
			return
		}
		min := victim.seq
		delete(w.entries, victim)
		w.completed--
		// The cursor advances to min, not past it: a forwarding chain can
		// leave sibling entries at the same sequence (one per target), and
		// min+1 would orphan the survivors below the scan floor.
		w.lowSeq = min
		if min > w.retired {
			w.retired = min
		}
		w.table.stats.NoteEntries(-1)
		w.table.stats.Retired.Add(1)
	}
}

// ExtractFor removes and returns every completed entry recorded against
// target, in wire form, for shipment inside a migration snapshot.  The
// entries leave this node's windows — the object's dedup history moves
// with the object — but the per-caller retired watermarks stay, so a
// duplicate arriving here after the move is still recognised (as Stale
// if below the watermark, or forwarded with its token so the new home's
// adopted window replays it).  In-flight entries stay: their executions
// are completing here and their responses will be recorded here.
func (t *Table) ExtractFor(target string) []wire.DedupEntry {
	t.mu.Lock()
	type wref struct {
		caller string
		w      *Window
	}
	ws := make([]wref, 0, len(t.windows))
	for caller, w := range t.windows {
		ws = append(ws, wref{caller, w})
	}
	t.mu.Unlock()
	var out []wire.DedupEntry
	for _, r := range ws {
		r.w.mu.Lock()
		for k, e := range r.w.entries {
			if e.target != target || e.resp == nil {
				continue
			}
			out = append(out, wire.DedupEntry{Caller: r.caller, Seq: k.seq, Resp: *e.resp})
			delete(r.w.entries, k)
			r.w.completed--
			t.stats.NoteEntries(-1)
		}
		r.w.mu.Unlock()
	}
	return out
}

// Adopt seeds windows from a migration snapshot's shipped entries,
// recorded against target (the object's GUID at this node).  Entries at
// or below a window's retired watermark are dropped — the caller
// already acked them here.
func (t *Table) Adopt(target string, entries []wire.DedupEntry) {
	for i := range entries {
		in := &entries[i]
		w := t.window(in.Caller)
		w.mu.Lock()
		if in.Seq <= w.retired {
			w.mu.Unlock()
			continue
		}
		if _, ok := w.entries[entryKey{in.Seq, target}]; ok {
			w.mu.Unlock()
			continue
		}
		resp := in.Resp
		e := &Entry{seq: in.Seq, target: target, done: make(chan struct{}), resp: &resp}
		close(e.done)
		w.entries[entryKey{in.Seq, target}] = e
		w.completed++
		t.stats.NoteEntries(1)
		t.stats.Adopted.Add(1)
		w.evictOverCap()
		w.mu.Unlock()
	}
}
