package dedup

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"rafda/internal/wire"
)

func tok(caller string, seq, ack uint64) *wire.CallToken {
	return &wire.CallToken{Caller: caller, Seq: seq, Ack: ack}
}

func TestIssuerStampAndWatermark(t *testing.T) {
	iss := NewIssuer("n1!1")
	var reqs [4]wire.Request
	for i := range reqs {
		seq := iss.Stamp(&reqs[i])
		if seq != uint64(i+1) {
			t.Fatalf("seq %d want %d", seq, i+1)
		}
		if reqs[i].Token.Caller != "n1!1" || reqs[i].Token.Seq != seq {
			t.Fatalf("bad token %+v", reqs[i].Token)
		}
	}
	// Out-of-order settlement: the watermark only advances over a
	// contiguous finished prefix.
	iss.Finish(3)
	iss.Finish(2)
	if got := iss.Ack(); got != 0 {
		t.Fatalf("ack %d before seq 1 finished, want 0", got)
	}
	iss.Finish(1)
	if got := iss.Ack(); got != 3 {
		t.Fatalf("ack %d after contiguous finish, want 3", got)
	}
	// The next stamped token piggybacks the watermark.
	var r wire.Request
	iss.Stamp(&r)
	if r.Token.Ack != 3 {
		t.Fatalf("piggybacked ack %d want 3", r.Token.Ack)
	}
	// Retry bumps the attempt and refreshes the ack.
	iss.Finish(4)
	iss.Retry(&r)
	if r.Token.Attempt != 1 || r.Token.Ack != 4 {
		t.Fatalf("retry token %+v want attempt 1 ack 4", r.Token)
	}
}

func TestTableExecuteReplayStale(t *testing.T) {
	tab := NewTable(8)
	e, v := tab.Begin(tok("c", 1, 0), "g1")
	if v != Execute {
		t.Fatalf("first delivery verdict %v want Execute", v)
	}
	tab.Complete("c", e, &wire.Response{ID: 10, Result: wire.Value{Kind: wire.KInt, Int: 42}})

	// Duplicate of a completed call replays the recorded response,
	// re-addressed to the duplicate's wire id.
	e2, v := tab.Begin(tok("c", 1, 0), "g1")
	if v != Replay {
		t.Fatalf("duplicate verdict %v want Replay", v)
	}
	resp := e2.Response(99)
	if resp.ID != 99 || resp.Result.Int != 42 {
		t.Fatalf("replayed response %+v", resp)
	}

	// The caller acks seq 1: the entry retires and a late duplicate is
	// rejected, never re-executed.
	if _, v := tab.Begin(tok("c", 2, 1), "g1"); v != Execute {
		t.Fatal("fresh seq 2 should execute")
	}
	if _, v := tab.Begin(tok("c", 1, 1), "g1"); v != Stale {
		t.Fatalf("retired duplicate verdict %v want Stale", v)
	}
	s := tab.Stats().Snapshot()
	if s.ReplayHits != 1 || s.StaleRejected != 1 || s.Retired != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDuplicateWhileInFlightParks(t *testing.T) {
	tab := NewTable(8)
	e, v := tab.Begin(tok("c", 1, 0), "g1")
	if v != Execute {
		t.Fatal("first delivery should execute")
	}
	got := make(chan int64, 1)
	go func() {
		dup, v := tab.Begin(tok("c", 1, 0), "g1")
		if v != Replay {
			got <- -1
			return
		}
		got <- dup.Response(2).Result.Int
	}()
	// Wait until the duplicate is actually parked (the counter bumps
	// before the wait), then complete the first attempt: the duplicate
	// must resume with the recorded response.
	for tab.Stats().Parked.Load() == 0 {
		runtime.Gosched()
	}
	tab.Complete("c", e, &wire.Response{ID: 1, Result: wire.Value{Kind: wire.KInt, Int: 7}})
	if r := <-got; r != 7 {
		t.Fatalf("parked duplicate got %d want 7", r)
	}
	if p := tab.Stats().Parked.Load(); p != 1 {
		t.Fatalf("parked counter %d want 1", p)
	}
}

// TestEvictionBoundsWindow pins the replay-cache bound: completed
// entries past the cap evict in ascending seq order, the retired
// watermark advances over them, and a late duplicate of an evicted call
// is Stale — at-most-once is preserved past the cache, at the cost of
// replay.
func TestEvictionBoundsWindow(t *testing.T) {
	const cap = 4
	tab := NewTable(cap)
	for seq := uint64(1); seq <= 10; seq++ {
		e, v := tab.Begin(tok("c", seq, 0), "g1")
		if v != Execute {
			t.Fatalf("seq %d verdict %v", seq, v)
		}
		tab.Complete("c", e, &wire.Response{ID: seq})
	}
	s := tab.Stats().Snapshot()
	if s.Entries != cap {
		t.Fatalf("live entries %d want %d", s.Entries, cap)
	}
	if s.EntriesHighWater > cap+1 {
		t.Fatalf("high water %d exceeded cap+1", s.EntriesHighWater)
	}
	// Seqs 1..6 were evicted: duplicates are rejected, not executed.
	if _, v := tab.Begin(tok("c", 3, 0), "g1"); v != Stale {
		t.Fatalf("evicted duplicate verdict %v want Stale", v)
	}
	// Seqs 7..10 still replay.
	if _, v := tab.Begin(tok("c", 8, 0), "g1"); v != Replay {
		t.Fatalf("cached duplicate verdict %v want Replay", v)
	}
}

// TestWatermarkRetirementUnderWraparound drives many concurrent callers
// through small windows with acks trailing behind, checking (under
// -race) that retirement, eviction and parking stay consistent while
// the eviction cursor wraps past the cap many times over.
func TestWatermarkRetirementUnderWraparound(t *testing.T) {
	const (
		callers = 4
		perSeq  = 200
		cap     = 8
	)
	tab := NewTable(cap)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		caller := fmt.Sprintf("c%d", c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ack uint64
			for seq := uint64(1); seq <= perSeq; seq++ {
				e, v := tab.Begin(tok(caller, seq, ack), "g1")
				switch v {
				case Execute:
					tab.Complete(caller, e, &wire.Response{ID: seq})
				case Replay, Stale:
					t.Errorf("%s seq %d unexpected verdict %v", caller, seq, v)
					return
				}
				// Ack trails several sequences behind, like a pipelined
				// caller's piggybacked watermark.
				if seq > 3 {
					ack = seq - 3
				}
			}
		}()
	}
	wg.Wait()
	s := tab.Stats().Snapshot()
	if s.Entries > callers*cap {
		t.Fatalf("live entries %d exceed bound %d", s.Entries, callers*cap)
	}
	if s.EntriesHighWater > int64(callers*(cap+1)) {
		t.Fatalf("high water %d exceeds bound %d", s.EntriesHighWater, callers*(cap+1))
	}
	if s.Windows != callers {
		t.Fatalf("windows %d want %d", s.Windows, callers)
	}
}

func TestExtractAdoptMovesHistory(t *testing.T) {
	src := NewTable(8)
	for seq := uint64(1); seq <= 3; seq++ {
		target := "g1"
		if seq == 3 {
			target = "g2" // different object — must not travel
		}
		e, _ := src.Begin(tok("c", seq, 0), target)
		src.Complete("c", e, &wire.Response{ID: seq, Result: wire.Value{Kind: wire.KInt, Int: int64(seq)}})
	}
	shipped := src.ExtractFor("g1")
	if len(shipped) != 2 {
		t.Fatalf("shipped %d entries want 2", len(shipped))
	}
	// After extraction the source no longer replays them...
	if _, v := src.Begin(tok("c", 1, 0), "g1"); v != Execute {
		t.Fatal("extracted entry should be forgotten at source")
	}
	// ...but the destination does, under the object's new GUID.
	dst := NewTable(8)
	dst.Adopt("remote#1", shipped)
	e, v := dst.Begin(tok("c", 2, 0), "remote#1")
	if v != Replay {
		t.Fatalf("adopted duplicate verdict %v want Replay", v)
	}
	if e.Response(5).Result.Int != 2 {
		t.Fatal("adopted entry replays wrong response")
	}
	if dst.Stats().Adopted.Load() != 2 {
		t.Fatal("adopted counter")
	}
	// Entries at or below the destination's retired watermark are
	// dropped on adoption.
	dst2 := NewTable(8)
	dst2.window("c").retired = 2
	dst2.Adopt("remote#1", shipped)
	if _, v := dst2.Begin(tok("c", 2, 0), "remote#1"); v != Stale {
		t.Fatalf("adoption below watermark should stay Stale, got %v", v)
	}
}

// TestForwardChainRevisitExecutes pins the fix for a distributed
// self-deadlock: tokens propagate across proxy forwards, so a call that
// enters a node as g1, forwards away, and returns down the chain as g3
// (the object migrated twice) delivers the SAME (caller, seq) to this
// node for a different target while the ancestor hop's entry is still
// in flight.  That revisit is the same logical call, not a duplicate
// delivery — it must execute under its own (seq, target) entry instead
// of parking on the ancestor's done channel (which only closes once the
// revisit itself completes: a cycle).
func TestForwardChainRevisitExecutes(t *testing.T) {
	tab := NewTable(8)
	outer, v := tab.Begin(tok("c", 1, 0), "g1")
	if v != Execute {
		t.Fatal("outer hop should execute")
	}
	// Chain revisit under a new target while the outer hop is in flight.
	inner, v := tab.Begin(tok("c", 1, 0), "g3")
	if v != Execute {
		t.Fatalf("chain revisit got verdict %v, want Execute (would deadlock parked behind its own ancestor)", v)
	}
	tab.Complete("c", inner, &wire.Response{ID: 2, Result: wire.Value{Kind: wire.KInt, Int: 9}})
	tab.Complete("c", outer, &wire.Response{ID: 1, Result: wire.Value{Kind: wire.KInt, Int: 9}})

	// A true duplicate delivery — same target — still replays per hop.
	if _, v := tab.Begin(tok("c", 1, 0), "g1"); v != Replay {
		t.Fatalf("duplicate of completed outer hop got %v, want Replay", v)
	}
	if e, v := tab.Begin(tok("c", 1, 0), "g3"); v != Replay {
		t.Fatalf("duplicate of completed revisit got %v, want Replay", v)
	} else if r := e.Response(3).Result.Int; r != 9 {
		t.Fatalf("replayed revisit got %d want 9", r)
	}
	// Acking seq 1 retires every entry of the chain at once.
	if _, v := tab.Begin(tok("c", 2, 1), "g9"); v != Execute {
		t.Fatal("fresh seq should execute")
	}
	if _, v := tab.Begin(tok("c", 1, 1), "g3"); v != Stale {
		t.Fatal("post-ack duplicate should be Stale")
	}
}

// TestEvictionSparesSiblingEntries pins Begin's lookup order: cap
// eviction advances the retired watermark over an evicted sequence, but
// sibling entries at that sequence (same logical call, different target
// on a forwarding chain) can survive in the window — a retry of a
// surviving sibling must park or replay its own entry, not get rejected
// as Stale off the watermark.
func TestEvictionSparesSiblingEntries(t *testing.T) {
	tab := NewTable(1)

	// Two completed siblings of seq 1 (a forwarding chain revisiting
	// this node).  Cap 1 evicts exactly one, advancing the watermark to
	// 1 while the other stays cached below it.
	ea, va := tab.Begin(tok("c", 1, 0), "gA")
	if va != Execute {
		t.Fatalf("first hop verdict %v want Execute", va)
	}
	tab.Complete("c", ea, &wire.Response{Result: wire.Value{Kind: wire.KInt, Int: 11}})
	eb, vb := tab.Begin(tok("c", 1, 0), "gB")
	if vb != Execute {
		t.Fatalf("sibling hop verdict %v want Execute", vb)
	}
	tab.Complete("c", eb, &wire.Response{Result: wire.Value{Kind: wire.KInt, Int: 22}})

	var replays, stales int
	for _, target := range []string{"gA", "gB"} {
		e, v := tab.Begin(tok("c", 1, 0), target)
		switch v {
		case Replay:
			replays++
			if got := e.Response(9).Result.Int; got != 11 && got != 22 {
				t.Fatalf("replayed sibling %s carries wrong response %d", target, got)
			}
		case Stale:
			stales++
		default:
			t.Fatalf("retry of seq-1 sibling %s re-executed (verdict %v)", target, v)
		}
	}
	if replays != 1 || stales != 1 {
		t.Fatalf("sibling retries: %d replays, %d stales; want the cached one to replay and the evicted one to reject", replays, stales)
	}

	// In-flight sibling: seq 2 executes while cap pressure from later
	// sequences pushes the watermark past it.  A duplicate delivery must
	// park on the in-flight entry and replay its response — a Stale
	// rejection here would break the exactly-once replay contract for a
	// transport retry of a still-executing hop.
	ec, vc := tab.Begin(tok("c", 2, 0), "gC")
	if vc != Execute {
		t.Fatalf("in-flight hop verdict %v want Execute", vc)
	}
	e3, _ := tab.Begin(tok("c", 3, 0), "gD")
	tab.Complete("c", e3, &wire.Response{})
	e4, _ := tab.Begin(tok("c", 4, 0), "gE")
	tab.Complete("c", e4, &wire.Response{})

	type res struct {
		e *Entry
		v Verdict
	}
	dup := make(chan res, 1)
	go func() {
		e, v := tab.Begin(tok("c", 2, 0), "gC")
		dup <- res{e, v}
	}()
	tab.Complete("c", ec, &wire.Response{Result: wire.Value{Kind: wire.KInt, Int: 33}})
	got := <-dup
	if got.v != Replay {
		t.Fatalf("duplicate of in-flight sibling verdict %v want Replay", got.v)
	}
	if got.e.Response(5).Result.Int != 33 {
		t.Fatalf("parked duplicate replayed wrong response %+v", got.e.Response(5))
	}
}
