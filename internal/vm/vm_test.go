package vm

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// buildClass makes a one-class program around the given methods.
func buildClass(methods ...*ir.Method) *ir.Program {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{Name: "T", Super: ir.ObjectClass, Methods: methods})
	return p
}

func staticMethod(name string, ret ir.Type, params []ir.Type, code []ir.Instr) *ir.Method {
	return &ir.Method{
		Name: name, Params: params, Return: ret, Static: true,
		Access: ir.AccessPublic, Code: code, MaxLocals: len(params) + 2,
	}
}

func TestArithmeticOps(t *testing.T) {
	cases := []struct {
		op   ir.Op
		a, b int64
		want int64
	}{
		{ir.OpAdd, 40, 2, 42},
		{ir.OpSub, 40, 2, 38},
		{ir.OpMul, 6, 7, 42},
		{ir.OpDiv, 85, 2, 42},
		{ir.OpRem, 85, 43, 42},
	}
	for _, tc := range cases {
		prog := buildClass(staticMethod("f", ir.Int, nil, []ir.Instr{
			{Op: ir.OpConstInt, A: tc.a},
			{Op: ir.OpConstInt, A: tc.b},
			{Op: tc.op},
			{Op: ir.OpReturnValue},
		}))
		v := MustNew(prog)
		got, err := v.Invoke("T", "f", Value{}, nil)
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		if got.I != tc.want {
			t.Errorf("%v: got %d want %d", tc.op, got.I, tc.want)
		}
	}
}

// TestIntArithmeticProperty cross-checks interpreted addition and
// subtraction against Go semantics with random operands.
func TestIntArithmeticProperty(t *testing.T) {
	prog := buildClass(
		staticMethod("add", ir.Int, []ir.Type{ir.Int, ir.Int}, []ir.Instr{
			{Op: ir.OpLoad, A: 0}, {Op: ir.OpLoad, A: 1}, {Op: ir.OpAdd}, {Op: ir.OpReturnValue},
		}),
		staticMethod("mul", ir.Int, []ir.Type{ir.Int, ir.Int}, []ir.Instr{
			{Op: ir.OpLoad, A: 0}, {Op: ir.OpLoad, A: 1}, {Op: ir.OpMul}, {Op: ir.OpReturnValue},
		}),
	)
	v := MustNew(prog)
	f := func(a, b int64) bool {
		s, err := v.Invoke("T", "add", Value{}, []Value{IntV(a), IntV(b)})
		if err != nil || s.I != a+b {
			return false
		}
		m, err := v.Invoke("T", "mul", Value{}, []Value{IntV(a), IntV(b)})
		return err == nil && m.I == a*b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDivisionByZeroThrows(t *testing.T) {
	prog := buildClass(staticMethod("f", ir.Int, nil, []ir.Instr{
		{Op: ir.OpConstInt, A: 1},
		{Op: ir.OpConstInt, A: 0},
		{Op: ir.OpDiv},
		{Op: ir.OpReturnValue},
	}))
	v := MustNew(prog)
	_, err := v.Invoke("T", "f", Value{}, nil)
	var unc *UncaughtError
	if !errors.As(err, &unc) || unc.Class != stdlib.ArithmeticClass {
		t.Fatalf("want uncaught %s, got %v", stdlib.ArithmeticClass, err)
	}
}

func TestStepLimit(t *testing.T) {
	prog := buildClass(staticMethod("spin", ir.Void, nil, []ir.Instr{
		{Op: ir.OpJump, A: 0},
	}))
	v := MustNew(prog, WithMaxSteps(1000))
	_, err := v.Invoke("T", "spin", Value{}, nil)
	var fault *FaultError
	if !errors.As(err, &fault) || !strings.Contains(fault.Msg, "step limit") {
		t.Fatalf("want step-limit fault, got %v", err)
	}
}

func TestDepthLimit(t *testing.T) {
	prog := buildClass(staticMethod("rec", ir.Void, nil, []ir.Instr{
		{Op: ir.OpInvokeStatic, Owner: "T", Member: "rec"},
		{Op: ir.OpReturn},
	}))
	v := MustNew(prog, WithMaxDepth(50))
	_, err := v.Invoke("T", "rec", Value{}, nil)
	var fault *FaultError
	if !errors.As(err, &fault) || !strings.Contains(fault.Msg, "depth") {
		t.Fatalf("want depth fault, got %v", err)
	}
}

func TestStaticInitRunsOnce(t *testing.T) {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{
		Name: "K", Super: ir.ObjectClass,
		Fields: []ir.Field{{Name: "n", Type: ir.Int, Static: true}},
		Methods: []*ir.Method{
			{Name: ir.StaticInitName, Return: ir.Void, Static: true, MaxLocals: 1,
				Code: []ir.Instr{
					{Op: ir.OpGetStatic, Owner: "K", Member: "n"},
					{Op: ir.OpConstInt, A: 1},
					{Op: ir.OpAdd},
					{Op: ir.OpPutStatic, Owner: "K", Member: "n"},
					{Op: ir.OpReturn},
				}},
			staticMethod("get", ir.Int, nil, []ir.Instr{
				{Op: ir.OpGetStatic, Owner: "K", Member: "n"},
				{Op: ir.OpReturnValue},
			}),
		},
	})
	v := MustNew(p)
	for i := 0; i < 3; i++ {
		got, err := v.Invoke("K", "get", Value{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.I != 1 {
			t.Fatalf("clinit ran %d times", got.I)
		}
	}
}

func TestGetSetStaticAPI(t *testing.T) {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{
		Name: "K", Super: ir.ObjectClass,
		Fields: []ir.Field{{Name: "n", Type: ir.Int, Static: true}},
	})
	v := MustNew(p)
	if err := v.SetStatic("K", "n", IntV(9)); err != nil {
		t.Fatal(err)
	}
	got, err := v.GetStatic("K", "n")
	if err != nil || got.I != 9 {
		t.Fatalf("get: %v %v", got, err)
	}
	if _, err := v.GetStatic("K", "missing"); err == nil {
		t.Fatal("missing static accepted")
	}
}

func TestExceptionHandlerDispatch(t *testing.T) {
	// try { throw Arithmetic } catch RuntimeException -> 1, catch-all -> 2
	prog := buildClass(&ir.Method{
		Name: "f", Return: ir.Int, Static: true, Access: ir.AccessPublic, MaxLocals: 2,
		Handlers: []ir.TryHandler{
			{Start: 0, End: 5, Target: 6, CatchClass: stdlib.RuntimeExceptionClass},
			{Start: 0, End: 5, Target: 9},
		},
		Code: []ir.Instr{
			{Op: ir.OpNew, Owner: stdlib.ArithmeticClass}, // 0
			{Op: ir.OpDup},                   // 1
			{Op: ir.OpConstString, Str: "x"}, // 2
			{Op: ir.OpInvokeSpecial, Owner: stdlib.ArithmeticClass, Member: ir.ConstructorName, NArgs: 1}, // 3
			{Op: ir.OpThrow},          // 4
			{Op: ir.OpReturnValue},    // 5 (unreachable)
			{Op: ir.OpPop},            // 6: RuntimeException handler
			{Op: ir.OpConstInt, A: 1}, // 7
			{Op: ir.OpReturnValue},    // 8
			{Op: ir.OpPop},            // 9: catch-all
			{Op: ir.OpConstInt, A: 2}, // 10
			{Op: ir.OpReturnValue},    // 11
		},
	})
	v := MustNew(prog)
	got, err := v.Invoke("T", "f", Value{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 1 {
		t.Fatalf("handler order wrong: got %d", got.I)
	}
}

func TestNullChecks(t *testing.T) {
	prog := buildClass(staticMethod("f", ir.Int, nil, []ir.Instr{
		{Op: ir.OpConstNull, TypeRef: &ir.Type{Kind: ir.KindRef, Name: ir.ObjectClass}},
		{Op: ir.OpGetField, Owner: ir.ObjectClass, Member: "whatever"},
		{Op: ir.OpReturnValue},
	}))
	v := MustNew(prog)
	_, err := v.Invoke("T", "f", Value{}, nil)
	var unc *UncaughtError
	if !errors.As(err, &unc) || unc.Class != stdlib.NullPointerClass {
		t.Fatalf("want NPE, got %v", err)
	}
}

func TestMixedNullComparison(t *testing.T) {
	// Comparing a null object ref with a null array ref must not fault.
	prog := buildClass(staticMethod("f", ir.Bool, []ir.Type{ir.ArrayOf(ir.Int)}, []ir.Instr{
		{Op: ir.OpLoad, A: 0},
		{Op: ir.OpConstNull, TypeRef: &ir.Type{Kind: ir.KindRef, Name: ir.ObjectClass}},
		{Op: ir.OpCmpEq},
		{Op: ir.OpReturnValue},
	}))
	v := MustNew(prog)
	got, err := v.Invoke("T", "f", Value{}, []Value{{K: ir.KindArray}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Bool() {
		t.Fatal("null array == null ref should be true")
	}
	got, err = v.Invoke("T", "f", Value{}, []Value{ArrayV(NewArray(ir.Int, 1))})
	if err != nil || got.Bool() {
		t.Fatalf("non-null array == null: %v %v", got, err)
	}
}

func TestNativeRegistration(t *testing.T) {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{
		Name: "N", Super: ir.ObjectClass,
		Methods: []*ir.Method{
			{Name: "twice", Params: []ir.Type{ir.Int}, Return: ir.Int,
				Static: true, Native: true, Access: ir.AccessPublic},
			{Name: "other", Return: ir.Int, Static: true, Native: true, Access: ir.AccessPublic},
		},
	})
	v := MustNew(p)
	v.RegisterNative("N", "twice", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return IntV(args[0].I * 2), nil, nil
	})
	got, err := v.Invoke("N", "twice", Value{}, []Value{IntV(21)})
	if err != nil || got.I != 42 {
		t.Fatalf("native: %v %v", got, err)
	}
	// Unbound native faults.
	if _, err := v.Invoke("N", "other", Value{}, nil); err == nil {
		t.Fatal("unbound native accepted")
	}
	// Class-level fallback.
	v.RegisterClassNative("N", func(env *Env, method string, _ Value, _ []Value) (Value, *Thrown, error) {
		return IntV(7), nil, nil
	})
	if got, err := v.Invoke("N", "other", Value{}, nil); err != nil || got.I != 7 {
		t.Fatalf("class native: %v %v", got, err)
	}
}

func TestConcurrentInvokes(t *testing.T) {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{
		Name: "K", Super: ir.ObjectClass,
		Fields: []ir.Field{{Name: "n", Type: ir.Int, Static: true}},
		Methods: []*ir.Method{
			staticMethod("inc", ir.Int, nil, []ir.Instr{
				{Op: ir.OpGetStatic, Owner: "K", Member: "n"},
				{Op: ir.OpConstInt, A: 1},
				{Op: ir.OpAdd},
				{Op: ir.OpPutStatic, Owner: "K", Member: "n"},
				{Op: ir.OpGetStatic, Owner: "K", Member: "n"},
				{Op: ir.OpReturnValue},
			}),
		},
	})
	v := MustNew(p)
	const goroutines = 8
	const per = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := v.Invoke("K", "inc", Value{}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := v.GetStatic("K", "n")
	if err != nil {
		t.Fatal(err)
	}
	if got.I != goroutines*per {
		t.Fatalf("lost updates: %d want %d", got.I, goroutines*per)
	}
}

func TestMorphRedirectsReferences(t *testing.T) {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{Name: "A", Super: ir.ObjectClass,
		Fields: []ir.Field{{Name: "x", Type: ir.Int}},
		Methods: []*ir.Method{{Name: "tag", Return: ir.Int, Access: ir.AccessPublic, MaxLocals: 1,
			Code: []ir.Instr{{Op: ir.OpConstInt, A: 1}, {Op: ir.OpReturnValue}}}}})
	p.MustAdd(&ir.Class{Name: "B", Super: ir.ObjectClass,
		Methods: []*ir.Method{{Name: "tag", Return: ir.Int, Access: ir.AccessPublic, MaxLocals: 1,
			Code: []ir.Instr{{Op: ir.OpConstInt, A: 2}, {Op: ir.OpReturnValue}}}}})
	v := MustNew(p)
	obj, err := v.NewObject("A")
	if err != nil {
		t.Fatal(err)
	}
	ref1, ref2 := RefV(obj), RefV(obj) // two references to one object
	if got, _ := v.Invoke("A", "tag", ref1, nil); got.I != 1 {
		t.Fatal("pre-morph tag")
	}
	if err := v.Morph(obj, "B", map[string]Value{}); err != nil {
		t.Fatal(err)
	}
	// Both references observe the new class (dynamic dispatch).
	for _, r := range []Value{ref1, ref2} {
		got, err := v.Invoke(r.O.ClassName(), "tag", r, nil)
		if err != nil || got.I != 2 {
			t.Fatalf("post-morph: %v %v", got, err)
		}
	}
	if err := v.Morph(obj, "NoSuch", nil); err == nil {
		t.Fatal("morph to unknown class accepted")
	}
}

func TestSystemNatives(t *testing.T) {
	var out bytes.Buffer
	v := MustNew(stdlib.Program(), WithOutput(&out),
		WithClock(func() time.Time { return time.Unix(12, 34e6) }))
	check := func(class, method string, args []Value, want string) {
		t.Helper()
		got, err := v.Invoke(class, method, Value{}, args)
		if err != nil {
			t.Fatalf("%s.%s: %v", class, method, err)
		}
		if got.String() != want {
			t.Errorf("%s.%s = %q want %q", class, method, got.String(), want)
		}
	}
	check(stdlib.StringsClass, "ofInt", []Value{IntV(-7)}, "-7")
	check(stdlib.StringsClass, "parseInt", []Value{StringV(" 42 ")}, "42")
	check(stdlib.StringsClass, "length", []Value{StringV("abcd")}, "4")
	check(stdlib.StringsClass, "substring", []Value{StringV("hello"), IntV(1), IntV(3)}, "el")
	check(stdlib.StringsClass, "repeat", []Value{StringV("ab"), IntV(3)}, "ababab")
	check(ir.MathClass, "abs", []Value{IntV(-5)}, "5")
	check(ir.MathClass, "min", []Value{IntV(3), IntV(9)}, "3")
	check(ir.MathClass, "max", []Value{IntV(3), IntV(9)}, "9")
	check(stdlib.ClockClass, "millis", nil, "12034")

	if _, err := v.Invoke(ir.SystemClass, "println", Value{}, []Value{StringV("hey")}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "hey\n" {
		t.Fatalf("println wrote %q", out.String())
	}
	// Bad substring bounds throw, not fault.
	_, err := v.Invoke(stdlib.StringsClass, "substring", Value{}, []Value{StringV("x"), IntV(0), IntV(9)})
	var unc *UncaughtError
	if !errors.As(err, &unc) || unc.Class != stdlib.IndexBoundsClass {
		t.Fatalf("substring bounds: %v", err)
	}
}

func TestValueStringForms(t *testing.T) {
	cases := map[string]Value{
		"void": {},
		"true": BoolV(true),
		"42":   IntV(42),
		"1.5":  FloatV(1.5),
		"hi":   StringV("hi"),
		"null": NullV(),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v prints %q want %q", v, got, want)
		}
	}
}

func TestZeroValues(t *testing.T) {
	for _, tc := range []struct {
		t    ir.Type
		kind ir.Kind
	}{
		{ir.Int, ir.KindInt},
		{ir.Bool, ir.KindBool},
		{ir.Float, ir.KindFloat},
		{ir.String, ir.KindString},
		{ir.Ref("X"), ir.KindRef},
		{ir.ArrayOf(ir.Int), ir.KindArray},
	} {
		z := ZeroValue(tc.t)
		if z.K != tc.kind {
			t.Errorf("zero of %v has kind %v", tc.t, z.K)
		}
		if tc.kind == ir.KindRef && !z.IsNullRef() {
			t.Error("ref zero not null")
		}
	}
}
