package vm

import (
	"fmt"
	"math"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// bumpStep counts one interpreted instruction against the step budget.
// Every instruction is checked against the execution's snapshot of the
// cumulative count (env.stepBase, taken at entry and refreshed on each
// flush), so the budget binds short executions too; the shared atomic
// is only touched every stepQuantum instructions.  Concurrent
// executions each enforce against their own snapshot, so under
// parallelism the cumulative limit has quantum-sized slack per
// in-flight execution.  Returns false when the budget is exhausted.
func (v *VM) bumpStep(env *Env) bool {
	env.steps++
	if env.stepBase+env.steps > v.maxSteps {
		return false
	}
	if env.steps >= stepQuantum {
		env.stepBase = v.steps.Add(env.steps)
		env.steps = 0
		if env.stepBase > v.maxSteps {
			return false
		}
	}
	return true
}

// exec interprets one method activation within env's execution.  Field
// and static accesses synchronise per object / per slot table; native
// methods may release the execution's locks via Env.RunUnlocked.
func (v *VM) exec(env *Env, class *ir.Class, m *ir.Method, recv Value, args []Value) (Value, *Thrown, error) {
	if m.Abstract {
		return Value{}, nil, &FaultError{Msg: fmt.Sprintf("abstract method %s.%s invoked", class.Name, m.Name)}
	}
	if env.depth++; env.depth > v.maxDepth {
		env.depth--
		return Value{}, nil, &FaultError{Msg: "call depth limit exceeded"}
	}
	defer func() { env.depth-- }()

	if m.Native {
		return v.callNative(env, class, m, recv, args)
	}

	nlocals := m.MaxLocals
	min := len(args)
	if !m.Static {
		min++
	}
	if nlocals < min {
		nlocals = min
	}
	locals := make([]Value, nlocals+4)
	idx := 0
	if !m.Static {
		locals[0] = recv
		idx = 1
	}
	for _, a := range args {
		locals[idx] = a
		idx++
	}

	stack := make([]Value, 0, 16)
	push := func(val Value) { stack = append(stack, val) }
	pop := func() Value {
		val := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return val
	}

	code := m.Code
	pc := 0
	var pendingThrow *Thrown

	fault := func(format string, a ...any) (Value, *Thrown, error) {
		return Value{}, nil, &FaultError{
			Msg: fmt.Sprintf("%s.%s pc=%d: %s", class.Name, m.Name, pc, fmt.Sprintf(format, a...)),
		}
	}

	for {
		if pendingThrow != nil {
			// Search this frame's handler table.
			handled := false
			for _, h := range m.Handlers {
				if pc >= h.Start && pc < h.End && v.catches(h, pendingThrow) {
					stack = stack[:0]
					push(RefV(pendingThrow.Obj))
					pc = h.Target
					pendingThrow = nil
					handled = true
					break
				}
			}
			if !handled {
				return Value{}, pendingThrow, nil
			}
			continue
		}

		if pc < 0 || pc >= len(code) {
			return fault("pc out of range (len=%d)", len(code))
		}
		if !v.bumpStep(env) {
			return fault("step limit exceeded")
		}

		in := code[pc]
		switch in.Op {
		case ir.OpConstInt:
			push(IntV(in.A))
		case ir.OpConstBool:
			push(BoolV(in.A != 0))
		case ir.OpConstFloat:
			push(FloatV(in.F))
		case ir.OpConstString:
			push(StringV(in.Str))
		case ir.OpConstNull:
			if in.TypeRef != nil && in.TypeRef.IsArray() {
				push(Value{K: ir.KindArray})
			} else {
				push(NullV())
			}

		case ir.OpLoad:
			n := int(in.A)
			if n < 0 || n >= len(locals) {
				return fault("load: bad slot %d", n)
			}
			push(locals[n])
		case ir.OpStore:
			n := int(in.A)
			if n < 0 {
				return fault("store: bad slot %d", n)
			}
			for n >= len(locals) {
				locals = append(locals, Value{})
			}
			if len(stack) == 0 {
				return fault("store: empty stack")
			}
			locals[n] = pop()

		case ir.OpDup:
			if len(stack) == 0 {
				return fault("dup: empty stack")
			}
			push(stack[len(stack)-1])
		case ir.OpPop:
			if len(stack) == 0 {
				return fault("pop: empty stack")
			}
			pop()
		case ir.OpSwap:
			if len(stack) < 2 {
				return fault("swap: underflow")
			}
			stack[len(stack)-1], stack[len(stack)-2] = stack[len(stack)-2], stack[len(stack)-1]

		case ir.OpNew:
			if thrown, err := v.ensureInit(env, in.Owner); err != nil {
				return Value{}, nil, err
			} else if thrown != nil {
				pendingThrow = thrown
				continue
			}
			obj, err := v.alloc(in.Owner)
			if err != nil {
				return Value{}, nil, err
			}
			push(RefV(obj))

		case ir.OpGetField:
			if len(stack) < 1 {
				return fault("getfield: underflow")
			}
			ref := pop()
			if ref.IsNullRef() {
				pendingThrow = v.throwSys(stdlib.NullPointerClass,
					fmt.Sprintf("read of field %s on null", in.Member))
				continue
			}
			if ref.K != ir.KindRef {
				return fault("getfield on non-ref %v", ref.K)
			}
			val, ok := ref.O.Field(in.Member)
			if !ok {
				return fault("no field %s on %s", in.Member, ref.O.ClassName())
			}
			push(val)

		case ir.OpPutField:
			if len(stack) < 2 {
				return fault("putfield: underflow")
			}
			val := pop()
			ref := pop()
			if ref.IsNullRef() {
				pendingThrow = v.throwSys(stdlib.NullPointerClass,
					fmt.Sprintf("write of field %s on null", in.Member))
				continue
			}
			if ref.K != ir.KindRef {
				return fault("putfield on non-ref %v", ref.K)
			}
			ref.O.Set(in.Member, val)

		case ir.OpGetStatic:
			slots, fld, thrown, err := v.staticSlot(env, in.Owner, in.Member)
			if err != nil {
				return Value{}, nil, err
			}
			if thrown != nil {
				pendingThrow = thrown
				continue
			}
			val, _ := slots.get(fld)
			push(val)

		case ir.OpPutStatic:
			if len(stack) < 1 {
				return fault("putstatic: underflow")
			}
			slots, fld, thrown, err := v.staticSlot(env, in.Owner, in.Member)
			if err != nil {
				return Value{}, nil, err
			}
			if thrown != nil {
				pendingThrow = thrown
				continue
			}
			slots.set(fld, pop())

		case ir.OpInvokeStatic:
			if len(stack) < in.NArgs {
				return fault("invokestatic: underflow")
			}
			callArgs := make([]Value, in.NArgs)
			for i := in.NArgs - 1; i >= 0; i-- {
				callArgs[i] = pop()
			}
			res, thrown, err := v.call(env, in.Owner, in.Member, Value{}, callArgs)
			if err != nil {
				return Value{}, nil, err
			}
			if thrown != nil {
				pendingThrow = thrown
				continue
			}
			if !res.IsVoid() {
				push(res)
			}

		case ir.OpInvokeVirtual, ir.OpInvokeInterface, ir.OpInvokeSpecial:
			if len(stack) < in.NArgs+1 {
				return fault("%s: underflow", in.Op)
			}
			callArgs := make([]Value, in.NArgs)
			for i := in.NArgs - 1; i >= 0; i-- {
				callArgs[i] = pop()
			}
			ref := pop()
			if ref.IsNullRef() {
				pendingThrow = v.throwSys(stdlib.NullPointerClass,
					fmt.Sprintf("invoke of %s.%s on null", in.Owner, in.Member))
				continue
			}
			var startClass string
			if in.Op == ir.OpInvokeSpecial {
				startClass = in.Owner // exact: constructors, super calls
			} else {
				if ref.K != ir.KindRef {
					return fault("%s on non-ref value", in.Op)
				}
				startClass = ref.O.ClassName() // dynamic dispatch
			}
			res, thrown, err := v.call(env, startClass, in.Member, ref, callArgs)
			if err != nil {
				return Value{}, nil, err
			}
			if thrown != nil {
				pendingThrow = thrown
				continue
			}
			if !res.IsVoid() {
				push(res)
			}

		case ir.OpNewArray:
			if len(stack) < 1 {
				return fault("newarray: underflow")
			}
			if in.TypeRef == nil {
				return fault("newarray: missing element type")
			}
			n := pop()
			if n.I < 0 {
				pendingThrow = v.throwSys(stdlib.IndexBoundsClass,
					fmt.Sprintf("array length %d", n.I))
				continue
			}
			push(ArrayV(NewArray(*in.TypeRef, int(n.I))))

		case ir.OpALoad:
			if len(stack) < 2 {
				return fault("aload: underflow")
			}
			idx := pop()
			arr := pop()
			if arr.IsNullRef() {
				pendingThrow = v.throwSys(stdlib.NullPointerClass, "index of null array")
				continue
			}
			if idx.I < 0 || int(idx.I) >= len(arr.A.Vals) {
				pendingThrow = v.throwSys(stdlib.IndexBoundsClass,
					fmt.Sprintf("index %d out of range %d", idx.I, len(arr.A.Vals)))
				continue
			}
			push(arr.A.Vals[idx.I])

		case ir.OpAStore:
			if len(stack) < 3 {
				return fault("astore: underflow")
			}
			val := pop()
			idx := pop()
			arr := pop()
			if arr.IsNullRef() {
				pendingThrow = v.throwSys(stdlib.NullPointerClass, "store to null array")
				continue
			}
			if idx.I < 0 || int(idx.I) >= len(arr.A.Vals) {
				pendingThrow = v.throwSys(stdlib.IndexBoundsClass,
					fmt.Sprintf("index %d out of range %d", idx.I, len(arr.A.Vals)))
				continue
			}
			arr.A.Vals[idx.I] = val

		case ir.OpArrayLen:
			if len(stack) < 1 {
				return fault("arraylen: underflow")
			}
			arr := pop()
			if arr.IsNullRef() {
				pendingThrow = v.throwSys(stdlib.NullPointerClass, "length of null array")
				continue
			}
			push(IntV(int64(len(arr.A.Vals))))

		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem:
			if len(stack) < 2 {
				return fault("%s: underflow", in.Op)
			}
			b := pop()
			a := pop()
			res, thrown := v.arith(in.Op, a, b)
			if thrown != nil {
				pendingThrow = thrown
				continue
			}
			push(res)

		case ir.OpNeg:
			if len(stack) < 1 {
				return fault("neg: underflow")
			}
			a := pop()
			if a.K == ir.KindFloat {
				push(FloatV(-a.F))
			} else {
				push(IntV(-a.I))
			}

		case ir.OpNot:
			if len(stack) < 1 {
				return fault("not: underflow")
			}
			a := pop()
			push(BoolV(a.I == 0))

		case ir.OpConcat:
			if len(stack) < 2 {
				return fault("concat: underflow")
			}
			b := pop()
			a := pop()
			push(StringV(a.S + b.S))

		case ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe:
			if len(stack) < 2 {
				return fault("%s: underflow", in.Op)
			}
			b := pop()
			a := pop()
			res, err := compare(in.Op, a, b)
			if err != nil {
				return fault("%v", err)
			}
			push(BoolV(res))

		case ir.OpJump:
			pc = int(in.A)
			continue
		case ir.OpJumpIf:
			if len(stack) < 1 {
				return fault("jump.if: underflow")
			}
			if pop().Bool() {
				pc = int(in.A)
				continue
			}
		case ir.OpJumpIfNot:
			if len(stack) < 1 {
				return fault("jump.ifnot: underflow")
			}
			if !pop().Bool() {
				pc = int(in.A)
				continue
			}

		case ir.OpCast:
			if len(stack) < 1 {
				return fault("cast: underflow")
			}
			if in.TypeRef == nil {
				return fault("cast: missing target type")
			}
			val := pop()
			res, thrown, err := v.cast(val, *in.TypeRef)
			if err != nil {
				return fault("%v", err)
			}
			if thrown != nil {
				pendingThrow = thrown
				continue
			}
			push(res)

		case ir.OpInstanceOf:
			if len(stack) < 1 {
				return fault("instanceof: underflow")
			}
			if in.TypeRef == nil {
				return fault("instanceof: missing target type")
			}
			val := pop()
			ok := val.K == ir.KindRef && val.O != nil && in.TypeRef.Kind == ir.KindRef &&
				v.prog.Load().AssignableTo(val.O.ClassName(), in.TypeRef.Name)
			push(BoolV(ok))

		case ir.OpReturn:
			return Value{}, nil, nil
		case ir.OpReturnValue:
			if len(stack) < 1 {
				return fault("return.v: empty stack")
			}
			return pop(), nil, nil

		case ir.OpThrow:
			if len(stack) < 1 {
				return fault("throw: empty stack")
			}
			ref := pop()
			if ref.IsNullRef() {
				pendingThrow = v.throwSys(stdlib.NullPointerClass, "throw of null")
				continue
			}
			if ref.K != ir.KindRef || !v.prog.Load().IsSubclassOf(ref.O.ClassName(), ir.ThrowableClass) {
				return fault("throw of non-throwable %s", ref)
			}
			pendingThrow = &Thrown{Obj: ref.O}
			continue

		default:
			return fault("unimplemented opcode %s", in.Op)
		}
		pc++
	}
}

func (v *VM) catches(h ir.TryHandler, t *Thrown) bool {
	if h.CatchClass == "" {
		return true
	}
	if t.Obj == nil {
		return false
	}
	return v.prog.Load().IsSubclassOf(t.Obj.ClassName(), h.CatchClass)
}

// staticSlot resolves Owner.Member through the superclass chain (static
// fields are inherited in Java) and ensures initialisation.
func (v *VM) staticSlot(env *Env, owner, member string) (*staticSlots, string, *Thrown, error) {
	dc, _, err := v.prog.Load().ResolveField(owner, member)
	if err != nil {
		return nil, "", nil, &FaultError{Msg: err.Error()}
	}
	thrown, ierr := v.ensureInit(env, dc.Name)
	if ierr != nil || thrown != nil {
		return nil, "", thrown, ierr
	}
	slots := v.slotsOf(dc.Name)
	if slots == nil {
		return nil, "", nil, &FaultError{Msg: fmt.Sprintf("field %s.%s is not static", dc.Name, member)}
	}
	if _, ok := slots.get(member); !ok {
		return nil, "", nil, &FaultError{Msg: fmt.Sprintf("field %s.%s is not static", dc.Name, member)}
	}
	return slots, member, nil, nil
}

func (v *VM) arith(op ir.Op, a, b Value) (Value, *Thrown) {
	if a.K == ir.KindFloat || b.K == ir.KindFloat {
		af, bf := numAsFloat(a), numAsFloat(b)
		switch op {
		case ir.OpAdd:
			return FloatV(af + bf), nil
		case ir.OpSub:
			return FloatV(af - bf), nil
		case ir.OpMul:
			return FloatV(af * bf), nil
		case ir.OpDiv:
			return FloatV(af / bf), nil
		case ir.OpRem:
			return FloatV(math.Mod(af, bf)), nil
		}
	}
	switch op {
	case ir.OpAdd:
		return IntV(a.I + b.I), nil
	case ir.OpSub:
		return IntV(a.I - b.I), nil
	case ir.OpMul:
		return IntV(a.I * b.I), nil
	case ir.OpDiv:
		if b.I == 0 {
			return Value{}, v.throwSys(stdlib.ArithmeticClass, "division by zero")
		}
		return IntV(a.I / b.I), nil
	case ir.OpRem:
		if b.I == 0 {
			return Value{}, v.throwSys(stdlib.ArithmeticClass, "remainder by zero")
		}
		return IntV(a.I % b.I), nil
	}
	return Value{}, nil
}

func numericKind(k ir.Kind) bool { return k == ir.KindInt || k == ir.KindFloat }

func numAsFloat(v Value) float64 {
	if v.K == ir.KindFloat {
		return v.F
	}
	return float64(v.I)
}

func compare(op ir.Op, a, b Value) (bool, error) {
	// Equality on references is identity; on primitives, value equality.
	if op == ir.OpCmpEq || op == ir.OpCmpNe {
		eq, err := valuesEqual(a, b)
		if err != nil {
			return false, err
		}
		if op == ir.OpCmpNe {
			return !eq, nil
		}
		return eq, nil
	}
	var c int
	switch {
	case a.K == ir.KindString && b.K == ir.KindString:
		switch {
		case a.S < b.S:
			c = -1
		case a.S > b.S:
			c = 1
		}
	case a.K == ir.KindFloat || b.K == ir.KindFloat:
		af, bf := numAsFloat(a), numAsFloat(b)
		switch {
		case af < bf:
			c = -1
		case af > bf:
			c = 1
		}
	case a.K == ir.KindInt && b.K == ir.KindInt:
		switch {
		case a.I < b.I:
			c = -1
		case a.I > b.I:
			c = 1
		}
	default:
		return false, fmt.Errorf("cannot order %v and %v", a.K, b.K)
	}
	switch op {
	case ir.OpCmpLt:
		return c < 0, nil
	case ir.OpCmpLe:
		return c <= 0, nil
	case ir.OpCmpGt:
		return c > 0, nil
	case ir.OpCmpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("bad comparison op %s", op)
}

func refLike(v Value) bool { return v.K == ir.KindRef || v.K == ir.KindArray }

func valuesEqual(a, b Value) (bool, error) {
	switch {
	case a.K == ir.KindRef && b.K == ir.KindRef:
		return a.O == b.O, nil
	case a.K == ir.KindArray && b.K == ir.KindArray:
		return a.A == b.A, nil
	case refLike(a) && refLike(b):
		// Mixed object/array comparison (e.g. a null literal, which is
		// typed as an object reference, against an array): equal only
		// when both are null.
		return a.IsNullRef() && b.IsNullRef(), nil
	case a.K == ir.KindString && b.K == ir.KindString:
		return a.S == b.S, nil
	case a.K == ir.KindBool && b.K == ir.KindBool:
		return a.I == b.I, nil
	case numericKind(a.K) && numericKind(b.K):
		if a.K == ir.KindFloat || b.K == ir.KindFloat {
			return numAsFloat(a) == numAsFloat(b), nil
		}
		return a.I == b.I, nil
	default:
		return false, fmt.Errorf("cannot compare %v and %v", a.K, b.K)
	}
}

// cast applies a checked reference cast or a numeric conversion.
func (v *VM) cast(val Value, target ir.Type) (Value, *Thrown, error) {
	switch target.Kind {
	case ir.KindInt:
		if val.K == ir.KindFloat {
			return IntV(int64(val.F)), nil, nil
		}
		if val.K == ir.KindInt || val.K == ir.KindBool {
			return IntV(val.I), nil, nil
		}
	case ir.KindFloat:
		if val.K == ir.KindInt {
			return FloatV(float64(val.I)), nil, nil
		}
		if val.K == ir.KindFloat {
			return val, nil, nil
		}
	case ir.KindRef:
		if val.K == ir.KindArray && val.A == nil {
			return NullV(), nil, nil
		}
		if val.K == ir.KindRef {
			if val.O == nil || v.prog.Load().AssignableTo(val.O.ClassName(), target.Name) {
				return val, nil, nil
			}
			return Value{}, v.throwSys(stdlib.ClassCastClass,
				fmt.Sprintf("%s is not a %s", val.O.ClassName(), target.Name)), nil
		}
	case ir.KindArray:
		if val.K == ir.KindRef && val.O == nil {
			return Value{K: ir.KindArray}, nil, nil
		}
		if val.K == ir.KindArray {
			if val.A == nil || val.A.Elem.Equal(*target.Elem) {
				return val, nil, nil
			}
			return Value{}, v.throwSys(stdlib.ClassCastClass,
				fmt.Sprintf("%s[] is not a %s[]", val.A.Elem, target.Elem)), nil
		}
	case ir.KindString:
		if val.K == ir.KindString {
			return val, nil, nil
		}
	case ir.KindBool:
		if val.K == ir.KindBool {
			return val, nil, nil
		}
	}
	return Value{}, nil, fmt.Errorf("cannot cast %v to %s", val.K, target)
}
