package vm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// callNative dispatches a native method: exact registration first, then
// the owning class's fallback handler (used by generated proxy classes).
// The caller's env is passed through so the native runs inside the same
// execution (same depth budget, same held locks).
func (v *VM) callNative(env *Env, class *ir.Class, m *ir.Method, recv Value, args []Value) (Value, *Thrown, error) {
	reg := v.natives.Load()
	if f, ok := reg.exact[nativeKey(class.Name, m.Name, len(m.Params))]; ok {
		return f(env, recv, args)
	}
	if f, ok := reg.class[class.Name]; ok {
		return f(env, m.Name, recv, args)
	}
	return Value{}, nil, &FaultError{
		Msg: fmt.Sprintf("unbound native method %s.%s/%d", class.Name, m.Name, len(m.Params)),
	}
}

// registerSystemNatives binds the sys.* library implementations.  It runs
// during New, before the VM is visible to any other goroutine, so it may
// write the registry snapshot in place.
func registerSystemNatives(v *VM) {
	reg := func(owner, name string, arity int, f NativeFunc) {
		v.natives.Load().exact[nativeKey(owner, name, arity)] = f
	}

	// sys.Object
	reg(ir.ObjectClass, "toString", 0, func(env *Env, recv Value, _ []Value) (Value, *Thrown, error) {
		if recv.O == nil {
			return StringV("null"), nil, nil
		}
		return StringV("<" + recv.O.ClassName() + ">"), nil, nil
	})
	reg(ir.ObjectClass, "hashCode", 0, func(env *Env, recv Value, _ []Value) (Value, *Thrown, error) {
		if recv.O == nil {
			return IntV(0), nil, nil
		}
		// Stable content-free hash: identity is not portable, so hash the
		// class name; adequate for programs under test.
		var h int64
		for _, c := range recv.O.ClassName() {
			h = h*31 + int64(c)
		}
		return IntV(h), nil, nil
	})
	reg(ir.ObjectClass, "getClass", 0, func(env *Env, recv Value, _ []Value) (Value, *Thrown, error) {
		if recv.O == nil {
			return StringV("null"), nil, nil
		}
		return StringV(recv.O.ClassName()), nil, nil
	})

	// sys.System
	reg(ir.SystemClass, "println", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		fmt.Fprintln(env.vm.out, args[0].S)
		return Value{}, nil, nil
	})
	reg(ir.SystemClass, "print", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		fmt.Fprint(env.vm.out, args[0].S)
		return Value{}, nil, nil
	})
	reg(ir.SystemClass, "printInt", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		fmt.Fprintln(env.vm.out, args[0].I)
		return Value{}, nil, nil
	})

	// sys.Strings
	reg(stdlib.StringsClass, "length", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return IntV(int64(len(args[0].S))), nil, nil
	})
	reg(stdlib.StringsClass, "charAt", 2, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		s, i := args[0].S, args[1].I
		if i < 0 || int(i) >= len(s) {
			return Value{}, env.Throw(stdlib.IndexBoundsClass, fmt.Sprintf("charAt %d of %q", i, s)), nil
		}
		return IntV(int64(s[i])), nil, nil
	})
	reg(stdlib.StringsClass, "substring", 3, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		s, lo, hi := args[0].S, args[1].I, args[2].I
		if lo < 0 || hi < lo || int(hi) > len(s) {
			return Value{}, env.Throw(stdlib.IndexBoundsClass,
				fmt.Sprintf("substring [%d,%d) of %q", lo, hi, s)), nil
		}
		return StringV(s[lo:hi]), nil, nil
	})
	reg(stdlib.StringsClass, "indexOf", 2, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return IntV(int64(strings.Index(args[0].S, args[1].S))), nil, nil
	})
	reg(stdlib.StringsClass, "ofInt", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return StringV(strconv.FormatInt(args[0].I, 10)), nil, nil
	})
	reg(stdlib.StringsClass, "ofFloat", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return StringV(strconv.FormatFloat(args[0].F, 'g', -1, 64)), nil, nil
	})
	reg(stdlib.StringsClass, "ofBool", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return StringV(strconv.FormatBool(args[0].I != 0)), nil, nil
	})
	reg(stdlib.StringsClass, "parseInt", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		n, err := strconv.ParseInt(strings.TrimSpace(args[0].S), 10, 64)
		if err != nil {
			return Value{}, env.Throw(stdlib.RuntimeExceptionClass, "parseInt: "+args[0].S), nil
		}
		return IntV(n), nil, nil
	})
	reg(stdlib.StringsClass, "equals", 2, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return BoolV(args[0].S == args[1].S), nil, nil
	})
	reg(stdlib.StringsClass, "repeat", 2, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		n := args[1].I
		if n < 0 || n > 1<<20 {
			return Value{}, env.Throw(stdlib.IndexBoundsClass, fmt.Sprintf("repeat count %d", n)), nil
		}
		return StringV(strings.Repeat(args[0].S, int(n))), nil, nil
	})

	// sys.Math
	reg(ir.MathClass, "abs", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		n := args[0].I
		if n < 0 {
			n = -n
		}
		return IntV(n), nil, nil
	})
	reg(ir.MathClass, "min", 2, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		if args[0].I < args[1].I {
			return args[0], nil, nil
		}
		return args[1], nil, nil
	})
	reg(ir.MathClass, "max", 2, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		if args[0].I > args[1].I {
			return args[0], nil, nil
		}
		return args[1], nil, nil
	})
	reg(ir.MathClass, "sqrt", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return FloatV(math.Sqrt(args[0].F)), nil, nil
	})
	reg(ir.MathClass, "pow", 2, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return FloatV(math.Pow(args[0].F, args[1].F)), nil, nil
	})
	reg(ir.MathClass, "floor", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return IntV(int64(math.Floor(args[0].F))), nil, nil
	})
	reg(ir.MathClass, "toFloat", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return FloatV(float64(args[0].I)), nil, nil
	})

	// sys.Random: splitmix64-style step, pure and deterministic.
	reg(stdlib.RandomClass, "next", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		return IntV(int64(splitmix(uint64(args[0].I)))), nil, nil
	})
	reg(stdlib.RandomClass, "value", 2, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		bound := args[1].I
		if bound <= 0 {
			return Value{}, env.Throw(stdlib.ArithmeticClass, "random bound must be positive"), nil
		}
		x := splitmix(uint64(args[0].I))
		return IntV(int64(x % uint64(bound))), nil, nil
	})

	// sys.Clock
	reg(stdlib.ClockClass, "nanos", 0, func(env *Env, _ Value, _ []Value) (Value, *Thrown, error) {
		return IntV(env.vm.clock().UnixNano()), nil, nil
	})
	reg(stdlib.ClockClass, "millis", 0, func(env *Env, _ Value, _ []Value) (Value, *Thrown, error) {
		return IntV(env.vm.clock().UnixNano() / 1e6), nil, nil
	})
	// sleepMicros blocks the calling execution WITHOUT releasing its
	// locks — it models program-level waiting (I/O, pacing, device time)
	// that happens between heap accesses and therefore cannot use
	// RunUnlocked.  Under sharded locking only the target object's gate
	// is held, so other objects keep executing; under the coarse-lock
	// regime the whole VM stalls.  Experiment E8 measures exactly this
	// difference.
	reg(stdlib.ClockClass, "sleepMicros", 1, func(env *Env, _ Value, args []Value) (Value, *Thrown, error) {
		if n := args[0].I; n > 0 {
			time.Sleep(time.Duration(n) * time.Microsecond)
		}
		return Value{}, nil, nil
	})
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
