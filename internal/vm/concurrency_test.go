package vm

import (
	"strings"
	"sync"
	"testing"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// cellProgram builds a class with an int field and a read-modify-write
// bump method — the canonical lost-update probe.
func cellProgram() *ir.Program {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{
		Name: "Cell", Super: ir.ObjectClass,
		Fields: []ir.Field{{Name: "n", Type: ir.Int}},
		Methods: []*ir.Method{
			{Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic, MaxLocals: 1,
				Code: []ir.Instr{{Op: ir.OpReturn}}},
			{Name: "bump", Return: ir.Int, Access: ir.AccessPublic, MaxLocals: 1,
				Code: []ir.Instr{
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpGetField, Owner: "Cell", Member: "n"},
					{Op: ir.OpConstInt, A: 1},
					{Op: ir.OpAdd},
					{Op: ir.OpPutField, Owner: "Cell", Member: "n"},
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpGetField, Owner: "Cell", Member: "n"},
					{Op: ir.OpReturnValue},
				}},
		},
	})
	return p
}

// TestExecOnSerialisesPerObject: gated executions of ONE object are a
// monitor — concurrent bumps must not lose updates.
func TestExecOnSerialisesPerObject(t *testing.T) {
	v := MustNew(cellProgram())
	obj, err := v.NewObject("Cell")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const per = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.ExecOn(obj, func(env *Env) {
					if _, thrown, err := env.Call("Cell", "bump", RefV(obj), nil); thrown != nil || err != nil {
						t.Errorf("bump: %v %v", thrown, err)
					}
				})
			}
		}()
	}
	wg.Wait()
	if got := obj.Get("n"); got.I != workers*per {
		t.Fatalf("lost updates: %d want %d", got.I, workers*per)
	}
}

// TestExecOnDistinctObjectsRunConcurrently: the gate of one object must
// not block executions entered through another.  A gated execution on
// obj1 blocks until a gated execution on obj2 has run — if the gates
// were one global lock this would deadlock.
func TestExecOnDistinctObjectsRunConcurrently(t *testing.T) {
	v := MustNew(cellProgram())
	obj1, _ := v.NewObject("Cell")
	obj2, _ := v.NewObject("Cell")

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		v.ExecOn(obj1, func(env *Env) {
			close(started)
			<-release // hold obj1's gate until obj2's execution finishes
		})
		close(done)
	}()
	<-started
	// Must complete while obj1's gate is held.
	v.ExecOn(obj2, func(env *Env) {
		if _, thrown, err := env.Call("Cell", "bump", RefV(obj2), nil); thrown != nil || err != nil {
			t.Errorf("bump: %v %v", thrown, err)
		}
	})
	close(release)
	<-done
	if got := obj2.Get("n"); got.I != 1 {
		t.Fatalf("obj2 bump lost: %d", got.I)
	}
}

// TestCallGatedReentrant: an execution that already holds an object's
// gate may CallGated the same object again without deadlocking.
func TestCallGatedReentrant(t *testing.T) {
	v := MustNew(cellProgram())
	obj, _ := v.NewObject("Cell")
	v.ExecOn(obj, func(env *Env) {
		if _, thrown, err := env.CallGated(obj, "bump", nil); thrown != nil || err != nil {
			t.Fatalf("re-entrant gated call: %v %v", thrown, err)
		}
	})
	if got := obj.Get("n"); got.I != 1 {
		t.Fatalf("bump lost: %d", got.I)
	}
}

// TestRunUnlockedReleasesGate: a native blocking via RunUnlocked lets
// another goroutine's gated invocation of the SAME object proceed — the
// mechanism that keeps re-entrant remote callbacks deadlock-free.
func TestRunUnlockedReleasesGate(t *testing.T) {
	p := cellProgram()
	p.MustAdd(&ir.Class{
		Name: "Blocker", Super: ir.ObjectClass,
		Methods: []*ir.Method{
			{Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic, MaxLocals: 1,
				Code: []ir.Instr{{Op: ir.OpReturn}}},
			{Name: "wait", Return: ir.Void, Access: ir.AccessPublic, Native: true},
		},
	})
	v := MustNew(p)
	obj, _ := v.NewObject("Blocker")
	blocking := make(chan struct{})
	unblock := make(chan struct{})
	v.RegisterNative("Blocker", "wait", 0, func(env *Env, _ Value, _ []Value) (Value, *Thrown, error) {
		env.RunUnlocked(func() {
			close(blocking)
			<-unblock
		})
		return Value{}, nil, nil
	})

	done := make(chan struct{})
	go func() {
		v.ExecOn(obj, func(env *Env) {
			_, _, _ = env.Call("Blocker", "wait", RefV(obj), nil)
		})
		close(done)
	}()
	<-blocking
	// The first execution is parked inside RunUnlocked; its gate must be
	// free for us.
	entered := make(chan struct{})
	go func() {
		v.ExecOn(obj, func(env *Env) { close(entered) })
	}()
	<-entered
	close(unblock)
	<-done
}

// TestCoarseLockOptionStillCorrect: the E8 baseline regime must keep the
// same observable behaviour, just without parallelism.
func TestCoarseLockOptionStillCorrect(t *testing.T) {
	v := MustNew(cellProgram(), WithCoarseLock())
	obj, err := v.NewObject("Cell")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const per = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.ExecOn(obj, func(env *Env) {
					if _, thrown, err := env.Call("Cell", "bump", RefV(obj), nil); thrown != nil || err != nil {
						t.Errorf("bump: %v %v", thrown, err)
					}
				})
			}
		}()
	}
	wg.Wait()
	if got := obj.Get("n"); got.I != workers*per {
		t.Fatalf("coarse mode lost updates: %d want %d", got.I, workers*per)
	}
}

// TestStepLimitCumulative: the step budget binds ACROSS executions,
// not just within one long activation — many short invocations must
// eventually fault, as they did under the seed's per-instruction check.
func TestStepLimitCumulative(t *testing.T) {
	v := MustNew(cellProgram(), WithMaxSteps(500))
	obj, err := v.NewObject("Cell")
	if err != nil {
		t.Fatal(err)
	}
	// bump() is ~9 instructions; well under stepQuantum per call.
	for i := 0; i < 10_000; i++ {
		if _, err := v.Invoke("Cell", "bump", RefV(obj), nil); err != nil {
			if !strings.Contains(err.Error(), "step limit") {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
	}
	t.Fatal("cumulative step budget never enforced across short executions")
}

// TestFailedSuperInitLeavesNoPhantomStatics: when a superclass clinit
// throws, later static reads of the subclass must keep faulting rather
// than silently returning zero values (seed behaviour).
func TestFailedSuperInitLeavesNoPhantomStatics(t *testing.T) {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{
		Name: "Boom", Super: ir.ObjectClass,
		Methods: []*ir.Method{
			{Name: ir.StaticInitName, Return: ir.Void, Static: true, MaxLocals: 1,
				Code: []ir.Instr{
					{Op: ir.OpNew, Owner: stdlib.RuntimeExceptionClass},
					{Op: ir.OpDup},
					{Op: ir.OpConstString, Str: "boom"},
					{Op: ir.OpInvokeSpecial, Owner: stdlib.RuntimeExceptionClass, Member: ir.ConstructorName, NArgs: 1},
					{Op: ir.OpThrow},
				}},
		},
	})
	p.MustAdd(&ir.Class{
		Name: "Child", Super: "Boom",
		Fields: []ir.Field{{Name: "n", Type: ir.Int, Static: true}},
	})
	v := MustNew(p)
	if _, err := v.GetStatic("Child", "n"); err == nil {
		t.Fatal("first read after failed super init succeeded")
	}
	// The failure must stay observable: no phantom zero-valued slot.
	if _, err := v.GetStatic("Child", "n"); err == nil {
		t.Fatal("later read after failed super init returned a phantom value")
	}
}

// TestRegistrationAfterBootVisible: copy-on-write registries publish new
// natives and classes to already-running readers.
func TestRegistrationAfterBootVisible(t *testing.T) {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{
		Name: "N", Super: ir.ObjectClass,
		Methods: []*ir.Method{
			{Name: "f", Return: ir.Int, Static: true, Native: true, Access: ir.AccessPublic},
		},
	})
	v := MustNew(p)
	if _, err := v.Invoke("N", "f", Value{}, nil); err == nil {
		t.Fatal("unbound native accepted")
	}
	v.RegisterNative("N", "f", 0, func(env *Env, _ Value, _ []Value) (Value, *Thrown, error) {
		return IntV(7), nil, nil
	})
	if got, err := v.Invoke("N", "f", Value{}, nil); err != nil || got.I != 7 {
		t.Fatalf("late-registered native: %v %v", got, err)
	}
	if err := v.AddClass(&ir.Class{Name: "Late", Super: ir.ObjectClass,
		Methods: []*ir.Method{{Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic, MaxLocals: 1,
			Code: []ir.Instr{{Op: ir.OpReturn}}}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.NewObject("Late"); err != nil {
		t.Fatalf("late-added class not visible: %v", err)
	}
	if err := v.AddClass(&ir.Class{Name: "Late"}); err == nil {
		t.Fatal("duplicate class accepted")
	}
}
