// Package vm implements the bytecode interpreter for the IR: heap objects,
// virtual/interface/static dispatch, static initialisation, exceptions,
// arrays and native methods.  It is the execution substrate standing in
// for the JVM in the reproduction.
package vm

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// Limits bound runaway programs in tests and experiments.
const (
	DefaultMaxSteps = int64(200_000_000)
	DefaultMaxDepth = 1024
)

// FaultError reports a VM-level fault: malformed code, unknown classes,
// step or depth limits.  Distinct from program-level thrown exceptions.
type FaultError struct {
	Msg string
}

func (e *FaultError) Error() string { return "vm fault: " + e.Msg }

// UncaughtError reports a program exception that escaped the entry method.
type UncaughtError struct {
	Class   string
	Message string
}

func (e *UncaughtError) Error() string {
	return fmt.Sprintf("uncaught %s: %s", e.Class, e.Message)
}

// Thrown carries an in-flight program exception between frames.
type Thrown struct {
	Obj *Object
}

// Env is the capability handed to native methods.  Calls made through Env
// stay within the current VM execution (no re-locking), and RunUnlocked
// lets natives that block on the network (proxy invocations) release the
// VM while waiting.
type Env struct {
	vm *VM
}

// VM returns the owning VM.
func (e *Env) VM() *VM { return e.vm }

// Call invokes a method within the current execution.
func (e *Env) Call(class, method string, recv Value, args []Value) (Value, *Thrown, error) {
	return e.vm.call(class, method, recv, args)
}

// New allocates an uninitialised instance of the named class.
func (e *Env) New(class string) (*Object, error) { return e.vm.alloc(class) }

// Construct allocates and runs the matching constructor.
func (e *Env) Construct(class string, args []Value) (Value, *Thrown, error) {
	return e.vm.construct(class, args)
}

// Throw builds a Thrown of the given system exception class.
func (e *Env) Throw(class, msg string) *Thrown { return e.vm.throwSys(class, msg) }

// RunUnlocked releases the VM lock around f.  Native methods that perform
// blocking I/O (remote proxy calls) must use it so that incoming remote
// invocations — including re-entrant callbacks — can proceed.
func (e *Env) RunUnlocked(f func()) {
	e.vm.mu.Unlock()
	defer e.vm.mu.Lock()
	f()
}

// NativeFunc implements one native method.
type NativeFunc func(env *Env, recv Value, args []Value) (Value, *Thrown, error)

// ClassNativeFunc implements every native method of one class; the node
// runtime registers these for generated proxy classes.
type ClassNativeFunc func(env *Env, method string, recv Value, args []Value) (Value, *Thrown, error)

// VM is one address space's interpreter: a program (class path), static
// state, and a native-method registry.
//
// Locking: all public entry points serialise on an internal mutex, so a
// VM may be driven from multiple goroutines (the node runtime dispatches
// each incoming remote invocation on its own goroutine).  Native methods
// receive an Env and may release the lock across blocking I/O.
type VM struct {
	mu sync.Mutex

	prog        *ir.Program
	statics     map[string]map[string]Value
	initialized map[string]bool
	natives     map[string]NativeFunc
	classNative map[string]ClassNativeFunc

	out      io.Writer
	steps    int64
	maxSteps int64
	depth    int
	maxDepth int

	// Clock supplies sys.Clock natives; overridable for determinism.
	clock func() time.Time
}

// Option configures a VM.
type Option func(*VM)

// WithOutput directs sys.System print natives to w.
func WithOutput(w io.Writer) Option { return func(v *VM) { v.out = w } }

// WithMaxSteps overrides the execution step budget.
func WithMaxSteps(n int64) Option { return func(v *VM) { v.maxSteps = n } }

// WithMaxDepth overrides the call-depth budget.
func WithMaxDepth(n int) Option { return func(v *VM) { v.maxDepth = n } }

// WithClock overrides the time source used by sys.Clock.
func WithClock(f func() time.Time) Option { return func(v *VM) { v.clock = f } }

// New builds a VM over prog.  If prog lacks the system library it is
// merged in automatically.  The system natives are pre-registered.
func New(prog *ir.Program, opts ...Option) (*VM, error) {
	if prog == nil {
		prog = ir.NewProgram()
	}
	if !prog.Has(ir.ObjectClass) {
		merged := stdlib.Program()
		for _, c := range prog.Classes() {
			if err := merged.Add(c); err != nil {
				return nil, fmt.Errorf("merge system library: %w", err)
			}
		}
		prog = merged
	}
	v := &VM{
		prog:        prog,
		statics:     make(map[string]map[string]Value),
		initialized: make(map[string]bool),
		natives:     make(map[string]NativeFunc),
		classNative: make(map[string]ClassNativeFunc),
		out:         io.Discard,
		maxSteps:    DefaultMaxSteps,
		maxDepth:    DefaultMaxDepth,
		clock:       time.Now,
	}
	for _, o := range opts {
		o(v)
	}
	registerSystemNatives(v)
	return v, nil
}

// MustNew is New that panics; for tests and generators.
func MustNew(prog *ir.Program, opts ...Option) *VM {
	v, err := New(prog, opts...)
	if err != nil {
		panic(err)
	}
	return v
}

// Program returns the VM's program.  Callers must not mutate classes that
// have already executed.
func (v *VM) Program() *ir.Program { return v.prog }

// AddClass loads an additional class definition (e.g. a proxy class
// shipped from a peer node).
func (v *VM) AddClass(c *ir.Class) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.prog.Has(c.Name) {
		return fmt.Errorf("class %q already loaded", c.Name)
	}
	return v.prog.Add(c)
}

// RegisterNative binds one native method: owner.name with the given arity.
func (v *VM) RegisterNative(owner, name string, arity int, f NativeFunc) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.natives[nativeKey(owner, name, arity)] = f
}

// RegisterClassNative binds a fallback handler for every native method of
// owner that has no exact registration.
func (v *VM) RegisterClassNative(owner string, f ClassNativeFunc) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.classNative[owner] = f
}

func nativeKey(owner, name string, arity int) string {
	return fmt.Sprintf("%s.%s/%d", owner, name, arity)
}

// Steps returns the cumulative instruction count executed.
func (v *VM) Steps() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.steps
}

// ResetSteps zeroes the instruction counter.
func (v *VM) ResetSteps() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.steps = 0
}

// Invoke calls class.method with an explicit receiver (use NullV or a
// previously obtained object reference; pass Value{} for statics too —
// the method's own staticness decides).  It is the public, locking entry
// point; errors are *FaultError or *UncaughtError.
func (v *VM) Invoke(class, method string, recv Value, args []Value) (Value, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	res, thrown, err := v.call(class, method, recv, args)
	if err != nil {
		return Value{}, err
	}
	if thrown != nil {
		return Value{}, v.uncaught(thrown)
	}
	return res, nil
}

// InvokeCatching is Invoke but returns program exceptions as a Thrown
// rather than flattening them to an error; the node runtime uses it so
// exceptions can propagate across the wire.
func (v *VM) InvokeCatching(class, method string, recv Value, args []Value) (Value, *Thrown, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.call(class, method, recv, args)
}

// RunMain locates `static void main()` on the named class and runs it.
func (v *VM) RunMain(class string) error {
	_, err := v.Invoke(class, "main", Value{}, nil)
	return err
}

// NewObject allocates an uninitialised instance (public, locking).
func (v *VM) NewObject(class string) (*Object, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.alloc(class)
}

// Construct allocates an instance and runs its arity-matching constructor.
func (v *VM) Construct(class string, args []Value) (Value, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	res, thrown, err := v.construct(class, args)
	if err != nil {
		return Value{}, err
	}
	if thrown != nil {
		return Value{}, v.uncaught(thrown)
	}
	return res, nil
}

// GetStatic reads a static field (running <clinit> if needed).
func (v *VM) GetStatic(class, field string) (Value, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if thrown, err := v.ensureInit(class); err != nil {
		return Value{}, err
	} else if thrown != nil {
		return Value{}, v.uncaught(thrown)
	}
	m := v.statics[class]
	val, ok := m[field]
	if !ok {
		return Value{}, &FaultError{Msg: fmt.Sprintf("no static field %s.%s", class, field)}
	}
	return val, nil
}

// SetStatic writes a static field (running <clinit> if needed).
func (v *VM) SetStatic(class, field string, val Value) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if thrown, err := v.ensureInit(class); err != nil {
		return err
	} else if thrown != nil {
		return v.uncaught(thrown)
	}
	m := v.statics[class]
	if _, ok := m[field]; !ok {
		return &FaultError{Msg: fmt.Sprintf("no static field %s.%s", class, field)}
	}
	m[field] = val
	return nil
}

// WithLock runs f while holding the VM lock; the node runtime uses it for
// compound heap operations (marshalling object state, morphing).
func (v *VM) WithLock(f func(env *Env)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	f(&Env{vm: v})
}

// Morph re-types obj in place: it becomes an instance of newClass with the
// given fields.  Every existing reference to obj now observes the new
// class — this implements proxy substitution for live objects.
func (v *VM) Morph(obj *Object, newClass string, fields map[string]Value) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.prog.Class(newClass)
	if c == nil {
		return &FaultError{Msg: "morph: unknown class " + newClass}
	}
	obj.Class = c
	obj.Fields = fields
	return nil
}

func (v *VM) uncaught(t *Thrown) error {
	msg := ""
	if t.Obj != nil {
		if mv, ok := t.Obj.Fields["message"]; ok {
			msg = mv.S
		}
		return &UncaughtError{Class: t.Obj.Class.Name, Message: msg}
	}
	return &UncaughtError{Class: "<nil>", Message: ""}
}

// ThrownMessage extracts class and message from a thrown exception.
func ThrownMessage(t *Thrown) (class, msg string) {
	if t == nil || t.Obj == nil {
		return "", ""
	}
	return t.Obj.Class.Name, t.Obj.Fields["message"].S
}

// alloc creates a zeroed instance of the named class (no constructor).
func (v *VM) alloc(class string) (*Object, error) {
	c := v.prog.Class(class)
	if c == nil {
		return nil, &FaultError{Msg: "new: unknown class " + class}
	}
	if c.IsInterface || c.Abstract {
		return nil, &FaultError{Msg: "new: cannot instantiate " + class}
	}
	fields := make(map[string]Value)
	for cur := c; cur != nil; {
		for _, f := range cur.Fields {
			if !f.Static {
				if _, shadowed := fields[f.Name]; !shadowed {
					fields[f.Name] = ZeroValue(f.Type)
				}
			}
		}
		if cur.Super == "" {
			break
		}
		cur = v.prog.Class(cur.Super)
	}
	return &Object{Class: c, Fields: fields}, nil
}

func (v *VM) construct(class string, args []Value) (Value, *Thrown, error) {
	if thrown, err := v.ensureInit(class); thrown != nil || err != nil {
		return Value{}, thrown, err
	}
	obj, err := v.alloc(class)
	if err != nil {
		return Value{}, nil, err
	}
	c := v.prog.Class(class)
	ctor := c.Method(ir.ConstructorName, len(args))
	if ctor == nil {
		return Value{}, nil, &FaultError{Msg: fmt.Sprintf("no constructor %s/%d", class, len(args))}
	}
	_, thrown, err := v.exec(c, ctor, RefV(obj), args)
	if thrown != nil || err != nil {
		return Value{}, thrown, err
	}
	return RefV(obj), nil, nil
}

// call resolves and executes a method; lock must be held.
func (v *VM) call(class, method string, recv Value, args []Value) (Value, *Thrown, error) {
	dc, m, err := v.prog.ResolveMethod(class, method, len(args))
	if err != nil {
		return Value{}, nil, &FaultError{Msg: err.Error()}
	}
	if m.Static {
		if thrown, err := v.ensureInit(dc.Name); thrown != nil || err != nil {
			return Value{}, thrown, err
		}
	}
	return v.exec(dc, m, recv, args)
}

// ensureInit runs the static initialiser of class (and its superclasses)
// on first use.
func (v *VM) ensureInit(class string) (*Thrown, error) {
	c := v.prog.Class(class)
	if c == nil {
		return nil, &FaultError{Msg: "init: unknown class " + class}
	}
	if v.initialized[class] {
		return nil, nil
	}
	// Mark before running, as the JVM does, so initialisation cycles
	// terminate (observing partially-initialised state, as in Java).
	v.initialized[class] = true
	if c.Super != "" {
		if thrown, err := v.ensureInit(c.Super); thrown != nil || err != nil {
			return thrown, err
		}
	}
	sf := make(map[string]Value)
	for _, f := range c.StaticFields() {
		sf[f.Name] = ZeroValue(f.Type)
	}
	v.statics[class] = sf
	if clinit := c.StaticInit(); clinit != nil {
		_, thrown, err := v.exec(c, clinit, Value{}, nil)
		if thrown != nil || err != nil {
			return thrown, err
		}
	}
	return nil, nil
}

// throwSys builds a Thrown of a sys.* exception class.
func (v *VM) throwSys(class, msg string) *Thrown {
	obj, err := v.alloc(class)
	if err != nil {
		// The system library is always present; this indicates a broken
		// program set.  Surface as a throwable-less Thrown.
		return &Thrown{}
	}
	obj.Fields["message"] = StringV(msg)
	return &Thrown{Obj: obj}
}
