// Package vm implements the bytecode interpreter for the IR: heap objects,
// virtual/interface/static dispatch, static initialisation, exceptions,
// arrays and native methods.  It is the execution substrate standing in
// for the JVM in the reproduction.
//
// # Thread safety
//
// A VM may be driven from any number of goroutines; there is no global
// interpreter lock.  The concurrency contract (docs/CONCURRENCY.md spells
// it out in full) is:
//
//   - The class/native registries are immutable-after-boot snapshots
//     published through atomic pointers: method resolution, class lookup
//     and native dispatch read them without locks.  AddClass /
//     RegisterNative / RegisterClassNative install a new snapshot
//     (copy-on-write) and are expected at boot, before traffic.
//   - Every heap Object carries its own state lock (field reads/writes
//     and morphs are individually atomic) and an invocation gate that
//     callers acquire via ExecOn to serialise whole invocations — and
//     migrations — per object.  Executions entered through different
//     objects run in parallel.
//   - Static fields live in per-class slot tables with their own locks;
//     <clinit> runs once, triggered by the first toucher (concurrent
//     touchers may observe partially-initialised statics, exactly as
//     they could in the seed across I/O points and as the JVM permits
//     within initialisation cycles).
//   - The legacy public entry points (Invoke, Construct, RunMain,
//     GetStatic, SetStatic) serialise on one host lock, preserving the
//     seed's sequential semantics for host-driven programs.  The
//     parallel paths are Exec (ungated scope) and ExecOn (per-object
//     gate); the node runtime dispatches through those.
//   - WithCoarseLock restores the seed's single global lock on every
//     entry point — kept as the measurable baseline for experiment E8.
package vm

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// Limits bound runaway programs in tests and experiments.
const (
	DefaultMaxSteps = int64(200_000_000)
	DefaultMaxDepth = 1024
)

// stepQuantum is how many interpreted instructions an execution runs
// between flushes of its private step counter into the VM's shared one.
// Batching keeps the hot loop off a contended atomic; the step budget is
// therefore enforced with quantum granularity.
const stepQuantum = 256

// FaultError reports a VM-level fault: malformed code, unknown classes,
// step or depth limits.  Distinct from program-level thrown exceptions.
type FaultError struct {
	Msg string
}

func (e *FaultError) Error() string { return "vm fault: " + e.Msg }

// UncaughtError reports a program exception that escaped the entry method.
type UncaughtError struct {
	Class   string
	Message string
}

func (e *UncaughtError) Error() string {
	return fmt.Sprintf("uncaught %s: %s", e.Class, e.Message)
}

// Thrown carries an in-flight program exception between frames.
type Thrown struct {
	Obj *Object
}

// Env is one execution of the VM: the context threaded through every
// frame of one entry-point activation, and the capability handed to
// native methods.  It carries the per-execution interpreter state (call
// depth, batched step count) and records which locks the execution holds
// so that RunUnlocked can release them around blocking I/O.
//
// An Env is confined to its execution: never retain one beyond the call
// that delivered it, and never share one between goroutines.
type Env struct {
	vm       *VM
	depth    int
	steps    int64 // instructions not yet flushed to vm.steps
	stepBase int64 // cumulative vm.steps snapshot as of the last flush

	holdsHost bool      // execution entered through the host-compat lock
	gates     []gateRef // invocation gates held, in acquisition order

	// forward is one-shot baggage for the node runtime: when an inbound
	// tokened invocation's target turns out to be a forwarding proxy,
	// the dispatcher deposits the inbound call token here and the proxy
	// native consumes it, so the forwarded request reuses the original
	// token — the new home recognises a retry of work the old home
	// already completed (docs/CONCURRENCY.md §8).  Typed any to keep the
	// vm layer free of wire types.
	forward any

	// traceID/spanID are the causal span context of this execution: the
	// dispatcher deposits the server span's ids here and every nested
	// proxy call the execution makes reads them, so remote sends parent
	// to the span that caused them and the cross-node call tree stays
	// connected (forwarded retries, migration re-sends, replica
	// fan-outs).  Unlike forward they are not one-shot — all of an
	// execution's outbound calls share the same parent.  Stored as two
	// bare words rather than a boxed struct: depositing them is on the
	// traced dispatch hot path and must not allocate (the ids keep the
	// vm layer free of trace types just as well as an any would).
	traceID uint64
	spanID  uint64

	// deadlineUs is the execution's remaining latency budget in
	// microseconds (zero: none).  The dispatcher deposits the inbound
	// call's budget — already charged for queue/gate wait — and nested
	// proxy calls read it to stamp their outbound requests, so a
	// deadline propagates down a forwarding or fan-out chain.  Same
	// bare-word, non-one-shot discipline as the trace context above.
	deadlineUs uint64
}

// SetForward deposits one-shot forwarding baggage (see Env.forward).
func (e *Env) SetForward(v any) { e.forward = v }

// TakeForward consumes the forwarding baggage, returning nil when none
// was deposited (or it was already taken).
func (e *Env) TakeForward() any {
	v := e.forward
	e.forward = nil
	return v
}

// SetTraceCtx deposits the execution's span context (see
// Env.traceID/spanID).
func (e *Env) SetTraceCtx(traceID, spanID uint64) {
	e.traceID, e.spanID = traceID, spanID
}

// TraceCtx reads the execution's span context; zero when the execution
// was not started by a traced dispatch.
func (e *Env) TraceCtx() (traceID, spanID uint64) { return e.traceID, e.spanID }

// SetDeadlineUs deposits the execution's remaining latency budget (see
// Env.deadlineUs).
func (e *Env) SetDeadlineUs(us uint64) { e.deadlineUs = us }

// DeadlineUs reads the execution's remaining latency budget; zero when
// the inbound call carried no deadline.
func (e *Env) DeadlineUs() uint64 { return e.deadlineUs }

// gateRef is one held invocation gate plus the object's epoch at
// acquisition, so RunUnlocked can detect a morph that landed while the
// execution was parked with the gate released.
type gateRef struct {
	obj   *Object
	epoch uint64
}

// MigrationInterrupt aborts an invocation whose gated target was
// migrated away while the invocation was parked in RunUnlocked (blocked
// on its own nested remote call, gate released).  The interpreted frames
// above the park point hold a view of an object that no longer exists —
// resuming them would fault on morphed fields, as the seed did — so the
// execution unwinds by panic to the frame that acquired the gate
// (Env.CallGated, or the node runtime's dispatch/CallOn entry), which
// retries the whole invocation against the object's new class: the
// morphed proxy forwards it to the object's new home.
//
// Retry semantics: the retried invocation reuses the original call's
// dedup token (the node runtime forwards it via Env.SetForward), so if
// the old home had already completed the call its shipped window entry
// replays at the new home instead of re-executing.  A genuinely
// interrupted method — parked mid-body past the migration's bounded
// park-drain — re-executes from the top, re-running its pre-park prefix;
// the drain makes this the bounded exception rather than the rule
// (docs/CONCURRENCY.md §8).
type MigrationInterrupt struct {
	Obj *Object
}

func (m *MigrationInterrupt) Error() string {
	return "invocation target migrated while the call was parked"
}

// MaxMigrationRetries bounds how many consecutive mid-call migrations of
// one target an invocation chases before giving up.  Shared by every
// interrupt-retry site (CallGated here, dispatch and CallOn in the node
// runtime).
const MaxMigrationRetries = 8

// VM returns the owning VM.
func (e *Env) VM() *VM { return e.vm }

// Call invokes a method within the current execution.
func (e *Env) Call(class, method string, recv Value, args []Value) (Value, *Thrown, error) {
	return e.vm.call(e, class, method, recv, args)
}

// CallGated invokes method on obj while holding obj's invocation gate,
// serialising against other gated invocations of — and migrations of —
// the same object.  If this execution already holds the gate (or the VM
// runs under the coarse lock) the call proceeds re-entrantly.  The node
// runtime uses it when a proxy collapses to a direct local call, so the
// call keeps monitor semantics no matter which side of the wire it
// entered from.  Gate acquisition follows monitor rules: programs that
// nest gated calls in conflicting orders can deadlock, as Java monitors
// can.
func (e *Env) CallGated(obj *Object, method string, args []Value) (Value, *Thrown, error) {
	if obj == nil {
		return Value{}, nil, &FaultError{Msg: "gated call on nil object"}
	}
	if e.vm.coarse || e.holdsGate(obj) {
		return e.vm.call(e, obj.ClassName(), method, RefV(obj), args)
	}
	for attempt := 0; ; attempt++ {
		res, thrown, err, interrupted := e.callGatedOnce(obj, method, args)
		if !interrupted {
			return res, thrown, err
		}
		if attempt >= MaxMigrationRetries {
			return Value{}, nil, &FaultError{Msg: fmt.Sprintf(
				"invocation of %s abandoned: target migrated %d times mid-call", method, attempt+1)}
		}
		// The target morphed into a proxy while this call was parked in
		// a nested remote call; re-dispatch through its new class.
	}
}

// callGatedOnce performs one gated invocation attempt, converting a
// MigrationInterrupt for obj into the interrupted flag (interrupts for
// other objects keep unwinding to the frame that holds their gate).
func (e *Env) callGatedOnce(obj *Object, method string, args []Value) (res Value, thrown *Thrown, err error, interrupted bool) {
	defer func() {
		if r := recover(); r != nil {
			if mi, ok := r.(*MigrationInterrupt); ok && mi.Obj == obj {
				interrupted = true
				return
			}
			panic(r)
		}
	}()
	obj.gate.Lock()
	e.gates = append(e.gates, gateRef{obj: obj, epoch: obj.Epoch()})
	defer func() {
		e.gates = e.gates[:len(e.gates)-1]
		obj.gate.Unlock()
	}()
	res, thrown, err = e.vm.call(e, obj.ClassName(), method, RefV(obj), args)
	return res, thrown, err, false
}

func (e *Env) holdsGate(obj *Object) bool {
	for _, g := range e.gates {
		if g.obj == obj {
			return true
		}
	}
	return false
}

// New allocates an uninitialised instance of the named class.
func (e *Env) New(class string) (*Object, error) { return e.vm.alloc(class) }

// Construct allocates and runs the matching constructor.
func (e *Env) Construct(class string, args []Value) (Value, *Thrown, error) {
	return e.vm.construct(e, class, args)
}

// Throw builds a Thrown of the given system exception class.
func (e *Env) Throw(class, msg string) *Thrown { return e.vm.throwSys(class, msg) }

// RunUnlocked releases every execution-scoped lock this execution holds
// (its invocation gates and, for host-entered executions, the host lock)
// around f, then re-acquires them in hierarchy order.  Native methods
// that perform blocking I/O (remote proxy calls) must use it so that
// incoming remote invocations — including re-entrant callbacks targeting
// the same object — can proceed meanwhile.
//
// On re-acquisition every held gate's object epoch is compared with the
// epoch recorded at acquisition: a mismatch means the object was
// migrated (morphed) while this execution was parked, and the execution
// unwinds with a MigrationInterrupt for the outermost moved object
// rather than resuming bytecode against a class that no longer matches
// the frames' view.
func (e *Env) RunUnlocked(f func()) {
	for i := len(e.gates) - 1; i >= 0; i-- {
		e.gates[i].obj.parked.Add(1)
		e.gates[i].obj.gate.Unlock()
	}
	if e.holdsHost {
		e.vm.hostMu.Unlock()
	}
	completed := false
	defer func() {
		if e.holdsHost {
			e.vm.hostMu.Lock()
		}
		for _, g := range e.gates {
			g.obj.gate.Lock()
			g.obj.parked.Add(-1)
		}
		if !completed {
			return // f panicked; don't replace its panic
		}
		for _, g := range e.gates {
			if g.obj.Epoch() != g.epoch {
				panic(&MigrationInterrupt{Obj: g.obj})
			}
		}
	}()
	f()
	completed = true
}

// NativeFunc implements one native method.
type NativeFunc func(env *Env, recv Value, args []Value) (Value, *Thrown, error)

// ClassNativeFunc implements every native method of one class; the node
// runtime registers these for generated proxy classes.
type ClassNativeFunc func(env *Env, method string, recv Value, args []Value) (Value, *Thrown, error)

// nativeRegistry is one immutable snapshot of the native-method tables.
type nativeRegistry struct {
	exact map[string]NativeFunc
	class map[string]ClassNativeFunc
}

// staticSlots is one class's static-field table.
type staticSlots struct {
	mu sync.RWMutex
	m  map[string]Value
}

func (s *staticSlots) get(name string) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[name]
	return v, ok
}

func (s *staticSlots) set(name string, v Value) {
	s.mu.Lock()
	s.m[name] = v
	s.mu.Unlock()
}

// classState tracks one class's initialisation; guarded by VM.classMu.
type classState struct {
	started bool
	slots   *staticSlots
}

// syncWriter serialises program output from concurrent executions.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// VM is one address space's interpreter: a program (class path), static
// state, and a native-method registry.  See the package comment for the
// locking model.
type VM struct {
	// Copy-on-write registries: lock-free reads, boot-time writes
	// serialised by regMu.
	prog    atomic.Pointer[ir.Program]
	natives atomic.Pointer[nativeRegistry]
	regMu   sync.Mutex

	// Class initialisation and static storage.
	classMu sync.Mutex
	classes map[string]*classState

	// hostMu preserves the seed's sequential semantics for the legacy
	// public entry points (Invoke and friends).  Gated executions
	// (ExecOn) never take it, so the two never deadlock: the hierarchy
	// is hostMu before gates, and nothing acquires hostMu while holding
	// a gate.
	hostMu sync.Mutex

	// coarse restores the seed's one-big-lock regime: every entry point
	// serialises on hostMu and the per-object gates go unused.  It is
	// the baseline experiment E8 measures the sharded design against.
	coarse bool

	steps    atomic.Int64
	maxSteps int64
	maxDepth int

	out   *syncWriter
	clock func() time.Time
}

// Option configures a VM.
type Option func(*VM)

// WithOutput directs sys.System print natives to w.
func WithOutput(w io.Writer) Option { return func(v *VM) { v.out.w = w } }

// WithMaxSteps overrides the execution step budget.
func WithMaxSteps(n int64) Option { return func(v *VM) { v.maxSteps = n } }

// WithMaxDepth overrides the call-depth budget.
func WithMaxDepth(n int) Option { return func(v *VM) { v.maxDepth = n } }

// WithClock overrides the time source used by sys.Clock.
func WithClock(f func() time.Time) Option { return func(v *VM) { v.clock = f } }

// WithCoarseLock reverts the VM to the seed's coarse locking: one global
// mutex serialises every entry point and ExecOn ignores per-object
// gates.  It exists so experiment E8 can measure the sharded design
// against the regime it replaced; production nodes never set it.
func WithCoarseLock() Option { return func(v *VM) { v.coarse = true } }

// New builds a VM over prog.  If prog lacks the system library it is
// merged in automatically.  The system natives are pre-registered.
func New(prog *ir.Program, opts ...Option) (*VM, error) {
	if prog == nil {
		prog = ir.NewProgram()
	}
	if !prog.Has(ir.ObjectClass) {
		merged := stdlib.Program()
		for _, c := range prog.Classes() {
			if err := merged.Add(c); err != nil {
				return nil, fmt.Errorf("merge system library: %w", err)
			}
		}
		prog = merged
	}
	v := &VM{
		classes:  make(map[string]*classState),
		out:      &syncWriter{w: io.Discard},
		maxSteps: DefaultMaxSteps,
		maxDepth: DefaultMaxDepth,
		clock:    time.Now,
	}
	v.prog.Store(prog)
	v.natives.Store(&nativeRegistry{
		exact: make(map[string]NativeFunc),
		class: make(map[string]ClassNativeFunc),
	})
	for _, o := range opts {
		o(v)
	}
	registerSystemNatives(v)
	return v, nil
}

// MustNew is New that panics; for tests and generators.
func MustNew(prog *ir.Program, opts ...Option) *VM {
	v, err := New(prog, opts...)
	if err != nil {
		panic(err)
	}
	return v
}

// Program returns the VM's current program snapshot.  Callers must not
// mutate classes that have already executed.
func (v *VM) Program() *ir.Program { return v.prog.Load() }

// AddClass loads an additional class definition (e.g. a proxy class
// shipped from a peer node) by publishing a new program snapshot.
func (v *VM) AddClass(c *ir.Class) error {
	v.regMu.Lock()
	defer v.regMu.Unlock()
	cur := v.prog.Load()
	if cur.Has(c.Name) {
		return fmt.Errorf("class %q already loaded", c.Name)
	}
	next := cur.ShallowClone()
	if err := next.Add(c); err != nil {
		return err
	}
	v.prog.Store(next)
	return nil
}

// RegisterNative binds one native method: owner.name with the given arity.
// Registration is a boot-time operation (copy-on-write snapshot publish).
func (v *VM) RegisterNative(owner, name string, arity int, f NativeFunc) {
	v.regMu.Lock()
	defer v.regMu.Unlock()
	cur := v.natives.Load()
	next := &nativeRegistry{
		exact: make(map[string]NativeFunc, len(cur.exact)+1),
		class: cur.class,
	}
	for k, fn := range cur.exact {
		next.exact[k] = fn
	}
	next.exact[nativeKey(owner, name, arity)] = f
	v.natives.Store(next)
}

// RegisterClassNative binds a fallback handler for every native method of
// owner that has no exact registration.  Boot-time, like RegisterNative.
func (v *VM) RegisterClassNative(owner string, f ClassNativeFunc) {
	v.regMu.Lock()
	defer v.regMu.Unlock()
	cur := v.natives.Load()
	next := &nativeRegistry{
		exact: cur.exact,
		class: make(map[string]ClassNativeFunc, len(cur.class)+1),
	}
	for k, fn := range cur.class {
		next.class[k] = fn
	}
	next.class[owner] = f
	v.natives.Store(next)
}

func nativeKey(owner, name string, arity int) string {
	return fmt.Sprintf("%s.%s/%d", owner, name, arity)
}

// Steps returns the cumulative instruction count executed (flushed with
// stepQuantum granularity by in-flight executions).
func (v *VM) Steps() int64 { return v.steps.Load() }

// ResetSteps zeroes the instruction counter.
func (v *VM) ResetSteps() { v.steps.Store(0) }

// newEnv starts an execution context, snapshotting the cumulative step
// count so the budget binds across many short executions.
func (v *VM) newEnv() *Env { return &Env{vm: v, stepBase: v.steps.Load()} }

// finish flushes an execution's unflushed step count.
func (v *VM) finish(env *Env) {
	if env.steps > 0 {
		v.steps.Add(env.steps)
		env.steps = 0
	}
}

// beginHost enters a legacy (host-compat) execution: serialised on
// hostMu, as every entry point was in the seed.
func (v *VM) beginHost() (*Env, func()) {
	v.hostMu.Lock()
	env := v.newEnv()
	env.holdsHost = true
	return env, func() {
		v.finish(env)
		v.hostMu.Unlock()
	}
}

// Exec runs f in a fresh execution scope with no gate held: executions
// entered this way run in parallel with everything else, synchronising
// only through the per-object and per-slot locks they touch.  The node
// runtime uses it for work on objects not yet shared (creation,
// migration adoption).
func (v *VM) Exec(f func(env *Env)) {
	if v.coarse {
		env, done := v.beginHost()
		defer done()
		f(env)
		return
	}
	env := v.newEnv()
	defer v.finish(env)
	f(env)
}

// ExecOn runs f while holding obj's invocation gate: the execution
// serialises against other gated executions — and migrations — of the
// same object, while gated executions of different objects proceed in
// parallel.  This is the scheduler primitive behind concurrent inbound
// dispatch.
func (v *VM) ExecOn(obj *Object, f func(env *Env)) {
	if v.coarse {
		env, done := v.beginHost()
		defer done()
		f(env)
		return
	}
	obj.gate.Lock()
	defer obj.gate.Unlock()
	env := v.newEnv()
	env.gates = append(env.gates, gateRef{obj: obj, epoch: obj.Epoch()})
	defer v.finish(env)
	f(env)
}

// ExecOnCatching is ExecOn, converting a MigrationInterrupt raised for
// obj into the interrupted result (interrupts for other objects — inner
// gated targets with their own handling frame — propagate).  Callers
// that receive interrupted=true re-issue the invocation: obj is now a
// proxy, so the retry forwards to the object's new home.
func (v *VM) ExecOnCatching(obj *Object, f func(env *Env)) (interrupted bool) {
	defer func() {
		if r := recover(); r != nil {
			if mi, ok := r.(*MigrationInterrupt); ok && mi.Obj == obj {
				interrupted = true
				return
			}
			panic(r)
		}
	}()
	v.ExecOn(obj, f)
	return false
}

// Invoke calls class.method with an explicit receiver (use NullV or a
// previously obtained object reference; pass Value{} for statics too —
// the method's own staticness decides).  It is the legacy public entry
// point: host-driven executions serialise on one lock, as in the seed.
// Errors are *FaultError or *UncaughtError.
func (v *VM) Invoke(class, method string, recv Value, args []Value) (Value, error) {
	env, done := v.beginHost()
	defer done()
	res, thrown, err := v.call(env, class, method, recv, args)
	if err != nil {
		return Value{}, err
	}
	if thrown != nil {
		return Value{}, v.uncaught(thrown)
	}
	return res, nil
}

// InvokeCatching is Invoke but returns program exceptions as a Thrown
// rather than flattening them to an error; the node runtime uses it so
// exceptions can propagate across the wire.
func (v *VM) InvokeCatching(class, method string, recv Value, args []Value) (Value, *Thrown, error) {
	env, done := v.beginHost()
	defer done()
	return v.call(env, class, method, recv, args)
}

// RunMain locates `static void main()` on the named class and runs it.
func (v *VM) RunMain(class string) error {
	_, err := v.Invoke(class, "main", Value{}, nil)
	return err
}

// NewObject allocates an uninitialised instance (no constructor runs, so
// no lock beyond the registry snapshot read is needed).
func (v *VM) NewObject(class string) (*Object, error) {
	return v.alloc(class)
}

// Construct allocates an instance and runs its arity-matching constructor.
func (v *VM) Construct(class string, args []Value) (Value, error) {
	env, done := v.beginHost()
	defer done()
	res, thrown, err := v.construct(env, class, args)
	if err != nil {
		return Value{}, err
	}
	if thrown != nil {
		return Value{}, v.uncaught(thrown)
	}
	return res, nil
}

// GetStatic reads a static field (running <clinit> if needed).
func (v *VM) GetStatic(class, field string) (Value, error) {
	env, done := v.beginHost()
	defer done()
	if thrown, err := v.ensureInit(env, class); err != nil {
		return Value{}, err
	} else if thrown != nil {
		return Value{}, v.uncaught(thrown)
	}
	slots := v.slotsOf(class)
	if slots == nil {
		return Value{}, &FaultError{Msg: fmt.Sprintf("no static field %s.%s", class, field)}
	}
	val, ok := slots.get(field)
	if !ok {
		return Value{}, &FaultError{Msg: fmt.Sprintf("no static field %s.%s", class, field)}
	}
	return val, nil
}

// SetStatic writes a static field (running <clinit> if needed).
func (v *VM) SetStatic(class, field string, val Value) error {
	env, done := v.beginHost()
	defer done()
	if thrown, err := v.ensureInit(env, class); err != nil {
		return err
	} else if thrown != nil {
		return v.uncaught(thrown)
	}
	slots := v.slotsOf(class)
	if slots == nil {
		return &FaultError{Msg: fmt.Sprintf("no static field %s.%s", class, field)}
	}
	if _, ok := slots.get(field); !ok {
		return &FaultError{Msg: fmt.Sprintf("no static field %s.%s", class, field)}
	}
	slots.set(field, val)
	return nil
}

// Morph re-types obj in place: it becomes an instance of newClass with the
// given fields.  Every existing reference to obj now observes the new
// class — this implements proxy substitution for live objects.  The swap
// itself is atomic under the object's state lock; callers that must also
// exclude in-flight invocations (migration) hold the object's gate via
// ExecOn around the whole snapshot→ship→morph sequence.
func (v *VM) Morph(obj *Object, newClass string, fields map[string]Value) error {
	c := v.prog.Load().Class(newClass)
	if c == nil {
		return &FaultError{Msg: "morph: unknown class " + newClass}
	}
	obj.morph(c, fields)
	return nil
}

func (v *VM) uncaught(t *Thrown) error {
	if t.Obj != nil {
		return &UncaughtError{Class: t.Obj.ClassName(), Message: t.Obj.Get("message").S}
	}
	return &UncaughtError{Class: "<nil>", Message: ""}
}

// ThrownMessage extracts class and message from a thrown exception.
func ThrownMessage(t *Thrown) (class, msg string) {
	if t == nil || t.Obj == nil {
		return "", ""
	}
	return t.Obj.ClassName(), t.Obj.Get("message").S
}

// alloc creates a zeroed instance of the named class (no constructor).
func (v *VM) alloc(class string) (*Object, error) {
	prog := v.prog.Load()
	c := prog.Class(class)
	if c == nil {
		return nil, &FaultError{Msg: "new: unknown class " + class}
	}
	if c.IsInterface || c.Abstract {
		return nil, &FaultError{Msg: "new: cannot instantiate " + class}
	}
	fields := make(map[string]Value)
	for cur := c; cur != nil; {
		for _, f := range cur.Fields {
			if !f.Static {
				if _, shadowed := fields[f.Name]; !shadowed {
					fields[f.Name] = ZeroValue(f.Type)
				}
			}
		}
		if cur.Super == "" {
			break
		}
		cur = prog.Class(cur.Super)
	}
	return NewRawObject(c, fields), nil
}

func (v *VM) construct(env *Env, class string, args []Value) (Value, *Thrown, error) {
	if thrown, err := v.ensureInit(env, class); thrown != nil || err != nil {
		return Value{}, thrown, err
	}
	obj, err := v.alloc(class)
	if err != nil {
		return Value{}, nil, err
	}
	c := v.prog.Load().Class(class)
	ctor := c.Method(ir.ConstructorName, len(args))
	if ctor == nil {
		return Value{}, nil, &FaultError{Msg: fmt.Sprintf("no constructor %s/%d", class, len(args))}
	}
	_, thrown, err := v.exec(env, c, ctor, RefV(obj), args)
	if thrown != nil || err != nil {
		return Value{}, thrown, err
	}
	return RefV(obj), nil, nil
}

// call resolves and executes a method within env's execution.
func (v *VM) call(env *Env, class, method string, recv Value, args []Value) (Value, *Thrown, error) {
	dc, m, err := v.prog.Load().ResolveMethod(class, method, len(args))
	if err != nil {
		return Value{}, nil, &FaultError{Msg: err.Error()}
	}
	if m.Static {
		if thrown, err := v.ensureInit(env, dc.Name); thrown != nil || err != nil {
			return Value{}, thrown, err
		}
	}
	return v.exec(env, dc, m, recv, args)
}

// classStateOf returns (creating if needed) the named class's state.
func (v *VM) classStateOf(class string) *classState {
	v.classMu.Lock()
	defer v.classMu.Unlock()
	cs, ok := v.classes[class]
	if !ok {
		cs = &classState{}
		v.classes[class] = cs
	}
	return cs
}

// slotsOf returns the static slot table of an initialised class (nil if
// the class has not reached initialisation).
func (v *VM) slotsOf(class string) *staticSlots {
	v.classMu.Lock()
	defer v.classMu.Unlock()
	if cs, ok := v.classes[class]; ok {
		return cs.slots
	}
	return nil
}

// ensureInit runs the static initialiser of class (and its superclasses)
// on first use.  The first toucher claims the class (mark-then-run, as
// the JVM does) so initialisation cycles terminate — re-entrant and
// concurrent touchers proceed immediately and may observe
// partially-initialised statics, mirroring the seed's behaviour across
// lock-release points and Java's within init cycles.
func (v *VM) ensureInit(env *Env, class string) (*Thrown, error) {
	c := v.prog.Load().Class(class)
	if c == nil {
		return nil, &FaultError{Msg: "init: unknown class " + class}
	}
	cs := v.classStateOf(class)
	v.classMu.Lock()
	if cs.started {
		v.classMu.Unlock()
		return nil, nil
	}
	cs.started = true
	v.classMu.Unlock()

	if c.Super != "" {
		if thrown, err := v.ensureInit(env, c.Super); thrown != nil || err != nil {
			// As in the seed, a failed superclass initialisation leaves
			// this class marked started but slot-less: later static
			// accesses fault rather than reading phantom zero values.
			return thrown, err
		}
	}
	// Slots appear only now — after the super chain initialised, before
	// the clinit runs (which populates them) — mirroring the seed's
	// observable windows exactly.
	sf := make(map[string]Value)
	for _, f := range c.StaticFields() {
		sf[f.Name] = ZeroValue(f.Type)
	}
	v.classMu.Lock()
	cs.slots = &staticSlots{m: sf}
	v.classMu.Unlock()

	if clinit := c.StaticInit(); clinit != nil {
		_, thrown, err := v.exec(env, c, clinit, Value{}, nil)
		if thrown != nil || err != nil {
			return thrown, err
		}
	}
	return nil, nil
}

// throwSys builds a Thrown of a sys.* exception class.
func (v *VM) throwSys(class, msg string) *Thrown {
	obj, err := v.alloc(class)
	if err != nil {
		// The system library is always present; this indicates a broken
		// program set.  Surface as a throwable-less Thrown.
		return &Thrown{}
	}
	obj.Set("message", StringV(msg))
	return &Thrown{Obj: obj}
}
