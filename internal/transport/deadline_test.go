package transport

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rafda/internal/telemetry"
	"rafda/internal/wire"
)

// TestDeadlineRejectedAtAdmission pins the overload contract: with the
// single dispatch slot of a MaxInflight=1 server pinned by a stuck
// call, a deadlined request must be rejected at admission — an error
// response, the admission-reject and deadline-expiry counters bumped,
// and, decisively, the handler never runs for it (no slot was
// consumed).  A deadline-free request issued after the rejection still
// gets the slot once the stuck call releases it, proving the reject
// left the semaphore untouched.  Run under -race in CI.
func TestDeadlineRejectedAtAdmission(t *testing.T) {
	ov := &telemetry.OverloadStats{}
	var handled atomic.Int64
	block := make(chan struct{})
	entered := make(chan struct{})
	tr := NewRRP(Options{MaxInflight: 1, Overload: ov})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		handled.Add(1)
		if req.Method == "stuck" {
			close(entered)
			<-block
		}
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KString, Str: req.Method}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Call(&wire.Request{ID: 1, Op: wire.OpInvoke, Method: "stuck"}); err != nil {
			t.Errorf("stuck call: %v", err)
		}
	}()
	<-entered // the only slot is now held

	resp, err := c.Call(&wire.Request{ID: 2, Op: wire.OpInvoke, Method: "doomed",
		DeadlineUs: 2000}) // 2ms budget, slot held indefinitely
	if err != nil {
		t.Fatalf("rejection must arrive as a response, not a transport error: %v", err)
	}
	if !strings.Contains(resp.Err, "deadline expired") {
		t.Fatalf("want admission rejection, got %+v", resp)
	}
	if got := ov.AdmissionRejects.Load(); got != 1 {
		t.Fatalf("admission_rejects = %d, want 1", got)
	}
	if got := ov.DeadlineExpiries.Load(); got != 1 {
		t.Fatalf("deadline_expiries = %d, want 1", got)
	}
	if got := handled.Load(); got != 1 {
		t.Fatalf("rejected call reached the handler (handled=%d)", got)
	}

	// The reject must not have consumed the slot: release the stuck
	// call and a deadline-free follow-up acquires it normally.
	close(block)
	wg.Wait()
	resp, err = c.Call(&wire.Request{ID: 3, Op: wire.OpInvoke, Method: "after"})
	if err != nil || resp.Result.Str != "after" {
		t.Fatalf("slot leaked by rejection: resp=%+v err=%v", resp, err)
	}
	if got := handled.Load(); got != 2 {
		t.Fatalf("handled = %d, want 2", got)
	}
	if hw := ov.InflightHighWater.Load(); hw != 1 {
		t.Fatalf("inflight high-water = %d, want 1 (slot never double-granted)", hw)
	}
}

// TestDeadlineAdmissionChargesWait pins the per-hop decrement: a
// deadlined request that *does* get a slot after waiting carries a
// budget reduced by the measured admission wait, visible to the
// handler on the decoded request.
func TestDeadlineAdmissionChargesWait(t *testing.T) {
	var seen atomic.Uint64
	block := make(chan struct{})
	entered := make(chan struct{})
	tr := NewRRP(Options{MaxInflight: 1})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		switch req.Method {
		case "stuck":
			close(entered)
			<-block
		case "waited":
			seen.Store(req.DeadlineUs)
		}
		return &wire.Response{ID: req.ID}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.Call(&wire.Request{ID: 1, Op: wire.OpInvoke, Method: "stuck"})
	}()
	<-entered

	const budget = 500_000 // 500ms: far beyond the hold we inject
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.Call(&wire.Request{ID: 2, Op: wire.OpInvoke, Method: "waited",
			DeadlineUs: budget}); err != nil {
			t.Errorf("waited call: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let it sit in the admission queue
	close(block)
	wg.Wait()
	<-done
	got := seen.Load()
	if got == 0 || got >= budget {
		t.Fatalf("handler saw budget %dµs, want 0 < budget < %d (wait charged)", got, budget)
	}
	if budget-got < 10_000 {
		t.Fatalf("budget only charged %dµs for a ≥20ms wait", budget-got)
	}
}
