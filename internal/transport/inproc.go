package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rafda/internal/wire"
)

// inproc delivers requests by direct function call within the process.
// It is the zero-overhead baseline of the protocol experiments and the
// transport used by collocated multi-node tests.  Like the socket
// transports, it satisfies the Client concurrency contract: Call invokes
// the handler directly on the caller's goroutine, so N concurrent
// callers are N concurrent handler invocations with no serialisation.

var inprocMu sync.RWMutex
var inprocHandlers = map[string]Handler{}
var inprocSeq atomic.Uint64

// Inproc is the in-process transport.
type Inproc struct{}

// NewInproc returns the in-process transport.
func NewInproc() *Inproc { return &Inproc{} }

// Proto returns "inproc".
func (*Inproc) Proto() string { return "inproc" }

// Listen registers the handler under addr (auto-assigned when empty).
func (*Inproc) Listen(addr string, h Handler) (Server, error) {
	if addr == "" {
		addr = fmt.Sprintf("ep%d", inprocSeq.Add(1))
	}
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if _, exists := inprocHandlers[addr]; exists {
		return nil, fmt.Errorf("inproc address %q already in use", addr)
	}
	inprocHandlers[addr] = h
	return &inprocServer{addr: addr}, nil
}

// Dial returns a client invoking the registered handler directly.
func (*Inproc) Dial(endpoint string) (Client, error) {
	proto, addr, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if proto != "inproc" {
		return nil, fmt.Errorf("inproc transport cannot dial %q", endpoint)
	}
	return &inprocClient{addr: addr}, nil
}

type inprocServer struct{ addr string }

func (s *inprocServer) Endpoint() string { return JoinEndpoint("inproc", s.addr) }

func (s *inprocServer) Close() error {
	inprocMu.Lock()
	defer inprocMu.Unlock()
	delete(inprocHandlers, s.addr)
	return nil
}

type inprocClient struct{ addr string }

func (c *inprocClient) Call(req *wire.Request) (*wire.Response, error) {
	inprocMu.RLock()
	h := inprocHandlers[c.addr]
	inprocMu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("inproc endpoint %q not listening", c.addr)
	}
	return h(req), nil
}

func (c *inprocClient) Close() error { return nil }
