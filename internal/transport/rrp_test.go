package transport

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rafda/internal/wire"
)

// TestRRPConcurrentSharedClient drives one shared client from many
// goroutines with a mix of fast and slow handlers, forcing responses to
// complete out of arrival order, and checks every caller gets its own
// answer.  Run under -race in CI.
func TestRRPConcurrentSharedClient(t *testing.T) {
	tr := NewRRP(Options{})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		if strings.HasPrefix(req.Method, "slow") {
			time.Sleep(2 * time.Millisecond)
		}
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KString, Str: req.Method}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines = 16
	const callsEach = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				kind := "fast"
				if (g+i)%3 == 0 {
					kind = "slow"
				}
				method := fmt.Sprintf("%s-g%d-c%d", kind, g, i)
				id := uint64(g*callsEach + i)
				resp, err := c.Call(&wire.Request{ID: id, Op: wire.OpInvoke, Method: method})
				if err != nil {
					t.Errorf("call %s: %v", method, err)
					return
				}
				if resp.ID != id || resp.Result.Str != method {
					t.Errorf("cross-delivered response: sent %s/%d, got %s/%d",
						method, id, resp.Result.Str, resp.ID)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRRPOutOfOrderResponses proves the multiplexing is real: a fast call
// issued after a deliberately stuck slow call completes first, on the
// same connection.
func TestRRPOutOfOrderResponses(t *testing.T) {
	slowEntered := make(chan struct{})
	release := make(chan struct{})
	tr := NewRRP(Options{})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		if req.Method == "slow" {
			close(slowEntered)
			<-release
		}
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KString, Str: req.Method}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call(&wire.Request{ID: 1, Method: "slow"})
		slowDone <- err
	}()
	<-slowEntered // the slow request is parked inside the handler

	// A later call on the same connection must overtake it.
	resp, err := c.Call(&wire.Request{ID: 2, Method: "fast"})
	if err != nil {
		t.Fatalf("fast call blocked behind slow call: %v", err)
	}
	if resp.Result.Str != "fast" {
		t.Fatalf("bad response %+v", resp)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished before release (err=%v); ordering broken", err)
	default:
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestRRPPipeliningOverlapsLatency checks that N concurrent calls over
// one connection overlap their handler time instead of queueing: 32
// calls against a 5ms handler must take far less than 32×5ms.
func TestRRPPipeliningOverlapsLatency(t *testing.T) {
	var inFlight, peak atomic.Int64
	tr := NewRRP(Options{})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inFlight.Add(-1)
		return &wire.Response{ID: req.ID}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const calls = 32
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Call(&wire.Request{ID: uint64(i)}); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > calls*5*time.Millisecond/2 {
		t.Fatalf("%d concurrent calls took %v; transport is serialising", calls, elapsed)
	}
	if peak.Load() < 2 {
		t.Fatalf("server never ran handlers concurrently (peak %d)", peak.Load())
	}
}

// TestRRPDuplicateCallerIDs verifies correlation is by client-assigned
// wire ID, not the caller's request ID: concurrent calls reusing the
// same request ID each get their own response, stamped with their ID.
func TestRRPDuplicateCallerIDs(t *testing.T) {
	tr := NewRRP(Options{})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		if req.Method == "odd" {
			time.Sleep(time.Millisecond)
		}
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KString, Str: req.Method}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			method := "even"
			if i%2 == 1 {
				method = "odd"
			}
			resp, err := c.Call(&wire.Request{ID: 7, Method: method})
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			if resp.ID != 7 || resp.Result.Str != method {
				t.Errorf("want %s/7, got %s/%d", method, resp.Result.Str, resp.ID)
			}
		}(i)
	}
	wg.Wait()
}

// TestRRPCloseFailsPendingCalls checks a closed client immediately fails
// both its in-flight and subsequent calls.
func TestRRPCloseFailsPendingCalls(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	tr := NewRRP(Options{})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		if req.Method == "stuck" {
			close(entered)
			<-release
		}
		return &wire.Response{ID: req.ID}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release) // let the parked handler finish so Close can drain
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}

	pending := make(chan error, 1)
	go func() {
		_, err := c.Call(&wire.Request{ID: 1, Method: "stuck"})
		pending <- err
	}()
	<-entered
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-pending:
		if err == nil {
			t.Fatal("pending call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not unblocked by Close")
	}
	if _, err := c.Call(&wire.Request{ID: 2}); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

// TestRRPLargePayloadRoundTrip exercises frame-buffer growth and reuse
// beyond the pool's initial size, concurrently.
func TestRRPLargePayloadRoundTrip(t *testing.T) {
	tr := NewRRP(Options{})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		return &wire.Response{ID: req.ID, Result: req.Args[0]}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for _, size := range []int{0, 1, 4 << 10, 256 << 10, 2 << 20} {
		wg.Add(1)
		go func(size int) {
			defer wg.Done()
			payload := strings.Repeat("x", size)
			resp, err := c.Call(&wire.Request{
				ID:   uint64(size),
				Args: []wire.Value{{Kind: wire.KString, Str: payload}},
			})
			if err != nil {
				t.Errorf("size %d: %v", size, err)
				return
			}
			if resp.Result.Str != payload {
				t.Errorf("size %d: payload corrupted (got %d bytes)", size, len(resp.Result.Str))
			}
		}(size)
	}
	wg.Wait()
}

// rawRRPServer accepts one connection and serves each request frame
// through respond, which returns the frames to write back — letting
// tests inject duplicate or unsolicited responses below the transport's
// own server implementation.
func rawRRPServer(t *testing.T, respond func(req *wire.Request) []*wire.Response) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		for {
			bufp, frame, err := readFrame(br)
			if err != nil {
				return
			}
			req, err := wire.DecodeRequestBytes(frame)
			putFrameBuf(bufp)
			if err != nil {
				return
			}
			for _, resp := range respond(req) {
				full := wire.AppendResponse(make([]byte, frameHeadroom, 256), resp)
				if _, err := conn.Write(appendLengthPrefix(full)); err != nil {
					return
				}
			}
		}
	}()
	return JoinEndpoint("rrp", l.Addr().String())
}

// TestRRPDuplicateResponseDropped pins the reader's duplicate
// tolerance: injected frame duplication can make the server answer one
// wire id twice, and the second copy must be dropped — not poison the
// connection — while a response id that was never issued still does.
func TestRRPDuplicateResponseDropped(t *testing.T) {
	ep := rawRRPServer(t, func(req *wire.Request) []*wire.Response {
		// Answer every request twice: the duplicate-delivery shape.
		r := &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KInt, Int: 5}}
		return []*wire.Response{r, r}
	})
	c, err := NewRRP(Options{}).Dial(ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Call(&wire.Request{ID: uint64(100 + i), Op: wire.OpPing})
		if err != nil {
			t.Fatalf("call %d after duplicate responses: %v", i, err)
		}
		if resp.Result.Int != 5 {
			t.Fatalf("call %d bad result %+v", i, resp)
		}
	}
}

func TestRRPNeverIssuedResponsePoisons(t *testing.T) {
	ep := rawRRPServer(t, func(req *wire.Request) []*wire.Response {
		return []*wire.Response{{ID: req.ID + 1000}} // an id no call issued
	})
	c, err := NewRRP(Options{}).Dial(ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&wire.Request{ID: 1, Op: wire.OpPing}); err == nil {
		t.Fatal("call matched a never-issued response id")
	}
}
