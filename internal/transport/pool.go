package transport

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"rafda/internal/wire"
)

// Pool is a sharded connection pool to one endpoint: up to Size
// multiplexed connections dialled lazily, with calls distributed across
// shards by a cheap affinity hash (callers pass an object GUID; the
// empty key round-robins).  One multiplexed connection pipelines any
// number of in-flight calls, but every frame still funnels through that
// connection's single writer/reader goroutine pair — on many-core
// clients that pair is the throughput ceiling (the E11 experiment
// measures the lift from widening it).  Affinity keeps all of one
// object's calls on one socket, so per-object request order on the wire
// matches issue order exactly as it did with a single connection.
//
// Shard 0 is the canonical connection: ClientCache.Get and
// ClientCache.Call pin it, so the cluster plane's gossip exchanges and
// RTT pings always ride the same socket and membership timing is not
// smeared across shards.
//
// # Thread safety
//
// A Pool is lock-free: each shard slot is an atomic pointer, dialled on
// first use without holding any lock (two racing first uses both dial
// and the loser's connection is closed — the same contract ClientCache
// has always had).  A shard whose connection fails is evicted by CAS
// and closed; the call retries on the surviving shards and the next
// call through the empty slot redials.  Close is idempotent and closes
// every live shard exactly once, including an install that races it.
type Pool struct {
	reg      *Registry
	endpoint string
	shards   []poolShard
	rr       atomic.Uint32
	closed   atomic.Bool
	// onFailover, when set, observes every failed delivery attempt in
	// CallKey's failover loop (see FailoverFunc).  Installed at pool
	// creation from the owning ClientCache; immutable afterwards.
	onFailover FailoverFunc
}

// FailoverFunc observes one failed delivery attempt inside a pool's
// shard-failover loop: the peer endpoint, the shard and attempt
// ordinals, the trace context the request rides under (zero when
// untraced) and the error.  Called on the calling goroutine with no
// pool locks held; implementations must not block (the node runtime
// uses it to emit failover spans into the lock-free flight recorder).
type FailoverFunc func(endpoint string, shard, attempt int, tctx wire.TraceContext, err error)

type poolShard struct {
	c atomic.Pointer[shardConn]
}

// shardConn wraps a Client so shard slots can CAS on identity: eviction
// must remove exactly the connection that failed, never a replacement a
// concurrent caller already installed.
type shardConn struct{ c Client }

// MaxDefaultPoolShards caps the GOMAXPROCS-derived default pool width;
// beyond ~8 sockets per peer the writer pairs stop being the bottleneck
// and file descriptors start to matter.
const MaxDefaultPoolShards = 8

// DefaultPoolShards returns the default per-endpoint pool width: one
// connection per scheduler processor, capped at MaxDefaultPoolShards.
// A 1-core process keeps the historical one-connection-per-peer shape.
func DefaultPoolShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > MaxDefaultPoolShards {
		n = MaxDefaultPoolShards
	}
	return n
}

// newPool builds an undialled pool of size shards.
func newPool(reg *Registry, endpoint string, size int, onFailover FailoverFunc) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{reg: reg, endpoint: endpoint, shards: make([]poolShard, size),
		onFailover: onFailover}
}

// Size returns the pool's shard count.
func (p *Pool) Size() int { return len(p.shards) }

// Endpoint returns the pooled endpoint.
func (p *Pool) Endpoint() string { return p.endpoint }

// ShardID names one shard's socket for diagnostics ("rrp://h:p#3").
// Telemetry must never key on this form: telemetry.PeerKey folds it
// back to the peer endpoint so per-peer rollups aggregate across
// shards instead of fragmenting per socket.
func (p *Pool) ShardID(i int) string { return fmt.Sprintf("%s#%d", p.endpoint, i) }

// shardIndex maps an affinity key to a shard (FNV-1a); the empty key
// round-robins.
func (p *Pool) shardIndex(key string) int {
	if len(p.shards) == 1 {
		return 0
	}
	if key == "" {
		// Modulo in uint32 space: on 32-bit hosts int(wrapped counter)
		// goes negative and a signed % would index out of range.
		return int((p.rr.Add(1) - 1) % uint32(len(p.shards)))
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(p.shards)))
}

// client returns shard i's live connection, dialling on first use.  No
// lock is held across the dial; two racing first uses both dial and the
// loser's connection is closed.
func (p *Pool) client(i int) (Client, error) {
	if sc := p.shards[i].c.Load(); sc != nil {
		return sc.c, nil
	}
	if p.closed.Load() {
		return nil, fmt.Errorf("pool %s: closed", p.endpoint)
	}
	c, err := p.reg.Dial(p.endpoint)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", p.ShardID(i), err)
	}
	sc := &shardConn{c: c}
	if !p.shards[i].c.CompareAndSwap(nil, sc) {
		_ = c.Close()
		if cur := p.shards[i].c.Load(); cur != nil {
			return cur.c, nil
		}
		// The winner was already evicted again; the caller's retry loop
		// (or next call) redials.
		return nil, fmt.Errorf("%s: connection lost during dial race", p.ShardID(i))
	}
	if p.closed.Load() {
		// Close raced the install.  Withdraw the slot ourselves: if
		// Close's sweep already emptied it the CAS fails (the sweep
		// closed the connection), otherwise we close it here — either
		// way exactly one Close per connection.
		if p.shards[i].c.CompareAndSwap(sc, nil) {
			_ = c.Close()
		}
		return nil, fmt.Errorf("pool %s: closed", p.endpoint)
	}
	return c, nil
}

// evict drops a failed connection from its shard, by identity, so the
// next call through the shard redials.  A replacement installed by a
// concurrent caller is left alone.
func (p *Pool) evict(i int, c Client) {
	if sc := p.shards[i].c.Load(); sc != nil && sc.c == c {
		if p.shards[i].c.CompareAndSwap(sc, nil) {
			_ = c.Close()
		}
	}
}

// Call performs one request on a round-robin shard.
func (p *Pool) Call(req *wire.Request) (*wire.Response, error) {
	return p.CallKey("", req)
}

// TokenedRetryRounds is how many passes over the shard set a *tokened*
// request makes before giving up (each attempt redials its slot, so one
// pass already survives every connection dying once).  Untokened
// requests keep the single pass: without a dedup token a retry risks
// double execution, so legacy traffic fails fast instead.
const TokenedRetryRounds = 4

// CallKey performs one request on the shard the affinity key hashes to
// ("" round-robins).  A shard whose connection has died is evicted and
// the call moves to the next shard — each attempt redialling an empty
// slot — so one broken socket costs only the calls in flight on it, not
// the peer.
//
// Retry regime: a call that failed mid-flight may have executed at the
// server before the connection died, so the retry is a potential
// duplicate delivery.  Tokened requests (wire.Request.Token) make the
// failover safe — the server's dedup window recognises the token and
// replays the recorded response instead of executing twice
// (docs/CONCURRENCY.md §10) — so they retry persistently, for
// TokenedRetryRounds passes over the pool, and each retry bumps the
// token's attempt ordinal.  Untokened (legacy) requests get one pass,
// the historical at-least-once regime.  With every attempt exhausted
// the last error is returned and surfaces as sys.RemoteException.
func (p *Pool) CallKey(key string, req *wire.Request) (*wire.Response, error) {
	start := p.shardIndex(key)
	attempts := len(p.shards)
	if req.Token != nil {
		attempts *= TokenedRetryRounds
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		i := (start + attempt) % len(p.shards)
		c, err := p.client(i)
		if err != nil {
			lastErr = err
			if p.onFailover != nil {
				p.onFailover(p.endpoint, i, attempt, req.Trace, err)
			}
			continue
		}
		if attempt > 0 && req.Token != nil {
			req.Token.Attempt++
		}
		resp, err := c.Call(req)
		if err == nil {
			return resp, nil
		}
		lastErr = fmt.Errorf("%s: %w", p.ShardID(i), err)
		p.evict(i, c)
		if p.onFailover != nil {
			p.onFailover(p.endpoint, i, attempt, req.Trace, lastErr)
		}
	}
	return nil, lastErr
}

// Close closes every live shard exactly once and rejects further use.
func (p *Pool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for i := range p.shards {
		if sc := p.shards[i].c.Swap(nil); sc != nil {
			if err := sc.c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
