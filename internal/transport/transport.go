// Package transport carries wire messages between nodes.  Four protocols
// are provided, mirroring the paper's proxy families: inproc (collocated
// calls), rrp (the binary RAFDA Remote Protocol over TCP, playing RMI's
// role), soap (XML over HTTP) and json (JSON over HTTP).  Proxies differ
// only in which transport their invocations traverse.
package transport

import (
	"fmt"
	"net"
	"strings"

	"rafda/internal/netsim"
	"rafda/internal/wire"
)

// Handler serves incoming requests (implemented by the node runtime).
type Handler func(*wire.Request) *wire.Response

// Server is a listening endpoint.
type Server interface {
	// Endpoint returns the full dialable endpoint, e.g. "rrp://1.2.3.4:70".
	Endpoint() string
	Close() error
}

// Client is a connection to a remote endpoint.
type Client interface {
	Call(*wire.Request) (*wire.Response, error)
	Close() error
}

// Transport is one wire protocol.
type Transport interface {
	// Proto returns the scheme, e.g. "rrp".
	Proto() string
	// Listen starts serving on addr ("host:port", empty port allowed).
	Listen(addr string, h Handler) (Server, error)
	// Dial connects to an endpoint previously returned by a Server.
	Dial(endpoint string) (Client, error)
}

// Options tune socket-based transports; the zero value uses the real
// network directly.
type Options struct {
	// Profile injects simulated network conditions on both accepted and
	// dialled connections.
	Profile netsim.Profile
}

func (o Options) listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return o.Profile.Listener(l), nil
}

func (o Options) dial(addr string) (net.Conn, error) {
	return o.Profile.Dialer(func(network, a string) (net.Conn, error) {
		return net.Dial(network, a)
	})("tcp", addr)
}

// SplitEndpoint splits "proto://addr" into its parts.
func SplitEndpoint(endpoint string) (proto, addr string, err error) {
	i := strings.Index(endpoint, "://")
	if i <= 0 {
		return "", "", fmt.Errorf("bad endpoint %q (want proto://addr)", endpoint)
	}
	return endpoint[:i], endpoint[i+3:], nil
}

// JoinEndpoint builds "proto://addr".
func JoinEndpoint(proto, addr string) string { return proto + "://" + addr }

// Registry maps protocol names to transports.
type Registry struct {
	byProto map[string]Transport
}

// NewRegistry builds a registry over the given transports.
func NewRegistry(ts ...Transport) *Registry {
	r := &Registry{byProto: make(map[string]Transport, len(ts))}
	for _, t := range ts {
		r.byProto[t.Proto()] = t
	}
	return r
}

// Default returns a registry with all four protocols under the given
// options (inproc ignores them).
func Default(opts Options) *Registry {
	return NewRegistry(
		NewInproc(),
		NewRRP(opts),
		NewSOAP(opts),
		NewJSON(opts),
	)
}

// Get returns the transport for proto.
func (r *Registry) Get(proto string) (Transport, error) {
	t, ok := r.byProto[proto]
	if !ok {
		return nil, fmt.Errorf("unknown transport protocol %q", proto)
	}
	return t, nil
}

// Protos returns the registered protocol names.
func (r *Registry) Protos() []string {
	out := make([]string, 0, len(r.byProto))
	for p := range r.byProto {
		out = append(out, p)
	}
	return out
}

// Dial resolves the endpoint's protocol and dials it.
func (r *Registry) Dial(endpoint string) (Client, error) {
	proto, _, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	t, err := r.Get(proto)
	if err != nil {
		return nil, err
	}
	return t.Dial(endpoint)
}
