// Package transport carries wire messages between nodes.  Four protocols
// are provided, mirroring the paper's proxy families: inproc (collocated
// calls), rrp (the binary RAFDA Remote Protocol over TCP, playing RMI's
// role), soap (XML over HTTP) and json (JSON over HTTP).  Proxies differ
// only in which transport their invocations traverse.
//
// # Thread safety
//
// Every type in this package is safe for concurrent use.  A Client's
// Call may be issued from any number of goroutines: rrp multiplexes
// them over one connection (client-assigned wire IDs correlate
// out-of-order responses; a writer and a reader goroutine own the
// socket), soap/json ride net/http's pooled connections, and inproc
// invokes the handler directly.  No implementation holds a lock across
// a network round trip.  Servers dispatch each inbound request on its
// own goroutine (rrp bounds in-flight requests per connection by
// Options.MaxInflight), so the Handler — the node runtime — must be
// concurrency-safe; the contract it follows is docs/CONCURRENCY.md.
// Connection failures poison only their connection: every in-flight
// call on it fails immediately and later calls redial.
package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"rafda/internal/netsim"
	"rafda/internal/wire"
)

// Handler serves incoming requests (implemented by the node runtime).
type Handler func(*wire.Request) *wire.Response

// Server is a listening endpoint.
type Server interface {
	// Endpoint returns the full dialable endpoint, e.g. "rrp://1.2.3.4:70".
	Endpoint() string
	Close() error
}

// Client is a connection to a remote endpoint.
//
// Call is safe for concurrent use by any number of goroutines.  Each
// implementation either multiplexes concurrent calls over one connection
// (rrp correlates out-of-order responses by request ID), pools
// connections (soap/json ride net/http keep-alive pools), or is a direct
// function call (inproc); none holds a lock across a network round trip.
type Client interface {
	Call(*wire.Request) (*wire.Response, error)
	Close() error
}

// Lockstep wraps a client so at most one call is in flight at a time —
// the pre-multiplexing transport behaviour.  The E7 experiment uses it
// as the "before" baseline; it is also a serialisation tool for callers
// that need strict one-at-a-time ordering over a shared connection.
func Lockstep(c Client) Client { return &lockstepClient{c: c} }

type lockstepClient struct {
	mu sync.Mutex
	c  Client
}

func (l *lockstepClient) Call(req *wire.Request) (*wire.Response, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Call(req)
}

func (l *lockstepClient) Close() error { return l.c.Close() }

// Transport is one wire protocol.
type Transport interface {
	// Proto returns the scheme, e.g. "rrp".
	Proto() string
	// Listen starts serving on addr ("host:port", empty port allowed).
	Listen(addr string, h Handler) (Server, error)
	// Dial connects to an endpoint previously returned by a Server.
	Dial(endpoint string) (Client, error)
}

// Options tune socket-based transports; the zero value uses the real
// network directly.
type Options struct {
	// Profile injects simulated network conditions on both accepted and
	// dialled connections.
	Profile netsim.Profile
	// MaxInflight bounds the number of requests a server dispatches
	// concurrently per connection (rrp); 0 means DefaultMaxInflight.
	MaxInflight int
}

// DefaultMaxInflight is the per-connection concurrent-dispatch bound used
// when Options.MaxInflight is zero.
const DefaultMaxInflight = 256

func (o Options) maxInflight() int {
	if o.MaxInflight > 0 {
		return o.MaxInflight
	}
	return DefaultMaxInflight
}

func (o Options) listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return o.Profile.Listener(l), nil
}

func (o Options) dial(addr string) (net.Conn, error) {
	return o.Profile.Dialer(func(network, a string) (net.Conn, error) {
		return net.Dial(network, a)
	})("tcp", addr)
}

// SplitEndpoint splits "proto://addr" into its parts.
func SplitEndpoint(endpoint string) (proto, addr string, err error) {
	i := strings.Index(endpoint, "://")
	if i <= 0 {
		return "", "", fmt.Errorf("bad endpoint %q (want proto://addr)", endpoint)
	}
	return endpoint[:i], endpoint[i+3:], nil
}

// JoinEndpoint builds "proto://addr".
func JoinEndpoint(proto, addr string) string { return proto + "://" + addr }

// Registry maps protocol names to transports.
type Registry struct {
	byProto map[string]Transport
}

// NewRegistry builds a registry over the given transports.
func NewRegistry(ts ...Transport) *Registry {
	r := &Registry{byProto: make(map[string]Transport, len(ts))}
	for _, t := range ts {
		r.byProto[t.Proto()] = t
	}
	return r
}

// Default returns a registry with all four protocols under the given
// options (inproc ignores them).
func Default(opts Options) *Registry {
	return NewRegistry(
		NewInproc(),
		NewRRP(opts),
		NewSOAP(opts),
		NewJSON(opts),
	)
}

// Get returns the transport for proto.
func (r *Registry) Get(proto string) (Transport, error) {
	t, ok := r.byProto[proto]
	if !ok {
		return nil, fmt.Errorf("unknown transport protocol %q", proto)
	}
	return t, nil
}

// Protos returns the registered protocol names.
func (r *Registry) Protos() []string {
	out := make([]string, 0, len(r.byProto))
	for p := range r.byProto {
		out = append(out, p)
	}
	return out
}

// Dial resolves the endpoint's protocol and dials it.
func (r *Registry) Dial(endpoint string) (Client, error) {
	proto, _, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	t, err := r.Get(proto)
	if err != nil {
		return nil, err
	}
	return t.Dial(endpoint)
}

// ClientCache caches one Client per endpoint, dialling on first use.  It
// is the connection-sharing point of a node: the invocation runtime and
// the cluster coordination plane hold the same cache, so gossip traffic
// piggybacks on the multiplexed connections invocations already keep
// open instead of dialling a second socket per peer.  Safe for
// concurrent use; Get never holds the cache lock across a dial.
type ClientCache struct {
	reg *Registry

	mu      sync.Mutex
	clients map[string]Client
	closed  bool
}

// NewClientCache returns an empty cache dialling through reg.
func NewClientCache(reg *Registry) *ClientCache {
	return &ClientCache{reg: reg, clients: make(map[string]Client)}
}

// Get returns the cached client for endpoint, dialling on first use.
// Two racing first uses both dial; the loser's connection is closed and
// every caller converges on one client per endpoint.
func (cc *ClientCache) Get(endpoint string) (Client, error) {
	cc.mu.Lock()
	if c, ok := cc.clients[endpoint]; ok {
		cc.mu.Unlock()
		return c, nil
	}
	closed := cc.closed
	cc.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("client cache closed")
	}
	c, err := cc.reg.Dial(endpoint)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		_ = c.Close()
		return nil, fmt.Errorf("client cache closed")
	}
	if prev, ok := cc.clients[endpoint]; ok {
		cc.mu.Unlock()
		_ = c.Close()
		return prev, nil
	}
	cc.clients[endpoint] = c
	cc.mu.Unlock()
	return c, nil
}

// Call dials (or reuses) endpoint and performs one request.
func (cc *ClientCache) Call(endpoint string, req *wire.Request) (*wire.Response, error) {
	c, err := cc.Get(endpoint)
	if err != nil {
		return nil, err
	}
	return c.Call(req)
}

// Close closes every cached client and rejects further Gets.
func (cc *ClientCache) Close() error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	clients := cc.clients
	cc.clients = make(map[string]Client)
	cc.mu.Unlock()
	var firstErr error
	for _, c := range clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
