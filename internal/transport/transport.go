// Package transport carries wire messages between nodes.  Four protocols
// are provided, mirroring the paper's proxy families: inproc (collocated
// calls), rrp (the binary RAFDA Remote Protocol over TCP, playing RMI's
// role), soap (XML over HTTP) and json (JSON over HTTP).  Proxies differ
// only in which transport their invocations traverse.
//
// # Thread safety
//
// Every type in this package is safe for concurrent use.  A Client's
// Call may be issued from any number of goroutines: rrp multiplexes
// them over one connection (client-assigned wire IDs correlate
// out-of-order responses; a writer and a reader goroutine own the
// socket), soap/json ride net/http's pooled connections, and inproc
// invokes the handler directly.  No implementation holds a lock across
// a network round trip.  A node additionally pools rrp connections per
// endpoint (ClientCache/Pool): calls are distributed across up to
// GOMAXPROCS multiplexed connections by object-GUID affinity, lifting
// the single writer/reader-pair ceiling on many-core clients while
// keeping each object's calls on one socket.  Servers dispatch each
// inbound request on its own goroutine (rrp bounds in-flight requests
// per connection by Options.MaxInflight), so the Handler — the node
// runtime — must be concurrency-safe; the contract it follows is
// docs/CONCURRENCY.md.  Connection failures poison only their
// connection: every in-flight call on it fails immediately, the pool
// evicts the broken shard (retrying the call on the survivors), and
// later calls redial.
package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"rafda/internal/netsim"
	"rafda/internal/telemetry"
	"rafda/internal/wire"
)

// Handler serves incoming requests (implemented by the node runtime).
type Handler func(*wire.Request) *wire.Response

// Server is a listening endpoint.
type Server interface {
	// Endpoint returns the full dialable endpoint, e.g. "rrp://1.2.3.4:70".
	Endpoint() string
	Close() error
}

// Client is a connection to a remote endpoint.
//
// Call is safe for concurrent use by any number of goroutines.  Each
// implementation either multiplexes concurrent calls over one connection
// (rrp correlates out-of-order responses by request ID), pools
// connections (soap/json ride net/http keep-alive pools), or is a direct
// function call (inproc); none holds a lock across a network round trip.
type Client interface {
	Call(*wire.Request) (*wire.Response, error)
	Close() error
}

// Lockstep wraps a client so at most one call is in flight at a time —
// the pre-multiplexing transport behaviour.  The E7 experiment uses it
// as the "before" baseline; it is also a serialisation tool for callers
// that need strict one-at-a-time ordering over a shared connection.
func Lockstep(c Client) Client { return &lockstepClient{c: c} }

type lockstepClient struct {
	mu sync.Mutex
	c  Client
}

func (l *lockstepClient) Call(req *wire.Request) (*wire.Response, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Call(req)
}

func (l *lockstepClient) Close() error { return l.c.Close() }

// Transport is one wire protocol.
type Transport interface {
	// Proto returns the scheme, e.g. "rrp".
	Proto() string
	// Listen starts serving on addr ("host:port", empty port allowed).
	Listen(addr string, h Handler) (Server, error)
	// Dial connects to an endpoint previously returned by a Server.
	Dial(endpoint string) (Client, error)
}

// Options tune socket-based transports; the zero value uses the real
// network directly.
type Options struct {
	// Profile injects simulated network conditions on both accepted and
	// dialled connections.
	Profile netsim.Profile
	// MaxInflight bounds the number of requests a server dispatches
	// concurrently per connection (rrp); 0 means DefaultMaxInflight.
	MaxInflight int
	// Overload, when non-nil, receives the serve plane's overload
	// events: admission rejects and admission-queue deadline expiries,
	// the in-flight dispatch-slot gauge/high-water, and outbox
	// backpressure stalls.  The node shares its own instance here so
	// one snapshot covers transport and dispatch (nil disables nothing
	// — all methods are nil-safe — it just records nowhere).
	Overload *telemetry.OverloadStats
}

// DefaultMaxInflight is the per-connection concurrent-dispatch bound used
// when Options.MaxInflight is zero.
const DefaultMaxInflight = 256

func (o Options) maxInflight() int {
	if o.MaxInflight > 0 {
		return o.MaxInflight
	}
	return DefaultMaxInflight
}

func (o Options) listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return o.Profile.Listener(l), nil
}

func (o Options) dial(addr string) (net.Conn, error) {
	return o.Profile.Dialer(func(network, a string) (net.Conn, error) {
		return net.Dial(network, a)
	})("tcp", addr)
}

// SplitEndpoint splits "proto://addr" into its parts.
func SplitEndpoint(endpoint string) (proto, addr string, err error) {
	i := strings.Index(endpoint, "://")
	if i <= 0 {
		return "", "", fmt.Errorf("bad endpoint %q (want proto://addr)", endpoint)
	}
	return endpoint[:i], endpoint[i+3:], nil
}

// JoinEndpoint builds "proto://addr".
func JoinEndpoint(proto, addr string) string { return proto + "://" + addr }

// Registry maps protocol names to transports.
type Registry struct {
	byProto map[string]Transport
}

// NewRegistry builds a registry over the given transports.
func NewRegistry(ts ...Transport) *Registry {
	r := &Registry{byProto: make(map[string]Transport, len(ts))}
	for _, t := range ts {
		r.byProto[t.Proto()] = t
	}
	return r
}

// Default returns a registry with all four protocols under the given
// options (inproc ignores them).
func Default(opts Options) *Registry {
	return NewRegistry(
		NewInproc(),
		NewRRP(opts),
		NewSOAP(opts),
		NewJSON(opts),
	)
}

// Get returns the transport for proto.
func (r *Registry) Get(proto string) (Transport, error) {
	t, ok := r.byProto[proto]
	if !ok {
		return nil, fmt.Errorf("unknown transport protocol %q", proto)
	}
	return t, nil
}

// Protos returns the registered protocol names.
func (r *Registry) Protos() []string {
	out := make([]string, 0, len(r.byProto))
	for p := range r.byProto {
		out = append(out, p)
	}
	return out
}

// Dial resolves the endpoint's protocol and dials it.
func (r *Registry) Dial(endpoint string) (Client, error) {
	proto, _, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	t, err := r.Get(proto)
	if err != nil {
		return nil, err
	}
	return t.Dial(endpoint)
}

// ClientCache caches one connection Pool per endpoint, each pool's
// shards dialled lazily on first use.  It is the connection-sharing
// point of a node: the invocation runtime and the cluster coordination
// plane hold the same cache, so gossip traffic piggybacks on the
// multiplexed connections invocations already keep open instead of
// dialling a second socket per peer — pinned to shard 0, so membership
// RTT pings always measure the same socket.  Safe for concurrent use;
// no lock is ever held across a dial (pools are created empty under the
// cache lock; shards dial lock-free, see Pool).
type ClientCache struct {
	reg    *Registry
	shards int

	mu         sync.Mutex
	pools      map[string]*Pool
	closed     bool
	onFailover FailoverFunc
}

// NewClientCache returns an empty cache dialling through reg, with the
// default pool width (one shard per scheduler processor, capped).
func NewClientCache(reg *Registry) *ClientCache {
	return NewClientCachePool(reg, 0)
}

// NewClientCachePool returns an empty cache whose per-endpoint pools
// hold size connections each; size <= 0 means DefaultPoolShards().
func NewClientCachePool(reg *Registry, size int) *ClientCache {
	if size <= 0 {
		size = DefaultPoolShards()
	}
	return &ClientCache{reg: reg, shards: size, pools: make(map[string]*Pool)}
}

// Shards returns the per-endpoint pool width.
func (cc *ClientCache) Shards() int { return cc.shards }

// SetFailoverObserver installs fn on every pool created after the call
// (the node runtime installs it before serving, so in practice on all
// of them).  fn observes each failed delivery attempt in the pools'
// failover loops; see FailoverFunc for the contract.
func (cc *ClientCache) SetFailoverObserver(fn FailoverFunc) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.onFailover = fn
}

// Pool returns the endpoint's connection pool, creating it (undialled)
// on first use.
func (cc *ClientCache) Pool(endpoint string) (*Pool, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		return nil, fmt.Errorf("client cache closed")
	}
	p, ok := cc.pools[endpoint]
	if !ok {
		p = newPool(cc.reg, endpoint, cc.shards, cc.onFailover)
		cc.pools[endpoint] = p
	}
	return p, nil
}

// Get returns the endpoint's canonical (shard 0) client, dialling on
// first use.  Two racing first uses both dial; the loser's connection
// is closed and every caller converges on one client per shard.  The
// cluster plane gets its connection here, so gossip and RTT pings ride
// one stable socket regardless of the pool width.
func (cc *ClientCache) Get(endpoint string) (Client, error) {
	p, err := cc.Pool(endpoint)
	if err != nil {
		return nil, err
	}
	return p.client(0)
}

// Call performs one request on the endpoint's canonical shard-0
// connection (the gossip path).  A failed connection is evicted so the
// next call redials instead of hitting a poisoned client forever.
func (cc *ClientCache) Call(endpoint string, req *wire.Request) (*wire.Response, error) {
	p, err := cc.Pool(endpoint)
	if err != nil {
		return nil, err
	}
	c, err := p.client(0)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(req)
	if err != nil {
		p.evict(0, c)
	}
	return resp, err
}

// CallKey performs one request on the shard of the endpoint's pool that
// the affinity key selects ("" round-robins), with shard failover — the
// invocation path.
func (cc *ClientCache) CallKey(endpoint, key string, req *wire.Request) (*wire.Response, error) {
	p, err := cc.Pool(endpoint)
	if err != nil {
		return nil, err
	}
	return p.CallKey(key, req)
}

// Close closes every shard of every pool exactly once and rejects
// further use.
func (cc *ClientCache) Close() error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	pools := cc.pools
	cc.pools = make(map[string]*Pool)
	cc.mu.Unlock()
	var firstErr error
	for _, p := range pools {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
