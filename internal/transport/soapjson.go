package transport

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"

	"rafda/internal/wire"
)

// wireReq/wireResp alias the wire types to keep httpBase signatures short.
type (
	wireReq  = wire.Request
	wireResp = wire.Response
)

// soapEnvelope wraps messages in a SOAP-style XML envelope, as the
// paper's A_O_Proxy_SOAP family would.
type soapEnvelope[T any] struct {
	XMLName xml.Name `xml:"Envelope"`
	NS      string   `xml:"xmlns,attr"`
	Body    soapBody[T]
}

type soapBody[T any] struct {
	XMLName xml.Name `xml:"Body"`
	Payload T        `xml:"Payload"`
}

const soapNS = "urn:rafda:soap:1"

func soapEncode[T any](w io.Writer, payload T) error {
	env := soapEnvelope[T]{NS: soapNS, Body: soapBody[T]{Payload: payload}}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	return xml.NewEncoder(w).Encode(env)
}

func soapDecode[T any](r io.Reader) (T, error) {
	var env soapEnvelope[T]
	err := xml.NewDecoder(r).Decode(&env)
	if err == nil && env.NS != soapNS {
		err = fmt.Errorf("bad soap namespace %q", env.NS)
	}
	return env.Body.Payload, err
}

// NewSOAP returns the SOAP (XML over HTTP) transport.
func NewSOAP(opts Options) Transport {
	return &httpBase{
		proto:       "soap",
		contentType: "text/xml; charset=utf-8",
		opts:        opts,
		encodeReq: func(w io.Writer, r *wireReq) error {
			return soapEncode(w, r)
		},
		decodeReq: func(rd io.Reader) (*wireReq, error) {
			return soapDecode[*wireReq](rd)
		},
		encodeResp: func(w io.Writer, r *wireResp) error {
			return soapEncode(w, r)
		},
		decodeResp: func(rd io.Reader) (*wireResp, error) {
			return soapDecode[*wireResp](rd)
		},
	}
}

// NewJSON returns the JSON-RPC-style (JSON over HTTP) transport.
func NewJSON(opts Options) Transport {
	return &httpBase{
		proto:       "json",
		contentType: "application/json",
		opts:        opts,
		encodeReq: func(w io.Writer, r *wireReq) error {
			return json.NewEncoder(w).Encode(r)
		},
		decodeReq: func(rd io.Reader) (*wireReq, error) {
			req := &wireReq{}
			err := json.NewDecoder(rd).Decode(req)
			return req, err
		},
		encodeResp: func(w io.Writer, r *wireResp) error {
			return json.NewEncoder(w).Encode(r)
		},
		decodeResp: func(rd io.Reader) (*wireResp, error) {
			resp := &wireResp{}
			err := json.NewDecoder(rd).Decode(resp)
			return resp, err
		},
	}
}
