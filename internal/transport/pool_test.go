package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rafda/internal/wire"
)

// fakeTransport hands out controllable clients so pool tests can count
// dials, kill shards and count Close calls exactly.
type fakeTransport struct {
	mu      sync.Mutex
	clients []*fakeClient
}

func (f *fakeTransport) Proto() string { return "fake" }

func (f *fakeTransport) Listen(addr string, h Handler) (Server, error) {
	return nil, fmt.Errorf("fake transport does not listen")
}

func (f *fakeTransport) Dial(endpoint string) (Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := &fakeClient{}
	f.clients = append(f.clients, c)
	return c, nil
}

func (f *fakeTransport) dialled() []*fakeClient {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*fakeClient(nil), f.clients...)
}

type fakeClient struct {
	dead   atomic.Bool
	calls  atomic.Int64
	closes atomic.Int64
}

func (c *fakeClient) Call(req *wire.Request) (*wire.Response, error) {
	if c.dead.Load() {
		return nil, fmt.Errorf("fake connection dead")
	}
	c.calls.Add(1)
	return &wire.Response{ID: req.ID}, nil
}

func (c *fakeClient) Close() error {
	c.closes.Add(1)
	return nil
}

func fakeCache(t *testing.T, shards int) (*ClientCache, *fakeTransport) {
	t.Helper()
	ft := &fakeTransport{}
	return NewClientCachePool(NewRegistry(ft), shards), ft
}

func TestPoolSameKeySameShard(t *testing.T) {
	cc, ft := fakeCache(t, 8)
	defer cc.Close()
	const ep = "fake://peer"
	for i := 0; i < 50; i++ {
		if _, err := cc.CallKey(ep, "object-guid-1", &wire.Request{ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	clients := ft.dialled()
	if len(clients) != 1 {
		t.Fatalf("one affinity key dialled %d connections, want 1", len(clients))
	}
	if got := clients[0].calls.Load(); got != 50 {
		t.Fatalf("affinity shard served %d calls, want 50", got)
	}
	// Distinct keys must spread: with 8 shards and 64 keys, more than
	// one shard has to light up (FNV would have to collide all 64).
	for i := 0; i < 64; i++ {
		if _, err := cc.CallKey(ep, fmt.Sprintf("guid-%d", i), &wire.Request{ID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(ft.dialled()); n < 2 {
		t.Fatalf("64 distinct keys stayed on %d shard(s)", n)
	}
}

func TestPoolShard0PinnedForGossipPath(t *testing.T) {
	cc, ft := fakeCache(t, 4)
	defer cc.Close()
	const ep = "fake://peer"
	// Call (the gossip path) must pin one socket; Get must return it.
	for i := 0; i < 20; i++ {
		if _, err := cc.Call(ep, &wire.Request{ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(ft.dialled()); n != 1 {
		t.Fatalf("shard-0 path dialled %d connections, want 1", n)
	}
	c0, err := cc.Get(ep)
	if err != nil {
		t.Fatal(err)
	}
	if c0 != Client(ft.dialled()[0]) {
		t.Fatal("Get did not return the shard-0 connection Call uses")
	}
}

func TestPoolFailoverRetriesOnSurvivingShards(t *testing.T) {
	cc, ft := fakeCache(t, 3)
	defer cc.Close()
	const ep = "fake://peer"
	// Light up all three shards.
	for i := 0; i < 3; i++ {
		if _, err := cc.CallKey(ep, "", &wire.Request{ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := ft.dialled()
	if len(before) != 3 {
		t.Fatalf("dialled %d, want 3", len(before))
	}
	// Kill one shard: calls that land on it must fail over to a
	// survivor, the dead connection must be evicted (closed once), and
	// the shard must redial on later use.
	before[1].dead.Store(true)
	for i := 0; i < 12; i++ {
		if _, err := cc.CallKey(ep, "", &wire.Request{ID: uint64(i)}); err != nil {
			t.Fatalf("call after shard kill: %v", err)
		}
	}
	if got := before[1].closes.Load(); got != 1 {
		t.Fatalf("dead shard closed %d times, want 1 (eviction)", got)
	}
	if n := len(ft.dialled()); n != 4 {
		t.Fatalf("dialled %d connections, want 4 (one redial of the killed shard)", n)
	}
}

func TestPoolAllShardsDownSurfacesError(t *testing.T) {
	cc, ft := fakeCache(t, 2)
	defer cc.Close()
	const ep = "fake://peer"
	for i := 0; i < 2; i++ {
		if _, err := cc.CallKey(ep, "", &wire.Request{ID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range ft.dialled() {
		c.dead.Store(true)
	}
	// The retry loop is bounded by the shard count: with every shard
	// dead it must exhaust and return the error, not spin redialling.
	if _, err := cc.CallKey(ep, "", &wire.Request{ID: 2}); err == nil {
		t.Fatal("call with every shard dead succeeded")
	}
}

func TestClientCacheCloseDrainsEveryShardExactlyOnce(t *testing.T) {
	cc, ft := fakeCache(t, 3)
	const ep = "fake://peer"
	for i := 0; i < 3; i++ {
		if _, err := cc.CallKey(ep, "", &wire.Request{ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	clients := ft.dialled()
	if len(clients) != 3 {
		t.Fatalf("dialled %d, want 3", len(clients))
	}
	for i, c := range clients {
		if got := c.closes.Load(); got != 1 {
			t.Fatalf("shard %d closed %d times, want exactly 1", i, got)
		}
	}
	// Idempotent: a second Close must not close anything again.
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	for i, c := range clients {
		if got := c.closes.Load(); got != 1 {
			t.Fatalf("after double Close, shard %d closed %d times", i, got)
		}
	}
	if _, err := cc.Get(ep); err == nil {
		t.Fatal("Get after Close succeeded")
	}
	if _, err := cc.CallKey(ep, "k", &wire.Request{ID: 9}); err == nil {
		t.Fatal("CallKey after Close succeeded")
	}
}

func TestPoolCloseRacingDialClosesExactlyOnce(t *testing.T) {
	// Hammer the install/Close race: every dialled connection must end
	// up closed exactly once whether the sweep or the installer wins.
	for round := 0; round < 50; round++ {
		ft := &fakeTransport{}
		cc := NewClientCachePool(NewRegistry(ft), 4)
		const ep = "fake://peer"
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				_, _ = cc.CallKey(ep, fmt.Sprintf("k%d", g), &wire.Request{ID: 1})
			}(g)
		}
		_ = cc.Close()
		wg.Wait()
		_ = cc.Close()
		for i, c := range ft.dialled() {
			if got := c.closes.Load(); got != 1 {
				t.Fatalf("round %d: connection %d closed %d times, want 1", round, i, got)
			}
		}
	}
}

// shardKeyFor finds an affinity key the pool maps to shard want.
func shardKeyFor(p *Pool, want int) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if p.shardIndex(k) == want {
			return k
		}
	}
}

// TestPoolShardKilledMidFlightRRP is the end-to-end form over the real
// RRP transport: calls are in flight on one shard when its socket dies.
// Every in-flight call on the broken connection must fail fast, retry
// on a surviving shard and succeed; the dead client's pending map must
// drain (no leaked waiters); and the shard must redial afterwards.
func TestPoolShardKilledMidFlightRRP(t *testing.T) {
	tr := NewRRP(Options{})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		if req.Method == "slow" {
			time.Sleep(20 * time.Millisecond)
		}
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KInt, Int: 7}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cc := NewClientCachePool(NewRegistry(tr), 2)
	defer cc.Close()
	p, err := cc.Pool(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	key := shardKeyFor(p, 0)
	c0, err := p.client(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.client(1); err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, err := cc.CallKey(srv.Endpoint(), key, &wire.Request{ID: uint64(g*100 + i), Method: "slow"})
				if err != nil {
					errs <- fmt.Errorf("caller %d: %w", g, err)
					return
				}
				if resp.Result.Int != 7 {
					errs <- fmt.Errorf("caller %d: bad result %+v", g, resp)
					return
				}
			}
		}(g)
	}
	// Kill shard 0's socket while calls are parked in the slow handler.
	time.Sleep(10 * time.Millisecond)
	rc := c0.(*rrpClient)
	_ = rc.conn.Close()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("call did not survive shard death: %v", err)
	default:
	}

	// No pending-map leak on the dead client: fail() must have drained
	// every waiter when the connection died.
	rc.mu.Lock()
	leaked := len(rc.pending)
	rc.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("dead shard leaked %d pending waiters", leaked)
	}

	// The killed shard redials on next use.
	if _, err := cc.CallKey(srv.Endpoint(), key, &wire.Request{ID: 999, Method: "quick"}); err != nil {
		t.Fatalf("post-kill call on the killed shard's key: %v", err)
	}
	cur, err := p.client(0)
	if err != nil {
		t.Fatal(err)
	}
	if cur == c0 {
		t.Fatal("shard 0 still holds the dead connection")
	}
}

func TestDefaultPoolShardsBounds(t *testing.T) {
	n := DefaultPoolShards()
	if n < 1 || n > MaxDefaultPoolShards {
		t.Fatalf("DefaultPoolShards() = %d, want within [1,%d]", n, MaxDefaultPoolShards)
	}
}

// TestPoolTokenedRetryPersists pins the exactly-once failover regime:
// an untokened call gets one pass over the shards (legacy at-least-once:
// fail fast rather than risk double execution), while a tokened call
// keeps retrying across rounds — each round redialling evicted slots —
// and bumps the token's attempt ordinal per retry.
func TestPoolTokenedRetryPersists(t *testing.T) {
	const ep = "fake://peer"

	// Untokened: kill both shards; the single pass finds only the dead
	// connections and surfaces the error.
	cc, ft := fakeCache(t, 2)
	for i := 0; i < 2; i++ {
		if _, err := cc.CallKey(ep, "", &wire.Request{ID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range ft.dialled() {
		c.dead.Store(true)
	}
	if _, err := cc.CallKey(ep, "", &wire.Request{ID: 2}); err == nil {
		t.Fatal("untokened call retried past one pass")
	}
	cc.Close()

	// Tokened: same double kill, but the next round redials the evicted
	// slots and the call succeeds.
	cc, ft = fakeCache(t, 2)
	defer cc.Close()
	for i := 0; i < 2; i++ {
		if _, err := cc.CallKey(ep, "", &wire.Request{ID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range ft.dialled() {
		c.dead.Store(true)
	}
	req := &wire.Request{ID: 3, Token: &wire.CallToken{Caller: "n!1", Seq: 9}}
	if _, err := cc.CallKey(ep, "", req); err != nil {
		t.Fatalf("tokened call did not survive an all-shard kill: %v", err)
	}
	if req.Token.Attempt == 0 {
		t.Fatal("retries did not bump the token attempt ordinal")
	}
	if req.Token.Seq != 9 || req.Token.Caller != "n!1" {
		t.Fatalf("retry mutated token identity: %+v", req.Token)
	}
}
