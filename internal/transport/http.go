package transport

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// httpBase provides the shared HTTP plumbing for the SOAP and JSON
// transports: each Call is one POST to /rafda on a keep-alive client.
type httpBase struct {
	proto       string
	contentType string
	opts        Options
	encodeReq   func(io.Writer, *wireReq) error
	decodeReq   func(io.Reader) (*wireReq, error)
	encodeResp  func(io.Writer, *wireResp) error
	decodeResp  func(io.Reader) (*wireResp, error)
}

func (t *httpBase) Proto() string { return t.proto }

func (t *httpBase) Listen(addr string, h Handler) (Server, error) {
	l, err := t.opts.listen(addr)
	if err != nil {
		return nil, fmt.Errorf("%s listen: %w", t.proto, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/rafda", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		req, err := t.decodeReq(r.Body)
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp := h(req)
		w.Header().Set("Content-Type", t.contentType)
		var buf bytes.Buffer
		if err := t.encodeResp(&buf, resp); err != nil {
			http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(buf.Bytes())
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(l) }()
	return &httpServer{proto: t.proto, l: l, srv: srv}, nil
}

type httpServer struct {
	proto string
	l     net.Listener
	srv   *http.Server
}

func (s *httpServer) Endpoint() string { return JoinEndpoint(s.proto, s.l.Addr().String()) }
func (s *httpServer) Close() error     { return s.srv.Close() }

func (t *httpBase) Dial(endpoint string) (Client, error) {
	proto, addr, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if proto != t.proto {
		return nil, fmt.Errorf("%s transport cannot dial %q", t.proto, endpoint)
	}
	dial := t.opts.Profile.Dialer(func(network, a string) (net.Conn, error) {
		return net.Dial(network, a)
	})
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			Dial:                dial,
			MaxIdleConnsPerHost: 16,
		},
	}
	return &httpClient{base: t, url: "http://" + addr + "/rafda", hc: hc}, nil
}

type httpClient struct {
	base *httpBase
	url  string
	hc   *http.Client
}

func (c *httpClient) Call(req *wireReq) (*wireResp, error) {
	var buf bytes.Buffer
	if err := c.base.encodeReq(&buf, req); err != nil {
		return nil, fmt.Errorf("%s encode: %w", c.base.proto, err)
	}
	httpResp, err := c.hc.Post(c.url, c.base.contentType, &buf)
	if err != nil {
		return nil, fmt.Errorf("%s post: %w", c.base.proto, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return nil, fmt.Errorf("%s http %d: %s", c.base.proto, httpResp.StatusCode, body)
	}
	resp, err := c.base.decodeResp(httpResp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s decode: %w", c.base.proto, err)
	}
	return resp, nil
}

func (c *httpClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}
