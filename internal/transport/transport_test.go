package transport

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rafda/internal/netsim"
	"rafda/internal/wire"
)

func echoHandler(req *wire.Request) *wire.Response {
	return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KString, Str: req.Method}}
}

func allTransports(opts Options) []Transport {
	return []Transport{NewInproc(), NewRRP(opts), NewSOAP(opts), NewJSON(opts)}
}

func TestRoundTripAllTransports(t *testing.T) {
	for _, tr := range allTransports(Options{}) {
		tr := tr
		t.Run(tr.Proto(), func(t *testing.T) {
			srv, err := tr.Listen("", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			if !strings.HasPrefix(srv.Endpoint(), tr.Proto()+"://") {
				t.Fatalf("endpoint %q", srv.Endpoint())
			}
			client, err := tr.Dial(srv.Endpoint())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			for i := uint64(1); i <= 5; i++ {
				resp, err := client.Call(&wire.Request{ID: i, Op: wire.OpInvoke, Method: "hello"})
				if err != nil {
					t.Fatal(err)
				}
				if resp.ID != i || resp.Result.Str != "hello" {
					t.Fatalf("bad response %+v", resp)
				}
			}
		})
	}
}

func TestConcurrentClients(t *testing.T) {
	for _, tr := range allTransports(Options{}) {
		tr := tr
		t.Run(tr.Proto(), func(t *testing.T) {
			srv, err := tr.Listen("", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := tr.Dial(srv.Endpoint())
					if err != nil {
						t.Error(err)
						return
					}
					defer c.Close()
					for i := 0; i < 30; i++ {
						resp, err := c.Call(&wire.Request{ID: uint64(i), Method: "x"})
						if err != nil || resp.Result.Str != "x" {
							t.Errorf("call: %v %v", resp, err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

func TestDialWrongProto(t *testing.T) {
	rrp := NewRRP(Options{})
	if _, err := rrp.Dial("soap://127.0.0.1:1"); err == nil {
		t.Fatal("cross-proto dial accepted")
	}
	if _, err := rrp.Dial("garbage"); err == nil {
		t.Fatal("garbage endpoint accepted")
	}
}

func TestInprocIsolation(t *testing.T) {
	ip := NewInproc()
	s1, err := ip.Listen("alpha", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Listen("alpha", echoHandler); err == nil {
		t.Fatal("duplicate inproc address accepted")
	}
	c, err := ip.Dial("inproc://alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(&wire.Request{ID: 1, Method: "m"}); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if _, err := c.Call(&wire.Request{ID: 2, Method: "m"}); err == nil {
		t.Fatal("closed inproc endpoint still reachable")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	tr := NewRRP(Options{})
	block := make(chan struct{})
	srv, err := tr.Listen("", func(req *wire.Request) *wire.Response {
		if req.Method == "block" {
			<-block
		}
		return &wire.Response{ID: req.ID}
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&wire.Request{ID: 1}); err != nil {
		t.Fatal(err)
	}
	close(block)
	srv.Close()
	if _, err := c.Call(&wire.Request{ID: 2}); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestRegistry(t *testing.T) {
	reg := Default(Options{})
	protos := reg.Protos()
	if len(protos) != 4 {
		t.Fatalf("protos: %v", protos)
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Fatal("unknown proto accepted")
	}
	tr, err := reg.Get("rrp")
	if err != nil || tr.Proto() != "rrp" {
		t.Fatal("registry lookup broken")
	}
	srv, err := tr.Listen("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := reg.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Call(&wire.Request{ID: 3, Method: "ok"}); err != nil || resp.Result.Str != "ok" {
		t.Fatalf("registry dial: %v %v", resp, err)
	}
}

func TestSplitJoinEndpoint(t *testing.T) {
	p, a, err := SplitEndpoint("rrp://1.2.3.4:99")
	if err != nil || p != "rrp" || a != "1.2.3.4:99" {
		t.Fatalf("%q %q %v", p, a, err)
	}
	if _, _, err := SplitEndpoint("nope"); err == nil {
		t.Fatal("bad endpoint accepted")
	}
	if JoinEndpoint("x", "y") != "x://y" {
		t.Fatal("join broken")
	}
}

func TestNetsimLatencyApplied(t *testing.T) {
	slow := Options{Profile: netsim.Profile{Latency: 3 * time.Millisecond}}
	tr := NewRRP(slow)
	srv, err := tr.Listen("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := c.Call(&wire.Request{ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Each call crosses the link twice (request + response), each write
	// delayed ≥3ms.
	if elapsed := time.Since(start); elapsed < calls*2*3*time.Millisecond {
		t.Fatalf("latency not applied: %v for %d calls", elapsed, calls)
	}
}

func TestNetsimFailureInjection(t *testing.T) {
	opts := Options{Profile: netsim.Profile{FailAfterWrites: 3}}
	tr := NewRRP(opts)
	srv, err := tr.Listen("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := tr.Dial(srv.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	failed := false
	for i := 0; i < 10; i++ {
		if _, err := c.Call(&wire.Request{ID: uint64(i)}); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("injected failure never surfaced")
	}
}

func TestClientCacheSharesConnections(t *testing.T) {
	reg := NewRegistry(NewInproc(), NewRRP(Options{}))
	srv, err := NewRRP(Options{}).Listen("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cc := NewClientCache(reg)
	defer cc.Close()
	var wg sync.WaitGroup
	clients := make([]Client, 8)
	for g := range clients {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := cc.Get(srv.Endpoint())
			if err != nil {
				t.Error(err)
				return
			}
			clients[g] = c
		}(g)
	}
	wg.Wait()
	for _, c := range clients[1:] {
		if c != clients[0] {
			t.Fatal("cache handed out distinct clients for one endpoint")
		}
	}
	resp, err := cc.Call(srv.Endpoint(), &wire.Request{ID: 9})
	if err != nil || resp.ID != 9 {
		t.Fatalf("call through cache: %v %+v", err, resp)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Get(srv.Endpoint()); err == nil {
		t.Fatal("Get after Close succeeded")
	}
}
