package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rafda/internal/telemetry"
	"rafda/internal/wire"
)

// RRP — the RAFDA Remote Protocol — is the binary TCP transport playing
// the paper's "RMI-based proxy" role: persistent connections carrying
// length-prefixed frames in the wire package's binary encoding.
//
// The protocol is fully multiplexed.  A client runs one writer and one
// reader goroutine per connection and correlates responses to in-flight
// calls by request ID, so any number of goroutines share one connection
// with their calls pipelined rather than serialised behind a per-call
// round-trip lock.  The server decodes frames on the connection's read
// loop and dispatches each request on its own (bounded) goroutine;
// responses return in completion order, not arrival order.  Both
// directions coalesce frames queued behind a busy writer into vectored
// writes.  DESIGN.md documents the framing and correlation rules.
type RRP struct {
	opts Options
}

// NewRRP returns the RRP transport.
func NewRRP(opts Options) *RRP { return &RRP{opts: opts} }

// Proto returns "rrp".
func (*RRP) Proto() string { return "rrp" }

// Listen starts a TCP accept loop on addr.
func (t *RRP) Listen(addr string, h Handler) (Server, error) {
	l, err := t.opts.listen(addr)
	if err != nil {
		return nil, fmt.Errorf("rrp listen: %w", err)
	}
	s := &rrpServer{l: l, inflight: t.opts.maxInflight(), ov: t.opts.Overload}
	go s.acceptLoop(h)
	return s, nil
}

type rrpServer struct {
	l        net.Listener
	inflight int
	ov       *telemetry.OverloadStats
	wg       sync.WaitGroup
	closed   sync.Once

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	down  bool
}

func (s *rrpServer) Endpoint() string { return JoinEndpoint("rrp", s.l.Addr().String()) }

func (s *rrpServer) Close() error {
	var err error
	s.closed.Do(func() {
		err = s.l.Close()
		s.mu.Lock()
		s.down = true
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return err
}

func (s *rrpServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *rrpServer) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *rrpServer) acceptLoop(h Handler) {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			serveRRPConn(conn, h, s.inflight, s.ov)
		}()
	}
}

// serveRRPConn is one connection's read loop: decode each frame, admit
// it (see admit), hand the request to a worker goroutine (at most
// maxInflight concurrently), and let workers queue their responses — in
// completion order, not arrival order — to the connection's writer
// goroutine, which batches them into vectored writes.  A slow call
// therefore delays only itself; later requests on the same connection
// overtake it and their responses go out first.
func serveRRPConn(conn net.Conn, h Handler, maxInflight int, ov *telemetry.OverloadStats) {
	br := bufio.NewReaderSize(conn, rrpBufSize)
	outbox := make(chan outFrame, outboxDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		serverWriteLoop(conn, outbox)
	}()
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()     // all workers have queued their responses
		close(outbox) // then the writer drains and exits
		<-writerDone
	}()
	sem := make(chan struct{}, maxInflight)
	for {
		bufp, frame, err := readFrame(br)
		if err != nil {
			return
		}
		req, err := wire.DecodeRequestBytes(frame)
		putFrameBuf(bufp)
		if err != nil {
			return
		}
		slotWaitUs, ok := admit(req, sem, ov, outbox)
		if !ok {
			continue // rejected: error response queued, no slot taken
		}
		// Deposit the measured slot wait for the dispatch chain's queue
		// management (server-local; never serialized).
		req.SlotWaitUs = slotWaitUs
		ov.NoteInflight(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem; ov.NoteInflight(-1) }()
			queueResponse(outbox, h(req), ov)
		}()
	}
}

// admit acquires a dispatch slot for req and returns the slot wait it
// measured (µs).  A deadline-free request blocks until a slot frees
// (the pre-deadline behaviour: backpressure on the connection's read
// loop); when it has to block, the wait is measured for the dispatch
// chain's queue-management interceptors — the uncontended fast path
// reads no clock.  A deadlined request waits at most its remaining
// budget: if the budget runs out first it is rejected right here — the
// admission check sits *before* the dispatch semaphore, so an expired
// call consumes no slot and no handler work (docs/CONCURRENCY.md §15)
// — and a slot granted in time is charged for the wait by decrementing
// the budget the call carries on.
func admit(req *wire.Request, sem chan struct{}, ov *telemetry.OverloadStats, outbox chan<- outFrame) (slotWaitUs uint64, ok bool) {
	select {
	case sem <- struct{}{}: // fast path: free slot, no wait, no clock read
		return 0, true
	default:
	}
	if req.DeadlineUs == 0 {
		start := time.Now()
		sem <- struct{}{}
		return uint64(time.Since(start) / time.Microsecond), true
	}
	start := time.Now()
	timer := time.NewTimer(time.Duration(req.DeadlineUs) * time.Microsecond)
	select {
	case sem <- struct{}{}:
		timer.Stop()
		waited := uint64(time.Since(start) / time.Microsecond)
		if waited >= req.DeadlineUs {
			// Granted at the buzzer: the budget is gone, so hand the
			// slot back rather than burn it on a call whose caller has
			// already given up.
			<-sem
			ov.NoteAdmissionReject(true)
			queueResponse(outbox, deadlineReject(req), ov)
			return 0, false
		}
		req.DeadlineUs -= waited
		return waited, true
	case <-timer.C:
		ov.NoteAdmissionReject(true)
		queueResponse(outbox, deadlineReject(req), ov)
		return 0, false
	}
}

// deadlineReject is the admission-rejection response: a transport-level
// error (not an application exception), so pool failover and callers
// see it the same way as any remote fault.
func deadlineReject(req *wire.Request) *wire.Response {
	return &wire.Response{ID: req.ID, Err: fmt.Sprintf(
		"deadline expired in admission queue (budget was %dµs)", req.DeadlineUs)}
}

// queueResponse encodes resp into a pooled frame and hands it to the
// connection's writer, counting — but still honouring — outbox
// backpressure when the writer has fallen outboxDepth frames behind.
func queueResponse(outbox chan<- outFrame, resp *wire.Response, ov *telemetry.OverloadStats) {
	respBufp := getFrameBuf()
	full := wire.AppendResponse((*respBufp)[:frameHeadroom], resp)
	*respBufp = full // adopt the (possibly grown) backing
	of := outFrame{bufp: respBufp, frame: appendLengthPrefix(full)}
	select {
	case outbox <- of:
	default:
		ov.NoteOutboxStall()
		outbox <- of
	}
}

// serverWriteLoop drains a connection's response queue, batching queued
// frames into single vectored writes.  After a write error it closes the
// connection (stopping the read loop) but keeps consuming the queue so
// workers never block on a dead connection; it exits when the queue is
// closed.
func serverWriteLoop(conn net.Conn, outbox chan outFrame) {
	recycle := make([]*[]byte, 0, maxWriteBatch)
	backing := make([][]byte, maxWriteBatch) // WriteTo nils entries; refilled each round
	var werr error
	for first := range outbox {
		n := 0
		backing[n] = first.frame
		n++
		recycle = append(recycle[:0], first.bufp)
	drain:
		for n < maxWriteBatch {
			select {
			case f, ok := <-outbox:
				if !ok {
					break drain
				}
				backing[n] = f.frame
				n++
				recycle = append(recycle, f.bufp)
			default:
				break drain
			}
		}
		if werr == nil {
			batch := net.Buffers(backing[:n])
			if _, err := batch.WriteTo(conn); err != nil {
				werr = err
				_ = conn.Close()
			}
		}
		for _, bufp := range recycle {
			putFrameBuf(bufp)
		}
	}
}

// Dial opens a persistent multiplexed connection to the endpoint.
func (t *RRP) Dial(endpoint string) (Client, error) {
	proto, addr, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if proto != "rrp" {
		return nil, fmt.Errorf("rrp transport cannot dial %q", endpoint)
	}
	conn, err := t.opts.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("rrp dial %s: %w", addr, err)
	}
	c := &rrpClient{
		conn:    conn,
		pending: make(map[uint64]chan rrpResult),
		outbox:  make(chan outFrame, outboxDepth),
		dead:    make(chan struct{}),
	}
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

type rrpResult struct {
	resp *wire.Response
	err  error
}

// outFrame is a ready-to-send frame: frame aliases bufp's backing array
// (prefix already applied), and bufp is returned to the pool after the
// frame is written.
type outFrame struct {
	bufp  *[]byte
	frame []byte
}

// rrpClient multiplexes calls from any number of goroutines over one
// connection: each call registers a channel in the pending map under a
// client-assigned wire ID, hands its encoded frame to the writer
// goroutine, and blocks on its channel until the reader goroutine
// delivers the matching response.  No lock is held across the round
// trip, so N callers put N requests in flight; the writer coalesces
// frames queued while it was busy into a single vectored write,
// amortising syscalls under load.
type rrpClient struct {
	conn net.Conn
	seq  atomic.Uint64

	outbox chan outFrame
	dead   chan struct{} // closed by fail(); unblocks outbox senders

	mu      sync.Mutex
	pending map[uint64]chan rrpResult
	err     error // terminal connection error, set once
}

func (c *rrpClient) Call(req *wire.Request) (*wire.Response, error) {
	// The wire ID is assigned by the client, not the caller: uniqueness
	// among in-flight calls on this connection is what makes correlation
	// sound, and callers are free to reuse request IDs.
	wireID := c.seq.Add(1)
	ch := make(chan rrpResult, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, fmt.Errorf("rrp call: %w", err)
	}
	c.pending[wireID] = ch
	c.mu.Unlock()

	wreq := *req // shallow copy: only the ID field is rewritten
	wreq.ID = wireID
	bufp := getFrameBuf()
	full := wire.AppendRequest((*bufp)[:frameHeadroom], &wreq)
	*bufp = full // adopt the (possibly grown) backing so the pool keeps it
	frame := appendLengthPrefix(full)
	select {
	case c.outbox <- outFrame{bufp: bufp, frame: frame}:
	case <-c.dead:
		c.unregister(wireID)
		putFrameBuf(bufp)
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, fmt.Errorf("rrp send: %w", err)
	}

	res := <-ch
	if res.err != nil {
		return nil, fmt.Errorf("rrp receive: %w", res.err)
	}
	resp := res.resp
	resp.ID = req.ID // restore the caller's correlation ID
	return resp, nil
}

// writeLoop is the client's single writer: it takes the next queued
// frame, opportunistically drains whatever else queued up behind it, and
// sends the batch as one vectored write — under concurrent load many
// requests ride one syscall.
func (c *rrpClient) writeLoop() {
	recycle := make([]*[]byte, 0, maxWriteBatch)
	backing := make([][]byte, maxWriteBatch) // WriteTo nils entries; refilled each round
	for {
		var first outFrame
		select {
		case first = <-c.outbox:
		case <-c.dead:
			return
		}
		n := 0
		backing[n] = first.frame
		n++
		recycle = append(recycle[:0], first.bufp)
	drain:
		for n < maxWriteBatch {
			select {
			case f := <-c.outbox:
				backing[n] = f.frame
				n++
				recycle = append(recycle, f.bufp)
			default:
				break drain
			}
		}
		batch := net.Buffers(backing[:n])
		_, err := batch.WriteTo(c.conn)
		for _, bufp := range recycle {
			putFrameBuf(bufp)
		}
		if err != nil {
			// A failed write poisons the framing; tear the connection
			// down so every in-flight call learns immediately.
			c.fail(err)
			return
		}
	}
}

// readLoop is the client's single reader: it decodes response frames as
// they arrive — in whatever order the server completed them — and hands
// each to the waiting call.
func (c *rrpClient) readLoop() {
	br := bufio.NewReaderSize(c.conn, rrpBufSize)
	for {
		bufp, frame, err := readFrame(br)
		if err != nil {
			c.fail(err)
			return
		}
		resp, err := wire.DecodeResponseBytes(frame)
		putFrameBuf(bufp)
		if err != nil {
			c.fail(fmt.Errorf("rrp decode: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if !ok {
			// No call is waiting for this id.  Under injected or real
			// delivery duplication a request frame can reach the server
			// twice, producing two responses with one wire id: the first
			// matched, this one is a benign duplicate — as is a straggler
			// for a call fail() already abandoned.  Any id at or below the
			// issued sequence is such a duplicate and is dropped; an id
			// never issued means the stream really is corrupt.
			if resp.ID <= c.seq.Load() {
				continue
			}
			c.fail(fmt.Errorf("rrp: response id %d never issued", resp.ID))
			return
		}
		ch <- rrpResult{resp: resp}
	}
}

func (c *rrpClient) unregister(wireID uint64) {
	c.mu.Lock()
	delete(c.pending, wireID)
	c.mu.Unlock()
}

// fail marks the connection dead, stops the writer, and wakes every
// in-flight call with err.
func (c *rrpClient) fail(err error) {
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	abandoned := c.pending
	c.pending = make(map[uint64]chan rrpResult)
	failure := c.err
	c.mu.Unlock()
	if first {
		close(c.dead)
	}
	_ = c.conn.Close()
	for _, ch := range abandoned {
		ch <- rrpResult{err: failure}
	}
}

func (c *rrpClient) Close() error {
	c.fail(errors.New("client closed"))
	return nil
}

const (
	maxFrame   = 64 << 20
	rrpBufSize = 64 << 10
	// outboxDepth bounds frames queued for the writer goroutine; senders
	// block (backpressure) when the writer falls this far behind.
	outboxDepth = 512
	// maxWriteBatch caps how many queued frames one vectored write sends.
	maxWriteBatch = 64
	// frameHeadroom reserves room at the front of a pooled buffer for the
	// uvarint length prefix, so a frame is encoded and written in one
	// buffer with one Write — no header/payload concatenation copy.
	frameHeadroom = binary.MaxVarintLen64
)

// framePool recycles frame buffers across calls.  Buffers are handed out
// with frameHeadroom bytes of length-prefix space already reserved.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getFrameBuf() *[]byte {
	bufp := framePool.Get().(*[]byte)
	if cap(*bufp) < frameHeadroom {
		b := make([]byte, 0, 4096)
		*bufp = b
	}
	return bufp
}

func putFrameBuf(bufp *[]byte) {
	// Drop oversized buffers so one huge payload doesn't pin memory.
	if cap(*bufp) > 1<<20 {
		return
	}
	*bufp = (*bufp)[:0]
	framePool.Put(bufp)
}

// appendLengthPrefix finishes a frame built in a headroom-reserved buffer:
// buf[:frameHeadroom] is reserved space and buf[frameHeadroom:] is the
// encoded payload.  The uvarint length is written into the tail of the
// reserved space and the ready-to-write frame (prefix + payload,
// contiguous) is returned.
func appendLengthPrefix(buf []byte) []byte {
	payloadLen := len(buf) - frameHeadroom
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(payloadLen))
	start := frameHeadroom - n
	copy(buf[start:], hdr[:n])
	return buf[start:]
}

// readFrame reads one length-prefixed frame into a pooled buffer and
// returns the pool token together with the payload slice.  The caller
// must putFrameBuf the token once the payload has been decoded.
func readFrame(br *bufio.Reader) (*[]byte, []byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	if n > maxFrame {
		return nil, nil, errors.New("frame too large")
	}
	bufp := getFrameBuf()
	var frame []byte
	if uint64(cap(*bufp)) >= n {
		frame = (*bufp)[:n]
	} else {
		frame = make([]byte, n)
		*bufp = frame
	}
	if _, err := io.ReadFull(br, frame); err != nil {
		putFrameBuf(bufp)
		return nil, nil, err
	}
	return bufp, frame, nil
}
