package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"rafda/internal/wire"
)

// RRP — the RAFDA Remote Protocol — is the binary TCP transport playing
// the paper's "RMI-based proxy" role: persistent connections carrying
// length-prefixed frames in the wire package's binary encoding.
type RRP struct {
	opts Options
}

// NewRRP returns the RRP transport.
func NewRRP(opts Options) *RRP { return &RRP{opts: opts} }

// Proto returns "rrp".
func (*RRP) Proto() string { return "rrp" }

// Listen starts a TCP accept loop on addr.
func (t *RRP) Listen(addr string, h Handler) (Server, error) {
	l, err := t.opts.listen(addr)
	if err != nil {
		return nil, fmt.Errorf("rrp listen: %w", err)
	}
	s := &rrpServer{l: l}
	go s.acceptLoop(h)
	return s, nil
}

type rrpServer struct {
	l      net.Listener
	wg     sync.WaitGroup
	closed sync.Once

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	down  bool
}

func (s *rrpServer) Endpoint() string { return JoinEndpoint("rrp", s.l.Addr().String()) }

func (s *rrpServer) Close() error {
	var err error
	s.closed.Do(func() {
		err = s.l.Close()
		s.mu.Lock()
		s.down = true
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return err
}

func (s *rrpServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *rrpServer) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *rrpServer) acceptLoop(h Handler) {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			serveRRPConn(conn, h)
		}()
	}
}

func serveRRPConn(conn net.Conn, h Handler) {
	br := bufio.NewReader(conn)
	for {
		frame, err := readFrame(br)
		if err != nil {
			return
		}
		req, err := wire.DecodeRequest(bytes.NewReader(frame))
		if err != nil {
			return
		}
		resp := h(req)
		var buf bytes.Buffer
		if err := wire.EncodeResponse(&buf, resp); err != nil {
			return
		}
		if err := writeFrame(conn, buf.Bytes()); err != nil {
			return
		}
	}
}

// Dial opens a persistent connection to the endpoint.
func (t *RRP) Dial(endpoint string) (Client, error) {
	proto, addr, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if proto != "rrp" {
		return nil, fmt.Errorf("rrp transport cannot dial %q", endpoint)
	}
	conn, err := t.opts.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("rrp dial %s: %w", addr, err)
	}
	return &rrpClient{conn: conn, br: bufio.NewReader(conn)}, nil
}

type rrpClient struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

func (c *rrpClient) Call(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf bytes.Buffer
	if err := wire.EncodeRequest(&buf, req); err != nil {
		return nil, fmt.Errorf("rrp encode: %w", err)
	}
	if err := writeFrame(c.conn, buf.Bytes()); err != nil {
		return nil, fmt.Errorf("rrp send: %w", err)
	}
	frame, err := readFrame(c.br)
	if err != nil {
		return nil, fmt.Errorf("rrp receive: %w", err)
	}
	resp, err := wire.DecodeResponse(bytes.NewReader(frame))
	if err != nil {
		return nil, fmt.Errorf("rrp decode: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("rrp response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil
}

func (c *rrpClient) Close() error { return c.conn.Close() }

const maxFrame = 64 << 20

// writeFrame emits the length prefix and payload in a single Write so a
// frame is one wire message (one syscall, and one latency charge under
// netsim).
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	frame := make([]byte, 0, n+len(payload))
	frame = append(frame, hdr[:n]...)
	frame = append(frame, payload...)
	_, err := w.Write(frame)
	return err
}

func readFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errors.New("frame too large")
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(br, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
