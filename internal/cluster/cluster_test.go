package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rafda/internal/wire"
)

// fakeNet is an in-memory cluster: endpoint -> coordinator, with
// per-node fake runtimes that execute migrations by bookkeeping.
type fakeNet struct {
	mu    sync.Mutex
	nodes map[string]*Coordinator // by endpoint
	// down marks endpoints as partitioned: calls to them fail, so the
	// node is unreachable rather than merely quiet.
	down map[string]bool
	// owners maps guid -> endpoint currently hosting it live.
	owners map[string]string
	// guidSeq numbers re-exported GUIDs after migrations.
	guidSeq int
	// migrations records executed moves in order.
	migrations []string
}

func newFakeNet() *fakeNet {
	return &fakeNet{nodes: map[string]*Coordinator{}, down: map[string]bool{}, owners: map[string]string{}}
}

type fakeRuntime struct {
	net     *fakeNet
	self    string
	samples []wire.ObjAffinity // returned once per AffinitySamples call
	applied map[string]string  // class placements applied locally
}

func (r *fakeRuntime) Call(endpoint string, req *wire.Request) (*wire.Response, error) {
	r.net.mu.Lock()
	c := r.net.nodes[endpoint]
	cut := r.net.down[endpoint] || r.net.down[r.self]
	r.net.mu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("no node at %s", endpoint)
	}
	if cut {
		return nil, fmt.Errorf("partition: %s unreachable from %s", endpoint, r.self)
	}
	if req.Op != wire.OpGossip {
		return nil, fmt.Errorf("unexpected op %v", req.Op)
	}
	return &wire.Response{ID: req.ID, Cluster: c.HandleGossip(req.Cluster)}, nil
}

func (r *fakeRuntime) MigrateGUID(guid, endpoint string) (wire.RemoteRef, error) {
	r.net.mu.Lock()
	if r.net.owners[guid] != r.self {
		r.net.mu.Unlock()
		return wire.RemoteRef{}, fmt.Errorf("%s does not own %s", r.self, guid)
	}
	r.net.guidSeq++
	newGUID := fmt.Sprintf("%s'm%d", guid, r.net.guidSeq)
	delete(r.net.owners, guid)
	r.net.owners[newGUID] = endpoint
	r.net.migrations = append(r.net.migrations, fmt.Sprintf("%s:%s->%s", guid, r.self, endpoint))
	self := r.net.nodes[r.self]
	r.net.mu.Unlock()
	ref := wire.RemoteRef{GUID: newGUID, Endpoint: endpoint, Proto: "rrp", Target: "C"}
	// Mirror the real node runtime: a successful migration is published
	// into the home's directory.
	self.RecordMove(guid, "C", ref)
	return ref, nil
}

func (r *fakeRuntime) OwnsGUID(guid string) bool {
	r.net.mu.Lock()
	defer r.net.mu.Unlock()
	return r.net.owners[guid] == r.self
}

func (r *fakeRuntime) AffinitySamples(max int) []wire.ObjAffinity {
	s := r.samples
	r.samples = nil
	if len(s) > max {
		s = s[:max]
	}
	return s
}

func (r *fakeRuntime) ObservePeerRTT(string, time.Duration) {}

func (r *fakeRuntime) ApplyClassPlacement(class, endpoint string) error {
	if r.applied == nil {
		r.applied = map[string]string{}
	}
	r.applied[class] = endpoint
	return nil
}

// addNode builds a coordinator + fake runtime pair on net.
func (net *fakeNet) addNode(t *testing.T, id string, cfg Config) (*Coordinator, *fakeRuntime) {
	t.Helper()
	rt := &fakeRuntime{net: net, self: "rrp://" + id}
	cfg.ID = id
	cfg.Self = rt.self
	cfg.Runtime = rt
	cfg.Seed = int64(len(id)) + 7
	if cfg.Fanout == 0 {
		cfg.Fanout = 8 // gossip to everyone: deterministic full propagation
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.mu.Lock()
	net.nodes[rt.self] = c
	net.mu.Unlock()
	return c, rt
}

// joinAll joins every node through the first one's endpoint.
func joinAll(t *testing.T, cs ...*Coordinator) {
	t.Helper()
	for _, c := range cs[1:] {
		if err := c.Join([]string{cs[0].Self()}); err != nil {
			t.Fatal(err)
		}
	}
}

// tickAll steps every coordinator n rounds.
func tickAll(n int, cs ...*Coordinator) {
	for i := 0; i < n; i++ {
		for _, c := range cs {
			c.Tick()
		}
	}
}

func TestMembershipConvergesAndSuspects(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{SuspectAfter: 3, DeadAfter: 6})
	b, _ := net.addNode(t, "b", Config{SuspectAfter: 3, DeadAfter: 6})
	c, _ := net.addNode(t, "c", Config{SuspectAfter: 3, DeadAfter: 6})
	joinAll(t, a, b, c)
	tickAll(2, a, b, c)

	for _, co := range []*Coordinator{a, b, c} {
		peers := co.Peers()
		if len(peers) != 2 {
			t.Fatalf("%s sees %d peers, want 2: %+v", co.ID(), len(peers), peers)
		}
		for _, p := range peers {
			if p.Health != "alive" {
				t.Fatalf("%s sees %s as %s", co.ID(), p.ID, p.Health)
			}
		}
	}

	// c stops ticking: its heartbeat freezes and a/b walk it down the
	// suspicion ladder.
	tickAll(4, a, b)
	if h := healthOf(a, "c"); h != "suspect" {
		t.Fatalf("c should be suspect on a, is %s", h)
	}
	tickAll(4, a, b)
	if h := healthOf(a, "c"); h != "dead" {
		t.Fatalf("c should be dead on a, is %s", h)
	}

	// c comes back: one gossip from it resurrects the membership.
	c.Tick()
	tickAll(1, a, b, c)
	if h := healthOf(a, "c"); h != "alive" {
		t.Fatalf("c should have recovered on a, is %s", h)
	}
}

func healthOf(c *Coordinator, id string) string {
	for _, p := range c.Peers() {
		if p.ID == id {
			return p.Health
		}
	}
	return "absent"
}

func TestLeaveSkipsSuspicion(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	b, _ := net.addNode(t, "b", Config{})
	joinAll(t, a, b)
	tickAll(1, a, b)
	b.Leave()
	if h := healthOf(a, "b"); h != "dead" {
		t.Fatalf("left peer should be dead immediately, is %s", h)
	}
}

func TestDirectoryMergeAndChainCollapse(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	b, _ := net.addNode(t, "b", Config{})
	c, _ := net.addNode(t, "c", Config{})
	joinAll(t, a, b, c)

	// Object moves a->b then (under its new GUID) b->c; entries chain.
	a.RecordMove("g1", "C", wire.RemoteRef{GUID: "g2", Endpoint: b.Self(), Proto: "rrp", Target: "C"})
	b.RecordMove("g2", "C", wire.RemoteRef{GUID: "g3", Endpoint: c.Self(), Proto: "rrp", Target: "C"})
	tickAll(3, a, b, c)

	for _, co := range []*Coordinator{a, b, c} {
		ref, ok := co.Resolve("g1")
		if !ok || ref.Endpoint != c.Self() || ref.GUID != "g3" {
			t.Fatalf("%s resolves g1 to %+v (ok=%v), want g3@%s", co.ID(), ref, ok, c.Self())
		}
	}
}

func TestDirectoryVersionWins(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	b, _ := net.addNode(t, "b", Config{})
	joinAll(t, a, b)

	// Two successive moves recorded at a; b must converge on the later
	// version even if gossip replays the older entry afterwards.
	a.RecordMove("g", "C", wire.RemoteRef{GUID: "gx", Endpoint: "rrp://x", Proto: "rrp"})
	old := a.Directory()[0]
	a.RecordMove("g", "C", wire.RemoteRef{GUID: "gy", Endpoint: "rrp://y", Proto: "rrp"})
	tickAll(2, a, b)
	b.HandleGossip(&wire.ClusterPayload{
		From: wire.PeerDigest{ID: "a", Endpoint: a.Self(), Heartbeat: 1},
		Dir:  []wire.DirEntry{old},
	})
	ref, ok := b.Resolve("g")
	if !ok || ref.GUID != "gy" {
		t.Fatalf("stale replay won: %+v ok=%v", ref, ok)
	}
}

func TestConflictingIntentsReconcileToOneWinner(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{SettleTicks: 2, CooldownTicks: 30})
	b, _ := net.addNode(t, "b", Config{SettleTicks: 2, CooldownTicks: 30})
	c, _ := net.addNode(t, "c", Config{SettleTicks: 2, CooldownTicks: 30})
	joinAll(t, a, b, c)
	net.owners["g"] = b.Self() // b hosts the contested object

	// a and c both want the object, with different evidence strength.
	if ok, why := a.Submit(wire.Intent{GUID: "g", Class: "C", From: b.Self(), To: a.Self(), Priority: 60}); !ok {
		t.Fatalf("a's intent refused: %s", why)
	}
	if ok, why := c.Submit(wire.Intent{GUID: "g", Class: "C", From: b.Self(), To: c.Self(), Priority: 55}); !ok {
		t.Fatalf("c's intent refused: %s", why)
	}
	tickAll(6, a, b, c)

	net.mu.Lock()
	migs := append([]string(nil), net.migrations...)
	net.mu.Unlock()
	if len(migs) != 1 {
		t.Fatalf("want exactly 1 migration, got %v", migs)
	}
	if migs[0] != "g:"+b.Self()+"->"+a.Self() {
		t.Fatalf("wrong winner executed: %v", migs[0])
	}

	// More rounds and a re-assertion of the losing intent must not move
	// it again (cooldown + directory-satisfied checks).
	c.Submit(wire.Intent{GUID: "g", Class: "C", From: b.Self(), To: c.Self(), Priority: 99})
	tickAll(6, a, b, c)
	net.mu.Lock()
	n := len(net.migrations)
	net.mu.Unlock()
	if n != 1 {
		t.Fatalf("object ping-ponged: %v", net.migrations)
	}

	// The canonical ping-pong: the NEW home (a) is asked — on its own
	// coordinator, where it alone would execute — to send the object
	// straight back.  The cooldown must be cluster-wide (learned from
	// the gossiped directory entry), not just local to the node that
	// executed the move.
	net.mu.Lock()
	var newGUID string
	for g, owner := range net.owners {
		if owner == a.Self() {
			newGUID = g
		}
	}
	net.mu.Unlock()
	if newGUID == "" {
		t.Fatal("migrated object has no new owner")
	}
	if ok, why := a.Submit(wire.Intent{GUID: newGUID, Class: "C", From: a.Self(), To: c.Self(), Priority: 999}); ok {
		t.Fatal("reverse intent accepted inside the cooldown window")
	} else if why == "" {
		t.Fatal("reverse intent refused without a reason")
	}
	tickAll(4, a, b, c)
	net.mu.Lock()
	n = len(net.migrations)
	net.mu.Unlock()
	if n != 1 {
		t.Fatalf("reverse migration executed inside cooldown: %v", net.migrations)
	}
}

func TestEqualPriorityTieBreaksOnProposer(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{SettleTicks: 1})
	b, _ := net.addNode(t, "b", Config{SettleTicks: 1})
	joinAll(t, a, b)
	in1 := wire.Intent{GUID: "g", From: "rrp://x", To: "rrp://t1", Proposer: "zeta", Priority: 10}
	in2 := wire.Intent{GUID: "g", From: "rrp://x", To: "rrp://t2", Proposer: "alpha", Priority: 10}
	a.Submit(in1)
	a.Submit(in2)
	for _, in := range a.Intents() {
		if in.Proposer != "alpha" {
			t.Fatalf("tie-break picked %+v", in)
		}
	}
	// Order independence: b sees them reversed.
	b.Submit(in2)
	b.Submit(in1)
	for _, in := range b.Intents() {
		if in.Proposer != "alpha" {
			t.Fatalf("tie-break order-dependent: %+v", in)
		}
	}
}

func TestMultiHopProposalFlowsFromRollup(t *testing.T) {
	net := newFakeNet()
	// Only a proposes; b hosts; c is the dominant caller.
	a, _ := net.addNode(t, "a", Config{Propose: true, MinCalls: 10, SettleTicks: 2})
	b, rtb := net.addNode(t, "b", Config{SettleTicks: 2})
	c, _ := net.addNode(t, "c", Config{SettleTicks: 2})
	joinAll(t, a, b, c)
	net.owners["g"] = b.Self()

	// b's telemetry rollup: 90% of g's calls come from c.
	feed := func() {
		rtb.samples = []wire.ObjAffinity{{
			GUID: "g", Class: "C", Calls: 100,
			Callers: []wire.EndpointCount{
				{Endpoint: c.Self(), Calls: 90},
				{Endpoint: a.Self(), Calls: 10},
			},
		}}
	}
	for i := 0; i < 8; i++ {
		feed()
		tickAll(1, b, a, c)
	}

	net.mu.Lock()
	migs := append([]string(nil), net.migrations...)
	net.mu.Unlock()
	if len(migs) != 1 || migs[0] != "g:"+b.Self()+"->"+c.Self() {
		t.Fatalf("multi-hop migration not executed exactly once: %v", migs)
	}
	// The proposer must be a (multi-hop: proposer != source != target).
	var proposed bool
	for _, e := range b.Events() {
		if e.Kind == "migrate" && e.GUID == "g" {
			if e.Peer != "a" {
				t.Fatalf("winning intent proposed by %q, want a", e.Peer)
			}
			proposed = true
		}
	}
	if !proposed {
		t.Fatal("no migrate event on b")
	}
}

func TestClassPlacementFollows(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{FollowClassPlacements: true})
	b, rtb := net.addNode(t, "b", Config{FollowClassPlacements: true})
	joinAll(t, a, b)
	a.RecordClassPlacement("C", "rrp://somewhere")
	tickAll(2, a, b)
	if rtb.applied["C"] != "rrp://somewhere" {
		t.Fatalf("b did not follow the class placement: %+v", rtb.applied)
	}
	// The epoch is applied once, not on every gossip round.
	rtb.applied = nil
	tickAll(2, a, b)
	if len(rtb.applied) != 0 {
		t.Fatalf("placement re-applied: %+v", rtb.applied)
	}
}

func TestSubmitRefusalsExplain(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	if ok, why := a.Submit(wire.Intent{GUID: "", To: "rrp://x"}); ok || why == "" {
		t.Fatal("malformed intent accepted")
	}
	if ok, why := a.Submit(wire.Intent{GUID: "g", From: a.Self(), To: a.Self()}); ok || why == "" {
		t.Fatal("no-op intent accepted")
	}
}

// TestIntentsExpireWhenOriginStops: intents and rollups are
// origin-gossiped, so once the proposer stops re-asserting (evidence
// gone, or the proposer died) every member's copy ages out by TTL —
// peers must not keep each other's copies alive by echoing them.
func TestIntentsExpireWhenOriginStops(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{IntentTTL: 4, SettleTicks: 50})
	b, _ := net.addNode(t, "b", Config{IntentTTL: 4, SettleTicks: 50})
	c, _ := net.addNode(t, "c", Config{IntentTTL: 4, SettleTicks: 50})
	joinAll(t, a, b, c)
	tickAll(1, a, b, c)

	if ok, why := a.Submit(wire.Intent{GUID: "g", From: "rrp://x", To: "rrp://y", Priority: 5}); !ok {
		t.Fatalf("refused: %s", why)
	}
	tickAll(1, a, b, c)
	if len(b.Intents()) != 1 || len(c.Intents()) != 1 {
		t.Fatalf("intent did not disseminate: b=%d c=%d", len(b.Intents()), len(c.Intents()))
	}
	// The proposer never re-asserts; everyone keeps gossiping.
	tickAll(8, a, b, c)
	for _, co := range []*Coordinator{a, b, c} {
		if n := len(co.Intents()); n != 0 {
			t.Fatalf("%s still holds %d intents after the origin went quiet (echo keeps TTL alive)", co.ID(), n)
		}
	}
}

// replicaSet builds the canonical test set: a primaries g with replica
// copies exported as rb@b and rc@c.
func replicaSet(primary string) wire.ReplicaSet {
	return wire.ReplicaSet{
		GUID: "g", Class: "C", Primary: primary, Epoch: 1,
		Replicas: []wire.ReplicaInfo{
			{Endpoint: "rrp://b", GUID: "rb"},
			{Endpoint: "rrp://c", GUID: "rc"},
		},
	}
}

func TestReplicaSetDisseminatesAndRoutesReads(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	b, _ := net.addNode(t, "b", Config{})
	c, _ := net.addNode(t, "c", Config{})
	d, _ := net.addNode(t, "d", Config{}) // pure caller: no replica
	joinAll(t, a, b, c, d)
	a.RecordReplicaSet(replicaSet(a.Self()))
	tickAll(2, a, b, c, d)

	// Replica holders serve reads locally under a live lease.
	for _, co := range []*Coordinator{b, c} {
		rt, ok := co.ReadTarget("g")
		if !ok || !rt.Local || rt.Endpoint != co.Self() {
			t.Fatalf("%s read route = %+v (ok=%v), want local replica", co.ID(), rt, ok)
		}
		if !co.LeaseValid("g") {
			t.Fatalf("%s lease invalid right after direct primary gossip", co.ID())
		}
	}
	// A pure caller routes to a live replica, not the primary.
	rt, ok := d.ReadTarget("g")
	if !ok || rt.Local || rt.Endpoint == a.Self() {
		t.Fatalf("pure caller route = %+v (ok=%v), want a remote replica", rt, ok)
	}
	if rt.GUID != "rb" && rt.GUID != "rc" {
		t.Fatalf("pure caller routed to unknown replica GUID %q", rt.GUID)
	}
	// The primary itself reports no self-replica route.
	if art, ok := a.ReadTarget("g"); !ok || art.Local {
		t.Fatalf("primary route = %+v (ok=%v)", art, ok)
	}

	// Epoch advances ride the same merge.
	a.UpdateReplicaEpoch("g", 7)
	tickAll(2, a, b, c, d)
	if rt, _ := b.ReadTarget("g"); rt.Epoch != 7 {
		t.Fatalf("epoch did not disseminate: %+v", rt)
	}
}

// TestLeaseNeedsDirectPrimaryContact pins the lease soundness rule: a
// replica partitioned from its primary must stop serving reads after
// LeaseTicks even while third parties keep relaying the set to it.
func TestLeaseNeedsDirectPrimaryContact(t *testing.T) {
	net := newFakeNet()
	cfg := Config{LeaseTicks: 3, SuspectAfter: 10, DeadAfter: 20}
	a, _ := net.addNode(t, "a", cfg)
	b, _ := net.addNode(t, "b", cfg)
	c, _ := net.addNode(t, "c", cfg)
	joinAll(t, a, b, c)
	a.RecordReplicaSet(replicaSet(a.Self()))
	tickAll(1, a, b, c)
	if !b.LeaseValid("g") {
		t.Fatal("lease not granted by direct primary gossip")
	}

	// a partitions away; b and c keep gossiping the set at each other.
	net.mu.Lock()
	net.down[a.Self()] = true
	net.mu.Unlock()
	tickAll(5, b, c)
	if b.LeaseValid("g") {
		t.Fatal("relayed gossip renewed the lease: stale reads now possible")
	}
	if rt, ok := b.ReadTarget("g"); !ok || rt.Local {
		t.Fatalf("expired-lease replica still routes reads to itself: %+v", rt)
	}

	// Direct contact from the primary restores it.
	net.mu.Lock()
	net.down[a.Self()] = false
	net.mu.Unlock()
	tickAll(1, a, b, c)
	if !b.LeaseValid("g") {
		t.Fatal("lease not renewed once the primary resumed")
	}
}

// TestDeadPrimaryPromotesSmallestReplica drives the failover path: the
// primary dies, the lexicographically smallest live replica endpoint
// promotes itself (Version+1, OnPromote fired), the other replica
// follows the new primary and regains a lease from it, and the deposed
// primary is told to stand down when it reconnects.
func TestDeadPrimaryPromotesSmallestReplica(t *testing.T) {
	net := newFakeNet()
	cfg := Config{SuspectAfter: 2, DeadAfter: 4, LeaseTicks: 3}
	var promoted, demoted []string
	cfgB := cfg
	cfgB.OnPromote = func(guid, class, selfGUID string) {
		promoted = append(promoted, guid+"/"+class+"/"+selfGUID)
	}
	cfgA := cfg
	cfgA.OnDemote = func(guid string) { demoted = append(demoted, guid) }
	a, _ := net.addNode(t, "a", cfgA)
	b, _ := net.addNode(t, "b", cfgB)
	c, _ := net.addNode(t, "c", cfg)
	joinAll(t, a, b, c)
	a.RecordReplicaSet(replicaSet(a.Self()))
	tickAll(2, a, b, c)
	before, _ := b.ReplicaSet("g")

	// a dies; b and c walk it down the ladder, then b (smallest replica
	// endpoint) takes over.
	net.mu.Lock()
	net.down[a.Self()] = true
	net.mu.Unlock()
	tickAll(6, b, c)
	if len(promoted) != 1 || promoted[0] != "g/C/rb" {
		t.Fatalf("promotions = %v, want [g/C/rb]", promoted)
	}
	set, ok := b.ReplicaSet("g")
	if !ok || set.Primary != b.Self() || set.Version <= before.Version {
		t.Fatalf("promoted set = %+v (ok=%v)", set, ok)
	}
	if replicaMember(set, b.Self()) {
		t.Fatalf("new primary still lists itself as replica: %+v", set)
	}
	// c follows and regains a lease from the NEW primary's direct gossip.
	tickAll(2, b, c)
	cset, _ := c.ReplicaSet("g")
	if cset.Primary != b.Self() {
		t.Fatalf("c did not follow the new primary: %+v", cset)
	}
	if !c.LeaseValid("g") {
		t.Fatal("c has no lease from the new primary")
	}

	// a reconnects, learns the higher-Version set, and stands down.
	net.mu.Lock()
	net.down[a.Self()] = false
	net.mu.Unlock()
	tickAll(2, a, b, c)
	if len(demoted) != 1 || demoted[0] != "g" {
		t.Fatalf("demotions = %v, want [g]", demoted)
	}
	aset, _ := a.ReplicaSet("g")
	if aset.Primary != b.Self() {
		t.Fatalf("deposed primary kept its own set: %+v", aset)
	}
}

// TestEvictReplicaWaitsOutLease pins the write-path eviction contract:
// removing an unreachable replica bumps the set version, and the
// returned wait covers the evicted member's full lease window (plus a
// tick of phase skew) so it cannot serve a stale read after the write
// acks.
func TestEvictReplicaWaitsOutLease(t *testing.T) {
	net := newFakeNet()
	cfg := Config{LeaseTicks: 3, Heartbeat: 10 * time.Millisecond}
	a, _ := net.addNode(t, "a", cfg)
	b, _ := net.addNode(t, "b", cfg)
	joinAll(t, a, b)
	a.RecordReplicaSet(replicaSet(a.Self()))
	before, _ := a.ReplicaSet("g")

	wait := a.EvictReplica("g", "rrp://b")
	if want := 4 * 10 * time.Millisecond; wait != want {
		t.Fatalf("lease wait = %v, want %v", wait, want)
	}
	set, _ := a.ReplicaSet("g")
	if replicaMember(set, "rrp://b") || set.Version != before.Version+1 {
		t.Fatalf("eviction did not bump membership/version: %+v", set)
	}
	// The evicted member learns it is out and stops self-routing.
	tickAll(2, a, b)
	if b.LeaseValid("g") {
		t.Fatal("evicted replica still holds a lease")
	}
	if rt, ok := b.ReadTarget("g"); ok && rt.Local {
		t.Fatalf("evicted replica still routes reads to itself: %+v", rt)
	}
	// Unknown sets cost no wait.
	if w := a.EvictReplica("nosuch", "rrp://b"); w != 0 {
		t.Fatalf("eviction of unknown set returned wait %v", w)
	}
}

// TestDropReplicaSetTombstones: dissolving a set gossips a tombstone
// that stops read routing everywhere.
func TestDropReplicaSetTombstones(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	b, _ := net.addNode(t, "b", Config{})
	joinAll(t, a, b)
	a.RecordReplicaSet(replicaSet(a.Self()))
	tickAll(2, a, b)
	a.DropReplicaSet("g")
	tickAll(2, a, b)
	if _, ok := b.ReadTarget("g"); ok {
		t.Fatal("tombstoned set still routes reads")
	}
	if b.LeaseValid("g") {
		t.Fatal("tombstoned set left a live lease")
	}
}
