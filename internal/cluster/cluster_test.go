package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rafda/internal/wire"
)

// fakeNet is an in-memory cluster: endpoint -> coordinator, with
// per-node fake runtimes that execute migrations by bookkeeping.
type fakeNet struct {
	mu    sync.Mutex
	nodes map[string]*Coordinator // by endpoint
	// owners maps guid -> endpoint currently hosting it live.
	owners map[string]string
	// guidSeq numbers re-exported GUIDs after migrations.
	guidSeq int
	// migrations records executed moves in order.
	migrations []string
}

func newFakeNet() *fakeNet {
	return &fakeNet{nodes: map[string]*Coordinator{}, owners: map[string]string{}}
}

type fakeRuntime struct {
	net     *fakeNet
	self    string
	samples []wire.ObjAffinity // returned once per AffinitySamples call
	applied map[string]string  // class placements applied locally
}

func (r *fakeRuntime) Call(endpoint string, req *wire.Request) (*wire.Response, error) {
	r.net.mu.Lock()
	c := r.net.nodes[endpoint]
	r.net.mu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("no node at %s", endpoint)
	}
	if req.Op != wire.OpGossip {
		return nil, fmt.Errorf("unexpected op %v", req.Op)
	}
	return &wire.Response{ID: req.ID, Cluster: c.HandleGossip(req.Cluster)}, nil
}

func (r *fakeRuntime) MigrateGUID(guid, endpoint string) (wire.RemoteRef, error) {
	r.net.mu.Lock()
	if r.net.owners[guid] != r.self {
		r.net.mu.Unlock()
		return wire.RemoteRef{}, fmt.Errorf("%s does not own %s", r.self, guid)
	}
	r.net.guidSeq++
	newGUID := fmt.Sprintf("%s'm%d", guid, r.net.guidSeq)
	delete(r.net.owners, guid)
	r.net.owners[newGUID] = endpoint
	r.net.migrations = append(r.net.migrations, fmt.Sprintf("%s:%s->%s", guid, r.self, endpoint))
	self := r.net.nodes[r.self]
	r.net.mu.Unlock()
	ref := wire.RemoteRef{GUID: newGUID, Endpoint: endpoint, Proto: "rrp", Target: "C"}
	// Mirror the real node runtime: a successful migration is published
	// into the home's directory.
	self.RecordMove(guid, "C", ref)
	return ref, nil
}

func (r *fakeRuntime) OwnsGUID(guid string) bool {
	r.net.mu.Lock()
	defer r.net.mu.Unlock()
	return r.net.owners[guid] == r.self
}

func (r *fakeRuntime) AffinitySamples(max int) []wire.ObjAffinity {
	s := r.samples
	r.samples = nil
	if len(s) > max {
		s = s[:max]
	}
	return s
}

func (r *fakeRuntime) ObservePeerRTT(string, time.Duration) {}

func (r *fakeRuntime) ApplyClassPlacement(class, endpoint string) error {
	if r.applied == nil {
		r.applied = map[string]string{}
	}
	r.applied[class] = endpoint
	return nil
}

// addNode builds a coordinator + fake runtime pair on net.
func (net *fakeNet) addNode(t *testing.T, id string, cfg Config) (*Coordinator, *fakeRuntime) {
	t.Helper()
	rt := &fakeRuntime{net: net, self: "rrp://" + id}
	cfg.ID = id
	cfg.Self = rt.self
	cfg.Runtime = rt
	cfg.Seed = int64(len(id)) + 7
	if cfg.Fanout == 0 {
		cfg.Fanout = 8 // gossip to everyone: deterministic full propagation
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.mu.Lock()
	net.nodes[rt.self] = c
	net.mu.Unlock()
	return c, rt
}

// joinAll joins every node through the first one's endpoint.
func joinAll(t *testing.T, cs ...*Coordinator) {
	t.Helper()
	for _, c := range cs[1:] {
		if err := c.Join([]string{cs[0].Self()}); err != nil {
			t.Fatal(err)
		}
	}
}

// tickAll steps every coordinator n rounds.
func tickAll(n int, cs ...*Coordinator) {
	for i := 0; i < n; i++ {
		for _, c := range cs {
			c.Tick()
		}
	}
}

func TestMembershipConvergesAndSuspects(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{SuspectAfter: 3, DeadAfter: 6})
	b, _ := net.addNode(t, "b", Config{SuspectAfter: 3, DeadAfter: 6})
	c, _ := net.addNode(t, "c", Config{SuspectAfter: 3, DeadAfter: 6})
	joinAll(t, a, b, c)
	tickAll(2, a, b, c)

	for _, co := range []*Coordinator{a, b, c} {
		peers := co.Peers()
		if len(peers) != 2 {
			t.Fatalf("%s sees %d peers, want 2: %+v", co.ID(), len(peers), peers)
		}
		for _, p := range peers {
			if p.Health != "alive" {
				t.Fatalf("%s sees %s as %s", co.ID(), p.ID, p.Health)
			}
		}
	}

	// c stops ticking: its heartbeat freezes and a/b walk it down the
	// suspicion ladder.
	tickAll(4, a, b)
	if h := healthOf(a, "c"); h != "suspect" {
		t.Fatalf("c should be suspect on a, is %s", h)
	}
	tickAll(4, a, b)
	if h := healthOf(a, "c"); h != "dead" {
		t.Fatalf("c should be dead on a, is %s", h)
	}

	// c comes back: one gossip from it resurrects the membership.
	c.Tick()
	tickAll(1, a, b, c)
	if h := healthOf(a, "c"); h != "alive" {
		t.Fatalf("c should have recovered on a, is %s", h)
	}
}

func healthOf(c *Coordinator, id string) string {
	for _, p := range c.Peers() {
		if p.ID == id {
			return p.Health
		}
	}
	return "absent"
}

func TestLeaveSkipsSuspicion(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	b, _ := net.addNode(t, "b", Config{})
	joinAll(t, a, b)
	tickAll(1, a, b)
	b.Leave()
	if h := healthOf(a, "b"); h != "dead" {
		t.Fatalf("left peer should be dead immediately, is %s", h)
	}
}

func TestDirectoryMergeAndChainCollapse(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	b, _ := net.addNode(t, "b", Config{})
	c, _ := net.addNode(t, "c", Config{})
	joinAll(t, a, b, c)

	// Object moves a->b then (under its new GUID) b->c; entries chain.
	a.RecordMove("g1", "C", wire.RemoteRef{GUID: "g2", Endpoint: b.Self(), Proto: "rrp", Target: "C"})
	b.RecordMove("g2", "C", wire.RemoteRef{GUID: "g3", Endpoint: c.Self(), Proto: "rrp", Target: "C"})
	tickAll(3, a, b, c)

	for _, co := range []*Coordinator{a, b, c} {
		ref, ok := co.Resolve("g1")
		if !ok || ref.Endpoint != c.Self() || ref.GUID != "g3" {
			t.Fatalf("%s resolves g1 to %+v (ok=%v), want g3@%s", co.ID(), ref, ok, c.Self())
		}
	}
}

func TestDirectoryVersionWins(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	b, _ := net.addNode(t, "b", Config{})
	joinAll(t, a, b)

	// Two successive moves recorded at a; b must converge on the later
	// version even if gossip replays the older entry afterwards.
	a.RecordMove("g", "C", wire.RemoteRef{GUID: "gx", Endpoint: "rrp://x", Proto: "rrp"})
	old := a.Directory()[0]
	a.RecordMove("g", "C", wire.RemoteRef{GUID: "gy", Endpoint: "rrp://y", Proto: "rrp"})
	tickAll(2, a, b)
	b.HandleGossip(&wire.ClusterPayload{
		From: wire.PeerDigest{ID: "a", Endpoint: a.Self(), Heartbeat: 1},
		Dir:  []wire.DirEntry{old},
	})
	ref, ok := b.Resolve("g")
	if !ok || ref.GUID != "gy" {
		t.Fatalf("stale replay won: %+v ok=%v", ref, ok)
	}
}

func TestConflictingIntentsReconcileToOneWinner(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{SettleTicks: 2, CooldownTicks: 30})
	b, _ := net.addNode(t, "b", Config{SettleTicks: 2, CooldownTicks: 30})
	c, _ := net.addNode(t, "c", Config{SettleTicks: 2, CooldownTicks: 30})
	joinAll(t, a, b, c)
	net.owners["g"] = b.Self() // b hosts the contested object

	// a and c both want the object, with different evidence strength.
	if ok, why := a.Submit(wire.Intent{GUID: "g", Class: "C", From: b.Self(), To: a.Self(), Priority: 60}); !ok {
		t.Fatalf("a's intent refused: %s", why)
	}
	if ok, why := c.Submit(wire.Intent{GUID: "g", Class: "C", From: b.Self(), To: c.Self(), Priority: 55}); !ok {
		t.Fatalf("c's intent refused: %s", why)
	}
	tickAll(6, a, b, c)

	net.mu.Lock()
	migs := append([]string(nil), net.migrations...)
	net.mu.Unlock()
	if len(migs) != 1 {
		t.Fatalf("want exactly 1 migration, got %v", migs)
	}
	if migs[0] != "g:"+b.Self()+"->"+a.Self() {
		t.Fatalf("wrong winner executed: %v", migs[0])
	}

	// More rounds and a re-assertion of the losing intent must not move
	// it again (cooldown + directory-satisfied checks).
	c.Submit(wire.Intent{GUID: "g", Class: "C", From: b.Self(), To: c.Self(), Priority: 99})
	tickAll(6, a, b, c)
	net.mu.Lock()
	n := len(net.migrations)
	net.mu.Unlock()
	if n != 1 {
		t.Fatalf("object ping-ponged: %v", net.migrations)
	}

	// The canonical ping-pong: the NEW home (a) is asked — on its own
	// coordinator, where it alone would execute — to send the object
	// straight back.  The cooldown must be cluster-wide (learned from
	// the gossiped directory entry), not just local to the node that
	// executed the move.
	net.mu.Lock()
	var newGUID string
	for g, owner := range net.owners {
		if owner == a.Self() {
			newGUID = g
		}
	}
	net.mu.Unlock()
	if newGUID == "" {
		t.Fatal("migrated object has no new owner")
	}
	if ok, why := a.Submit(wire.Intent{GUID: newGUID, Class: "C", From: a.Self(), To: c.Self(), Priority: 999}); ok {
		t.Fatal("reverse intent accepted inside the cooldown window")
	} else if why == "" {
		t.Fatal("reverse intent refused without a reason")
	}
	tickAll(4, a, b, c)
	net.mu.Lock()
	n = len(net.migrations)
	net.mu.Unlock()
	if n != 1 {
		t.Fatalf("reverse migration executed inside cooldown: %v", net.migrations)
	}
}

func TestEqualPriorityTieBreaksOnProposer(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{SettleTicks: 1})
	b, _ := net.addNode(t, "b", Config{SettleTicks: 1})
	joinAll(t, a, b)
	in1 := wire.Intent{GUID: "g", From: "rrp://x", To: "rrp://t1", Proposer: "zeta", Priority: 10}
	in2 := wire.Intent{GUID: "g", From: "rrp://x", To: "rrp://t2", Proposer: "alpha", Priority: 10}
	a.Submit(in1)
	a.Submit(in2)
	for _, in := range a.Intents() {
		if in.Proposer != "alpha" {
			t.Fatalf("tie-break picked %+v", in)
		}
	}
	// Order independence: b sees them reversed.
	b.Submit(in2)
	b.Submit(in1)
	for _, in := range b.Intents() {
		if in.Proposer != "alpha" {
			t.Fatalf("tie-break order-dependent: %+v", in)
		}
	}
}

func TestMultiHopProposalFlowsFromRollup(t *testing.T) {
	net := newFakeNet()
	// Only a proposes; b hosts; c is the dominant caller.
	a, _ := net.addNode(t, "a", Config{Propose: true, MinCalls: 10, SettleTicks: 2})
	b, rtb := net.addNode(t, "b", Config{SettleTicks: 2})
	c, _ := net.addNode(t, "c", Config{SettleTicks: 2})
	joinAll(t, a, b, c)
	net.owners["g"] = b.Self()

	// b's telemetry rollup: 90% of g's calls come from c.
	feed := func() {
		rtb.samples = []wire.ObjAffinity{{
			GUID: "g", Class: "C", Calls: 100,
			Callers: []wire.EndpointCount{
				{Endpoint: c.Self(), Calls: 90},
				{Endpoint: a.Self(), Calls: 10},
			},
		}}
	}
	for i := 0; i < 8; i++ {
		feed()
		tickAll(1, b, a, c)
	}

	net.mu.Lock()
	migs := append([]string(nil), net.migrations...)
	net.mu.Unlock()
	if len(migs) != 1 || migs[0] != "g:"+b.Self()+"->"+c.Self() {
		t.Fatalf("multi-hop migration not executed exactly once: %v", migs)
	}
	// The proposer must be a (multi-hop: proposer != source != target).
	var proposed bool
	for _, e := range b.Events() {
		if e.Kind == "migrate" && e.GUID == "g" {
			if e.Peer != "a" {
				t.Fatalf("winning intent proposed by %q, want a", e.Peer)
			}
			proposed = true
		}
	}
	if !proposed {
		t.Fatal("no migrate event on b")
	}
}

func TestClassPlacementFollows(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{FollowClassPlacements: true})
	b, rtb := net.addNode(t, "b", Config{FollowClassPlacements: true})
	joinAll(t, a, b)
	a.RecordClassPlacement("C", "rrp://somewhere")
	tickAll(2, a, b)
	if rtb.applied["C"] != "rrp://somewhere" {
		t.Fatalf("b did not follow the class placement: %+v", rtb.applied)
	}
	// The epoch is applied once, not on every gossip round.
	rtb.applied = nil
	tickAll(2, a, b)
	if len(rtb.applied) != 0 {
		t.Fatalf("placement re-applied: %+v", rtb.applied)
	}
}

func TestSubmitRefusalsExplain(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{})
	if ok, why := a.Submit(wire.Intent{GUID: "", To: "rrp://x"}); ok || why == "" {
		t.Fatal("malformed intent accepted")
	}
	if ok, why := a.Submit(wire.Intent{GUID: "g", From: a.Self(), To: a.Self()}); ok || why == "" {
		t.Fatal("no-op intent accepted")
	}
}

// TestIntentsExpireWhenOriginStops: intents and rollups are
// origin-gossiped, so once the proposer stops re-asserting (evidence
// gone, or the proposer died) every member's copy ages out by TTL —
// peers must not keep each other's copies alive by echoing them.
func TestIntentsExpireWhenOriginStops(t *testing.T) {
	net := newFakeNet()
	a, _ := net.addNode(t, "a", Config{IntentTTL: 4, SettleTicks: 50})
	b, _ := net.addNode(t, "b", Config{IntentTTL: 4, SettleTicks: 50})
	c, _ := net.addNode(t, "c", Config{IntentTTL: 4, SettleTicks: 50})
	joinAll(t, a, b, c)
	tickAll(1, a, b, c)

	if ok, why := a.Submit(wire.Intent{GUID: "g", From: "rrp://x", To: "rrp://y", Priority: 5}); !ok {
		t.Fatalf("refused: %s", why)
	}
	tickAll(1, a, b, c)
	if len(b.Intents()) != 1 || len(c.Intents()) != 1 {
		t.Fatalf("intent did not disseminate: b=%d c=%d", len(b.Intents()), len(c.Intents()))
	}
	// The proposer never re-asserts; everyone keeps gossiping.
	tickAll(8, a, b, c)
	for _, co := range []*Coordinator{a, b, c} {
		if n := len(co.Intents()); n != 0 {
			t.Fatalf("%s still holds %d intents after the origin went quiet (echo keeps TTL alive)", co.ID(), n)
		}
	}
}
