package cluster

import (
	"sort"

	"rafda/internal/wire"
)

// The placement directory is an eventually consistent, versioned map of
// where things live:
//
//   - object entries chain a stale GUID to the object's current
//     reference (GUID at its new home); successive migrations produce a
//     chain g1→g2@B, g2→g3@C which the resolution snapshot collapses,
//     so a caller holding a reference N migrations old reaches the
//     final home in one hop instead of walking N Response.Redirect
//     forwarding hops;
//   - class entries ("class:Name") record the placement every member's
//     policy table converges on, with Version as the policy epoch.
//
// Entries merge by (Version, Origin): higher version wins, equal
// versions tie-break on the lexicographically greater origin id — a
// deterministic total order, and safe because only an object's
// home-at-the-time writes a new version for its key.

// mergeDirLocked folds received entries into the directory, returning
// the class placements that must be applied to the local policy table
// (performed by the caller outside the lock).  Caller holds c.mu.
func (c *Coordinator) mergeDirLocked(entries []wire.DirEntry) []classApply {
	var applies []classApply
	changed := false
	for _, e := range entries {
		if e.Key == "" {
			continue
		}
		cur, ok := c.dir[e.Key]
		if ok && !newerEntry(e, cur) {
			// Known entry — but an epoch whose local apply failed earlier
			// is still pending, so re-gossip of the same entry retries it.
			if class, isClass := isClassKey(e.Key); isClass &&
				c.cfg.FollowClassPlacements && c.applied[class] < cur.Version {
				applies = append(applies, classApply{class: class, endpoint: cur.Ref.Endpoint, version: cur.Version})
			}
			continue
		}
		c.dir[e.Key] = e
		changed = true
		c.logLocked(Event{Kind: "dir", GUID: e.Key, To: e.Ref.Endpoint,
			Detail: e.Ref.GUID, Peer: e.Origin})
		class, isClass := isClassKey(e.Key)
		if isClass {
			if c.cfg.FollowClassPlacements && c.applied[class] < e.Version {
				applies = append(applies, classApply{class: class, endpoint: e.Ref.Endpoint, version: e.Version})
			}
		} else {
			// A fresh object entry is an observed migration: start the
			// cooldown here too, so the guard is cluster-wide — without
			// this, only the OLD home refuses follow-up intents and the
			// NEW home would happily execute the reverse migration two
			// settle-ticks after the move (classic ping-pong).
			c.startCooldownLocked(e.Key, e.Ref.GUID)
		}
		// A fresher home also clears intents the move has satisfied.
		if st, live := c.intents[e.Key]; live && st.in.To == e.Ref.Endpoint {
			delete(c.intents, e.Key)
		}
	}
	if changed {
		c.rebuildSnapLocked()
	}
	return applies
}

// classApply is one pending local policy update from a class entry.
type classApply struct {
	class    string
	endpoint string // "" = local placement
	version  uint64 // epoch, recorded as applied only on success
}

// startCooldownLocked opens the intent-refusal window for an object's
// old and new identities.  Caller holds c.mu.
func (c *Coordinator) startCooldownLocked(key, newGUID string) {
	until := c.tick + uint64(c.cfg.CooldownTicks)
	c.cool[key] = until
	if newGUID != "" && newGUID != key {
		c.cool[newGUID] = until
	}
}

// newerEntry reports whether a should replace b for the same key.
func newerEntry(a, b wire.DirEntry) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	return a.Origin > b.Origin
}

// RecordMove publishes a migration into the directory: the object
// exported under key now lives at ref.  The node runtime calls this
// after every successful outbound migration (manual, adaptive or
// cluster-executed), so the directory tracks moves whichever path made
// them.  The moved object also enters its cooldown window, the
// cluster-wide ping-pong guard.
func (c *Coordinator) RecordMove(key, class string, ref wire.RemoteRef) {
	c.mu.Lock()
	v := c.dir[key].Version + 1
	c.dir[key] = wire.DirEntry{Key: key, Ref: ref, Version: v, Origin: c.cfg.ID}
	c.startCooldownLocked(key, ref.GUID)
	delete(c.intents, key)
	delete(c.rollups, key)
	c.rebuildSnapLocked()
	c.logLocked(Event{Kind: "dir", GUID: key, Class: class, To: ref.Endpoint, Detail: ref.GUID})
	fired := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.deliver(fired)
}

// RecordClassPlacement publishes a class placement (endpoint "" = local)
// as the next policy epoch for that class.  The local policy table has
// already been updated by whoever calls this; followers apply it as the
// entry gossips outward.
func (c *Coordinator) RecordClassPlacement(class, endpoint string) {
	key := "class:" + class
	c.mu.Lock()
	v := c.dir[key].Version + 1
	c.dir[key] = wire.DirEntry{
		Key:     key,
		Ref:     wire.RemoteRef{Endpoint: endpoint, Target: class},
		Version: v,
		Origin:  c.cfg.ID,
	}
	c.applied[class] = v
	c.rebuildSnapLocked()
	c.logLocked(Event{Kind: "dir", Class: class, To: endpoint})
	fired := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.deliver(fired)
}

// maxChain bounds chain-following during snapshot collapse (a cycle
// cannot arise from well-formed moves, but a malformed peer must not
// hang us).
const maxChain = 16

// rebuildSnapLocked republishes the collapsed resolution view.  Caller
// holds c.mu.
func (c *Coordinator) rebuildSnapLocked() {
	snap := make(map[string]wire.RemoteRef, len(c.dir))
	for key := range c.dir {
		if _, isClass := isClassKey(key); isClass {
			continue
		}
		ref := c.dir[key].Ref
		for hop := 0; hop < maxChain; hop++ {
			next, ok := c.dir[ref.GUID]
			if !ok || ref.GUID == key || ref.GUID == "" {
				break
			}
			ref = next.Ref
		}
		snap[key] = ref
	}
	c.dirSnap.Store(&snap)
}

// Resolve returns the directory's view of where the object behind guid
// lives now — already chain-collapsed, so the answer is the final home.
// Lock-free: proxies consult it on every remote invocation.
func (c *Coordinator) Resolve(guid string) (wire.RemoteRef, bool) {
	snap := c.dirSnap.Load()
	if snap == nil {
		return wire.RemoteRef{}, false
	}
	ref, ok := (*snap)[guid]
	return ref, ok
}

// resolveLocked is Resolve for callers already holding c.mu (reads the
// raw directory, following chains).
func (c *Coordinator) resolveLocked(guid string) (wire.RemoteRef, bool) {
	e, ok := c.dir[guid]
	if !ok {
		return wire.RemoteRef{}, false
	}
	ref := e.Ref
	for hop := 0; hop < maxChain; hop++ {
		next, ok := c.dir[ref.GUID]
		if !ok || ref.GUID == guid || ref.GUID == "" {
			break
		}
		ref = next.Ref
	}
	return ref, true
}

// Directory returns a copy of the raw directory entries, sorted by key.
func (c *Coordinator) Directory() []wire.DirEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.DirEntry, 0, len(c.dir))
	for _, e := range c.dir {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
