package cluster

import (
	"sort"

	"rafda/internal/wire"
)

// PeerHealth is a peer's liveness classification.
type PeerHealth uint8

// Liveness states: a peer whose heartbeat keeps advancing is alive;
// SuspectAfter ticks without an advance make it suspect (still gossiped
// to, so a partitioned peer recovers), DeadAfter ticks make it dead
// (dropped from gossip targets; its intents age out by TTL).
const (
	Alive PeerHealth = iota
	Suspect
	Dead
)

func (h PeerHealth) String() string {
	switch h {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// peerState is one peer's tracked liveness.
type peerState struct {
	digest      wire.PeerDigest
	lastAdvance uint64 // local tick the heartbeat last advanced
	health      PeerHealth
}

// PeerInfo is the public peer-table row.
type PeerInfo struct {
	ID        string
	Endpoint  string
	Heartbeat uint64
	Health    string
}

// mergeDigestLocked folds one membership digest into the peer table.
// Caller holds c.mu.
func (c *Coordinator) mergeDigestLocked(d wire.PeerDigest) {
	if d.ID == "" || d.ID == c.cfg.ID {
		return
	}
	ps, known := c.peers[d.ID]
	if !known {
		ps = &peerState{digest: d, lastAdvance: c.tick}
		if d.Leaving {
			ps.health = Dead
		}
		c.peers[d.ID] = ps
		kind := "peer-join"
		if d.Leaving {
			kind = "peer-leave"
		}
		c.logLocked(Event{Kind: kind, Peer: d.ID, From: d.Endpoint})
		return
	}
	if d.Leaving && ps.health != Dead {
		ps.digest = d
		ps.health = Dead
		c.logLocked(Event{Kind: "peer-leave", Peer: d.ID, From: d.Endpoint})
		return
	}
	if d.Heartbeat > ps.digest.Heartbeat && !ps.digest.Leaving {
		ps.digest = d
		ps.lastAdvance = c.tick
		if ps.health != Alive {
			ps.health = Alive
			c.logLocked(Event{Kind: "peer-join", Peer: d.ID, From: d.Endpoint,
				Detail: "recovered"})
		}
	}
}

// refreshPeersLocked walks the suspicion ladder: peers whose heartbeat
// stopped advancing turn suspect, then dead.  Caller holds c.mu.
func (c *Coordinator) refreshPeersLocked() {
	for id, ps := range c.peers {
		if ps.health == Dead {
			continue
		}
		idle := c.tick - ps.lastAdvance
		switch {
		case idle >= uint64(c.cfg.DeadAfter):
			ps.health = Dead
			c.logLocked(Event{Kind: "peer-dead", Peer: id, From: ps.digest.Endpoint})
		case idle >= uint64(c.cfg.SuspectAfter):
			if ps.health != Suspect {
				ps.health = Suspect
				c.logLocked(Event{Kind: "peer-suspect", Peer: id, From: ps.digest.Endpoint})
			}
		}
	}
}

// gossipTargets picks up to n live (alive or suspect) peer endpoints,
// shuffled by the seeded generator.  Caller holds c.mu.
func (c *Coordinator) gossipTargets(n int) []string {
	var eps []string
	for _, ps := range c.peers {
		if ps.health != Dead {
			eps = append(eps, ps.digest.Endpoint)
		}
	}
	sort.Strings(eps)
	c.rng.Shuffle(len(eps), func(i, j int) { eps[i], eps[j] = eps[j], eps[i] })
	if len(eps) > n {
		eps = eps[:n]
	}
	return eps
}

// Peers returns the public peer table, sorted by id.
func (c *Coordinator) Peers() []PeerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PeerInfo, 0, len(c.peers))
	for id, ps := range c.peers {
		out = append(out, PeerInfo{
			ID:        id,
			Endpoint:  ps.digest.Endpoint,
			Heartbeat: ps.digest.Heartbeat,
			Health:    ps.health.String(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
