// Package cluster is the coordination plane that turns a set of
// independent RAFDA nodes into one cluster: gossip-based membership with
// liveness (heartbeat + suspicion), a versioned placement directory
// (object GUID → current home, class → placement epoch) every member
// converges on, and reconciliation of placement intents so the per-node
// adaptive engines propose/reconcile/act instead of acting alone —
// including multi-hop decisions, where node A's view of the gossiped
// affinity evidence lets it propose moving an object it neither hosts
// nor receives (B→C, proposer A).
//
// Gossip piggybacks on the node's existing multiplexed connections: a
// round is one OpGossip request whose response carries the receiver's
// payload back (push-pull), so one round trip synchronises both peers
// and no second socket or protocol exists.
//
// # Thread safety and lock hierarchy
//
// The coordinator owns one mutex.  It is held only for in-memory state
// transitions — merging payloads, advancing the heartbeat, reconciling
// intents — and never across a network call or a migration: Tick
// collects due work under the lock, releases it, then gossips and
// executes.  HandleGossip (the dispatch-side entry point) merges and
// replies without calling out, so two nodes gossiping at each other
// concurrently cannot deadlock.  In the system-wide hierarchy the
// coordinator lock sits beside the node runtime, above nothing: code
// holding it may not touch connections, VM state or object gates
// (docs/CLUSTER.md, docs/CONCURRENCY.md).
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rafda/internal/wire"
)

// Runtime is the node-side capability set the coordinator drives.  All
// methods must be safe for concurrent use; Call and MigrateGUID may
// block on the network and are only invoked outside the coordinator
// lock.
type Runtime interface {
	// Call performs one request against endpoint through the node's
	// shared client cache, so gossip rides the connections invocations
	// already keep open.
	Call(endpoint string, req *wire.Request) (*wire.Response, error)
	// MigrateGUID migrates the locally hosted export guid to endpoint
	// and returns its new remote reference.
	MigrateGUID(guid, endpoint string) (wire.RemoteRef, error)
	// OwnsGUID reports whether guid is exported here as a live local
	// (migratable) object — i.e. this node is the object's home.
	OwnsGUID(guid string) bool
	// AffinitySamples returns window-delta caller-affinity rollups for
	// the hottest locally hosted objects (at most max), the evidence
	// gossip disseminates for multi-hop decisions.
	AffinitySamples(max int) []wire.ObjAffinity
	// ObservePeerRTT folds one gossip round trip into the node's
	// telemetry plane, keeping RTT estimates fresh for idle peers.
	ObservePeerRTT(endpoint string, d time.Duration)
	// ApplyClassPlacement points the node's policy table for class at
	// endpoint ("" = local placement).
	ApplyClassPlacement(class, endpoint string) error
}

// Config tunes a coordinator.  Zero fields take the defaults.
type Config struct {
	// ID is this node's unique cluster identity (its name); intent
	// reconciliation tie-breaks on it, so it must differ across members.
	ID string
	// Self is this node's cluster endpoint — the address peers gossip
	// to, and the home endpoint in directory entries for local objects.
	Self string
	// Runtime is the node-side capability set (required).
	Runtime Runtime
	// Heartbeat is the timed loop's tick period (Start); manual Tick
	// drives deterministic harnesses instead.
	Heartbeat time.Duration
	// Fanout is how many peers each tick gossips to.
	Fanout int
	// SuspectAfter is how many ticks without a heartbeat advance turn a
	// peer suspect; DeadAfter, dead.
	SuspectAfter int
	DeadAfter    int
	// SettleTicks is how long a winning intent must stay the winner
	// before the object's home executes it — the reconciliation window
	// in which a conflicting higher-priority intent can still arrive.
	SettleTicks int
	// CooldownTicks refuses new intents for an object for this many
	// ticks after it migrated — the cluster-wide ping-pong guard.
	CooldownTicks int
	// IntentTTL drops intents not re-asserted for this many ticks.
	IntentTTL int
	// RollupTTL drops affinity rollups not refreshed for this many
	// ticks.
	RollupTTL int
	// MaxRollups bounds the local affinity samples gossiped per tick.
	MaxRollups int
	// Propose enables the multi-hop rule on this member: evaluate the
	// gossiped affinity evidence and propose migrations anywhere in the
	// cluster.  Any subset of members may propose; reconciliation keeps
	// them consistent.
	Propose bool
	// Threshold is the dominant-caller share a multi-hop proposal needs.
	Threshold float64
	// MinCalls is the minimum rollup activity below which no multi-hop
	// proposal is made.
	MinCalls uint64
	// FollowClassPlacements applies gossiped class placement entries to
	// the local policy table, converging creation policy cluster-wide.
	FollowClassPlacements bool
	// LeaseTicks is how many local ticks a replica's read lease lasts
	// after direct primary contact; an expired lease falls reads back to
	// the primary (docs/REPLICATION.md).
	LeaseTicks int
	// OnPromote, when set, is called after this node promotes itself to
	// primary of a replica set whose old primary died: guid is the
	// object's cluster-wide key, selfGUID this node's replica export
	// that now carries the state.  The node runtime re-routes writes
	// from here (RecordMove).  Called outside the coordinator lock.
	OnPromote func(guid, class, selfGUID string)
	// OnDemote, when set, is called when a Version merge shows this node
	// was deposed as guid's primary while partitioned (split-brain
	// repair).  Called outside the coordinator lock.
	OnDemote func(guid string)
	// OnEvent observes every event as it is logged (called outside the
	// coordinator lock).
	OnEvent func(Event)
	// Seed fixes the gossip target shuffle for deterministic tests
	// (0 = seeded from the id).
	Seed int64
}

// Defaults.
const (
	DefaultHeartbeat     = 100 * time.Millisecond
	DefaultFanout        = 2
	DefaultSuspectAfter  = 5
	DefaultDeadAfter     = 15
	DefaultSettleTicks   = 2
	DefaultCooldownTicks = 16
	DefaultIntentTTL     = 8
	DefaultRollupTTL     = 4
	DefaultMaxRollups    = 8
	DefaultThreshold     = 0.6
	DefaultMinCalls      = 16
	// DefaultLeaseTicks matches the suspicion ladder: a replica stops
	// serving reads at the same horizon its peers would start doubting
	// the link that stopped renewing it.
	DefaultLeaseTicks = DefaultSuspectAfter
)

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.Fanout <= 0 {
		c.Fanout = DefaultFanout
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = max(DefaultDeadAfter, c.SuspectAfter+1)
	}
	if c.SettleTicks <= 0 {
		c.SettleTicks = DefaultSettleTicks
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = DefaultCooldownTicks
	}
	if c.IntentTTL <= 0 {
		c.IntentTTL = DefaultIntentTTL
	}
	if c.RollupTTL <= 0 {
		c.RollupTTL = DefaultRollupTTL
	}
	if c.MaxRollups <= 0 {
		c.MaxRollups = DefaultMaxRollups
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		c.Threshold = DefaultThreshold
	}
	if c.MinCalls == 0 {
		c.MinCalls = DefaultMinCalls
	}
	if c.LeaseTicks <= 0 {
		c.LeaseTicks = DefaultLeaseTicks
	}
	if c.Seed == 0 {
		for _, b := range []byte(c.ID) {
			c.Seed = c.Seed*131 + int64(b)
		}
		c.Seed++
	}
	return c
}

// Event is one observable coordination occurrence, for logs, tests and
// the E10 convergence trajectory.
type Event struct {
	Tick uint64
	// Kind is one of: peer-join, peer-suspect, peer-dead, peer-leave,
	// intent, propose, migrate, migrate-fail, dir, class-apply,
	// gossip-fail.
	Kind   string
	Peer   string
	GUID   string
	Class  string
	From   string
	To     string
	Detail string
}

// rollupState is one affinity rollup plus its local receipt tick.
type rollupState struct {
	s    wire.ObjAffinity
	seen uint64
}

// Coordinator is one node's membership in the cluster plane.  Safe for
// concurrent use.
type Coordinator struct {
	cfg Config
	rt  Runtime

	mu      sync.Mutex
	tick    uint64 // local tick == own heartbeat counter
	leaving bool
	peers   map[string]*peerState    // by node id
	dir     map[string]wire.DirEntry // raw merged directory, by key
	intents map[string]*intentState  // by object GUID
	cool    map[string]uint64        // guid -> tick the cooldown expires at
	rollups map[string]*rollupState  // by object GUID
	repl    map[string]*replState    // replica sets, by primary GUID
	applied map[string]uint64        // class -> directory version last applied locally
	events  []Event
	pending []Event // events this call, delivered to OnEvent after unlock
	rng     *rand.Rand

	// dirSnap is the chain-collapsed, lock-free resolution view consumed
	// on every proxy invocation (Resolve).
	dirSnap atomic.Pointer[map[string]wire.RemoteRef]
	// replSnap is the lock-free read-routing view consumed on every
	// classified-read proxy invocation (ReadTarget); tickAtomic mirrors
	// the tick counter so lease deadlines evaluate without the lock.
	replSnap   atomic.Pointer[map[string]replRoute]
	tickAtomic atomic.Uint64

	running bool
	stop    chan struct{}
	done    chan struct{}
}

// New builds a coordinator (not yet gossiping: call Join and then Start,
// or drive Tick manually).
func New(cfg Config) (*Coordinator, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: empty node id")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: node %s has no cluster endpoint (serve a transport first)", cfg.ID)
	}
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("cluster: nil runtime")
	}
	cfg = cfg.withDefaults()
	return &Coordinator{
		cfg:     cfg,
		rt:      cfg.Runtime,
		peers:   make(map[string]*peerState),
		dir:     make(map[string]wire.DirEntry),
		intents: make(map[string]*intentState),
		cool:    make(map[string]uint64),
		rollups: make(map[string]*rollupState),
		repl:    make(map[string]*replState),
		applied: make(map[string]uint64),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// ID returns the coordinator's node id.
func (c *Coordinator) ID() string { return c.cfg.ID }

// Self returns the coordinator's cluster endpoint.
func (c *Coordinator) Self() string { return c.cfg.Self }

// Join introduces this node to the cluster through the seed endpoints:
// one push-pull exchange per reachable seed.  Seeds pointing at
// ourselves are skipped; an error is returned only when every real seed
// is unreachable.
func (c *Coordinator) Join(seeds []string) error {
	var tried, ok int
	var lastErr error
	for _, ep := range seeds {
		if ep == "" || ep == c.cfg.Self {
			continue
		}
		tried++
		if err := c.gossipTo(ep); err != nil {
			lastErr = err
			continue
		}
		ok++
	}
	if tried > 0 && ok == 0 {
		return fmt.Errorf("cluster %s: no seed reachable: %w", c.cfg.ID, lastErr)
	}
	return nil
}

// Start launches the timed gossip loop (no-op while running).
func (c *Coordinator) Start() {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.stop, c.done = stop, done
	c.running = true
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(c.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Stop halts the timed loop, waiting out an in-flight tick.  The
// coordinator remains usable (manual Tick, HandleGossip) and can be
// Started again.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	stop, done := c.stop, c.done
	c.running = false
	c.mu.Unlock()
	close(stop)
	<-done
}

// Leave announces a graceful departure to the current gossip targets and
// stops the timed loop.  Peers drop the node without the suspicion
// ladder.
func (c *Coordinator) Leave() {
	c.Stop()
	c.mu.Lock()
	c.leaving = true
	payload := c.buildPayload()
	targets := c.gossipTargets(len(c.peers)) // tell everyone still alive
	c.mu.Unlock()
	for _, ep := range targets {
		req := &wire.Request{Op: wire.OpGossip, Cluster: payload}
		_, _ = c.rt.Call(ep, req)
	}
}

// Tick runs one coordination round: advance the heartbeat, refresh peer
// liveness, fold in local affinity evidence, evaluate the multi-hop
// rule, execute due (settled, won, local-home) intents, and gossip to
// Fanout peers.  Exported so tests and harnesses can step the plane
// deterministically; the timed loop calls it on every heartbeat.
func (c *Coordinator) Tick() {
	// Local telemetry first — a Runtime call, so outside the lock.
	samples := c.rt.AffinitySamples(c.cfg.MaxRollups)

	c.mu.Lock()
	c.tick++
	c.tickAtomic.Store(c.tick)
	for i := range samples {
		samples[i].Home = c.cfg.Self
		c.rollups[samples[i].GUID] = &rollupState{s: samples[i], seen: c.tick}
	}
	c.refreshPeersLocked()
	c.expireLocked()
	if c.cfg.Propose {
		c.proposeMultiHopLocked()
	}
	due := c.dueIntentsLocked()
	direct, promos := c.replicaTickLocked()
	targets := c.gossipTargets(c.cfg.Fanout)
	// Primaries gossip to every replica member each tick — that direct
	// contact is what renews read leases, so it must not depend on the
	// random fan-out happening to pick them.
	for _, ep := range direct {
		if !contains(targets, ep) {
			targets = append(targets, ep)
		}
	}
	fired := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.deliver(fired)
	for _, p := range promos {
		if c.cfg.OnPromote != nil {
			c.cfg.OnPromote(p.guid, p.class, p.selfGUID)
		}
	}

	// Execute won intents (we are the home): the migration goes through
	// the node's ordinary Migrate path, which takes the object's gate
	// and notifies RecordMove on success.
	for _, in := range due {
		_, err := c.rt.MigrateGUID(in.GUID, in.To)
		c.mu.Lock()
		if err != nil {
			c.logLocked(Event{Kind: "migrate-fail", GUID: in.GUID, Class: in.Class,
				From: in.From, To: in.To, Detail: err.Error()})
			delete(c.intents, in.GUID)
		} else {
			c.logLocked(Event{Kind: "migrate", GUID: in.GUID, Class: in.Class,
				From: in.From, To: in.To, Peer: in.Proposer, Detail: in.Reason})
		}
		fired = c.pending
		c.pending = nil
		c.mu.Unlock()
		c.deliver(fired)
	}

	for _, ep := range targets {
		if err := c.gossipTo(ep); err != nil {
			c.mu.Lock()
			c.logLocked(Event{Kind: "gossip-fail", Peer: ep, Detail: err.Error()})
			fired = c.pending
			c.pending = nil
			c.mu.Unlock()
			c.deliver(fired)
		}
	}
}

// gossipTo performs one push-pull exchange with the peer at ep and
// merges the reply.
func (c *Coordinator) gossipTo(ep string) error {
	c.mu.Lock()
	payload := c.buildPayload()
	c.mu.Unlock()
	req := &wire.Request{Op: wire.OpGossip, Cluster: payload}
	t0 := time.Now()
	resp, err := c.rt.Call(ep, req)
	if err != nil {
		return err
	}
	c.rt.ObservePeerRTT(ep, time.Since(t0))
	if resp.Err != "" {
		return fmt.Errorf("gossip to %s: %s", ep, resp.Err)
	}
	c.merge(resp.Cluster)
	return nil
}

// HandleGossip serves one inbound gossip exchange (the node dispatches
// OpGossip here): merge the sender's payload, answer with ours.  It
// never calls out, so concurrent exchanges between two nodes cannot
// deadlock.
func (c *Coordinator) HandleGossip(in *wire.ClusterPayload) *wire.ClusterPayload {
	c.merge(in)
	c.mu.Lock()
	out := c.buildPayload()
	c.mu.Unlock()
	return out
}

// merge folds a received payload into local state and fires resulting
// events and class-placement applications.
func (c *Coordinator) merge(in *wire.ClusterPayload) {
	if in == nil {
		return
	}
	c.mu.Lock()
	c.mergeDigestLocked(in.From)
	for _, d := range in.Peers {
		c.mergeDigestLocked(d)
	}
	applies := c.mergeDirLocked(in.Dir)
	for _, i := range in.Intents {
		c.mergeIntentLocked(i)
	}
	for _, s := range in.Stats {
		if s.Home == c.cfg.Self {
			continue // our own rollups come from telemetry, not echoes
		}
		c.rollups[s.GUID] = &rollupState{s: s, seen: c.tick}
	}
	demoted := c.mergeReplicasLocked(in.Replicas, in.From)
	fired := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.deliver(fired)
	for _, guid := range demoted {
		if c.cfg.OnDemote != nil {
			c.cfg.OnDemote(guid)
		}
	}

	// Apply class placements outside the lock (policy table has its own
	// synchronisation).  The epoch is recorded as applied only on
	// success, so a failed apply is retried on the next gossip of the
	// same entry rather than silently diverging forever.
	for _, a := range applies {
		err := c.rt.ApplyClassPlacement(a.class, a.endpoint)
		c.mu.Lock()
		if err != nil {
			c.logLocked(Event{Kind: "class-apply", Class: a.class, To: a.endpoint, Detail: err.Error()})
		} else {
			if c.applied[a.class] < a.version {
				c.applied[a.class] = a.version
			}
			c.logLocked(Event{Kind: "class-apply", Class: a.class, To: a.endpoint})
		}
		fired = c.pending
		c.pending = nil
		c.mu.Unlock()
		c.deliver(fired)
	}
}

// buildPayload assembles this node's gossip contribution.  Caller holds
// c.mu.
func (c *Coordinator) buildPayload() *wire.ClusterPayload {
	p := &wire.ClusterPayload{From: wire.PeerDigest{
		ID: c.cfg.ID, Endpoint: c.cfg.Self, Heartbeat: c.tick, Leaving: c.leaving,
	}}
	for _, ps := range c.peers {
		p.Peers = append(p.Peers, ps.digest)
	}
	sort.Slice(p.Peers, func(i, j int) bool { return p.Peers[i].ID < p.Peers[j].ID })
	for _, e := range c.dir {
		p.Dir = append(p.Dir, e)
	}
	sort.Slice(p.Dir, func(i, j int) bool { return p.Dir[i].Key < p.Dir[j].Key })
	// Intents and rollups are origin-gossiped: a member re-emits only
	// what it proposed (or hosts) itself.  Relaying would let two peers
	// echo each other's copies and refresh lastSeen/seen forever, so
	// the TTLs could never fire and a dead proposer's intent (or a
	// stale rollup) would circulate indefinitely.  The origin re-emits
	// every tick while the evidence persists, so liveness is exactly
	// "the origin still means it".
	for _, st := range c.intents {
		if st.in.Proposer == c.cfg.ID {
			p.Intents = append(p.Intents, st.in)
		}
	}
	sort.Slice(p.Intents, func(i, j int) bool { return p.Intents[i].GUID < p.Intents[j].GUID })
	for _, r := range c.rollups {
		if r.s.Home == c.cfg.Self && c.tick-r.seen < uint64(c.cfg.RollupTTL) {
			p.Stats = append(p.Stats, r.s)
		}
	}
	sort.Slice(p.Stats, func(i, j int) bool { return p.Stats[i].GUID < p.Stats[j].GUID })
	// Replica sets relay like directory entries (versioned state, not
	// origin-gossiped evidence): pure callers need the routes too, and
	// the merge order makes echoes harmless.  Tombstones travel so drops
	// converge.
	for _, st := range c.repl {
		p.Replicas = append(p.Replicas, st.set)
	}
	sort.Slice(p.Replicas, func(i, j int) bool { return p.Replicas[i].GUID < p.Replicas[j].GUID })
	return p
}

// contains reports whether eps holds ep (small slices only).
func contains(eps []string, ep string) bool {
	for _, e := range eps {
		if e == ep {
			return true
		}
	}
	return false
}

// expireLocked drops intents and rollups that have not been re-asserted
// within their TTLs.  Caller holds c.mu.
func (c *Coordinator) expireLocked() {
	for g, st := range c.intents {
		if c.tick-st.lastSeen >= uint64(c.cfg.IntentTTL) {
			delete(c.intents, g)
		}
	}
	for g, r := range c.rollups {
		if c.tick-r.seen >= uint64(c.cfg.RollupTTL) {
			delete(c.rollups, g)
		}
	}
	for g, until := range c.cool {
		if c.tick >= until {
			delete(c.cool, g)
		}
	}
}

// proposeMultiHopLocked evaluates the gossiped affinity evidence: an
// object (wherever it lives) whose dominant caller holds at least
// Threshold of a rollup window's calls, and is not its home, draws a
// migration intent from this node — the multi-hop case when neither the
// home nor the dominant caller is us.  Caller holds c.mu.
func (c *Coordinator) proposeMultiHopLocked() {
	for _, r := range c.rollups {
		s := r.s
		if s.Calls < c.cfg.MinCalls {
			continue
		}
		var bestEp string
		var best uint64
		for _, ec := range s.Callers {
			if ec.Calls > best || (ec.Calls == best && ec.Endpoint < bestEp) {
				bestEp, best = ec.Endpoint, ec.Calls
			}
		}
		if bestEp == "" || bestEp == s.Home {
			continue
		}
		if float64(best)/float64(s.Calls) < c.cfg.Threshold {
			continue
		}
		if home, ok := c.resolveLocked(s.GUID); ok && home.Endpoint != s.Home {
			continue // rollup is stale: the object has already moved
		}
		if _, cooling := c.cool[s.GUID]; cooling {
			continue
		}
		in := wire.Intent{
			GUID: s.GUID, Class: s.Class, From: s.Home, To: bestEp,
			Proposer: c.cfg.ID, Priority: int64(best),
			Reason: fmt.Sprintf("rollup: %d/%d calls from %s", best, s.Calls, bestEp),
		}
		if c.mergeIntentLocked(in) {
			c.logLocked(Event{Kind: "propose", GUID: in.GUID, Class: in.Class,
				From: in.From, To: in.To, Peer: c.cfg.ID, Detail: in.Reason})
		}
	}
}

// deliver fires OnEvent callbacks outside the coordinator lock.
func (c *Coordinator) deliver(events []Event) {
	if c.cfg.OnEvent == nil {
		return
	}
	for _, e := range events {
		c.cfg.OnEvent(e)
	}
}

// maxEventLog bounds the retained event log (Seq-free: the log is a
// debugging and experiment aid, OnEvent sees everything).
const maxEventLog = 512

// logLocked appends an event.  Caller holds c.mu.
func (c *Coordinator) logLocked(e Event) {
	e.Tick = c.tick
	if len(c.events) >= maxEventLog {
		n := copy(c.events, c.events[len(c.events)-maxEventLog/2:])
		c.events = c.events[:n]
	}
	c.events = append(c.events, e)
	c.pending = append(c.pending, e)
}

// Events returns a copy of the retained event log.
func (c *Coordinator) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// isClassKey reports whether a directory key names a class placement.
func isClassKey(key string) (string, bool) {
	return strings.CutPrefix(key, "class:")
}
