package cluster

import (
	"fmt"

	"rafda/internal/wire"
)

// Placement intents are how the cluster decides *before* acting.  Any
// member may propose moving any object (its own adapt engine delegating
// a local decision, or the multi-hop rule acting on gossiped evidence);
// conflicting intents for one object reconcile to a single deterministic
// winner everywhere, the winner must stay stable for SettleTicks, and
// only the object's home executes it.  The result: engines that used to
// act unilaterally — and could ping-pong an object between two nodes
// that each saw themselves as the dominant caller — now converge on one
// stable home.

// intentState tracks one object's current winning intent.
type intentState struct {
	in       wire.Intent
	since    uint64 // tick the current winner became the winner
	lastSeen uint64 // tick the intent was last asserted
}

// betterIntent reports whether a beats b in reconciliation: higher
// priority wins; ties break on lexicographically smaller proposer id,
// then smaller destination — a total order, so every member picks the
// same winner from the same set.
func betterIntent(a, b wire.Intent) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Proposer != b.Proposer {
		return a.Proposer < b.Proposer
	}
	return a.To < b.To
}

// mergeIntentLocked folds one intent into the reconciliation table,
// reporting whether it became (or refreshed) the winner.  Intents for
// cooling-down or already-satisfied objects are refused.  Caller holds
// c.mu.
func (c *Coordinator) mergeIntentLocked(in wire.Intent) bool {
	if in.GUID == "" || in.To == "" || in.To == in.From {
		return false
	}
	if _, cooling := c.cool[in.GUID]; cooling {
		return false
	}
	if home, ok := c.resolveLocked(in.GUID); ok && home.Endpoint == in.To {
		return false // already there
	}
	st, ok := c.intents[in.GUID]
	if !ok {
		c.intents[in.GUID] = &intentState{in: in, since: c.tick, lastSeen: c.tick}
		c.logLocked(Event{Kind: "intent", GUID: in.GUID, Class: in.Class,
			From: in.From, To: in.To, Peer: in.Proposer,
			Detail: fmt.Sprintf("priority %d: %s", in.Priority, in.Reason)})
		return true
	}
	st.lastSeen = c.tick
	if in == st.in {
		return true // re-assertion of the current winner
	}
	if betterIntent(in, st.in) {
		// A new winner restarts the settle clock: every member converges
		// on it before anyone executes.
		st.in = in
		st.since = c.tick
		c.logLocked(Event{Kind: "intent", GUID: in.GUID, Class: in.Class,
			From: in.From, To: in.To, Peer: in.Proposer,
			Detail: fmt.Sprintf("priority %d supersedes: %s", in.Priority, in.Reason)})
		return true
	}
	return false
}

// Submit offers a locally generated intent (the adapt engine's
// delegation path).  From defaults to this node's endpoint and Proposer
// to its id.  The returned reason explains a refusal ("" when accepted).
func (c *Coordinator) Submit(in wire.Intent) (accepted bool, reason string) {
	if in.Proposer == "" {
		in.Proposer = c.cfg.ID
	}
	if in.From == "" {
		// Unknown source: take the directory's word, if it has one (From
		// is advisory — the executing home checks ownership itself).
		if home, ok := c.Resolve(in.GUID); ok {
			in.From = home.Endpoint
		}
	}
	c.mu.Lock()
	switch {
	case in.GUID == "" || in.To == "":
		reason = "malformed intent"
	case in.From != "" && in.To == in.From:
		reason = "destination is the current home"
	default:
		if _, cooling := c.cool[in.GUID]; cooling {
			reason = "object is cooling down after a recent migration"
			break
		}
		if home, ok := c.resolveLocked(in.GUID); ok && home.Endpoint == in.To {
			reason = "directory already places the object there"
			break
		}
		if !c.mergeIntentLocked(in) {
			reason = "outweighed by a competing intent"
			break
		}
		accepted = true
	}
	fired := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.deliver(fired)
	return accepted, reason
}

// dueIntentsLocked collects the intents this node must execute now: we
// are the object's home (we own the live export), the intent has been
// the stable winner for SettleTicks, and no cooldown blocks it.  The
// returned intents are executed by Tick outside the lock.  Caller holds
// c.mu.
func (c *Coordinator) dueIntentsLocked() []wire.Intent {
	var due []wire.Intent
	for g, st := range c.intents {
		if c.tick-st.since < uint64(c.cfg.SettleTicks) {
			continue
		}
		if _, cooling := c.cool[g]; cooling {
			delete(c.intents, g)
			continue
		}
		if st.in.To == c.cfg.Self && c.rt.OwnsGUID(g) {
			// Satisfied trivially: the object is already here.
			delete(c.intents, g)
			continue
		}
		if !c.rt.OwnsGUID(g) {
			continue // not home: the home node executes
		}
		due = append(due, st.in)
	}
	return due
}

// Intents returns a copy of the live reconciliation table (winners
// only), for tests and diagnostics.
func (c *Coordinator) Intents() []wire.Intent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Intent, 0, len(c.intents))
	for _, st := range c.intents {
		out = append(out, st.in)
	}
	return out
}
