package cluster

import (
	"sort"
	"time"

	"rafda/internal/wire"
)

// The replica plane tracks which objects are read-replicated, where the
// copies live, and who may serve what (docs/REPLICATION.md):
//
//   - a replica set is keyed by the primary's exported GUID and merged
//     like a directory entry, ordered by (Version, Epoch, Origin):
//     membership changes bump Version, writes bump Epoch under an
//     unchanged Version, and Origin is the deterministic tie-break.
//     Sets relay through every member's gossip so pure callers (nodes
//     holding neither primary nor replica) still learn the routes;
//   - replicas hold a read lease measured in local ticks, renewed ONLY
//     by direct contact with the primary — a payload whose From digest
//     is the primary itself, either its push to us or its half of a
//     push-pull round we initiated.  Relayed copies of the set renew
//     nothing: a replica partitioned from its primary must fall back to
//     primary-only reads after LeaseTicks even if third parties keep
//     echoing the set to it;
//   - the primary gossips directly to its replicas every tick (in
//     addition to the random fan-out), so a healthy link keeps leases
//     alive with no extra message class;
//   - when the primary's peer entry turns Dead, the lexicographically
//     smallest live replica endpoint promotes itself: Version+1, same
//     Epoch, itself removed from the member list, and the node runtime
//     notified (Config.OnPromote) so it can re-export the state and
//     re-route writes through RecordMove.  A deposed primary that
//     reconnects loses the Version merge and is told to stand down
//     (Config.OnDemote).
//
// Every write the primary acknowledges has either reached all replicas
// or evicted the unreachable ones AND waited out their leases — so no
// replica can serve a read older than the last acknowledged write.

// replState is one replica set plus this node's lease on it (meaningful
// only when this node is one of the members).
type replState struct {
	set wire.ReplicaSet
	// leaseUntil is the local tick the read lease expires at (replica
	// side; zero = no lease).
	leaseUntil uint64
}

// ReadRoute is the resolution answer for one read invocation.
type ReadRoute struct {
	// Endpoint is where the read should go.
	Endpoint string
	// GUID is the object identity at that endpoint (the replica's own
	// exported GUID, or the primary's).
	GUID string
	// Local reports the endpoint is this node itself: the caller holds a
	// lease-valid replica and should execute the read locally.
	Local bool
	// Epoch is the set's last acked write epoch at snapshot time.
	Epoch uint64
}

// promotion is one deferred OnPromote callback (fired outside the lock).
type promotion struct {
	guid  string
	class string
	// selfGUID is this node's replica GUID, becoming the object's new
	// primary identity.
	selfGUID string
}

// newerSet reports whether a should replace b for the same key.
func newerSet(a, b wire.ReplicaSet) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	return a.Origin > b.Origin
}

// RecordReplicaSet publishes this node's replica set for the object it
// primaries: called by the node runtime after installing replicas and
// after every membership change.  Version advances past whatever the
// plane already knows; Origin is stamped here.
func (c *Coordinator) RecordReplicaSet(set wire.ReplicaSet) {
	c.mu.Lock()
	set.Version = c.replVersionLocked(set.GUID) + 1
	set.Origin = c.cfg.ID
	c.repl[set.GUID] = &replState{set: set}
	c.rebuildReplSnapLocked()
	c.logLocked(Event{Kind: "replica-set", GUID: set.GUID, Class: set.Class,
		To: set.Primary, Detail: memberList(set)})
	fired := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.deliver(fired)
}

// UpdateReplicaEpoch records a write the primary has fully acknowledged:
// every replica holds epoch, so reads at that epoch are current.  Called
// by the node runtime at the end of its write fan-out; Version is
// untouched (same membership, newer data).
func (c *Coordinator) UpdateReplicaEpoch(guid string, epoch uint64) {
	c.mu.Lock()
	if st, ok := c.repl[guid]; ok && st.set.Epoch < epoch {
		st.set.Epoch = epoch
		c.rebuildReplSnapLocked()
	}
	c.mu.Unlock()
}

// EvictReplica removes one unreachable member from a set this node
// primaries and returns how long the caller must wait before
// acknowledging the write that triggered the eviction: the evicted
// replica renews only on direct contact with us, so after its lease
// window passes it has stopped serving reads — stale ones included.
// The extra tick covers phase skew between the two nodes' tickers.
func (c *Coordinator) EvictReplica(guid, endpoint string) time.Duration {
	c.mu.Lock()
	st, ok := c.repl[guid]
	if ok {
		kept := st.set.Replicas[:0]
		for _, r := range st.set.Replicas {
			if r.Endpoint != endpoint {
				kept = append(kept, r)
			}
		}
		st.set.Replicas = kept
		st.set.Version++
		st.set.Origin = c.cfg.ID
		c.rebuildReplSnapLocked()
		c.logLocked(Event{Kind: "replica-evict", GUID: guid, Class: st.set.Class,
			From: endpoint, Detail: memberList(st.set)})
	}
	fired := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.deliver(fired)
	if !ok {
		return 0
	}
	return time.Duration(c.cfg.LeaseTicks+1) * c.cfg.Heartbeat
}

// DropReplicaSet dissolves a set this node primaries: a tombstone
// (no primary, no members) that wins the Version merge and gossips
// outward, so every member stops routing reads to the former replicas.
func (c *Coordinator) DropReplicaSet(guid string) {
	c.mu.Lock()
	if st, ok := c.repl[guid]; ok {
		st.set = wire.ReplicaSet{GUID: guid, Class: st.set.Class,
			Version: st.set.Version + 1, Epoch: st.set.Epoch, Origin: c.cfg.ID}
		st.leaseUntil = 0
		c.rebuildReplSnapLocked()
		c.logLocked(Event{Kind: "replica-drop", GUID: guid, Class: st.set.Class})
	}
	fired := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.deliver(fired)
}

// ReplicaSet returns the plane's current view of guid's set.
func (c *Coordinator) ReplicaSet(guid string) (wire.ReplicaSet, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.repl[guid]
	if !ok {
		return wire.ReplicaSet{}, false
	}
	return st.set, true
}

// ReplicaSets returns every known set, sorted by GUID.
func (c *Coordinator) ReplicaSets() []wire.ReplicaSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.ReplicaSet, 0, len(c.repl))
	for _, st := range c.repl {
		out = append(out, st.set)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GUID < out[j].GUID })
	return out
}

// replRoute is the per-object entry of the lock-free read-routing
// snapshot.
type replRoute struct {
	primary  string
	epoch    uint64
	self     bool   // this node holds a replica
	selfGUID string // ...exported under this GUID
	// leaseUntil gates self-serving: local reads are allowed only while
	// the lease outlives the current tick.
	leaseUntil uint64
	// others are live replica members elsewhere (sorted by endpoint).
	others []wire.ReplicaInfo
}

// rebuildReplSnapLocked republishes the read-routing view.  Caller
// holds c.mu.
func (c *Coordinator) rebuildReplSnapLocked() {
	snap := make(map[string]replRoute, len(c.repl))
	for guid, st := range c.repl {
		if st.set.Primary == "" {
			continue // tombstone
		}
		rt := replRoute{primary: st.set.Primary, epoch: st.set.Epoch, leaseUntil: st.leaseUntil}
		for _, r := range st.set.Replicas {
			if r.Endpoint == c.cfg.Self {
				rt.self, rt.selfGUID = true, r.GUID
				continue
			}
			if !c.endpointDeadLocked(r.Endpoint) {
				rt.others = append(rt.others, r)
			}
		}
		sort.Slice(rt.others, func(i, j int) bool { return rt.others[i].Endpoint < rt.others[j].Endpoint })
		snap[guid] = rt
	}
	c.replSnap.Store(&snap)
}

// ReadTarget resolves one read invocation against guid's replica set:
// this node's own replica while its lease is valid, otherwise a live
// remote replica (deterministic pick), otherwise the primary.  Lock-free
// — proxies consult it on every classified-read call.  The second result
// is false when the object has no live replica set and reads should
// follow the ordinary resolution path.
func (c *Coordinator) ReadTarget(guid string) (ReadRoute, bool) {
	snap := c.replSnap.Load()
	if snap == nil {
		return ReadRoute{}, false
	}
	rt, ok := (*snap)[guid]
	if !ok {
		return ReadRoute{}, false
	}
	if rt.self && rt.leaseUntil > c.tickAtomic.Load() {
		return ReadRoute{Endpoint: c.cfg.Self, GUID: rt.selfGUID, Local: true, Epoch: rt.epoch}, true
	}
	if len(rt.others) > 0 {
		r := rt.others[0]
		return ReadRoute{Endpoint: r.Endpoint, GUID: r.GUID, Epoch: rt.epoch}, true
	}
	return ReadRoute{Endpoint: rt.primary, GUID: guid, Epoch: rt.epoch}, true
}

// LeaseValid reports whether this node's replica of guid may still serve
// reads (used by the dispatch side to refuse reads on an expired lease,
// the primary-partition fallback).
func (c *Coordinator) LeaseValid(guid string) bool {
	snap := c.replSnap.Load()
	if snap == nil {
		return false
	}
	rt, ok := (*snap)[guid]
	return ok && rt.self && rt.leaseUntil > c.tickAtomic.Load()
}

// mergeReplicasLocked folds received sets into the plane.  from is the
// payload's sender digest: a set whose primary IS the sender renews this
// node's lease, because that payload proves direct primary contact.
// Caller holds c.mu; returns deferred demotion callbacks.
func (c *Coordinator) mergeReplicasLocked(sets []wire.ReplicaSet, from wire.PeerDigest) []string {
	var demoted []string
	changed := false
	for _, set := range sets {
		if set.GUID == "" {
			continue
		}
		st, known := c.repl[set.GUID]
		if !known {
			st = &replState{}
			c.repl[set.GUID] = st
		}
		if !known || newerSet(set, st.set) {
			// Losing the Version merge while believing ourselves primary
			// means we were failed over while partitioned: stand down.
			if st.set.Primary == c.cfg.Self && set.Primary != c.cfg.Self && st.set.Primary != "" {
				demoted = append(demoted, set.GUID)
				c.logLocked(Event{Kind: "replica-demote", GUID: set.GUID,
					Class: set.Class, To: set.Primary})
			}
			st.set = set
			changed = true
		}
		if from.Endpoint == st.set.Primary && replicaMember(st.set, c.cfg.Self) {
			st.leaseUntil = c.tick + uint64(c.cfg.LeaseTicks)
			changed = true
		}
	}
	if changed {
		c.rebuildReplSnapLocked()
	}
	return demoted
}

// replicaTickLocked runs the per-tick replica work: expire nothing (the
// lease is a deadline, not a TTL map), but detect dead primaries and
// promote when this node is the smallest live replica.  Caller holds
// c.mu; returns the endpoints the primary side must gossip to directly
// plus deferred promotion callbacks.
func (c *Coordinator) replicaTickLocked() (direct []string, promos []promotion) {
	seen := map[string]bool{c.cfg.Self: true}
	for guid, st := range c.repl {
		set := st.set
		if set.Primary == "" {
			continue
		}
		if set.Primary == c.cfg.Self {
			// Primary: direct gossip to every member keeps their leases
			// renewed through a healthy link.
			for _, r := range set.Replicas {
				if !seen[r.Endpoint] {
					seen[r.Endpoint] = true
					direct = append(direct, r.Endpoint)
				}
			}
			continue
		}
		if !replicaMember(set, c.cfg.Self) || !c.endpointDeadLocked(set.Primary) {
			continue
		}
		// Primary is dead: the smallest live replica endpoint takes over.
		live := []string{c.cfg.Self}
		var selfGUID string
		for _, r := range set.Replicas {
			if r.Endpoint == c.cfg.Self {
				selfGUID = r.GUID
				continue
			}
			if !c.endpointDeadLocked(r.Endpoint) {
				live = append(live, r.Endpoint)
			}
		}
		sort.Strings(live)
		if live[0] != c.cfg.Self {
			continue
		}
		kept := make([]wire.ReplicaInfo, 0, len(set.Replicas))
		for _, r := range set.Replicas {
			if r.Endpoint != c.cfg.Self {
				kept = append(kept, r)
			}
		}
		st.set.Primary = c.cfg.Self
		st.set.Replicas = kept
		st.set.Version++
		st.set.Origin = c.cfg.ID
		st.leaseUntil = 0
		promos = append(promos, promotion{guid: guid, class: set.Class, selfGUID: selfGUID})
		c.logLocked(Event{Kind: "replica-promote", GUID: guid, Class: set.Class,
			From: set.Primary, To: c.cfg.Self, Detail: selfGUID})
	}
	if len(promos) > 0 {
		c.rebuildReplSnapLocked()
	}
	sort.Strings(direct)
	return direct, promos
}

// endpointDeadLocked reports whether the peer serving ep is known dead.
// Unknown endpoints are presumed alive: promotion must never trigger on
// ignorance.  Caller holds c.mu.
func (c *Coordinator) endpointDeadLocked(ep string) bool {
	for _, ps := range c.peers {
		if ps.digest.Endpoint == ep {
			return ps.health == Dead
		}
	}
	return false
}

// replVersionLocked returns the known version for guid's set (0 when
// unknown).  Caller holds c.mu.
func (c *Coordinator) replVersionLocked(guid string) uint64 {
	if st, ok := c.repl[guid]; ok {
		return st.set.Version
	}
	return 0
}

// replicaMember reports whether ep holds a replica in set.
func replicaMember(set wire.ReplicaSet, ep string) bool {
	for _, r := range set.Replicas {
		if r.Endpoint == ep {
			return true
		}
	}
	return false
}

// memberList renders a set's membership for event logs.
func memberList(set wire.ReplicaSet) string {
	eps := make([]string, 0, len(set.Replicas))
	for _, r := range set.Replicas {
		eps = append(eps, r.Endpoint)
	}
	sort.Strings(eps)
	out := "replicas:"
	for i, ep := range eps {
		if i > 0 {
			out += ","
		}
		out += ep
	}
	return out
}
