package intercept

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rafda/internal/telemetry"
	"rafda/internal/wire"
)

// The proactive shedding tier: three policies that refuse work while
// the server still has headroom to say no cheaply, instead of queueing
// until deadlines burn out.  All three key off the shared inflight
// gauge (telemetry.OverloadStats.Inflight, maintained by the RRP
// transport around each dispatch slot) and the transport-measured slot
// wait — they engage only on transports that maintain those signals.
// Every shed response carries the "load-shed:" marker so clients and
// the E15 harness can bucket them.
//
// Ordering contract (enforced by the node's chain assembly): shedding
// runs after the control plane (ping/gossip/introspect stay answerable
// under overload) and strictly before dedup Begin — a shed must never
// be recorded as a logical call's permanent replay response, or one
// unlucky first attempt would replay its shed to every retry.

// ShedConfig carries the shedding knobs, zero meaning "policy off".
type ShedConfig struct {
	// PriorityAt is the inflight depth at which strict-priority
	// admission engages: class-0 calls shed once the gauge reaches
	// PriorityAt, class-p calls once it reaches PriorityAt<<p.
	PriorityAt int
	// FairShareAt is the inflight depth at which per-tenant fair-share
	// admission engages: past it, a tenant holding more than its
	// 1/active share of FairShareAt slots is shed.
	FairShareAt int
	// CoDelTarget enables the CoDel queue controller: slot waits above
	// the target that persist for a full CoDelInterval start a drop
	// cycle with the classic inverse-sqrt control law.
	CoDelTarget time.Duration
	// CoDelInterval is the CoDel sliding window; defaulted to 100ms
	// (the published rule of thumb) when a target is set without it.
	CoDelInterval time.Duration
}

// Enabled reports whether any policy is configured.
func (c ShedConfig) Enabled() bool {
	return c.PriorityAt > 0 || c.FairShareAt > 0 || c.CoDelTarget > 0
}

// maxPriorityShift caps the admission-threshold doubling so a hostile
// priority value cannot shift the threshold past overflow into
// effectively unbounded admission.
const maxPriorityShift = 8

// tenantMax bounds the fair-share tenant table and the per-tenant shed
// table, mirroring trace/keyed.go: the first tenantMax distinct callers
// get their own entry, the rest fold into "~other" — bounded memory
// under caller-id churn at the cost of blurring the long tail.
const tenantMax = 256

const tenantOther = "~other"

// ShedStats itemises shed decisions by the axis each policy acts on:
// per priority class for the strict-priority policy, per tenant for
// fair-share.  Bounded like the keyed latency digests; nil-safe.
type ShedStats struct {
	priority sync.Map // uint32 (clamped class) -> *atomic.Uint64
	tenant   sync.Map // caller string -> *atomic.Uint64
	tenantN  atomic.Int64
}

func (s *ShedStats) notePriority(class uint32) {
	if s == nil {
		return
	}
	if class > maxPriorityShift {
		class = maxPriorityShift
	}
	c, ok := s.priority.Load(class)
	if !ok {
		c, _ = s.priority.LoadOrStore(class, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(1)
}

func (s *ShedStats) noteTenant(caller string) {
	if s == nil {
		return
	}
	if caller == "" {
		caller = "~anonymous"
	}
	c, ok := s.tenant.Load(caller)
	if !ok {
		if s.tenantN.Load() >= tenantMax {
			caller = tenantOther
			c, ok = s.tenant.Load(caller)
		}
		if !ok {
			var loaded bool
			c, loaded = s.tenant.LoadOrStore(caller, new(atomic.Uint64))
			if !loaded {
				s.tenantN.Add(1)
			}
		}
	}
	c.(*atomic.Uint64).Add(1)
}

// ShedSample is a ShedStats snapshot for the introspection plane.
type ShedSample struct {
	// ByPriority maps the decimal priority class to its shed count.
	ByPriority map[string]uint64 `json:"by_priority,omitempty"`
	// ByTenant maps the caller endpoint (or "~other") to its shed count.
	ByTenant map[string]uint64 `json:"by_tenant,omitempty"`
}

// Snapshot reads the tables; nil-safe.
func (s *ShedStats) Snapshot() ShedSample {
	var out ShedSample
	if s == nil {
		return out
	}
	s.priority.Range(func(k, v any) bool {
		if out.ByPriority == nil {
			out.ByPriority = make(map[string]uint64)
		}
		out.ByPriority[itoa(uint64(k.(uint32)))] = v.(*atomic.Uint64).Load()
		return true
	})
	s.tenant.Range(func(k, v any) bool {
		if out.ByTenant == nil {
			out.ByTenant = make(map[string]uint64)
		}
		out.ByTenant[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return out
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Priority returns the strict-priority admission interceptor: a class-p
// request is shed while the inflight gauge sits at or above
// at<<min(p,maxPriorityShift).  The gauge includes the request's own
// slot (the transport bumps it before dispatch runs), so with at=N the
// N-th concurrent class-0 call is the first one shed — deterministic
// under concurrent arrival.
func Priority(at int, ov *telemetry.OverloadStats, stats *ShedStats) Interceptor {
	return func(cc *CallCtx, next Handler) (*wire.Response, error) {
		p := cc.Req.Priority
		if p > maxPriorityShift {
			p = maxPriorityShift
		}
		threshold := int64(at) << p
		if inflight := ov.Inflight.Load(); inflight >= threshold {
			ov.NoteShedPriority()
			stats.notePriority(p)
			return wire.Errorf(cc.Req,
				"load-shed: priority class %d refused at inflight %d (threshold %d)",
				cc.Req.Priority, inflight, threshold), nil
		}
		return next(cc)
	}
}

// FairShare returns the per-tenant fair-share admission interceptor.
// Each tenant (wire.Request.Caller) has a live inflight counter in a
// bounded table; once the global gauge reaches at, a tenant holding
// more than at/active slots — its equal share of the engaged capacity
// among currently-active tenants — is shed.  The counter is bumped
// before the check (the request counts itself), so with a share of S
// a tenant's S+1-th concurrent call is deterministically the first
// refused no matter how the scheduler interleaves arrivals.
func FairShare(at int, ov *telemetry.OverloadStats, stats *ShedStats) Interceptor {
	f := &fairTable{}
	return func(cc *CallCtx, next Handler) (*wire.Response, error) {
		slot := f.slot(cc.Req.Caller)
		mine := slot.Add(1)
		if mine == 1 {
			f.active.Add(1)
		}
		release := func() {
			if slot.Add(-1) == 0 {
				f.active.Add(-1)
			}
		}
		if global := ov.Inflight.Load(); global >= int64(at) {
			active := f.active.Load()
			if active < 1 {
				active = 1
			}
			share := int64(at) / active
			if share < 1 {
				share = 1
			}
			if mine > share {
				release()
				ov.NoteShedFairShare()
				stats.noteTenant(cc.Req.Caller)
				return wire.Errorf(cc.Req,
					"load-shed: tenant %q over fair share (%d inflight, share %d of %d)",
					cc.Req.Caller, mine, share, at), nil
			}
		}
		resp, err := next(cc)
		release()
		return resp, err
	}
}

// fairTable tracks live per-tenant inflight, bounded like ShedStats'
// tenant table: past tenantMax distinct callers new ones share the
// "~other" counter (they compete for one share — fail-safe in the
// shedding direction under tenant-id churn).
type fairTable struct {
	tenants sync.Map // caller string -> *atomic.Int64
	n       atomic.Int64
	active  atomic.Int64
}

func (f *fairTable) slot(caller string) *atomic.Int64 {
	if caller == "" {
		caller = "~anonymous"
	}
	c, ok := f.tenants.Load(caller)
	if !ok {
		if f.n.Load() >= tenantMax {
			caller = tenantOther
			c, ok = f.tenants.Load(caller)
		}
		if !ok {
			var loaded bool
			c, loaded = f.tenants.LoadOrStore(caller, new(atomic.Int64))
			if !loaded {
				f.n.Add(1)
			}
		}
	}
	return c.(*atomic.Int64)
}

// CoDel returns the CoDel queue-management interceptor, the classic
// controlled-delay algorithm applied to the transport-measured
// dispatch-slot wait (CallCtx.SlotWaitUs as the sojourn time): waits
// under target reset the controller; once waits stay above target for
// a full interval it enters a drop cycle, shedding at intervals that
// shrink with the inverse square root of the drop count until the wait
// dips back under target.  now is the clock (nanoseconds), injectable
// for deterministic tests; pass nil for the real clock.
func CoDel(target, interval time.Duration, ov *telemetry.OverloadStats, now func() int64) Interceptor {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	c := &codel{target: target.Nanoseconds(), interval: interval.Nanoseconds(), now: now}
	return func(cc *CallCtx, next Handler) (*wire.Response, error) {
		sojourn := int64(cc.SlotWaitUs) * int64(time.Microsecond)
		if c.drop(sojourn) {
			ov.NoteShedCoDel()
			return wire.Errorf(cc.Req,
				"load-shed: queue delay %v over CoDel target %v",
				time.Duration(sojourn), time.Duration(c.target)), nil
		}
		return next(cc)
	}
}

// codel is the controller state.  The mutex is uncontended in the happy
// path's only branch that takes it — sojourn below target is a single
// lock/unlock with two stores — and the whole interceptor only matters
// when the server is already queueing.
type codel struct {
	mu         sync.Mutex
	target     int64 // ns
	interval   int64 // ns
	now        func() int64
	firstAbove int64 // when the above-target episode crosses into dropping; 0 = below
	dropNext   int64 // next scheduled drop while dropping
	count      int64 // drops this cycle (control-law divisor)
	dropping   bool
}

func (c *codel) drop(sojournNs int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sojournNs < c.target {
		c.firstAbove = 0
		c.dropping = false
		return false
	}
	t := c.now()
	if c.firstAbove == 0 {
		// First above-target observation: arm the interval window.
		c.firstAbove = t + c.interval
		return false
	}
	if t < c.firstAbove {
		return false
	}
	if !c.dropping {
		c.dropping = true
		c.count = 1
		c.dropNext = t + c.controlLaw()
		return true
	}
	if t >= c.dropNext {
		c.count++
		c.dropNext += c.controlLaw()
		return true
	}
	return false
}

// controlLaw is CoDel's drop spacing: interval/sqrt(count).
func (c *codel) controlLaw() int64 {
	return int64(float64(c.interval) / math.Sqrt(float64(c.count)))
}
