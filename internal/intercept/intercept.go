// Package intercept defines the composable dispatch interceptor chain
// the node's server-side call path is built from: a middleware pipeline
// in the dispatch(request, call_next) shape, precomposed once at
// construction so the per-call path is plain nested function calls —
// no per-call closure allocation, no slice walking, no interface
// dispatch beyond the function values themselves.
//
// Every server-side concern that used to be hard-wired inline in
// internal/node/dispatch.go — plane routing, overload shedding, dedup,
// tracing — is an Interceptor; user policies (rafda.NodeConfig's
// Interceptors, Node.Use) splice into the same chain between the
// shedding tier and dedup.  Ordering rules are documented in
// docs/CONCURRENCY.md §16 and docs/INTERCEPT.md.
package intercept

import (
	"sync"

	"rafda/internal/wire"
)

// CallCtx is the per-call state threaded through the chain.  Req is the
// inbound request; everything else is server-local scratch the built-in
// interceptors and the dispatch root exchange.  A CallCtx is pooled by
// the chain and recycled after the response is produced — interceptors
// must not retain it past their return.
type CallCtx struct {
	// Req is the request being dispatched.  Interceptors may read any
	// field and may rewrite policy fields (priority, deadline) before
	// calling next, exactly as each hop already rewrites DeadlineUs.
	Req *wire.Request
	// SlotWaitUs is the dispatch-slot wait the transport measured for
	// this request (copied from Req.SlotWaitUs at chain entry): how
	// long the frame sat blocked on the inflight semaphore before a
	// slot opened.  The CoDel interceptor sheds on it.
	SlotWaitUs uint64
	// Served marks that the call ran (or expired) under an object
	// gate; QueueNs and SvcNs are the gate queue wait and method
	// service time measured there, and Expired marks a call whose
	// deadline ran out in the gate queue.  Written by the dispatch
	// root, read by the trace interceptor (and any user interceptor
	// below it) after next returns.
	Served  bool
	Expired bool
	QueueNs int64
	SvcNs   int64
}

func (cc *CallCtx) reset() {
	*cc = CallCtx{}
}

// Handler produces the response for a call: either the chain's root
// (the dispatch effect switch) or the tail of the chain from some
// interceptor's point of view.
type Handler func(*CallCtx) (*wire.Response, error)

// Interceptor wraps a Handler: it may short-circuit (return without
// calling next — a shed, a cached replay, a plane answer), pass through,
// or post-process next's response.  Calling next more than once is a
// contract violation.
type Interceptor func(cc *CallCtx, next Handler) (*wire.Response, error)

// Chain is a precomposed interceptor pipeline.  Composition happens
// once in New: each interceptor is folded into a closure capturing only
// (interceptor, next), so Dispatch is a straight nested call with zero
// per-call allocation beyond what the handlers themselves do.
type Chain struct {
	head Handler
	pool sync.Pool
}

// New composes ics around root, outermost first: New(root, a, b, c)
// runs a(b(c(root))).  The returned chain is immutable; build a new one
// to change the pipeline (rafda.Node.Use swaps chains atomically).
func New(root Handler, ics ...Interceptor) *Chain {
	composed := root
	for i := len(ics) - 1; i >= 0; i-- {
		ic := ics[i]
		next := composed
		composed = func(cc *CallCtx) (*wire.Response, error) {
			return ic(cc, next)
		}
	}
	c := &Chain{head: composed}
	c.pool.New = func() any { return new(CallCtx) }
	return c
}

// Dispatch runs req through the chain and renders the outcome as a wire
// response: an error escaping the chain becomes an infrastructure-error
// response (interceptors may equivalently build one themselves with
// wire.Errorf).  A nil response with a nil error is a contract
// violation and is reported as an error response too, so the transport
// always has a frame to write back.
func (c *Chain) Dispatch(req *wire.Request) *wire.Response {
	cc := c.pool.Get().(*CallCtx)
	cc.Req = req
	cc.SlotWaitUs = req.SlotWaitUs
	resp, err := c.head(cc)
	cc.reset()
	c.pool.Put(cc)
	switch {
	case err != nil:
		return wire.Errorf(req, "%v", err)
	case resp == nil:
		return wire.Errorf(req, "interceptor chain produced no response")
	}
	return resp
}
