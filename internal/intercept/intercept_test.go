package intercept

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rafda/internal/telemetry"
	"rafda/internal/wire"
)

func okRoot(result string) Handler {
	return func(cc *CallCtx) (*wire.Response, error) {
		return &wire.Response{ID: cc.Req.ID, Result: wire.Value{Kind: wire.KString, Str: result}}, nil
	}
}

// TestChainOrdering pins the composition order: New(root, a, b, c) runs
// a around b around c around root, so the before-hooks fire outermost
// first and the after-hooks innermost first.
func TestChainOrdering(t *testing.T) {
	var log []string
	mark := func(name string) Interceptor {
		return func(cc *CallCtx, next Handler) (*wire.Response, error) {
			log = append(log, name+">")
			resp, err := next(cc)
			log = append(log, "<"+name)
			return resp, err
		}
	}
	ch := New(func(cc *CallCtx) (*wire.Response, error) {
		log = append(log, "root")
		return okRoot("ok")(cc)
	}, mark("a"), mark("b"), mark("c"))
	resp := ch.Dispatch(&wire.Request{ID: 7})
	if resp.Err != "" || resp.Result.Str != "ok" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	want := "a>,b>,c>,root,<c,<b,<a"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

// TestChainShortCircuit pins that an interceptor returning without
// calling next stops the chain: inner tiers and the root never run.
func TestChainShortCircuit(t *testing.T) {
	innerRan := false
	ch := New(
		func(cc *CallCtx) (*wire.Response, error) {
			innerRan = true
			return okRoot("ok")(cc)
		},
		func(cc *CallCtx, next Handler) (*wire.Response, error) {
			return wire.Errorf(cc.Req, "refused"), nil
		},
		func(cc *CallCtx, next Handler) (*wire.Response, error) {
			innerRan = true
			return next(cc)
		},
	)
	resp := ch.Dispatch(&wire.Request{ID: 1})
	if resp.Err != "refused" {
		t.Fatalf("Err = %q, want refused", resp.Err)
	}
	if innerRan {
		t.Fatal("short-circuit leaked into inner tiers")
	}
}

// TestChainErrorRendered pins Dispatch's error contract: an error
// escaping the chain (and the nil-response/nil-error violation) comes
// back as an error response, never a nil frame.
func TestChainErrorRendered(t *testing.T) {
	ch := New(func(cc *CallCtx) (*wire.Response, error) {
		return nil, errors.New("boom")
	})
	if resp := ch.Dispatch(&wire.Request{ID: 2}); resp == nil || resp.Err != "boom" {
		t.Fatalf("error not rendered: %+v", resp)
	}
	ch = New(func(cc *CallCtx) (*wire.Response, error) { return nil, nil })
	if resp := ch.Dispatch(&wire.Request{ID: 3}); resp == nil || resp.Err == "" {
		t.Fatalf("nil/nil contract violation not rendered: %+v", resp)
	}
}

// TestChainContextReset pins that the pooled CallCtx is recycled clean:
// scratch one interceptor writes must not leak into the next dispatch.
func TestChainContextReset(t *testing.T) {
	ch := New(okRoot("ok"), func(cc *CallCtx, next Handler) (*wire.Response, error) {
		if cc.Served || cc.QueueNs != 0 {
			return wire.Errorf(cc.Req, "stale scratch leaked into fresh call"), nil
		}
		cc.Served = true
		cc.QueueNs = 42
		return next(cc)
	})
	for i := 0; i < 32; i++ {
		if resp := ch.Dispatch(&wire.Request{ID: uint64(i)}); resp.Err != "" {
			t.Fatal(resp.Err)
		}
	}
}

// TestChainZeroAlloc pins the tentpole's perf bound: dispatching through
// a composed chain allocates exactly as much as calling the root
// directly — composition itself adds zero allocations per call.
func TestChainZeroAlloc(t *testing.T) {
	resp := &wire.Response{}
	root := func(cc *CallCtx) (*wire.Response, error) { return resp, nil }
	passthrough := func(cc *CallCtx, next Handler) (*wire.Response, error) { return next(cc) }
	direct := New(root)
	chained := New(root, passthrough, passthrough, passthrough, passthrough)
	req := &wire.Request{ID: 9}
	base := testing.AllocsPerRun(1000, func() { direct.Dispatch(req) })
	withChain := testing.AllocsPerRun(1000, func() { chained.Dispatch(req) })
	if withChain > base {
		t.Fatalf("chain added allocations: %0.1f/call vs %0.1f/call direct", withChain, base)
	}
}

func shedChain(t *testing.T, ic Interceptor) *Chain {
	t.Helper()
	return New(okRoot("served"), ic)
}

// TestPriorityShed pins the strict-priority admission rule: class p is
// refused at inflight >= at<<p, and the threshold doubling stops at the
// clamp so a hostile priority cannot disable admission control.
func TestPriorityShed(t *testing.T) {
	var ov telemetry.OverloadStats
	var stats ShedStats
	ch := shedChain(t, Priority(4, &ov, &stats))
	call := func(prio uint32) *wire.Response {
		return ch.Dispatch(&wire.Request{ID: 1, Priority: prio})
	}

	ov.Inflight.Store(3)
	if resp := call(0); resp.Err != "" {
		t.Fatalf("class 0 under threshold shed: %s", resp.Err)
	}
	ov.Inflight.Store(4)
	if resp := call(0); !strings.HasPrefix(resp.Err, "load-shed:") {
		t.Fatalf("class 0 at threshold not shed: %+v", resp)
	}
	if resp := call(1); resp.Err != "" {
		t.Fatalf("class 1 shed below its doubled threshold: %s", resp.Err)
	}
	ov.Inflight.Store(8)
	if resp := call(1); !strings.HasPrefix(resp.Err, "load-shed:") {
		t.Fatalf("class 1 at 2x threshold not shed: %+v", resp)
	}
	// The clamp: class 40 does not get 4<<40 slots — it saturates at
	// the class-8 threshold.
	ov.Inflight.Store(4 << 8)
	if resp := call(40); !strings.HasPrefix(resp.Err, "load-shed:") {
		t.Fatalf("hostile priority escaped the clamp: %+v", resp)
	}

	if got := ov.ShedPriority.Load(); got != 3 {
		t.Fatalf("ShedPriority = %d, want 3", got)
	}
	s := stats.Snapshot()
	if s.ByPriority["0"] != 1 || s.ByPriority["1"] != 1 || s.ByPriority["8"] != 1 {
		t.Fatalf("per-class shed table = %v", s.ByPriority)
	}
}

// TestFairShareShed pins the per-tenant rule: once the global gauge
// reaches at, a tenant holding more than its 1/active share is refused
// while tenants within share pass.
func TestFairShareShed(t *testing.T) {
	var ov telemetry.OverloadStats
	var stats ShedStats
	var inside atomic.Int64
	block := make(chan struct{})
	ch := New(func(cc *CallCtx) (*wire.Response, error) {
		inside.Add(1)
		<-block
		return okRoot("served")(cc)
	}, FairShare(8, &ov, &stats))

	// Park 6 hog calls and 1 meek call inside the chain while the global
	// gauge sits below the threshold (policy disengaged, everything
	// admitted), then raise the gauge: two active tenants, so each share
	// is 8/2 = 4 live slots.
	var wg sync.WaitGroup
	served := make(chan *wire.Response, 7)
	for i := 0; i < 7; i++ {
		caller := "hog"
		if i == 6 {
			caller = "meek"
		}
		wg.Add(1)
		go func(caller string) {
			defer wg.Done()
			served <- ch.Dispatch(&wire.Request{ID: 1, Caller: caller})
		}(caller)
	}
	waitFor(t, func() bool { return inside.Load() == 7 })
	ov.Inflight.Store(8)

	// The hog holds 6 > 4: its next call is refused.
	if resp := ch.Dispatch(&wire.Request{ID: 2, Caller: "hog"}); !strings.HasPrefix(resp.Err, "load-shed:") {
		t.Fatalf("hog over share not shed: %+v", resp)
	}
	// A second meek call (2 <= 4) passes even at the same global depth.
	done := make(chan *wire.Response, 1)
	go func() { done <- ch.Dispatch(&wire.Request{ID: 3, Caller: "meek"}) }()
	close(block)
	if resp := <-done; resp.Err != "" {
		t.Fatalf("within-share tenant shed: %s", resp.Err)
	}
	wg.Wait()
	close(served)
	for resp := range served {
		if resp.Err != "" {
			t.Fatalf("parked call refused: %s", resp.Err)
		}
	}

	s := stats.Snapshot()
	if s.ByTenant["hog"] == 0 {
		t.Fatalf("hog missing from per-tenant shed table: %v", s.ByTenant)
	}
	if s.ByTenant["meek"] != 0 {
		t.Fatalf("meek wrongly shed: %v", s.ByTenant)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairShareTenantFold pins the bounded table: past tenantMax
// distinct callers, new tenants compete for the single "~other" share
// instead of growing the table.
func TestFairShareTenantFold(t *testing.T) {
	var stats ShedStats
	f := &fairTable{}
	for i := 0; i < tenantMax; i++ {
		f.slot(fmt.Sprintf("tenant-%03d", i))
	}
	if got := f.slot("one-too-many"); got != f.slot("another") {
		t.Fatal("overflow tenants did not fold into a shared slot")
	}
	if got, other := f.slot("one-too-many"), f.slot(tenantOther); got != other {
		t.Fatal("overflow slot is not ~other")
	}
	// The stats table folds the same way.
	for i := 0; i < tenantMax; i++ {
		stats.noteTenant(fmt.Sprintf("tenant-%03d", i))
	}
	stats.noteTenant("one-too-many")
	stats.noteTenant("another")
	if s := stats.Snapshot(); s.ByTenant[tenantOther] != 2 {
		t.Fatalf("~other = %d, want 2 (table %d entries)", s.ByTenant[tenantOther], len(s.ByTenant))
	}
}

// TestCoDel drives the controller with a fake clock and pins the classic
// shape: below-target waits never drop; above-target waits drop only
// after a full interval, then at inverse-sqrt spacing; a dip below
// target resets the cycle.
func TestCoDel(t *testing.T) {
	var ov telemetry.OverloadStats
	clock := int64(0)
	now := func() int64 { return clock }
	ch := New(okRoot("served"), CoDel(5*time.Millisecond, 100*time.Millisecond, &ov, now))
	call := func(waitUs uint64) bool {
		resp := ch.Dispatch(&wire.Request{ID: 1, SlotWaitUs: waitUs})
		return strings.HasPrefix(resp.Err, "load-shed:")
	}

	// Below target: never drops, at any time.
	for i := 0; i < 10; i++ {
		clock += int64(50 * time.Millisecond)
		if call(1000) {
			t.Fatal("dropped below target")
		}
	}
	// First above-target observation arms the window but must not drop.
	if call(10_000) {
		t.Fatal("dropped on first above-target observation")
	}
	// Still inside the interval: no drop.
	clock += int64(50 * time.Millisecond)
	if call(10_000) {
		t.Fatal("dropped inside the first interval")
	}
	// A full interval above target: the drop cycle starts.
	clock += int64(60 * time.Millisecond)
	if !call(10_000) {
		t.Fatal("no drop after a full interval above target")
	}
	// Next drop is scheduled interval/sqrt(1) later; before it, pass.
	clock += int64(50 * time.Millisecond)
	if call(10_000) {
		t.Fatal("dropped before the control-law spacing elapsed")
	}
	clock += int64(60 * time.Millisecond)
	if !call(10_000) {
		t.Fatal("no second drop after the control-law spacing")
	}
	// Recovery: one below-target wait resets the controller entirely.
	if call(1000) {
		t.Fatal("dropped a below-target wait during recovery")
	}
	clock += int64(500 * time.Millisecond)
	if call(10_000) {
		t.Fatal("above-target after reset dropped without re-arming the window")
	}
	if got := ov.ShedCoDel.Load(); got != 2 {
		t.Fatalf("ShedCoDel = %d, want 2", got)
	}
}

// TestShedConfigEnabled pins the zero-value-off contract.
func TestShedConfigEnabled(t *testing.T) {
	if (ShedConfig{}).Enabled() {
		t.Fatal("zero config reads enabled")
	}
	for _, c := range []ShedConfig{
		{PriorityAt: 1}, {FairShareAt: 1}, {CoDelTarget: time.Millisecond},
	} {
		if !c.Enabled() {
			t.Fatalf("%+v reads disabled", c)
		}
	}
}

// TestShedStatsNilSafe pins that a node without shedding configured can
// still be snapshotted through the same call path.
func TestShedStatsNilSafe(t *testing.T) {
	var s *ShedStats
	s.notePriority(1)
	s.noteTenant("x")
	if sample := s.Snapshot(); sample.ByPriority != nil || sample.ByTenant != nil {
		t.Fatalf("nil stats produced a non-zero sample: %+v", sample)
	}
}
