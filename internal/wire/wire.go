// Package wire defines the protocol-independent invocation model
// exchanged between nodes: requests, responses and marshalled values.
// Each transport (internal/transport) carries these messages in its own
// encoding — binary for RRP, XML for SOAP, JSON for JSON-RPC — exactly as
// the paper's proxy families differ only in transport.
package wire

import "fmt"

// Op enumerates request kinds.
type Op uint8

// Request operations.
const (
	OpInvalid Op = iota
	// OpInvoke calls a method on an exported object (GUID).
	OpInvoke
	// OpInvokeClass calls a method on a class's statics singleton.
	OpInvokeClass
	// OpCreate instantiates Class's local implementation on the callee
	// and returns a remote reference (the remote half of factory make).
	OpCreate
	// OpMigrateIn installs a migrated object: Class plus field state;
	// returns the new remote reference (the §4 dynamic-redistribution
	// mechanism).
	OpMigrateIn
	// OpPing is a liveness and round-trip probe.
	OpPing
	// OpMigrateOut asks the object's home node to migrate GUID to the
	// node at Endpoint and return the new remote reference; it lets any
	// holder of a reference re-place the object.
	OpMigrateOut
)

func (o Op) String() string {
	switch o {
	case OpInvoke:
		return "invoke"
	case OpInvokeClass:
		return "invoke-class"
	case OpCreate:
		return "create"
	case OpMigrateIn:
		return "migrate-in"
	case OpPing:
		return "ping"
	case OpMigrateOut:
		return "migrate-out"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ValueKind tags a marshalled value.
type ValueKind uint8

// Marshalled value kinds.
const (
	KInvalid ValueKind = iota
	KVoid
	KNull
	KBool
	KInt
	KFloat
	KString
	KRef   // remote object reference
	KArray // array copied by value, like RMI array semantics
)

func (k ValueKind) String() string {
	switch k {
	case KVoid:
		return "void"
	case KNull:
		return "null"
	case KBool:
		return "bool"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KString:
		return "string"
	case KRef:
		return "ref"
	case KArray:
		return "array"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// RemoteRef identifies an exported object (or class singleton) on some
// node.  Proxies are constructed from it; passing a proxy on re-marshals
// the same reference, so references retarget transparently.
type RemoteRef struct {
	GUID     string `json:"guid" xml:"guid,attr"`
	Endpoint string `json:"endpoint" xml:"endpoint,attr"`
	Proto    string `json:"proto" xml:"proto,attr"`
	// Target is the original (pre-transformation) class name.
	Target string `json:"target" xml:"target,attr"`
	// ClassSide marks a statics (A_C_*) reference.
	ClassSide bool `json:"classSide,omitempty" xml:"classSide,attr,omitempty"`
}

// Value is one marshalled argument or result.
type Value struct {
	Kind  ValueKind  `json:"kind" xml:"kind,attr"`
	Bool  bool       `json:"bool,omitempty" xml:"bool,attr,omitempty"`
	Int   int64      `json:"int,omitempty" xml:"int,attr,omitempty"`
	Float float64    `json:"float,omitempty" xml:"float,attr,omitempty"`
	Str   string     `json:"str,omitempty" xml:"str,omitempty"`
	Ref   *RemoteRef `json:"ref,omitempty" xml:"ref,omitempty"`
	// Elem is the IR type descriptor of array elements.
	Elem string  `json:"elem,omitempty" xml:"elem,attr,omitempty"`
	Arr  []Value `json:"arr,omitempty" xml:"item,omitempty"`
}

// Request is one remote operation.
type Request struct {
	ID     uint64  `json:"id" xml:"id,attr"`
	Op     Op      `json:"op" xml:"op,attr"`
	GUID   string  `json:"guid,omitempty" xml:"guid,attr,omitempty"`
	Class  string  `json:"class,omitempty" xml:"class,attr,omitempty"`
	Method string  `json:"method,omitempty" xml:"method,attr,omitempty"`
	Args   []Value `json:"args,omitempty" xml:"arg,omitempty"`
	// Fields carries object state for OpMigrateIn.
	Fields []NamedValue `json:"fields,omitempty" xml:"field,omitempty"`
	// Endpoint is the migration target for OpMigrateOut.
	Endpoint string `json:"endpoint,omitempty" xml:"endpoint,attr,omitempty"`
	// Caller identifies the calling node's serving endpoint ("" when the
	// caller serves no transport).  The callee's telemetry plane uses it
	// to attribute per-object call affinity — the signal the adaptive
	// placement engine migrates objects toward (docs/ADAPTIVE.md).
	Caller string `json:"caller,omitempty" xml:"caller,attr,omitempty"`
}

// NamedValue is a field name/value pair (migration payloads).
type NamedValue struct {
	Name  string `json:"name" xml:"name,attr"`
	Value Value  `json:"value" xml:"value"`
}

// Response answers one Request.
type Response struct {
	ID     uint64 `json:"id" xml:"id,attr"`
	Result Value  `json:"result" xml:"result"`
	// ExClass/ExMsg report a program-level exception thrown by the
	// callee; it re-materialises as a thrown exception at the caller.
	ExClass string `json:"exClass,omitempty" xml:"exClass,attr,omitempty"`
	ExMsg   string `json:"exMsg,omitempty" xml:"exMsg,omitempty"`
	// Err reports an infrastructure failure (unknown GUID, bad method);
	// it surfaces as sys.RemoteException at the caller.
	Err string `json:"err,omitempty" xml:"err,omitempty"`
	// Redirect reports that the target object has moved: the callee
	// served the request (forwarding through its morphed copy) but the
	// object now lives at Redirect.  Callers retarget their proxy so
	// subsequent calls go to the new home directly — without it, an
	// adaptively migrated object would be reached through a permanent
	// forwarding hop and placement decisions could never converge.
	Redirect *RemoteRef `json:"redirect,omitempty" xml:"redirect,omitempty"`
}

// Errorf builds an infrastructure-error response for req.
func Errorf(req *Request, format string, a ...any) *Response {
	return &Response{ID: req.ID, Err: fmt.Sprintf(format, a...)}
}
