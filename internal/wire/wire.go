// Package wire defines the protocol-independent invocation model
// exchanged between nodes: requests, responses and marshalled values.
// Each transport (internal/transport) carries these messages in its own
// encoding — binary for RRP, XML for SOAP, JSON for JSON-RPC — exactly as
// the paper's proxy families differ only in transport.
package wire

import (
	"encoding/xml"
	"fmt"
	"strconv"
)

// Op enumerates request kinds.
type Op uint8

// Request operations.
const (
	OpInvalid Op = iota
	// OpInvoke calls a method on an exported object (GUID).
	OpInvoke
	// OpInvokeClass calls a method on a class's statics singleton.
	OpInvokeClass
	// OpCreate instantiates Class's local implementation on the callee
	// and returns a remote reference (the remote half of factory make).
	OpCreate
	// OpMigrateIn installs a migrated object: Class plus field state;
	// returns the new remote reference (the §4 dynamic-redistribution
	// mechanism).
	OpMigrateIn
	// OpPing is a liveness and round-trip probe.
	OpPing
	// OpMigrateOut asks the object's home node to migrate GUID to the
	// node at Endpoint and return the new remote reference; it lets any
	// holder of a reference re-place the object.
	OpMigrateOut
	// OpGossip carries one push-pull cluster gossip exchange: the
	// request's Cluster payload is the sender's membership digest,
	// placement-directory delta, live placement intents and affinity
	// rollups; the response's Cluster payload is the receiver's, so one
	// round trip synchronises both peers (internal/cluster).
	OpGossip
	// OpReplicaInstall asks the callee to install a read replica of the
	// object exported under GUID at the primary (Endpoint): Class plus
	// field state at write-epoch Epoch.  Returns the replica's own
	// remote reference (docs/REPLICATION.md).
	OpReplicaInstall
	// OpReplicaUpdate pushes a committed write to a replica: the
	// replica's GUID, the full post-write field state, and the new
	// Epoch.  A replica applies it iff Epoch exceeds its local epoch.
	OpReplicaUpdate
	// OpReplicaDrop tears a replica down (demotion or eviction); the
	// replica stops serving reads immediately.
	OpReplicaDrop
	// OpIntrospect is an effect-free observability probe: the callee
	// answers with a JSON snapshot of its unified metrics (stats,
	// dedup, telemetry, pool, cluster, trace histograms) or recorded
	// spans, selected by Method ("metrics", "spans", "trace"); for
	// "trace", GUID carries the hexadecimal trace id to filter on.
	OpIntrospect
)

func (o Op) String() string {
	switch o {
	case OpInvoke:
		return "invoke"
	case OpInvokeClass:
		return "invoke-class"
	case OpCreate:
		return "create"
	case OpMigrateIn:
		return "migrate-in"
	case OpPing:
		return "ping"
	case OpMigrateOut:
		return "migrate-out"
	case OpGossip:
		return "gossip"
	case OpReplicaInstall:
		return "replica-install"
	case OpReplicaUpdate:
		return "replica-update"
	case OpReplicaDrop:
		return "replica-drop"
	case OpIntrospect:
		return "introspect"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ValueKind tags a marshalled value.
type ValueKind uint8

// Marshalled value kinds.
const (
	KInvalid ValueKind = iota
	KVoid
	KNull
	KBool
	KInt
	KFloat
	KString
	KRef   // remote object reference
	KArray // array copied by value, like RMI array semantics
)

func (k ValueKind) String() string {
	switch k {
	case KVoid:
		return "void"
	case KNull:
		return "null"
	case KBool:
		return "bool"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KString:
		return "string"
	case KRef:
		return "ref"
	case KArray:
		return "array"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// RemoteRef identifies an exported object (or class singleton) on some
// node.  Proxies are constructed from it; passing a proxy on re-marshals
// the same reference, so references retarget transparently.
type RemoteRef struct {
	GUID     string `json:"guid" xml:"guid,attr"`
	Endpoint string `json:"endpoint" xml:"endpoint,attr"`
	Proto    string `json:"proto" xml:"proto,attr"`
	// Target is the original (pre-transformation) class name.
	Target string `json:"target" xml:"target,attr"`
	// ClassSide marks a statics (A_C_*) reference.
	ClassSide bool `json:"classSide,omitempty" xml:"classSide,attr,omitempty"`
}

// Value is one marshalled argument or result.
type Value struct {
	Kind  ValueKind  `json:"kind" xml:"kind,attr"`
	Bool  bool       `json:"bool,omitempty" xml:"bool,attr,omitempty"`
	Int   int64      `json:"int,omitempty" xml:"int,attr,omitempty"`
	Float float64    `json:"float,omitempty" xml:"float,attr,omitempty"`
	Str   string     `json:"str,omitempty" xml:"str,omitempty"`
	Ref   *RemoteRef `json:"ref,omitempty" xml:"ref,omitempty"`
	// Elem is the IR type descriptor of array elements.
	Elem string  `json:"elem,omitempty" xml:"elem,attr,omitempty"`
	Arr  []Value `json:"arr,omitempty" xml:"item,omitempty"`
}

// Request is one remote operation.
type Request struct {
	ID     uint64  `json:"id" xml:"id,attr"`
	Op     Op      `json:"op" xml:"op,attr"`
	GUID   string  `json:"guid,omitempty" xml:"guid,attr,omitempty"`
	Class  string  `json:"class,omitempty" xml:"class,attr,omitempty"`
	Method string  `json:"method,omitempty" xml:"method,attr,omitempty"`
	Args   []Value `json:"args,omitempty" xml:"arg,omitempty"`
	// Fields carries object state for OpMigrateIn.
	Fields []NamedValue `json:"fields,omitempty" xml:"field,omitempty"`
	// Endpoint is the migration target for OpMigrateOut.
	Endpoint string `json:"endpoint,omitempty" xml:"endpoint,attr,omitempty"`
	// Caller identifies the calling node's serving endpoint ("" when the
	// caller serves no transport).  The callee's telemetry plane uses it
	// to attribute per-object call affinity — the signal the adaptive
	// placement engine migrates objects toward (docs/ADAPTIVE.md).
	Caller string `json:"caller,omitempty" xml:"caller,attr,omitempty"`
	// Cluster carries the sender's gossip payload on OpGossip requests
	// (nil on every other op; docs/CLUSTER.md).
	Cluster *ClusterPayload `json:"cluster,omitempty" xml:"cluster,omitempty"`
	// Token stamps the logical call this request carries for the
	// callee's per-caller dedup window: a retry (transport failover, a
	// duplicated frame, a post-migration re-send) carries the same
	// (Caller, Seq) and is suppressed or answered from the replay cache
	// instead of executing twice.  nil on untokened requests — legacy
	// peers and the side-effect-free ops (ping, gossip) — which bypass
	// dedup entirely.  The binary codec emits it as a trailing optional
	// section, omitted byte-for-byte when nil, so tokenless frames are
	// identical to the pre-token protocol (capability flag:
	// docs/DESIGN.md wire spec).
	Token *CallToken `json:"token,omitempty" xml:"token,omitempty"`
	// Dedup ships completed dedup-window entries alongside an
	// OpMigrateIn snapshot: the adopting node seeds its own windows with
	// them, so a caller's retry of a call the old home already completed
	// replays at the new home instead of re-executing (docs/CONCURRENCY.md
	// §8).  Empty on every other op.
	Dedup []DedupEntry `json:"dedup,omitempty" xml:"dedup,omitempty"`
	// Epoch carries the write epoch on replica-maintenance ops
	// (OpReplicaInstall: the epoch of the shipped state;
	// OpReplicaUpdate: the epoch of the committed write).  Zero on
	// every other op.  The binary codec emits it as an optional trailing
	// extension section, so epoch-free frames stay byte-identical to the
	// pre-replication protocol (docs/REPLICATION.md).
	Epoch uint64 `json:"epoch,omitempty" xml:"epoch,attr,omitempty"`
	// Trace carries the causal span context this request runs under:
	// the server-side spans it produces parent to Trace.Span and join
	// trace Trace.Trace, so forwarded retries, migration re-sends and
	// replica fan-outs assemble into one cross-node call tree
	// (internal/trace, docs/OBSERVABILITY.md).  The zero value means the
	// sender records no trace; the binary codec emits it as an optional
	// trailing extension, skipped gracefully by peers that predate it.
	// A value (not a pointer) so stamping a context on the request hot
	// path allocates nothing; all three codecs omit the zero value, so
	// untraced frames stay byte-identical to the pre-trace protocol.
	Trace TraceContext `json:"trace,omitzero" xml:"trace"`
	// DeadlineUs is the call's remaining latency budget in microseconds.
	// Zero means no deadline.  Each hop decrements it by the queue/gate
	// wait it measured before executing the call; a server that finds
	// the budget exhausted rejects at admission instead of burning a
	// dispatch slot.  The binary codec emits it as an optional trailing
	// extension (tag 4), so deadline-free frames stay byte-identical to
	// the pre-deadline protocol and older peers skip the tag gracefully.
	DeadlineUs uint64 `json:"deadline_us,omitempty" xml:"deadline-us,attr,omitempty"`
	// Priority is the call's admission priority class.  Zero — the
	// default — is the lowest class; higher classes survive deeper into
	// overload: when a server's shedding policies engage, a class-p call
	// is admitted at saturation depths that shed class-(p-1) traffic
	// (internal/intercept).  The binary codec emits it as an optional
	// trailing extension (tag 5), so priority-free frames stay
	// byte-identical to the pre-priority protocol and older peers skip
	// the tag gracefully.
	Priority uint32 `json:"priority,omitempty" xml:"priority,attr,omitempty"`
	// SlotWaitUs is the dispatch-slot wait the receiving transport
	// measured for this request (microseconds spent blocked on the
	// server's inflight semaphore before the handler ran).  It is a
	// server-local measurement deposited by the transport for the
	// dispatch chain's queue-management interceptors — never serialized;
	// every codec omits it.
	SlotWaitUs uint64 `json:"-" xml:"-"`
}

// TraceContext is the span context riding a request: the trace the
// call belongs to and the sender-side span that caused it (the parent
// of whatever spans the callee emits).  The zero value means untraced.
type TraceContext struct {
	Trace uint64 `json:"trace" xml:"trace,attr"`
	Span  uint64 `json:"span" xml:"span,attr"`
}

// MarshalXML keeps the SOAP carrier's format identical to the pointer
// era: a zero context emits no element at all (encoding/xml has no
// omitempty for struct values), a live one emits the two id attributes.
func (tc TraceContext) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	if tc == (TraceContext{}) {
		return nil
	}
	start.Attr = append(start.Attr[:0],
		xml.Attr{Name: xml.Name{Local: "trace"}, Value: strconv.FormatUint(tc.Trace, 10)},
		xml.Attr{Name: xml.Name{Local: "span"}, Value: strconv.FormatUint(tc.Span, 10)})
	if err := e.EncodeToken(start); err != nil {
		return err
	}
	return e.EncodeToken(start.End())
}

// UnmarshalXML is the inverse: it reads the two id attributes and
// discards the (empty) element body.
func (tc *TraceContext) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	for _, a := range start.Attr {
		v, err := strconv.ParseUint(a.Value, 10, 64)
		if err != nil {
			return fmt.Errorf("trace attribute %s: %w", a.Name.Local, err)
		}
		switch a.Name.Local {
		case "trace":
			tc.Trace = v
		case "span":
			tc.Span = v
		}
	}
	return d.Skip()
}

// CallToken identifies one logical call across any number of physical
// deliveries.  Caller is the issuing node's unique incarnation id, Seq
// its monotonically increasing call counter, Attempt the retry ordinal
// (0 = first send) for diagnostics.  Ack piggybacks the caller's
// retirement watermark: every call with Seq <= Ack has had its response
// delivered to the caller, so the callee drops those window entries —
// the window stays bounded by the caller's in-flight set plus the
// replay-cache cap, not by history.
type CallToken struct {
	Caller  string `json:"caller" xml:"caller,attr"`
	Seq     uint64 `json:"seq" xml:"seq,attr"`
	Attempt uint32 `json:"attempt,omitempty" xml:"attempt,attr,omitempty"`
	Ack     uint64 `json:"ack,omitempty" xml:"ack,attr,omitempty"`
}

// DedupEntry is one completed call's record as shipped inside a
// migration snapshot: the token coordinates that identify the logical
// call and the response its execution produced.
type DedupEntry struct {
	Caller string   `json:"caller" xml:"caller,attr"`
	Seq    uint64   `json:"seq" xml:"seq,attr"`
	Resp   Response `json:"resp" xml:"resp"`
}

// NamedValue is a field name/value pair (migration payloads).
type NamedValue struct {
	Name  string `json:"name" xml:"name,attr"`
	Value Value  `json:"value" xml:"value"`
}

// Response answers one Request.
type Response struct {
	ID     uint64 `json:"id" xml:"id,attr"`
	Result Value  `json:"result" xml:"result"`
	// ExClass/ExMsg report a program-level exception thrown by the
	// callee; it re-materialises as a thrown exception at the caller.
	ExClass string `json:"exClass,omitempty" xml:"exClass,attr,omitempty"`
	ExMsg   string `json:"exMsg,omitempty" xml:"exMsg,omitempty"`
	// Err reports an infrastructure failure (unknown GUID, bad method);
	// it surfaces as sys.RemoteException at the caller.
	Err string `json:"err,omitempty" xml:"err,omitempty"`
	// Redirect reports that the target object has moved: the callee
	// served the request (forwarding through its morphed copy) but the
	// object now lives at Redirect.  Callers retarget their proxy so
	// subsequent calls go to the new home directly — without it, an
	// adaptively migrated object would be reached through a permanent
	// forwarding hop and placement decisions could never converge.
	Redirect *RemoteRef `json:"redirect,omitempty" xml:"redirect,omitempty"`
	// Cluster is the receiver's gossip payload answering an OpGossip
	// request (push-pull: one round trip synchronises both peers).
	Cluster *ClusterPayload `json:"cluster,omitempty" xml:"cluster,omitempty"`
	// Epoch stamps a read served by a replicated object with the write
	// epoch of the state it observed, letting callers (and the staleness
	// audit in E13's deterministic test) order reads against acknowledged
	// writes.  Zero for non-replicated objects; the binary codec emits it
	// as an optional trailing extension, so epoch-free responses stay
	// byte-identical to the pre-replication protocol.
	Epoch uint64 `json:"epoch,omitempty" xml:"epoch,attr,omitempty"`
}

// ClusterPayload is one node's contribution to a gossip exchange: who it
// is and who it has heard from (membership), what it knows about where
// objects and classes live (the placement directory), which placement
// changes it wants (intents), and the per-object call-affinity evidence
// those intents are judged by.  The payload rides inside ordinary
// requests/responses, so gossip traverses the same multiplexed
// connections as invocations — no second socket, no second protocol.
type ClusterPayload struct {
	// From is the sender's own membership digest.
	From PeerDigest `json:"from" xml:"from"`
	// Peers is the sender's membership view (rumor mill).
	Peers []PeerDigest `json:"peers,omitempty" xml:"peer,omitempty"`
	// Dir is the sender's placement-directory view.
	Dir []DirEntry `json:"dir,omitempty" xml:"dir,omitempty"`
	// Intents are the live placement intents the sender knows of.
	Intents []Intent `json:"intents,omitempty" xml:"intent,omitempty"`
	// Stats are per-object affinity rollups — the cross-node evidence
	// behind multi-hop placement decisions.
	Stats []ObjAffinity `json:"stats,omitempty" xml:"stat,omitempty"`
	// Replicas are the replica-set facts the sender knows of: which
	// objects have read copies, where, under which primary, and at what
	// membership version/write epoch.  Primaries re-announce their sets
	// every tick; receivers merge by (Version, Epoch, Origin).  A gossip
	// exchange whose From digest is a set's primary also renews the
	// receiving replica's read lease (docs/REPLICATION.md).
	Replicas []ReplicaSet `json:"replicas,omitempty" xml:"replicaSet,omitempty"`
}

// PeerDigest is one node's liveness summary as carried by gossip.
type PeerDigest struct {
	// ID is the node's unique cluster identity (its name).
	ID string `json:"id" xml:"id,attr"`
	// Endpoint is the node's cluster endpoint (gossip target).
	Endpoint string `json:"endpoint" xml:"endpoint,attr"`
	// Heartbeat is the node's monotonically increasing liveness counter;
	// a peer whose heartbeat stops advancing becomes suspect, then dead.
	Heartbeat uint64 `json:"heartbeat" xml:"heartbeat,attr"`
	// Leaving marks a deliberate departure (graceful leave), so peers
	// skip the suspicion ladder and drop the node immediately.
	Leaving bool `json:"leaving,omitempty" xml:"leaving,attr,omitempty"`
}

// DirEntry is one versioned placement-directory fact.  For objects, Key
// is the GUID a stale reference may still hold and Ref is where the
// object actually lives now (GUID at its current home); entries chain
// (g1→g2@B, g2→g3@C) and resolution follows the chain, so a caller N
// migrations behind still reaches the final home in one hop.  For
// classes, Key is "class:Name" and Ref.Endpoint is the placement every
// member converges on (Version plays the policy-epoch role).
type DirEntry struct {
	Key string `json:"key" xml:"key,attr"`
	// Ref is the entry's current target (object: live GUID + home;
	// class: placement endpoint, "" GUID).
	Ref RemoteRef `json:"ref" xml:"ref"`
	// Version orders conflicting entries for one Key: higher wins;
	// equal versions tie-break on Origin.
	Version uint64 `json:"version" xml:"version,attr"`
	// Origin is the node id that produced this version.
	Origin string `json:"origin" xml:"origin,attr"`
}

// Intent is one proposed migration: move the object exported under GUID
// from its current home to To.  Any member may propose — including a
// third party A proposing B→C (multi-hop) — and conflicting intents for
// one object reconcile deterministically: highest Priority wins, ties
// break on lexicographically smaller Proposer id, then smaller To.  The
// object's home executes the winner once it has been stable for the
// settle period.
type Intent struct {
	GUID  string `json:"guid" xml:"guid,attr"`
	Class string `json:"class,omitempty" xml:"class,attr,omitempty"`
	// From is the object's home endpoint as the proposer believed it.
	From string `json:"from" xml:"from,attr"`
	// To is the proposed destination endpoint.
	To string `json:"to" xml:"to,attr"`
	// Proposer is the proposing node's id.
	Proposer string `json:"proposer" xml:"proposer,attr"`
	// Priority is the evidence strength (typically the dominant caller's
	// window call count); higher wins reconciliation.
	Priority int64 `json:"priority" xml:"priority,attr"`
	// Reason is a human-readable justification for logs.
	Reason string `json:"reason,omitempty" xml:"reason,omitempty"`
}

// ObjAffinity is one hosted object's caller-affinity rollup as gossiped
// by its home node: which endpoints its calls come from and what moving
// it would cost.  It is the evidence a third node needs to propose a
// multi-hop migration.
type ObjAffinity struct {
	GUID  string `json:"guid" xml:"guid,attr"`
	Class string `json:"class,omitempty" xml:"class,attr,omitempty"`
	// Home is the endpoint hosting the object.
	Home string `json:"home" xml:"home,attr"`
	// Calls is the rollup window's total inbound invocation count.
	Calls uint64 `json:"calls" xml:"calls,attr"`
	// Callers itemises the window's calls by caller endpoint.
	Callers []EndpointCount `json:"callers,omitempty" xml:"caller,omitempty"`
	// StateBytes estimates the object's shipped-state size (the cost
	// side of a cost-based migration decision).
	StateBytes int64 `json:"stateBytes,omitempty" xml:"stateBytes,attr,omitempty"`
}

// ReplicaSet is one replicated object's membership fact as gossiped by
// its primary: the primary's exported GUID (the set's identity), where
// the primary lives, the read copies, and the ordering coordinates.
// Version orders membership changes (replica added/evicted, primary
// promoted) — higher wins a merge; Epoch orders writes within a
// membership and breaks Version ties; equal (Version, Epoch) ties break
// on greater Origin, mirroring the placement directory.
type ReplicaSet struct {
	// GUID is the primary's exported GUID — the key callers resolve.
	GUID  string `json:"guid" xml:"guid,attr"`
	Class string `json:"class,omitempty" xml:"class,attr,omitempty"`
	// Primary is the endpoint serialising writes and granting leases.
	Primary string `json:"primary" xml:"primary,attr"`
	// Epoch is the last write epoch the primary has acknowledged.
	Epoch uint64 `json:"epoch" xml:"epoch,attr"`
	// Version is the set-membership version; bumped on every replica
	// add/evict and on primary promotion.
	Version uint64 `json:"version" xml:"version,attr"`
	// Origin is the node id that produced this version.
	Origin string `json:"origin" xml:"origin,attr"`
	// Replicas are the read copies (the primary is not listed).
	Replicas []ReplicaInfo `json:"replicas,omitempty" xml:"replica,omitempty"`
}

// ReplicaInfo locates one read copy: the node serving it and the GUID
// the copy is exported under there.
type ReplicaInfo struct {
	Endpoint string `json:"endpoint" xml:"endpoint,attr"`
	GUID     string `json:"guid" xml:"guid,attr"`
}

// EndpointCount is one (endpoint, count) pair in an affinity rollup.
type EndpointCount struct {
	Endpoint string `json:"endpoint" xml:"endpoint,attr"`
	Calls    uint64 `json:"calls" xml:"calls,attr"`
}

// Errorf builds an infrastructure-error response for req.
func Errorf(req *Request, format string, a ...any) *Response {
	return &Response{ID: req.ID, Err: fmt.Sprintf(format, a...)}
}
