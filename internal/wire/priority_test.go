package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestPriorityExtensionLegacyInterop pins the priority extension's
// capability contract, mirroring TestDeadlineExtensionLegacyInterop:
// priority-free requests encode byte-identically to the pre-priority
// protocol (class 0 is never emitted), and priority-bearing ones extend
// that prefix with tag 5.
func TestPriorityExtensionLegacyInterop(t *testing.T) {
	req := &Request{ID: 21, Op: OpInvoke, GUID: "g#1", Method: "m",
		Args:   []Value{{Kind: KInt, Int: 7}},
		Caller: "rrp://c:1"}
	plain := AppendRequest(nil, req)
	withPri := *req
	withPri.Priority = 2
	ext := AppendRequest(nil, &withPri)
	if !bytes.HasPrefix(ext, plain) {
		t.Fatal("priority-bearing request does not extend the plain encoding byte-for-byte")
	}
	back, err := DecodeRequestBytes(ext)
	if err != nil {
		t.Fatal(err)
	}
	if back.Priority != 2 {
		t.Fatalf("priority lost: %+v", back)
	}
}

// TestPriorityWithDeadlineOrdering covers tags 4 and 5 on one frame: the
// deadline section must precede the priority section, both survive a
// round trip, and the deadline-only encoding is a strict byte prefix of
// the combined one.
func TestPriorityWithDeadlineOrdering(t *testing.T) {
	req := &Request{ID: 22, Op: OpInvoke, GUID: "g#1", Method: "m",
		Token:      &CallToken{Caller: "n!1", Seq: 4, Attempt: 1},
		Trace:      TraceContext{Trace: 0xabad1dea, Span: 0x9},
		DeadlineUs: 750,
		Priority:   1}
	b := AppendRequest(nil, req)
	back, err := DecodeRequestBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Fatalf("deadline+priority round trip:\n%+v\n%+v", req, back)
	}
	noPri := *req
	noPri.Priority = 0
	if !bytes.HasPrefix(b, AppendRequest(nil, &noPri)) {
		t.Fatal("priority section not appended after the deadline section")
	}
}

// TestPriorityOutOfOrderRejected hand-builds a frame with tag 5 before
// tag 4 and checks the decoder rejects it — the ascending-tag rule is
// what keeps sections skippable.
func TestPriorityOutOfOrderRejected(t *testing.T) {
	base := AppendRequest(nil, &Request{ID: 23, Op: OpInvoke, GUID: "g#1", Method: "m"})
	b := appendUvarint(base, reqExtPriority)
	mark := len(b)
	b = appendUvarint(b, 1)
	b = insertLength(b, mark)
	b = appendUvarint(b, reqExtDeadline)
	mark = len(b)
	b = appendUvarint(b, 500)
	b = insertLength(b, mark)
	if _, err := DecodeRequestBytes(b); err == nil ||
		!strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order tags accepted: err=%v", err)
	}
}

// TestPriorityOverflowClamped hand-builds a tag-5 section whose payload
// exceeds uint32 and checks the decoder clamps instead of truncating
// into a surprise low class.
func TestPriorityOverflowClamped(t *testing.T) {
	base := AppendRequest(nil, &Request{ID: 24, Op: OpInvoke, GUID: "g#1", Method: "m"})
	b := appendUvarint(base, reqExtPriority)
	mark := len(b)
	b = appendUvarint(b, 1<<40)
	b = insertLength(b, mark)
	back, err := DecodeRequestBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Priority != 1<<32-1 {
		t.Fatalf("oversized priority not clamped: %d", back.Priority)
	}
}
