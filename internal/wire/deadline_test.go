package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestDeadlineExtensionLegacyInterop pins the deadline extension's
// capability contract, mirroring TestEpochExtensionLegacyInterop:
// deadline-free requests encode byte-identically to the pre-deadline
// protocol, and deadline-bearing ones extend that prefix with tag 4.
func TestDeadlineExtensionLegacyInterop(t *testing.T) {
	req := &Request{ID: 13, Op: OpInvoke, GUID: "g#1", Method: "m",
		Args:   []Value{{Kind: KInt, Int: 7}},
		Caller: "rrp://c:1"}
	plain := AppendRequest(nil, req)
	withDeadline := *req
	withDeadline.DeadlineUs = 5000
	ext := AppendRequest(nil, &withDeadline)
	if !bytes.HasPrefix(ext, plain) {
		t.Fatal("deadline-bearing request does not extend the plain encoding byte-for-byte")
	}
	back, err := DecodeRequestBytes(ext)
	if err != nil {
		t.Fatal(err)
	}
	if back.DeadlineUs != 5000 {
		t.Fatalf("deadline lost: %+v", back)
	}
}

// TestDeadlineWithTraceOrdering covers tag 3 and tag 4 on one frame: the
// trace section must precede the deadline section and both survive a
// round trip alongside the earlier token/epoch extensions.
func TestDeadlineWithTraceOrdering(t *testing.T) {
	req := &Request{ID: 14, Op: OpInvoke, GUID: "g#1", Method: "m",
		Token:      &CallToken{Caller: "n!1", Seq: 3, Attempt: 1},
		Epoch:      9,
		Trace:      TraceContext{Trace: 0xabad1dea, Span: 0x1234},
		DeadlineUs: 750}
	b := AppendRequest(nil, req)
	back, err := DecodeRequestBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Fatalf("trace+deadline round trip:\n%+v\n%+v", req, back)
	}
	// The encoding of trace-only must be a strict prefix of
	// trace+deadline: tag 4 is emitted after tag 3.
	traceOnly := *req
	traceOnly.DeadlineUs = 0
	if !bytes.HasPrefix(b, AppendRequest(nil, &traceOnly)) {
		t.Fatal("deadline section not appended after the trace section")
	}
}

// TestDeadlineOutOfOrderRejected hand-builds a frame whose extension
// sections appear as tag 4 then tag 3 and checks the decoder rejects it:
// the ascending-tag rule is what keeps sections skippable.
func TestDeadlineOutOfOrderRejected(t *testing.T) {
	base := AppendRequest(nil, &Request{ID: 15, Op: OpInvoke, GUID: "g#1", Method: "m"})
	b := appendUvarint(base, reqExtDeadline)
	mark := len(b)
	b = appendUvarint(b, 1000)
	b = insertLength(b, mark)
	b = appendUvarint(b, reqExtTrace)
	mark = len(b)
	b = appendUvarint(b, 1)
	b = appendUvarint(b, 2)
	b = insertLength(b, mark)
	if _, err := DecodeRequestBytes(b); err == nil ||
		!strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order tags accepted: err=%v", err)
	}
}
