package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"encoding/xml"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func randomValue(r *rand.Rand, depth int) Value {
	switch k := r.Intn(8); {
	case k == 0:
		return Value{Kind: KVoid}
	case k == 1:
		return Value{Kind: KNull}
	case k == 2:
		return Value{Kind: KBool, Bool: r.Intn(2) == 1}
	case k == 3:
		return Value{Kind: KInt, Int: r.Int63() - r.Int63()}
	case k == 4:
		return Value{Kind: KFloat, Float: r.NormFloat64()}
	case k == 5:
		return Value{Kind: KString, Str: randString(r)}
	case k == 6:
		return Value{Kind: KRef, Ref: &RemoteRef{
			GUID:      randString(r),
			Endpoint:  "rrp://127.0.0.1:1",
			Proto:     "rrp",
			Target:    "C",
			ClassSide: r.Intn(2) == 1,
		}}
	default:
		if depth <= 0 {
			return Value{Kind: KInt, Int: 7}
		}
		n := r.Intn(4)
		v := Value{Kind: KArray, Elem: "I"}
		for i := 0; i < n; i++ {
			v.Arr = append(v.Arr, randomValue(r, depth-1))
		}
		return v
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + r.Intn(90))
	}
	return string(b)
}

func randomRequest(r *rand.Rand) *Request {
	req := &Request{
		ID:       r.Uint64(),
		Op:       Op(1 + r.Intn(6)),
		GUID:     randString(r),
		Class:    randString(r),
		Method:   randString(r),
		Endpoint: randString(r),
		Caller:   randString(r),
	}
	for i := 0; i < r.Intn(4); i++ {
		req.Args = append(req.Args, randomValue(r, 2))
	}
	for i := 0; i < r.Intn(3); i++ {
		req.Fields = append(req.Fields, NamedValue{Name: randString(r), Value: randomValue(r, 1)})
	}
	if r.Intn(2) == 1 {
		req.Token = &CallToken{Caller: randString(r), Seq: r.Uint64(),
			Attempt: uint32(r.Intn(5)), Ack: r.Uint64()}
		for i := 0; i < r.Intn(3); i++ {
			resp := Response{ID: r.Uint64(), Result: randomValue(r, 1), Err: randString(r)}
			if r.Intn(2) == 1 {
				resp.Epoch = r.Uint64()
			}
			req.Dedup = append(req.Dedup, DedupEntry{
				Caller: randString(r), Seq: r.Uint64(), Resp: resp,
			})
		}
	}
	if r.Intn(2) == 1 {
		req.Epoch = r.Uint64()
	}
	return req
}

func randomCluster(r *rand.Rand) *ClusterPayload {
	digest := func() PeerDigest {
		return PeerDigest{ID: randString(r), Endpoint: randString(r),
			Heartbeat: r.Uint64(), Leaving: r.Intn(4) == 0}
	}
	c := &ClusterPayload{From: digest()}
	for i := 0; i < r.Intn(4); i++ {
		c.Peers = append(c.Peers, digest())
	}
	for i := 0; i < r.Intn(4); i++ {
		c.Dir = append(c.Dir, DirEntry{
			Key: randString(r),
			Ref: RemoteRef{GUID: randString(r), Endpoint: randString(r),
				Proto: "rrp", Target: randString(r)},
			Version: r.Uint64(),
			Origin:  randString(r),
		})
	}
	for i := 0; i < r.Intn(3); i++ {
		c.Intents = append(c.Intents, Intent{
			GUID: randString(r), Class: randString(r), From: randString(r),
			To: randString(r), Proposer: randString(r),
			Priority: r.Int63() - r.Int63(), Reason: randString(r),
		})
	}
	for i := 0; i < r.Intn(3); i++ {
		s := ObjAffinity{GUID: randString(r), Class: randString(r),
			Home: randString(r), Calls: r.Uint64(), StateBytes: r.Int63()}
		for j := 0; j < r.Intn(3); j++ {
			s.Callers = append(s.Callers, EndpointCount{Endpoint: randString(r), Calls: r.Uint64()})
		}
		c.Stats = append(c.Stats, s)
	}
	for i := 0; i < r.Intn(3); i++ {
		rs := ReplicaSet{GUID: randString(r), Class: randString(r),
			Primary: randString(r), Epoch: r.Uint64(), Version: r.Uint64(),
			Origin: randString(r)}
		for j := 0; j < r.Intn(3); j++ {
			rs.Replicas = append(rs.Replicas, ReplicaInfo{Endpoint: randString(r), GUID: randString(r)})
		}
		c.Replicas = append(c.Replicas, rs)
	}
	return c
}

// TestBinaryClusterRoundTripProperty covers the gossip payload section of
// the codec on both message directions: OpGossip requests carry the
// sender's payload, their responses the receiver's.
func TestBinaryClusterRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := &Request{ID: r.Uint64(), Op: OpGossip, Cluster: randomCluster(r)}
		back, err := DecodeRequestBytes(AppendRequest(nil, req))
		if err != nil || !reflect.DeepEqual(req, back) {
			return false
		}
		resp := &Response{ID: req.ID, Cluster: randomCluster(r)}
		bresp, err := DecodeResponseBytes(AppendResponse(nil, resp))
		return err == nil && reflect.DeepEqual(resp, bresp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterPayloadHTTPCodecs checks the gossip payload survives the
// textual transports too (soap carries XML, json carries JSON): gossip
// must work over whichever protocol a peer serves.
func TestClusterPayloadHTTPCodecs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 25; i++ {
		req := &Request{ID: r.Uint64(), Op: OpGossip, Cluster: randomCluster(r)}
		jb, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		jback := &Request{}
		if err := json.Unmarshal(jb, jback); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(req.Cluster, jback.Cluster) {
			t.Fatalf("json cluster round trip:\n%+v\n%+v", req.Cluster, jback.Cluster)
		}
		xb, err := xml.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		xback := &Request{}
		if err := xml.Unmarshal(xb, xback); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(req.Cluster, xback.Cluster) {
			t.Fatalf("xml cluster round trip:\n%+v\n%+v\n%s", req.Cluster, xback.Cluster, xb)
		}
	}
}

func TestBinaryRequestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := randomRequest(r)
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, req); err != nil {
			return false
		}
		back, err := DecodeRequest(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(req, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryResponseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		resp := &Response{
			ID:      r.Uint64(),
			Result:  randomValue(r, 2),
			ExClass: randString(r),
			ExMsg:   randString(r),
			Err:     randString(r),
		}
		if r.Intn(2) == 1 {
			resp.Redirect = &RemoteRef{
				GUID:     randString(r),
				Endpoint: "rrp://127.0.0.1:2",
				Proto:    "rrp",
				Target:   randString(r),
			}
		}
		if r.Intn(2) == 1 {
			resp.Epoch = r.Uint64()
		}
		var buf bytes.Buffer
		if err := EncodeResponse(&buf, resp); err != nil {
			return false
		}
		back, err := DecodeResponse(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(resp, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		req := randomRequest(r)
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		back := &Request{}
		if err := json.Unmarshal(b, back); err != nil {
			t.Fatal(err)
		}
		if !requestsEquivalent(req, back) {
			t.Fatalf("json round trip:\n%+v\n%+v", req, back)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		req := randomRequest(r)
		b, err := xml.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		back := &Request{}
		if err := xml.Unmarshal(b, back); err != nil {
			t.Fatal(err)
		}
		if !requestsEquivalent(req, back) {
			t.Fatalf("xml round trip:\n%+v\n%+v\n%s", req, back, b)
		}
	}
}

// requestsEquivalent compares requests modulo representation quirks the
// textual codecs have (e.g. empty slices decoding as nil).
func requestsEquivalent(a, b *Request) bool {
	if a.ID != b.ID || a.Op != b.Op || a.GUID != b.GUID ||
		a.Class != b.Class || a.Method != b.Method || a.Endpoint != b.Endpoint {
		return false
	}
	if len(a.Args) != len(b.Args) || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Args {
		if !valuesEquivalent(&a.Args[i], &b.Args[i]) {
			return false
		}
	}
	for i := range a.Fields {
		if a.Fields[i].Name != b.Fields[i].Name ||
			!valuesEquivalent(&a.Fields[i].Value, &b.Fields[i].Value) {
			return false
		}
	}
	return true
}

func valuesEquivalent(a, b *Value) bool {
	if a.Kind != b.Kind || a.Bool != b.Bool || a.Int != b.Int ||
		a.Float != b.Float || a.Str != b.Str || a.Elem != b.Elem {
		return false
	}
	if (a.Ref == nil) != (b.Ref == nil) {
		return false
	}
	if a.Ref != nil && *a.Ref != *b.Ref {
		return false
	}
	if len(a.Arr) != len(b.Arr) {
		return false
	}
	for i := range a.Arr {
		if !valuesEquivalent(&a.Arr[i], &b.Arr[i]) {
			return false
		}
	}
	return true
}

// TestBytesCodecRoundTripProperty round-trips randomised requests and
// responses through the pooled-buffer fast path (AppendRequest /
// DecodeRequestBytes) — the encoding the RRP transport actually uses —
// over randomised Value trees including KRef, nested KArray and empty
// strings.
func TestBytesCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := randomRequest(r)
		// Encode with headroom, as the transport does, then decode the
		// payload portion only.
		buf := AppendRequest(make([]byte, 8), req)
		back, err := DecodeRequestBytes(buf[8:])
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(req, back) {
			return false
		}
		resp := &Response{ID: r.Uint64(), Result: randomValue(r, 3), Err: randString(r)}
		rback, err := DecodeResponseBytes(AppendResponse(nil, resp))
		return err == nil && reflect.DeepEqual(resp, rback)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestBytesCodecMatchesStreamCodec pins the two entry points to one wire
// format: the stream wrappers must produce byte-identical output to the
// append codec.
func TestBytesCodecMatchesStreamCodec(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		req := randomRequest(r)
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), AppendRequest(nil, req)) {
			t.Fatalf("stream and bytes encodings diverge for %+v", req)
		}
	}
}

// TestBytesCodecEdgeValues covers the explicit shapes the transport
// depends on: empty strings everywhere, refs, deep arrays.
func TestBytesCodecEdgeValues(t *testing.T) {
	req := &Request{
		ID: 0, Op: OpInvoke, GUID: "", Class: "", Method: "",
		Args: []Value{
			{Kind: KString, Str: ""},
			{Kind: KRef, Ref: &RemoteRef{GUID: "", Endpoint: "", Proto: "", Target: "", ClassSide: true}},
			{Kind: KArray, Elem: "I", Arr: []Value{
				{Kind: KArray, Elem: "S", Arr: []Value{{Kind: KString, Str: ""}}},
				{Kind: KNull},
			}},
		},
		Endpoint: "",
	}
	back, err := DecodeRequestBytes(AppendRequest(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Fatalf("edge round trip:\n%+v\n%+v", req, back)
	}
}

func TestDecodeBytesRejectsTrailingGarbage(t *testing.T) {
	b := AppendResponse(nil, &Response{ID: 3})
	if _, err := DecodeResponseBytes(append(b, 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	breq := AppendRequest(nil, &Request{ID: 4, Op: OpPing})
	if _, err := DecodeRequestBytes(append(breq, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestTokenExtensionLegacyInterop pins the capability contract of the
// token extension: an untokened request encodes to the exact byte
// prefix a tokened one extends — i.e. tokenless frames are
// byte-identical to the pre-extension format, so legacy decoders (which
// reject any trailing bytes) still parse everything an untokened peer
// sends, and the current decoder parses legacy frames as Token == nil.
func TestTokenExtensionLegacyInterop(t *testing.T) {
	base := &Request{ID: 9, Op: OpInvoke, GUID: "g#1", Method: "m",
		Args: []Value{{Kind: KInt, Int: 5}}, Caller: "rrp://c:1"}
	legacy := AppendRequest(nil, base)

	tokened := *base
	tokened.Token = &CallToken{Caller: "n!1", Seq: 7, Attempt: 1, Ack: 3}
	tokened.Dedup = []DedupEntry{{Caller: "n!1", Seq: 6,
		Resp: Response{ID: 2, Result: Value{Kind: KInt, Int: 1}}}}
	ext := AppendRequest(nil, &tokened)

	if !bytes.HasPrefix(ext, legacy) {
		t.Fatal("tokened frame does not extend the legacy encoding byte-for-byte")
	}
	if len(ext) == len(legacy) {
		t.Fatal("token extension emitted no bytes")
	}
	// A legacy frame decodes with no token.
	back, err := DecodeRequestBytes(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if back.Token != nil || back.Dedup != nil {
		t.Fatalf("legacy frame decoded with token state: %+v", back)
	}
	// The tokened frame round-trips the extension.
	back, err = DecodeRequestBytes(ext)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&tokened, back) {
		t.Fatalf("token round trip:\n%+v\n%+v", &tokened, back)
	}
	// A bare unknown tag with no length is a truncated TLV section and
	// still rejected — skipping requires the declared length.
	if _, err := DecodeRequestBytes(append(append([]byte{}, legacy...), 0x7f)); err == nil {
		t.Fatal("truncated unknown extension accepted")
	}
}

// TestUnknownExtensionSkipped pins the forward-compatibility half of
// the TLV grammar: a well-formed extension section with a tag this
// decoder does not know is skipped over its declared length — the rest
// of the frame (including later known extensions) still decodes — so
// peers that predate an extension degrade gracefully instead of
// rejecting traffic from newer nodes.
func TestUnknownExtensionSkipped(t *testing.T) {
	base := &Request{ID: 9, Op: OpInvoke, GUID: "g#1", Method: "m",
		Token: &CallToken{Caller: "n!1", Seq: 7}}
	frame := AppendRequest(nil, base)
	// Append an unknown tag 9 with a 3-byte payload.
	frame = append(frame, 9, 3, 0xde, 0xad, 0xbf)
	back, err := DecodeRequestBytes(frame)
	if err != nil {
		t.Fatalf("well-formed unknown extension rejected: %v", err)
	}
	if back.Token == nil || back.Token.Seq != 7 {
		t.Fatalf("known extension lost while skipping unknown one: %+v", back)
	}

	// Several unknown sections in a row (a frame from a peer two
	// protocol generations ahead) skip independently, and the known
	// sections before them survive intact.
	ahead := &Request{ID: 10, Op: OpReplicaUpdate, GUID: "r#1",
		Token: &CallToken{Caller: "n!1", Seq: 8}, Epoch: 21}
	multi := AppendRequest(nil, ahead)
	multi = append(multi, 9, 2, 0x01, 0x02)
	multi = append(multi, 12, 0) // empty payload is a valid section
	back, err = DecodeRequestBytes(multi)
	if err != nil {
		t.Fatalf("consecutive unknown extensions rejected: %v", err)
	}
	if back.Token == nil || back.Token.Seq != 8 || back.Epoch != 21 {
		t.Fatalf("known extensions lost while skipping unknown ones: %+v", back)
	}

	// Out-of-order and duplicate tags stay protocol errors: skipping is
	// for unknown content, not for malformed framing.
	if _, err := DecodeRequestBytes(append(AppendRequest(nil, base), 0)); err == nil {
		t.Fatal("extension tag 0 accepted")
	}
	dup := AppendRequest(nil, base)
	dup = append(dup, 1, 0)
	if _, err := DecodeRequestBytes(dup); err == nil {
		t.Fatal("duplicate extension tag accepted")
	}
	// Truncated payload (declared length runs past the frame) rejected.
	trunc := AppendRequest(nil, base)
	trunc = append(trunc, 9, 200, 0x00)
	if _, err := DecodeRequestBytes(trunc); err == nil {
		t.Fatal("truncated extension payload accepted")
	}

	// Responses share the grammar.
	rfrm := AppendResponse(nil, &Response{ID: 3, Epoch: 4})
	rfrm = append(rfrm, 7, 1, 0xee)
	rback, err := DecodeResponseBytes(rfrm)
	if err != nil {
		t.Fatalf("unknown response extension rejected: %v", err)
	}
	if rback.Epoch != 4 {
		t.Fatalf("response epoch lost while skipping: %+v", rback)
	}
}

// TestTraceExtensionInterop pins the trace context's capability
// contract, mirroring the token and epoch interop tests: trace-free
// requests encode byte-identically to the pre-trace protocol, and the
// context rides after the token and epoch sections in tag order.
func TestTraceExtensionInterop(t *testing.T) {
	base := &Request{ID: 11, Op: OpInvoke, GUID: "g#1", Method: "m",
		Token: &CallToken{Caller: "n!1", Seq: 3}, Epoch: 5}
	plain := AppendRequest(nil, base)
	traced := *base
	traced.Trace = TraceContext{Trace: 0xabcdef, Span: 0x1234}
	ext := AppendRequest(nil, &traced)
	if !bytes.HasPrefix(ext, plain) {
		t.Fatal("traced request does not extend the trace-free encoding byte-for-byte")
	}
	back, err := DecodeRequestBytes(ext)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&traced, back) {
		t.Fatalf("trace round trip:\n%+v\n%+v", &traced, back)
	}
	// The span context survives the HTTP carriers too.
	jb, err := json.Marshal(&traced)
	if err != nil {
		t.Fatal(err)
	}
	var jback Request
	if err := json.Unmarshal(jb, &jback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced.Trace, jback.Trace) {
		t.Fatalf("json trace round trip: %+v", jback.Trace)
	}
	xb, err := xml.Marshal(&traced)
	if err != nil {
		t.Fatal(err)
	}
	var xback Request
	if err := xml.Unmarshal(xb, &xback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced.Trace, xback.Trace) {
		t.Fatalf("xml trace round trip: %+v", xback.Trace)
	}
}

// TestTokenHTTPCodecs checks the token rides the SOAP/JSON carriers: the
// whole-struct marshal picks up the new optional fields for free, and
// their absence round-trips as nil for legacy payloads.
func TestTokenHTTPCodecs(t *testing.T) {
	req := &Request{ID: 1, Op: OpInvoke, GUID: "g", Method: "m",
		Token: &CallToken{Caller: "n!2", Seq: 4, Ack: 2},
		Dedup: []DedupEntry{{Caller: "n!2", Seq: 3, Resp: Response{ID: 8}}}}
	jb, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var jback Request
	if err := json.Unmarshal(jb, &jback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req.Token, jback.Token) || len(jback.Dedup) != 1 {
		t.Fatalf("json token round trip: %+v", jback)
	}
	xb, err := xml.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var xback Request
	if err := xml.Unmarshal(xb, &xback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req.Token, xback.Token) {
		t.Fatalf("xml token round trip: %+v\n%s", xback.Token, xb)
	}
	// Legacy payload without the fields.
	var lback Request
	if err := json.Unmarshal([]byte(`{"id":1,"op":2,"guid":"g"}`), &lback); err != nil {
		t.Fatal(err)
	}
	if lback.Token != nil {
		t.Fatal("token materialised from legacy json")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	req := &Request{ID: 1, Op: OpInvoke, GUID: "g", Method: "m",
		Args: []Value{{Kind: KString, Str: "payload-payload"}}}
	var buf bytes.Buffer
	if err := EncodeRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut += 3 {
		if _, err := DecodeRequest(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

var benchReq = &Request{ID: 1, Op: OpInvoke, GUID: "obj-42", Method: "add",
	Args: []Value{{Kind: KInt, Int: 20}, {Kind: KInt, Int: 22}}}

// BenchmarkSeedEncodeChain reproduces the pre-pooling per-call
// allocation stack the RRP transport used to pay: encode through a
// bufio.Writer into a bytes.Buffer, concatenate header+payload into a
// fresh frame slice, and decode through bytes.Reader+bufio.Reader
// wrappers.  Kept as the baseline the pooled path is measured against.
func BenchmarkSeedEncodeChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := EncodeRequest(bw, benchReq); err != nil {
			b.Fatal(err)
		}
		bw.Flush()
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(buf.Len()))
		frame := make([]byte, 0, n+buf.Len())
		frame = append(frame, hdr[:n]...)
		frame = append(frame, buf.Bytes()...)
		if _, err := DecodeRequest(bufio.NewReader(bytes.NewReader(frame[n:]))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPooledEncodeChain is the framing the RRP transport uses now:
// encode into a pooled buffer after reserved length-prefix headroom,
// write the prefix in place, decode straight from the frame bytes.
func BenchmarkPooledEncodeChain(b *testing.B) {
	const headroom = binary.MaxVarintLen64
	pool := sync.Pool{New: func() any { s := make([]byte, 0, 4096); return &s }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bufp := pool.Get().(*[]byte)
		buf := AppendRequest((*bufp)[:headroom], benchReq)
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(len(buf)-headroom))
		copy(buf[headroom-n:], hdr[:n])
		frame := buf[headroom-n:]
		if _, err := DecodeRequestBytes(frame[n:]); err != nil {
			b.Fatal(err)
		}
		*bufp = buf[:0]
		pool.Put(bufp)
	}
}

func TestErrorfHelper(t *testing.T) {
	req := &Request{ID: 77}
	resp := Errorf(req, "boom %d", 9)
	if resp.ID != 77 || resp.Err != "boom 9" {
		t.Fatalf("%+v", resp)
	}
}

func TestOpAndKindStrings(t *testing.T) {
	for _, o := range []Op{OpInvoke, OpInvokeClass, OpCreate, OpMigrateIn, OpPing, OpMigrateOut, Op(99)} {
		if o.String() == "" {
			t.Error("empty op string")
		}
	}
	for _, k := range []ValueKind{KVoid, KNull, KBool, KInt, KFloat, KString, KRef, KArray, ValueKind(77)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}
