package wire

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randomValue(r *rand.Rand, depth int) Value {
	switch k := r.Intn(8); {
	case k == 0:
		return Value{Kind: KVoid}
	case k == 1:
		return Value{Kind: KNull}
	case k == 2:
		return Value{Kind: KBool, Bool: r.Intn(2) == 1}
	case k == 3:
		return Value{Kind: KInt, Int: r.Int63() - r.Int63()}
	case k == 4:
		return Value{Kind: KFloat, Float: r.NormFloat64()}
	case k == 5:
		return Value{Kind: KString, Str: randString(r)}
	case k == 6:
		return Value{Kind: KRef, Ref: &RemoteRef{
			GUID:      randString(r),
			Endpoint:  "rrp://127.0.0.1:1",
			Proto:     "rrp",
			Target:    "C",
			ClassSide: r.Intn(2) == 1,
		}}
	default:
		if depth <= 0 {
			return Value{Kind: KInt, Int: 7}
		}
		n := r.Intn(4)
		v := Value{Kind: KArray, Elem: "I"}
		for i := 0; i < n; i++ {
			v.Arr = append(v.Arr, randomValue(r, depth-1))
		}
		return v
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + r.Intn(90))
	}
	return string(b)
}

func randomRequest(r *rand.Rand) *Request {
	req := &Request{
		ID:       r.Uint64(),
		Op:       Op(1 + r.Intn(6)),
		GUID:     randString(r),
		Class:    randString(r),
		Method:   randString(r),
		Endpoint: randString(r),
	}
	for i := 0; i < r.Intn(4); i++ {
		req.Args = append(req.Args, randomValue(r, 2))
	}
	for i := 0; i < r.Intn(3); i++ {
		req.Fields = append(req.Fields, NamedValue{Name: randString(r), Value: randomValue(r, 1)})
	}
	return req
}

func TestBinaryRequestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := randomRequest(r)
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, req); err != nil {
			return false
		}
		back, err := DecodeRequest(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(req, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryResponseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		resp := &Response{
			ID:      r.Uint64(),
			Result:  randomValue(r, 2),
			ExClass: randString(r),
			ExMsg:   randString(r),
			Err:     randString(r),
		}
		var buf bytes.Buffer
		if err := EncodeResponse(&buf, resp); err != nil {
			return false
		}
		back, err := DecodeResponse(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(resp, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		req := randomRequest(r)
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		back := &Request{}
		if err := json.Unmarshal(b, back); err != nil {
			t.Fatal(err)
		}
		if !requestsEquivalent(req, back) {
			t.Fatalf("json round trip:\n%+v\n%+v", req, back)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		req := randomRequest(r)
		b, err := xml.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		back := &Request{}
		if err := xml.Unmarshal(b, back); err != nil {
			t.Fatal(err)
		}
		if !requestsEquivalent(req, back) {
			t.Fatalf("xml round trip:\n%+v\n%+v\n%s", req, back, b)
		}
	}
}

// requestsEquivalent compares requests modulo representation quirks the
// textual codecs have (e.g. empty slices decoding as nil).
func requestsEquivalent(a, b *Request) bool {
	if a.ID != b.ID || a.Op != b.Op || a.GUID != b.GUID ||
		a.Class != b.Class || a.Method != b.Method || a.Endpoint != b.Endpoint {
		return false
	}
	if len(a.Args) != len(b.Args) || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Args {
		if !valuesEquivalent(&a.Args[i], &b.Args[i]) {
			return false
		}
	}
	for i := range a.Fields {
		if a.Fields[i].Name != b.Fields[i].Name ||
			!valuesEquivalent(&a.Fields[i].Value, &b.Fields[i].Value) {
			return false
		}
	}
	return true
}

func valuesEquivalent(a, b *Value) bool {
	if a.Kind != b.Kind || a.Bool != b.Bool || a.Int != b.Int ||
		a.Float != b.Float || a.Str != b.Str || a.Elem != b.Elem {
		return false
	}
	if (a.Ref == nil) != (b.Ref == nil) {
		return false
	}
	if a.Ref != nil && *a.Ref != *b.Ref {
		return false
	}
	if len(a.Arr) != len(b.Arr) {
		return false
	}
	for i := range a.Arr {
		if !valuesEquivalent(&a.Arr[i], &b.Arr[i]) {
			return false
		}
	}
	return true
}

func TestDecodeRejectsTruncation(t *testing.T) {
	req := &Request{ID: 1, Op: OpInvoke, GUID: "g", Method: "m",
		Args: []Value{{Kind: KString, Str: "payload-payload"}}}
	var buf bytes.Buffer
	if err := EncodeRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut += 3 {
		if _, err := DecodeRequest(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestErrorfHelper(t *testing.T) {
	req := &Request{ID: 77}
	resp := Errorf(req, "boom %d", 9)
	if resp.ID != 77 || resp.Err != "boom 9" {
		t.Fatalf("%+v", resp)
	}
}

func TestOpAndKindStrings(t *testing.T) {
	for _, o := range []Op{OpInvoke, OpInvokeClass, OpCreate, OpMigrateIn, OpPing, OpMigrateOut, Op(99)} {
		if o.String() == "" {
			t.Error("empty op string")
		}
	}
	for _, k := range []ValueKind{KVoid, KNull, KBool, KInt, KFloat, KString, KRef, KArray, ValueKind(77)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}
