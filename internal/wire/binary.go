package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec used by the RRP transport: varint integers,
// length-prefixed strings, recursive values.  Frames are written with an
// outer uvarint length by the transport.

// EncodeRequest serialises req.
func EncodeRequest(w io.Writer, req *Request) error {
	bw := bufio.NewWriter(w)
	e := &benc{w: bw}
	e.u64(req.ID)
	e.u64(uint64(req.Op))
	e.str(req.GUID)
	e.str(req.Class)
	e.str(req.Method)
	e.u64(uint64(len(req.Args)))
	for i := range req.Args {
		e.value(&req.Args[i])
	}
	e.u64(uint64(len(req.Fields)))
	for i := range req.Fields {
		e.str(req.Fields[i].Name)
		e.value(&req.Fields[i].Value)
	}
	e.str(req.Endpoint)
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// DecodeRequest reads a request serialised by EncodeRequest.
func DecodeRequest(r io.Reader) (*Request, error) {
	d := &bdec{r: asByteReader(r)}
	req := &Request{}
	req.ID = d.u64()
	req.Op = Op(d.u64())
	req.GUID = d.str()
	req.Class = d.str()
	req.Method = d.str()
	n := d.u64()
	if n > maxSeq {
		return nil, fmt.Errorf("args length %d too large", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		req.Args = append(req.Args, d.value())
	}
	n = d.u64()
	if n > maxSeq {
		return nil, fmt.Errorf("fields length %d too large", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		nv := NamedValue{Name: d.str()}
		nv.Value = d.value()
		req.Fields = append(req.Fields, nv)
	}
	req.Endpoint = d.str()
	return req, d.err
}

// EncodeResponse serialises resp.
func EncodeResponse(w io.Writer, resp *Response) error {
	bw := bufio.NewWriter(w)
	e := &benc{w: bw}
	e.u64(resp.ID)
	e.value(&resp.Result)
	e.str(resp.ExClass)
	e.str(resp.ExMsg)
	e.str(resp.Err)
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// DecodeResponse reads a response serialised by EncodeResponse.
func DecodeResponse(r io.Reader) (*Response, error) {
	d := &bdec{r: asByteReader(r)}
	resp := &Response{}
	resp.ID = d.u64()
	resp.Result = d.value()
	resp.ExClass = d.str()
	resp.ExMsg = d.str()
	resp.Err = d.str()
	return resp, d.err
}

const maxSeq = 1 << 24

type byteReaderReader interface {
	io.Reader
	io.ByteReader
}

func asByteReader(r io.Reader) byteReaderReader {
	if br, ok := r.(byteReaderReader); ok {
		return br
	}
	return bufio.NewReader(r)
}

type benc struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *benc) u64(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *benc) i64(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *benc) str(s string) {
	e.u64(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *benc) boolean(b bool) {
	if b {
		e.u64(1)
	} else {
		e.u64(0)
	}
}

func (e *benc) value(v *Value) {
	e.u64(uint64(v.Kind))
	switch v.Kind {
	case KBool:
		e.boolean(v.Bool)
	case KInt:
		e.i64(v.Int)
	case KFloat:
		e.u64(math.Float64bits(v.Float))
	case KString:
		e.str(v.Str)
	case KRef:
		e.str(v.Ref.GUID)
		e.str(v.Ref.Endpoint)
		e.str(v.Ref.Proto)
		e.str(v.Ref.Target)
		e.boolean(v.Ref.ClassSide)
	case KArray:
		e.str(v.Elem)
		e.u64(uint64(len(v.Arr)))
		for i := range v.Arr {
			e.value(&v.Arr[i])
		}
	}
}

type bdec struct {
	r   byteReaderReader
	err error
}

func (d *bdec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil && d.err == nil {
		d.err = err
	}
	return v
}

func (d *bdec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil && d.err == nil {
		d.err = err
	}
	return v
}

func (d *bdec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > maxSeq {
		d.err = fmt.Errorf("string length %d too large", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil && d.err == nil {
		d.err = err
	}
	return string(b)
}

func (d *bdec) boolean() bool { return d.u64() != 0 }

func (d *bdec) value() Value {
	v := Value{Kind: ValueKind(d.u64())}
	switch v.Kind {
	case KBool:
		v.Bool = d.boolean()
	case KInt:
		v.Int = d.i64()
	case KFloat:
		v.Float = math.Float64frombits(d.u64())
	case KString:
		v.Str = d.str()
	case KRef:
		v.Ref = &RemoteRef{
			GUID:     d.str(),
			Endpoint: d.str(),
			Proto:    d.str(),
			Target:   d.str(),
		}
		v.Ref.ClassSide = d.boolean()
	case KArray:
		v.Elem = d.str()
		n := d.u64()
		if n > maxSeq {
			if d.err == nil {
				d.err = fmt.Errorf("array length %d too large", n)
			}
			return v
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			v.Arr = append(v.Arr, d.value())
		}
	case KVoid, KNull, KInvalid:
	default:
		if d.err == nil {
			d.err = fmt.Errorf("bad value kind %d", v.Kind)
		}
	}
	return v
}
