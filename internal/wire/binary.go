package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec used by the RRP transport: varint integers,
// length-prefixed strings, recursive values.  Frames are written with an
// outer uvarint length by the transport.
//
// The primary entry points are the allocation-free Append/DecodeBytes
// pairs: AppendRequest/AppendResponse encode directly into a caller-owned
// byte slice (typically a sync.Pool-recycled frame buffer with headroom
// reserved for the transport's length prefix), and
// DecodeRequestBytes/DecodeResponseBytes read straight from a frame
// without intermediate readers.  Decoded messages never alias the input
// slice — all strings are copied — so frame buffers can be recycled
// immediately after decoding.  The io.Reader/io.Writer forms are thin
// wrappers for stream-oriented callers.

// AppendRequest appends req's encoding to dst and returns the extended
// slice.
func AppendRequest(dst []byte, req *Request) []byte {
	dst = appendUvarint(dst, req.ID)
	dst = appendUvarint(dst, uint64(req.Op))
	dst = appendString(dst, req.GUID)
	dst = appendString(dst, req.Class)
	dst = appendString(dst, req.Method)
	dst = appendUvarint(dst, uint64(len(req.Args)))
	for i := range req.Args {
		dst = appendValue(dst, &req.Args[i])
	}
	dst = appendUvarint(dst, uint64(len(req.Fields)))
	for i := range req.Fields {
		dst = appendString(dst, req.Fields[i].Name)
		dst = appendValue(dst, &req.Fields[i].Value)
	}
	dst = appendString(dst, req.Endpoint)
	dst = appendString(dst, req.Caller)
	dst = appendCluster(dst, req.Cluster)
	// Extension sections: each is emitted only when its content is
	// present, so an extension-free request encodes byte-for-byte as the
	// pre-extension protocol and legacy decoders (which reject trailing
	// bytes) still accept it.  Each section is tag-length-value — a
	// uvarint tag, a uvarint byte length, then the payload — in strictly
	// ascending tag order.  The length makes every section skippable: a
	// decoder that does not know a tag jumps over its payload instead of
	// rejecting the frame, so new extensions (the trace context below,
	// and future ones) degrade gracefully on old peers.
	if req.Token != nil || len(req.Dedup) > 0 {
		dst = appendUvarint(dst, reqExtTokens)
		mark := len(dst)
		if req.Token == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = appendToken(dst, req.Token)
		}
		dst = appendUvarint(dst, uint64(len(req.Dedup)))
		for i := range req.Dedup {
			e := &req.Dedup[i]
			dst = appendString(dst, e.Caller)
			dst = appendUvarint(dst, e.Seq)
			// Entries embed a full response as a length-prefixed blob:
			// responses grew their own trailing extension (the read
			// epoch), so they are no longer self-delimiting and the
			// prefix marks where each nested response ends.
			blob := AppendResponse(nil, &e.Resp)
			dst = appendUvarint(dst, uint64(len(blob)))
			dst = append(dst, blob...)
		}
		dst = insertLength(dst, mark)
	}
	if req.Epoch != 0 {
		dst = appendUvarint(dst, reqExtReplica)
		mark := len(dst)
		dst = appendUvarint(dst, req.Epoch)
		dst = insertLength(dst, mark)
	}
	if req.Trace != (TraceContext{}) {
		dst = appendUvarint(dst, reqExtTrace)
		mark := len(dst)
		dst = appendUvarint(dst, req.Trace.Trace)
		dst = appendUvarint(dst, req.Trace.Span)
		dst = insertLength(dst, mark)
	}
	if req.DeadlineUs != 0 {
		dst = appendUvarint(dst, reqExtDeadline)
		mark := len(dst)
		dst = appendUvarint(dst, req.DeadlineUs)
		dst = insertLength(dst, mark)
	}
	if req.Priority != 0 {
		dst = appendUvarint(dst, reqExtPriority)
		mark := len(dst)
		dst = appendUvarint(dst, uint64(req.Priority))
		dst = insertLength(dst, mark)
	}
	return dst
}

// Request extension section tags, emitted in ascending order.
const (
	// reqExtTokens carries the exactly-once call token and migrated
	// dedup entries.
	reqExtTokens = 1
	// reqExtReplica carries the write epoch on replica-maintenance ops.
	reqExtReplica = 2
	// reqExtTrace carries the causal span context (trace id, parent
	// span id) the request runs under.
	reqExtTrace = 3
	// reqExtDeadline carries the call's remaining latency budget in
	// microseconds; each hop decrements it by measured queue/gate wait.
	reqExtDeadline = 4
	// reqExtPriority carries the call's admission priority class;
	// higher classes survive deeper into server overload.
	reqExtPriority = 5
)

// respExtEpoch tags the response extension section carrying the read
// epoch of a replicated object's state.
const respExtEpoch = 1

func appendToken(dst []byte, t *CallToken) []byte {
	dst = appendString(dst, t.Caller)
	dst = appendUvarint(dst, t.Seq)
	dst = appendUvarint(dst, uint64(t.Attempt))
	return appendUvarint(dst, t.Ack)
}

// insertLength turns dst[mark:] into a length-prefixed TLV payload by
// inserting its uvarint byte length at mark.  The payload is encoded
// first and shifted (a short memmove — extension payloads are tens of
// bytes except for migration dedup shipments) so the encoder stays
// allocation-free.
func insertLength(dst []byte, mark int) []byte {
	body := len(dst) - mark
	var lb [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(lb[:], uint64(body))
	dst = append(dst, lb[:ln]...)
	copy(dst[mark+ln:], dst[mark:mark+body])
	copy(dst[mark:mark+ln], lb[:ln])
	return dst
}

// AppendResponse appends resp's encoding to dst and returns the extended
// slice.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst = appendUvarint(dst, resp.ID)
	dst = appendValue(dst, &resp.Result)
	dst = appendString(dst, resp.ExClass)
	dst = appendString(dst, resp.ExMsg)
	dst = appendString(dst, resp.Err)
	dst = appendRef(dst, resp.Redirect)
	dst = appendCluster(dst, resp.Cluster)
	// Trailing extension, omitted when zero: epoch-free responses stay
	// byte-identical to the pre-replication protocol.  Same skippable
	// tag-length-value grammar as request extensions.
	if resp.Epoch != 0 {
		dst = appendUvarint(dst, respExtEpoch)
		mark := len(dst)
		dst = appendUvarint(dst, resp.Epoch)
		dst = insertLength(dst, mark)
	}
	return dst
}

// appendRef encodes an optional RemoteRef as a presence byte plus the
// reference fields.
func appendRef(dst []byte, ref *RemoteRef) []byte {
	if ref == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendString(dst, ref.GUID)
	dst = appendString(dst, ref.Endpoint)
	dst = appendString(dst, ref.Proto)
	dst = appendString(dst, ref.Target)
	return appendBool(dst, ref.ClassSide)
}

// DecodeRequestBytes decodes exactly one request from b.  Trailing bytes
// are a protocol error: a frame delimits one message.
func DecodeRequestBytes(b []byte) (*Request, error) {
	d := &bdec{b: b}
	req := &Request{}
	req.ID = d.u64()
	req.Op = Op(d.u64())
	req.GUID = d.str()
	req.Class = d.str()
	req.Method = d.str()
	n := d.u64()
	if d.err == nil && n > maxSeq {
		return nil, fmt.Errorf("args length %d too large", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		req.Args = append(req.Args, d.value())
	}
	n = d.u64()
	if d.err == nil && n > maxSeq {
		return nil, fmt.Errorf("fields length %d too large", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		nv := NamedValue{Name: d.str()}
		nv.Value = d.value()
		req.Fields = append(req.Fields, nv)
	}
	req.Endpoint = d.str()
	req.Caller = d.str()
	req.Cluster = d.cluster()
	// Legacy frames end here; extension sections are optional
	// tag-length-value, in ascending tag order.  Unknown tags are
	// skipped over their declared length so frames from newer peers
	// degrade gracefully; known tags must consume exactly their length.
	prev := uint64(0)
	for d.err == nil && d.off < len(d.b) {
		ext := d.u64()
		if d.err != nil {
			break
		}
		if ext <= prev {
			return nil, fmt.Errorf("request extension %d out of order", ext)
		}
		prev = ext
		end, ok := d.extBody(ext)
		if !ok {
			break
		}
		switch ext {
		case reqExtTokens:
			if d.boolean() {
				req.Token = d.token()
			}
			n = d.u64()
			if d.err == nil && n > maxSeq {
				return nil, fmt.Errorf("dedup list length %d too large", n)
			}
			for i := uint64(0); i < n && d.err == nil; i++ {
				e := DedupEntry{Caller: d.str(), Seq: d.u64()}
				d.nestedResponse(&e.Resp)
				req.Dedup = append(req.Dedup, e)
			}
		case reqExtReplica:
			req.Epoch = d.u64()
		case reqExtTrace:
			req.Trace = TraceContext{Trace: d.u64(), Span: d.u64()}
		case reqExtDeadline:
			req.DeadlineUs = d.u64()
		case reqExtPriority:
			p := d.u64()
			if p > math.MaxUint32 {
				p = math.MaxUint32
			}
			req.Priority = uint32(p)
		default:
			d.off = end
		}
		if d.err == nil && d.off != end {
			return nil, fmt.Errorf("request extension %d length mismatch", ext)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// extBody reads a TLV extension section's declared byte length and
// returns the offset where the section's payload ends.
func (d *bdec) extBody(ext uint64) (end int, ok bool) {
	n := d.u64()
	if d.err != nil {
		return 0, false
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("truncated extension %d at offset %d", ext, d.off)
		return 0, false
	}
	return d.off + int(n), true
}

// nestedResponse decodes a length-prefixed response blob embedded in a
// request extension section (written by AppendRequest's dedup loop).
func (d *bdec) nestedResponse(resp *Response) {
	n := d.u64()
	if d.err != nil {
		return
	}
	if n > maxSeq || uint64(len(d.b)-d.off) < n {
		d.fail("truncated nested response at offset %d", d.off)
		return
	}
	sub, err := DecodeResponseBytes(d.b[d.off : d.off+int(n)])
	if err != nil {
		d.fail("nested response: %v", err)
		return
	}
	*resp = *sub
	d.off += int(n)
}

// DecodeResponseBytes decodes exactly one response from b.
func DecodeResponseBytes(b []byte) (*Response, error) {
	d := &bdec{b: b}
	resp := &Response{}
	d.response(resp)
	// Legacy responses end here; extension sections are optional
	// tag-length-value, unknown tags skipped (same grammar as request
	// extensions).
	prev := uint64(0)
	for d.err == nil && d.off < len(d.b) {
		ext := d.u64()
		if d.err != nil {
			break
		}
		if ext <= prev {
			return nil, fmt.Errorf("response extension %d out of order", ext)
		}
		prev = ext
		end, ok := d.extBody(ext)
		if !ok {
			break
		}
		switch ext {
		case respExtEpoch:
			resp.Epoch = d.u64()
		default:
			d.off = end
		}
		if d.err == nil && d.off != end {
			return nil, fmt.Errorf("response extension %d length mismatch", ext)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

// response decodes the fixed (pre-extension) part of a response written
// by AppendResponse.
func (d *bdec) response(resp *Response) {
	resp.ID = d.u64()
	resp.Result = d.value()
	resp.ExClass = d.str()
	resp.ExMsg = d.str()
	resp.Err = d.str()
	resp.Redirect = d.ref()
	resp.Cluster = d.cluster()
}

// token decodes a CallToken written by appendToken.
func (d *bdec) token() *CallToken {
	t := &CallToken{Caller: d.str(), Seq: d.u64()}
	t.Attempt = uint32(d.u64())
	t.Ack = d.u64()
	if d.err != nil {
		return nil
	}
	return t
}

// EncodeRequest serialises req to a stream.
func EncodeRequest(w io.Writer, req *Request) error {
	_, err := w.Write(AppendRequest(nil, req))
	return err
}

// DecodeRequest reads one request from a stream holding exactly one
// encoded request.
func DecodeRequest(r io.Reader) (*Request, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeRequestBytes(b)
}

// EncodeResponse serialises resp to a stream.
func EncodeResponse(w io.Writer, resp *Response) error {
	_, err := w.Write(AppendResponse(nil, resp))
	return err
}

// DecodeResponse reads one response from a stream holding exactly one
// encoded response.
func DecodeResponse(r io.Reader) (*Response, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeResponseBytes(b)
}

const maxSeq = 1 << 24

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendValue(dst []byte, v *Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(v.Kind))
	switch v.Kind {
	case KBool:
		dst = appendBool(dst, v.Bool)
	case KInt:
		dst = binary.AppendVarint(dst, v.Int)
	case KFloat:
		dst = binary.AppendUvarint(dst, math.Float64bits(v.Float))
	case KString:
		dst = appendString(dst, v.Str)
	case KRef:
		dst = appendString(dst, v.Ref.GUID)
		dst = appendString(dst, v.Ref.Endpoint)
		dst = appendString(dst, v.Ref.Proto)
		dst = appendString(dst, v.Ref.Target)
		dst = appendBool(dst, v.Ref.ClassSide)
	case KArray:
		dst = appendString(dst, v.Elem)
		dst = binary.AppendUvarint(dst, uint64(len(v.Arr)))
		for i := range v.Arr {
			dst = appendValue(dst, &v.Arr[i])
		}
	}
	return dst
}

// appendCluster encodes an optional gossip payload as a presence byte
// plus its sections.
func appendCluster(dst []byte, c *ClusterPayload) []byte {
	if c == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendDigest(dst, &c.From)
	dst = appendUvarint(dst, uint64(len(c.Peers)))
	for i := range c.Peers {
		dst = appendDigest(dst, &c.Peers[i])
	}
	dst = appendUvarint(dst, uint64(len(c.Dir)))
	for i := range c.Dir {
		e := &c.Dir[i]
		dst = appendString(dst, e.Key)
		dst = appendRef(dst, &e.Ref)
		dst = appendUvarint(dst, e.Version)
		dst = appendString(dst, e.Origin)
	}
	dst = appendUvarint(dst, uint64(len(c.Intents)))
	for i := range c.Intents {
		in := &c.Intents[i]
		dst = appendString(dst, in.GUID)
		dst = appendString(dst, in.Class)
		dst = appendString(dst, in.From)
		dst = appendString(dst, in.To)
		dst = appendString(dst, in.Proposer)
		dst = binary.AppendVarint(dst, in.Priority)
		dst = appendString(dst, in.Reason)
	}
	dst = appendUvarint(dst, uint64(len(c.Stats)))
	for i := range c.Stats {
		s := &c.Stats[i]
		dst = appendString(dst, s.GUID)
		dst = appendString(dst, s.Class)
		dst = appendString(dst, s.Home)
		dst = appendUvarint(dst, s.Calls)
		dst = binary.AppendVarint(dst, s.StateBytes)
		dst = appendUvarint(dst, uint64(len(s.Callers)))
		for j := range s.Callers {
			dst = appendString(dst, s.Callers[j].Endpoint)
			dst = appendUvarint(dst, s.Callers[j].Calls)
		}
	}
	dst = appendUvarint(dst, uint64(len(c.Replicas)))
	for i := range c.Replicas {
		rs := &c.Replicas[i]
		dst = appendString(dst, rs.GUID)
		dst = appendString(dst, rs.Class)
		dst = appendString(dst, rs.Primary)
		dst = appendUvarint(dst, rs.Epoch)
		dst = appendUvarint(dst, rs.Version)
		dst = appendString(dst, rs.Origin)
		dst = appendUvarint(dst, uint64(len(rs.Replicas)))
		for j := range rs.Replicas {
			dst = appendString(dst, rs.Replicas[j].Endpoint)
			dst = appendString(dst, rs.Replicas[j].GUID)
		}
	}
	return dst
}

func appendDigest(dst []byte, p *PeerDigest) []byte {
	dst = appendString(dst, p.ID)
	dst = appendString(dst, p.Endpoint)
	dst = appendUvarint(dst, p.Heartbeat)
	return appendBool(dst, p.Leaving)
}

// bdec decodes from a byte slice with sticky errors.
type bdec struct {
	b   []byte
	off int
	err error
}

func (d *bdec) fail(format string, a ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, a...)
	}
}

func (d *bdec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%d trailing bytes after message", len(d.b)-d.off)
	}
	return nil
}

func (d *bdec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or malformed uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > maxSeq {
		d.fail("string length %d too large", n)
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("truncated string at offset %d", d.off)
		return ""
	}
	// string() copies, so the decoded message never aliases the frame.
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *bdec) boolean() bool { return d.u64() != 0 }

// ref decodes an optional RemoteRef written by appendRef.
func (d *bdec) ref() *RemoteRef {
	if !d.boolean() {
		return nil
	}
	r := &RemoteRef{
		GUID:     d.str(),
		Endpoint: d.str(),
		Proto:    d.str(),
		Target:   d.str(),
	}
	r.ClassSide = d.boolean()
	if d.err != nil {
		return nil
	}
	return r
}

// cluster decodes an optional gossip payload written by appendCluster.
func (d *bdec) cluster() *ClusterPayload {
	if !d.boolean() {
		return nil
	}
	c := &ClusterPayload{From: d.digest()}
	n := d.u64()
	if d.err == nil && n > maxSeq {
		d.fail("peer list length %d too large", n)
		return nil
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		c.Peers = append(c.Peers, d.digest())
	}
	n = d.u64()
	if d.err == nil && n > maxSeq {
		d.fail("directory length %d too large", n)
		return nil
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		e := DirEntry{Key: d.str()}
		if r := d.ref(); r != nil {
			e.Ref = *r
		}
		e.Version = d.u64()
		e.Origin = d.str()
		c.Dir = append(c.Dir, e)
	}
	n = d.u64()
	if d.err == nil && n > maxSeq {
		d.fail("intent list length %d too large", n)
		return nil
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		c.Intents = append(c.Intents, Intent{
			GUID: d.str(), Class: d.str(), From: d.str(), To: d.str(),
			Proposer: d.str(), Priority: d.i64(), Reason: d.str(),
		})
	}
	n = d.u64()
	if d.err == nil && n > maxSeq {
		d.fail("stats list length %d too large", n)
		return nil
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		s := ObjAffinity{GUID: d.str(), Class: d.str(), Home: d.str(),
			Calls: d.u64(), StateBytes: d.i64()}
		m := d.u64()
		if d.err == nil && m > maxSeq {
			d.fail("caller list length %d too large", m)
			return nil
		}
		for j := uint64(0); j < m && d.err == nil; j++ {
			s.Callers = append(s.Callers, EndpointCount{Endpoint: d.str(), Calls: d.u64()})
		}
		c.Stats = append(c.Stats, s)
	}
	n = d.u64()
	if d.err == nil && n > maxSeq {
		d.fail("replica list length %d too large", n)
		return nil
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		rs := ReplicaSet{GUID: d.str(), Class: d.str(), Primary: d.str(),
			Epoch: d.u64(), Version: d.u64(), Origin: d.str()}
		m := d.u64()
		if d.err == nil && m > maxSeq {
			d.fail("replica member list length %d too large", m)
			return nil
		}
		for j := uint64(0); j < m && d.err == nil; j++ {
			rs.Replicas = append(rs.Replicas, ReplicaInfo{Endpoint: d.str(), GUID: d.str()})
		}
		c.Replicas = append(c.Replicas, rs)
	}
	if d.err != nil {
		return nil
	}
	return c
}

func (d *bdec) digest() PeerDigest {
	p := PeerDigest{ID: d.str(), Endpoint: d.str(), Heartbeat: d.u64()}
	p.Leaving = d.boolean()
	return p
}

func (d *bdec) value() Value {
	v := Value{Kind: ValueKind(d.u64())}
	switch v.Kind {
	case KBool:
		v.Bool = d.boolean()
	case KInt:
		v.Int = d.i64()
	case KFloat:
		v.Float = math.Float64frombits(d.u64())
	case KString:
		v.Str = d.str()
	case KRef:
		v.Ref = &RemoteRef{
			GUID:     d.str(),
			Endpoint: d.str(),
			Proto:    d.str(),
			Target:   d.str(),
		}
		v.Ref.ClassSide = d.boolean()
	case KArray:
		v.Elem = d.str()
		n := d.u64()
		if n > maxSeq {
			d.fail("array length %d too large", n)
			return v
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			v.Arr = append(v.Arr, d.value())
		}
	case KVoid, KNull, KInvalid:
	default:
		d.fail("bad value kind %d", v.Kind)
	}
	return v
}
