package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// Seed corpus for the decoder fuzzers: valid encodings exercising every
// optional section — the token trailing extension, migrated dedup
// entries (with their length-prefixed nested responses), the replica
// epoch extensions on both directions, the trace-context extension,
// OpIntrospect probes, and a gossip payload with every list populated
// including replica sets.  The fuzzer mutates from these so it reaches
// the deep sections instead of bouncing off the header.
func seedRequests() []*Request {
	return []*Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpInvoke, GUID: "g#1", Method: "m",
			Args:   []Value{{Kind: KInt, Int: 42}, {Kind: KString, Str: "s"}},
			Caller: "rrp://c:1"},
		{ID: 3, Op: OpInvoke, GUID: "g#1", Method: "m",
			Token: &CallToken{Caller: "n!1", Seq: 9, Attempt: 1, Ack: 4}},
		{ID: 4, Op: OpMigrateIn, Class: "C",
			Fields: []NamedValue{{Name: "f", Value: Value{Kind: KArray, Elem: "I",
				Arr: []Value{{Kind: KInt, Int: 1}, {Kind: KInt, Int: 2}}}}},
			Token: &CallToken{Caller: "n!1", Seq: 10},
			Dedup: []DedupEntry{{Caller: "x!2", Seq: 3,
				Resp: Response{ID: 7, Result: Value{Kind: KInt, Int: 5}, Epoch: 2}}}},
		{ID: 5, Op: OpReplicaInstall, GUID: "g#1", Class: "C",
			Endpoint: "rrp://p:1", Epoch: 17,
			Fields: []NamedValue{{Name: "v", Value: Value{Kind: KInt, Int: 8}}},
			Token:  &CallToken{Caller: "n!1", Seq: 11}},
		{ID: 6, Op: OpReplicaUpdate, GUID: "r#1", Epoch: 18,
			Fields: []NamedValue{{Name: "v", Value: Value{Kind: KInt, Int: 9}}}},
		{ID: 8, Op: OpInvoke, GUID: "g#1", Method: "m",
			Token: &CallToken{Caller: "n!1", Seq: 12, Attempt: 2},
			Trace: TraceContext{Trace: 0xfeedface, Span: 0xbeef}},
		{ID: 9, Op: OpIntrospect, Method: "spans"},
		{ID: 11, Op: OpInvoke, GUID: "g#1", Method: "m",
			Caller: "rrp://c:1", DeadlineUs: 2500},
		{ID: 12, Op: OpInvoke, GUID: "g#1", Method: "m",
			Trace:      TraceContext{Trace: 0xcafe, Span: 0xf00d},
			DeadlineUs: 150000},
		{ID: 10, Op: OpIntrospect, GUID: "abcdef0123456789", Method: "trace",
			Trace: TraceContext{Trace: 1, Span: 2}},
		{ID: 13, Op: OpInvoke, GUID: "g#1", Method: "m",
			Caller: "rrp://c:1", Priority: 1},
		{ID: 14, Op: OpInvoke, GUID: "g#1", Method: "m",
			Token:      &CallToken{Caller: "n!1", Seq: 13},
			Trace:      TraceContext{Trace: 0xd00d, Span: 0x77},
			DeadlineUs: 90000, Priority: 3},
		{ID: 7, Op: OpGossip, Cluster: &ClusterPayload{
			From:  PeerDigest{ID: "a", Endpoint: "rrp://a:1", Heartbeat: 5},
			Peers: []PeerDigest{{ID: "b", Endpoint: "rrp://b:1", Heartbeat: 3, Leaving: true}},
			Dir: []DirEntry{{Key: "g#0",
				Ref:     RemoteRef{GUID: "g#1", Endpoint: "rrp://b:1", Proto: "rrp", Target: "C"},
				Version: 2, Origin: "b"}},
			Intents: []Intent{{GUID: "g#1", Class: "C", From: "rrp://b:1",
				To: "rrp://c:1", Proposer: "a", Priority: 12, Reason: "affinity"}},
			Stats: []ObjAffinity{{GUID: "g#1", Class: "C", Home: "rrp://b:1",
				Calls: 100, StateBytes: 64,
				Callers: []EndpointCount{{Endpoint: "rrp://c:1", Calls: 90}}}},
			Replicas: []ReplicaSet{{GUID: "g#1", Class: "C", Primary: "rrp://b:1",
				Epoch: 17, Version: 3, Origin: "b",
				Replicas: []ReplicaInfo{{Endpoint: "rrp://c:1", GUID: "r#1"}}}},
		}},
	}
}

func seedResponses() []*Response {
	return []*Response{
		{ID: 1},
		{ID: 2, Result: Value{Kind: KInt, Int: 42}},
		{ID: 3, ExClass: "sys.Exception", ExMsg: "boom"},
		{ID: 4, Err: "unknown GUID"},
		{ID: 5, Result: Value{Kind: KRef, Ref: &RemoteRef{GUID: "g#2",
			Endpoint: "rrp://b:1", Proto: "rrp", Target: "C"}},
			Redirect: &RemoteRef{GUID: "g#3", Endpoint: "rrp://c:1", Proto: "rrp", Target: "C"}},
		{ID: 6, Result: Value{Kind: KInt, Int: 7}, Epoch: 19},
		{ID: 7, Cluster: &ClusterPayload{
			From: PeerDigest{ID: "b", Endpoint: "rrp://b:1", Heartbeat: 8},
			Replicas: []ReplicaSet{{GUID: "g#1", Primary: "rrp://b:1",
				Epoch: 17, Version: 3, Origin: "b"}}}},
	}
}

// FuzzDecodeRequest feeds the binary request decoder arbitrary frames.
// The decoder must never panic; any frame it accepts must re-encode and
// re-decode to the same message (the codec is canonical for everything
// the decoder admits).
func FuzzDecodeRequest(f *testing.F) {
	for _, req := range seedRequests() {
		f.Add(AppendRequest(nil, req))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeRequestBytes(b)
		if err != nil {
			return
		}
		enc := AppendRequest(nil, req)
		back, err := DecodeRequestBytes(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v\nfirst: %+v", err, req)
		}
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("re-encode not canonical:\nfirst: %+v\nsecond: %+v", req, back)
		}
	})
}

// FuzzDecodeResponse is FuzzDecodeRequest's counterpart for responses,
// covering the epoch trailing extension and the gossip payload reply.
func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range seedResponses() {
		f.Add(AppendResponse(nil, resp))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := DecodeResponseBytes(b)
		if err != nil {
			return
		}
		enc := AppendResponse(nil, resp)
		back, err := DecodeResponseBytes(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v\nfirst: %+v", err, resp)
		}
		if !reflect.DeepEqual(resp, back) {
			t.Fatalf("re-encode not canonical:\nfirst: %+v\nsecond: %+v", resp, back)
		}
	})
}

// TestSeedCorpusRoundTrips pins the seed corpus itself: every seed is a
// valid frame that round-trips exactly, so the fuzzers always start
// from deep, meaningful inputs.
func TestSeedCorpusRoundTrips(t *testing.T) {
	for _, req := range seedRequests() {
		b := AppendRequest(nil, req)
		back, err := DecodeRequestBytes(b)
		if err != nil {
			t.Fatalf("seed request %d: %v", req.ID, err)
		}
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("seed request %d round trip:\n%+v\n%+v", req.ID, req, back)
		}
	}
	for _, resp := range seedResponses() {
		b := AppendResponse(nil, resp)
		back, err := DecodeResponseBytes(b)
		if err != nil {
			t.Fatalf("seed response %d: %v", resp.ID, err)
		}
		if !reflect.DeepEqual(resp, back) {
			t.Fatalf("seed response %d round trip:\n%+v\n%+v", resp.ID, resp, back)
		}
	}
}

// TestEpochExtensionLegacyInterop pins the epoch extensions' capability
// contract, mirroring TestTokenExtensionLegacyInterop: epoch-free
// messages encode byte-identically to the pre-replication protocol, and
// epoch-bearing ones extend that prefix.
func TestEpochExtensionLegacyInterop(t *testing.T) {
	req := &Request{ID: 9, Op: OpReplicaUpdate, GUID: "r#1",
		Fields: []NamedValue{{Name: "v", Value: Value{Kind: KInt, Int: 3}}}}
	plain := AppendRequest(nil, req)
	withEpoch := *req
	withEpoch.Epoch = 21
	ext := AppendRequest(nil, &withEpoch)
	if !bytes.HasPrefix(ext, plain) {
		t.Fatal("epoch-bearing request does not extend the plain encoding byte-for-byte")
	}
	back, err := DecodeRequestBytes(ext)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 21 {
		t.Fatalf("request epoch lost: %+v", back)
	}

	resp := &Response{ID: 9, Result: Value{Kind: KInt, Int: 3}}
	plainR := AppendResponse(nil, resp)
	withEpochR := *resp
	withEpochR.Epoch = 22
	extR := AppendResponse(nil, &withEpochR)
	if !bytes.HasPrefix(extR, plainR) {
		t.Fatal("epoch-bearing response does not extend the plain encoding byte-for-byte")
	}
	backR, err := DecodeResponseBytes(extR)
	if err != nil {
		t.Fatal(err)
	}
	if backR.Epoch != 22 {
		t.Fatalf("response epoch lost: %+v", backR)
	}
	// Both extensions together on one request: tokens section first,
	// then the replica section, in tag order.
	both := withEpoch
	both.Token = &CallToken{Caller: "n!1", Seq: 5}
	bb := AppendRequest(nil, &both)
	backB, err := DecodeRequestBytes(bb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&both, backB) {
		t.Fatalf("combined extensions round trip:\n%+v\n%+v", &both, backB)
	}
}
