package policy

import (
	"sync"
	"testing"
)

func TestDefaultIsLocal(t *testing.T) {
	tab := NewTable()
	pl, ver := tab.For("Anything")
	if pl.Kind != Local || ver != 0 {
		t.Fatalf("default: %+v ver=%d", pl, ver)
	}
}

func TestRulesAndVersioning(t *testing.T) {
	tab := NewTable()
	remote, err := RemoteAt("rrp://10.0.0.1:7")
	if err != nil {
		t.Fatal(err)
	}
	if remote.Proto != "rrp" || remote.Endpoint != "rrp://10.0.0.1:7" {
		t.Fatalf("%+v", remote)
	}
	tab.SetClass("C", remote)
	pl, v1 := tab.For("C")
	if pl.Kind != Remote {
		t.Fatal("rule not applied")
	}
	if other, _ := tab.For("D"); other.Kind != Local {
		t.Fatal("rule leaked")
	}
	tab.Clear("C")
	pl, v2 := tab.For("C")
	if pl.Kind != Local || v2 <= v1 {
		t.Fatalf("clear: %+v v1=%d v2=%d", pl, v1, v2)
	}
	tab.SetDefault(remote)
	if pl, _ := tab.For("Anything"); pl.Kind != Remote {
		t.Fatal("default not applied")
	}
}

func TestRemoteAtRejectsGarbage(t *testing.T) {
	if _, err := RemoteAt("not-an-endpoint"); err == nil {
		t.Fatal("garbage endpoint accepted")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	tab := NewTable()
	remote, _ := RemoteAt("soap://h:1")
	tab.SetClass("C", remote)
	rules, def := tab.Snapshot()
	if def.Kind != Local || len(rules) != 1 {
		t.Fatalf("%+v %+v", rules, def)
	}
	rules["C"] = Placement{Kind: Local}
	if pl, _ := tab.For("C"); pl.Kind != Remote {
		t.Fatal("snapshot aliased internal state")
	}
}

func TestConcurrentAccess(t *testing.T) {
	tab := NewTable()
	remote, _ := RemoteAt("rrp://h:1")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if i%2 == 0 {
					tab.SetClass("C", remote)
				} else {
					tab.Clear("C")
				}
				tab.For("C")
				tab.Version()
			}
		}(g)
	}
	wg.Wait()
}

func TestKindString(t *testing.T) {
	if Local.String() != "local" || Remote.String() != "remote" {
		t.Fatal("kind strings")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}
