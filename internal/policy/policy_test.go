package policy

import (
	"sync"
	"testing"
)

func TestDefaultIsLocal(t *testing.T) {
	tab := NewTable()
	pl, ver := tab.For("Anything")
	if pl.Kind != Local || ver != 0 {
		t.Fatalf("default: %+v ver=%d", pl, ver)
	}
}

func TestRulesAndVersioning(t *testing.T) {
	tab := NewTable()
	remote, err := RemoteAt("rrp://10.0.0.1:7")
	if err != nil {
		t.Fatal(err)
	}
	if remote.Proto != "rrp" || remote.Endpoint != "rrp://10.0.0.1:7" {
		t.Fatalf("%+v", remote)
	}
	tab.SetClass("C", remote)
	pl, v1 := tab.For("C")
	if pl.Kind != Remote {
		t.Fatal("rule not applied")
	}
	if other, _ := tab.For("D"); other.Kind != Local {
		t.Fatal("rule leaked")
	}
	tab.Clear("C")
	pl, v2 := tab.For("C")
	if pl.Kind != Local || v2 <= v1 {
		t.Fatalf("clear: %+v v1=%d v2=%d", pl, v1, v2)
	}
	tab.SetDefault(remote)
	if pl, _ := tab.For("Anything"); pl.Kind != Remote {
		t.Fatal("default not applied")
	}
}

func TestRemoteAtRejectsGarbage(t *testing.T) {
	if _, err := RemoteAt("not-an-endpoint"); err == nil {
		t.Fatal("garbage endpoint accepted")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	tab := NewTable()
	remote, _ := RemoteAt("soap://h:1")
	tab.SetClass("C", remote)
	rules, def := tab.Snapshot()
	if def.Kind != Local || len(rules) != 1 {
		t.Fatalf("%+v %+v", rules, def)
	}
	rules["C"] = Placement{Kind: Local}
	if pl, _ := tab.For("C"); pl.Kind != Remote {
		t.Fatal("snapshot aliased internal state")
	}
}

func TestConcurrentAccess(t *testing.T) {
	tab := NewTable()
	remote, _ := RemoteAt("rrp://h:1")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if i%2 == 0 {
					tab.SetClass("C", remote)
				} else {
					tab.Clear("C")
				}
				tab.For("C")
				tab.Version()
			}
		}(g)
	}
	wg.Wait()
}

func TestSetClassIfVersionGate(t *testing.T) {
	tab := NewTable()
	remote, _ := RemoteAt("rrp://h:1")
	v := tab.Version()
	if !tab.SetClassIf("C", remote, v) {
		t.Fatal("matching version rejected")
	}
	if pl, _ := tab.For("C"); pl.Kind != Remote {
		t.Fatal("gated set not applied")
	}
	// Stale version: the table moved on (the gated set itself bumped it).
	if tab.SetClassIf("C", LocalPlacement, v) {
		t.Fatal("stale version accepted")
	}
	if pl, _ := tab.For("C"); pl.Kind != Remote {
		t.Fatal("stale set mutated the table")
	}
	if tab.Version() != v+1 {
		t.Fatalf("version = %d, want %d (failed set must not bump)", tab.Version(), v+1)
	}
}

// TestSetReturnsAuthoritativeVersion pins the contract the node relies
// on for re-policy atomicity: every successful mutation returns the
// version that uniquely identifies the new configuration, and a reader's
// (placement, version) pair is always consistent — a creation that reads
// at version v sees exactly the placement written by the mutation that
// produced v, never a half-applied mix.
func TestSetReturnsAuthoritativeVersion(t *testing.T) {
	tab := NewTable()
	remote, _ := RemoteAt("rrp://h:1")

	// Record the placement each version corresponds to, from the
	// writers' side.
	var mu sync.Mutex
	wrote := map[uint64]Kind{0: Local}
	flip := func(i int) {
		var v uint64
		var k Kind
		if i%2 == 0 {
			v, k = tab.SetClass("C", remote), Remote
		} else {
			v, k = tab.SetClass("C", LocalPlacement), Local
		}
		mu.Lock()
		if prev, dup := wrote[v]; dup && prev != k {
			mu.Unlock()
			t.Errorf("version %d issued twice with different placements", v)
			return
		}
		wrote[v] = k
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				flip(g*200 + i)
			}
		}(g)
	}
	// Readers: every (placement, version) pair observed must match what
	// the writer of that version wrote — whole old or whole new, never
	// torn.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				pl, v := tab.For("C")
				mu.Lock()
				want, ok := wrote[v]
				mu.Unlock()
				if ok && pl.Kind != want {
					t.Errorf("read version %d with placement %v, writer wrote %v", v, pl.Kind, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestKindString(t *testing.T) {
	if Local.String() != "local" || Remote.String() != "remote" {
		t.Fatal("kind strings")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}
