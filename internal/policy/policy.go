// Package policy captures distribution policy: which implementation the
// factories' make and discover methods select for each class (§2.3 "the
// object creation method contains the policy determining which of the
// classes implementing A_O_Int will be used").  Policy is mutable at run
// time; changing it re-draws the program's distribution boundaries for
// subsequent creations and discoveries, which together with object
// migration realises the paper's §4 dynamic reconfiguration.
package policy

import (
	"fmt"
	"strings"
	"sync"
)

// Kind selects local or remote implementations.
type Kind uint8

// Placement kinds.
const (
	Local Kind = iota + 1
	Remote
)

func (k Kind) String() string {
	switch k {
	case Local:
		return "local"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Placement says where instances (and the statics singleton) of a class
// live and which proxy protocol reaches them.
type Placement struct {
	Kind     Kind
	Proto    string // proxy protocol, for Remote
	Endpoint string // remote node endpoint, for Remote
}

// LocalPlacement is the default: instances are created in-process.
var LocalPlacement = Placement{Kind: Local}

// RemoteAt builds a remote placement from a full endpoint
// ("proto://addr").
func RemoteAt(endpoint string) (Placement, error) {
	i := strings.Index(endpoint, "://")
	if i <= 0 {
		return Placement{}, fmt.Errorf("bad endpoint %q", endpoint)
	}
	return Placement{Kind: Remote, Proto: endpoint[:i], Endpoint: endpoint}, nil
}

// Table maps classes to placements.  Rules are exact class names; the
// default applies otherwise.  A version counter lets caches detect
// re-configuration.  Table is safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	rules   map[string]Placement
	def     Placement
	version uint64
}

// NewTable returns an all-local policy table.
func NewTable() *Table {
	return &Table{rules: make(map[string]Placement), def: LocalPlacement}
}

// SetDefault replaces the fallback placement and returns the new table
// version.
func (t *Table) SetDefault(p Placement) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.def = p
	t.version++
	return t.version
}

// SetClass pins a class's placement and returns the new table version.
func (t *Table) SetClass(class string, p Placement) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules[class] = p
	t.version++
	return t.version
}

// SetClassIf pins a class's placement only if the table version still
// equals ifVersion, reporting whether the update applied.  The adaptive
// placement engine (internal/adapt) reads the version when it starts
// evaluating a window and applies its decisions through this gate, so a
// rule-driven flip never overwrites a re-policy an operator (or another
// decision) made while the window was being evaluated.
func (t *Table) SetClassIf(class string, p Placement, ifVersion uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.version != ifVersion {
		return false
	}
	t.rules[class] = p
	t.version++
	return true
}

// Clear removes a class rule, reverting it to the default.
func (t *Table) Clear(class string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rules, class)
	t.version++
}

// For returns the placement for class and the table version it was read
// at.
func (t *Table) For(class string) (Placement, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.rules[class]; ok {
		return p, t.version
	}
	return t.def, t.version
}

// Version returns the current configuration version.
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Snapshot returns a copy of the rules plus the default, for reporting.
func (t *Table) Snapshot() (map[string]Placement, Placement) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]Placement, len(t.rules))
	for k, v := range t.rules {
		out[k] = v
	}
	return out, t.def
}
