package transform

import (
	"fmt"
	"sync"

	"rafda/internal/vm"
)

// BindLocal registers the native make/discover methods of every generated
// factory on machine with an all-local policy: make constructs A_O_Local,
// discover returns the A_C_Local singleton (running the class's clinit on
// first discovery).  This yields the paper's §4 "local version of the
// transformed application that executes within a single address space" —
// the distributed runtime (internal/node) registers richer, policy-driven
// implementations of the same natives instead.
func BindLocal(machine *vm.VM, r *Result) {
	// The cache map is shared by every discover native.  The mutex makes
	// the map operations atomic and the publish below discards a losing
	// racer's instance, but full once-semantics for concurrent first
	// discovery needs the node runtime's owner-tracked table — BindLocal
	// is the single-address-space harness, where discovery arrives
	// through the VM's serialised Invoke path.
	var mu sync.Mutex
	singletons := make(map[string]vm.Value)
	for _, class := range r.Transformed {
		class := class
		machine.RegisterNative(OFactory(class), MakeMethod, 0,
			func(env *vm.Env, _ vm.Value, _ []vm.Value) (vm.Value, *vm.Thrown, error) {
				return env.Construct(OLocal(class), nil)
			})
		machine.RegisterNative(CFactory(class), DiscoverMethod, 0,
			func(env *vm.Env, _ vm.Value, _ []vm.Value) (vm.Value, *vm.Thrown, error) {
				mu.Lock()
				me, ok := singletons[class]
				mu.Unlock()
				if ok {
					return me, nil, nil
				}
				me, thrown, err := env.Call(CLocal(class), SingletonGet, vm.Value{}, nil)
				if thrown != nil || err != nil {
					return vm.Value{}, thrown, err
				}
				// Cache before running clinit so initialisation cycles
				// terminate, mirroring JVM class-initialisation rules.
				// If another goroutine published meanwhile, adopt its
				// instance and discard ours — one singleton survives.
				mu.Lock()
				if exist, ok := singletons[class]; ok {
					mu.Unlock()
					return exist, nil, nil
				}
				singletons[class] = me
				mu.Unlock()
				if _, thrown, err := env.Call(CFactory(class), ClinitMethod, vm.Value{}, []vm.Value{me}); thrown != nil || err != nil {
					mu.Lock()
					delete(singletons, class)
					mu.Unlock()
					return vm.Value{}, thrown, err
				}
				return me, nil, nil
			})
	}
}

// RunMain executes the entry point of a transformed program on machine:
// mainClass's original `static void main()` reached through the class
// factory.  BindLocal (or the node runtime) must have been applied.
func RunMain(machine *vm.VM, r *Result, mainClass string) error {
	class, method := r.MainEntry(mainClass)
	if _, err := machine.Invoke(class, method, vm.Value{}, nil); err != nil {
		return fmt.Errorf("run %s.%s: %w", class, method, err)
	}
	return nil
}
