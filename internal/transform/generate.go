package transform

import (
	"fmt"

	"rafda/internal/ir"
)

// transformer carries shared state while generating one program.
type transformer struct {
	a         *Analysis
	src       *ir.Program
	out       *ir.Program
	protocols []string
}

// generateClass emits the full generated family for one transformable
// class: _O_Int, _O_Local, _O_Proxy_*, _C_Int, _C_Local, _C_Proxy_*,
// _O_Factory, _C_Factory.
func (t *transformer) generateClass(c *ir.Class) error {
	oint := t.makeOInt(c)
	olocal, err := t.makeOLocal(c)
	if err != nil {
		return err
	}
	cint := t.makeCInt(c)
	clocal, err := t.makeCLocal(c)
	if err != nil {
		return err
	}
	ofac, err := t.makeOFactory(c)
	if err != nil {
		return err
	}
	cfac, err := t.makeCFactory(c)
	if err != nil {
		return err
	}
	generated := []*ir.Class{oint, olocal, cint, clocal, ofac, cfac}
	for _, proto := range t.protocols {
		generated = append(generated,
			t.makeOProxy(c, proto),
			t.makeCProxy(c, proto))
	}
	for _, g := range generated {
		if err := t.out.Add(g); err != nil {
			return fmt.Errorf("generate for %s: %w", c.Name, err)
		}
	}
	return nil
}

// propertyPair builds the abstract get_/set_ declarations for one field.
func (t *transformer) propertyPair(f ir.Field) []*ir.Method {
	ft := mapType(t.a, f.Type)
	get := &ir.Method{
		Name: Getter(f.Name), Return: ft,
		Abstract: true, Access: ir.AccessPublic,
	}
	set := &ir.Method{
		Name: Setter(f.Name), Params: []ir.Type{ft}, Return: ir.Void,
		Abstract: true, Access: ir.AccessPublic,
	}
	return []*ir.Method{get, set}
}

// abstractSig builds the abstract interface declaration for a method,
// with mapped signature and public access (§2.1: all members become
// public since interfaces expose them).
func (t *transformer) abstractSig(m *ir.Method) *ir.Method {
	return &ir.Method{
		Name:     m.Name,
		Params:   mapTypes(t.a, m.Params),
		Return:   mapType(t.a, m.Return),
		Abstract: true,
		Access:   ir.AccessPublic,
	}
}

// makeOInt extracts the instance interface A_O_Int (§2.1).  When the
// superclass is transformable the interface extends the superclass's,
// so interface-typed references are substitutable along the hierarchy.
func (t *transformer) makeOInt(c *ir.Class) *ir.Class {
	oint := &ir.Class{
		Name:        OInt(c.Name),
		IsInterface: true,
		Abstract:    true,
		Meta:        "generated:o-int:" + c.Name,
	}
	if t.a.Transformable(c.Super) {
		oint.Interfaces = []string{OInt(c.Super)}
	}
	for _, f := range c.InstanceFields() {
		oint.Methods = append(oint.Methods, t.propertyPair(f)...)
	}
	for _, m := range c.InstanceMethods() {
		oint.Methods = append(oint.Methods, t.abstractSig(m))
	}
	return oint
}

// makeOLocal generates the non-remote implementation A_O_Local (§2.1):
// fields become private properties, the default constructor is added,
// and method bodies are rewritten to use only interface types.
func (t *transformer) makeOLocal(c *ir.Class) (*ir.Class, error) {
	name := OLocal(c.Name)
	super := ir.ObjectClass
	if t.a.Transformable(c.Super) {
		super = OLocal(c.Super)
	}
	ol := &ir.Class{
		Name:       name,
		Super:      super,
		Interfaces: []string{OInt(c.Name)},
		Abstract:   c.Abstract,
		Meta:       "generated:o-local:" + c.Name,
	}
	// Default parameter-less constructor: chains to the super default
	// constructor; all original constructor functionality lives in the
	// factories.
	ol.Methods = append(ol.Methods, &ir.Method{
		Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic,
		MaxLocals: 1,
		Code: []ir.Instr{
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpInvokeSpecial, Owner: super, Member: ir.ConstructorName},
			{Op: ir.OpReturn},
		},
	})
	for _, f := range c.InstanceFields() {
		ft := mapType(t.a, f.Type)
		ol.Fields = append(ol.Fields, ir.Field{
			Name: f.Name, Type: ft, Access: ir.AccessPrivate,
		})
		ol.Methods = append(ol.Methods,
			&ir.Method{
				Name: Getter(f.Name), Return: ft, Access: ir.AccessPublic,
				MaxLocals: 1,
				Code: []ir.Instr{
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpGetField, Owner: name, Member: f.Name},
					{Op: ir.OpReturnValue},
				},
			},
			&ir.Method{
				Name: Setter(f.Name), Params: []ir.Type{ft}, Return: ir.Void,
				Access: ir.AccessPublic, MaxLocals: 2,
				Code: []ir.Instr{
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpLoad, A: 1},
					{Op: ir.OpPutField, Owner: name, Member: f.Name},
					{Op: ir.OpReturn},
				},
			})
	}
	for _, m := range c.InstanceMethods() {
		nm := &ir.Method{
			Name:     m.Name,
			Params:   mapTypes(t.a, m.Params),
			Return:   mapType(t.a, m.Return),
			Abstract: m.Abstract,
			Access:   ir.AccessPublic,
		}
		if !m.Abstract {
			code, handlers, err := rewriteCode(t.a, codeCtx{ownClass: c.Name}, m.Code, m.Handlers)
			if err != nil {
				return nil, err
			}
			nm.Code = code
			nm.Handlers = handlers
			nm.MaxLocals = m.MaxLocals
		}
		ol.Methods = append(ol.Methods, nm)
	}
	return ol, nil
}

// flatOMembers collects the full member set visible through A_O_Int
// (its own and every transformable ancestor's), most-derived first.
// Proxy classes must implement all of them.
func (t *transformer) flatOMembers(c *ir.Class) []*ir.Method {
	var out []*ir.Method
	seen := map[string]bool{}
	add := func(m *ir.Method) {
		if !seen[m.Key()] {
			seen[m.Key()] = true
			out = append(out, m)
		}
	}
	for cur := c; cur != nil && t.a.Transformable(cur.Name); cur = t.src.Class(cur.Super) {
		for _, f := range cur.InstanceFields() {
			for _, pm := range t.propertyPair(f) {
				add(pm)
			}
		}
		for _, m := range cur.InstanceMethods() {
			add(t.abstractSig(m))
		}
		if cur.Super == "" {
			break
		}
	}
	return out
}

// makeOProxy generates A_O_Proxy_<proto>: every interface member is a
// native method bound by the node runtime to a remote invocation over
// the protocol's transport.
func (t *transformer) makeOProxy(c *ir.Class, proto string) *ir.Class {
	p := &ir.Class{
		Name:       OProxy(c.Name, proto),
		Super:      ir.ObjectClass,
		Interfaces: []string{OInt(c.Name)},
		Meta:       "generated:o-proxy:" + proto + ":" + c.Name,
		Fields:     proxyFields(),
	}
	p.Methods = append(p.Methods, proxyCtor(p.Name))
	for _, m := range t.flatOMembers(c) {
		nm := *m
		nm.Abstract = false
		nm.Native = true
		p.Methods = append(p.Methods, &nm)
	}
	return p
}

// makeCInt extracts the class interface A_C_Int over static members
// (§2.2): statics are made non-static so interfaces can capture them.
func (t *transformer) makeCInt(c *ir.Class) *ir.Class {
	ci := &ir.Class{
		Name:        CInt(c.Name),
		IsInterface: true,
		Abstract:    true,
		Meta:        "generated:c-int:" + c.Name,
	}
	for _, f := range c.StaticFields() {
		ci.Methods = append(ci.Methods, t.propertyPair(f)...)
	}
	for _, m := range c.StaticMethods() {
		ci.Methods = append(ci.Methods, t.abstractSig(m))
	}
	return ci
}

// makeCLocal generates the singleton local statics implementation (§2.2:
// "the uniqueness semantics of the static members is guaranteed by
// requiring that all generated implementations be singletons").
func (t *transformer) makeCLocal(c *ir.Class) (*ir.Class, error) {
	name := CLocal(c.Name)
	cl := &ir.Class{
		Name:       name,
		Super:      ir.ObjectClass,
		Interfaces: []string{CInt(c.Name)},
		Meta:       "generated:c-local:" + c.Name,
	}
	// Singleton declarations: private static C_Int me = new C_Local();
	// public static C_Int get_me().
	cl.Fields = append(cl.Fields, ir.Field{
		Name: SingletonField, Type: ir.Ref(CInt(c.Name)), Static: true, Access: ir.AccessPrivate,
	})
	cl.Methods = append(cl.Methods,
		&ir.Method{
			Name: ir.StaticInitName, Return: ir.Void, Static: true, Access: ir.AccessPrivate,
			Code: []ir.Instr{
				{Op: ir.OpNew, Owner: name},
				{Op: ir.OpDup},
				{Op: ir.OpInvokeSpecial, Owner: name, Member: ir.ConstructorName},
				{Op: ir.OpPutStatic, Owner: name, Member: SingletonField},
				{Op: ir.OpReturn},
			},
		},
		&ir.Method{
			Name: SingletonGet, Return: ir.Ref(CInt(c.Name)), Static: true, Access: ir.AccessPublic,
			Code: []ir.Instr{
				{Op: ir.OpGetStatic, Owner: name, Member: SingletonField},
				{Op: ir.OpReturnValue},
			},
		},
		&ir.Method{
			Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic,
			MaxLocals: 1,
			Code: []ir.Instr{
				{Op: ir.OpLoad, A: 0},
				{Op: ir.OpInvokeSpecial, Owner: ir.ObjectClass, Member: ir.ConstructorName},
				{Op: ir.OpReturn},
			},
		})
	for _, f := range c.StaticFields() {
		ft := mapType(t.a, f.Type)
		cl.Fields = append(cl.Fields, ir.Field{Name: f.Name, Type: ft, Access: ir.AccessPrivate})
		cl.Methods = append(cl.Methods,
			&ir.Method{
				Name: Getter(f.Name), Return: ft, Access: ir.AccessPublic, MaxLocals: 1,
				Code: []ir.Instr{
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpGetField, Owner: name, Member: f.Name},
					{Op: ir.OpReturnValue},
				},
			},
			&ir.Method{
				Name: Setter(f.Name), Params: []ir.Type{ft}, Return: ir.Void,
				Access: ir.AccessPublic, MaxLocals: 2,
				Code: []ir.Instr{
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpLoad, A: 1},
					{Op: ir.OpPutField, Owner: name, Member: f.Name},
					{Op: ir.OpReturn},
				},
			})
	}
	// Original static methods become instance methods (slot shift +1);
	// own-class static accesses go through `this` as in Figure 4.
	for _, m := range c.StaticMethods() {
		code, handlers, err := rewriteCode(t.a, codeCtx{
			ownClass: c.Name, slotShift: 1, ownStaticsViaLocal0: true,
		}, m.Code, m.Handlers)
		if err != nil {
			return nil, err
		}
		cl.Methods = append(cl.Methods, &ir.Method{
			Name:      m.Name,
			Params:    mapTypes(t.a, m.Params),
			Return:    mapType(t.a, m.Return),
			Access:    ir.AccessPublic,
			Code:      code,
			Handlers:  handlers,
			MaxLocals: m.MaxLocals + 1,
		})
	}
	return cl, nil
}

// makeCProxy generates A_C_Proxy_<proto> for remote static access.
func (t *transformer) makeCProxy(c *ir.Class, proto string) *ir.Class {
	p := &ir.Class{
		Name:       CProxy(c.Name, proto),
		Super:      ir.ObjectClass,
		Interfaces: []string{CInt(c.Name)},
		Meta:       "generated:c-proxy:" + proto + ":" + c.Name,
		Fields:     proxyFields(),
	}
	p.Methods = append(p.Methods, proxyCtor(p.Name))
	for _, f := range c.StaticFields() {
		for _, pm := range t.propertyPair(f) {
			nm := *pm
			nm.Abstract = false
			nm.Native = true
			p.Methods = append(p.Methods, &nm)
		}
	}
	for _, m := range c.StaticMethods() {
		nm := t.abstractSig(m)
		nm.Abstract = false
		nm.Native = true
		p.Methods = append(p.Methods, nm)
	}
	return p
}

func proxyFields() []ir.Field {
	return []ir.Field{
		{Name: ProxyFieldGUID, Type: ir.String, Access: ir.AccessPrivate},
		{Name: ProxyFieldEndpoint, Type: ir.String, Access: ir.AccessPrivate},
		{Name: ProxyFieldProto, Type: ir.String, Access: ir.AccessPrivate},
		{Name: ProxyFieldTarget, Type: ir.String, Access: ir.AccessPrivate},
	}
}

func proxyCtor(name string) *ir.Method {
	return &ir.Method{
		Name: ir.ConstructorName, Return: ir.Void, Access: ir.AccessPublic,
		MaxLocals: 1,
		Code: []ir.Instr{
			{Op: ir.OpLoad, A: 0},
			{Op: ir.OpInvokeSpecial, Owner: ir.ObjectClass, Member: ir.ConstructorName},
			{Op: ir.OpReturn},
		},
	}
}

// makeOFactory generates A_O_Factory (§2.3): a native, policy-driven
// make() plus one bytecode init method per original constructor holding
// the rewritten constructor body.
func (t *transformer) makeOFactory(c *ir.Class) (*ir.Class, error) {
	name := OFactory(c.Name)
	f := &ir.Class{
		Name:  name,
		Super: ir.ObjectClass,
		Meta:  "generated:o-factory:" + c.Name,
	}
	f.Methods = append(f.Methods, &ir.Method{
		Name: MakeMethod, Return: ir.Ref(OInt(c.Name)),
		Static: true, Native: true, Access: ir.AccessPublic,
	})
	for _, ctor := range c.Constructors() {
		skips := objectSuperCallSkips(t.a, ctor.Code)
		code, handlers, err := rewriteCode(t.a, codeCtx{ownClass: c.Name, skip: skips}, ctor.Code, ctor.Handlers)
		if err != nil {
			return nil, err
		}
		params := append([]ir.Type{ir.Ref(OInt(c.Name))}, mapTypes(t.a, ctor.Params)...)
		f.Methods = append(f.Methods, &ir.Method{
			Name:      InitMethod,
			Params:    params,
			Return:    ir.Void,
			Static:    true,
			Access:    ir.AccessPublic,
			Code:      code,
			Handlers:  handlers,
			MaxLocals: ctor.MaxLocals,
		})
	}
	return f, nil
}

// makeCFactory generates A_C_Factory (§2.3): native discover(), the
// clinit method holding the rewritten static initialiser, and forwarders
// that let any code reach static members through discover() without
// being implementation-aware.
func (t *transformer) makeCFactory(c *ir.Class) (*ir.Class, error) {
	name := CFactory(c.Name)
	cintName := CInt(c.Name)
	f := &ir.Class{
		Name:  name,
		Super: ir.ObjectClass,
		Meta:  "generated:c-factory:" + c.Name,
	}
	f.Methods = append(f.Methods, &ir.Method{
		Name: DiscoverMethod, Return: ir.Ref(cintName),
		Static: true, Native: true, Access: ir.AccessPublic,
	})
	// clinit(that): rewritten original <clinit> (or empty).
	clinitMethod := &ir.Method{
		Name:   ClinitMethod,
		Params: []ir.Type{ir.Ref(cintName)},
		Return: ir.Void,
		Static: true,
		Access: ir.AccessPublic,
	}
	if orig := c.StaticInit(); orig != nil {
		code, handlers, err := rewriteCode(t.a, codeCtx{
			ownClass: c.Name, slotShift: 1, ownStaticsViaLocal0: true,
		}, orig.Code, orig.Handlers)
		if err != nil {
			return nil, err
		}
		clinitMethod.Code = code
		clinitMethod.Handlers = handlers
		clinitMethod.MaxLocals = orig.MaxLocals + 1
	} else {
		clinitMethod.Code = []ir.Instr{{Op: ir.OpReturn}}
		clinitMethod.MaxLocals = 1
	}
	f.Methods = append(f.Methods, clinitMethod)

	// Forwarders: static get_f/set_f and one per static method, each
	// calling discover() then the interface method.
	for _, fd := range c.StaticFields() {
		ft := mapType(t.a, fd.Type)
		f.Methods = append(f.Methods,
			&ir.Method{
				Name: Getter(fd.Name), Return: ft, Static: true, Access: ir.AccessPublic,
				Code: []ir.Instr{
					{Op: ir.OpInvokeStatic, Owner: name, Member: DiscoverMethod},
					{Op: ir.OpInvokeInterface, Owner: cintName, Member: Getter(fd.Name)},
					{Op: ir.OpReturnValue},
				},
			},
			&ir.Method{
				Name: Setter(fd.Name), Params: []ir.Type{ft}, Return: ir.Void,
				Static: true, Access: ir.AccessPublic, MaxLocals: 1,
				Code: []ir.Instr{
					{Op: ir.OpInvokeStatic, Owner: name, Member: DiscoverMethod},
					{Op: ir.OpLoad, A: 0},
					{Op: ir.OpInvokeInterface, Owner: cintName, Member: Setter(fd.Name), NArgs: 1},
					{Op: ir.OpReturn},
				},
			})
	}
	for _, m := range c.StaticMethods() {
		params := mapTypes(t.a, m.Params)
		b := ir.NewCodeBuilder()
		b.Invoke(ir.OpInvokeStatic, name, DiscoverMethod, 0)
		for i := range params {
			b.Load(i)
		}
		b.Invoke(ir.OpInvokeInterface, cintName, m.Name, len(params))
		if m.Return.IsVoid() {
			b.Return()
		} else {
			b.ReturnValue()
		}
		b.SetMinLocals(len(params))
		f.Methods = append(f.Methods, &ir.Method{
			Name:      m.Name,
			Params:    params,
			Return:    mapType(t.a, m.Return),
			Static:    true,
			Access:    ir.AccessPublic,
			Code:      b.MustBuild(),
			MaxLocals: len(params),
		})
	}
	return f, nil
}
